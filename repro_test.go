package repro

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/seq"
)

func TestAnalyzePaperExample(t *testing.T) {
	rep, err := Analyze("fig4", "ATGCATGCATGC", Options{Matrix: "paper-dna", NumTops: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tops) != 3 {
		t.Fatalf("got %d tops, want 3", len(rep.Tops))
	}
	for _, top := range rep.Tops {
		if top.Score != 8 {
			t.Errorf("top %d score %d, want 8", top.Index, top.Score)
		}
	}
	if len(rep.Families) != 1 || len(rep.Families[0].Copies) != 3 {
		t.Errorf("families = %+v", rep.Families)
	}
}

func TestAnalyzeEnginesAgree(t *testing.T) {
	s := seq.SyntheticTitin(140, 2).String()
	base, err := Analyze("x", s, Options{NumTops: 6})
	if err != nil {
		t.Fatal(err)
	}
	for name, opt := range map[string]Options{
		"workers": {NumTops: 6, Workers: 4},
		"cluster": {NumTops: 6, Slaves: 2, ThreadsPerSlave: 2},
		"lanes":   {NumTops: 6, Lanes: 4},
		"striped": {NumTops: 6, Striped: true},
	} {
		got, err := Analyze("x", s, opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got.Tops) != len(base.Tops) {
			t.Fatalf("%s: %d tops vs %d", name, len(got.Tops), len(base.Tops))
		}
		for i := range base.Tops {
			if got.Tops[i].Score != base.Tops[i].Score || got.Tops[i].Split != base.Tops[i].Split {
				t.Errorf("%s: top %d differs", name, i+1)
			}
		}
	}
}

func TestAnalyzeDefaults(t *testing.T) {
	rep, err := Analyze("t", seq.SyntheticTitin(150, 1).String(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tops) == 0 || len(rep.Tops) > DefaultNumTops {
		t.Errorf("got %d tops with default options", len(rep.Tops))
	}
	if rep.Stats.Alignments == 0 || rep.Stats.Cells == 0 {
		t.Error("stats not collected")
	}
	if rep.Stats.RealignmentReduction <= 0 {
		t.Error("realignment reduction not computed")
	}
}

func TestAnalyzeErrors(t *testing.T) {
	if _, err := Analyze("x", "ACGT", Options{Matrix: "nope"}); err == nil {
		t.Error("unknown matrix accepted")
	}
	if _, err := Analyze("x", "AC1GT", Options{Matrix: "dna-unit"}); err == nil {
		t.Error("bad residue accepted")
	}
	if _, err := Analyze("x", "A", Options{}); err == nil {
		t.Error("length-1 sequence accepted")
	}
}

func TestAnalyzeFASTA(t *testing.T) {
	in := ">a first\nATGCATGCATGC\n>b second\nTTAGGTTAGGTTAGG\n"
	reps, err := AnalyzeFASTA(strings.NewReader(in), Options{Matrix: "paper-dna", NumTops: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 2 {
		t.Fatalf("got %d reports", len(reps))
	}
	if reps[0].SeqID != "a" || reps[1].SeqID != "b" {
		t.Error("record ids lost")
	}
	if len(reps[1].Tops) == 0 {
		t.Error("no tops for repetitive record b")
	}
}

func TestWriteReport(t *testing.T) {
	rep, err := Analyze("fig4", "ATGCATGCATGC", Options{Matrix: "paper-dna", NumTops: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteReport(&buf, rep); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"fig4", "top  1", "family 1", "copy [1-4]"} {
		if !strings.Contains(out, want) {
			t.Errorf("report output missing %q:\n%s", want, out)
		}
	}
}

func TestAnalyzeCustomGaps(t *testing.T) {
	// extreme gap penalties must flow through: with huge penalties the
	// gapped alignments vanish but ungapped repeats survive
	rep, err := Analyze("x", "ATGCATGCATGC", Options{Matrix: "paper-dna", NumTops: 1, GapOpen: 100, GapExt: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tops) != 1 || rep.Tops[0].Score != 8 {
		t.Errorf("tops = %+v", rep.Tops)
	}
}
