package repro

import (
	"strings"
	"testing"
)

func TestFormatAlignmentFigure2Style(t *testing.T) {
	// the paper's Figure 2 example rendered from its traceback pairs:
	// CTTACAGA x ATTGCGA has best alignment TTACAGA / TT-GC-GA.
	// Expressed over the single concatenated sequence used here, take
	// the Figure 4 sequence instead: ATGC aligned to ATGC at lag 4.
	rep, err := Analyze("fig4", "ATGCATGCATGC", Options{Matrix: "paper-dna", NumTops: 1})
	if err != nil {
		t.Fatal(err)
	}
	out, err := FormatAlignment("ATGCATGCATGC", rep.Tops[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ATGC", "||||", "1-4 aligned to 5-8"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted alignment missing %q:\n%s", want, out)
		}
	}
}

func TestFormatAlignmentWithGapsAndMismatches(t *testing.T) {
	top := TopAlignment{
		Index: 1, Score: 9,
		// matches at (1,6) (2,7), then I skips 3, J skips 8, match (4,9)
		Pairs: []Pair{{1, 6}, {2, 7}, {4, 9}},
	}
	//           123456789
	residues := "ABXDQABCB"
	out, err := FormatAlignment(residues, top, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A-A match, B-B match, X vs gap, gap vs C (J skip 8), D-B
	// mismatch; each row carries its start and end positions.
	want := strings.Join([]string{
		"top 1 (score 9): 1-4 aligned to 6-9",
		"  1 ABX-D 4",
		"    ||  .",
		"  6 AB-CB 9",
		"",
	}, "\n")
	if out != want {
		t.Errorf("formatted alignment:\n%q\nwant:\n%q", out, want)
	}
}

// TestFormatAlignmentGoldenMultiBlock is the golden test for wrapped
// alignments: every block must carry per-line start/end positions for
// both rows, right-aligned to the widest coordinate.
func TestFormatAlignmentGoldenMultiBlock(t *testing.T) {
	pairs := make([]Pair, 30)
	for i := range pairs {
		pairs[i] = Pair{I: i + 1, J: i + 41}
	}
	top := TopAlignment{Index: 2, Score: 60, Pairs: pairs}
	residues := strings.Repeat("A", 80)
	out, err := FormatAlignment(residues, top, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"top 2 (score 60): 1-30 aligned to 41-70",
		"   1 AAAAAAAAAA 10",
		"     ||||||||||",
		"  41 AAAAAAAAAA 50",
		"",
		"  11 AAAAAAAAAA 20",
		"     ||||||||||",
		"  51 AAAAAAAAAA 60",
		"",
		"  21 AAAAAAAAAA 30",
		"     ||||||||||",
		"  61 AAAAAAAAAA 70",
		"",
	}, "\n")
	if out != want {
		t.Errorf("golden mismatch:\ngot:\n%s\nwant:\n%s", out, want)
	}
}

// TestFormatAlignmentAllGapBlock covers a wrapped block in which one
// row is entirely gaps: its positions must repeat the carried
// coordinate instead of inventing a span.
func TestFormatAlignmentAllGapBlock(t *testing.T) {
	// Matches (1,21) (2,22) then a 12-residue I-side insertion before
	// (15,23): at width 5 the second block is all gaps on row 2.
	top := TopAlignment{
		Index: 1, Score: 5,
		Pairs: []Pair{{1, 21}, {2, 22}, {15, 23}},
	}
	residues := strings.Repeat("A", 30)
	out, err := FormatAlignment(residues, top, 5)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Block 2 (lines 5-7 with the separator at index 4): row 2 shows
	// the carried position 22 on both ends.
	var found bool
	for _, ln := range lines {
		if strings.Contains(ln, "-----") && strings.Contains(ln, "22") {
			found = true
			if !strings.HasSuffix(strings.TrimRight(ln, " "), "22") {
				t.Errorf("all-gap row should end with carried position: %q", ln)
			}
		}
	}
	if !found {
		t.Errorf("no all-gap block with carried position 22:\n%s", out)
	}
}

func TestFormatAlignmentWrapping(t *testing.T) {
	pairs := make([]Pair, 30)
	for i := range pairs {
		pairs[i] = Pair{I: i + 1, J: i + 41}
	}
	top := TopAlignment{Index: 2, Score: 60, Pairs: pairs}
	residues := strings.Repeat("A", 80)
	out, err := FormatAlignment(residues, top, 10)
	if err != nil {
		t.Fatal(err)
	}
	// 30 columns at width 10 -> 3 blocks of 3 lines + header + separators
	if got := strings.Count(out, "||||||||||"); got != 3 {
		t.Errorf("expected 3 full match blocks, got %d:\n%s", got, out)
	}
}

func TestFormatAlignmentErrors(t *testing.T) {
	if _, err := FormatAlignment("ACGT", TopAlignment{}, 0); err == nil {
		t.Error("empty alignment accepted")
	}
	bad := TopAlignment{Pairs: []Pair{{1, 99}}}
	if _, err := FormatAlignment("ACGT", bad, 0); err == nil {
		t.Error("out-of-range pair accepted")
	}
}
