package repro

import (
	"strings"
	"testing"
)

func TestFormatAlignmentFigure2Style(t *testing.T) {
	// the paper's Figure 2 example rendered from its traceback pairs:
	// CTTACAGA x ATTGCGA has best alignment TTACAGA / TT-GC-GA.
	// Expressed over the single concatenated sequence used here, take
	// the Figure 4 sequence instead: ATGC aligned to ATGC at lag 4.
	rep, err := Analyze("fig4", "ATGCATGCATGC", Options{Matrix: "paper-dna", NumTops: 1})
	if err != nil {
		t.Fatal(err)
	}
	out, err := FormatAlignment("ATGCATGCATGC", rep.Tops[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ATGC", "||||", "1-4 aligned to 5-8"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted alignment missing %q:\n%s", want, out)
		}
	}
}

func TestFormatAlignmentWithGapsAndMismatches(t *testing.T) {
	top := TopAlignment{
		Index: 1, Score: 9,
		// matches at (1,6) (2,7), then I skips 3, J skips 8, match (4,9)
		Pairs: []Pair{{1, 6}, {2, 7}, {4, 9}},
	}
	//           123456789
	residues := "ABXDQABCB"
	out, err := FormatAlignment(residues, top, 0)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	top1, mid, bot := strings.TrimPrefix(lines[1], "  "), strings.TrimPrefix(lines[2], "  "), strings.TrimPrefix(lines[3], "  ")
	// A-A match, B-B match, X vs gap, gap vs C (J skip 8), D-B mismatch
	if top1 != "ABX-D" {
		t.Errorf("line1 = %q, want ABX-D", top1)
	}
	if bot != "AB-CB" {
		t.Errorf("line2 = %q, want AB-CB", bot)
	}
	if mid != "||  ." {
		t.Errorf("mid = %q, want %q", mid, "||  .")
	}
}

func TestFormatAlignmentWrapping(t *testing.T) {
	pairs := make([]Pair, 30)
	for i := range pairs {
		pairs[i] = Pair{I: i + 1, J: i + 41}
	}
	top := TopAlignment{Index: 2, Score: 60, Pairs: pairs}
	residues := strings.Repeat("A", 80)
	out, err := FormatAlignment(residues, top, 10)
	if err != nil {
		t.Fatal(err)
	}
	// 30 columns at width 10 -> 3 blocks of 3 lines + header + separators
	if got := strings.Count(out, "||||||||||"); got != 3 {
		t.Errorf("expected 3 full match blocks, got %d:\n%s", got, out)
	}
}

func TestFormatAlignmentErrors(t *testing.T) {
	if _, err := FormatAlignment("ACGT", TopAlignment{}, 0); err == nil {
		t.Error("empty alignment accepted")
	}
	bad := TopAlignment{Pairs: []Pair{{1, 99}}}
	if _, err := FormatAlignment("ACGT", bad, 0); err == nil {
		t.Error("out-of-range pair accepted")
	}
}
