package align

import (
	"fmt"
	"testing"

	"repro/internal/scoring"
	"repro/internal/seq"
	"repro/internal/triangle"
)

func benchOperands(n int) ([]byte, []byte) {
	s := seq.SyntheticTitin(n, 1).Codes
	return s[:n/2], s[n/2:]
}

func BenchmarkScore(b *testing.B) {
	p := Params{Exch: scoring.BLOSUM62, Gap: scoring.DefaultProteinGap}
	for _, n := range []int{512, 2048, 8192} {
		s1, s2 := benchOperands(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.SetBytes(Cells(len(s1), len(s2)))
			for i := 0; i < b.N; i++ {
				Score(p, s1, s2)
			}
		})
	}
}

func BenchmarkScoreMasked(b *testing.B) {
	p := Params{Exch: scoring.BLOSUM62, Gap: scoring.DefaultProteinGap}
	n := 2048
	s1, s2 := benchOperands(n)
	tri := triangle.New(n)
	// a realistic sparse triangle: a few short alignments marked
	for i := 0; i < 60; i++ {
		tri.Set(100+i, 1200+i)
	}
	b.Run("sparse-mask", func(b *testing.B) {
		b.SetBytes(Cells(len(s1), len(s2)))
		for i := 0; i < b.N; i++ {
			ScoreMasked(p, s1, s2, tri, n/2)
		}
	})
	b.Run("nil-mask", func(b *testing.B) {
		b.SetBytes(Cells(len(s1), len(s2)))
		for i := 0; i < b.N; i++ {
			ScoreMasked(p, s1, s2, nil, n/2)
		}
	})
}

func BenchmarkScoreStriped(b *testing.B) {
	p := Params{Exch: scoring.BLOSUM62, Gap: scoring.DefaultProteinGap}
	n := 8192
	s1, s2 := benchOperands(n)
	for _, w := range []int{256, 2048, 1 << 20} {
		b.Run(fmt.Sprintf("width=%d", w), func(b *testing.B) {
			b.SetBytes(Cells(len(s1), len(s2)))
			for i := 0; i < b.N; i++ {
				ScoreStriped(p, s1, s2, nil, n/2, w)
			}
		})
	}
}

func BenchmarkMatrixAndTraceback(b *testing.B) {
	p := Params{Exch: scoring.BLOSUM62, Gap: scoring.DefaultProteinGap}
	n := 1024
	s1, s2 := benchOperands(n)
	b.SetBytes(Cells(len(s1), len(s2)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := Matrix(p, s1, s2, nil, n/2)
		endX, _, _ := BestValidEnd(m[len(s1)][1:], nil)
		if endX > 0 {
			if _, err := Traceback(p, m, s1, s2, nil, n/2, endX); err != nil {
				b.Fatal(err)
			}
		}
	}
}
