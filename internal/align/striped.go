package align

import "repro/internal/triangle"

// DefaultStripeWidth is sized so that the stripe's working set (current
// row section, MaxY section, and exchange row) stays within a third of a
// typical 32 KiB L1 data cache, per Section 4.1 of the paper ("we compute
// a section of the row that fits in a third of the first-level cache").
const DefaultStripeWidth = 2048

// ScoreStriped computes the same bottom row as ScoreMasked but walks the
// matrix in vertical stripes of the given width: all rows of a stripe of
// columns are computed before moving to the next stripe. The per-stripe
// working set fits in first-level cache, which is the paper's
// cache-awareness optimisation. Boundary state (the diagonal value and
// the horizontal-gap running maximum at the stripe's left edge) is
// carried between stripes in O(len(s1)) memory.
//
// width <= 0 selects DefaultStripeWidth. tri may be nil.
func ScoreStriped(p Params, s1, s2 []byte, tri *triangle.Triangle, r, width int) []int32 {
	return new(Scratch).ScoreStriped(p, s1, s2, tri, r, width)
}

// ScoreStriped is the scratch-based variant of the package-level
// ScoreStriped: the returned row is arena-owned and valid until the next
// call on sc.
func (sc *Scratch) ScoreStriped(p Params, s1, s2 []byte, tri *triangle.Triangle, r, width int) []int32 {
	if width <= 0 {
		width = DefaultStripeWidth
	}
	len1, len2 := len(s1), len(s2)
	if len1 == 0 || len2 == 0 {
		bottom := growI32(&sc.bottom, len2)
		for i := range bottom {
			bottom[i] = 0
		}
		return bottom
	}
	if len2 <= width {
		return sc.score(p, s1, s2, tri, r)
	}
	bottom := growI32(&sc.bottom, len2)

	open, ext := p.Gap.Open, p.Gap.Ext

	// Carried across stripes, indexed by row y (1-based):
	//   edgeM[y]    = M[y][x0-1], the column just left of the next stripe
	//   edgeMaxX[y] = the horizontal running maximum after processing
	//                 column x0-1 of row y
	edgeM := growI32(&sc.edgeM, len1+1)
	edgeMaxX := growI32(&sc.edgeMaxX, len1+1)
	for y := range edgeM {
		edgeM[y] = 0
		edgeMaxX[y] = negInf
	}

	prev := growI32(&sc.prev, width+1)
	cur := growI32(&sc.cur, width+1)
	maxY := growI32(&sc.maxY, width+1)

	for x0 := 1; x0 <= len2; x0 += width {
		x1 := x0 + width - 1
		if x1 > len2 {
			x1 = len2
		}
		w := x1 - x0 + 1
		for i := 0; i <= w; i++ {
			prev[i] = 0
			maxY[i] = negInf
		}
		for y := 1; y <= len1; y++ {
			row := p.Exch.Row(s1[y-1])
			maxX := edgeMaxX[y]
			// prev[0] must be M[y-1][x0-1]; cur[0] is M[y][x0-1]
			prev[0] = edgeM[y-1]
			cur[0] = edgeM[y]
			base := 0
			masked := false
			if tri != nil {
				base = maskBase(tri, r, y) + (x0 - 1)
				masked = !tri.RowEmpty(base, w)
			}
			for i := 1; i <= w; i++ {
				x := x0 + i - 1
				d := prev[i-1]
				var v int32
				if masked && tri.GetAt(base+i-1) {
					v = 0
				} else {
					best := d
					if maxX > best {
						best = maxX
					}
					if my := maxY[i]; my > best {
						best = my
					}
					v = best + int32(row[s2[x-1]])
					if v < 0 {
						v = 0
					}
				}
				cur[i] = v
				g := d - open
				h := g
				if maxX > h {
					h = maxX
				}
				maxX = h - ext
				if my := maxY[i]; my > g {
					g = my
				}
				maxY[i] = g - ext
			}
			// save the stripe's right edge for the next stripe
			edgeM[y-1] = prev[w]
			if y == len1 {
				edgeM[y] = cur[w]
			}
			edgeMaxX[y] = maxX
			prev, cur = cur, prev
		}
		copy(bottom[x0-1:x1], prev[1:w+1])
	}
	sc.prev, sc.cur = prev, cur
	return bottom
}
