package align

import (
	"repro/internal/triangle"
)

// Scratch is a reusable buffer arena for the alignment kernels. A warm
// Scratch makes every score-only kernel allocation-free: buffers grow
// monotonically to the largest operand seen and are reset, never
// reallocated, on reuse.
//
// Ownership rules (DESIGN.md section 10):
//
//   - A Scratch belongs to exactly one goroutine at a time. Schedulers
//     give each worker its own instance; a Scratch must never be shared
//     between concurrent kernel calls.
//   - Slices returned by Scratch methods (bottom rows, matrices) point
//     into the arena and are valid only until the next call on the same
//     Scratch. Callers that retain a row (e.g. the original-row store)
//     must copy it first.
//
// The zero value is ready to use.
type Scratch struct {
	prev, cur, maxY []int32 // linear-memory row buffers
	bottom          []int32 // returned bottom row
	edgeM, edgeMaxX []int32 // striped kernel's inter-stripe carries

	flat []int32   // full-matrix arena (traceback path)
	rows [][]int32 // row headers over flat

	rev []Pair // traceback path accumulator
}

// NewScratch returns an empty Scratch.
func NewScratch() *Scratch { return &Scratch{} }

// growI32 resizes *buf to n entries, reusing capacity when possible.
// Contents are unspecified; callers reset what they read.
func growI32(buf *[]int32, n int) []int32 {
	if cap(*buf) < n {
		*buf = make([]int32, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// Score is the scratch-based variant of the package-level Score: the
// returned row is arena-owned and valid until the next call on sc.
func (sc *Scratch) Score(p Params, s1, s2 []byte) []int32 {
	return sc.score(p, s1, s2, nil, 0)
}

// ScoreMasked is the scratch-based variant of ScoreMasked.
func (sc *Scratch) ScoreMasked(p Params, s1, s2 []byte, tri *triangle.Triangle, r int) []int32 {
	if tri == nil {
		return sc.score(p, s1, s2, nil, 0)
	}
	return sc.score(p, s1, s2, tri, r)
}
