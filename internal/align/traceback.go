package align

import (
	"fmt"

	"repro/internal/triangle"
)

// Matrix computes the full alignment matrix (Gotoh recurrence, optional
// override masking) with rows 0..len(s1) and columns 0..len(s2); row and
// column 0 are the zero boundary. It is used only for tracebacks of
// accepted top alignments — score-only paths use the linear-memory
// kernels. tri may be nil.
func Matrix(p Params, s1, s2 []byte, tri *triangle.Triangle, r int) [][]int32 {
	return new(Scratch).Matrix(p, s1, s2, tri, r)
}

// Matrix is the scratch-based variant of the package-level Matrix: the
// returned matrix is arena-owned and valid until the next call on sc.
func (sc *Scratch) Matrix(p Params, s1, s2 []byte, tri *triangle.Triangle, r int) [][]int32 {
	len1, len2 := len(s1), len(s2)
	if cap(sc.rows) < len1+1 {
		sc.rows = make([][]int32, len1+1)
	}
	m := sc.rows[:len1+1]
	if cap(sc.flat) < (len1+1)*(len2+1) {
		sc.flat = make([]int32, (len1+1)*(len2+1))
	}
	flat := sc.flat[:(len1+1)*(len2+1)]
	for y := range m {
		m[y] = flat[y*(len2+1) : (y+1)*(len2+1)]
		m[y][0] = 0 // zero boundary column (arena may hold stale values)
	}
	for x := range m[0] {
		m[0][x] = 0 // zero boundary row
	}
	if len1 == 0 || len2 == 0 {
		for y := range m {
			for x := range m[y] {
				m[y][x] = 0
			}
		}
		return m
	}
	maxY := growI32(&sc.maxY, len2+1)
	for i := range maxY {
		maxY[i] = negInf
	}
	open, ext := p.Gap.Open, p.Gap.Ext
	for y := 1; y <= len1; y++ {
		row := p.Exch.Row(s1[y-1])
		maxX := int32(negInf)
		base := 0
		if tri != nil {
			base = maskBase(tri, r, y)
		}
		prev, cur := m[y-1], m[y]
		for x := 1; x <= len2; x++ {
			d := prev[x-1]
			var v int32
			if tri != nil && tri.GetAt(base+x-1) {
				v = 0
			} else {
				best := d
				if maxX > best {
					best = maxX
				}
				if my := maxY[x]; my > best {
					best = my
				}
				v = best + int32(row[s2[x-1]])
				if v < 0 {
					v = 0
				}
			}
			cur[x] = v
			g := d - open
			h := g
			if maxX > h {
				h = maxX
			}
			maxX = h - ext
			if my := maxY[x]; my > g {
				g = my
			}
			maxY[x] = g - ext
		}
	}
	return m
}

// Traceback reconstructs the alignment ending at bottom-row column endX
// (1-based) from a full matrix produced by Matrix (or NaiveMatrix) with
// the same parameters and mask. It returns the matched pairs in path
// order. The end cell must be positive.
//
// Predecessors are rediscovered from the stored M values: the diagonal
// first, then horizontal gaps by increasing length, then vertical gaps —
// a deterministic tie order, so equal-scoring reconstructions are stable.
func Traceback(p Params, m [][]int32, s1, s2 []byte, tri *triangle.Triangle, r, endX int) (Alignment, error) {
	return new(Scratch).Traceback(p, m, s1, s2, tri, r, endX)
}

// Traceback is the scratch-based variant of the package-level Traceback.
// The returned Alignment's pair slice is freshly allocated (it outlives
// the call as part of a TopAlignment); only the path accumulator is
// arena-reused.
func (sc *Scratch) Traceback(p Params, m [][]int32, s1, s2 []byte, tri *triangle.Triangle, r, endX int) (Alignment, error) {
	len1 := len(s1)
	if len1 == 0 || endX < 1 || endX > len(s2) {
		return Alignment{}, fmt.Errorf("align: traceback end column %d out of range", endX)
	}
	y, x := len1, endX
	score := m[y][x]
	if score <= 0 {
		return Alignment{}, fmt.Errorf("align: traceback from non-positive cell (%d,%d)=%d", y, x, score)
	}
	open, ext := p.Gap.Open, p.Gap.Ext
	rev := sc.rev[:0]
	for {
		v := m[y][x]
		rev = append(rev, Pair{Y: y, X: x})
		var e int32
		if tri != nil && tri.GetAt(maskBase(tri, r, y)+x-1) {
			return Alignment{}, fmt.Errorf("align: traceback crossed overridden cell (%d,%d)", y, x)
		}
		e = p.Exch.Score(s1[y-1], s2[x-1])
		best := v - e
		if best == 0 {
			break // fresh local start
		}
		// diagonal predecessor
		if m[y-1][x-1] == best {
			y, x = y-1, x-1
			if y == 0 || x == 0 {
				break
			}
			if m[y][x] == 0 {
				break
			}
			continue
		}
		// horizontal gap of length k
		moved := false
		for k := 1; x-1-k >= 0; k++ {
			if m[y-1][x-1-k]-open-int32(k)*ext == best && m[y-1][x-1-k] > 0 {
				y, x = y-1, x-1-k
				moved = true
				break
			}
		}
		if !moved {
			// vertical gap of length k
			for k := 1; y-1-k >= 0; k++ {
				if m[y-1-k][x-1]-open-int32(k)*ext == best && m[y-1-k][x-1] > 0 {
					y, x = y-1-k, x-1
					moved = true
					break
				}
			}
		}
		if !moved {
			return Alignment{}, fmt.Errorf("align: no predecessor found at (%d,%d)=%d", y, x, v)
		}
	}
	sc.rev = rev // keep the grown accumulator for reuse
	// reverse into path order
	pairs := make([]Pair, len(rev))
	for i, pr := range rev {
		pairs[len(rev)-1-i] = pr
	}
	return Alignment{Score: score, Pairs: pairs}, nil
}

// BestValidEnd returns the 1-based column of the maximum entry in bottom
// among the valid ending positions, together with that score. When orig
// is non-nil (a realignment), a column is valid only if its value equals
// the original first-alignment value — the shadow-rejection rule of
// Appendix A. Rejected counts the positive cells skipped as shadows.
// If no valid positive cell exists, endX is 0 and score 0.
func BestValidEnd(bottom, orig []int32) (endX int, score int32, rejected int64) {
	for i, v := range bottom {
		if v <= 0 {
			continue
		}
		if orig != nil && orig[i] != v {
			rejected++
			continue
		}
		if v > score {
			score, endX = v, i+1
		}
	}
	return endX, score, rejected
}
