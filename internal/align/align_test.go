package align

import (
	"math"
	"testing"

	"repro/internal/scoring"
	"repro/internal/seq"
	"repro/internal/triangle"
)

var paperParams = Params{Exch: scoring.PaperDNA, Gap: scoring.PaperGap}

// TestFigure2 reproduces the alignment matrix of Figure 2 of the paper:
// CTTACAGA (horizontal) aligned with ATTGCGA (vertical) under match +2,
// mismatch -1, gap open 2, gap extension 1.
//
// The last row printed in the paper's text is missing its leading zero
// (a typesetting/extraction artifact); the values below follow the
// recurrence of Equation 1 / Figure 3, hand-verified cell by cell, and
// agree with the paper's traceback (best score 6, alignment
// TTACAGA / TT-GC-GA ending on the final A-A match).
func TestFigure2(t *testing.T) {
	s1 := seq.DNA.MustEncode("ATTGCGA")  // vertical
	s2 := seq.DNA.MustEncode("CTTACAGA") // horizontal
	want := [][]int32{
		{0, 0, 0, 2, 0, 2, 0, 2},
		{0, 2, 2, 0, 1, 0, 1, 0},
		{0, 2, 4, 1, 0, 0, 0, 0},
		{0, 0, 1, 3, 0, 0, 2, 0},
		{2, 0, 0, 0, 5, 0, 0, 1},
		{0, 1, 0, 0, 0, 4, 4, 0},
		{0, 0, 0, 2, 0, 4, 3, 6},
	}
	m := Matrix(paperParams, s1, s2, nil, 0)
	for y := 1; y <= len(s1); y++ {
		for x := 1; x <= len(s2); x++ {
			if m[y][x] != want[y-1][x-1] {
				t.Errorf("M[%d][%d] = %d, want %d", y, x, m[y][x], want[y-1][x-1])
			}
		}
	}
	// highest score is 6, and it is in the bottom row (col 8)
	bottom := Score(paperParams, s1, s2)
	if got := MaxRowScore(bottom); got != 6 {
		t.Errorf("best bottom-row score = %d, want 6", got)
	}
	if bottom[7] != 6 {
		t.Errorf("bottom[8] = %d, want 6", bottom[7])
	}
}

func TestFigure2Traceback(t *testing.T) {
	s1 := seq.DNA.MustEncode("ATTGCGA")
	s2 := seq.DNA.MustEncode("CTTACAGA")
	m := Matrix(paperParams, s1, s2, nil, 0)
	a, err := Traceback(paperParams, m, s1, s2, nil, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a.Score != 6 {
		t.Errorf("score = %d, want 6", a.Score)
	}
	// TTACAGA / TT-GC-GA: matches T-T T-T A-G C-C G-G A-A
	want := []Pair{{2, 2}, {3, 3}, {4, 4}, {5, 5}, {6, 7}, {7, 8}}
	if len(a.Pairs) != len(want) {
		t.Fatalf("pairs = %v, want %v", a.Pairs, want)
	}
	for i, p := range want {
		if a.Pairs[i] != p {
			t.Fatalf("pairs = %v, want %v", a.Pairs, want)
		}
	}
	if a.Start() != (Pair{2, 2}) || a.End() != (Pair{7, 8}) {
		t.Errorf("start/end = %v/%v", a.Start(), a.End())
	}
}

func TestScoreEmptyOperands(t *testing.T) {
	s := seq.DNA.MustEncode("ACGT")
	if got := Score(paperParams, nil, s); len(got) != 4 || MaxRowScore(got) != 0 {
		t.Errorf("empty s1: %v", got)
	}
	if got := Score(paperParams, s, nil); len(got) != 0 {
		t.Errorf("empty s2: %v", got)
	}
}

// kernels under test, all of which must agree with the naive Equation-1
// reference on arbitrary inputs.
var kernels = []struct {
	name string
	f    func(p Params, s1, s2 []byte, tri *triangle.Triangle, r int) []int32
}{
	{"gotoh", func(p Params, s1, s2 []byte, tri *triangle.Triangle, r int) []int32 {
		return ScoreMasked(p, s1, s2, tri, r)
	}},
	{"striped-8", func(p Params, s1, s2 []byte, tri *triangle.Triangle, r int) []int32 {
		return ScoreStriped(p, s1, s2, tri, r, 8)
	}},
	{"striped-64", func(p Params, s1, s2 []byte, tri *triangle.Triangle, r int) []int32 {
		return ScoreStriped(p, s1, s2, tri, r, 64)
	}},
	{"matrix-bottom", func(p Params, s1, s2 []byte, tri *triangle.Triangle, r int) []int32 {
		m := Matrix(p, s1, s2, tri, r)
		return m[len(s1)][1:]
	}},
}

func TestKernelsAgreeWithNaive(t *testing.T) {
	protein := Params{Exch: scoring.BLOSUM62, Gap: scoring.DefaultProteinGap}
	for seed := uint64(0); seed < 6; seed++ {
		full := seq.SyntheticTitin(150, seed)
		m := full.Len()
		for _, r := range []int{1, 40, 75, 120, m - 1} {
			s1 := full.Codes[:r]
			s2 := full.Codes[r:]
			wantRow := ScoreNaive(protein, s1, s2, nil, 0)
			for _, k := range kernels {
				got := k.f(protein, s1, s2, nil, 0)
				if !equalRows(got, wantRow) {
					t.Fatalf("seed %d split %d: kernel %s disagrees with naive\n got %v\nwant %v",
						seed, r, k.name, got, wantRow)
				}
			}
		}
	}
}

func TestKernelsAgreeWithNaiveMasked(t *testing.T) {
	protein := Params{Exch: scoring.BLOSUM62, Gap: scoring.DefaultProteinGap}
	full := seq.SyntheticTitin(120, 3)
	m := full.Len()
	tri := triangle.New(m)
	// mark a scattering of pairs, including a run inside one row
	for _, p := range [][2]int{{10, 80}, {10, 81}, {10, 82}, {33, 40}, {50, 119}, {1, 2}, {60, 61}} {
		tri.Set(p[0], p[1])
	}
	for _, r := range []int{5, 30, 60, 90, 110} {
		s1 := full.Codes[:r]
		s2 := full.Codes[r:]
		wantRow := ScoreNaive(protein, s1, s2, tri, r)
		for _, k := range kernels {
			got := k.f(protein, s1, s2, tri, r)
			if !equalRows(got, wantRow) {
				t.Fatalf("split %d: kernel %s disagrees with naive under mask", r, k.name)
			}
		}
	}
}

func TestMaskForcesZero(t *testing.T) {
	// Mask the only match: the matrix must lose its signal entirely.
	s := seq.DNA.MustEncode("AA") // split r=1: align A vs A
	tri := triangle.New(2)
	tri.Set(1, 2)
	row := ScoreMasked(paperParams, s[:1], s[1:], tri, 1)
	if row[0] != 0 {
		t.Errorf("masked cell = %d, want 0", row[0])
	}
	unmasked := Score(paperParams, s[:1], s[1:])
	if unmasked[0] != 2 {
		t.Errorf("unmasked cell = %d, want 2", unmasked[0])
	}
}

// Override monotonicity: growing the triangle can only lower (or keep)
// bottom-row values, never raise them. This is the property that makes
// stale scores valid upper bounds in the task queue.
func TestOverrideMonotonicity(t *testing.T) {
	protein := Params{Exch: scoring.BLOSUM62, Gap: scoring.DefaultProteinGap}
	full := seq.SyntheticTitin(140, 9)
	m := full.Len()
	tri := triangle.New(m)
	r := 70
	s1, s2 := full.Codes[:r], full.Codes[r:]
	prevRow := ScoreMasked(protein, s1, s2, tri, r)
	marks := [][2]int{{35, 100}, {36, 101}, {37, 102}, {38, 103}, {10, 75}, {60, 130}}
	for _, p := range marks {
		tri.Set(p[0], p[1])
		row := ScoreMasked(protein, s1, s2, tri, r)
		for i := range row {
			if row[i] > prevRow[i] {
				t.Fatalf("after marking %v: bottom[%d] rose from %d to %d", p, i, prevRow[i], row[i])
			}
		}
		prevRow = row
	}
}

func TestTracebackScoresConsistent(t *testing.T) {
	// For random matrices: traceback from the best bottom cell must
	// reproduce the score by summing exchange values minus gap costs.
	protein := Params{Exch: scoring.BLOSUM62, Gap: scoring.DefaultProteinGap}
	for seed := uint64(0); seed < 5; seed++ {
		full := seq.SyntheticTitin(160, seed)
		r := 80
		s1, s2 := full.Codes[:r], full.Codes[r:]
		m := Matrix(protein, s1, s2, nil, r)
		endX, score, _ := BestValidEnd(m[len(s1)][1:], nil)
		if endX == 0 {
			continue
		}
		a, err := Traceback(protein, m, s1, s2, nil, r, endX)
		if err != nil {
			t.Fatal(err)
		}
		if a.Score != score {
			t.Fatalf("traceback score %d != matrix score %d", a.Score, score)
		}
		if got := pathScore(protein, s1, s2, a.Pairs); got != score {
			t.Fatalf("seed %d: recomputed path score %d, want %d (pairs %v)", seed, got, score, a.Pairs)
		}
		// pairs must be strictly increasing in both coordinates
		for i := 1; i < len(a.Pairs); i++ {
			if a.Pairs[i].Y <= a.Pairs[i-1].Y || a.Pairs[i].X <= a.Pairs[i-1].X {
				t.Fatalf("path not strictly increasing: %v", a.Pairs)
			}
		}
	}
}

// pathScore recomputes an alignment's score from its matched pairs under
// the paper's gap model: consecutive pairs (y,x) -> (y',x') cost a gap of
// length (y'-y-1) in one sequence and (x'-x-1) in the other.
func pathScore(p Params, s1, s2 []byte, pairs []Pair) int32 {
	var total int32
	for i, pr := range pairs {
		total += p.Exch.Score(s1[pr.Y-1], s2[pr.X-1])
		if i > 0 {
			dy := pr.Y - pairs[i-1].Y - 1
			dx := pr.X - pairs[i-1].X - 1
			total -= p.Gap.Cost(dy)
			total -= p.Gap.Cost(dx)
		}
	}
	return total
}

func TestBestValidEnd(t *testing.T) {
	bottom := []int32{0, 5, 3, 9, 9, 0}
	endX, score, rejected := BestValidEnd(bottom, nil)
	if endX != 4 || score != 9 || rejected != 0 {
		t.Errorf("unmasked: got (%d,%d,%d), want (4,9,0)", endX, score, rejected)
	}
	// shadow rejection: cell 4 changed value vs the original -> invalid
	orig := []int32{0, 5, 3, 12, 9, 0}
	endX, score, rejected = BestValidEnd(bottom, orig)
	if endX != 5 || score != 9 || rejected != 1 {
		t.Errorf("masked: got (%d,%d,%d), want (5,9,1)", endX, score, rejected)
	}
	// nothing valid
	endX, score, _ = BestValidEnd([]int32{0, 0}, nil)
	if endX != 0 || score != 0 {
		t.Errorf("all-zero: got (%d,%d), want (0,0)", endX, score)
	}
}

func TestTracebackErrors(t *testing.T) {
	s1 := seq.DNA.MustEncode("AC")
	s2 := seq.DNA.MustEncode("GT")
	m := Matrix(paperParams, s1, s2, nil, 0)
	if _, err := Traceback(paperParams, m, s1, s2, nil, 0, 1); err == nil {
		t.Error("traceback from zero cell did not error")
	}
	if _, err := Traceback(paperParams, m, s1, s2, nil, 0, 0); err == nil {
		t.Error("traceback from column 0 did not error")
	}
	if _, err := Traceback(paperParams, m, s1, s2, nil, 0, 3); err == nil {
		t.Error("traceback beyond last column did not error")
	}
}

func TestParamsValidate(t *testing.T) {
	if err := paperParams.Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	if err := (Params{Gap: scoring.PaperGap}).Validate(); err == nil {
		t.Error("nil matrix accepted")
	}
	if err := (Params{Exch: scoring.PaperDNA, Gap: scoring.Gap{Open: 1}}).Validate(); err == nil {
		t.Error("zero-extension gap accepted")
	}
}

func TestStripedBoundaryWidths(t *testing.T) {
	// widths around the operand length exercise the <=width fast path and
	// single-column stripes
	protein := Params{Exch: scoring.BLOSUM62, Gap: scoring.DefaultProteinGap}
	full := seq.SyntheticTitin(90, 2)
	r := 45
	s1, s2 := full.Codes[:r], full.Codes[r:]
	want := Score(protein, s1, s2)
	for _, w := range []int{1, 2, 3, 44, 45, 46, 100, 0, -5} {
		got := ScoreStriped(protein, s1, s2, nil, r, w)
		if !equalRows(got, want) {
			t.Errorf("width %d disagrees with unstriped kernel", w)
		}
	}
}

func TestCells(t *testing.T) {
	if Cells(100, 200) != 20000 {
		t.Errorf("Cells(100,200) = %d", Cells(100, 200))
	}
	for _, c := range [][2]int{{0, 5}, {5, 0}, {-3, 7}, {7, -3}, {-1, -1}} {
		if got := Cells(c[0], c[1]); got != 0 {
			t.Errorf("Cells(%d,%d) = %d, want 0", c[0], c[1], got)
		}
	}
	// The product saturates instead of wrapping negative.
	huge := int(math.MaxInt64 / 2)
	if got := Cells(huge, huge); got != math.MaxInt64 {
		t.Errorf("Cells(huge,huge) = %d, want MaxInt64", got)
	}
	if got := Cells(math.MaxInt64, 2); got != math.MaxInt64 {
		t.Errorf("Cells(MaxInt64,2) = %d, want MaxInt64", got)
	}
}

func equalRows(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
