package align

import "repro/internal/triangle"

// ScoreNaive computes the same bottom row as Score/ScoreMasked using
// Equation 1 of the paper verbatim: for every cell the gap candidates are
// found by explicit scans over the row above and the column to the left,
// without the MaxX/MaxY running maxima of Figure 3. Each cell therefore
// costs O(n), making a whole matrix O(n^3).
//
// This is the per-cell model of the pre-Gotoh old algorithm (the paper's
// O(n^4) baseline) and the oracle the optimised kernels are tested
// against. tri may be nil.
func ScoreNaive(p Params, s1, s2 []byte, tri *triangle.Triangle, r int) []int32 {
	len1, len2 := len(s1), len(s2)
	bottom := make([]int32, len2)
	if len1 == 0 || len2 == 0 {
		return bottom
	}
	m := NaiveMatrix(p, s1, s2, tri, r)
	copy(bottom, m[len1][1:])
	return bottom
}

// NaiveMatrix computes and returns the full (len1+1)×(len2+1) alignment
// matrix using the Equation-1 recurrence with explicit gap scans.
// Row/column 0 are the zero boundary. tri may be nil.
func NaiveMatrix(p Params, s1, s2 []byte, tri *triangle.Triangle, r int) [][]int32 {
	len1, len2 := len(s1), len(s2)
	m := make([][]int32, len1+1)
	for y := range m {
		m[y] = make([]int32, len2+1)
	}
	open, ext := p.Gap.Open, p.Gap.Ext
	for y := 1; y <= len1; y++ {
		row := p.Exch.Row(s1[y-1])
		base := 0
		if tri != nil {
			base = maskBase(tri, r, y)
		}
		for x := 1; x <= len2; x++ {
			if tri != nil && tri.GetAt(base+x-1) {
				m[y][x] = 0
				continue
			}
			best := m[y-1][x-1]
			// gap in the vertical sequence: predecessor in the row above,
			// k columns further left (a horizontal gap of length k)
			for k := 1; x-1-k >= 0; k++ {
				if c := m[y-1][x-1-k] - open - int32(k)*ext; c > best {
					best = c
				}
			}
			// gap in the horizontal sequence: predecessor in the column to
			// the left, k rows further up (a vertical gap of length k)
			for k := 1; y-1-k >= 0; k++ {
				if c := m[y-1-k][x-1] - open - int32(k)*ext; c > best {
					best = c
				}
			}
			v := best + int32(row[s2[x-1]])
			if v < 0 {
				v = 0
			}
			m[y][x] = v
		}
	}
	return m
}
