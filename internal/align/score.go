package align

import (
	"math"

	"repro/internal/triangle"
)

// Score computes the local alignment matrix of s1 (vertical) against s2
// (horizontal) in linear memory and returns the bottom row
// M[len(s1)][1..len(s2)]. The caller owns the returned slice.
//
// Per the bottom-row sufficiency argument of Appendix A, the top-alignment
// search only ever needs this row: its maximum is the split's score.
//
// Hot paths should reuse a Scratch ((*Scratch).Score and friends): the
// package-level functions allocate fresh buffers on every call.
func Score(p Params, s1, s2 []byte) []int32 {
	return new(Scratch).score(p, s1, s2, nil, 0)
}

// ScoreMasked is Score with override masking: cells whose global residue
// pair (y, r+x) is marked in tri are forced to zero (the paper's
// "overriding zeros"), where r is the split position of this matrix.
func ScoreMasked(p Params, s1, s2 []byte, tri *triangle.Triangle, r int) []int32 {
	if tri == nil {
		return new(Scratch).score(p, s1, s2, nil, 0)
	}
	return new(Scratch).score(p, s1, s2, tri, r)
}

// score is the shared kernel. tri == nil disables masking. All working
// memory comes from the receiver; the returned bottom row is arena-owned.
func (sc *Scratch) score(p Params, s1, s2 []byte, tri *triangle.Triangle, r int) []int32 {
	len1, len2 := len(s1), len(s2)
	bottom := growI32(&sc.bottom, len2)
	if len1 == 0 || len2 == 0 {
		for i := range bottom {
			bottom[i] = 0
		}
		return bottom
	}

	prev := growI32(&sc.prev, len2+1) // M[y-1][*]
	cur := growI32(&sc.cur, len2+1)   // M[y][*]
	maxY := growI32(&sc.maxY, len2+1) // column gap running maxima
	for i := range prev {
		prev[i] = 0
		maxY[i] = negInf
	}
	open, ext := p.Gap.Open, p.Gap.Ext

	for y := 1; y <= len1; y++ {
		row := p.Exch.Row(s1[y-1])
		maxX := int32(negInf)
		cur[0] = 0

		masked := false
		base := 0
		if tri != nil {
			base = maskBase(tri, r, y)
			masked = !tri.RowEmpty(base, len2)
		}

		if !masked {
			// fast path: no overridden pair in this row
			for x := 1; x <= len2; x++ {
				d := prev[x-1]
				best := d
				if maxX > best {
					best = maxX
				}
				if my := maxY[x]; my > best {
					best = my
				}
				v := best + int32(row[s2[x-1]])
				if v < 0 {
					v = 0
				}
				cur[x] = v
				g := d - open
				h := g
				if maxX > h {
					h = maxX
				}
				maxX = h - ext
				if my := maxY[x]; my > g {
					g = my
				}
				maxY[x] = g - ext
			}
		} else {
			for x := 1; x <= len2; x++ {
				d := prev[x-1]
				var v int32
				if tri.GetAt(base + x - 1) {
					v = 0
				} else {
					best := d
					if maxX > best {
						best = maxX
					}
					if my := maxY[x]; my > best {
						best = my
					}
					v = best + int32(row[s2[x-1]])
					if v < 0 {
						v = 0
					}
				}
				cur[x] = v
				g := d - open
				h := g
				if maxX > h {
					h = maxX
				}
				maxX = h - ext
				if my := maxY[x]; my > g {
					g = my
				}
				maxY[x] = g - ext
			}
		}
		prev, cur = cur, prev
	}
	sc.prev, sc.cur = prev, cur // keep the swap so reuse stays coherent
	copy(bottom, prev[1:])
	return bottom
}

// Cells returns the number of matrix entries a score computation over
// these operand lengths touches (used by the instrumentation and the
// discrete-event cost model). Non-positive operand lengths contribute no
// cells, so malformed inputs cannot produce a negative count, and the
// product saturates at MaxInt64 rather than wrapping for absurd lengths.
func Cells(len1, len2 int) int64 {
	if len1 <= 0 || len2 <= 0 {
		return 0
	}
	if int64(len1) > math.MaxInt64/int64(len2) {
		return math.MaxInt64
	}
	return int64(len1) * int64(len2)
}
