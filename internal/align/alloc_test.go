package align

import (
	"testing"

	"repro/internal/scoring"
	"repro/internal/seq"
	"repro/internal/triangle"
)

// The scratch-based score kernels must be allocation-free once warm:
// every buffer comes from the Scratch arena, which grows monotonically
// and is reset, never reallocated, on reuse. This is the PR's hot-path
// contract (DESIGN.md section 10); a regression here silently reopens
// the per-alignment make traffic the arena removed.
func TestScoreKernelsZeroAllocsWarm(t *testing.T) {
	p := Params{Exch: scoring.BLOSUM62, Gap: scoring.DefaultProteinGap}
	full := seq.SyntheticTitin(300, 2)
	m := full.Len()
	r := m / 3
	s1, s2 := full.Codes[:r], full.Codes[r:]
	tri := triangle.New(m)
	for _, pr := range [][2]int{{10, 120}, {10, 121}, {40, 250}, {r - 1, r + 5}} {
		tri.Set(pr[0], pr[1])
	}

	sc := NewScratch()
	cases := []struct {
		name string
		f    func()
	}{
		{"Score", func() { sc.Score(p, s1, s2) }},
		{"ScoreMasked", func() { sc.ScoreMasked(p, s1, s2, tri, r) }},
		{"ScoreStriped", func() { sc.ScoreStriped(p, s1, s2, tri, r, 64) }},
	}
	for _, c := range cases {
		c.f() // warm the arena
		if allocs := testing.AllocsPerRun(50, c.f); allocs != 0 {
			t.Errorf("%s: %.1f allocs/op on warm scratch, want 0", c.name, allocs)
		}
	}
}

// The traceback path reuses the Scratch full-matrix arena and pair
// accumulator; on a warm scratch a same-size traceback should stay
// within a couple of allocations (the returned Alignment itself).
func TestTracebackLowAllocsWarm(t *testing.T) {
	p := Params{Exch: scoring.BLOSUM62, Gap: scoring.DefaultProteinGap}
	full := seq.SyntheticTitin(200, 5)
	r := full.Len() / 2
	s1, s2 := full.Codes[:r], full.Codes[r:]

	sc := NewScratch()
	run := func() {
		mtx := sc.Matrix(p, s1, s2, nil, r)
		endX, _, _ := BestValidEnd(mtx[len(s1)][1:], nil)
		if endX == 0 {
			t.Fatal("no alignment end found")
		}
		if _, err := sc.Traceback(p, mtx, s1, s2, nil, r, endX); err != nil {
			t.Fatal(err)
		}
	}
	run()
	// The Alignment struct and its retained Pairs copy are returned to
	// the caller, so they are necessarily fresh allocations; everything
	// else must come from the arena.
	if allocs := testing.AllocsPerRun(20, run); allocs > 3 {
		t.Errorf("traceback: %.1f allocs/op on warm scratch, want <= 3", allocs)
	}
}
