package align

import (
	"fmt"

	"repro/internal/triangle"
)

// Rect is a rectangular window in global pair space: rows Y0..Y1 are
// prefix positions, columns X0..X1 suffix positions (all 1-based,
// inclusive) of one sequence, with Y1 < X0 so that every cell (y, x) of
// the window is a valid ordered pair y < x of the override triangle.
//
// The windowed kernels below are the banded-extension stage of the
// seed-filter-extend prefilter (DESIGN.md section 13): they run the same
// Gotoh recurrence as the full-matrix kernels but only over the window,
// with the zero local-alignment boundary on the window edges. An
// alignment confined to the window scores identically to the full
// matrix; alignments that would enter the window from outside are lost —
// that is the prefilter's sensitivity trade, bounded by the candidate
// padding chosen in internal/seedindex.
type Rect struct {
	Y0, Y1, X0, X1 int
}

// H returns the window height (rows).
func (w Rect) H() int { return w.Y1 - w.Y0 + 1 }

// W returns the window width (columns).
func (w Rect) W() int { return w.X1 - w.X0 + 1 }

// Cells returns the number of matrix entries a windowed score pass
// computes.
func (w Rect) Cells() int64 { return Cells(w.H(), w.W()) }

// Validate rejects windows that are empty, out of range for sequence
// length m, or that touch the diagonal (Y1 must stay below X0 so every
// cell maps to an ordered triangle pair).
func (w Rect) Validate(m int) error {
	if w.Y0 < 1 || w.Y1 < w.Y0 || w.X0 <= w.Y1 || w.X1 < w.X0 || w.X1 > m {
		return fmt.Errorf("align: invalid window rows [%d,%d] cols [%d,%d] for length %d",
			w.Y0, w.Y1, w.X0, w.X1, m)
	}
	return nil
}

// winMaskBase returns the raw triangle index of pair (y, w.X0): the mask
// base of window row y. Columns are contiguous from it.
func winMaskBase(tri *triangle.Triangle, w Rect, y int) int {
	return tri.RowOffset(y) + (w.X0 - y - 1)
}

// ScoreWindow computes the windowed local-alignment matrix of s against
// itself over window w and returns the window's bottom row (row w.Y1,
// columns w.X0..w.X1). tri == nil disables override masking. The
// returned row is arena-owned and valid until the next call on sc.
func (sc *Scratch) ScoreWindow(p Params, s []byte, w Rect, tri *triangle.Triangle) []int32 {
	width := w.W()
	bottom := growI32(&sc.bottom, width)
	prev := growI32(&sc.prev, width+1)
	cur := growI32(&sc.cur, width+1)
	maxY := growI32(&sc.maxY, width+1)
	for i := range prev {
		prev[i] = 0
		maxY[i] = negInf
	}
	open, ext := p.Gap.Open, p.Gap.Ext

	for y := w.Y0; y <= w.Y1; y++ {
		row := p.Exch.Row(s[y-1])
		maxX := int32(negInf)
		cur[0] = 0

		masked := false
		base := 0
		if tri != nil {
			base = winMaskBase(tri, w, y)
			masked = !tri.RowEmpty(base, width)
		}
		for x := 1; x <= width; x++ {
			d := prev[x-1]
			var v int32
			if masked && tri.GetAt(base+x-1) {
				v = 0
			} else {
				best := d
				if maxX > best {
					best = maxX
				}
				if my := maxY[x]; my > best {
					best = my
				}
				v = best + int32(row[s[w.X0+x-2]])
				if v < 0 {
					v = 0
				}
			}
			cur[x] = v
			g := d - open
			h := g
			if maxX > h {
				h = maxX
			}
			maxX = h - ext
			if my := maxY[x]; my > g {
				g = my
			}
			maxY[x] = g - ext
		}
		prev, cur = cur, prev
	}
	sc.prev, sc.cur = prev, cur
	copy(bottom, prev[1:])
	return bottom
}

// MatrixWindow computes the full windowed matrix with rows 0..H and
// columns 0..W (row and column 0 are the zero boundary); cell (y, x)
// covers global pair (w.Y0-1+y, w.X0-1+x). Used for tracebacks of
// accepted prefilter alignments. The matrix is arena-owned and valid
// until the next call on sc.
func (sc *Scratch) MatrixWindow(p Params, s []byte, w Rect, tri *triangle.Triangle) [][]int32 {
	h, width := w.H(), w.W()
	if cap(sc.rows) < h+1 {
		sc.rows = make([][]int32, h+1)
	}
	m := sc.rows[:h+1]
	if cap(sc.flat) < (h+1)*(width+1) {
		sc.flat = make([]int32, (h+1)*(width+1))
	}
	flat := sc.flat[:(h+1)*(width+1)]
	for y := range m {
		m[y] = flat[y*(width+1) : (y+1)*(width+1)]
		m[y][0] = 0
	}
	for x := range m[0] {
		m[0][x] = 0
	}
	maxY := growI32(&sc.maxY, width+1)
	for i := range maxY {
		maxY[i] = negInf
	}
	open, ext := p.Gap.Open, p.Gap.Ext
	for y := 1; y <= h; y++ {
		gy := w.Y0 - 1 + y
		row := p.Exch.Row(s[gy-1])
		maxX := int32(negInf)
		base := 0
		if tri != nil {
			base = winMaskBase(tri, w, gy)
		}
		prev, cur := m[y-1], m[y]
		for x := 1; x <= width; x++ {
			d := prev[x-1]
			var v int32
			if tri != nil && tri.GetAt(base+x-1) {
				v = 0
			} else {
				best := d
				if maxX > best {
					best = maxX
				}
				if my := maxY[x]; my > best {
					best = my
				}
				v = best + int32(row[s[w.X0+x-2]])
				if v < 0 {
					v = 0
				}
			}
			cur[x] = v
			g := d - open
			h2 := g
			if maxX > h2 {
				h2 = maxX
			}
			maxX = h2 - ext
			if my := maxY[x]; my > g {
				g = my
			}
			maxY[x] = g - ext
		}
	}
	return m
}

// TracebackWindow reconstructs the alignment ending at window bottom-row
// column endX (1-based, window-local) from a matrix produced by
// MatrixWindow with the same parameters and mask. Returned pairs are in
// window-local coordinates; callers map (Y, X) to global positions
// (w.Y0-1+Y, w.X0-1+X). The predecessor tie order matches Traceback
// (diagonal, then horizontal gaps by increasing length, then vertical),
// so reconstructions are deterministic.
func (sc *Scratch) TracebackWindow(p Params, m [][]int32, s []byte, w Rect, tri *triangle.Triangle, endX int) (Alignment, error) {
	h := w.H()
	if endX < 1 || endX > w.W() {
		return Alignment{}, fmt.Errorf("align: window traceback end column %d out of range", endX)
	}
	y, x := h, endX
	score := m[y][x]
	if score <= 0 {
		return Alignment{}, fmt.Errorf("align: window traceback from non-positive cell (%d,%d)=%d", y, x, score)
	}
	open, ext := p.Gap.Open, p.Gap.Ext
	rev := sc.rev[:0]
	for {
		v := m[y][x]
		rev = append(rev, Pair{Y: y, X: x})
		gy, gx := w.Y0-1+y, w.X0-1+x
		if tri != nil && tri.GetAt(winMaskBase(tri, w, gy)+x-1) {
			return Alignment{}, fmt.Errorf("align: window traceback crossed overridden cell (%d,%d)", gy, gx)
		}
		e := p.Exch.Score(s[gy-1], s[gx-1])
		best := v - e
		if best == 0 {
			break // fresh local start
		}
		if m[y-1][x-1] == best {
			y, x = y-1, x-1
			if y == 0 || x == 0 {
				break
			}
			if m[y][x] == 0 {
				break
			}
			continue
		}
		moved := false
		for k := 1; x-1-k >= 0; k++ {
			if m[y-1][x-1-k]-open-int32(k)*ext == best && m[y-1][x-1-k] > 0 {
				y, x = y-1, x-1-k
				moved = true
				break
			}
		}
		if !moved {
			for k := 1; y-1-k >= 0; k++ {
				if m[y-1-k][x-1]-open-int32(k)*ext == best && m[y-1-k][x-1] > 0 {
					y, x = y-1-k, x-1
					moved = true
					break
				}
			}
		}
		if !moved {
			return Alignment{}, fmt.Errorf("align: window traceback: no predecessor at (%d,%d)=%d", y, x, v)
		}
	}
	sc.rev = rev
	pairs := make([]Pair, len(rev))
	for i, pr := range rev {
		pairs[len(rev)-1-i] = pr
	}
	return Alignment{Score: score, Pairs: pairs}, nil
}
