package align

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/scoring"
	"repro/internal/seq"
	"repro/internal/triangle"
)

// Property: every bottom-row value is non-negative and bounded by the
// best possible chain of matches (min(len1,len2) * max exchange score).
func TestScoreBoundsProperty(t *testing.T) {
	p := Params{Exch: scoring.BLOSUM62, Gap: scoring.DefaultProteinGap}
	maxE := p.Exch.MaxScore()
	f := func(seed uint64, a, b uint8) bool {
		r := rand.New(rand.NewPCG(seed, 1))
		len1, len2 := 1+int(a)%60, 1+int(b)%60
		s1, s2 := randCodes(r, len1), randCodes(r, len2)
		row := Score(p, s1, s2)
		bound := int32(min(len1, len2)) * maxE
		for _, v := range row {
			if v < 0 || v > bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: appending a residue to the horizontal sequence adds one
// bottom-row column and leaves the existing columns unchanged, so the
// split score is monotone in suffix extension.
func TestScoreSuffixExtensionProperty(t *testing.T) {
	p := Params{Exch: scoring.BLOSUM62, Gap: scoring.DefaultProteinGap}
	f := func(seed uint64, a, b uint8) bool {
		r := rand.New(rand.NewPCG(seed, 2))
		len1, len2 := 1+int(a)%40, 1+int(b)%40
		s1, s2 := randCodes(r, len1), randCodes(r, len2+1)
		short := Score(p, s1, s2[:len2])
		long := Score(p, s1, s2)
		for i := range short {
			if short[i] != long[i] {
				return false
			}
		}
		return MaxRowScore(long) >= MaxRowScore(short)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: aligning a sequence against an exact copy of itself scores
// exactly the sum of its self-exchange values (the full diagonal, no
// gaps), and that alignment ends in the last column.
func TestPerfectSelfAlignment(t *testing.T) {
	p := Params{Exch: scoring.BLOSUM62, Gap: scoring.DefaultProteinGap}
	f := func(seed uint64, a uint8) bool {
		r := rand.New(rand.NewPCG(seed, 3))
		n := 1 + int(a)%50
		s := randCodes(r, n)
		var want int32
		for _, c := range s {
			want += p.Exch.Score(c, c)
		}
		row := Score(p, s, s)
		// the perfect diagonal ends at the last column; a longer local
		// path cannot beat it since every self-score is the row maximum
		return row[n-1] >= want && MaxRowScore(row) >= want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: all kernels agree on random inputs (the fuzz version of the
// fixed-case equivalence tests).
func TestKernelEquivalenceProperty(t *testing.T) {
	p := Params{Exch: scoring.PAM250, Gap: scoring.Gap{Open: 6, Ext: 2}}
	f := func(seed uint64, a, b, w uint8) bool {
		r := rand.New(rand.NewPCG(seed, 4))
		len1, len2 := 1+int(a)%32, 1+int(b)%32
		s1, s2 := randCodes(r, len1), randCodes(r, len2)
		want := ScoreNaive(p, s1, s2, nil, 0)
		got1 := Score(p, s1, s2)
		got2 := ScoreStriped(p, s1, s2, nil, 0, 1+int(w)%10)
		for i := range want {
			if got1[i] != want[i] || got2[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: traceback reconstructs a path whose recomputed score always
// equals the matrix score it started from.
func TestTracebackScoreProperty(t *testing.T) {
	p := Params{Exch: scoring.BLOSUM62, Gap: scoring.DefaultProteinGap}
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 5))
		s := seq.SyntheticTitin(40+int(seed%40), seed).Codes
		split := 10 + r.IntN(len(s)-20)
		s1, s2 := s[:split], s[split:]
		m := Matrix(p, s1, s2, nil, split)
		endX, score, _ := BestValidEnd(m[len(s1)][1:], nil)
		if endX == 0 {
			return true
		}
		al, err := Traceback(p, m, s1, s2, nil, split, endX)
		if err != nil {
			return false
		}
		return al.Score == score
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: the masked kernels agree with the naive recurrence when the
// override triangle touches the matrix borders — pairs in the first
// matrix row (y=1) and first column (x=1), where overriding zeros
// interact with the recurrence's implicit zero borders, and at the
// extreme splits r=1 (one-row matrix) and r=m-1 (one-column matrix).
func TestMaskedMatchesNaiveBorderProperty(t *testing.T) {
	p := Params{Exch: scoring.BLOSUM62, Gap: scoring.DefaultProteinGap}
	f := func(seed uint64, a uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 7))
		m := 4 + int(a)%44
		s := randCodes(rng, m)
		splits := []int{1, 2, m - 1, 1 + rng.IntN(m-1)}
		for _, split := range splits {
			tri := triangle.New(m)
			s1, s2 := s[:split], s[split:]
			// Border-biased mask: pairs in matrix row y=1, in matrix
			// column x=1, the corner, plus a few interior pairs.
			for k := 0; k < 4; k++ {
				x := 1 + rng.IntN(m-split) // pair (1, split+x): row 1
				tri.Set(1, split+x)
				if y := 1 + rng.IntN(split); y <= split { // pair (y, split+1): column 1
					tri.Set(y, split+1)
				}
			}
			tri.Set(1, split+1) // the corner cell
			for k := 0; k < 3; k++ {
				i := 1 + rng.IntN(m-1)
				j := i + 1 + rng.IntN(m-i)
				tri.Set(i, j)
			}
			want := ScoreNaive(p, s1, s2, tri, split)
			var sc Scratch
			for name, got := range map[string][]int32{
				"masked":  ScoreMasked(p, s1, s2, tri, split),
				"scratch": sc.ScoreMasked(p, s1, s2, tri, split),
				"striped": ScoreStriped(p, s1, s2, tri, split, 32),
			} {
				if len(got) != len(want) {
					t.Logf("seed %d m %d split %d: %s row length %d, want %d", seed, m, split, name, len(got), len(want))
					return false
				}
				for i := range want {
					if got[i] != want[i] {
						t.Logf("seed %d m %d split %d: %s[%d] = %d, want %d", seed, m, split, name, i, got[i], want[i])
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func randCodes(r *rand.Rand, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(r.IntN(20))
	}
	return out
}
