// Package align implements the Smith-Waterman/Gotoh local alignment
// kernels of the paper (Figure 3), including the override-masked variants
// used during top-alignment search, the cache-aware striped kernel of
// Section 4.1, and full-matrix traceback.
//
// Conventions: s1 is the vertical sequence (the prefix of a split), s2
// the horizontal one (the suffix). Matrix coordinates are 1-based:
// (y, x) with 1 <= y <= len(s1), 1 <= x <= len(s2); row y aligns residue
// s1[y-1], column x residue s2[x-1]. The recurrence attaches gaps before
// a match, so every cell on an alignment path is a matched residue pair —
// exactly the pairs recorded in the override triangle.
package align

import (
	"fmt"
	"math"

	"repro/internal/scoring"
	"repro/internal/triangle"
)

// negInf is the kernel's -infinity. It is far enough from MinInt32 that
// repeated gap-extension subtraction cannot wrap around.
const negInf = math.MinInt32 / 4

// Params bundles the scoring model for a set of alignments.
type Params struct {
	Exch *scoring.Matrix
	Gap  scoring.Gap
}

// Validate rejects unusable parameter sets.
func (p Params) Validate() error {
	if p.Exch == nil {
		return fmt.Errorf("align: nil exchange matrix")
	}
	if err := p.Gap.Validate(); err != nil {
		return err
	}
	return nil
}

// Pair is a matched residue pair on an alignment path, in local matrix
// coordinates (Y over s1, X over s2, both 1-based).
type Pair struct {
	Y, X int
}

// Alignment is a reconstructed local alignment path: the matched pairs in
// path order (top-left to bottom-right) and the alignment score.
type Alignment struct {
	Score int32
	Pairs []Pair
}

// End returns the last matched pair (the bottom-right path end). It
// panics on an empty alignment.
func (a *Alignment) End() Pair { return a.Pairs[len(a.Pairs)-1] }

// Start returns the first matched pair.
func (a *Alignment) Start() Pair { return a.Pairs[0] }

// maskBase returns the raw triangle index of the pair corresponding to
// local cell (y, x=1) for split r — global pair (y, r+1). Column x adds
// x-1 to this base (the triangle's row-major layout makes columns
// contiguous).
func maskBase(tri *triangle.Triangle, r, y int) int {
	return tri.RowOffset(y) + r - y
}

// MaxRowScore returns the maximum of a bottom row.
func MaxRowScore(row []int32) int32 {
	best := int32(0)
	for _, v := range row {
		if v > best {
			best = v
		}
	}
	return best
}
