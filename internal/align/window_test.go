package align

import (
	"math/rand/v2"
	"testing"

	"repro/internal/scoring"
	"repro/internal/seq"
	"repro/internal/triangle"
)

// windowParams returns the standard protein scoring model for tests.
func windowParams(t *testing.T) Params {
	t.Helper()
	exch, ok := scoring.ByName("BLOSUM62")
	if !ok {
		t.Fatal("BLOSUM62 not registered")
	}
	return Params{Exch: exch, Gap: scoring.DefaultProteinGap}
}

// TestScoreWindowMatchesSplitKernel checks that a window spanning the
// entire split matrix [1..r] x [r+1..m] reproduces the split kernel's
// bottom row exactly, unmasked and masked.
func TestScoreWindowMatchesSplitKernel(t *testing.T) {
	p := windowParams(t)
	for seed := uint64(1); seed <= 5; seed++ {
		s := seq.Tandem(seq.TandemSpec{UnitLen: 20, Copies: 5, FlankLen: 10,
			Profile: seq.DefaultDivergence, Seed: seed}).Codes
		m := len(s)
		tri := triangle.New(m)
		r := m / 2
		// Mark some random pairs to exercise masking.
		rng := rand.New(rand.NewPCG(seed, 42))
		for k := 0; k < 50; k++ {
			i := 1 + rng.IntN(m-1)
			j := i + 1 + rng.IntN(m-i)
			tri.Set(i, j)
		}
		for _, tc := range []*triangle.Triangle{nil, tri} {
			want := ScoreMasked(p, s[:r], s[r:], tc, r)
			got := new(Scratch).ScoreWindow(p, s, Rect{Y0: 1, Y1: r, X0: r + 1, X1: m}, tc)
			if len(got) != len(want) {
				t.Fatalf("seed %d: row length %d != %d", seed, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed %d masked=%v: col %d: window %d != split %d",
						seed, tc != nil, i, got[i], want[i])
				}
			}
		}
	}
}

// TestScoreWindowSubwindowConsistency checks that a sub-window's matrix
// values match a brute-force recurrence restricted to the window.
func TestScoreWindowSubwindowConsistency(t *testing.T) {
	p := windowParams(t)
	s := seq.Tandem(seq.TandemSpec{UnitLen: 15, Copies: 6, FlankLen: 5,
		Profile: seq.DefaultDivergence, Seed: 7}).Codes
	m := len(s)
	rng := rand.New(rand.NewPCG(9, 9))
	tri := triangle.New(m)
	for k := 0; k < 40; k++ {
		i := 1 + rng.IntN(m-1)
		j := i + 1 + rng.IntN(m-i)
		tri.Set(i, j)
	}
	for trial := 0; trial < 20; trial++ {
		y0 := 1 + rng.IntN(m/2)
		y1 := y0 + rng.IntN(m/2-1)
		if y1 >= m {
			y1 = m - 1
		}
		x0 := y1 + 1 + rng.IntN(m-y1)
		if x0 > m {
			x0 = m
		}
		x1 := x0 + rng.IntN(m-x0+1)
		w := Rect{Y0: y0, Y1: y1, X0: x0, X1: x1}
		if err := w.Validate(m); err != nil {
			t.Fatalf("trial %d: generated invalid window: %v", trial, err)
		}
		mtx := new(Scratch).MatrixWindow(p, s, w, tri)
		bottom := new(Scratch).ScoreWindow(p, s, w, tri)
		for x := 1; x <= w.W(); x++ {
			if mtx[w.H()][x] != bottom[x-1] {
				t.Fatalf("trial %d: bottom row mismatch at col %d: matrix %d, score %d",
					trial, x, mtx[w.H()][x], bottom[x-1])
			}
		}
		// Brute-force the windowed recurrence.
		naive := naiveWindow(p, s, w, tri)
		for y := 0; y <= w.H(); y++ {
			for x := 0; x <= w.W(); x++ {
				if mtx[y][x] != naive[y][x] {
					t.Fatalf("trial %d window %+v: cell (%d,%d): kernel %d, naive %d",
						trial, w, y, x, mtx[y][x], naive[y][x])
				}
			}
		}
	}
}

// naiveWindow is an O(HW(H+W)) reference implementation of the windowed
// recurrence with explicit gap minimisation.
func naiveWindow(p Params, s []byte, w Rect, tri *triangle.Triangle) [][]int32 {
	h, width := w.H(), w.W()
	m := make([][]int32, h+1)
	for y := range m {
		m[y] = make([]int32, width+1)
	}
	for y := 1; y <= h; y++ {
		gy := w.Y0 - 1 + y
		for x := 1; x <= width; x++ {
			gx := w.X0 - 1 + x
			if tri != nil && tri.Get(gy, gx) {
				m[y][x] = 0
				continue
			}
			best := m[y-1][x-1]
			for k := 1; x-1-k >= 0; k++ {
				if v := m[y-1][x-1-k] - p.Gap.Open - int32(k)*p.Gap.Ext; v > best {
					best = v
				}
			}
			for k := 1; y-1-k >= 0; k++ {
				if v := m[y-1-k][x-1] - p.Gap.Open - int32(k)*p.Gap.Ext; v > best {
					best = v
				}
			}
			v := best + p.Exch.Score(s[gy-1], s[gx-1])
			if v < 0 {
				v = 0
			}
			m[y][x] = v
		}
	}
	return m
}

// TestTracebackWindowMatchesFull checks that windowed traceback over the
// full split window reconstructs the same pairs as the full traceback.
func TestTracebackWindowMatchesFull(t *testing.T) {
	p := windowParams(t)
	s := seq.Tandem(seq.TandemSpec{UnitLen: 18, Copies: 4, FlankLen: 8,
		Profile: seq.DefaultDivergence, Seed: 3}).Codes
	m := len(s)
	r := m / 2
	w := Rect{Y0: 1, Y1: r, X0: r + 1, X1: m}
	full := Matrix(p, s[:r], s[r:], nil, r)
	win := new(Scratch).MatrixWindow(p, s, w, nil)
	endX, score, _ := BestValidEnd(full[r][1:], nil)
	if endX == 0 {
		t.Skip("no positive alignment in this synthetic input")
	}
	wantA, err := Traceback(p, full, s[:r], s[r:], nil, r, endX)
	if err != nil {
		t.Fatalf("full traceback: %v", err)
	}
	gotA, err := new(Scratch).TracebackWindow(p, win, s, w, nil, endX)
	if err != nil {
		t.Fatalf("window traceback: %v", err)
	}
	if gotA.Score != wantA.Score || gotA.Score != score {
		t.Fatalf("scores differ: window %d, full %d, row %d", gotA.Score, wantA.Score, score)
	}
	if len(gotA.Pairs) != len(wantA.Pairs) {
		t.Fatalf("pair counts differ: window %d, full %d", len(gotA.Pairs), len(wantA.Pairs))
	}
	for i := range wantA.Pairs {
		// Full traceback pairs are split-local (Y in prefix, X in suffix);
		// window pairs are window-local. Both map to the same globals.
		wg := Pair{Y: wantA.Pairs[i].Y, X: r + wantA.Pairs[i].X}
		gg := Pair{Y: w.Y0 - 1 + gotA.Pairs[i].Y, X: w.X0 - 1 + gotA.Pairs[i].X}
		if wg != gg {
			t.Fatalf("pair %d differs: window %+v, full %+v", i, gg, wg)
		}
	}
}
