// Package dessim is a discrete-event simulator of the paper's
// master/slave cluster (Section 4.3), used to regenerate Figure 8 —
// speed improvement versus number of processors for different top
// alignment counts.
//
// The measurement host for this reproduction has a single CPU, so the
// 64-node dual-Pentium-III Myrinet cluster cannot be timed directly
// (see DESIGN.md's substitution table). Instead, a real sequential run
// of the new algorithm is *recorded* — which splits are realigned
// between consecutive top alignments, and how many matrix cells each
// alignment and traceback costs — and the recorded workload is replayed
// under a cluster cost model: per-worker SIMD-accelerated alignment
// throughput, a sacrificed master with per-message service time, link
// latency, bandwidth-limited original-row transfers with per-slave
// caching, and the sequential traceback on the master.
//
// The simulator replays rounds strictly (all realignments between two
// acceptances finish before the traceback), matching the paper's
// observation that parallelism between acceptances is limited to the
// 3-10% of matrices that need realignment — the effect that bends the
// Figure 8 curves down as the number of top alignments grows.
package dessim

import (
	"fmt"

	"repro/internal/topalign"
)

// Task is one recorded alignment work item.
type Task struct {
	R     int   // split
	Cells int64 // matrix entries the alignment computes
}

// Round is the work between two accepted top alignments: the
// realignments that actually happened (for round 0, the initial
// alignment of every split), followed by the acceptance traceback.
type Round struct {
	Tasks          []Task
	TracebackCells int64 // 0 when the trace ended without an acceptance
}

// Trace is a recorded sequential run.
type Trace struct {
	M      int // sequence length
	Rounds []Round
}

// Tops returns the number of accepted top alignments in the trace.
func (t *Trace) Tops() int {
	n := 0
	for _, r := range t.Rounds {
		if r.TracebackCells > 0 {
			n++
		}
	}
	return n
}

// AlignCells sums the alignment cells of the first `tops` rounds.
func (t *Trace) AlignCells(tops int) int64 {
	var total int64
	for i := 0; i < tops && i < len(t.Rounds); i++ {
		for _, task := range t.Rounds[i].Tasks {
			total += task.Cells
		}
	}
	return total
}

// Record runs the sequential algorithm on s and records its workload.
// The configuration is forced to scalar task granularity (GroupLanes 1)
// so each recorded task is one split.
func Record(s []byte, cfg topalign.Config) (*Trace, error) {
	cfg.GroupLanes = 1
	e, err := topalign.NewEngine(s, cfg)
	if err != nil {
		return nil, err
	}
	q := topalign.InitialQueue(e)
	m := e.Len()
	tr := &Trace{M: m, Rounds: []Round{{}}}
	cur := &tr.Rounds[0]
	for e.NumTopsFound() < cfg.NumTops && q.Len() > 0 {
		t := q.Pop()
		if t.Score != topalign.Infinity && t.Score < e.Config().MinScore {
			break
		}
		if t.AlignedWith == e.NumTopsFound() {
			if _, err := topalign.Accept(e, t); err != nil {
				return nil, err
			}
			cur.TracebackCells = int64(t.R) * int64(m-t.R)
			tr.Rounds = append(tr.Rounds, Round{})
			cur = &tr.Rounds[len(tr.Rounds)-1]
		} else {
			topalign.Realign(e, t, e.Triangle(), e.NumTopsFound())
			cur.Tasks = append(cur.Tasks, Task{R: t.R, Cells: int64(t.R) * int64(m-t.R)})
		}
		q.Push(t)
	}
	// drop a trailing empty round left after the final acceptance
	if last := len(tr.Rounds) - 1; last >= 0 &&
		len(tr.Rounds[last].Tasks) == 0 && tr.Rounds[last].TracebackCells == 0 {
		tr.Rounds = tr.Rounds[:last]
	}
	if tr.Tops() == 0 {
		return nil, fmt.Errorf("dessim: recorded run found no top alignments")
	}
	return tr, nil
}

// Model is the cluster cost model. The defaults are calibrated to the
// paper's hardware (Section 5): a 1 GHz Pentium III computing on the
// order of 150M matrix cells/s conventionally and >1G cells/s with SSE
// (SimdFactor 6.8, the measured whole-run improvement), Myrinet-class
// latency, and a master service time small enough that 64 KB/s per
// slave never bottlenecks.
type Model struct {
	// ScalarCellsPerSec is single-CPU conventional kernel throughput.
	ScalarCellsPerSec float64
	// SimdFactor multiplies worker throughput (the SSE speedup).
	SimdFactor float64
	// MasterServiceSec is the master's per-message handling time.
	MasterServiceSec float64
	// LatencySec is the one-way network latency.
	LatencySec float64
	// BandwidthBytesPerSec limits original-row transfers.
	BandwidthBytesPerSec float64
}

// PaperModel returns the cost model calibrated to the paper's testbed.
func PaperModel() Model {
	return Model{
		ScalarCellsPerSec:    155e6,
		SimdFactor:           6.8,
		MasterServiceSec:     5e-6,
		LatencySec:           10e-6,
		BandwidthBytesPerSec: 200e6,
	}
}

// Validate rejects non-positive model parameters.
func (m Model) Validate() error {
	if m.ScalarCellsPerSec <= 0 || m.SimdFactor <= 0 ||
		m.MasterServiceSec < 0 || m.LatencySec < 0 || m.BandwidthBytesPerSec <= 0 {
		return fmt.Errorf("dessim: invalid model %+v", m)
	}
	return nil
}

// Result is one simulated configuration.
type Result struct {
	Procs       int
	Tops        int
	WallSeconds float64
	// SeqSeconds is the conventional (non-SIMD) sequential time for the
	// same work: the Figure 8 baseline.
	SeqSeconds float64
	// Speedup is SeqSeconds / WallSeconds.
	Speedup float64
	// RowBytes is the total original-row traffic moved over the network.
	RowBytes int64
}

// Simulate replays the first `tops` acceptances of the trace on `procs`
// processors under the model. procs == 1 models the plain sequential
// SIMD run (no master); procs >= 2 models 1 sacrificed master plus
// procs-1 SIMD workers.
func Simulate(tr *Trace, model Model, procs, tops int) (Result, error) {
	if err := model.Validate(); err != nil {
		return Result{}, err
	}
	if procs < 1 {
		return Result{}, fmt.Errorf("dessim: procs %d must be >= 1", procs)
	}
	if tops < 1 || tops > tr.Tops() {
		return Result{}, fmt.Errorf("dessim: tops %d outside trace's 1..%d", tops, tr.Tops())
	}
	res := Result{Procs: procs, Tops: tops}

	// Sequential conventional baseline over the same rounds.
	var seqCells, tbCells int64
	rounds := 0
	for _, rd := range tr.Rounds {
		if rounds == tops {
			break
		}
		for _, task := range rd.Tasks {
			seqCells += task.Cells
		}
		tbCells += rd.TracebackCells
		if rd.TracebackCells > 0 {
			rounds++
		}
	}
	res.SeqSeconds = float64(seqCells+tbCells) / model.ScalarCellsPerSec

	workerRate := model.ScalarCellsPerSec * model.SimdFactor
	if procs == 1 {
		res.WallSeconds = float64(seqCells)/workerRate + float64(tbCells)/model.ScalarCellsPerSec
		res.Speedup = res.SeqSeconds / res.WallSeconds
		return res, nil
	}

	workers := procs - 1
	rowSeen := make([]map[int]bool, workers)
	for i := range rowSeen {
		rowSeen[i] = make(map[int]bool)
	}
	var masterFree float64

	// per-worker next event: a work request (round start or piggybacked
	// on a result message) or a result arrival
	const (
		evRequest = iota
		evResult
		evDone
	)
	kind := make([]int, workers)
	when := make([]float64, workers)

	// assign hands the next pending task to worker w at master time
	// masterFree; returns the result arrival time.
	assign := func(w int, task Task) float64 {
		start := masterFree + model.LatencySec
		dur := float64(task.Cells) / workerRate
		if !rowSeen[w][task.R] {
			// the original bottom row crosses the network once per
			// (slave, split): uploaded after a first alignment, fetched
			// before a realignment
			rowSeen[w][task.R] = true
			rowBytes := int64(4 * (tr.M - task.R))
			dur += 2*model.LatencySec + float64(rowBytes)/model.BandwidthBytesPerSec
			res.RowBytes += rowBytes
		}
		return start + dur + model.LatencySec
	}

	rounds = 0
	for _, rd := range tr.Rounds {
		if rounds == tops {
			break
		}
		for w := 0; w < workers; w++ {
			kind[w] = evRequest
			when[w] = masterFree // all workers idle at round start
		}
		next := 0
		roundEnd := masterFree
		for {
			// earliest live event
			w := -1
			for i := 0; i < workers; i++ {
				if kind[i] != evDone && (w < 0 || when[i] < when[w]) {
					w = i
				}
			}
			if w < 0 {
				break
			}
			// the master serialises all message handling
			masterFree = maxF(masterFree, when[w]) + model.MasterServiceSec
			if kind[w] == evResult {
				roundEnd = masterFree
			}
			if next < len(rd.Tasks) {
				when[w] = assign(w, rd.Tasks[next])
				kind[w] = evResult
				next++
			} else {
				kind[w] = evDone
			}
		}
		if rd.TracebackCells > 0 {
			// sequential traceback on the master, then the triangle
			// update broadcast to every slave
			masterFree = maxF(masterFree, roundEnd) +
				float64(rd.TracebackCells)/model.ScalarCellsPerSec +
				float64(workers)*model.MasterServiceSec
			rounds++
		} else {
			masterFree = maxF(masterFree, roundEnd)
		}
	}
	res.WallSeconds = masterFree
	res.Speedup = res.SeqSeconds / res.WallSeconds
	return res, nil
}

// Sweep simulates every (procs, tops) combination, e.g. the Figure 8
// grid.
func Sweep(tr *Trace, model Model, procs []int, tops []int) ([]Result, error) {
	var out []Result
	for _, tp := range tops {
		for _, p := range procs {
			r, err := Simulate(tr, model, p, tp)
			if err != nil {
				return nil, err
			}
			out = append(out, r)
		}
	}
	return out, nil
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
