package dessim

import (
	"testing"

	"repro/internal/align"
	"repro/internal/scoring"
	"repro/internal/seq"
	"repro/internal/topalign"
)

var proteinParams = align.Params{Exch: scoring.BLOSUM62, Gap: scoring.DefaultProteinGap}

func recordTitin(t *testing.T, n, tops int) *Trace {
	t.Helper()
	q := seq.SyntheticTitin(n, 1)
	tr, err := Record(q.Codes, topalign.Config{Params: proteinParams, NumTops: tops})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestRecordStructure(t *testing.T) {
	n, tops := 200, 8
	tr := recordTitin(t, n, tops)
	if tr.M != n {
		t.Errorf("M = %d, want %d", tr.M, n)
	}
	if tr.Tops() != tops {
		t.Fatalf("trace has %d tops, want %d", tr.Tops(), tops)
	}
	// round 0 aligns every split exactly once
	if len(tr.Rounds[0].Tasks) != n-1 {
		t.Errorf("round 0 has %d tasks, want %d", len(tr.Rounds[0].Tasks), n-1)
	}
	seen := map[int]bool{}
	for _, task := range tr.Rounds[0].Tasks {
		if task.R < 1 || task.R > n-1 || seen[task.R] {
			t.Fatalf("round 0 task split %d invalid or duplicated", task.R)
		}
		seen[task.R] = true
		if want := int64(task.R) * int64(n-task.R); task.Cells != want {
			t.Fatalf("split %d cells = %d, want %d", task.R, task.Cells, want)
		}
	}
	// later rounds are small: that is the 90-97% realignment reduction
	for i := 1; i < len(tr.Rounds); i++ {
		if len(tr.Rounds[i].Tasks) >= n-1 {
			t.Errorf("round %d realigns everything (%d tasks)", i, len(tr.Rounds[i].Tasks))
		}
	}
}

func TestSimulateSingleProcessor(t *testing.T) {
	tr := recordTitin(t, 150, 5)
	m := PaperModel()
	res, err := Simulate(tr, m, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	// P=1 runs the SIMD kernel sequentially: speedup close to the SIMD
	// factor, diluted by the scalar traceback
	if res.Speedup < 2 || res.Speedup > m.SimdFactor {
		t.Errorf("P=1 speedup = %.2f, want in (2, %.1f]", res.Speedup, m.SimdFactor)
	}
}

func TestSimulateScalesWithProcessors(t *testing.T) {
	// The test sequence is short, so its tasks are far smaller than
	// titin's (microseconds, not seconds); scale the master's service
	// time down accordingly or it dominates and hides the scaling this
	// test is about. cmd/figure8 runs the full-cost model on a longer
	// sequence instead.
	tr := recordTitin(t, 400, 1)
	m := PaperModel()
	m.MasterServiceSec /= 100
	m.LatencySec /= 100
	prev := 0.0
	for _, p := range []int{2, 4, 8, 16, 32} {
		res, err := Simulate(tr, m, p, 1)
		if err != nil {
			t.Fatal(err)
		}
		if res.Speedup <= prev {
			t.Errorf("speedup not increasing: P=%d gives %.1f after %.1f", p, res.Speedup, prev)
		}
		prev = res.Speedup
	}
	// with 400 tasks in round 0, 32 processors must be well utilised:
	// speedup far above the single-CPU SIMD factor
	if prev < 4*m.SimdFactor {
		t.Errorf("P=32 speedup %.1f unexpectedly low", prev)
	}
}

// The Figure 8 shape: at high processor counts, computing only the first
// top alignment scales better than computing many (the per-round
// realignment sets and serial tracebacks limit parallelism).
func TestFigure8Shape(t *testing.T) {
	tr := recordTitin(t, 400, 25)
	m := PaperModel()
	one, err := Simulate(tr, m, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	many, err := Simulate(tr, m, 64, 25)
	if err != nil {
		t.Fatal(err)
	}
	if one.Speedup <= many.Speedup {
		t.Errorf("speedup(1 top)=%.1f not above speedup(25 tops)=%.1f at 64 procs",
			one.Speedup, many.Speedup)
	}
}

func TestSimulateWorkConservation(t *testing.T) {
	// Simulated wall time can never beat work/aggregate-throughput.
	tr := recordTitin(t, 250, 10)
	m := PaperModel()
	for _, p := range []int{2, 8, 64} {
		res, err := Simulate(tr, m, p, 10)
		if err != nil {
			t.Fatal(err)
		}
		work := float64(tr.AlignCells(10)) / (m.ScalarCellsPerSec * m.SimdFactor * float64(p-1))
		if res.WallSeconds < work {
			t.Errorf("P=%d wall %.4fs beats the work bound %.4fs", p, res.WallSeconds, work)
		}
		if res.Speedup > float64(p)*m.SimdFactor {
			t.Errorf("P=%d speedup %.1f exceeds p*simd bound", p, res.Speedup)
		}
	}
}

func TestSimulateDeterministic(t *testing.T) {
	tr := recordTitin(t, 150, 3)
	m := PaperModel()
	a, _ := Simulate(tr, m, 16, 3)
	b, _ := Simulate(tr, m, 16, 3)
	if a != b {
		t.Error("simulation not deterministic")
	}
}

func TestSweep(t *testing.T) {
	tr := recordTitin(t, 150, 4)
	rs, err := Sweep(tr, PaperModel(), []int{1, 2, 4}, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 6 {
		t.Fatalf("sweep returned %d results, want 6", len(rs))
	}
}

func TestValidation(t *testing.T) {
	tr := recordTitin(t, 100, 2)
	if _, err := Simulate(tr, Model{}, 2, 1); err == nil {
		t.Error("zero model accepted")
	}
	if _, err := Simulate(tr, PaperModel(), 0, 1); err == nil {
		t.Error("zero procs accepted")
	}
	if _, err := Simulate(tr, PaperModel(), 2, 99); err == nil {
		t.Error("tops beyond trace accepted")
	}
	if _, err := Record(seq.Random(seq.Protein, 80, 1).Codes,
		topalign.Config{Params: proteinParams, NumTops: 5, MinScore: 10000}); err == nil {
		t.Error("record with no tops accepted")
	}
}

// A master with a huge per-message service time must become the
// bottleneck: adding processors stops helping (the regime the paper
// avoids by keeping slave traffic at 64 KB/s).
func TestMasterBottleneckRegime(t *testing.T) {
	tr := recordTitin(t, 300, 1)
	m := PaperModel()
	m.MasterServiceSec = 0.05 // absurdly slow master
	s16, err := Simulate(tr, m, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	s64, err := Simulate(tr, m, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if gain := s64.Speedup / s16.Speedup; gain > 1.2 {
		t.Errorf("master-bound run still scaled %.2fx from 16 to 64 procs", gain)
	}
	// wall time is at least one serial master service slot per task
	// (assignment piggybacks on the request/result being handled)
	minWall := float64(len(tr.Rounds[0].Tasks)) * m.MasterServiceSec
	if s64.WallSeconds < minWall {
		t.Errorf("wall %.2fs below master service floor %.2fs", s64.WallSeconds, minWall)
	}
}

// Sequential baseline must not depend on the processor count.
func TestSeqBaselineStable(t *testing.T) {
	tr := recordTitin(t, 200, 4)
	m := PaperModel()
	a, _ := Simulate(tr, m, 2, 4)
	b, _ := Simulate(tr, m, 64, 4)
	if a.SeqSeconds != b.SeqSeconds {
		t.Errorf("SeqSeconds differs across procs: %f vs %f", a.SeqSeconds, b.SeqSeconds)
	}
}

func TestRowTrafficAccounted(t *testing.T) {
	tr := recordTitin(t, 200, 5)
	res, err := Simulate(tr, PaperModel(), 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	// every round-0 row crosses the network once: at least
	// sum_{r}(4*(m-r)) bytes
	var minBytes int64
	for _, task := range tr.Rounds[0].Tasks {
		minBytes += int64(4 * (tr.M - task.R))
	}
	if res.RowBytes < minBytes {
		t.Errorf("row traffic %d below the round-0 floor %d", res.RowBytes, minBytes)
	}
}
