package triangle

import (
	"fmt"
	"sync"
)

// RowStore holds the bottom row of each split's first alignment (computed
// with an empty override triangle). These original rows are the reference
// for shadow-alignment rejection: on realignment, a bottom-row cell is a
// valid alignment ending only if its value equals the stored original.
//
// Storing all rows needs m(m-1)/2 entries in total (the paper's largest
// data structure, ~1.2 GB for full-length titin as shorts). Rows are
// allocated lazily as splits are first aligned. RowStore is safe for
// concurrent use; in the distributed runner the master owns the full
// store and slaves keep a RowStore as an on-demand cache.
type RowStore struct {
	mu   sync.RWMutex
	m    int
	rows [][]int32 // indexed by split r (1..m-1); rows[r] has m-r entries
}

// NewRowStore returns an empty store for sequence length m.
func NewRowStore(m int) *RowStore {
	if m < 2 {
		panic(fmt.Sprintf("triangle: sequence length %d too short", m))
	}
	return &RowStore{m: m, rows: make([][]int32, m)}
}

// Put stores the original bottom row for split r, copying the input.
// A second Put for the same split is ignored: the original row never
// changes once computed (the paper computes it exactly once, with the
// empty triangle).
func (s *RowStore) Put(r int, row []int32) {
	if r < 1 || r >= s.m {
		panic(fmt.Sprintf("triangle: split %d out of range for m=%d", r, s.m))
	}
	if len(row) != s.m-r {
		panic(fmt.Sprintf("triangle: split %d row has %d entries, want %d", r, len(row), s.m-r))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.rows[r] != nil {
		return
	}
	cp := make([]int32, len(row))
	copy(cp, row)
	s.rows[r] = cp
}

// Get returns the stored row for split r, or (nil, false) if the split
// has not been aligned yet. The returned slice must not be modified.
func (s *RowStore) Get(r int) ([]int32, bool) {
	if r < 1 || r >= s.m {
		return nil, false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	row := s.rows[r]
	return row, row != nil
}

// Len returns the number of splits with a stored row.
func (s *RowStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, row := range s.rows {
		if row != nil {
			n++
		}
	}
	return n
}

// Bytes returns the approximate memory footprint of the stored rows.
func (s *RowStore) Bytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var b int64
	for _, row := range s.rows {
		b += int64(len(row)) * 4
	}
	return b
}
