package triangle

import "testing"

var sinkBool bool

func BenchmarkGetAt(b *testing.B) {
	tr := New(4096)
	tr.Set(100, 2000)
	idx := tr.Index(100, 2000)
	for i := 0; i < b.N; i++ {
		sinkBool = tr.GetAt(idx)
	}
}

func BenchmarkRowEmpty(b *testing.B) {
	tr := New(4096)
	tr.Set(4000, 4090) // far from the probed row
	from := tr.RowOffset(100)
	for i := 0; i < b.N; i++ {
		sinkBool = tr.RowEmpty(from, 2000)
	}
}

func BenchmarkClone(b *testing.B) {
	tr := New(4096)
	for i := 1; i < 100; i++ {
		tr.Set(i, i+1000)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = tr.Clone()
	}
}
