package triangle

import (
	"testing"
	"testing/quick"
)

func TestIndexLayout(t *testing.T) {
	m := 7
	tr := New(m)
	// Row-major by i: (1,2),(1,3)...(1,7),(2,3)...(2,7),(3,4)...
	want := 0
	for i := 1; i < m; i++ {
		if off := tr.RowOffset(i); off != want {
			t.Fatalf("RowOffset(%d) = %d, want %d", i, off, want)
		}
		for j := i + 1; j <= m; j++ {
			if idx := tr.Index(i, j); idx != want {
				t.Fatalf("Index(%d,%d) = %d, want %d", i, j, idx, want)
			}
			want++
		}
	}
	if want != tr.Pairs() {
		t.Fatalf("enumerated %d pairs, Pairs() = %d", want, tr.Pairs())
	}
}

func TestSetGet(t *testing.T) {
	tr := New(10)
	tr.Set(3, 7)
	tr.Set(1, 2)
	tr.Set(9, 10)
	if !tr.Get(3, 7) || !tr.Get(1, 2) || !tr.Get(9, 10) {
		t.Error("set pairs not reported as set")
	}
	if tr.Get(3, 8) || tr.Get(2, 7) {
		t.Error("unset pairs reported as set")
	}
	if tr.Count() != 3 {
		t.Errorf("Count = %d, want 3", tr.Count())
	}
	tr.Set(3, 7) // idempotent
	if tr.Count() != 3 {
		t.Errorf("Count after duplicate Set = %d, want 3", tr.Count())
	}
}

func TestIndexPanicsOnBadPair(t *testing.T) {
	tr := New(5)
	for _, p := range [][2]int{{0, 1}, {2, 2}, {3, 2}, {1, 6}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Index(%d,%d) did not panic", p[0], p[1])
				}
			}()
			tr.Index(p[0], p[1])
		}()
	}
}

func TestGetAtMatchesGet(t *testing.T) {
	tr := New(50)
	tr.Set(10, 20)
	tr.Set(10, 21)
	tr.Set(49, 50)
	f := func(a, b uint8) bool {
		i := 1 + int(a)%49
		j := i + 1 + int(b)%(50-i)
		return tr.GetAt(tr.Index(i, j)) == tr.Get(i, j)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRowEmpty(t *testing.T) {
	tr := New(100)
	if !tr.RowEmpty(0, tr.Pairs()) {
		t.Error("fresh triangle not empty")
	}
	tr.Set(40, 60)
	idx := tr.Index(40, 60)
	if tr.RowEmpty(idx, 1) {
		t.Error("range containing the set bit reported empty")
	}
	if tr.RowEmpty(0, idx+1) {
		t.Error("prefix containing the set bit reported empty")
	}
	if !tr.RowEmpty(0, idx) {
		t.Error("prefix before the set bit reported non-empty")
	}
	if !tr.RowEmpty(idx+1, tr.Pairs()-idx-1) {
		t.Error("suffix after the set bit reported non-empty")
	}
	if !tr.RowEmpty(5, 0) {
		t.Error("empty range reported non-empty")
	}
}

// Property: RowEmpty agrees with a naive scan for random bit patterns and
// random ranges, including ranges spanning multiple words.
func TestRowEmptyProperty(t *testing.T) {
	tr := New(40) // 780 pairs, ~13 words
	setIdx := map[int]bool{}
	// set a scattering of pairs
	for _, p := range [][2]int{{1, 2}, {3, 30}, {10, 11}, {20, 40}, {39, 40}, {5, 25}} {
		tr.Set(p[0], p[1])
		setIdx[tr.Index(p[0], p[1])] = true
	}
	f := func(a, b uint16) bool {
		from := int(a) % tr.Pairs()
		n := int(b) % (tr.Pairs() - from)
		naive := true
		for k := from; k < from+n; k++ {
			if setIdx[k] {
				naive = false
				break
			}
		}
		return tr.RowEmpty(from, n) == naive
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestCloneAndEqual(t *testing.T) {
	tr := New(20)
	tr.Set(1, 5)
	tr.Set(7, 19)
	cp := tr.Clone()
	if !tr.Equal(cp) {
		t.Fatal("clone not equal to original")
	}
	cp.Set(2, 3)
	if tr.Equal(cp) {
		t.Error("mutating clone affected equality with original")
	}
	if tr.Get(2, 3) {
		t.Error("mutating clone affected original")
	}
	if tr.Equal(New(21)) {
		t.Error("triangles of different m reported equal")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	tr := New(33)
	tr.Set(1, 2)
	tr.Set(15, 30)
	tr.Set(32, 33)
	data, err := tr.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Triangle
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if !tr.Equal(&back) {
		t.Error("round trip lost pairs")
	}
	if back.Count() != 3 {
		t.Errorf("Count after unmarshal = %d, want 3", back.Count())
	}
}

func TestUnmarshalErrors(t *testing.T) {
	var tr Triangle
	if err := tr.UnmarshalBinary([]byte{1, 2}); err == nil {
		t.Error("short data accepted")
	}
	good, _ := New(10).MarshalBinary()
	if err := tr.UnmarshalBinary(good[:len(good)-1]); err == nil {
		t.Error("truncated data accepted")
	}
	bad := make([]byte, 8)
	if err := tr.UnmarshalBinary(bad); err == nil {
		t.Error("m=0 accepted")
	}
}

func TestRowStore(t *testing.T) {
	s := NewRowStore(10)
	if _, ok := s.Get(3); ok {
		t.Error("Get on empty store returned a row")
	}
	row := []int32{5, 0, 3, 9, 1, 2, 7}
	s.Put(3, row)
	got, ok := s.Get(3)
	if !ok {
		t.Fatal("stored row not found")
	}
	row[0] = 99 // Put must copy
	if got[0] != 5 {
		t.Error("Put did not copy the row")
	}
	// second Put is ignored
	s.Put(3, []int32{0, 0, 0, 0, 0, 0, 0})
	got, _ = s.Get(3)
	if got[2] != 3 {
		t.Error("second Put overwrote the original row")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
	if s.Bytes() != 28 {
		t.Errorf("Bytes = %d, want 28", s.Bytes())
	}
	if _, ok := s.Get(0); ok {
		t.Error("Get(0) returned a row")
	}
}

func TestRowStorePanics(t *testing.T) {
	s := NewRowStore(5)
	for _, c := range []struct {
		r   int
		row []int32
	}{
		{0, []int32{1, 2, 3, 4, 5}},
		{5, []int32{}},
		{2, []int32{1, 2}}, // wrong length, want 3
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Put(%d, len %d) did not panic", c.r, len(c.row))
				}
			}()
			s.Put(c.r, c.row)
		}()
	}
}
