// Package triangle provides the override triangle of the paper's
// top-alignment algorithm — a bitset over residue position pairs (i, j)
// with 1 <= i < j <= m — plus the triangular bottom-row store used for
// shadow-alignment rejection (Appendix A of the paper).
//
// Pairs are laid out row-major by i, so that for a fixed prefix position
// i the suffix positions j are contiguous. The alignment kernel for split
// r walks local coordinates (y, x) which map to the global pair
// (y, r+x); with this layout the kernel reads a contiguous bit run per
// matrix row.
package triangle

import (
	"fmt"
	"math/bits"
)

// Triangle is a set of position pairs (i, j), 1 <= i < j <= m.
// The zero value is unusable; construct with New. Triangle is not
// self-synchronising: concurrent readers are safe only while no writer is
// active (the parallel schedulers publish immutable snapshots instead).
type Triangle struct {
	m     int
	words []uint64
	count int
}

// New returns an empty triangle over sequence length m (m >= 2).
func New(m int) *Triangle {
	if m < 2 {
		panic(fmt.Sprintf("triangle: sequence length %d too short", m))
	}
	n := m * (m - 1) / 2
	return &Triangle{m: m, words: make([]uint64, (n+63)/64)}
}

// M returns the sequence length the triangle is defined over.
func (t *Triangle) M() int { return t.m }

// Pairs returns the total number of representable pairs, m(m-1)/2.
func (t *Triangle) Pairs() int { return t.m * (t.m - 1) / 2 }

// Count returns the number of pairs currently set.
func (t *Triangle) Count() int { return t.count }

// RowOffset returns the raw index of pair (i, i+1): the start of row i.
// Row i covers indices RowOffset(i) .. RowOffset(i)+(m-i-1) for
// j = i+1 .. m, consecutively.
func (t *Triangle) RowOffset(i int) int {
	// sum_{k=1}^{i-1} (m-k) = (i-1)*m - i*(i-1)/2
	return (i-1)*t.m - i*(i-1)/2
}

// Index returns the raw index of pair (i, j). It panics if the pair is
// out of range or not strictly ordered.
func (t *Triangle) Index(i, j int) int {
	if i < 1 || j <= i || j > t.m {
		panic(fmt.Sprintf("triangle: pair (%d,%d) invalid for m=%d", i, j, t.m))
	}
	return t.RowOffset(i) + (j - i - 1)
}

// Set marks pair (i, j).
func (t *Triangle) Set(i, j int) {
	idx := t.Index(i, j)
	w, b := idx>>6, uint(idx&63)
	if t.words[w]&(1<<b) == 0 {
		t.words[w] |= 1 << b
		t.count++
	}
}

// Get reports whether pair (i, j) is marked.
func (t *Triangle) Get(i, j int) bool {
	idx := t.Index(i, j)
	return t.words[idx>>6]&(1<<uint(idx&63)) != 0
}

// GetAt reports whether the pair at raw index idx is marked. This is the
// kernel fast path; idx must come from Index or RowOffset arithmetic.
func (t *Triangle) GetAt(idx int) bool {
	return t.words[idx>>6]&(1<<uint(idx&63)) != 0
}

// RowEmpty reports whether the index range [from, from+n) contains no
// marked pair. Kernels use it to skip override checks for untouched rows.
func (t *Triangle) RowEmpty(from, n int) bool {
	if n <= 0 {
		return true
	}
	to := from + n // exclusive
	wFrom, wTo := from>>6, (to-1)>>6
	if wFrom == wTo {
		mask := (^uint64(0) << uint(from&63)) & (^uint64(0) >> uint(63-(to-1)&63))
		return t.words[wFrom]&mask == 0
	}
	if t.words[wFrom]&(^uint64(0)<<uint(from&63)) != 0 {
		return false
	}
	for w := wFrom + 1; w < wTo; w++ {
		if t.words[w] != 0 {
			return false
		}
	}
	return t.words[wTo]&(^uint64(0)>>uint(63-(to-1)&63)) == 0
}

// NextSet returns the smallest raw index in [from, to) whose pair is
// marked, or -1 if none. Segmented kernels use it to split a masked row
// into clean runs that skip the per-column override probe entirely.
func (t *Triangle) NextSet(from, to int) int {
	if from < 0 {
		from = 0
	}
	if max := len(t.words) * 64; to > max {
		to = max
	}
	if from >= to {
		return -1
	}
	w := from >> 6
	word := t.words[w] & (^uint64(0) << uint(from&63))
	for {
		if word != 0 {
			idx := w<<6 + bits.TrailingZeros64(word)
			if idx >= to {
				return -1
			}
			return idx
		}
		w++
		if w<<6 >= to {
			return -1
		}
		word = t.words[w]
	}
}

// Clone returns an independent copy. The parallel schedulers use clones
// as immutable published snapshots.
func (t *Triangle) Clone() *Triangle {
	cp := &Triangle{m: t.m, words: make([]uint64, len(t.words)), count: t.count}
	copy(cp.words, t.words)
	return cp
}

// Equal reports whether two triangles mark exactly the same pairs.
func (t *Triangle) Equal(o *Triangle) bool {
	if t.m != o.m {
		return false
	}
	for i, w := range t.words {
		if o.words[i] != w {
			return false
		}
	}
	return true
}

// recount recomputes the population count (used after bulk loads).
func (t *Triangle) recount() {
	c := 0
	for _, w := range t.words {
		c += bits.OnesCount64(w)
	}
	t.count = c
}

// MarshalBinary serialises the triangle (length + raw words) for the
// distributed runner's replica broadcasts.
func (t *Triangle) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 8+8*len(t.words))
	putUint64(buf[0:], uint64(t.m))
	for i, w := range t.words {
		putUint64(buf[8+8*i:], w)
	}
	return buf, nil
}

// UnmarshalBinary restores a triangle serialised by MarshalBinary.
func (t *Triangle) UnmarshalBinary(data []byte) error {
	if len(data) < 8 {
		return fmt.Errorf("triangle: short data (%d bytes)", len(data))
	}
	m := int(getUint64(data[0:]))
	if m < 2 {
		return fmt.Errorf("triangle: invalid length %d", m)
	}
	n := m * (m - 1) / 2
	words := (n + 63) / 64
	if len(data) != 8+8*words {
		return fmt.Errorf("triangle: data size %d does not match m=%d", len(data), m)
	}
	t.m = m
	t.words = make([]uint64, words)
	for i := range t.words {
		t.words[i] = getUint64(data[8+8*i:])
	}
	t.recount()
	return nil
}

func putUint64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

func getUint64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}
