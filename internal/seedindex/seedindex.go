// Package seedindex is the seed-filter-extend prefilter that opens the
// engine to chromosome-scale inputs (DESIGN.md section 13).
//
// The paper's O(n^3) top-alignment search is exact but caps practical
// inputs around a few thousand residues. Real repeat finders reach
// megabase scale with the classic seed-filter-extend decomposition:
// index short exact (or spaced) seed matches, bucket them by diagonal,
// chain nearby seeds into candidate regions, and run the expensive
// alignment kernel only inside those regions. This package implements
// that pipeline on top of the existing machinery:
//
//	index  — k-mer/spaced-seed index over the input (BuildIndex)
//	filter — diagonal bucketing with per-seed occurrence caps (Pairs)
//	chain  — seed segments -> clustered candidate windows with
//	         admissible score upper bounds (Chain, Candidates)
//	extend — banded windowed extension through the topalign best-first
//	         queue, so pruning stays sound (Find)
//
// Soundness: every candidate window carries Bound = MaxScore*min(H, W),
// an admissible upper bound on any alignment confined to it (each of the
// at most min(H, W) matched pairs scores at most MaxScore; gap penalties
// only subtract, since scoring.Gap requires Open >= 0 and Ext > 0).
// Windows enter the best-first queue at their bound and are always
// realigned exactly before acceptance, so the queue's pruning argument
// is unchanged. What the prefilter trades is sensitivity, not
// correctness of what it reports: repeats whose seeds are filtered away
// are missed entirely. The differential and recall tests bound that
// trade per preset.
package seedindex

import (
	"fmt"
	"math"
)

// Config holds the raw prefilter knobs. Zero values are invalid;
// construct via a preset (PresetConfig) and override fields as needed.
type Config struct {
	// K is the contiguous seed length. Ignored when Mask is non-empty.
	K int
	// Mask is an optional spaced-seed mask over {'0','1'}: '1' positions
	// are sampled, '0' positions are wildcards. The seed weight is the
	// number of '1's; the seed span is len(Mask).
	Mask string
	// Base is the number of primary alphabet codes (20 for protein, 4
	// for DNA); residue codes >= Base are ambiguity letters and any seed
	// window containing one is skipped.
	Base int
	// MaxOcc drops k-mers occurring more than this many times — the
	// degenerate low-complexity tail (homopolymer runs) that would
	// otherwise produce quadratic seed pairs.
	MaxOcc int
	// SuccPairs pairs each seed occurrence with at most this many of its
	// successors in position order, bounding total pairs at n*SuccPairs
	// while keeping adjacent-copy diagonals of high-copy repeat families
	// (which a plain occurrence cap would destroy).
	SuccPairs int
	// MergeGap is the maximum i-gap between same-diagonal seeds merged
	// into one segment.
	MergeGap int
	// ChainGap is the maximum i-gap between segments chained into one
	// cluster within a diagonal band.
	ChainGap int
	// BandWidth buckets diagonals into bands of this width; segments
	// cluster only within a band (indels make matching diagonals wander
	// by roughly the indel count, which BandWidth must absorb).
	BandWidth int
	// Pad expands candidate windows on the top, left and right by this
	// many residues so alignments can extend past their outermost seeds.
	// The bottom edge is never padded: the window's bottom row is the
	// alignment's ending split, which must stay on a seed-supported row.
	Pad int
	// MinSeeds is the minimum number of seed segments per cluster.
	MinSeeds int
	// MinMatched is the minimum total matched seed positions per
	// cluster; together with MinSeeds it rejects background noise.
	MinMatched int
	// MaxCandidates caps the number of candidate windows (best by
	// matched seed positions kept); 0 means unlimited.
	MaxCandidates int
}

// Presets. Sensitive is special-cased by callers (package repro): it
// routes the request to the exact engine and uses the prefilter only for
// telemetry, so its differential guarantee is bit-identity by
// construction. Fast and balanced run the windowed extension and trade
// sensitivity for speed; their recall floors are pinned by tests.
const (
	PresetFast      = "fast"
	PresetBalanced  = "balanced"
	PresetSensitive = "sensitive"
)

// ValidPreset reports whether name is a recognised preset.
func ValidPreset(name string) bool {
	switch name {
	case PresetFast, PresetBalanced, PresetSensitive:
		return true
	}
	return false
}

// PresetConfig returns the tuned configuration for a preset over an
// alphabet with the given primary letter count (seq.PrimaryLetters).
// Small bases get long seeds (DNA-style), large bases short ones
// (protein-style).
func PresetConfig(preset string, base int) (Config, error) {
	if base < 2 {
		return Config{}, fmt.Errorf("seedindex: primary alphabet size %d too small", base)
	}
	dna := base <= 6
	var c Config
	switch preset {
	case PresetFast:
		if dna {
			c = Config{K: 12, MaxOcc: 64, SuccPairs: 4, MergeGap: 16, ChainGap: 64,
				BandWidth: 8, Pad: 16, MinSeeds: 3, MinMatched: 36, MaxCandidates: 4096}
		} else {
			c = Config{K: 3, MaxOcc: 512, SuccPairs: 4, MergeGap: 16, ChainGap: 48,
				BandWidth: 8, Pad: 16, MinSeeds: 3, MinMatched: 9, MaxCandidates: 4096}
		}
	case PresetBalanced, PresetSensitive:
		if dna {
			c = Config{K: 10, MaxOcc: 256, SuccPairs: 8, MergeGap: 24, ChainGap: 96,
				BandWidth: 16, Pad: 32, MinSeeds: 2, MinMatched: 20, MaxCandidates: 16384}
		} else {
			c = Config{K: 3, MaxOcc: 1024, SuccPairs: 8, MergeGap: 24, ChainGap: 64,
				BandWidth: 16, Pad: 32, MinSeeds: 2, MinMatched: 6, MaxCandidates: 16384}
		}
	default:
		return Config{}, fmt.Errorf("seedindex: unknown preset %q (have fast, balanced, sensitive)", preset)
	}
	c.Base = base
	return c, nil
}

// Weight returns the number of sampled seed positions.
func (c Config) Weight() int {
	if c.Mask == "" {
		return c.K
	}
	w := 0
	for i := 0; i < len(c.Mask); i++ {
		if c.Mask[i] == '1' {
			w++
		}
	}
	return w
}

// Span returns the seed window length in residues.
func (c Config) Span() int {
	if c.Mask == "" {
		return c.K
	}
	return len(c.Mask)
}

// Validate checks the configuration, including that base^weight packed
// k-mer keys fit in a uint64.
func (c Config) Validate() error {
	if c.Base < 2 {
		return fmt.Errorf("seedindex: primary alphabet size %d too small", c.Base)
	}
	if c.Mask != "" {
		for i := 0; i < len(c.Mask); i++ {
			if c.Mask[i] != '0' && c.Mask[i] != '1' {
				return fmt.Errorf("seedindex: spaced-seed mask %q has invalid byte %q at %d (want only '0'/'1')",
					c.Mask, c.Mask[i], i)
			}
		}
		if c.Mask[0] != '1' || c.Mask[len(c.Mask)-1] != '1' {
			return fmt.Errorf("seedindex: spaced-seed mask %q must start and end with '1'", c.Mask)
		}
	} else if c.K < 1 {
		return fmt.Errorf("seedindex: seed length k=%d must be >= 1", c.K)
	}
	w := c.Weight()
	if w < 1 {
		return fmt.Errorf("seedindex: seed weight %d must be >= 1", w)
	}
	// base^weight must fit a uint64 key.
	key := uint64(1)
	for i := 0; i < w; i++ {
		if key > math.MaxUint64/uint64(c.Base) {
			return fmt.Errorf("seedindex: seed weight %d over base %d overflows the packed key", w, c.Base)
		}
		key *= uint64(c.Base)
	}
	if c.MaxOcc < 1 {
		return fmt.Errorf("seedindex: occurrence cap %d must be >= 1", c.MaxOcc)
	}
	if c.SuccPairs < 1 {
		return fmt.Errorf("seedindex: successor pair cap %d must be >= 1", c.SuccPairs)
	}
	if c.MergeGap < 0 || c.ChainGap < 0 {
		return fmt.Errorf("seedindex: gaps must be non-negative (merge %d, chain %d)", c.MergeGap, c.ChainGap)
	}
	if c.BandWidth < 1 {
		return fmt.Errorf("seedindex: band width %d must be >= 1", c.BandWidth)
	}
	if c.Pad < 0 {
		return fmt.Errorf("seedindex: pad %d must be non-negative", c.Pad)
	}
	if c.MinSeeds < 1 {
		return fmt.Errorf("seedindex: min seeds %d must be >= 1", c.MinSeeds)
	}
	if c.MinMatched < 0 {
		return fmt.Errorf("seedindex: min matched %d must be non-negative", c.MinMatched)
	}
	if c.MaxCandidates < 0 {
		return fmt.Errorf("seedindex: max candidates %d must be non-negative", c.MaxCandidates)
	}
	return nil
}

// Stats summarises one prefilter run; it is surfaced through the report
// and the /v1 API so clients can see what the filter did.
type Stats struct {
	Kmers         int   `json:"kmers"`          // distinct seeds kept
	DroppedKmers  int   `json:"dropped_kmers"`  // seeds dropped by MaxOcc
	Positions     int   `json:"positions"`      // indexed occurrences
	Pairs         int   `json:"pairs"`          // seed match pairs
	Segments      int   `json:"segments"`       // merged diagonal segments
	Clusters      int   `json:"clusters"`       // chained clusters
	Candidates    int   `json:"candidates"`     // candidate windows emitted
	PrunedBound   int   `json:"pruned_bound"`   // candidates pruned by MinScore bound
	WindowCells   int64 `json:"window_cells"`   // total window area enqueued
	SequenceCells int64 `json:"sequence_cells"` // n*(n-1)/2, the exact engine's pair space
}
