package seedindex

import (
	"repro/internal/topalign"
)

// Find runs the full seed-filter-extend pipeline over sequence s
// (residue codes) and returns top alignments through the standard
// best-first queue, plus the prefilter stage statistics.
//
// Stages are recorded as spans (prefilter.index, prefilter.chain,
// prefilter.extend) under top.SpanParent so reprotrace attributes
// prefilter time. Group lanes and the striped kernel do not apply to
// windowed extension and are ignored.
func Find(s []byte, cfg Config, top topalign.Config) (*topalign.Result, *Stats, error) {
	st := &Stats{}
	if n := int64(len(s)); n > 1 {
		st.SequenceCells = n * (n - 1) / 2
	}

	sp := top.Spans.Start(top.SpanParent, "prefilter.index")
	sp.SetRank(top.SpanRank)
	x, err := BuildIndex(s, cfg)
	sp.End()
	if err != nil {
		return nil, nil, err
	}
	st.Kmers, st.DroppedKmers, st.Positions = x.Kmers(), x.Dropped(), x.Positions()

	sp = top.Spans.Start(top.SpanParent, "prefilter.chain")
	sp.SetRank(top.SpanRank)
	ch := Chain(x, cfg)
	cands := Candidates(ch, cfg, len(s), top.Params.Exch.MaxScore())
	sp.End()
	st.Pairs, st.Segments, st.Clusters = ch.Pairs, ch.Segments, len(ch.Clusters)
	st.Candidates = len(cands)

	e, err := topalign.NewEngine(s, top)
	if err != nil {
		return nil, nil, err
	}
	minScore := e.Config().MinScore
	tasks := make([]*topalign.Task, 0, len(cands))
	for _, c := range cands {
		if c.Bound < minScore {
			st.PrunedBound++
			continue
		}
		st.WindowCells += c.Rect.Cells()
		tasks = append(tasks, &topalign.Task{
			R:           c.Rect.Y1,
			Score:       c.Bound,
			AlignedWith: -1,
			Win:         &topalign.Window{Rect: c.Rect, Bound: c.Bound},
		})
	}

	sp = top.Spans.Start(top.SpanParent, "prefilter.extend")
	sp.SetRank(top.SpanRank)
	err = topalign.RunWindows(e, tasks)
	sp.End()
	if err != nil {
		return nil, nil, err
	}
	return &topalign.Result{
		SeqLen: e.Len(),
		Tops:   e.Tops(),
		Stats:  e.Config().Counters.Snapshot(),
	}, st, nil
}

// Scan runs only the index and chain stages and reports what the filter
// would do, without extending. The sensitive preset uses it: results
// come from the exact engine (bit-identical by construction) while the
// scan supplies prefilter telemetry for the report and trace.
func Scan(s []byte, cfg Config, maxScore int32) (*Stats, error) {
	st := &Stats{}
	if n := int64(len(s)); n > 1 {
		st.SequenceCells = n * (n - 1) / 2
	}
	x, err := BuildIndex(s, cfg)
	if err != nil {
		return nil, err
	}
	st.Kmers, st.DroppedKmers, st.Positions = x.Kmers(), x.Dropped(), x.Positions()
	ch := Chain(x, cfg)
	cands := Candidates(ch, cfg, len(s), maxScore)
	st.Pairs, st.Segments, st.Clusters = ch.Pairs, ch.Segments, len(ch.Clusters)
	st.Candidates = len(cands)
	for _, c := range cands {
		st.WindowCells += c.Rect.Cells()
	}
	return st, nil
}
