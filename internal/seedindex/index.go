package seedindex

import "sort"

// Index is the k-mer (or spaced-seed) occurrence index of one sequence:
// packed seed key -> ascending 0-based start positions. Keys whose
// occurrence list exceeded the configured cap have been dropped.
type Index struct {
	post    map[uint64][]int32
	keys    []uint64 // sorted kept keys, for deterministic iteration
	span    int
	weight  int
	dropped int
	pos     int
}

// BuildIndex indexes every seed window of s (residue codes) under cfg.
// Windows containing an ambiguity code (>= cfg.Base) are skipped, as are
// windows extending past the end; sequences shorter than the seed span
// yield an empty index, not an error (the caller falls back to the exact
// engine when nothing is indexed).
func BuildIndex(s []byte, cfg Config) (*Index, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	span, base := cfg.Span(), uint64(cfg.Base)
	// Sampled offsets within the seed window.
	offs := make([]int, 0, cfg.Weight())
	if cfg.Mask == "" {
		for i := 0; i < cfg.K; i++ {
			offs = append(offs, i)
		}
	} else {
		for i := 0; i < len(cfg.Mask); i++ {
			if cfg.Mask[i] == '1' {
				offs = append(offs, i)
			}
		}
	}
	idx := &Index{post: make(map[uint64][]int32), span: span, weight: len(offs)}
	n := len(s)
	for p := 0; p+span <= n; p++ {
		key := uint64(0)
		ok := true
		for _, o := range offs {
			c := s[p+o]
			if int(c) >= cfg.Base {
				ok = false // ambiguity code in window
				break
			}
			key = key*base + uint64(c)
		}
		if !ok {
			continue
		}
		idx.post[key] = append(idx.post[key], int32(p))
	}
	// Apply the occurrence cap and freeze a deterministic key order.
	for key, occ := range idx.post {
		if len(occ) > cfg.MaxOcc {
			delete(idx.post, key)
			idx.dropped++
			continue
		}
		idx.keys = append(idx.keys, key)
		idx.pos += len(occ)
	}
	sort.Slice(idx.keys, func(a, b int) bool { return idx.keys[a] < idx.keys[b] })
	return idx, nil
}

// Span returns the seed window length in residues.
func (x *Index) Span() int { return x.span }

// Weight returns the number of sampled positions per seed.
func (x *Index) Weight() int { return x.weight }

// Kmers returns the number of distinct seeds kept.
func (x *Index) Kmers() int { return len(x.keys) }

// Dropped returns the number of distinct seeds removed by the
// occurrence cap.
func (x *Index) Dropped() int { return x.dropped }

// Positions returns the total number of indexed occurrences.
func (x *Index) Positions() int { return x.pos }

// Occurrences returns the ascending start positions of seed key, or nil.
// The caller must not modify the returned slice.
func (x *Index) Occurrences(key uint64) []int32 { return x.post[key] }

// Keys returns the kept seed keys in ascending order. The caller must
// not modify the returned slice.
func (x *Index) Keys() []uint64 { return x.keys }
