package seedindex

import (
	"testing"

	"repro/internal/align"
	"repro/internal/scoring"
	"repro/internal/seq"
)

// TestCandidateBoundsAdmissible is the property underpinning best-first
// soundness of the prefilter: for every candidate window, no alignment
// confined to the window can score above the candidate's Bound. The
// windowed matrix maximum over all cells dominates the score of every
// such alignment, so checking max(matrix) <= Bound verifies the property
// directly. On failure the test prints a minimal reproducer: the tandem
// spec, the preset and the offending window.
func TestCandidateBoundsAdmissible(t *testing.T) {
	matrices := []string{"BLOSUM62", "PAM250"}
	presets := []string{PresetFast, PresetBalanced}
	profiles := []seq.MutationProfile{
		{},
		{SubstRate: 0.15, IndelRate: 0.02, IndelExt: 0.5},
		{SubstRate: 0.3, IndelRate: 0.05, IndelExt: 0.5},
	}
	sc := align.NewScratch()
	for _, mat := range matrices {
		m, ok := scoring.ByName(mat)
		if !ok {
			t.Fatalf("matrix %s missing", mat)
		}
		p := align.Params{Exch: m, Gap: scoring.DefaultProteinGap}
		for seed := uint64(1); seed <= 8; seed++ {
			for pi, prof := range profiles {
				spec := seq.TandemSpec{
					UnitLen: 30 + int(seed)*7, Copies: 3 + int(seed)%3,
					FlankLen: 25, Profile: prof, Seed: seed,
				}
				s := seq.Tandem(spec).Codes
				for _, preset := range presets {
					cfg, err := PresetConfig(preset, seq.PrimaryLetters(m.Alphabet()))
					if err != nil {
						t.Fatal(err)
					}
					x, err := BuildIndex(s, cfg)
					if err != nil {
						t.Fatal(err)
					}
					ch := Chain(x, cfg)
					for _, cl := range ch.Clusters {
						// Union coverage: a cluster cannot claim more
						// covered residues than its i-extent holds.
						if cl.Covered > cl.IEnd-cl.IStart {
							t.Fatalf("cluster coverage exceeds i-extent: covered %d > %d\n"+
								"reproducer: matrix=%s preset=%s profile=%d spec=%+v cluster=%+v",
								cl.Covered, cl.IEnd-cl.IStart, mat, preset, pi, spec, cl)
						}
						if cl.Covered <= 0 {
							t.Fatalf("non-positive cluster coverage %d: %+v", cl.Covered, cl)
						}
					}
					cands := Candidates(ch, cfg, len(s), m.MaxScore())
					for _, c := range cands {
						if err := c.Rect.Validate(len(s)); err != nil {
							t.Fatalf("reproducer: matrix=%s preset=%s profile=%d spec=%+v window=%+v: %v",
								mat, preset, pi, spec, c.Rect, err)
						}
						mtx := sc.MatrixWindow(p, s, c.Rect, nil)
						var max int32
						for _, row := range mtx {
							for _, v := range row {
								if v > max {
									max = v
								}
							}
						}
						if max > c.Bound {
							t.Fatalf("bound not admissible: true window max %d > bound %d\n"+
								"reproducer: matrix=%s preset=%s profile=%d spec=%+v window=%+v",
								max, c.Bound, mat, preset, pi, spec, c.Rect)
						}
					}
				}
			}
		}
	}
}

// TestBoundFormula pins the bound to its closed form: MaxScore per
// matched pair times the shorter window side, since gaps only subtract.
func TestBoundFormula(t *testing.T) {
	r := align.Rect{Y0: 5, Y1: 14, X0: 40, X1: 99}
	if got, want := admissibleBound(r, 11), int32(11*10); got != want {
		t.Fatalf("bound = %d, want %d", got, want)
	}
	r = align.Rect{Y0: 1, Y1: 100, X0: 101, X1: 103}
	if got, want := admissibleBound(r, 17), int32(17*3); got != want {
		t.Fatalf("bound = %d, want %d", got, want)
	}
}
