package seedindex

import (
	"sort"
	"testing"

	"repro/internal/align"
	"repro/internal/scoring"
)

// fuzzSeeds feeds the corpus shapes the prefilter must survive: empty
// input, inputs shorter than the seed span, homopolymer runs (worst-case
// posting lists), all-ambiguity input (the byte analogue of all-N), and
// arbitrary malformed alphabets with out-of-range codes.
func fuzzSeeds(f *testing.F) {
	f.Add([]byte{}, 3, 64, "")
	f.Add([]byte{0}, 5, 64, "")                            // k > len
	f.Add([]byte{0, 1, 2, 3}, 12, 64, "")                  // k > len, dna-sized k
	f.Add(make([]byte, 200), 3, 8, "")                     // homopolymer, cap small
	f.Add([]byte{255, 255, 255, 255, 255, 255}, 3, 64, "") // all-N
	f.Add([]byte{0, 1, 20, 4, 0, 1, 20, 4, 0, 1}, 3, 64, "")
	f.Add([]byte("\x00\x01\x02\x00\x01\x02\x00\x01\x02"), 3, 64, "101")
	f.Add([]byte{0, 19, 0, 19, 0, 19, 0, 19}, 2, 64, "1001")
	f.Add([]byte{7, 7, 7, 1, 7, 7, 7, 1, 7, 7, 7, 1}, 3, 1, "")
}

// FuzzSeedIndex throws arbitrary byte sequences and knob values at
// BuildIndex. Invalid configurations must be rejected with an error, and
// every accepted index must satisfy its invariants: sorted keys, sorted
// in-range occurrence positions, no indexed window containing a code
// outside the primary alphabet, and no posting list above the cap.
func FuzzSeedIndex(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte, k int, maxOcc int, mask string) {
		if len(data) > 1<<14 {
			data = data[:1<<14]
		}
		cfg := Config{K: k, Mask: mask, Base: 20, MaxOcc: maxOcc, SuccPairs: 4,
			MergeGap: 8, ChainGap: 32, BandWidth: 8, Pad: 8, MinSeeds: 1, MinMatched: 1}
		x, err := BuildIndex(data, cfg)
		if err != nil {
			if cfg.Validate() == nil {
				t.Fatalf("BuildIndex rejected a valid config: %v", err)
			}
			return
		}
		span := cfg.Span()
		offsets := make([]int, 0, cfg.Weight())
		if mask != "" {
			for i := range mask {
				if mask[i] == '1' {
					offsets = append(offsets, i)
				}
			}
		} else {
			for i := 0; i < k; i++ {
				offsets = append(offsets, i)
			}
		}
		keys := x.Keys()
		if !sort.SliceIsSorted(keys, func(a, b int) bool { return keys[a] < keys[b] }) {
			t.Fatal("index keys not sorted")
		}
		total := 0
		for _, key := range keys {
			occ := x.Occurrences(key)
			if len(occ) == 0 || len(occ) > maxOcc {
				t.Fatalf("posting list length %d violates cap %d", len(occ), maxOcc)
			}
			total += len(occ)
			for i, p := range occ {
				if i > 0 && occ[i-1] >= p {
					t.Fatalf("occurrences not strictly increasing: %v", occ)
				}
				if p < 0 || int(p)+span > len(data) {
					t.Fatalf("occurrence %d out of range for length %d", p, len(data))
				}
				for _, o := range offsets {
					if data[int(p)+o] >= byte(cfg.Base) {
						t.Fatalf("indexed window at %d samples out-of-alphabet code", p)
					}
				}
			}
		}
		if total != x.Positions() {
			t.Fatalf("Positions() = %d, posting lists hold %d", x.Positions(), total)
		}
	})
}

// FuzzChainCandidates runs the full index -> chain -> candidates path on
// arbitrary input and checks the downstream contract the extension stage
// relies on: every candidate window validates against the sequence
// length (Y1 < X0 included), bounds are positive, match the admissible
// closed form, and candidates arrive in deterministic sorted order.
func FuzzChainCandidates(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte, k int, maxOcc int, mask string) {
		if len(data) > 1<<13 {
			data = data[:1<<13]
		}
		cfg := Config{K: k, Mask: mask, Base: 20, MaxOcc: maxOcc, SuccPairs: 4,
			MergeGap: 8, ChainGap: 32, BandWidth: 8, Pad: 8, MinSeeds: 1,
			MinMatched: 1, MaxCandidates: 512}
		if cfg.Validate() != nil {
			return
		}
		x, err := BuildIndex(data, cfg)
		if err != nil {
			t.Fatalf("valid config rejected: %v", err)
		}
		m, _ := scoring.ByName("BLOSUM62")
		maxScore := m.MaxScore()
		cands := Candidates(Chain(x, cfg), cfg, len(data), maxScore)
		if len(cands) > cfg.MaxCandidates {
			t.Fatalf("%d candidates exceed cap %d", len(cands), cfg.MaxCandidates)
		}
		var prev *align.Rect
		for i := range cands {
			c := cands[i]
			if err := c.Rect.Validate(len(data)); err != nil {
				t.Fatalf("candidate %d invalid: %v", i, err)
			}
			want := maxScore * int32(min(c.Rect.H(), c.Rect.W()))
			if c.Bound <= 0 || c.Bound != want {
				t.Fatalf("candidate %d bound %d, want %d", i, c.Bound, want)
			}
			if prev != nil {
				a, b := *prev, c.Rect
				if b.Y0 < a.Y0 || (b.Y0 == a.Y0 && b.X0 < a.X0) {
					t.Fatalf("candidates not sorted: %+v before %+v", a, b)
				}
			}
			prev = &cands[i].Rect
		}
	})
}
