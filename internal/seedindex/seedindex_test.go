package seedindex

import (
	"reflect"
	"testing"

	"repro/internal/seq"
)

func testConfig() Config {
	return Config{K: 3, Base: 20, MaxOcc: 64, SuccPairs: 8, MergeGap: 8,
		ChainGap: 32, BandWidth: 8, Pad: 8, MinSeeds: 1, MinMatched: 3}
}

func TestBuildIndexBasic(t *testing.T) {
	// AAAB AAAB: "AAA" at 0 and 4, "AAB" at 1 and 5, "ABA" at 2, "BAA" at 3.
	s := []byte{0, 0, 0, 1, 0, 0, 0, 1}
	cfg := testConfig()
	x, err := BuildIndex(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := x.Occurrences(0); !reflect.DeepEqual(got, []int32{0, 4}) {
		t.Fatalf("AAA occurrences = %v, want [0 4]", got)
	}
	key := uint64(0*400 + 0*20 + 1) // "AAB"
	if got := x.Occurrences(key); !reflect.DeepEqual(got, []int32{1, 5}) {
		t.Fatalf("AAB occurrences = %v, want [1 5]", got)
	}
	if x.Positions() != 6 {
		t.Fatalf("positions = %d, want 6", x.Positions())
	}
}

func TestBuildIndexSkipsAmbiguity(t *testing.T) {
	// Code 20 is outside the primary range: windows containing it are
	// not indexed.
	s := []byte{0, 1, 20, 1, 0, 2, 3, 4}
	x, err := BuildIndex(s, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range x.Keys() {
		for _, p := range x.Occurrences(key) {
			for o := 0; o < 3; o++ {
				if s[int(p)+o] >= 20 {
					t.Fatalf("indexed window at %d contains ambiguity code", p)
				}
			}
		}
	}
	if x.Positions() != 3 { // windows starting at 3, 4, 5
		t.Fatalf("positions = %d, want 3", x.Positions())
	}
}

func TestBuildIndexOccurrenceCap(t *testing.T) {
	s := make([]byte, 100) // homopolymer: "AAA" occurs 98 times
	cfg := testConfig()
	cfg.MaxOcc = 10
	x, err := BuildIndex(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if x.Kmers() != 0 || x.Dropped() != 1 {
		t.Fatalf("kept %d dropped %d, want 0 kept 1 dropped", x.Kmers(), x.Dropped())
	}
}

func TestBuildIndexShortInput(t *testing.T) {
	x, err := BuildIndex([]byte{0, 1}, testConfig()) // shorter than k
	if err != nil {
		t.Fatal(err)
	}
	if x.Kmers() != 0 || x.Positions() != 0 {
		t.Fatalf("short input indexed %d kmers", x.Kmers())
	}
}

func TestSpacedSeedMask(t *testing.T) {
	cfg := testConfig()
	cfg.Mask = "101"
	cfg.K = 0
	if cfg.Weight() != 2 || cfg.Span() != 3 {
		t.Fatalf("weight %d span %d, want 2/3", cfg.Weight(), cfg.Span())
	}
	// ABC and ADC share the mask samples (A, C); ABD does not.
	s := []byte{0, 1, 2, 0, 3, 2, 0, 1, 3}
	x, err := BuildIndex(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	key := uint64(0*20 + 2) // A_C
	if got := x.Occurrences(key); !reflect.DeepEqual(got, []int32{0, 3}) {
		t.Fatalf("A_C occurrences = %v, want [0 3]", got)
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []Config{
		{K: 3, Base: 1, MaxOcc: 1, SuccPairs: 1, BandWidth: 1, MinSeeds: 1},          // base too small
		{K: 0, Base: 20, MaxOcc: 1, SuccPairs: 1, BandWidth: 1, MinSeeds: 1},         // k < 1
		{K: 20, Base: 20, MaxOcc: 1, SuccPairs: 1, BandWidth: 1, MinSeeds: 1},        // key overflow
		{Mask: "0110", Base: 20, MaxOcc: 1, SuccPairs: 1, BandWidth: 1, MinSeeds: 1}, // mask edges
		{Mask: "1x1", Base: 20, MaxOcc: 1, SuccPairs: 1, BandWidth: 1, MinSeeds: 1},  // mask alphabet
		{K: 3, Base: 20, MaxOcc: 0, SuccPairs: 1, BandWidth: 1, MinSeeds: 1},         // cap < 1
		{K: 3, Base: 20, MaxOcc: 1, SuccPairs: 0, BandWidth: 1, MinSeeds: 1},         // succ < 1
		{K: 3, Base: 20, MaxOcc: 1, SuccPairs: 1, BandWidth: 0, MinSeeds: 1},         // band < 1
		{K: 3, Base: 20, MaxOcc: 1, SuccPairs: 1, BandWidth: 1, MinSeeds: 0},         // seeds < 1
		{K: 3, Base: 20, MaxOcc: 1, SuccPairs: 1, BandWidth: 1, MinSeeds: 1, Pad: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d unexpectedly valid: %+v", i, c)
		}
	}
	if err := testConfig().Validate(); err != nil {
		t.Fatalf("test config invalid: %v", err)
	}
}

func TestPresets(t *testing.T) {
	for _, preset := range []string{PresetFast, PresetBalanced, PresetSensitive} {
		for _, base := range []int{4, 20} {
			c, err := PresetConfig(preset, base)
			if err != nil {
				t.Fatalf("%s/%d: %v", preset, base, err)
			}
			if err := c.Validate(); err != nil {
				t.Fatalf("%s/%d invalid: %v", preset, base, err)
			}
		}
	}
	if _, err := PresetConfig("warp", 20); err == nil {
		t.Fatal("unknown preset accepted")
	}
	if !ValidPreset("fast") || ValidPreset("warp") || ValidPreset("") {
		t.Fatal("ValidPreset wrong")
	}
}

// TestChainDeterminism: identical inputs produce identical output, and
// candidate windows are always valid with Y1 < X0.
func TestChainDeterminism(t *testing.T) {
	s := seq.Tandem(seq.TandemSpec{UnitLen: 40, Copies: 6, FlankLen: 20,
		Profile: seq.MutationProfile{SubstRate: 0.2, IndelRate: 0.02, IndelExt: 0.5},
		Seed:    5}).Codes
	cfg := testConfig()
	x1, _ := BuildIndex(s, cfg)
	x2, _ := BuildIndex(s, cfg)
	ch1, ch2 := Chain(x1, cfg), Chain(x2, cfg)
	if !reflect.DeepEqual(ch1, ch2) {
		t.Fatal("Chain is not deterministic")
	}
	c1 := Candidates(ch1, cfg, len(s), 11)
	c2 := Candidates(ch2, cfg, len(s), 11)
	if !reflect.DeepEqual(c1, c2) {
		t.Fatal("Candidates is not deterministic")
	}
	if len(c1) == 0 {
		t.Fatal("no candidates on a tandem array")
	}
	for _, c := range c1 {
		if err := c.Rect.Validate(len(s)); err != nil {
			t.Fatalf("invalid candidate window: %v", err)
		}
		if c.Bound <= 0 {
			t.Fatalf("non-positive bound %d for %+v", c.Bound, c.Rect)
		}
	}
}

// TestSegmentsMergeOnDiagonal: seeds on one diagonal within MergeGap
// form a single segment whose covered count never exceeds its extent.
func TestSegmentsMergeOnDiagonal(t *testing.T) {
	// Perfect tandem: unit of 10 distinct codes repeated 4 times. Every
	// position matches the position one unit later, giving one long run
	// on diagonal 10.
	unit := []byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	var s []byte
	for i := 0; i < 4; i++ {
		s = append(s, unit...)
	}
	cfg := testConfig()
	x, _ := BuildIndex(s, cfg)
	ch := Chain(x, cfg)
	found := false
	for _, cl := range ch.Clusters {
		if cl.DMin <= 10 && cl.DMax >= 10 {
			found = true
			if ext := cl.IEnd - cl.IStart; cl.Covered > ext {
				t.Fatalf("cluster covered %d exceeds extent %d", cl.Covered, ext)
			}
		}
	}
	if !found {
		t.Fatal("no cluster on the tandem diagonal")
	}
}
