package seedindex_test

import (
	"reflect"
	"testing"

	"repro"
	"repro/internal/seedindex"
	"repro/internal/seq"
)

// moderate is the divergence profile of the recall battery. The recall
// floors below are calibrated for it; at DefaultDivergence (45%
// substitution) exact seeds between copies become rare and only the
// sensitive preset keeps full recall — that trade is documented in
// DESIGN.md section 13.
var moderate = seq.MutationProfile{SubstRate: 0.2, IndelRate: 0.02, IndelExt: 0.5}

// battery returns the differential inputs: >= 6 deterministic seeds,
// every sequence at most 2000 residues, mixing tandem arrays with
// titin-like domain repeats on both alphabets.
func battery() []struct {
	id, residues, matrix string
} {
	var cases []struct{ id, residues, matrix string }
	add := func(id, residues, matrix string) {
		if len(residues) > 2000 {
			residues = residues[:2000]
		}
		cases = append(cases, struct{ id, residues, matrix string }{id, residues, matrix})
	}
	for s := uint64(1); s <= 3; s++ {
		q := seq.Tandem(seq.TandemSpec{UnitLen: 40 + 20*int(s), Copies: 6,
			FlankLen: 60, Profile: moderate, Seed: s})
		add(q.ID, q.String(), "BLOSUM62")
	}
	add("titin-700", seq.SyntheticTitin(700, 3).String(), "BLOSUM62")
	add("titin-900-pam", seq.SyntheticTitin(900, 4).String(), "PAM250")
	q := seq.Tandem(seq.TandemSpec{Alpha: seq.DNA, UnitLen: 90, Copies: 8,
		FlankLen: 80, Profile: moderate, Seed: 9})
	add(q.ID, q.String(), "paper-dna")
	q = seq.Tandem(seq.TandemSpec{Alpha: seq.DNA, UnitLen: 50, Copies: 12,
		FlankLen: 40, Profile: seq.MutationProfile{SubstRate: 0.1}, Seed: 11})
	add(q.ID+"-clean", q.String(), "dna-unit")
	return cases
}

// TestSensitiveBitIdentical asserts that the sensitive preset returns
// top-K alignments bit-identical to the full engine — scores, splits and
// every matched pair — on all three backends in strict mode. Sensitive
// runs the exact engine and only adds prefilter telemetry, so any
// divergence here is a wiring bug.
func TestSensitiveBitIdentical(t *testing.T) {
	backends := map[string]repro.Options{
		"sequential": {},
		"parallel":   {Workers: 4},
		"cluster":    {Slaves: 2, ThreadsPerSlave: 2},
	}
	for _, c := range battery() {
		base, err := repro.Analyze(c.id, c.residues, repro.Options{Matrix: c.matrix, NumTops: 8})
		if err != nil {
			t.Fatalf("%s: %v", c.id, err)
		}
		for name, opt := range backends {
			opt.Matrix, opt.NumTops, opt.Preset = c.matrix, 8, seedindex.PresetSensitive
			got, err := repro.Analyze(c.id, c.residues, opt)
			if err != nil {
				t.Fatalf("%s/%s: %v", c.id, name, err)
			}
			if !reflect.DeepEqual(got.Tops, base.Tops) {
				t.Errorf("%s/%s: sensitive tops differ from full engine", c.id, name)
			}
			if !reflect.DeepEqual(got.Families, base.Families) {
				t.Errorf("%s/%s: sensitive families differ from full engine", c.id, name)
			}
			if got.Prefilter == nil || got.Prefilter.Preset != seedindex.PresetSensitive {
				t.Errorf("%s/%s: sensitive report missing prefilter telemetry", c.id, name)
			}
		}
	}
}

// Recall floors of the filtering presets on moderate-divergence tandem
// arrays (see `moderate` above), measured as score recall: the summed
// top-alignment score under the preset divided by the full engine's,
// averaged over the battery. Measured means sit near 0.89 (fast) and
// 0.92 (balanced); the floors leave margin for tuning drift without
// letting a broken filter pass.
const (
	fastRecallFloor     = 0.78
	balancedRecallFloor = 0.83
)

// TestFilterPresetRecall asserts the documented recall floors for the
// fast and balanced presets on seeded synthetic tandem arrays, and that
// balanced never recalls less than fast on aggregate (it searches a
// superset of the pair space).
func TestFilterPresetRecall(t *testing.T) {
	sum := func(rep *repro.Report) float64 {
		var s float64
		for _, top := range rep.Tops {
			s += float64(top.Score)
		}
		return s
	}
	var exactSum, fastSum, balancedSum float64
	for s := uint64(1); s <= 6; s++ {
		q := seq.Tandem(seq.TandemSpec{UnitLen: 50 + 10*int(s), Copies: 7,
			FlankLen: 50, Profile: moderate, Seed: 100 + s})
		exact, err := repro.Analyze(q.ID, q.String(), repro.Options{NumTops: 10})
		if err != nil {
			t.Fatal(err)
		}
		if len(exact.Tops) == 0 {
			t.Fatalf("seed %d: full engine found no repeats in a tandem array", s)
		}
		exactSum += sum(exact)
		for preset, acc := range map[string]*float64{
			seedindex.PresetFast: &fastSum, seedindex.PresetBalanced: &balancedSum,
		} {
			rep, err := repro.Analyze(q.ID, q.String(), repro.Options{NumTops: 10, Preset: preset})
			if err != nil {
				t.Fatalf("seed %d/%s: %v", s, preset, err)
			}
			*acc += sum(rep)
			for _, top := range rep.Tops {
				if top.Score > exact.Tops[0].Score {
					t.Fatalf("seed %d/%s: prefilter top score %d exceeds exact optimum %d",
						s, preset, top.Score, exact.Tops[0].Score)
				}
			}
		}
	}
	fastRecall := fastSum / exactSum
	balancedRecall := balancedSum / exactSum
	t.Logf("score recall over battery: fast=%.3f balanced=%.3f", fastRecall, balancedRecall)
	if fastRecall < fastRecallFloor {
		t.Errorf("fast recall %.3f below documented floor %.2f", fastRecall, fastRecallFloor)
	}
	if balancedRecall < balancedRecallFloor {
		t.Errorf("balanced recall %.3f below documented floor %.2f", balancedRecall, balancedRecallFloor)
	}
	if balancedRecall+1e-9 < fastRecall-0.05 {
		t.Errorf("balanced recall %.3f clearly below fast %.3f", balancedRecall, fastRecall)
	}
}

// TestFilterPresetsBackendIndependent asserts that fast and balanced
// return the same result regardless of the Workers/Slaves options: the
// windowed driver is sequential by design so cache entries stay
// shareable across backends.
func TestFilterPresetsBackendIndependent(t *testing.T) {
	q := seq.Tandem(seq.TandemSpec{UnitLen: 60, Copies: 6, FlankLen: 40,
		Profile: moderate, Seed: 42})
	for _, preset := range []string{seedindex.PresetFast, seedindex.PresetBalanced} {
		base, err := repro.Analyze(q.ID, q.String(), repro.Options{NumTops: 6, Preset: preset})
		if err != nil {
			t.Fatal(err)
		}
		for name, opt := range map[string]repro.Options{
			"parallel": {NumTops: 6, Preset: preset, Workers: 4},
			"cluster":  {NumTops: 6, Preset: preset, Slaves: 2, ThreadsPerSlave: 2},
		} {
			got, err := repro.Analyze(q.ID, q.String(), opt)
			if err != nil {
				t.Fatalf("%s/%s: %v", preset, name, err)
			}
			if !reflect.DeepEqual(got.Tops, base.Tops) {
				t.Errorf("%s/%s: tops differ from sequential windowed run", preset, name)
			}
		}
	}
}
