package seedindex

import (
	"sort"

	"repro/internal/align"
	"repro/internal/topalign"
)

// Segment is a run of same-diagonal seed matches merged within MergeGap:
// prefix positions [Start, End) match suffix positions [Start+D, End+D)
// (0-based). Covered counts distinct covered residues, overlap-adjusted.
type Segment struct {
	D          int // diagonal j - i, >= 1
	Start, End int // 0-based i-range, End exclusive
	Covered    int
	Seeds      int
}

// Cluster is a group of segments chained within one diagonal band.
type Cluster struct {
	IStart, IEnd int // 0-based i-range union, End exclusive
	DMin, DMax   int
	Covered      int
	Seeds        int
}

// ChainResult carries the chained clusters plus stage counts for stats.
type ChainResult struct {
	Clusters []Cluster
	Pairs    int
	Segments int
}

// Candidate is one windowed extension task: a rectangle in global pair
// space plus an admissible score upper bound.
type Candidate struct {
	Rect    align.Rect
	Bound   int32
	Covered int
	Seeds   int
}

type seedPair struct{ d, i int32 }

// Chain enumerates capped seed-match pairs from the index, merges
// same-diagonal runs into segments, and chains segments into clusters
// within diagonal bands. The result is deterministic in the input.
func Chain(x *Index, cfg Config) ChainResult {
	span := x.Span()
	var pairs []seedPair
	for _, key := range x.Keys() {
		occ := x.Occurrences(key)
		for a := 0; a < len(occ); a++ {
			hi := a + cfg.SuccPairs
			if hi > len(occ)-1 {
				hi = len(occ) - 1
			}
			for b := a + 1; b <= hi; b++ {
				pairs = append(pairs, seedPair{d: occ[b] - occ[a], i: occ[a]})
			}
		}
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].d != pairs[b].d {
			return pairs[a].d < pairs[b].d
		}
		return pairs[a].i < pairs[b].i
	})

	// Merge same-diagonal seeds within MergeGap into segments.
	var segs []Segment
	for k := 0; k < len(pairs); {
		d, i := int(pairs[k].d), int(pairs[k].i)
		seg := Segment{D: d, Start: i, End: i + span, Covered: span, Seeds: 1}
		k++
		for k < len(pairs) && int(pairs[k].d) == d && int(pairs[k].i) <= seg.End+cfg.MergeGap {
			i = int(pairs[k].i)
			if end := i + span; end > seg.End {
				cov := end - seg.End
				if cov > span {
					cov = span
				}
				seg.Covered += cov
				seg.End = end
			}
			seg.Seeds++
			k++
		}
		segs = append(segs, seg)
	}

	// Chain segments into clusters within diagonal bands. Band bucketing
	// keeps distinct repeat periodicities apart (a tandem family appears
	// at diagonals u, 2u, ... — each its own band, hence its own
	// candidates) while letting indel-wandering diagonals cluster.
	sort.Slice(segs, func(a, b int) bool {
		ba, bb := segs[a].D/cfg.BandWidth, segs[b].D/cfg.BandWidth
		if ba != bb {
			return ba < bb
		}
		if segs[a].Start != segs[b].Start {
			return segs[a].Start < segs[b].Start
		}
		return segs[a].D < segs[b].D
	})
	var clusters []Cluster
	for k := 0; k < len(segs); {
		band := segs[k].D / cfg.BandWidth
		cl := Cluster{IStart: segs[k].Start, IEnd: segs[k].End,
			DMin: segs[k].D, DMax: segs[k].D,
			Covered: segs[k].Covered, Seeds: segs[k].Seeds}
		// covEnd tracks the union sweep over i-ranges: band-mates on
		// nearby diagonals overlap in i, and summing their Covered
		// outright would double-count stacked segments — an inflated
		// cluster could then crowd out genuinely better-supported ones
		// under MaxCandidates and sneak past MinMatched. Each segment
		// contributes at most the length of its not-yet-covered i-suffix,
		// so Covered never exceeds IEnd-IStart (segments arrive sorted by
		// Start within the band, making the one-pass sweep exact).
		covEnd := segs[k].End
		k++
		for k < len(segs) && segs[k].D/cfg.BandWidth == band && segs[k].Start <= cl.IEnd+cfg.ChainGap {
			s := segs[k]
			if s.End > cl.IEnd {
				cl.IEnd = s.End
			}
			if s.D < cl.DMin {
				cl.DMin = s.D
			}
			if s.D > cl.DMax {
				cl.DMax = s.D
			}
			from := s.Start
			if covEnd > from {
				from = covEnd
			}
			if newLen := s.End - from; newLen > 0 {
				cov := s.Covered
				if cov > newLen {
					cov = newLen
				}
				cl.Covered += cov
				covEnd = s.End
			}
			cl.Seeds += s.Seeds
			k++
		}
		clusters = append(clusters, cl)
	}
	return ChainResult{Clusters: clusters, Pairs: len(pairs), Segments: len(segs)}
}

// Candidates converts filtered clusters into candidate windows over a
// sequence of length n, with admissible bounds computed from the
// exchange matrix's maximum score maxScore.
//
// A cluster whose i-extent exceeds its minimum diagonal (a long tandem
// run) is chopped into row chunks of length DMin. This mirrors the exact
// engine's structure: an alignment in the split-r matrix has all its
// prefix positions <= r and suffix positions > r, so any top alignment
// on diagonal d spans fewer than d rows — the full engine, too, reports
// a long tandem array as multiple sub-diagonal-length alignments. Each
// chunk's window is padded on top/left/right (never the bottom: the
// bottom row is the alignment's ending split, which must stay
// seed-supported) and clamped so that Y1 < X0 always holds.
func Candidates(ch ChainResult, cfg Config, n int, maxScore int32) []Candidate {
	var cands []Candidate
	for _, cl := range ch.Clusters {
		if cl.Seeds < cfg.MinSeeds || cl.Covered < cfg.MinMatched {
			continue
		}
		chunk := cl.DMin
		if chunk < 1 {
			chunk = 1
		}
		for t := cl.IStart; t < cl.IEnd; t += chunk {
			tEnd := t + chunk
			if tEnd > cl.IEnd {
				tEnd = cl.IEnd
			}
			r := align.Rect{
				Y0: t + 1 - cfg.Pad,
				Y1: tEnd,
				X0: t + cl.DMin + 1 - cfg.Pad,
				X1: tEnd + cl.DMax + cfg.Pad,
			}
			if r.Y0 < 1 {
				r.Y0 = 1
			}
			if r.X0 <= r.Y1 {
				r.X0 = r.Y1 + 1
			}
			if r.X1 > n {
				r.X1 = n
			}
			if r.X1 < r.X0 || r.Y1 < r.Y0 {
				continue // degenerate after clamping (cluster at sequence end)
			}
			cands = append(cands, Candidate{
				Rect:    r,
				Bound:   admissibleBound(r, maxScore),
				Covered: cl.Covered,
				Seeds:   cl.Seeds,
			})
		}
	}
	if cfg.MaxCandidates > 0 && len(cands) > cfg.MaxCandidates {
		// Keep the best-supported candidates; ties break positionally so
		// the cap is deterministic.
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].Covered != cands[b].Covered {
				return cands[a].Covered > cands[b].Covered
			}
			return rectLess(cands[a].Rect, cands[b].Rect)
		})
		cands = cands[:cfg.MaxCandidates]
	}
	sort.Slice(cands, func(a, b int) bool { return rectLess(cands[a].Rect, cands[b].Rect) })
	return cands
}

// admissibleBound returns an upper bound on any alignment score inside
// the window: a path matches at most min(H, W) residue pairs, each
// scoring at most maxScore, and affine gap penalties only subtract
// (scoring.Gap requires Open >= 0, Ext > 0).
func admissibleBound(r align.Rect, maxScore int32) int32 {
	m := r.H()
	if w := r.W(); w < m {
		m = w
	}
	b := int64(maxScore) * int64(m)
	if b >= int64(topalign.Infinity) {
		b = int64(topalign.Infinity) - 1
	}
	if b < 0 {
		b = 0
	}
	return int32(b)
}

func rectLess(a, b align.Rect) bool {
	if a.Y0 != b.Y0 {
		return a.Y0 < b.Y0
	}
	if a.X0 != b.X0 {
		return a.X0 < b.X0
	}
	if a.Y1 != b.Y1 {
		return a.Y1 < b.Y1
	}
	return a.X1 < b.X1
}
