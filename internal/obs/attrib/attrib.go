// Package attrib is the per-request resource-attribution layer: it
// answers "what did this request cost", where the trace layer (package
// obs/trace) answers "where did its time go". A Usage record
// accumulates CPU nanoseconds, matrix cells, allocations, cache bytes
// and queue wait for one request; the serving layer ships it to the
// client as Report.Usage and X-Resource-* headers, and cmd/reprostat
// reconciles the sum of all attributed CPU against process CPU to
// prove the accounting is honest.
//
// CPU attribution model: every goroutine that computes on behalf of a
// request — the sequential driver, each parallel worker, each cluster
// slave worker thread — pins itself to its OS thread and samples
// CLOCK_THREAD_CPUTIME_ID around its work. While a goroutine holds its
// thread, the thread's CPU clock advances only for that goroutine, so
// the delta is exactly the request's compute, independent of how many
// other requests run concurrently. Cluster slaves ship their deltas
// back to the master inside msgResult, so attribution crosses process
// boundaries the same way spans do.
//
// Allocation attribution reads the global heap-allocation counter
// (runtime/metrics) around the engine run. Unlike thread CPU it is not
// isolated per goroutine: under concurrent load it over-counts by
// whatever neighbours allocate in the window. The warm kernels are
// zero-allocation (DESIGN.md section 10), so in practice the figure is
// dominated by the request's own report encoding; treat it as an upper
// bound, not a measurement.
//
// Everything follows the obs conventions: nil receivers are safe, hot
// paths pay one nil check when attribution is off.
package attrib

import (
	"runtime"
	"sync/atomic"
)

// Usage is the resource-attribution record of one request. All fields
// are totals over the request's lifetime. It marshals into
// repro.Report, so field names are part of the serving API.
type Usage struct {
	// CPUNanos is thread CPU time attributed to the request's compute
	// goroutines (sequential driver + parallel workers + cluster slave
	// workers, local or remote).
	CPUNanos int64 `json:"cpu_ns"`
	// EngineWallNanos is the engine's wall time (cache misses only).
	EngineWallNanos int64 `json:"engine_wall_ns,omitempty"`
	// QueueWaitNanos is time spent in the admission queue.
	QueueWaitNanos int64 `json:"queue_wait_ns,omitempty"`
	// Cells is the number of alignment-matrix cells computed.
	Cells int64 `json:"cells"`
	// Alignments is the number of score-only matrix computations.
	Alignments int64 `json:"alignments"`
	// AllocBytes is the heap allocated during the engine run (global
	// delta; see the package comment for the concurrency caveat).
	AllocBytes int64 `json:"alloc_bytes"`
	// CacheBytesRead and CacheBytesWritten count pre-encoded report
	// bytes moved through the result cache for this request.
	CacheBytesRead    int64 `json:"cache_bytes_read,omitempty"`
	CacheBytesWritten int64 `json:"cache_bytes_written,omitempty"`
	// KernelTiers is the tier mix: alignments served per kernel tier
	// name, plus "rerun" for int16 saturation re-runs (those alignments
	// are counted under both the int16 tier and "rerun" — the re-run is
	// extra work, not a different serving tier).
	KernelTiers map[string]int64 `json:"kernel_tiers,omitempty"`
}

// Add folds another usage record into u (nil-safe on both sides).
func (u *Usage) Add(o *Usage) {
	if u == nil || o == nil {
		return
	}
	u.CPUNanos += o.CPUNanos
	u.EngineWallNanos += o.EngineWallNanos
	u.QueueWaitNanos += o.QueueWaitNanos
	u.Cells += o.Cells
	u.Alignments += o.Alignments
	u.AllocBytes += o.AllocBytes
	u.CacheBytesRead += o.CacheBytesRead
	u.CacheBytesWritten += o.CacheBytesWritten
	for k, v := range o.KernelTiers {
		if u.KernelTiers == nil {
			u.KernelTiers = make(map[string]int64, len(o.KernelTiers))
		}
		u.KernelTiers[k] += v
	}
}

// Meter accumulates thread-CPU deltas from many goroutines into one
// atomic total. The zero value is ready; a nil Meter records nothing.
type Meter struct {
	cpu atomic.Int64
}

// AddCPU folds a measured CPU delta into the meter. Negative deltas
// (clock quirks) are dropped rather than subtracted.
func (m *Meter) AddCPU(ns int64) {
	if m == nil || ns <= 0 {
		return
	}
	m.cpu.Add(ns)
}

// CPUNanos returns the accumulated total (0 for nil).
func (m *Meter) CPUNanos() int64 {
	if m == nil {
		return 0
	}
	return m.cpu.Load()
}

// Stopwatch measures one goroutine's thread CPU between Start and
// Stop. Start pins the goroutine to its OS thread (the thread CPU
// clock is only meaningful while the goroutine cannot migrate) and
// Stop unpins it. Use one Stopwatch per goroutine; zero value ready.
type Stopwatch struct {
	t0      int64
	running bool
}

// Start pins the calling goroutine to its thread and samples the
// thread CPU clock. Calling Start twice without Stop is a no-op.
func (w *Stopwatch) Start() {
	if w == nil || w.running {
		return
	}
	runtime.LockOSThread()
	w.t0 = threadCPUNanos()
	w.running = true
}

// Stop unpins the goroutine and returns the CPU consumed since Start
// (0 when not running, or on platforms without a thread CPU clock).
func (w *Stopwatch) Stop() int64 {
	if w == nil || !w.running {
		return 0
	}
	d := threadCPUNanos() - w.t0
	runtime.UnlockOSThread()
	w.running = false
	if d < 0 {
		return 0
	}
	return d
}

// ThreadCPUSupported reports whether this platform attributes
// per-thread CPU (false means every Stopwatch delta is 0 and
// reconciliation against process CPU is meaningless).
func ThreadCPUSupported() bool { return threadCPUSupported }
