//go:build !linux || (!amd64 && !arm64)

package attrib

const threadCPUSupported = false

// threadCPUNanos has no portable implementation; attribution degrades
// to zeros and reconciliation is skipped (ThreadCPUSupported reports
// false).
func threadCPUNanos() int64 { return 0 }

// ProcessCPU is unavailable without getrusage; reprostat treats 0 as
// "no process clock" and skips reconciliation.
func ProcessCPU() int64 { return 0 }
