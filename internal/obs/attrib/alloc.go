package attrib

import "runtime/metrics"

var allocSample = []metrics.Sample{{Name: "/gc/heap/allocs:bytes"}}

// HeapAllocBytes returns the process's cumulative heap-allocation
// counter. Deltas around an engine run approximate the run's
// allocations; the counter is process-global, so concurrent neighbours
// inflate the delta (see the package comment).
func HeapAllocBytes() int64 {
	s := make([]metrics.Sample, 1)
	copy(s, allocSample)
	metrics.Read(s)
	if s[0].Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return int64(s[0].Value.Uint64())
}
