package attrib

import (
	"encoding/json"
	"sync"
	"testing"
)

func TestUsageAddNilSafe(t *testing.T) {
	var u *Usage
	u.Add(&Usage{CPUNanos: 5}) // must not panic
	var v Usage
	v.Add(nil) // must not panic
	if v.CPUNanos != 0 {
		t.Fatalf("nil add mutated receiver: %+v", v)
	}
}

func TestUsageAddFolds(t *testing.T) {
	a := &Usage{CPUNanos: 10, Cells: 100, Alignments: 2, AllocBytes: 7,
		KernelTiers: map[string]int64{"int32x8": 2}}
	b := &Usage{CPUNanos: 5, Cells: 50, Alignments: 1, QueueWaitNanos: 3,
		CacheBytesRead: 9, KernelTiers: map[string]int64{"int32x8": 1, "scalar": 4}}
	a.Add(b)
	if a.CPUNanos != 15 || a.Cells != 150 || a.Alignments != 3 {
		t.Fatalf("bad fold: %+v", a)
	}
	if a.QueueWaitNanos != 3 || a.CacheBytesRead != 9 {
		t.Fatalf("bad fold of optional fields: %+v", a)
	}
	if a.KernelTiers["int32x8"] != 3 || a.KernelTiers["scalar"] != 4 {
		t.Fatalf("bad tier fold: %+v", a.KernelTiers)
	}
	// Folding into a record with a nil map must allocate one.
	c := &Usage{}
	c.Add(b)
	if c.KernelTiers["scalar"] != 4 {
		t.Fatalf("nil-map fold lost tiers: %+v", c.KernelTiers)
	}
}

func TestUsageJSONFieldNames(t *testing.T) {
	u := Usage{CPUNanos: 1, Cells: 2, Alignments: 3, AllocBytes: 4}
	raw, err := json.Marshal(u)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"cpu_ns", "cells", "alignments", "alloc_bytes"} {
		if _, ok := m[k]; !ok {
			t.Errorf("missing json field %q in %s", k, raw)
		}
	}
	// Zero optional fields must be omitted — they'd be noise on every
	// cache hit.
	for _, k := range []string{"queue_wait_ns", "engine_wall_ns", "cache_bytes_read", "kernel_tiers"} {
		if _, ok := m[k]; ok {
			t.Errorf("zero field %q not omitted in %s", k, raw)
		}
	}
}

func TestMeterConcurrent(t *testing.T) {
	var m Meter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.AddCPU(3)
			}
		}()
	}
	wg.Wait()
	if got := m.CPUNanos(); got != 8*1000*3 {
		t.Fatalf("meter lost updates: got %d", got)
	}
	var nilM *Meter
	nilM.AddCPU(5)
	if nilM.CPUNanos() != 0 {
		t.Fatal("nil meter should read 0")
	}
	m.AddCPU(-100)
	if m.CPUNanos() != 8*1000*3 {
		t.Fatal("negative delta must be dropped")
	}
}

// TestStopwatchMeasuresSpin verifies the thread-CPU clock actually
// advances with work on supported platforms. The spin is sized in
// iterations, not wall time, so the test stays fast on slow machines.
func TestStopwatchMeasuresSpin(t *testing.T) {
	if !ThreadCPUSupported() {
		t.Skip("no thread CPU clock on this platform")
	}
	var w Stopwatch
	w.Start()
	x := 1
	for i := 0; i < 5_000_000; i++ {
		x = x*31 + i
	}
	d := w.Stop()
	_ = x
	if d <= 0 {
		t.Fatalf("spin measured %dns CPU; thread clock not advancing", d)
	}
	// Stop without Start must be a 0 no-op.
	if w.Stop() != 0 {
		t.Fatal("double Stop should return 0")
	}
	var nilW *Stopwatch
	nilW.Start()
	if nilW.Stop() != 0 {
		t.Fatal("nil stopwatch should measure 0")
	}
}

// TestStopwatchIsolation checks the core attribution property: a
// pinned goroutine's thread clock does not advance while a *different*
// goroutine burns CPU. Run with a busy neighbour and confirm an idle
// stopwatch interval stays near zero.
func TestStopwatchIsolation(t *testing.T) {
	if !ThreadCPUSupported() {
		t.Skip("no thread CPU clock on this platform")
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() { // busy neighbour
		defer close(done)
		x := 1
		for {
			select {
			case <-stop:
				return
			default:
				x = x*31 + 1
			}
		}
	}()
	var w Stopwatch
	w.Start()
	// Block (not spin) so this goroutine consumes ~no CPU while the
	// neighbour burns a full core.
	ch := make(chan struct{})
	go func() { close(ch) }()
	<-ch
	d := w.Stop()
	close(stop)
	<-done
	// Generous bound: anything under 50ms proves isolation (the
	// neighbour burned far more in the same window on any machine).
	if d > 50e6 {
		t.Fatalf("idle goroutine attributed %dns; thread clock leaking neighbour CPU", d)
	}
}

func TestProcessCPUMonotone(t *testing.T) {
	if !ThreadCPUSupported() {
		t.Skip("no process CPU clock on this platform")
	}
	a := ProcessCPU()
	x := 1
	for i := 0; i < 2_000_000; i++ {
		x = x*31 + i
	}
	_ = x
	b := ProcessCPU()
	if a <= 0 || b < a {
		t.Fatalf("process CPU not monotone: %d -> %d", a, b)
	}
}
