//go:build linux && (amd64 || arm64)

package attrib

import (
	"syscall"
	"unsafe"
)

const threadCPUSupported = true

// clockThreadCPUTimeID is CLOCK_THREAD_CPUTIME_ID from <time.h>: the
// per-thread CPU-time clock. Combined with runtime.LockOSThread it
// gives exact per-goroutine CPU without any profiler overhead.
const clockThreadCPUTimeID = 3

// threadCPUNanos reads the calling thread's CPU clock. The caller must
// hold the thread (runtime.LockOSThread) for the value to be
// attributable to the calling goroutine.
func threadCPUNanos() int64 {
	var ts syscall.Timespec
	// clock_gettime is a vDSO call on linux; Syscall is still cheap
	// enough (~100ns) to pay once per request or worker batch.
	_, _, errno := syscall.Syscall(syscall.SYS_CLOCK_GETTIME, clockThreadCPUTimeID, uintptr(unsafe.Pointer(&ts)), 0)
	if errno != 0 {
		return 0
	}
	return ts.Nano()
}

// ProcessCPU returns the whole process's user+system CPU time in
// nanoseconds (via getrusage). reprostat reconciles the sum of
// attributed per-request CPU against deltas of this value.
func ProcessCPU() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return tvNanos(ru.Utime) + tvNanos(ru.Stime)
}

func tvNanos(tv syscall.Timeval) int64 {
	return int64(tv.Sec)*1e9 + int64(tv.Usec)*1e3
}
