// Package obs is the unified observability layer: a typed metrics
// registry (atomic counters, gauges, and bucketed latency histograms
// with a stable snapshot encoding), a run journal that records
// task-queue and cluster events with monotonic timestamps, and an
// opt-in HTTP debug listener serving /metrics, /trace, and pprof.
//
// The paper's evaluation (Sections 3 and 5) rests on instrumentation —
// realignment-avoidance percentages, speculation overhead, per-level
// speedups — and a production deployment needs the same numbers live.
// Package stats builds its engine counters on the primitives here;
// packages cluster and mpi feed per-rank dispatch counters, heartbeat
// round-trip gauges, and row-request latencies into a Registry.
//
// Every type is safe on a nil receiver, so instrumentation can be
// threaded through hot paths as optional pointers without branching at
// call sites.
package obs

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value (0 for nil).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. The zero value is ready to
// use.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by n (negative allowed).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Load returns the current value (0 for nil).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// HistogramBuckets is the fixed bucket count of every Histogram: bucket
// i counts observations in [2^i, 2^(i+1)) nanoseconds (bucket 0 also
// absorbs zero and negative durations, the last bucket absorbs the
// tail), covering ~1ns to ~34s.
const HistogramBuckets = 35

// Histogram is a bucketed latency histogram with power-of-two bucket
// boundaries. The zero value is ready to use and all methods are safe
// for concurrent use.
//
// Observe increments the bucket before the count, and Snapshot loads
// the count before the buckets, so for any snapshot taken while
// writers are active sum(Buckets) >= Count holds — a snapshot is never
// torn the other way.
type Histogram struct {
	buckets   [HistogramBuckets]atomic.Int64
	count     atomic.Int64
	sum       atomic.Int64 // total nanoseconds
	exemplars [HistogramBuckets]atomic.Pointer[Exemplar]
}

// Exemplar links one observed value in a histogram bucket to the trace
// that produced it, per the OpenMetrics exemplar model: a scrape of a
// slow bucket carries a trace ID that resolves via GET /trace/{id}.
// Each bucket keeps its most recent exemplar (last writer wins — recency
// beats a sampling scheme for "why is this bucket hot right now").
type Exemplar struct {
	TraceID string `json:"trace_id"`
	ValueNS int64  `json:"value_ns"`
	UnixMS  int64  `json:"unix_ms"`
}

// bucketFor maps a duration in nanoseconds to its bucket index.
func bucketFor(ns int64) int {
	if ns <= 0 {
		return 0
	}
	b := bits.Len64(uint64(ns)) - 1
	if b >= HistogramBuckets {
		b = HistogramBuckets - 1
	}
	return b
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := d.Nanoseconds()
	h.buckets[bucketFor(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

// ObserveExemplar records one duration and tags its bucket with an
// exemplar naming the trace that produced the observation. An empty
// trace ID degrades to a plain Observe.
func (h *Histogram) ObserveExemplar(d time.Duration, traceID string) {
	if h == nil {
		return
	}
	ns := d.Nanoseconds()
	b := bucketFor(ns)
	h.buckets[b].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	if traceID != "" {
		h.exemplars[b].Store(&Exemplar{
			TraceID: traceID,
			ValueNS: ns,
			UnixMS:  time.Now().UnixMilli(),
		})
	}
}

// ObserveN records n observations of d each, in one pass. Group kernels
// use it to attribute a group's wall time to its members so the
// histogram's count matches the alignment count and its mean stays a
// per-alignment figure.
func (h *Histogram) ObserveN(d time.Duration, n int) {
	if h == nil || n <= 0 {
		return
	}
	ns := d.Nanoseconds()
	h.buckets[bucketFor(ns)].Add(int64(n))
	h.count.Add(int64(n))
	h.sum.Add(ns * int64(n))
}

// Snapshot returns a point-in-time copy (zero snapshot for nil).
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	for i := range s.Buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	for i := range h.exemplars {
		if e := h.exemplars[i].Load(); e != nil {
			s.Exemplars = append(s.Exemplars, BucketExemplar{Bucket: i, Exemplar: *e})
		}
	}
	return s
}

// AddSnapshot folds a snapshot's counts into the live histogram (the
// inverse direction of Snapshot). Exemplars are not carried over — they
// decorate the scrape that observed them, not an aggregate. Nil-safe.
func (h *Histogram) AddSnapshot(s HistogramSnapshot) {
	if h == nil || s.Count == 0 {
		return
	}
	for i, n := range s.Buckets {
		if n != 0 {
			h.buckets[i].Add(n)
		}
	}
	h.count.Add(s.Count)
	h.sum.Add(s.Sum)
}

// HistogramSnapshot is a point-in-time copy of a Histogram. Exemplars
// are scrape-local decoration: the stable binary codec (OBS1) does not
// carry them, and Merge ignores them.
type HistogramSnapshot struct {
	Count     int64                   `json:"count"`
	Sum       int64                   `json:"sum_ns"` // total nanoseconds
	Buckets   [HistogramBuckets]int64 `json:"buckets"`
	Exemplars []BucketExemplar        `json:"exemplars,omitempty"`
}

// BucketExemplar is one bucket's exemplar in a snapshot.
type BucketExemplar struct {
	Bucket int `json:"bucket"`
	Exemplar
}

// Merge folds another snapshot into this one (e.g. to aggregate
// per-rank latency histograms on the master).
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) {
	s.Count += o.Count
	s.Sum += o.Sum
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
}

// Mean returns the mean observed duration (0 when empty).
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.Sum / s.Count)
}

// Registry names metrics. Metrics may be created through the registry
// (Counter/Gauge/Histogram are get-or-create) or allocated elsewhere
// and bound under a name (Bind*), in which case the registry snapshot
// reads the live shared value — package stats binds its engine
// counters this way. All methods are safe on a nil receiver; the
// get-or-create accessors then return nil, which every metric method
// tolerates.
type Registry struct {
	mu     sync.Mutex
	caps   map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		caps:   make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.caps[name]
	if c == nil {
		c = &Counter{}
		r.caps[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// BindCounter registers an externally owned counter under name; the
// snapshot reads the shared value live. No-op when either side is nil.
func (r *Registry) BindCounter(name string, c *Counter) {
	if r == nil || c == nil {
		return
	}
	r.mu.Lock()
	r.caps[name] = c
	r.mu.Unlock()
}

// BindGauge registers an externally owned gauge under name.
func (r *Registry) BindGauge(name string, g *Gauge) {
	if r == nil || g == nil {
		return
	}
	r.mu.Lock()
	r.gauges[name] = g
	r.mu.Unlock()
}

// LookupGauge returns the named gauge without creating it (nil when
// absent or when the registry is nil).
func (r *Registry) LookupGauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gauges[name]
}

// RemoveGauge deletes the named gauge from the registry, so snapshots
// stop reporting it. Used for per-peer gauges whose peer is gone — a
// dead rank's heartbeat RTT must disappear rather than freeze at its
// last value.
func (r *Registry) RemoveGauge(name string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	delete(r.gauges, name)
	r.mu.Unlock()
}

// BindHistogram registers an externally owned histogram under name.
func (r *Registry) BindHistogram(name string, h *Histogram) {
	if r == nil || h == nil {
		return
	}
	r.mu.Lock()
	r.hists[name] = h
	r.mu.Unlock()
}

// Snapshot is a point-in-time copy of a registry, with stable JSON and
// binary encodings (see codec.go). Map iteration order is irrelevant:
// the binary encoding sorts names.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies every metric's current value (empty snapshot for
// nil).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.caps))
	for k, v := range r.caps {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()
	for k, v := range counters {
		s.Counters[k] = v.Load()
	}
	for k, v := range gauges {
		s.Gauges[k] = v.Load()
	}
	for k, v := range hists {
		s.Histograms[k] = v.Snapshot()
	}
	return s
}

// sortedKeys returns m's keys in lexical order (for stable encodings).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
