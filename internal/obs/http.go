package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs/trace"
)

// DebugServer is the opt-in HTTP debug listener:
//
//	GET /metrics             JSON registry snapshot
//	GET /metrics?format=prom Prometheus text exposition (also selected
//	                         by an Accept header preferring text/plain)
//	GET /trace?n=200         JSON tail of the run journal (default 200)
//	GET /trace/{id}          one request trace as a span tree
//	GET /trace/{id}?format=chrome  the same trace as Chrome trace_event
//	                         JSON (opens directly in Perfetto)
//	GET /debug/pprof/*       the standard pprof handlers
//
// It is meant for operators, not end users: StartDebug binds loopback
// when the address has no host, and nothing authenticates requests, so
// exposing it beyond localhost is an explicit operator decision
// (DESIGN.md section 8).
type DebugServer struct {
	// Addr is the bound address (useful when the requested port was 0).
	Addr string

	ln  net.Listener
	srv *http.Server
}

// WantsProm reports whether the request asks for the Prometheus text
// exposition: ?format=prom, or an Accept header naming text/plain
// without naming application/json first.
func WantsProm(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prom", "prometheus":
		return true
	case "json":
		return false
	}
	accept := r.Header.Get("Accept")
	jsonAt := strings.Index(accept, "application/json")
	plainAt := strings.Index(accept, "text/plain")
	return plainAt >= 0 && (jsonAt < 0 || plainAt < jsonAt)
}

// WantsOpenMetrics reports whether the request asks for the
// OpenMetrics 1.0 text format (exemplar-capable):
// ?format=openmetrics, or an Accept header naming
// application/openmetrics-text.
func WantsOpenMetrics(r *http.Request) bool {
	if r.URL.Query().Get("format") == "openmetrics" {
		return true
	}
	if f := r.URL.Query().Get("format"); f != "" {
		return false // an explicit other format wins over Accept
	}
	return strings.Contains(r.Header.Get("Accept"), "application/openmetrics-text")
}

// HandleMetrics serves a registry snapshot with content negotiation
// between JSON, the Prometheus text format, and OpenMetrics. Shared by
// the debug listener and the serving layer's /metrics endpoint.
func HandleMetrics(w http.ResponseWriter, r *http.Request, reg *Registry) {
	if WantsOpenMetrics(r) {
		w.Header().Set("Content-Type", OpenMetricsContentType)
		WriteOpenMetrics(w, reg.Snapshot()) //nolint:errcheck // client gone mid-body
		return
	}
	if WantsProm(r) {
		w.Header().Set("Content-Type", PromContentType)
		WritePrometheus(w, reg.Snapshot()) //nolint:errcheck // client gone mid-body
		return
	}
	writeJSON(w, reg.Snapshot())
}

// HandleTraceByID serves one trace from col as a span tree (default) or
// Chrome trace_event JSON (?format=chrome). Shared by the debug
// listener and the serving layer.
func HandleTraceByID(w http.ResponseWriter, r *http.Request, col *trace.Collector, id string) {
	tid, ok := trace.ParseTraceID(id)
	if !ok {
		http.Error(w, "bad trace id", http.StatusBadRequest)
		return
	}
	spans, dropped, ok := col.Get(tid)
	if !ok {
		http.Error(w, "unknown trace", http.StatusNotFound)
		return
	}
	if r.URL.Query().Get("format") == "chrome" {
		w.Header().Set("Content-Type", "application/json")
		trace.WriteChrome(w, spans) //nolint:errcheck
		return
	}
	// The complete flag is the dropped-marker consumers key off: a
	// truncated span set cannot reconcile a critical path, and tools
	// like reprotrace -check must refuse rather than report a bogus
	// attribution over a partial tree.
	writeJSON(w, struct {
		TraceID  string           `json:"trace_id"`
		Dropped  uint64           `json:"dropped"`
		Complete bool             `json:"complete"`
		Spans    []trace.SpanJSON `json:"spans"`
		Tree     []*trace.Node    `json:"tree"`
	}{tid.String(), dropped, dropped == 0, trace.ToJSON(spans), trace.BuildTree(spans)})
}

// StartDebug serves reg, jnl, and col (any may be nil) on addr. An
// address without a host part — ":9621" — binds 127.0.0.1.
func StartDebug(addr string, reg *Registry, jnl *Journal, col *trace.Collector) (*DebugServer, error) {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug address %q: %w", addr, err)
	}
	if host == "" {
		host = "127.0.0.1"
	}
	ln, err := net.Listen("tcp", net.JoinHostPort(host, port))
	if err != nil {
		return nil, fmt.Errorf("obs: debug listen: %w", err)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		HandleMetrics(w, r, reg)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		n := 200
		if q := r.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v < -1 {
				http.Error(w, "bad n", http.StatusBadRequest)
				return
			}
			n = v
		}
		writeJSON(w, struct {
			Dropped uint64  `json:"dropped"`
			Events  []Event `json:"events"`
		}{jnl.Dropped(), jnl.Tail(n)})
	})
	mux.HandleFunc("/trace/{id}", func(w http.ResponseWriter, r *http.Request) {
		HandleTraceByID(w, r, col, r.PathValue("id"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &DebugServer{
		Addr: ln.Addr().String(),
		ln:   ln,
		srv: &http.Server{
			Handler:           mux,
			ReadHeaderTimeout: 5 * time.Second,
		},
	}
	go s.srv.Serve(ln)
	return s, nil
}

// CloseTimeout bounds how long Close waits for in-flight scrapes
// before force-closing their connections.
const CloseTimeout = 2 * time.Second

// Close stops the listener gracefully: new connections are refused
// immediately, but in-flight /metrics and /trace scrapes are given
// CloseTimeout to finish (an abrupt srv.Close would truncate a scrape
// mid-body, handing the collector a corrupt JSON document). If the
// timeout expires, remaining connections are force-closed.
func (s *DebugServer) Close() error {
	if s == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), CloseTimeout)
	defer cancel()
	if err := s.srv.Shutdown(ctx); err != nil {
		// Stragglers (or a hung peer) outlived the grace period; cut
		// them off rather than hang the caller.
		return s.srv.Close()
	}
	return nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
