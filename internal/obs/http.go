package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// DebugServer is the opt-in HTTP debug listener:
//
//	GET /metrics        JSON registry snapshot
//	GET /trace?n=200    JSON tail of the run journal (default 200)
//	GET /debug/pprof/*  the standard pprof handlers
//
// It is meant for operators, not end users: StartDebug binds loopback
// when the address has no host, and nothing authenticates requests, so
// exposing it beyond localhost is an explicit operator decision
// (DESIGN.md section 8).
type DebugServer struct {
	// Addr is the bound address (useful when the requested port was 0).
	Addr string

	ln  net.Listener
	srv *http.Server
}

// StartDebug serves reg and jnl (either may be nil) on addr. An
// address without a host part — ":9621" — binds 127.0.0.1.
func StartDebug(addr string, reg *Registry, jnl *Journal) (*DebugServer, error) {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug address %q: %w", addr, err)
	}
	if host == "" {
		host = "127.0.0.1"
	}
	ln, err := net.Listen("tcp", net.JoinHostPort(host, port))
	if err != nil {
		return nil, fmt.Errorf("obs: debug listen: %w", err)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, reg.Snapshot())
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		n := 200
		if q := r.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v < -1 {
				http.Error(w, "bad n", http.StatusBadRequest)
				return
			}
			n = v
		}
		writeJSON(w, struct {
			Dropped uint64  `json:"dropped"`
			Events  []Event `json:"events"`
		}{jnl.Dropped(), jnl.Tail(n)})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &DebugServer{
		Addr: ln.Addr().String(),
		ln:   ln,
		srv: &http.Server{
			Handler:           mux,
			ReadHeaderTimeout: 5 * time.Second,
		},
	}
	go s.srv.Serve(ln)
	return s, nil
}

// CloseTimeout bounds how long Close waits for in-flight scrapes
// before force-closing their connections.
const CloseTimeout = 2 * time.Second

// Close stops the listener gracefully: new connections are refused
// immediately, but in-flight /metrics and /trace scrapes are given
// CloseTimeout to finish (an abrupt srv.Close would truncate a scrape
// mid-body, handing the collector a corrupt JSON document). If the
// timeout expires, remaining connections are force-closed.
func (s *DebugServer) Close() error {
	if s == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), CloseTimeout)
	defer cancel()
	if err := s.srv.Shutdown(ctx); err != nil {
		// Stragglers (or a hung peer) outlived the grace period; cut
		// them off rather than hang the caller.
		return s.srv.Close()
	}
	return nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
