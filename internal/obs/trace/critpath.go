package trace

import (
	"fmt"
	"sort"
)

// Critical-path attribution: every nanosecond of the root span is
// attributed to exactly one category, by walking the span tree and
// splitting each span's wall time between its children (the covered
// portion, attributed recursively) and itself (the uncovered portion,
// attributed to the span's own category).
//
// Overlapping children — concurrent work under one parent — are swept
// in start order and each child is attributed only its exclusive
// segment, so concurrency cannot inflate the sum: the attribution of a
// span always totals its (clamped) duration, and the category sums
// always reconcile exactly with the root span's duration. Spans from
// other processes are clamped into their parent's window, so residual
// clock skew cannot produce negative or inflated attributions.

// Categories, in report order.
const (
	CatRouter    = "router"      // gateway routing: ring lookup, singleflight join
	CatQueue     = "queue-wait"  // admission queue (serve)
	CatCache     = "cache"       // cache lookup / singleflight wait
	CatDispatch  = "dispatch"    // engine + cluster scheduling overhead
	CatComm      = "comm"        // wire time, row fetches, slave-side queueing
	CatKernel    = "kernel"      // alignment kernels + tracebacks
	CatSpecWaste = "spec-waste"  // kernels computed against a stale replica
	CatStall     = "stall"       // straggler stall before re-dispatch won
	CatServer    = "server"      // HTTP handling around the pipeline
	CatOther     = "other"       // anything unclassified
)

// categoryOrder fixes the report ordering.
var categoryOrder = []string{
	CatRouter, CatQueue, CatCache, CatDispatch, CatComm, CatKernel,
	CatSpecWaste, CatStall, CatServer, CatOther,
}

// Category maps a span name to its breakdown category. The self-time of
// a span is attributed here; its children are attributed on their own.
func Category(name string) string {
	switch name {
	case "request":
		return CatServer
	case "router.route":
		// Router self-time: ring lookup, singleflight bookkeeping,
		// response fan-in. The upstream HTTP hop nests inside it.
		return CatRouter
	case "router.upstream":
		// Wire time router -> shard; the shard's own "request" span
		// (joined via traceparent) nests inside and claims its share.
		return CatComm
	case "queue.wait":
		return CatQueue
	case "cache.lookup", "cache.wait":
		return CatCache
	case "engine", "cluster.run":
		return CatDispatch
	case "cluster.dispatch", "slave.job", "slave.row_fetch":
		return CatComm
	case "slave.kernel", "engine.accept", "parallel.worker":
		return CatKernel
	case "slave.kernel.wasted":
		return CatSpecWaste
	case "cluster.stall":
		return CatStall
	}
	return CatOther
}

// Entry is one category's share of the root span's wall time.
type Entry struct {
	Category string  `json:"category"`
	NS       int64   `json:"ns"`
	Frac     float64 `json:"frac"` // of the root duration
}

// Report is the critical-path breakdown of one trace.
type Report struct {
	RootName string  `json:"root"`
	RootNS   int64   `json:"root_ns"` // the root span's duration
	SumNS    int64   `json:"sum_ns"`  // sum of all entries (== RootNS by construction)
	Entries  []Entry `json:"entries"`
	// Orphans counts spans not reachable from the chosen root (other
	// roots, or spans whose parent was dropped by the buffer bound);
	// their time is not attributed.
	Orphans int `json:"orphans,omitempty"`
}

// cpNode is the analyzer's tree node (raw span times, unlike Node).
type cpNode struct {
	sp       Span
	children []*cpNode
}

// AnalyzeCriticalPath attributes the root span's wall time across
// categories. The root is the longest span that has no parent in the
// batch (for a served request, the "request" span).
func AnalyzeCriticalPath(spans []Span) (*Report, error) {
	if len(spans) == 0 {
		return nil, fmt.Errorf("trace: no spans to analyze")
	}
	nodes := make(map[SpanID]*cpNode, len(spans))
	all := make([]*cpNode, 0, len(spans))
	for _, sp := range spans {
		n := &cpNode{sp: sp}
		all = append(all, n)
		if !sp.ID.IsZero() {
			nodes[sp.ID] = n
		}
	}
	var roots []*cpNode
	for _, n := range all {
		if parent := nodes[n.sp.Parent]; parent != nil && parent != n {
			parent.children = append(parent.children, n)
		} else {
			roots = append(roots, n)
		}
	}
	root := roots[0]
	for _, n := range roots[1:] {
		if n.sp.Dur > root.sp.Dur {
			root = n
		}
	}

	sums := map[string]int64{}
	attribute(root, root.sp.Start, root.sp.End(), sums)

	rep := &Report{
		RootName: root.sp.Name,
		RootNS:   root.sp.Dur,
		Orphans:  countOrphans(roots, root),
	}
	for _, cat := range categoryOrder {
		ns := sums[cat]
		if ns == 0 {
			continue
		}
		e := Entry{Category: cat, NS: ns}
		if rep.RootNS > 0 {
			e.Frac = float64(ns) / float64(rep.RootNS)
		}
		rep.Entries = append(rep.Entries, e)
		rep.SumNS += ns
	}
	return rep, nil
}

// attribute splits node's clamped window [lo, hi) between its children
// (exclusive segments, swept in start order) and its own category, and
// returns the total attributed (== hi-lo after clamping).
func attribute(n *cpNode, lo, hi int64, sums map[string]int64) int64 {
	start := n.sp.Start
	if start < lo {
		start = lo
	}
	end := n.sp.End()
	if end > hi {
		end = hi
	}
	if end <= start {
		return 0
	}
	sort.SliceStable(n.children, func(i, j int) bool {
		return n.children[i].sp.Start < n.children[j].sp.Start
	})
	cursor := start
	var covered int64
	for _, c := range n.children {
		cs := c.sp.Start
		if cs < cursor {
			cs = cursor
		}
		ce := c.sp.End()
		if ce > end {
			ce = end
		}
		if ce <= cs {
			continue // fully shadowed by an earlier sibling (or skewed out)
		}
		covered += attribute(c, cs, ce, sums)
		cursor = ce
	}
	sums[Category(n.sp.Name)] += (end - start) - covered
	return end - start
}

// countOrphans counts spans unreachable from root.
func countOrphans(roots []*cpNode, root *cpNode) int {
	n := 0
	for _, r := range roots {
		if r != root {
			n += 1 + countDesc(r)
		}
	}
	return n
}

func countDesc(n *cpNode) int {
	c := 0
	for _, ch := range n.children {
		c += 1 + countDesc(ch)
	}
	return c
}
