package trace

import (
	"encoding/binary"
	"fmt"
)

// Stable binary encoding for span batches, alongside the OBS1 snapshot
// and OBJ1 journal codecs of package obs. Cluster slaves ship their
// per-job spans back to the master in this format.
//
// Wire format (little-endian):
//
//	magic "OBT1"
//	u32 nSpans | (trace [16]byte, id [8]byte, parent [8]byte,
//	              i32 rank, i64 start, i64 dur, i64 arg, str name)*
//
// Decoders bound every length against the remaining input so hostile
// frames cannot force large allocations.

var spanMagic = [4]byte{'O', 'B', 'T', '1'}

// maxSpanName bounds one span name; maxSpans bounds one batch.
const (
	maxSpanName = 1 << 10
	maxSpans    = 1 << 20
)

// minSpanBytes is the encoded size of a span with an empty name.
const minSpanBytes = 16 + 8 + 8 + 4 + 8 + 8 + 8 + 4

// EncodeSpans renders spans in the stable binary format.
func EncodeSpans(spans []Span) []byte {
	b := append([]byte(nil), spanMagic[:]...)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(spans)))
	for _, sp := range spans {
		b = append(b, sp.Trace[:]...)
		b = append(b, sp.ID[:]...)
		b = append(b, sp.Parent[:]...)
		b = binary.LittleEndian.AppendUint32(b, uint32(sp.Rank))
		b = binary.LittleEndian.AppendUint64(b, uint64(sp.Start))
		b = binary.LittleEndian.AppendUint64(b, uint64(sp.Dur))
		b = binary.LittleEndian.AppendUint64(b, uint64(sp.Arg))
		b = binary.LittleEndian.AppendUint32(b, uint32(len(sp.Name)))
		b = append(b, sp.Name...)
	}
	return b
}

// decReader decodes the wire format with sticky errors and bounds
// checks.
type decReader struct {
	b   []byte
	off int
	err error
}

func (r *decReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("trace: "+format, args...)
	}
}

func (r *decReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.b) {
		r.fail("truncated input at offset %d", r.off)
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *decReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *decReader) i64() int64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(b))
}

// DecodeSpans parses the stable binary span-batch format.
func DecodeSpans(b []byte) ([]Span, error) {
	r := &decReader{b: b}
	if len(b) < 4 || [4]byte(b[:4]) != spanMagic {
		return nil, fmt.Errorf("trace: bad magic")
	}
	r.off = 4
	n := int(r.u32())
	if n > maxSpans || n*minSpanBytes > len(b)-r.off {
		return nil, fmt.Errorf("trace: span count %d exceeds input", n)
	}
	spans := make([]Span, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		var sp Span
		copy(sp.Trace[:], r.take(16))
		copy(sp.ID[:], r.take(8))
		copy(sp.Parent[:], r.take(8))
		sp.Rank = int32(r.u32())
		sp.Start = r.i64()
		sp.Dur = r.i64()
		sp.Arg = r.i64()
		nameLen := int(r.u32())
		if r.err == nil && (nameLen > maxSpanName || r.off+nameLen > len(r.b)) {
			r.fail("name length %d exceeds input", nameLen)
		}
		sp.Name = string(r.take(nameLen))
		if r.err == nil {
			spans = append(spans, sp)
		}
	}
	if r.err == nil && r.off != len(b) {
		r.fail("%d trailing bytes", len(b)-r.off)
	}
	return spans, r.err
}
