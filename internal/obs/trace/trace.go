// Package trace is the distributed request-tracing layer: spans with
// trace/parent links, a bounded per-trace buffer, W3C-style traceparent
// propagation, a stable binary codec (OBT1, alongside the OBS1/OBJ1
// codecs of package obs), Chrome trace_event export, and a
// critical-path analyzer over the span DAG of a finished request.
//
// The design follows the same rules as package obs: every type is safe
// on a nil receiver, so tracing can be threaded through hot paths as
// optional pointers — a request that carries no Recorder costs one nil
// check per instrumentation point.
//
// Clock model: every span's Start is nanoseconds on the owning
// Collector's monotonic timeline (ns since the collector was created).
// Spans recorded on another process (cluster slaves) arrive with times
// on that process's local timeline and are re-based by the receiver
// using the link round-trip time before being added — see package
// cluster. The analyzer additionally clamps children into their
// parents, so residual skew cannot produce negative attributions.
package trace

import (
	"context"
	"encoding/hex"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID identifies one end-to-end request (W3C trace-id: 16 bytes).
type TraceID [16]byte

// SpanID identifies one span within a trace (W3C parent-id: 8 bytes).
type SpanID [8]byte

// IsZero reports whether the ID is the all-zero (invalid) value.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the ID is the all-zero (absent) value.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the ID as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String renders the ID as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// NewTraceID returns a random non-zero trace ID.
func NewTraceID() TraceID {
	var t TraceID
	for t.IsZero() {
		u, v := rand.Uint64(), rand.Uint64()
		for i := 0; i < 8; i++ {
			t[i] = byte(u >> (8 * i))
			t[8+i] = byte(v >> (8 * i))
		}
	}
	return t
}

// NewSpanID returns a random non-zero span ID.
func NewSpanID() SpanID {
	var s SpanID
	for s.IsZero() {
		u := rand.Uint64()
		for i := 0; i < 8; i++ {
			s[i] = byte(u >> (8 * i))
		}
	}
	return s
}

// ParseTraceID parses 32 hex digits.
func ParseTraceID(s string) (TraceID, bool) {
	var t TraceID
	if len(s) != 32 {
		return t, false
	}
	if _, err := hex.Decode(t[:], []byte(s)); err != nil || t.IsZero() {
		return TraceID{}, false
	}
	return t, true
}

// ParseSpanID parses 16 hex digits.
func ParseSpanID(s string) (SpanID, bool) {
	var id SpanID
	if len(s) != 16 {
		return id, false
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil || id.IsZero() {
		return SpanID{}, false
	}
	return id, true
}

// SpanContext is the propagated identity of a request: which trace it
// belongs to and which span is the current parent.
type SpanContext struct {
	Trace TraceID
	Span  SpanID
}

// TraceParent renders the context as a W3C traceparent header value
// (version 00, sampled flag set).
func (sc SpanContext) TraceParent() string {
	return fmt.Sprintf("00-%s-%s-01", sc.Trace, sc.Span)
}

// ParseTraceParent parses a W3C traceparent header value
// ("00-<32 hex>-<16 hex>-<2 hex>"). Unknown versions are accepted as
// long as the field layout matches, per the spec's forward-compat rule.
func ParseTraceParent(s string) (SpanContext, bool) {
	var sc SpanContext
	if len(s) != 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return sc, false
	}
	if s[0] == 'f' && s[1] == 'f' { // version 0xff is forbidden
		return sc, false
	}
	t, ok := ParseTraceID(s[3:35])
	if !ok {
		return sc, false
	}
	id, ok := ParseSpanID(s[36:52])
	if !ok {
		return sc, false
	}
	sc.Trace, sc.Span = t, id
	return sc, true
}

// Span is one completed operation of a trace. Times are nanoseconds on
// the owning collector's monotonic timeline.
type Span struct {
	Trace  TraceID
	ID     SpanID
	Parent SpanID // zero for a root span
	Name   string
	Rank   int32 // process identity: -1 server/local, 0 master, >0 slave
	Start  int64 // ns since the collector epoch
	Dur    int64 // ns
	Arg    int64 // name-specific (task R, queue depth, ...)
}

// End returns the span's end time (Start + Dur).
func (s Span) End() int64 { return s.Start + s.Dur }

// DefaultMaxTraces and DefaultSpansPerTrace are the Collector bounds
// selected by zero configuration values.
const (
	DefaultMaxTraces     = 256
	DefaultSpansPerTrace = 4096
)

// Collector stores the spans of recently finished (or in-flight)
// traces, bounded two ways: at most maxTraces retained traces (oldest
// evicted first) and at most spansPerTrace spans per trace (further
// spans are dropped and counted). All methods are nil-safe.
type Collector struct {
	epoch time.Time
	drops atomic.Uint64 // spans dropped across every trace, ever

	mu            sync.Mutex
	maxTraces     int
	spansPerTrace int
	traces        map[TraceID]*traceBuf
	order         []TraceID // creation order, for eviction
}

// traceBuf is one trace's bounded span buffer.
type traceBuf struct {
	mu      sync.Mutex
	spans   []Span
	dropped uint64
	limit   int
}

// NewCollector returns a collector retaining up to maxTraces traces of
// up to spansPerTrace spans each (defaults for values <= 0).
func NewCollector(maxTraces, spansPerTrace int) *Collector {
	if maxTraces <= 0 {
		maxTraces = DefaultMaxTraces
	}
	if spansPerTrace <= 0 {
		spansPerTrace = DefaultSpansPerTrace
	}
	return &Collector{
		epoch:         time.Now(),
		maxTraces:     maxTraces,
		spansPerTrace: spansPerTrace,
		traces:        make(map[TraceID]*traceBuf),
	}
}

// Now returns the current time on the collector's monotonic timeline
// (0 for nil).
func (c *Collector) Now() int64 {
	if c == nil {
		return 0
	}
	return time.Since(c.epoch).Nanoseconds()
}

// Rec returns a Recorder bound to trace id, creating the trace's buffer
// if needed (and evicting the oldest trace when the collector is full).
// A nil collector or a zero id returns a nil Recorder, which records
// nothing.
func (c *Collector) Rec(id TraceID) *Recorder {
	if c == nil || id.IsZero() {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	tb := c.traces[id]
	if tb == nil {
		for len(c.order) >= c.maxTraces {
			delete(c.traces, c.order[0])
			c.order = c.order[1:]
		}
		tb = &traceBuf{limit: c.spansPerTrace}
		c.traces[id] = tb
		c.order = append(c.order, id)
	}
	return &Recorder{c: c, id: id, buf: tb}
}

// Get returns a copy of the trace's spans and its drop count; ok is
// false when the trace is unknown (or the collector nil).
func (c *Collector) Get(id TraceID) (spans []Span, dropped uint64, ok bool) {
	if c == nil {
		return nil, 0, false
	}
	c.mu.Lock()
	tb := c.traces[id]
	c.mu.Unlock()
	if tb == nil {
		return nil, 0, false
	}
	tb.mu.Lock()
	spans = append([]Span(nil), tb.spans...)
	dropped = tb.dropped
	tb.mu.Unlock()
	return spans, dropped, true
}

// DroppedTotal returns the number of spans dropped by per-trace buffer
// bounds across the collector's lifetime (0 for nil). Unlike the
// per-trace count returned by Get, this total survives trace eviction,
// so the trace/spans_dropped metric never undercounts.
func (c *Collector) DroppedTotal() uint64 {
	if c == nil {
		return 0
	}
	return c.drops.Load()
}

// Len returns the number of retained traces.
func (c *Collector) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.traces)
}

// Recorder records spans into one trace's buffer. All methods are safe
// on a nil receiver (they record nothing), so instrumented code never
// branches on "is tracing on".
type Recorder struct {
	c   *Collector
	id  TraceID
	buf *traceBuf
}

// TraceID returns the bound trace's ID (zero for nil).
func (r *Recorder) TraceID() TraceID {
	if r == nil {
		return TraceID{}
	}
	return r.id
}

// Now returns the current time on the collector timeline (0 for nil).
func (r *Recorder) Now() int64 {
	if r == nil {
		return 0
	}
	return r.c.Now()
}

// Add records a fully built span, stamping its trace ID. Used for spans
// shipped from another process after re-basing their times.
func (r *Recorder) Add(sp Span) {
	if r == nil {
		return
	}
	sp.Trace = r.id
	r.buf.mu.Lock()
	kept := len(r.buf.spans) < r.buf.limit
	if kept {
		r.buf.spans = append(r.buf.spans, sp)
	} else {
		r.buf.dropped++
	}
	r.buf.mu.Unlock()
	if !kept {
		r.c.drops.Add(1)
	}
}

// Start opens a span under parent (zero parent = root) and returns the
// live handle. The span is recorded when End is called.
func (r *Recorder) Start(parent SpanID, name string) *Active {
	if r == nil {
		return nil
	}
	return &Active{
		r:  r,
		sp: Span{ID: NewSpanID(), Parent: parent, Name: name, Rank: -1, Start: r.Now()},
	}
}

// Active is an open span. Not safe for concurrent mutation. All methods
// tolerate a nil receiver, and End is idempotent (only the first call
// records).
type Active struct {
	r    *Recorder
	sp   Span
	done bool
}

// ID returns the span's ID (zero for nil), for parenting children.
func (a *Active) ID() SpanID {
	if a == nil {
		return SpanID{}
	}
	return a.sp.ID
}

// SetRank tags the span with a process rank.
func (a *Active) SetRank(rank int32) {
	if a != nil {
		a.sp.Rank = rank
	}
}

// SetName renames the span (e.g. when the outcome determines the kind).
func (a *Active) SetName(name string) {
	if a != nil {
		a.sp.Name = name
	}
}

// SetArg attaches the name-specific argument.
func (a *Active) SetArg(arg int64) {
	if a != nil {
		a.sp.Arg = arg
	}
}

// End closes the span and records it. Calls after the first are no-ops.
func (a *Active) End() {
	if a == nil || a.done {
		return
	}
	a.done = true
	a.sp.Dur = a.r.Now() - a.sp.Start
	a.r.Add(a.sp)
}

// ctxKey is the context key for SpanContext propagation.
type ctxKey struct{}

// ContextWith returns ctx carrying sc.
func ContextWith(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, ctxKey{}, sc)
}

// FromContext extracts the propagated SpanContext, if any.
func FromContext(ctx context.Context) (SpanContext, bool) {
	sc, ok := ctx.Value(ctxKey{}).(SpanContext)
	return sc, ok
}
