package trace

import (
	"bytes"
	"testing"
)

// FuzzSpanCodec drives DecodeSpans with arbitrary bytes: it must never
// panic or over-allocate, and anything it accepts must re-encode to the
// exact input (the OBT1 format has one canonical encoding, so
// decode/encode is the identity on valid frames).
func FuzzSpanCodec(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte("OBT1"))
	f.Add(EncodeSpans(nil))
	f.Add(EncodeSpans([]Span{{
		Trace: TraceID{1}, ID: SpanID{2}, Parent: SpanID{3},
		Name: "slave.kernel", Rank: 2, Start: 123, Dur: 456, Arg: -7,
	}}))
	f.Add(EncodeSpans([]Span{
		{ID: SpanID{9}, Name: "", Start: -1, Dur: 1 << 50},
		{ID: SpanID{8}, Name: string(make([]byte, maxSpanName)), Rank: -1},
	}))

	f.Fuzz(func(t *testing.T, data []byte) {
		spans, err := DecodeSpans(data)
		if err != nil {
			return
		}
		re := EncodeSpans(spans)
		if !bytes.Equal(re, data) {
			t.Fatalf("decode/encode not identity:\n in  %x\n out %x", data, re)
		}
		// And a second decode of the re-encoding must agree.
		again, err := DecodeSpans(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(again) != len(spans) {
			t.Fatalf("re-decode length %d != %d", len(again), len(spans))
		}
		for i := range spans {
			if again[i] != spans[i] {
				t.Fatalf("span %d changed across round-trip", i)
			}
		}
	})
}
