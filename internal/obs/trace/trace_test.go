package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

func TestTraceParentRoundTrip(t *testing.T) {
	sc := SpanContext{Trace: NewTraceID(), Span: NewSpanID()}
	hdr := sc.TraceParent()
	if len(hdr) != 55 {
		t.Fatalf("traceparent %q has length %d, want 55", hdr, len(hdr))
	}
	got, ok := ParseTraceParent(hdr)
	if !ok {
		t.Fatalf("round-trip rejected %q", hdr)
	}
	if got != sc {
		t.Fatalf("round-trip = %+v, want %+v", got, sc)
	}
}

func TestParseTraceParentRejects(t *testing.T) {
	valid := SpanContext{Trace: NewTraceID(), Span: NewSpanID()}.TraceParent()
	bad := []string{
		"",
		"00",
		valid[:54],                      // truncated
		valid + "0",                     // too long
		"ff" + valid[2:],                // forbidden version
		"00-" + strings.Repeat("0", 32) + valid[35:], // zero trace id
		valid[:36] + strings.Repeat("0", 16) + valid[52:], // zero span id
		strings.Replace(valid, "-", "_", 1),               // bad separator
		valid[:3] + "zz" + valid[5:],                      // non-hex
	}
	for _, s := range bad {
		if _, ok := ParseTraceParent(s); ok {
			t.Errorf("ParseTraceParent(%q) accepted, want reject", s)
		}
	}
	// Unknown (non-ff) versions are accepted per the forward-compat rule.
	if _, ok := ParseTraceParent("01" + valid[2:]); !ok {
		t.Error("version 01 rejected, want forward-compat accept")
	}
}

func TestParseIDs(t *testing.T) {
	tid := NewTraceID()
	if got, ok := ParseTraceID(tid.String()); !ok || got != tid {
		t.Errorf("trace id round-trip = %v/%v", got, ok)
	}
	sid := NewSpanID()
	if got, ok := ParseSpanID(sid.String()); !ok || got != sid {
		t.Errorf("span id round-trip = %v/%v", got, ok)
	}
	if _, ok := ParseTraceID(strings.Repeat("0", 32)); ok {
		t.Error("zero trace id accepted")
	}
	if _, ok := ParseSpanID("123"); ok {
		t.Error("short span id accepted")
	}
}

func TestNilSafety(t *testing.T) {
	// Every call below must be a no-op rather than a panic: untraced
	// requests run the exact same instrumented code with nil handles.
	var c *Collector
	if c.Now() != 0 || c.Len() != 0 {
		t.Error("nil collector not inert")
	}
	if _, _, ok := c.Get(NewTraceID()); ok {
		t.Error("nil collector Get ok")
	}
	r := c.Rec(NewTraceID())
	if r != nil {
		t.Fatal("nil collector returned a live recorder")
	}
	if !r.TraceID().IsZero() || r.Now() != 0 {
		t.Error("nil recorder not inert")
	}
	r.Add(Span{Name: "x"})
	a := r.Start(SpanID{}, "x")
	if a != nil {
		t.Fatal("nil recorder returned a live span")
	}
	if !a.ID().IsZero() {
		t.Error("nil active ID nonzero")
	}
	a.SetRank(3)
	a.SetName("y")
	a.SetArg(7)
	a.End()
	a.End()

	// A zero trace ID is equally inert on a live collector.
	if NewCollector(0, 0).Rec(TraceID{}) != nil {
		t.Error("zero trace id returned a live recorder")
	}
}

func TestCollectorSpanBound(t *testing.T) {
	col := NewCollector(4, 3)
	rec := col.Rec(NewTraceID())
	for i := 0; i < 5; i++ {
		rec.Add(Span{ID: NewSpanID(), Name: "s"})
	}
	spans, dropped, ok := col.Get(rec.TraceID())
	if !ok {
		t.Fatal("trace missing")
	}
	if len(spans) != 3 {
		t.Errorf("retained %d spans, want 3", len(spans))
	}
	if dropped != 2 {
		t.Errorf("dropped = %d, want 2", dropped)
	}
	for _, sp := range spans {
		if sp.Trace != rec.TraceID() {
			t.Errorf("span not stamped with the trace id: %+v", sp)
		}
	}
	// The collector-wide total matches, and — unlike the per-trace
	// count — survives eviction of the trace that dropped.
	if got := col.DroppedTotal(); got != 2 {
		t.Errorf("DroppedTotal = %d, want 2", got)
	}
	rec2 := col.Rec(NewTraceID())
	for i := 0; i < 4; i++ {
		rec2.Add(Span{ID: NewSpanID(), Name: "s"})
	}
	if got := col.DroppedTotal(); got != 3 {
		t.Errorf("DroppedTotal after second trace = %d, want 3", got)
	}
	if (*Collector)(nil).DroppedTotal() != 0 {
		t.Error("nil collector DroppedTotal != 0")
	}
}

func TestCollectorTraceEviction(t *testing.T) {
	col := NewCollector(2, 8)
	ids := []TraceID{NewTraceID(), NewTraceID(), NewTraceID()}
	for _, id := range ids {
		col.Rec(id).Add(Span{ID: NewSpanID(), Name: "s"})
	}
	if col.Len() != 2 {
		t.Fatalf("retained %d traces, want 2", col.Len())
	}
	if _, _, ok := col.Get(ids[0]); ok {
		t.Error("oldest trace survived eviction")
	}
	for _, id := range ids[1:] {
		if _, _, ok := col.Get(id); !ok {
			t.Errorf("trace %s evicted, want retained", id)
		}
	}
	// Re-requesting a live trace must not evict anything.
	col.Rec(ids[1])
	if _, _, ok := col.Get(ids[2]); !ok {
		t.Error("Rec of an existing trace evicted a sibling")
	}
}

func TestActiveLifecycle(t *testing.T) {
	col := NewCollector(0, 0)
	rec := col.Rec(NewTraceID())
	root := rec.Start(SpanID{}, "request")
	root.SetRank(-1)
	root.SetArg(42)
	child := rec.Start(root.ID(), "engine")
	child.SetName("engine.renamed")
	child.End()
	child.End() // idempotent: only the first call records
	root.End()

	spans, _, _ := col.Get(rec.TraceID())
	if len(spans) != 2 {
		t.Fatalf("%d spans recorded, want 2 (End must be idempotent)", len(spans))
	}
	byName := map[string]Span{}
	for _, sp := range spans {
		byName[sp.Name] = sp
	}
	r, ok := byName["request"]
	if !ok || !r.Parent.IsZero() || r.Rank != -1 || r.Arg != 42 {
		t.Errorf("root span wrong: %+v", r)
	}
	c, ok := byName["engine.renamed"]
	if !ok || c.Parent != r.ID {
		t.Errorf("child span wrong: %+v", c)
	}
	if c.Dur < 0 || r.Dur < c.Dur {
		t.Errorf("durations inconsistent: root %d, child %d", r.Dur, c.Dur)
	}
}

func TestContextPropagation(t *testing.T) {
	if _, ok := FromContext(context.Background()); ok {
		t.Error("empty context carried a span context")
	}
	sc := SpanContext{Trace: NewTraceID(), Span: NewSpanID()}
	got, ok := FromContext(ContextWith(context.Background(), sc))
	if !ok || got != sc {
		t.Errorf("context round-trip = %+v/%v", got, ok)
	}
}

func TestSpanCodecRoundTrip(t *testing.T) {
	tid := NewTraceID()
	in := []Span{
		{Trace: tid, ID: NewSpanID(), Name: "slave.job", Rank: 2, Start: 100, Dur: 50, Arg: 7},
		{Trace: tid, ID: NewSpanID(), Parent: NewSpanID(), Name: "slave.kernel", Rank: 2, Start: -5, Dur: 1 << 40},
		{Trace: tid, ID: NewSpanID(), Name: "", Rank: -1, Start: 0, Dur: 0, Arg: -9},
	}
	out, err := DecodeSpans(EncodeSpans(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d spans, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("span %d: %+v != %+v", i, out[i], in[i])
		}
	}
	// Empty batches round-trip too (an untraced job ships nothing, but
	// a traced job with zero children is legal).
	if out, err := DecodeSpans(EncodeSpans(nil)); err != nil || len(out) != 0 {
		t.Errorf("empty batch: %v, %v", out, err)
	}
}

func TestSpanCodecRejects(t *testing.T) {
	good := EncodeSpans([]Span{{ID: NewSpanID(), Name: "x", Start: 1, Dur: 2}})
	bad := [][]byte{
		nil,
		[]byte("OBT"),
		[]byte("OBXX\x00\x00\x00\x00"),
		good[:len(good)-1],          // truncated name
		append(good, 0),             // trailing byte
		append([]byte("OBT1"), 0xff, 0xff, 0xff, 0xff), // absurd count
	}
	for i, b := range bad {
		if _, err := DecodeSpans(b); err == nil {
			t.Errorf("case %d: decode accepted malformed input", i)
		}
	}
}

func TestBuildTreeRebasesAndOrders(t *testing.T) {
	rootID, aID, bID := NewSpanID(), NewSpanID(), NewSpanID()
	spans := []Span{
		{ID: bID, Parent: rootID, Name: "b", Start: 1500, Dur: 100},
		{ID: rootID, Name: "root", Start: 1000, Dur: 900},
		{ID: aID, Parent: rootID, Name: "a", Start: 1100, Dur: 200},
		{ID: NewSpanID(), Parent: NewSpanID(), Name: "orphan", Start: 1200, Dur: 10},
	}
	roots := BuildTree(spans)
	if len(roots) != 2 {
		t.Fatalf("%d roots, want 2 (root + orphan)", len(roots))
	}
	if roots[0].Name != "root" || roots[0].StartNS != 0 {
		t.Errorf("first root = %q start %d, want root at 0", roots[0].Name, roots[0].StartNS)
	}
	kids := roots[0].Children
	if len(kids) != 2 || kids[0].Name != "a" || kids[1].Name != "b" {
		t.Fatalf("children wrong: %+v", kids)
	}
	if kids[0].StartNS != 100 || kids[1].StartNS != 500 {
		t.Errorf("children not rebased: %d, %d", kids[0].StartNS, kids[1].StartNS)
	}
}

func TestCriticalPathReconciles(t *testing.T) {
	// Root 0..1000; queue 0..200; engine 200..900 with two overlapping
	// kernel children (concurrency must not inflate the sum) and one
	// child skewed past the engine's end (must be clamped).
	rootID, qID, eID := NewSpanID(), NewSpanID(), NewSpanID()
	spans := []Span{
		{ID: rootID, Name: "request", Start: 0, Dur: 1000},
		{ID: qID, Parent: rootID, Name: "queue.wait", Start: 0, Dur: 200},
		{ID: eID, Parent: rootID, Name: "engine", Start: 200, Dur: 700},
		{ID: NewSpanID(), Parent: eID, Name: "parallel.worker", Start: 250, Dur: 400},
		{ID: NewSpanID(), Parent: eID, Name: "parallel.worker", Start: 300, Dur: 400},
		{ID: NewSpanID(), Parent: eID, Name: "cluster.stall", Start: 850, Dur: 200}, // clamped to 850..900
	}
	rpt, err := AnalyzeCriticalPath(spans)
	if err != nil {
		t.Fatal(err)
	}
	if rpt.RootName != "request" || rpt.RootNS != 1000 {
		t.Fatalf("root = %q/%d", rpt.RootName, rpt.RootNS)
	}
	if rpt.SumNS != rpt.RootNS {
		t.Fatalf("sum %d != root %d: attribution must reconcile exactly", rpt.SumNS, rpt.RootNS)
	}
	got := map[string]int64{}
	for _, e := range rpt.Entries {
		got[e.Category] = e.NS
	}
	want := map[string]int64{
		CatQueue:    200, // queue.wait
		CatKernel:   450, // workers 250..650 and 650..700 exclusive
		CatStall:    50,  // stall clamped into 850..900
		CatDispatch: 200, // engine self-time: 700 - 450 - 50
		CatServer:   100, // request self-time: 900..1000
	}
	for cat, ns := range want {
		if got[cat] != ns {
			t.Errorf("%s = %d, want %d (all: %+v)", cat, got[cat], ns, got)
		}
	}
	if rpt.Orphans != 0 {
		t.Errorf("orphans = %d, want 0", rpt.Orphans)
	}
}

func TestCriticalPathPicksLongestRootAndCountsOrphans(t *testing.T) {
	spans := []Span{
		{ID: NewSpanID(), Name: "short", Start: 0, Dur: 10},
		{ID: NewSpanID(), Name: "request", Start: 0, Dur: 100},
		{ID: NewSpanID(), Parent: NewSpanID(), Name: "lost", Start: 5, Dur: 1},
	}
	rpt, err := AnalyzeCriticalPath(spans)
	if err != nil {
		t.Fatal(err)
	}
	if rpt.RootName != "request" {
		t.Errorf("root = %q, want the longest parentless span", rpt.RootName)
	}
	if rpt.Orphans != 2 {
		t.Errorf("orphans = %d, want 2", rpt.Orphans)
	}
	if _, err := AnalyzeCriticalPath(nil); err == nil {
		t.Error("empty batch accepted")
	}
}

func TestJSONRoundTripAndChrome(t *testing.T) {
	tid := NewTraceID()
	rootID := NewSpanID()
	in := []Span{
		{Trace: tid, ID: rootID, Name: "request", Rank: -1, Start: 10, Dur: 500, Arg: 12},
		{Trace: tid, ID: NewSpanID(), Parent: rootID, Name: "slave.job", Rank: 2, Start: 50, Dur: 100},
	}
	out := FromJSON(ToJSON(in))
	for i := range in {
		want := in[i]
		want.Trace = TraceID{} // the JSON form is scoped to one trace
		if out[i] != want {
			t.Errorf("span %d: %+v != %+v", i, out[i], want)
		}
	}

	var buf bytes.Buffer
	if err := WriteChrome(&buf, in); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("chrome export is not a JSON array: %v", err)
	}
	var complete, meta int
	pids := map[float64]bool{}
	for _, ev := range events {
		switch ev["ph"] {
		case "X":
			complete++
			pids[ev["pid"].(float64)] = true
		case "M":
			meta++
		}
	}
	if complete != 2 || meta != 2 {
		t.Errorf("chrome events: %d complete, %d metadata, want 2/2", complete, meta)
	}
	// rank -1 -> pid 0, rank 2 -> pid 3: viewers need non-negative pids.
	if !pids[0] || !pids[3] {
		t.Errorf("pids = %v, want {0, 3}", pids)
	}
}
