package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// SpanJSON is the stable JSON rendering of one span, used by the
// GET /trace/{id} endpoints and consumed by cmd/reprotrace.
type SpanJSON struct {
	ID      string `json:"id"`
	Parent  string `json:"parent,omitempty"`
	Name    string `json:"name"`
	Rank    int32  `json:"rank"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
	Arg     int64  `json:"arg,omitempty"`
}

// ToJSON converts spans to their JSON form.
func ToJSON(spans []Span) []SpanJSON {
	out := make([]SpanJSON, len(spans))
	for i, sp := range spans {
		out[i] = SpanJSON{
			ID: sp.ID.String(), Name: sp.Name, Rank: sp.Rank,
			StartNS: sp.Start, DurNS: sp.Dur, Arg: sp.Arg,
		}
		if !sp.Parent.IsZero() {
			out[i].Parent = sp.Parent.String()
		}
	}
	return out
}

// FromJSON converts the JSON form back to spans (IDs that fail to parse
// become zero, which the tree builder treats as orphaned-to-root).
func FromJSON(spans []SpanJSON) []Span {
	out := make([]Span, len(spans))
	for i, sj := range spans {
		sp := Span{Name: sj.Name, Rank: sj.Rank, Start: sj.StartNS, Dur: sj.DurNS, Arg: sj.Arg}
		sp.ID, _ = ParseSpanID(sj.ID)
		if sj.Parent != "" {
			sp.Parent, _ = ParseSpanID(sj.Parent)
		}
		out[i] = sp
	}
	return out
}

// Node is one span in the assembled trace tree. Start is relative to
// the earliest root span, so a tree is readable without knowing the
// collector epoch.
type Node struct {
	ID       string  `json:"id"`
	Name     string  `json:"name"`
	Rank     int32   `json:"rank"`
	StartNS  int64   `json:"start_ns"`
	DurNS    int64   `json:"dur_ns"`
	Arg      int64   `json:"arg,omitempty"`
	Children []*Node `json:"children,omitempty"`
}

// BuildTree links spans into parent/child trees. Spans whose parent is
// absent from the batch (including propagated parents from an upstream
// process) become roots. Roots and children are ordered by start time.
func BuildTree(spans []Span) []*Node {
	nodes := make(map[SpanID]*Node, len(spans))
	order := make([]*Node, 0, len(spans))
	starts := make(map[*Node]int64, len(spans))
	for _, sp := range spans {
		n := &Node{ID: sp.ID.String(), Name: sp.Name, Rank: sp.Rank,
			StartNS: sp.Start, DurNS: sp.Dur, Arg: sp.Arg}
		if !sp.ID.IsZero() {
			nodes[sp.ID] = n
		}
		order = append(order, n)
		starts[n] = sp.Start
	}
	var roots []*Node
	for i, sp := range spans {
		n := order[i]
		if parent := nodes[sp.Parent]; parent != nil && parent != n {
			parent.Children = append(parent.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	var base int64
	for i, n := range roots {
		if i == 0 || starts[n] < base {
			base = starts[n]
		}
	}
	var rebase func(ns []*Node)
	rebase = func(ns []*Node) {
		sort.SliceStable(ns, func(i, j int) bool { return ns[i].StartNS < ns[j].StartNS })
		for _, n := range ns {
			n.StartNS -= base
			rebase(n.Children)
		}
	}
	rebase(roots)
	return roots
}

// chromeEvent is one Chrome trace_event entry ("X" = complete event,
// "M" = metadata). Perfetto and chrome://tracing open arrays of these
// directly.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`  // microseconds
	Dur  float64        `json:"dur"` // microseconds
	PID  int64          `json:"pid"`
	TID  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChrome renders spans as a Chrome trace_event JSON array that
// opens directly in Perfetto (ui.perfetto.dev) or chrome://tracing.
// Each rank becomes a "process" row; metadata events name the rows.
func WriteChrome(w io.Writer, spans []Span) error {
	events := make([]chromeEvent, 0, len(spans)+4)
	ranks := map[int32]bool{}
	for _, sp := range spans {
		// pid must be non-negative for the viewers; shift rank by one so
		// the server (-1) lands on pid 0, master on 1, slave N on N+1.
		pid := int64(sp.Rank) + 1
		events = append(events, chromeEvent{
			Name: sp.Name, Cat: "repro", Ph: "X",
			TS: float64(sp.Start) / 1e3, Dur: float64(sp.Dur) / 1e3,
			PID: pid, TID: 1,
			Args: map[string]any{"arg": sp.Arg, "span": sp.ID.String()},
		})
		if !ranks[sp.Rank] {
			ranks[sp.Rank] = true
			label := fmt.Sprintf("slave rank %d", sp.Rank)
			switch {
			case sp.Rank < 0:
				label = "server"
			case sp.Rank == 0:
				label = "cluster master"
			}
			events = append(events, chromeEvent{
				Name: "process_name", Ph: "M", PID: pid, TID: 1,
				Args: map[string]any{"name": label},
			})
		}
	}
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].Ph != events[j].Ph {
			return events[i].Ph == "M"
		}
		return events[i].TS < events[j].TS
	})
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}
