package obs

import (
	"reflect"
	"testing"
	"time"
)

func sampleSnapshot() Snapshot {
	reg := NewRegistry()
	reg.Counter("engine/alignments").Add(42)
	reg.Counter("cluster/dispatch/total").Add(7)
	reg.Gauge("cluster/live_slaves").Set(3)
	reg.Gauge("mpi/hb_rtt_ns/rank1").Set(120_000)
	reg.Histogram("engine/align_ns").Observe(50 * time.Microsecond)
	reg.Histogram("engine/align_ns").Observe(3 * time.Millisecond)
	return reg.Snapshot()
}

func TestSnapshotCodecRoundTrip(t *testing.T) {
	want := sampleSnapshot()
	enc := want.Encode()
	got, err := DecodeSnapshot(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestSnapshotCodecStable(t *testing.T) {
	a := sampleSnapshot()
	b := sampleSnapshot()
	if string(a.Encode()) != string(b.Encode()) {
		t.Fatal("same logical snapshot encoded to different bytes")
	}
}

func TestSnapshotCodecEmpty(t *testing.T) {
	empty := NewRegistry().Snapshot()
	got, err := DecodeSnapshot(empty.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Counters)+len(got.Gauges)+len(got.Histograms) != 0 {
		t.Fatalf("empty round trip = %+v", got)
	}
}

func TestEventsCodecRoundTrip(t *testing.T) {
	want := []Event{
		{Seq: 1, At: 10, Kind: EvEnqueue, Rank: -1, R: 5, Arg: 0},
		{Seq: 2, At: 25, Kind: EvDispatch, Rank: 2, R: 5, Arg: 0},
		{Seq: 3, At: 99, Kind: EvAccept, Rank: -1, R: 5, Arg: 1234},
		{Seq: 4, At: 120, Kind: EvRankDown, Rank: 1, R: -1, Arg: 3},
		// Request sequence past 2^31: must survive the round trip
		// unwrapped (the int32 truncation regression).
		{Seq: 5, At: 130, Kind: EvServe, Rank: -1, R: 1 << 33, Arg: 42},
	}
	got, err := DecodeEvents(EncodeEvents(want))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestEventsCodecEmpty(t *testing.T) {
	got, err := DecodeEvents(EncodeEvents(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty round trip = %+v", got)
	}
}

// TestDecodeLegacyOBJ1 pins backward compatibility: journal frames
// written before R was widened to 64 bits (magic OBJ1, i32 r field)
// still decode, with R sign-extended.
func TestDecodeLegacyOBJ1(t *testing.T) {
	b := []byte("OBJ1")
	b = appendU32(b, 2) // two events
	// {Seq: 7, At: 11, Kind: EvAccept, Rank: -1, R: 5, Arg: 900}
	b = appendI64(b, 7)
	b = appendI64(b, 11)
	b = append(b, byte(EvAccept))
	b = appendU32(b, 0xFFFFFFFF)
	b = appendU32(b, 5)
	b = appendI64(b, 900)
	// {Seq: 8, At: 12, Kind: EvRankDown, Rank: 1, R: -1, Arg: 3}
	b = appendI64(b, 8)
	b = appendI64(b, 12)
	b = append(b, byte(EvRankDown))
	b = appendU32(b, 1)
	b = appendU32(b, 0xFFFFFFFF)
	b = appendI64(b, 3)

	got, err := DecodeEvents(b)
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{Seq: 7, At: 11, Kind: EvAccept, Rank: -1, R: 5, Arg: 900},
		{Seq: 8, At: 12, Kind: EvRankDown, Rank: 1, R: -1, Arg: 3},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("legacy decode mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestDecodeHostileInputs(t *testing.T) {
	valid := sampleSnapshot().Encode()
	validEvents := EncodeEvents([]Event{{Seq: 1, Kind: EvAccept, Rank: -1, R: 2, Arg: 9}})

	cases := []struct {
		name string
		b    []byte
	}{
		{"nil", nil},
		{"empty", []byte{}},
		{"short magic", []byte("OB")},
		{"wrong magic", []byte("NOPE0000")},
		{"magic only", []byte("OBS1")},
		{"truncated", valid[:len(valid)-3]},
		{"trailing garbage", append(append([]byte(nil), valid...), 0xFF)},
		{"huge count", append([]byte("OBS1"), 0xFF, 0xFF, 0xFF, 0xFF)},
	}
	for _, c := range cases {
		if _, err := DecodeSnapshot(c.b); err == nil {
			t.Errorf("DecodeSnapshot(%s): expected error", c.name)
		}
	}

	evCases := [][]byte{
		nil,
		[]byte("OBJ1"),
		append([]byte("OBJ1"), 0xFF, 0xFF, 0xFF, 0xFF),
		validEvents[:len(validEvents)-1],
		append(append([]byte(nil), validEvents...), 0x00),
		valid, // snapshot bytes fed to the journal decoder
	}
	for i, b := range evCases {
		if _, err := DecodeEvents(b); err == nil {
			t.Errorf("DecodeEvents case %d: expected error", i)
		}
	}
}

func TestDecodeHugeStringRejected(t *testing.T) {
	// A frame claiming a name longer than maxName must be rejected
	// before any allocation attempt.
	b := []byte("OBS1")
	b = appendU32(b, 1)           // one counter
	b = appendU32(b, maxName+100) // absurd name length
	if _, err := DecodeSnapshot(b); err == nil {
		t.Fatal("expected error for oversized name")
	}
}

func TestDecodeWrongBucketCount(t *testing.T) {
	b := []byte("OBS1")
	b = appendU32(b, 0) // counters
	b = appendU32(b, 0) // gauges
	b = appendU32(b, 1) // one histogram
	b = appendStr(b, "h")
	b = appendI64(b, 1) // count
	b = appendI64(b, 5) // sum
	b = appendU32(b, 3) // wrong bucket count
	for i := 0; i < 3; i++ {
		b = appendI64(b, 0)
	}
	if _, err := DecodeSnapshot(b); err == nil {
		t.Fatal("expected error for wrong bucket count")
	}
}
