package obs

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if got := g.Load(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestNilReceiversSafe(t *testing.T) {
	// Every instrument must be a no-op on a nil receiver so optional
	// telemetry pointers can thread through hot paths unchecked.
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Load() != 0 {
		t.Fatal("nil counter load")
	}
	var g *Gauge
	g.Set(3)
	g.Add(1)
	if g.Load() != 0 {
		t.Fatal("nil gauge load")
	}
	var h *Histogram
	h.Observe(time.Second)
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatal("nil histogram snapshot")
	}
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("x").Set(1)
	r.Histogram("x").Observe(time.Second)
	r.BindCounter("x", &Counter{})
	if s := r.Snapshot(); len(s.Counters) != 0 {
		t.Fatal("nil registry snapshot")
	}
	var j *Journal
	j.Record(EvAccept, 0, 0, 0)
	if j.Len() != 0 || j.Dropped() != 0 || len(j.Events()) != 0 || len(j.Tail(5)) != 0 {
		t.Fatal("nil journal")
	}
}

func TestBucketFor(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2},
		{1023, 9}, {1024, 10}, {1 << 34, 34}, {1 << 40, HistogramBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketFor(c.ns); got != c.want {
			t.Errorf("bucketFor(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
}

func TestHistogramObserveAndMean(t *testing.T) {
	var h Histogram
	for i := 0; i < 10; i++ {
		h.Observe(100 * time.Nanosecond)
	}
	s := h.Snapshot()
	if s.Count != 10 || s.Sum != 1000 {
		t.Fatalf("count=%d sum=%d, want 10/1000", s.Count, s.Sum)
	}
	if s.Buckets[bucketFor(100)] != 10 {
		t.Fatalf("bucket miscount: %+v", s.Buckets)
	}
	if s.Mean() != 100*time.Nanosecond {
		t.Fatalf("mean = %v, want 100ns", s.Mean())
	}
	if (HistogramSnapshot{}).Mean() != 0 {
		t.Fatal("empty mean should be 0")
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(10 * time.Nanosecond)
	b.Observe(1000 * time.Nanosecond)
	b.Observe(2000 * time.Nanosecond)
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(sb)
	if sa.Count != 3 || sa.Sum != 3010 {
		t.Fatalf("merged count=%d sum=%d, want 3/3010", sa.Count, sa.Sum)
	}
	var total int64
	for _, n := range sa.Buckets {
		total += n
	}
	if total != 3 {
		t.Fatalf("merged bucket total = %d, want 3", total)
	}
}

func TestRegistryGetOrCreateAndBind(t *testing.T) {
	reg := NewRegistry()
	if reg.Counter("a") != reg.Counter("a") {
		t.Fatal("Counter not idempotent")
	}
	if reg.Gauge("g") != reg.Gauge("g") {
		t.Fatal("Gauge not idempotent")
	}
	if reg.Histogram("h") != reg.Histogram("h") {
		t.Fatal("Histogram not idempotent")
	}

	// A bound metric is shared: increments through the external owner
	// are visible in registry snapshots.
	var ext Counter
	reg.BindCounter("ext", &ext)
	ext.Add(9)
	snap := reg.Snapshot()
	if snap.Counters["ext"] != 9 {
		t.Fatalf("bound counter = %d, want 9", snap.Counters["ext"])
	}
	if reg.Counter("ext") != &ext {
		t.Fatal("bound counter not returned by get-or-create")
	}
}

func TestSnapshotJSONStable(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b").Add(2)
	reg.Counter("a").Add(1)
	reg.Gauge("z").Set(-3)
	reg.Histogram("lat").Observe(50 * time.Microsecond)
	s := reg.Snapshot()
	doc, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(doc, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["a"] != 1 || back.Counters["b"] != 2 || back.Gauges["z"] != -3 {
		t.Fatalf("round-trip mismatch: %+v", back)
	}
	if back.Histograms["lat"].Count != 1 {
		t.Fatalf("histogram lost in JSON round-trip: %+v", back.Histograms)
	}
}

// TestSnapshotConcurrentConsistency hammers one registry from
// GOMAXPROCS goroutines while snapshotting continuously, asserting
// every snapshot is internally consistent: counters never regress
// between snapshots, and histograms never show a torn read in the
// observable direction (Observe writes bucket before count, Snapshot
// reads count before buckets, so sum(buckets) >= count always).
func TestSnapshotConcurrentConsistency(t *testing.T) {
	reg := NewRegistry()
	writers := runtime.GOMAXPROCS(0)
	if writers < 4 {
		writers = 4
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := reg.Counter(fmt.Sprintf("c%d", w%4))
			h := reg.Histogram("lat")
			g := reg.Gauge("depth")
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				h.Observe(time.Duration(1 + i%100000))
				g.Set(int64(i))
			}
		}(w)
	}

	deadline := time.Now().Add(200 * time.Millisecond)
	var prev Snapshot
	snaps := 0
	for time.Now().Before(deadline) {
		s := reg.Snapshot()
		snaps++
		for name, v := range s.Counters {
			if v < 0 {
				t.Fatalf("negative counter %s = %d", name, v)
			}
			if pv, ok := prev.Counters[name]; ok && v < pv {
				t.Fatalf("counter %s regressed: %d -> %d", name, pv, v)
			}
		}
		for name, hs := range s.Histograms {
			var sum int64
			for _, n := range hs.Buckets {
				if n < 0 {
					t.Fatalf("negative bucket in %s", name)
				}
				sum += n
			}
			if sum < hs.Count {
				t.Fatalf("torn histogram %s: bucket sum %d < count %d", name, sum, hs.Count)
			}
			if hs.Count > 0 && hs.Sum <= 0 {
				t.Fatalf("histogram %s count %d with sum %d", name, hs.Count, hs.Sum)
			}
			if pv, ok := prev.Histograms[name]; ok && hs.Count < pv.Count {
				t.Fatalf("histogram %s count regressed: %d -> %d", name, pv.Count, hs.Count)
			}
		}
		prev = s
	}
	close(stop)
	wg.Wait()
	if snaps == 0 {
		t.Fatal("no snapshots taken")
	}

	// Quiescent: the final snapshot must balance exactly.
	final := reg.Snapshot()
	hs := final.Histograms["lat"]
	var sum int64
	for _, n := range hs.Buckets {
		sum += n
	}
	if sum != hs.Count {
		t.Fatalf("quiescent bucket sum %d != count %d", sum, hs.Count)
	}
}

// TestRegistryConcurrentGetOrCreate races get-or-create against
// snapshots to ensure no lost registrations or duplicate instruments.
func TestRegistryConcurrentGetOrCreate(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	const names = 16
	ptrs := make([]*Counter, names)
	var mu sync.Mutex
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < names; i++ {
				c := reg.Counter(fmt.Sprintf("n%d", i))
				c.Inc()
				mu.Lock()
				if ptrs[i] == nil {
					ptrs[i] = c
				} else if ptrs[i] != c {
					mu.Unlock()
					t.Errorf("duplicate counter instance for n%d", i)
					return
				}
				mu.Unlock()
				_ = reg.Snapshot()
			}
		}()
	}
	wg.Wait()
	s := reg.Snapshot()
	var total int64
	for i := 0; i < names; i++ {
		total += s.Counters[fmt.Sprintf("n%d", i)]
	}
	if total != 8*names {
		t.Fatalf("total increments = %d, want %d", total, 8*names)
	}
}

func TestJournalRecordAndTail(t *testing.T) {
	j := NewJournal(8)
	for i := 0; i < 5; i++ {
		j.Record(EvEnqueue, -1, int64(i), 0)
	}
	evs := j.Events()
	if len(evs) != 5 {
		t.Fatalf("len = %d, want 5", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("seq[%d] = %d, want %d", i, ev.Seq, i+1)
		}
		if ev.R != int64(i) {
			t.Fatalf("r[%d] = %d", i, ev.R)
		}
		if i > 0 && ev.At < evs[i-1].At {
			t.Fatalf("timestamps not monotone: %d then %d", evs[i-1].At, ev.At)
		}
	}
	tail := j.Tail(2)
	if len(tail) != 2 || tail[0].R != 3 || tail[1].R != 4 {
		t.Fatalf("tail = %+v", tail)
	}
	if got := j.Tail(100); len(got) != 5 {
		t.Fatalf("oversized tail = %d events", len(got))
	}
	if got := j.Tail(0); len(got) != 0 {
		t.Fatalf("zero tail = %d events", len(got))
	}
}

func TestJournalRingDrops(t *testing.T) {
	j := NewJournal(4)
	for i := 0; i < 10; i++ {
		j.Record(EvAccept, 0, int64(i), int64(i))
	}
	if j.Len() != 4 {
		t.Fatalf("len = %d, want 4", j.Len())
	}
	if j.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", j.Dropped())
	}
	evs := j.Events()
	// Oldest retained event is #7 (r=6).
	for i, ev := range evs {
		if ev.R != int64(6+i) {
			t.Fatalf("ring order wrong: %+v", evs)
		}
	}
}

func TestJournalAccepts(t *testing.T) {
	j := NewJournal(0)
	j.Record(EvEnqueue, -1, 1, 0)
	j.Record(EvAccept, -1, 1, 50)
	j.Record(EvRealign, -1, 2, 40)
	j.Record(EvAccept, -1, 2, 45)
	acc := j.Accepts()
	if len(acc) != 2 || acc[0].R != 1 || acc[1].R != 2 {
		t.Fatalf("accepts = %+v", acc)
	}
}

func TestJournalConcurrentRecord(t *testing.T) {
	j := NewJournal(1 << 10)
	var wg sync.WaitGroup
	const perG, gs = 500, 8
	for w := 0; w < gs; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				j.Record(EvDispatch, int32(w), int64(i), 0)
				if i%16 == 0 {
					_ = j.Tail(8)
					_ = j.Len()
				}
			}
		}(w)
	}
	wg.Wait()
	if j.Len()+int(j.Dropped()) != perG*gs {
		t.Fatalf("len %d + dropped %d != %d", j.Len(), j.Dropped(), perG*gs)
	}
	evs := j.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("seq not strictly increasing at %d: %d then %d", i, evs[i-1].Seq, evs[i].Seq)
		}
		if evs[i].At < evs[i-1].At {
			t.Fatalf("timestamps not monotone at %d", i)
		}
	}
}

func TestEventKindString(t *testing.T) {
	kinds := []EventKind{EvEnqueue, EvRealign, EvAccept, EvShadowReject,
		EvSpecWaste, EvDispatch, EvRedispatch, EvDuplicate, EvRankDown, EvRankJoin}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("kind %d has empty or duplicate name %q", k, s)
		}
		seen[s] = true
	}
	if EventKind(200).String() == "" {
		t.Fatal("unknown kind should still stringify")
	}
}
