// Package profile is the always-on continuous profiler: a background
// loop that periodically captures short CPU profiles and heap
// snapshots into a bounded on-disk ring, so the last half hour of
// flame graphs is always available when a latency regression is
// noticed — no "reproduce it with profiling enabled" step.
//
// The overhead budget is set by duty cycle, not sampling rate: each
// cycle profiles CPU for CPUDuration out of Interval (default 2s out
// of 30s, a 6.7% duty cycle of a profiler whose own overhead is a few
// percent — well under 1% net). Heap snapshots are a single
// runtime.GC-free WriteHeapProfile. Captures are written through
// internal/atomicfile so a crash mid-write never leaves a torn
// profile, and the ring deletes oldest-first so disk usage is bounded
// by MaxCaptures.
//
// Because the serving layer runs engines under pprof labels
// (trace_id, backend, kernel_tier, preset — see serve.runEngine),
// every CPU capture can be sliced by request dimension with standard
// tooling: `go tool pprof -tagfocus kernel_tier=int16x16 cpu-42.pb.gz`.
package profile

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/atomicfile"
	"repro/internal/obs"
)

// Config sizes the profiler. The zero value is NOT usable: Dir is
// required; other fields default sensibly.
type Config struct {
	// Dir is the capture directory (created if absent).
	Dir string
	// Interval is the cycle period (0 = 30s).
	Interval time.Duration
	// CPUDuration is the CPU-profile length per cycle (0 = 2s, capped
	// at Interval/2 so the duty cycle stays bounded).
	CPUDuration time.Duration
	// MaxCaptures bounds the ring: the total number of capture files
	// kept, oldest deleted first (0 = 64).
	MaxCaptures int
	// FS is the filesystem (nil = atomicfile.OS()); tests inject fakes
	// or fault-injecting wrappers.
	FS atomicfile.FS
	// Metrics, when non-nil, receives profiler telemetry:
	// profile/captures, profile/capture_errors, profile/ring_bytes.
	Metrics *obs.Registry
}

// Profiler runs the capture loop. Create with New, start with Start,
// stop with Close. All methods are safe on a nil receiver, so serving
// code can thread an optional *Profiler without branching.
type Profiler struct {
	cfg  Config
	fs   atomicfile.FS
	stop chan struct{}
	done chan struct{}

	captures  *obs.Counter
	capErrors *obs.Counter
	ringBytes *obs.Gauge

	mu  sync.Mutex // guards seq and ring mutation
	seq int64
}

// Capture describes one stored profile.
type Capture struct {
	Name  string `json:"name"` // e.g. "cpu-000042.pb.gz"
	Kind  string `json:"kind"` // "cpu" or "heap"
	Seq   int64  `json:"seq"`
	Bytes int64  `json:"bytes"`
	// UnixMS is the capture file's modification time.
	UnixMS int64 `json:"unix_ms"`
}

// New builds a profiler (but does not start it).
func New(cfg Config) (*Profiler, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("profile: Dir is required")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 30 * time.Second
	}
	if cfg.CPUDuration <= 0 {
		cfg.CPUDuration = 2 * time.Second
	}
	if cfg.CPUDuration > cfg.Interval/2 {
		cfg.CPUDuration = cfg.Interval / 2
	}
	if cfg.MaxCaptures <= 0 {
		cfg.MaxCaptures = 64
	}
	fs := cfg.FS
	if fs == nil {
		fs = atomicfile.OS()
	}
	if err := fs.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("profile: %w", err)
	}
	p := &Profiler{
		cfg:       cfg,
		fs:        fs,
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
		captures:  cfg.Metrics.Counter("profile/captures"),
		capErrors: cfg.Metrics.Counter("profile/capture_errors"),
		ringBytes: cfg.Metrics.Gauge("profile/ring_bytes"),
	}
	// Resume the sequence after the highest existing capture so a
	// restart keeps appending to the ring instead of overwriting it.
	for _, c := range p.List() {
		if c.Seq > p.seq {
			p.seq = c.Seq
		}
	}
	return p, nil
}

// Start launches the capture loop. The first cycle begins after one
// interval, not immediately, so process startup (cold caches, one-time
// allocation) does not dominate the first capture.
func (p *Profiler) Start() {
	if p == nil {
		return
	}
	go p.loop()
}

// Close stops the loop and waits for an in-flight capture to finish.
func (p *Profiler) Close() {
	if p == nil {
		return
	}
	close(p.stop)
	<-p.done
}

func (p *Profiler) loop() {
	defer close(p.done)
	t := time.NewTicker(p.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			p.CaptureNow()
		}
	}
}

// CaptureNow runs one capture cycle synchronously: a CPU profile of
// CPUDuration, a heap snapshot, then ring trimming. Exported so tests
// and the obs-smoke CI job can force a capture without waiting an
// interval. Errors land in profile/capture_errors (a concurrent
// explicit pprof session makes StartCPUProfile fail; the cycle still
// writes the heap snapshot).
func (p *Profiler) CaptureNow() {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.seq++
	seq := p.seq
	p.mu.Unlock()

	var cpu bytes.Buffer
	if err := pprof.StartCPUProfile(&cpu); err != nil {
		// Someone else (an operator on /debug/pprof/profile) is
		// profiling; their session wins, ours records the miss.
		p.capErrors.Inc()
	} else {
		select {
		case <-time.After(p.cfg.CPUDuration):
		case <-p.stop:
		}
		pprof.StopCPUProfile()
		p.write(fmt.Sprintf("cpu-%06d.pb.gz", seq), cpu.Bytes())
	}

	var heap bytes.Buffer
	if err := pprof.Lookup("heap").WriteTo(&heap, 0); err != nil {
		p.capErrors.Inc()
	} else {
		p.write(fmt.Sprintf("heap-%06d.pb.gz", seq), heap.Bytes())
	}
	p.trim()
}

func (p *Profiler) write(name string, data []byte) {
	if err := p.fs.WriteFile(filepath.Join(p.cfg.Dir, name), data, 0o644); err != nil {
		p.capErrors.Inc()
		return
	}
	p.captures.Inc()
}

// parseCapture decodes "<kind>-<seq>.pb.gz" names; ok=false for
// foreign files, which List and trim leave alone.
func parseCapture(name string) (kind string, seq int64, ok bool) {
	base, found := strings.CutSuffix(name, ".pb.gz")
	if !found {
		return "", 0, false
	}
	kind, num, found := strings.Cut(base, "-")
	if !found || (kind != "cpu" && kind != "heap") {
		return "", 0, false
	}
	seq, err := strconv.ParseInt(num, 10, 64)
	if err != nil {
		return "", 0, false
	}
	return kind, seq, true
}

// List returns the ring's captures, oldest first.
func (p *Profiler) List() []Capture {
	if p == nil {
		return nil
	}
	ents, err := p.fs.ReadDir(p.cfg.Dir)
	if err != nil {
		return nil
	}
	out := make([]Capture, 0, len(ents))
	var total int64
	for _, e := range ents {
		kind, seq, ok := parseCapture(e.Name())
		if !ok {
			continue
		}
		c := Capture{Name: e.Name(), Kind: kind, Seq: seq}
		if info, err := e.Info(); err == nil {
			c.Bytes = info.Size()
			c.UnixMS = info.ModTime().UnixMilli()
		}
		total += c.Bytes
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Seq != out[j].Seq {
			return out[i].Seq < out[j].Seq
		}
		return out[i].Name < out[j].Name
	})
	p.ringBytes.Set(total)
	return out
}

// Read returns one capture's bytes by name (path-traversal safe: the
// name must parse as a capture).
func (p *Profiler) Read(name string) ([]byte, error) {
	if p == nil {
		return nil, os.ErrNotExist
	}
	if _, _, ok := parseCapture(name); !ok {
		return nil, os.ErrNotExist
	}
	return p.fs.ReadFile(filepath.Join(p.cfg.Dir, name))
}

// trim deletes oldest captures past MaxCaptures.
func (p *Profiler) trim() {
	p.mu.Lock()
	defer p.mu.Unlock()
	caps := p.List()
	for len(caps) > p.cfg.MaxCaptures {
		if err := p.fs.Remove(filepath.Join(p.cfg.Dir, caps[0].Name)); err != nil {
			p.capErrors.Inc()
			return // avoid spinning on an undeletable file
		}
		caps = caps[1:]
	}
}
