package profile

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/obs"
)

func newTestProfiler(t *testing.T, max int) *Profiler {
	t.Helper()
	p, err := New(Config{
		Dir:         t.TempDir(),
		Interval:    time.Hour, // loop never fires; tests drive CaptureNow
		CPUDuration: 30 * time.Millisecond,
		MaxCaptures: max,
		Metrics:     obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCaptureCycleWritesCPUAndHeap(t *testing.T) {
	p := newTestProfiler(t, 10)
	p.CaptureNow()
	caps := p.List()
	if len(caps) != 2 {
		t.Fatalf("want cpu+heap, got %v", caps)
	}
	kinds := map[string]bool{}
	for _, c := range caps {
		kinds[c.Kind] = true
		if c.Bytes <= 0 {
			t.Errorf("capture %s is empty", c.Name)
		}
		data, err := p.Read(c.Name)
		if err != nil || len(data) == 0 {
			t.Errorf("Read(%s): %v (%d bytes)", c.Name, err, len(data))
		}
		// pprof output is gzip-compressed protobuf: check the magic.
		if len(data) >= 2 && (data[0] != 0x1f || data[1] != 0x8b) {
			t.Errorf("capture %s is not gzip", c.Name)
		}
	}
	if !kinds["cpu"] || !kinds["heap"] {
		t.Fatalf("missing kind in %v", caps)
	}
}

func TestRingTrimsOldest(t *testing.T) {
	p := newTestProfiler(t, 4)
	for i := 0; i < 4; i++ { // 8 files against a ring of 4
		p.CaptureNow()
	}
	caps := p.List()
	if len(caps) != 4 {
		t.Fatalf("ring holds %d captures, want 4", len(caps))
	}
	// The survivors must be the newest sequences (3 and 4).
	for _, c := range caps {
		if c.Seq < 3 {
			t.Errorf("old capture %s survived the trim", c.Name)
		}
	}
}

func TestSequenceResumesAcrossRestart(t *testing.T) {
	p := newTestProfiler(t, 10)
	p.CaptureNow()
	p.CaptureNow()

	// A second profiler over the same directory must continue, not
	// overwrite.
	p2, err := New(Config{Dir: p.cfg.Dir, Interval: time.Hour,
		CPUDuration: 30 * time.Millisecond, MaxCaptures: 10})
	if err != nil {
		t.Fatal(err)
	}
	p2.CaptureNow()
	caps := p2.List()
	if len(caps) != 6 {
		t.Fatalf("want 6 captures after restart, got %d", len(caps))
	}
	if last := caps[len(caps)-1]; last.Seq != 3 {
		t.Fatalf("restart did not resume sequence: %+v", last)
	}
}

func TestParseCaptureRejectsForeignNames(t *testing.T) {
	for _, name := range []string{"cpu-1.pb", "x.pb.gz", "cpu.pb.gz", "../../etc/passwd", "goroutine-1.pb.gz"} {
		if _, _, ok := parseCapture(name); ok {
			t.Errorf("parseCapture accepted %q", name)
		}
	}
	kind, seq, ok := parseCapture("heap-000042.pb.gz")
	if !ok || kind != "heap" || seq != 42 {
		t.Fatalf("parseCapture(heap-000042) = %q %d %v", kind, seq, ok)
	}
}

func TestHTTPHandlers(t *testing.T) {
	p := newTestProfiler(t, 10)
	p.CaptureNow()

	rw := httptest.NewRecorder()
	p.HandleList(rw, httptest.NewRequest("GET", "/debug/profiles", nil))
	var doc struct {
		Captures []Capture `json:"captures"`
	}
	if err := json.Unmarshal(rw.Body.Bytes(), &doc); err != nil {
		t.Fatalf("list JSON: %v", err)
	}
	if len(doc.Captures) != 2 {
		t.Fatalf("list = %+v", doc.Captures)
	}

	rw = httptest.NewRecorder()
	p.HandleGet(rw, httptest.NewRequest("GET", "/", nil), doc.Captures[0].Name)
	if rw.Code != 200 || rw.Body.Len() == 0 {
		t.Fatalf("get: %d (%d bytes)", rw.Code, rw.Body.Len())
	}

	rw = httptest.NewRecorder()
	p.HandleGet(rw, httptest.NewRequest("GET", "/", nil), "../escape")
	if rw.Code != 404 {
		t.Fatalf("traversal name: %d, want 404", rw.Code)
	}

	var nilP *Profiler
	rw = httptest.NewRecorder()
	nilP.HandleList(rw, httptest.NewRequest("GET", "/", nil))
	if rw.Code != 404 {
		t.Fatalf("nil list: %d, want 404", rw.Code)
	}
}

func TestStartCloseLifecycle(t *testing.T) {
	p, err := New(Config{Dir: t.TempDir(), Interval: 50 * time.Millisecond,
		CPUDuration: 10 * time.Millisecond, MaxCaptures: 4})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	time.Sleep(150 * time.Millisecond)
	p.Close()
	if len(p.List()) == 0 {
		t.Fatal("running profiler captured nothing")
	}
	var nilP *Profiler
	nilP.Start()
	nilP.Close()
	nilP.CaptureNow()
}
