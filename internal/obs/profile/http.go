package profile

import (
	"encoding/json"
	"net/http"
	"os"
)

// HandleList serves the ring index as JSON (GET /debug/profiles).
func (p *Profiler) HandleList(w http.ResponseWriter, _ *http.Request) {
	if p == nil {
		http.Error(w, "profiler disabled", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(struct { //nolint:errcheck
		Captures []Capture `json:"captures"`
	}{p.List()})
}

// HandleGet serves one capture's raw pprof bytes
// (GET /debug/profiles/{name}); `go tool pprof <url>` works directly.
func (p *Profiler) HandleGet(w http.ResponseWriter, r *http.Request, name string) {
	data, err := p.Read(name)
	if err != nil {
		code := http.StatusInternalServerError
		if os.IsNotExist(err) || p == nil {
			code = http.StatusNotFound
		}
		http.Error(w, err.Error(), code)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(data) //nolint:errcheck
}
