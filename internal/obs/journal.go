package obs

import (
	"fmt"
	"sync"
	"time"
)

// EventKind labels one journal event. The task-queue kinds trace a
// top-alignment run (a strict run's accept sequence is reproducible, so
// two journals of the same input must agree on it); the cluster kinds
// trace the distributed scheduler.
type EventKind uint8

const (
	// EvEnqueue: task R entered the queue (initial population).
	EvEnqueue EventKind = 1
	// EvRealign: task R realigned; Arg is the new score.
	EvRealign EventKind = 2
	// EvAccept: task R's alignment accepted as a top; Arg is the score.
	EvAccept EventKind = 3
	// EvShadowReject: Arg bottom-row endings of task R rejected as
	// shadows.
	EvShadowReject EventKind = 4
	// EvSpecWaste: a speculative realignment of task R was computed
	// against a snapshot that is no longer current; Arg is the version
	// it was computed against.
	EvSpecWaste EventKind = 5
	// EvDispatch: task R dispatched to slave Rank.
	EvDispatch EventKind = 6
	// EvRedispatch: overdue task R speculatively re-dispatched to Rank.
	EvRedispatch EventKind = 7
	// EvDuplicate: a duplicate result for task R from Rank was dropped.
	EvDuplicate EventKind = 8
	// EvRankDown: slave Rank declared dead; Arg is the number of its
	// tasks requeued.
	EvRankDown EventKind = 9
	// EvRankJoin: slave Rank joined (or rejoined) the run.
	EvRankJoin EventKind = 10
	// EvAdmit: serving-layer request R entered the admission queue; Arg
	// is the queue depth after admission.
	EvAdmit EventKind = 11
	// EvBatch: request R joined an in-flight identical computation
	// (singleflight dedup); Arg is the joined request's sequence number.
	EvBatch EventKind = 12
	// EvServe: request R completed; Arg is the end-to-end latency in
	// nanoseconds.
	EvServe EventKind = 13
	// EvShed: request R was shed; Arg distinguishes the cause
	// (ShedQueueFull, ShedDeadline, ShedDraining).
	EvShed EventKind = 14
)

// Shed causes recorded in EvShed's Arg.
const (
	ShedQueueFull int64 = 1 // admission queue at capacity (429)
	ShedDeadline  int64 = 2 // deadline expired before a worker picked it up
	ShedDraining  int64 = 3 // server draining, no longer admitting
	ShedRateLimit int64 = 4 // admission token bucket empty (429)
)

// String names the kind for /trace output.
func (k EventKind) String() string {
	switch k {
	case EvEnqueue:
		return "enqueue"
	case EvRealign:
		return "realign"
	case EvAccept:
		return "accept"
	case EvShadowReject:
		return "shadow-reject"
	case EvSpecWaste:
		return "spec-waste"
	case EvDispatch:
		return "dispatch"
	case EvRedispatch:
		return "redispatch"
	case EvDuplicate:
		return "duplicate"
	case EvRankDown:
		return "rank-down"
	case EvRankJoin:
		return "rank-join"
	case EvAdmit:
		return "admit"
	case EvBatch:
		return "batch"
	case EvServe:
		return "serve"
	case EvShed:
		return "shed"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one journal entry. At is nanoseconds since the journal was
// created, taken from the monotonic clock, so events can be ordered and
// latencies derived even if the wall clock steps. Rank is -1 for local
// (non-cluster) events; Arg is kind-specific. R is 64-bit: the serving
// layer records its monotone request sequence here, which outlives
// 2^31 requests under sustained multi-shard load.
type Event struct {
	Seq  uint64    `json:"seq"`
	At   int64     `json:"at_ns"`
	Kind EventKind `json:"kind"`
	Rank int32     `json:"rank"`
	R    int64     `json:"r"`
	Arg  int64     `json:"arg"`
}

// Journal is a bounded in-memory ring of events. Recording is
// mutex-serialised (events are queue-rate, not cell-rate); when the
// ring is full the oldest events are dropped and counted. All methods
// are safe on a nil receiver.
type Journal struct {
	base time.Time

	mu      sync.Mutex
	seq     uint64
	dropped uint64
	buf     []Event
	start   int // index of oldest retained event
	n       int // number of retained events
}

// DefaultJournalCap is the ring capacity NewJournal(0) selects.
const DefaultJournalCap = 1 << 14

// NewJournal returns a journal retaining up to capacity events
// (DefaultJournalCap when capacity <= 0).
func NewJournal(capacity int) *Journal {
	if capacity <= 0 {
		capacity = DefaultJournalCap
	}
	return &Journal{base: time.Now(), buf: make([]Event, capacity)}
}

// Record appends one event, stamping it with the next sequence number
// and the monotonic time since the journal's creation.
func (j *Journal) Record(kind EventKind, rank int32, r, arg int64) {
	if j == nil {
		return
	}
	j.mu.Lock()
	// Stamped under the lock so At is monotone with Seq even when
	// goroutines race to record.
	at := time.Since(j.base).Nanoseconds()
	j.seq++
	ev := Event{Seq: j.seq, At: at, Kind: kind, Rank: rank, R: r, Arg: arg}
	if j.n < len(j.buf) {
		j.buf[(j.start+j.n)%len(j.buf)] = ev
		j.n++
	} else {
		j.buf[j.start] = ev
		j.start = (j.start + 1) % len(j.buf)
		j.dropped++
	}
	j.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (j *Journal) Events() []Event {
	return j.Tail(-1)
}

// Tail returns the most recent n retained events, oldest first (all of
// them when n < 0 or n exceeds the retained count).
func (j *Journal) Tail(n int) []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if n < 0 || n > j.n {
		n = j.n
	}
	out := make([]Event, n)
	first := j.start + (j.n - n)
	for i := 0; i < n; i++ {
		out[i] = j.buf[(first+i)%len(j.buf)]
	}
	return out
}

// Len returns the number of retained events.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.n
}

// Dropped returns how many events were evicted from the ring.
func (j *Journal) Dropped() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.dropped
}

// Accepts filters the retained events down to the accept sequence: the
// (split, score) pairs in acceptance order. Two strict-mode runs of the
// same input must produce identical accept sequences.
func (j *Journal) Accepts() []Event {
	var out []Event
	for _, ev := range j.Events() {
		if ev.Kind == EvAccept {
			out = append(out, ev)
		}
	}
	return out
}
