package slo

import (
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestNilTrackerSafe(t *testing.T) {
	var tr *Tracker
	tr.Record(true, time.Millisecond)
	if tr.Snapshot() != nil || tr.FastBurn("availability") != 0 {
		t.Fatal("nil tracker must be inert")
	}
	tr.Publish(obs.NewRegistry())
}

func TestBurnMath(t *testing.T) {
	tr := New(Config{AvailabilityTarget: 0.9}) // budget = 0.1
	for i := 0; i < 80; i++ {
		tr.Record(true, time.Millisecond)
	}
	for i := 0; i < 20; i++ {
		tr.Record(false, time.Millisecond)
	}
	snap := tr.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("want 2 objectives, got %d", len(snap))
	}
	av := snap[0]
	if av.Name != "availability" {
		t.Fatalf("objective order changed: %q", av.Name)
	}
	if av.Fast.Good != 80 || av.Fast.Bad != 20 {
		t.Fatalf("fast window counts: %+v", av.Fast)
	}
	// bad_frac 0.2 over budget 0.1 => burn 2.0
	if av.Fast.Burn < 1.99 || av.Fast.Burn > 2.01 {
		t.Fatalf("burn = %v, want 2.0", av.Fast.Burn)
	}
	// Slow window covers the same events.
	if av.Slow.Burn < 1.99 || av.Slow.Burn > 2.01 {
		t.Fatalf("slow burn = %v, want 2.0", av.Slow.Burn)
	}
	if av.Burning {
		t.Fatal("burn 2.0 must not page (threshold 14.4)")
	}
}

func TestLatencyObjectiveClassifies(t *testing.T) {
	tr := New(Config{LatencyThreshold: 10 * time.Millisecond, LatencyTarget: 0.5})
	tr.Record(true, time.Millisecond)    // good
	tr.Record(true, 20*time.Millisecond) // slow: bad for latency, good for availability
	tr.Record(false, time.Millisecond)   // error: bad for both
	snap := tr.Snapshot()
	av, lat := snap[0], snap[1]
	if av.Fast.Bad != 1 || av.Fast.Good != 2 {
		t.Fatalf("availability counts: %+v", av.Fast)
	}
	if lat.Fast.Bad != 2 || lat.Fast.Good != 1 {
		t.Fatalf("latency counts: %+v", lat.Fast)
	}
	if lat.LatencyThresholdNS != int64(10*time.Millisecond) {
		t.Fatalf("threshold not reported: %d", lat.LatencyThresholdNS)
	}
}

func TestBurningNeedsBothWindows(t *testing.T) {
	tr := New(Config{AvailabilityTarget: 0.999})
	// 100% failure: burn = 1/0.001 = 1000 in both windows (same events),
	// so multi-window condition trips.
	for i := 0; i < 50; i++ {
		tr.Record(false, time.Millisecond)
	}
	snap := tr.Snapshot()
	if !snap[0].Burning {
		t.Fatalf("total outage must burn: %+v", snap[0])
	}
	if got := tr.FastBurn("availability"); got < PageBurn {
		t.Fatalf("FastBurn = %v, want >= %v", got, PageBurn)
	}
	if tr.FastBurn("no-such-objective") != 0 {
		t.Fatal("unknown objective must read 0")
	}
}

func TestPublishGauges(t *testing.T) {
	reg := obs.NewRegistry()
	tr := New(Config{AvailabilityTarget: 0.9})
	for i := 0; i < 10; i++ {
		tr.Record(false, time.Millisecond)
	}
	tr.Publish(reg)
	snap := reg.Snapshot()
	if snap.Gauges["slo/availability/fast_burn_milli"] != 10000 {
		t.Fatalf("fast_burn_milli = %d, want 10000 (burn 10.0)",
			snap.Gauges["slo/availability/fast_burn_milli"])
	}
	if snap.Gauges["slo/availability/burning"] != 0 {
		t.Fatal("burn 10 < 14.4 must not page")
	}
}

func TestConcurrentRecord(t *testing.T) {
	tr := New(Config{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				tr.Record(j%10 != 0, time.Millisecond)
			}
		}()
	}
	wg.Wait()
	snap := tr.Snapshot()
	total := snap[0].Fast.Good + snap[0].Fast.Bad
	// Recycling races can lose at most a handful of events across the
	// one or two seconds this test spans.
	if total < 3900 || total > 4000 {
		t.Fatalf("lost too many events: %d / 4000", total)
	}
}
