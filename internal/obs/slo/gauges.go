package slo

import "repro/internal/obs"

// Publish writes the current burn state into reg as gauges (burn rates
// in milli-units, since obs gauges are integers):
//
//	slo/<objective>/fast_burn_milli
//	slo/<objective>/slow_burn_milli
//	slo/<objective>/burning (0/1)
//
// Burn is computed at read time, so callers invoke Publish just before
// a registry snapshot (the /metrics handler does). Nil-safe.
func (t *Tracker) Publish(reg *obs.Registry) {
	if t == nil || reg == nil {
		return
	}
	for _, st := range t.Snapshot() {
		reg.Gauge("slo/" + st.Name + "/fast_burn_milli").Set(int64(st.Fast.Burn * 1000))
		reg.Gauge("slo/" + st.Name + "/slow_burn_milli").Set(int64(st.Slow.Burn * 1000))
		var burning int64
		if st.Burning {
			burning = 1
		}
		reg.Gauge("slo/" + st.Name + "/burning").Set(burning)
	}
}
