// Package slo implements multi-window burn-rate tracking over service
// level objectives, following the SRE workbook's multi-window
// multi-burn-rate alerting recipe: an objective (say 99.9%
// availability) defines an error budget (0.1% of requests); the burn
// rate over a window is the observed bad fraction divided by the
// budget. Burn 1.0 spends exactly the budget over the SLO period;
// burn 14.4 over 5 minutes is the classic page-now threshold (it
// spends 2% of a 30-day budget in an hour).
//
// A Tracker holds one ring of per-second good/bad buckets per
// objective and computes burn over two windows (fast 5m, slow 1h) by
// scanning the ring at read time — recording is two atomic adds, so
// the serving hot path pays nanoseconds and never locks. Reads are
// approximate under concurrent writes (a scan may straddle a bucket
// update); burn rates feed alerts and admission hints, not billing.
//
// All methods are nil-safe, matching the obs conventions.
package slo

import (
	"sync/atomic"
	"time"
)

// Default windows for burn computation.
const (
	FastWindow = 5 * time.Minute
	SlowWindow = time.Hour
)

// ringSeconds sizes each objective's bucket ring. It must exceed the
// slow window by enough slack that a read scanning backwards never
// races the writer recycling the bucket the scan starts from.
const ringSeconds = 3700

// PageBurn is the conventional fast-window burn threshold above which
// an SLO is considered actively burning (the SRE workbook's 14.4: a
// 5-minute window at this rate spends a 30-day budget in ~2 days, and
// paired with a 1-hour window it pages within minutes of a real
// outage). The router uses it as its admission hint threshold.
const PageBurn = 14.4

// Objective is one SLO: a name and a target fraction of good events
// (0 < Target < 1). What counts as "bad" is the recorder's business:
// the availability objective records errors, the latency objective
// records requests slower than its threshold.
type Objective struct {
	Name string
	// Target is the good fraction the SLO promises, e.g. 0.999.
	Target float64
	// LatencyThreshold, when nonzero, marks this as a latency
	// objective: Record treats durations above it as bad. Zero means
	// the recorder classifies events itself (availability).
	LatencyThreshold time.Duration
}

// bucket is one second of events for one objective.
type bucket struct {
	sec  atomic.Int64 // unix second this bucket currently holds
	good atomic.Int64
	bad  atomic.Int64
}

// series is the per-objective ring.
type series struct {
	obj     Objective
	buckets [ringSeconds]bucket
}

// Tracker records request outcomes against a set of objectives.
// Create with New; the zero value tracks nothing (but is safe).
type Tracker struct {
	objectives []*series
	epoch      time.Time // monotonic base; buckets are seconds since epoch
}

// Config configures a Tracker.
type Config struct {
	// AvailabilityTarget is the good fraction for the availability
	// objective (0 = 0.999).
	AvailabilityTarget float64
	// LatencyTarget is the good fraction for the latency objective
	// (0 = 0.99).
	LatencyTarget float64
	// LatencyThreshold is the p-quantile latency bound requests must
	// meet (0 = 2s). A request slower than this is "bad" for the
	// latency objective even if it succeeded.
	LatencyThreshold time.Duration
}

// New builds a tracker with the standard two objectives:
// "availability" (request did not error or shed) and "latency_p99"
// (request completed under the threshold).
func New(cfg Config) *Tracker {
	if cfg.AvailabilityTarget <= 0 || cfg.AvailabilityTarget >= 1 {
		cfg.AvailabilityTarget = 0.999
	}
	if cfg.LatencyTarget <= 0 || cfg.LatencyTarget >= 1 {
		cfg.LatencyTarget = 0.99
	}
	if cfg.LatencyThreshold <= 0 {
		cfg.LatencyThreshold = 2 * time.Second
	}
	return &Tracker{
		epoch: time.Now(),
		objectives: []*series{
			{obj: Objective{Name: "availability", Target: cfg.AvailabilityTarget}},
			{obj: Objective{Name: "latency_p99", Target: cfg.LatencyTarget,
				LatencyThreshold: cfg.LatencyThreshold}},
		},
	}
}

// now returns whole seconds since the tracker's epoch (monotonic, so
// wall-clock steps cannot tear the ring).
func (t *Tracker) now() int64 { return int64(time.Since(t.epoch) / time.Second) }

// Record scores one finished request against every objective: ok is
// the availability outcome, d the end-to-end latency. Two atomic adds
// per objective; safe for any number of concurrent callers.
func (t *Tracker) Record(ok bool, d time.Duration) {
	if t == nil {
		return
	}
	sec := t.now()
	for _, s := range t.objectives {
		bad := !ok
		if s.obj.LatencyThreshold > 0 {
			// A shed/errored request is bad for latency too: the client
			// did not get an answer inside the threshold.
			bad = !ok || d > s.obj.LatencyThreshold
		}
		b := &s.buckets[sec%ringSeconds]
		if b.sec.Load() != sec {
			// First writer of a new second recycles the bucket. A racing
			// writer may add to the bucket between Store calls; the loss
			// is bounded by one bucket of one second.
			b.sec.Store(sec)
			b.good.Store(0)
			b.bad.Store(0)
		}
		if bad {
			b.bad.Add(1)
		} else {
			b.good.Add(1)
		}
	}
}

// WindowBurn is one objective's burn state over one window.
type WindowBurn struct {
	Window  time.Duration `json:"window"`
	Good    int64         `json:"good"`
	Bad     int64         `json:"bad"`
	BadFrac float64       `json:"bad_fraction"`
	// Burn is BadFrac / (1 - Target): 1.0 spends the budget exactly,
	// PageBurn (14.4) is the page-now line. 0 when the window is empty.
	Burn float64 `json:"burn"`
}

// Status is one objective's full burn state.
type Status struct {
	Name   string  `json:"name"`
	Target float64 `json:"target"`
	// LatencyThresholdNS is present on latency objectives.
	LatencyThresholdNS int64      `json:"latency_threshold_ns,omitempty"`
	Fast               WindowBurn `json:"fast"`
	Slow               WindowBurn `json:"slow"`
	// Burning is the multi-window alert condition: both windows above
	// PageBurn (fast alone is noise, slow alone is stale).
	Burning bool `json:"burning"`
}

// Snapshot computes every objective's burn state. O(ring) per
// objective; intended for scrape/admission cadence, not per-request.
func (t *Tracker) Snapshot() []Status {
	if t == nil {
		return nil
	}
	sec := t.now()
	out := make([]Status, 0, len(t.objectives))
	for _, s := range t.objectives {
		st := Status{Name: s.obj.Name, Target: s.obj.Target,
			LatencyThresholdNS: int64(s.obj.LatencyThreshold)}
		st.Fast = s.burn(sec, FastWindow)
		st.Slow = s.burn(sec, SlowWindow)
		st.Burning = st.Fast.Burn >= PageBurn && st.Slow.Burn >= PageBurn
		out = append(out, st)
	}
	return out
}

// FastBurn returns the named objective's fast-window burn (0 when the
// objective does not exist or the tracker is nil). The router's
// admission hint reads this.
func (t *Tracker) FastBurn(name string) float64 {
	if t == nil {
		return 0
	}
	sec := t.now()
	for _, s := range t.objectives {
		if s.obj.Name == name {
			return s.burn(sec, FastWindow).Burn
		}
	}
	return 0
}

// burn scans the last window of buckets. The current (partial) second
// is included; buckets whose stamp is outside the window are skipped
// (they hold a previous lap of the ring).
func (s *series) burn(nowSec int64, window time.Duration) WindowBurn {
	w := WindowBurn{Window: window}
	secs := int64(window / time.Second)
	lo := nowSec - secs + 1
	if lo < 0 {
		lo = 0
	}
	for sec := lo; sec <= nowSec; sec++ {
		b := &s.buckets[sec%ringSeconds]
		if b.sec.Load() != sec {
			continue
		}
		w.Good += b.good.Load()
		w.Bad += b.bad.Load()
	}
	total := w.Good + w.Bad
	if total == 0 {
		return w
	}
	w.BadFrac = float64(w.Bad) / float64(total)
	budget := 1 - s.obj.Target
	if budget > 0 {
		w.Burn = w.BadFrac / budget
	}
	return w
}
