package obs

import (
	"fmt"
	"io"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) for a registry
// snapshot, so the debug endpoints can be scraped with standard
// tooling. Metric names are sanitised to the Prometheus grammar
// ("serve/e2e_ns" -> "serve_e2e_ns"); histogram buckets keep their
// power-of-two nanosecond boundaries as cumulative le labels.

// PromContentType is the Content-Type of the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// promName sanitises a registry name to the Prometheus metric grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteRune(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus renders the snapshot in the Prometheus text format.
// Names are emitted in lexical order, so the output is stable for a
// given snapshot.
func WritePrometheus(w io.Writer, s Snapshot) error {
	for _, name := range sortedKeys(s.Counters) {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, s.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		pn := promName(name)
		h := s.Histograms[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		// Bucket i counts observations in [2^i, 2^(i+1)) ns: cumulative
		// counts against upper bounds 2^(i+1), with the last bucket as
		// +Inf (it absorbs the tail).
		cum := int64(0)
		for i := 0; i < HistogramBuckets-1; i++ {
			cum += h.Buckets[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", pn, int64(1)<<(i+1), cum); err != nil {
				return err
			}
		}
		cum += h.Buckets[HistogramBuckets-1]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
			pn, cum, pn, h.Sum, pn, h.Count); err != nil {
			return err
		}
	}
	return nil
}
