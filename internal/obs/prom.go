package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) and OpenMetrics
// 1.0 exposition for a registry snapshot, so the debug endpoints can be
// scraped with standard tooling. Metric names are sanitised to the
// Prometheus grammar ("serve/e2e_ns" -> "serve_e2e_ns"); histogram
// buckets keep their power-of-two nanosecond boundaries as cumulative
// le labels. Registry names may carry a label set built with
// LabeledName ("router/shard_requests{shard=\"http://h:1\"}"); label
// values are escaped per the exposition format spec (backslash, quote,
// newline) at exposition time.

// PromContentType is the Content-Type of the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// OpenMetricsContentType is the Content-Type of the OpenMetrics 1.0
// text format (exemplar-capable).
const OpenMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// LabeledName builds a registry metric name carrying a label set:
// LabeledName("router/shard_requests", "shard", url) ->
// `router/shard_requests{shard="<url>"}`. Pairs are key, value, key,
// value, ... Values are escaped at build time (backslash, quote,
// newline — the exposition spec's escape set), so the stored name is
// unambiguous, JSON snapshots show the escaped form verbatim, and the
// Prometheus/OpenMetrics writers can emit the label clause as-is.
func LabeledName(base string, pairs ...string) string {
	if len(pairs) == 0 || len(pairs)%2 != 0 {
		return base
	}
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i := 0; i < len(pairs); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(pairs[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(pairs[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// splitLabeled splits a registry name into its base and label pairs
// (nil when the name carries no labels). Values stay in their escaped
// form; the closing-quote scan honours backslash escapes.
func splitLabeled(name string) (base string, pairs [][2]string) {
	open := strings.IndexByte(name, '{')
	if open < 0 || !strings.HasSuffix(name, `"}`) {
		return name, nil
	}
	base = name[:open]
	body := name[open+1 : len(name)-1]
	for len(body) > 0 {
		eq := strings.Index(body, `="`)
		if eq < 0 {
			return name, nil // malformed; treat as unlabeled
		}
		key := body[:eq]
		rest := body[eq+2:]
		end := -1
		for i := 0; i < len(rest); i++ {
			if rest[i] == '\\' {
				i++ // skip the escaped byte
				continue
			}
			if rest[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return name, nil
		}
		pairs = append(pairs, [2]string{key, rest[:end]})
		body = strings.TrimPrefix(rest[end+1:], ",")
	}
	return base, pairs
}

// escapeLabelValue escapes a label value per the exposition format
// spec: backslash, double-quote, and line feed.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 8)
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// renderLabels renders a label set (plus an optional extra pair, for
// histogram le) as the {...} clause. Pair values arrive pre-escaped
// from LabeledName via splitLabeled. Empty sets render as "".
func renderLabels(pairs [][2]string, extraKey, extraVal string) string {
	if len(pairs) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(promName(p[0]))
		b.WriteString(`="`)
		b.WriteString(p[1])
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(pairs) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(extraVal)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// promName sanitises a registry name to the Prometheus metric grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteRune(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// typeTracker emits each metric family's # TYPE line once: labeled
// variants of the same base name share a family, and sorted key order
// keeps them adjacent.
type typeTracker struct {
	w    io.Writer
	last string
	err  error
}

func (t *typeTracker) family(pn, kind string) {
	if t.err != nil || pn == t.last {
		return
	}
	t.last = pn
	_, t.err = fmt.Fprintf(t.w, "# TYPE %s %s\n", pn, kind)
}

// WritePrometheus renders the snapshot in the Prometheus text format.
// Names are emitted in lexical order, so the output is stable for a
// given snapshot.
func WritePrometheus(w io.Writer, s Snapshot) error {
	return writeExposition(w, s, false)
}

// WriteOpenMetrics renders the snapshot in the OpenMetrics 1.0 text
// format: counters gain the _total suffix, histogram le values are
// canonical floats, buckets carry exemplars when their histogram has
// them, and the document ends with # EOF.
func WriteOpenMetrics(w io.Writer, s Snapshot) error {
	return writeExposition(w, s, true)
}

func writeExposition(w io.Writer, s Snapshot, om bool) error {
	t := &typeTracker{w: w}
	for _, name := range sortedKeys(s.Counters) {
		base, pairs := splitLabeled(name)
		pn := promName(base)
		t.family(pn, "counter")
		suffix := ""
		if om {
			suffix = "_total"
		}
		if t.err == nil {
			_, t.err = fmt.Fprintf(w, "%s%s%s %d\n", pn, suffix, renderLabels(pairs, "", ""), s.Counters[name])
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		base, pairs := splitLabeled(name)
		pn := promName(base)
		t.family(pn, "gauge")
		if t.err == nil {
			_, t.err = fmt.Fprintf(w, "%s%s %d\n", pn, renderLabels(pairs, "", ""), s.Gauges[name])
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		base, pairs := splitLabeled(name)
		pn := promName(base)
		h := s.Histograms[name]
		t.family(pn, "histogram")
		if t.err != nil {
			break
		}
		exemplars := map[int]Exemplar{}
		if om {
			for _, e := range h.Exemplars {
				exemplars[e.Bucket] = e.Exemplar
			}
		}
		// Bucket i counts observations in [2^i, 2^(i+1)) ns: cumulative
		// counts against upper bounds 2^(i+1), with the last bucket as
		// +Inf (it absorbs the tail).
		cum := int64(0)
		for i := 0; i < HistogramBuckets-1 && t.err == nil; i++ {
			cum += h.Buckets[i]
			_, t.err = fmt.Fprintf(w, "%s_bucket%s %d%s\n",
				pn, renderLabels(pairs, "le", leValue(int64(1)<<(i+1), om)),
				cum, exemplarSuffix(exemplars, i))
		}
		if t.err != nil {
			break
		}
		cum += h.Buckets[HistogramBuckets-1]
		_, t.err = fmt.Fprintf(w, "%s_bucket%s %d%s\n%s_sum%s %d\n%s_count%s %d\n",
			pn, renderLabels(pairs, "le", "+Inf"), cum,
			exemplarSuffix(exemplars, HistogramBuckets-1),
			pn, renderLabels(pairs, "", ""), h.Sum,
			pn, renderLabels(pairs, "", ""), h.Count)
	}
	if om && t.err == nil {
		_, t.err = io.WriteString(w, "# EOF\n")
	}
	return t.err
}

// leValue renders a bucket upper bound: plain integer for Prometheus
// 0.0.4, canonical float ("2.0") for OpenMetrics.
func leValue(v int64, om bool) string {
	s := strconv.FormatInt(v, 10)
	if om {
		s += ".0"
	}
	return s
}

// exemplarSuffix renders a bucket's OpenMetrics exemplar clause
// (" # {trace_id=\"...\"} <value> <ts>"), or "" when the bucket has
// none. The exemplar value stays in nanoseconds — the same unit as the
// le bounds, as the spec requires an exemplar to fall inside its
// bucket's range — and the timestamp is seconds.
func exemplarSuffix(exemplars map[int]Exemplar, bucket int) string {
	e, ok := exemplars[bucket]
	if !ok {
		return ""
	}
	return fmt.Sprintf(" # {trace_id=\"%s\"} %d %d.%03d",
		escapeLabelValue(e.TraceID), e.ValueNS, e.UnixMS/1000, e.UnixMS%1000)
}
