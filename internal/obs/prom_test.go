package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/obs/trace"
)

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"serve/e2e_ns":           "serve_e2e_ns",
		"mpi/hb_rtt_ns/rank2":    "mpi_hb_rtt_ns_rank2",
		"cluster/dispatch-total": "cluster_dispatch_total",
		"9lives":                 "_9lives",
		"a:b":                    "a:b",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("serve/requests").Add(3)
	reg.Gauge("serve/queue_depth").Set(2)
	reg.Histogram("serve/e2e_ns").Observe(3 * time.Nanosecond) // bucket [2,4)
	reg.Histogram("serve/e2e_ns").Observe(3 * time.Nanosecond)

	var sb strings.Builder
	if err := WritePrometheus(&sb, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE serve_requests counter\nserve_requests 3\n",
		"# TYPE serve_queue_depth gauge\nserve_queue_depth 2\n",
		"# TYPE serve_e2e_ns histogram\n",
		`serve_e2e_ns_bucket{le="2"} 0`,
		`serve_e2e_ns_bucket{le="4"} 2`,
		`serve_e2e_ns_bucket{le="+Inf"} 2`,
		"serve_e2e_ns_sum 6\n",
		"serve_e2e_ns_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Cumulative le buckets must be monotonic.
	last := int64(-1)
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "serve_e2e_ns_bucket") {
			continue
		}
		var v int64
		if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &v); err != nil {
			t.Fatalf("bad bucket line %q", line)
		}
		if v < last {
			t.Fatalf("bucket counts not cumulative at %q", line)
		}
		last = v
	}
}

// TestPromLabelEscaping: label values containing backslash, quote, and
// newline must be escaped per the exposition format spec — a hostile
// shard label cannot corrupt the scrape.
func TestPromLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	hostile := "http://evil\"\nshard\\:8080"
	reg.Counter(LabeledName("router/shard_requests", "shard", hostile)).Add(5)
	reg.Counter(LabeledName("router/shard_requests", "shard", "http://ok:1")).Add(2)

	var sb strings.Builder
	if err := WritePrometheus(&sb, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	want := `router_shard_requests{shard="http://evil\"\nshard\\:8080"} 5`
	if !strings.Contains(out, want) {
		t.Errorf("exposition missing escaped line %q:\n%s", want, out)
	}
	if !strings.Contains(out, `router_shard_requests{shard="http://ok:1"} 2`) {
		t.Errorf("exposition missing plain labeled line:\n%s", out)
	}
	// One TYPE line for the whole family, not one per label set.
	if n := strings.Count(out, "# TYPE router_shard_requests counter"); n != 1 {
		t.Errorf("family TYPE line emitted %d times, want 1:\n%s", n, out)
	}
	// The raw newline must not survive into the exposition: every line
	// must be a comment, an escaped sample, or empty.
	for _, line := range strings.Split(out, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.Contains(line, " ") {
			t.Errorf("scrape line %q has no value — a label leaked a newline", line)
		}
	}
}

func TestLabeledNameRoundTrip(t *testing.T) {
	name := LabeledName("serve/usage_cpu_ns", "backend", "cluster", "tier", "int16x16")
	base, pairs := splitLabeled(name)
	if base != "serve/usage_cpu_ns" || len(pairs) != 2 ||
		pairs[0] != [2]string{"backend", "cluster"} || pairs[1] != [2]string{"tier", "int16x16"} {
		t.Fatalf("splitLabeled(%q) = %q %v", name, base, pairs)
	}
	if b, p := splitLabeled("plain/name"); b != "plain/name" || p != nil {
		t.Fatalf("unlabeled name mangled: %q %v", b, p)
	}
}

// TestWriteOpenMetrics: counters gain _total, le bounds are canonical
// floats, exemplars render with trace IDs, and the document ends with
// # EOF.
func TestWriteOpenMetrics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("serve/requests").Add(3)
	reg.Gauge("serve/queue_depth").Set(1)
	h := reg.Histogram("serve/e2e_ns")
	tid := trace.NewTraceID().String()
	h.ObserveExemplar(3*time.Nanosecond, tid) // bucket [2,4)

	var sb strings.Builder
	if err := WriteOpenMetrics(&sb, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE serve_requests counter\nserve_requests_total 3\n",
		"serve_queue_depth 1\n",
		`serve_e2e_ns_bucket{le="2.0"} 0`,
		fmt.Sprintf(`serve_e2e_ns_bucket{le="4.0"} 1 # {trace_id="%s"} 3 `, tid),
		`serve_e2e_ns_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("openmetrics missing %q:\n%s", want, out)
		}
	}
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Errorf("openmetrics does not end with # EOF:\n%s", out[len(out)-40:])
	}
	// A plain Prometheus scrape of the same registry must not carry
	// exemplars or _total.
	sb.Reset()
	if err := WritePrometheus(&sb, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "trace_id") || strings.Contains(sb.String(), "_total") {
		t.Errorf("prometheus 0.0.4 output leaked openmetrics syntax:\n%s", sb.String())
	}
}

// TestMetricsContentNegotiation exercises the /metrics endpoint's format
// selection: JSON by default, Prometheus text via ?format=prom or an
// Accept header preferring text/plain.
func TestMetricsContentNegotiation(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("engine/alignments").Add(7)
	srv, err := StartDebug("127.0.0.1:0", reg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr + "/metrics"

	get := func(url, accept string) (string, string) {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, url, nil)
		if err != nil {
			t.Fatal(err)
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ct := get(base, "")
	if !strings.HasPrefix(ct, "application/json") {
		t.Errorf("default Content-Type = %q, want JSON", ct)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil || snap.Counters["engine/alignments"] != 7 {
		t.Errorf("default body not a JSON snapshot: %v, %q", err, body)
	}

	body, ct = get(base+"?format=prom", "")
	if ct != PromContentType {
		t.Errorf("prom Content-Type = %q, want %q", ct, PromContentType)
	}
	if !strings.Contains(body, "engine_alignments 7") {
		t.Errorf("prom body missing counter:\n%s", body)
	}

	if body, ct = get(base, "text/plain"); ct != PromContentType || !strings.Contains(body, "# TYPE") {
		t.Errorf("Accept: text/plain got %q", ct)
	}
	// A scraper preferring JSON keeps JSON even when text/plain trails.
	if _, ct = get(base, "application/json, text/plain"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("Accept json-first got %q", ct)
	}
	// ?format=json overrides any Accept header.
	if _, ct = get(base+"?format=json", "text/plain"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("format=json got %q", ct)
	}
}

// TestTraceByIDEndpoint exercises GET /trace/{id}: the span tree with
// its drop count, the Chrome export, and the error paths.
func TestTraceByIDEndpoint(t *testing.T) {
	col := trace.NewCollector(4, 8)
	rec := col.Rec(trace.NewTraceID())
	root := rec.Start(trace.SpanID{}, "request")
	child := rec.Start(root.ID(), "engine")
	child.End()
	root.End()

	srv, err := StartDebug("127.0.0.1:0", NewRegistry(), nil, col)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := fmt.Sprintf("http://%s/trace/", srv.Addr)

	resp, err := http.Get(base + rec.TraceID().String())
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var doc struct {
		TraceID string           `json:"trace_id"`
		Dropped uint64           `json:"dropped"`
		Spans   []trace.SpanJSON `json:"spans"`
		Tree    []*trace.Node    `json:"tree"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.TraceID != rec.TraceID().String() || len(doc.Spans) != 2 {
		t.Fatalf("doc = %+v", doc)
	}
	if len(doc.Tree) != 1 || doc.Tree[0].Name != "request" ||
		len(doc.Tree[0].Children) != 1 || doc.Tree[0].Children[0].Name != "engine" {
		t.Errorf("tree wrong: %+v", doc.Tree)
	}

	chrome, err := http.Get(base + rec.TraceID().String() + "?format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	defer chrome.Body.Close()
	var events []map[string]any
	if err := json.NewDecoder(chrome.Body).Decode(&events); err != nil {
		t.Fatalf("chrome export: %v", err)
	}
	if len(events) < 3 { // 2 spans + at least one process_name metadata
		t.Errorf("chrome export has %d events", len(events))
	}

	for path, want := range map[string]int{
		"not-a-trace-id":            http.StatusBadRequest,
		trace.NewTraceID().String(): http.StatusNotFound,
	} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("GET %s status = %d, want %d", path, resp.StatusCode, want)
		}
	}
}
