package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestDebugServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("engine/alignments").Add(11)
	reg.Histogram("engine/align_ns").Observe(time.Millisecond)
	jnl := NewJournal(16)
	for i := 0; i < 20; i++ { // overflow the ring so dropped > 0
		jnl.Record(EvAccept, -1, int64(i), int64(100+i))
	}

	srv, err := StartDebug("127.0.0.1:0", reg, jnl, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if !strings.HasPrefix(srv.Addr, "127.0.0.1:") {
		t.Fatalf("addr = %q, want localhost bind", srv.Addr)
	}

	get := func(path string) []byte {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	var snap Snapshot
	if err := json.Unmarshal(get("/metrics"), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["engine/alignments"] != 11 {
		t.Fatalf("metrics = %+v", snap.Counters)
	}
	if snap.Histograms["engine/align_ns"].Count != 1 {
		t.Fatalf("histograms = %+v", snap.Histograms)
	}

	var trace struct {
		Dropped uint64  `json:"dropped"`
		Events  []Event `json:"events"`
	}
	if err := json.Unmarshal(get("/trace?n=5"), &trace); err != nil {
		t.Fatal(err)
	}
	if len(trace.Events) != 5 {
		t.Fatalf("trace tail = %d events, want 5", len(trace.Events))
	}
	if trace.Dropped != 4 {
		t.Fatalf("dropped = %d, want 4", trace.Dropped)
	}
	if last := trace.Events[4]; last.R != 19 {
		t.Fatalf("tail not most-recent: %+v", last)
	}

	if body := get("/debug/pprof/cmdline"); len(body) == 0 {
		t.Fatal("pprof cmdline empty")
	}
}

func TestDebugServerDefaultHost(t *testing.T) {
	srv, err := StartDebug(":0", NewRegistry(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// Bare-port addresses must bind localhost, not all interfaces.
	if !strings.HasPrefix(srv.Addr, "127.0.0.1:") {
		t.Fatalf("addr = %q, want 127.0.0.1 default", srv.Addr)
	}
}

// TestCloseWaitsForInFlightScrape is the regression test for the
// shutdown path: Close must let a slow in-flight scrape finish its
// body (the old srv.Close() aborted it mid-response) and must leave no
// server goroutines behind.
func TestCloseWaitsForInFlightScrape(t *testing.T) {
	before := runtime.NumGoroutine()

	handlerEntered := make(chan struct{})
	release := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		close(handlerEntered)
		<-release // hold the scrape open across the Close call
		io.WriteString(w, `{"ok":true}`)
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &DebugServer{Addr: ln.Addr().String(), ln: ln, srv: &http.Server{Handler: mux}}
	go s.srv.Serve(ln)

	tr := &http.Transport{}
	defer tr.CloseIdleConnections()
	client := &http.Client{Transport: tr}

	type result struct {
		body []byte
		err  error
	}
	scraped := make(chan result, 1)
	go func() {
		resp, err := client.Get("http://" + s.Addr + "/slow")
		if err != nil {
			scraped <- result{nil, err}
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		scraped <- result{body, err}
	}()
	<-handlerEntered

	closed := make(chan error, 1)
	go func() { closed <- s.Close() }()

	// Close must block on the in-flight scrape, not abort it.
	select {
	case err := <-closed:
		t.Fatalf("Close returned while a scrape was in flight (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	// New connections must already be refused while draining.
	if _, err := net.DialTimeout("tcp", s.Addr, 250*time.Millisecond); err == nil {
		// A successful dial can race the listener close on some
		// platforms; what matters is the request fails.
		if _, err := client.Get("http://" + s.Addr + "/slow"); err == nil {
			t.Error("new request accepted during drain")
		}
	}

	close(release)
	if err := <-closed; err != nil {
		t.Fatalf("Close: %v", err)
	}
	res := <-scraped
	if res.err != nil {
		t.Fatalf("slow scrape failed during shutdown: %v", res.err)
	}
	if string(res.body) != `{"ok":true}` {
		t.Fatalf("scrape body truncated: %q", res.body)
	}

	// No goroutine leaks: the serve loop, the connection handler, and
	// the transport's connection goroutines must all wind down.
	tr.CloseIdleConnections()
	deadline := time.Now().Add(3 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after shutdown",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCloseForceClosesHungScrape verifies the fallback: a scrape that
// outlives CloseTimeout is cut off rather than hanging Close forever.
func TestCloseForceClosesHungScrape(t *testing.T) {
	if testing.Short() {
		t.Skip("waits out CloseTimeout")
	}
	entered := make(chan struct{})
	block := make(chan struct{}) // never closed: a truly hung handler
	mux := http.NewServeMux()
	mux.HandleFunc("/hang", func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		select {
		case <-block:
		case <-r.Context().Done():
		}
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &DebugServer{Addr: ln.Addr().String(), ln: ln, srv: &http.Server{Handler: mux}}
	go s.srv.Serve(ln)

	go func() { http.Get("http://" + s.Addr + "/hang") }() //nolint:errcheck
	<-entered

	start := time.Now()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if elapsed := time.Since(start); elapsed > CloseTimeout+2*time.Second {
		t.Fatalf("Close took %v, want ~CloseTimeout", elapsed)
	}
}
