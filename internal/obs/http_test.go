package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestDebugServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("engine/alignments").Add(11)
	reg.Histogram("engine/align_ns").Observe(time.Millisecond)
	jnl := NewJournal(16)
	for i := 0; i < 20; i++ { // overflow the ring so dropped > 0
		jnl.Record(EvAccept, -1, int32(i), int64(100+i))
	}

	srv, err := StartDebug("127.0.0.1:0", reg, jnl)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if !strings.HasPrefix(srv.Addr, "127.0.0.1:") {
		t.Fatalf("addr = %q, want localhost bind", srv.Addr)
	}

	get := func(path string) []byte {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	var snap Snapshot
	if err := json.Unmarshal(get("/metrics"), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["engine/alignments"] != 11 {
		t.Fatalf("metrics = %+v", snap.Counters)
	}
	if snap.Histograms["engine/align_ns"].Count != 1 {
		t.Fatalf("histograms = %+v", snap.Histograms)
	}

	var trace struct {
		Dropped uint64  `json:"dropped"`
		Events  []Event `json:"events"`
	}
	if err := json.Unmarshal(get("/trace?n=5"), &trace); err != nil {
		t.Fatal(err)
	}
	if len(trace.Events) != 5 {
		t.Fatalf("trace tail = %d events, want 5", len(trace.Events))
	}
	if trace.Dropped != 4 {
		t.Fatalf("dropped = %d, want 4", trace.Dropped)
	}
	if last := trace.Events[4]; last.R != 19 {
		t.Fatalf("tail not most-recent: %+v", last)
	}

	if body := get("/debug/pprof/cmdline"); len(body) == 0 {
		t.Fatal("pprof cmdline empty")
	}
}

func TestDebugServerDefaultHost(t *testing.T) {
	srv, err := StartDebug(":0", NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// Bare-port addresses must bind localhost, not all interfaces.
	if !strings.HasPrefix(srv.Addr, "127.0.0.1:") {
		t.Fatalf("addr = %q, want 127.0.0.1 default", srv.Addr)
	}
}
