package obs

import (
	"encoding/binary"
	"fmt"
)

// Stable binary encodings for Snapshot and []Event, so telemetry can be
// shipped between ranks, written to disk, and diffed: the same logical
// snapshot always encodes to the same bytes (map keys are sorted).
//
// Wire format (little-endian):
//
//	snapshot: magic "OBS1"
//	          u32 nCounters | (str name, i64 value)*
//	          u32 nGauges   | (str name, i64 value)*
//	          u32 nHists    | (str name, i64 count, i64 sum,
//	                           u32 nBuckets, i64*nBuckets)*
//	journal:  magic "OBJ2"
//	          u32 nEvents | (u64 seq, i64 at, u8 kind, i32 rank,
//	                         i64 r, i64 arg)*
//
// OBJ1 (i32 r) frames are still decoded — R sign-extends — so journals
// persisted before the widening remain readable.
//
// Decoders bound every length against the remaining input so hostile
// frames cannot force large allocations.

var (
	snapMagic     = [4]byte{'O', 'B', 'S', '1'}
	journalMagic  = [4]byte{'O', 'B', 'J', '2'}
	journalMagic1 = [4]byte{'O', 'B', 'J', '1'}
)

// maxName bounds one metric name; maxCount bounds one collection.
const (
	maxName  = 1 << 12
	maxCount = 1 << 20
)

func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendI64(b []byte, v int64) []byte  { return binary.LittleEndian.AppendUint64(b, uint64(v)) }

func appendStr(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}

// Encode renders the snapshot in the stable binary format.
func (s Snapshot) Encode() []byte {
	b := append([]byte(nil), snapMagic[:]...)
	b = appendU32(b, uint32(len(s.Counters)))
	for _, name := range sortedKeys(s.Counters) {
		b = appendStr(b, name)
		b = appendI64(b, s.Counters[name])
	}
	b = appendU32(b, uint32(len(s.Gauges)))
	for _, name := range sortedKeys(s.Gauges) {
		b = appendStr(b, name)
		b = appendI64(b, s.Gauges[name])
	}
	b = appendU32(b, uint32(len(s.Histograms)))
	for _, name := range sortedKeys(s.Histograms) {
		b = appendStr(b, name)
		h := s.Histograms[name]
		b = appendI64(b, h.Count)
		b = appendI64(b, h.Sum)
		b = appendU32(b, uint32(len(h.Buckets)))
		for _, v := range h.Buckets {
			b = appendI64(b, v)
		}
	}
	return b
}

// reader decodes the wire format with sticky errors and bounds checks.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("obs: "+format, args...)
	}
}

func (r *reader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	if r.off+4 > len(r.b) {
		r.fail("truncated input at offset %d", r.off)
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *reader) i64() int64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.b) {
		r.fail("truncated input at offset %d", r.off)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return int64(v)
}

func (r *reader) u8() uint8 {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.b) {
		r.fail("truncated input at offset %d", r.off)
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) str() string {
	n := int(r.u32())
	if r.err != nil {
		return ""
	}
	if n > maxName || r.off+n > len(r.b) {
		r.fail("string length %d exceeds input", n)
		return ""
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s
}

// count reads a collection length and sanity-bounds it against both the
// hard cap and the minimum bytes each element needs.
func (r *reader) count(minElemBytes int) int {
	n := int(r.u32())
	if r.err != nil {
		return 0
	}
	if n > maxCount || n*minElemBytes > len(r.b)-r.off {
		r.fail("collection length %d exceeds input", n)
		return 0
	}
	return n
}

func (r *reader) magic(want [4]byte) {
	if r.err != nil {
		return
	}
	if len(r.b) < 4 || [4]byte(r.b[:4]) != want {
		r.fail("bad magic")
		return
	}
	r.off = 4
}

// DecodeSnapshot parses the stable binary snapshot format.
func DecodeSnapshot(b []byte) (Snapshot, error) {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	r := &reader{b: b}
	r.magic(snapMagic)
	for i, n := 0, r.count(12); i < n && r.err == nil; i++ {
		name := r.str()
		s.Counters[name] = r.i64()
	}
	for i, n := 0, r.count(12); i < n && r.err == nil; i++ {
		name := r.str()
		s.Gauges[name] = r.i64()
	}
	for i, n := 0, r.count(24); i < n && r.err == nil; i++ {
		name := r.str()
		var h HistogramSnapshot
		h.Count = r.i64()
		h.Sum = r.i64()
		nb := r.count(8)
		if nb != HistogramBuckets {
			r.fail("histogram %q has %d buckets, want %d", name, nb, HistogramBuckets)
			break
		}
		for j := 0; j < nb; j++ {
			h.Buckets[j] = r.i64()
		}
		s.Histograms[name] = h
	}
	if r.err == nil && r.off != len(b) {
		r.fail("%d trailing bytes", len(b)-r.off)
	}
	return s, r.err
}

// EncodeEvents renders a journal slice in the stable binary format.
func EncodeEvents(events []Event) []byte {
	b := append([]byte(nil), journalMagic[:]...)
	b = appendU32(b, uint32(len(events)))
	for _, ev := range events {
		b = appendI64(b, int64(ev.Seq))
		b = appendI64(b, ev.At)
		b = append(b, byte(ev.Kind))
		b = appendU32(b, uint32(ev.Rank))
		b = appendI64(b, ev.R)
		b = appendI64(b, ev.Arg)
	}
	return b
}

// DecodeEvents parses the stable binary journal format. Both OBJ2
// (current, i64 R) and legacy OBJ1 (i32 R) frames are accepted.
func DecodeEvents(b []byte) ([]Event, error) {
	wideR := true
	if len(b) >= 4 && [4]byte(b[:4]) == journalMagic1 {
		wideR = false
	}
	r := &reader{b: b}
	if wideR {
		r.magic(journalMagic)
	} else {
		r.magic(journalMagic1)
	}
	minElem := 37
	if !wideR {
		minElem = 33
	}
	n := r.count(minElem)
	events := make([]Event, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		ev := Event{
			Seq:  uint64(r.i64()),
			At:   r.i64(),
			Kind: EventKind(r.u8()),
			Rank: int32(r.u32()),
		}
		if wideR {
			ev.R = r.i64()
		} else {
			ev.R = int64(int32(r.u32()))
		}
		ev.Arg = r.i64()
		if r.err == nil {
			events = append(events, ev)
		}
	}
	if r.err == nil && r.off != len(b) {
		r.fail("%d trailing bytes", len(b)-r.off)
	}
	return events, r.err
}
