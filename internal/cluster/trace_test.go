package cluster

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/seq"
	"repro/internal/stats"
	"repro/internal/topalign"
)

// TestClusterTraceEndToEnd runs a master and two workers over the real
// TCP transport with tracing on and checks the assembled trace: one
// cluster.run root on rank 0, dispatch spans for both slave ranks,
// slave-side job/kernel spans shipped back and re-based onto the
// master's timeline (skew-corrected via the heartbeat RTT), and a
// critical-path attribution that reconciles exactly with the root.
func TestClusterTraceEndToEnd(t *testing.T) {
	q := seq.SyntheticTitin(300, 2)
	want, err := topalign.Find(q.Codes, topCfg(8))
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	col := trace.NewCollector(0, 0)
	rec := col.Rec(trace.NewTraceID())

	addr := freeAddr(t)
	opts := mpi.DefaultTCPOptions()
	opts.AcceptTimeout = 5 * time.Second
	opts.HeartbeatInterval = 20 * time.Millisecond // RTT gauges for skew correction
	opts.Metrics = reg
	masterCh := make(chan mpi.Comm, 1)
	listenErr := make(chan error, 1)
	go func() {
		m, err := mpi.ListenTCPOpts(addr, 3, opts)
		if err != nil {
			listenErr <- err
			return
		}
		masterCh <- m
	}()
	time.Sleep(20 * time.Millisecond)

	var workers sync.WaitGroup
	for i := 0; i < 2; i++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			w, err := mpi.DialTCP(addr, 5*time.Second)
			if err != nil {
				t.Errorf("worker dial: %v", err)
				return
			}
			defer w.Close()
			err = RunSlaveOpts(w, SlaveOptions{Threads: 2, Metrics: reg})
			if err != nil && !errors.Is(err, ErrMasterDown) {
				t.Errorf("worker: %v", err)
			}
		}()
	}

	var master mpi.Comm
	select {
	case master = <-masterCh:
	case err := <-listenErr:
		t.Fatal(err)
	case <-time.After(5 * time.Second):
		t.Fatal("master did not start")
	}

	cfg := Config{
		Top: topalign.Config{
			Params:   proteinParams,
			NumTops:  8,
			Counters: &stats.Counters{},
		},
		Metrics: reg,
		Spans:   rec,
	}
	res, err := RunMaster(master, q.Codes, cfg)
	master.Close()
	workers.Wait()
	if err != nil {
		t.Fatal(err)
	}
	assertSameTops(t, res.Tops, want.Tops)

	spans, dropped, ok := col.Get(rec.TraceID())
	if !ok {
		t.Fatal("trace missing from the collector")
	}
	if dropped != 0 {
		t.Fatalf("%d spans dropped by the per-trace bound", dropped)
	}

	byID := map[trace.SpanID]trace.Span{}
	byName := map[string][]trace.Span{}
	ranks := map[int32]bool{}
	for _, sp := range spans {
		byID[sp.ID] = sp
		byName[sp.Name] = append(byName[sp.Name], sp)
		ranks[sp.Rank] = true
	}

	runs := byName["cluster.run"]
	if len(runs) != 1 {
		t.Fatalf("%d cluster.run spans, want 1", len(runs))
	}
	run := runs[0]
	if run.Rank != 0 || !run.Parent.IsZero() {
		t.Errorf("cluster.run = rank %d parent %s, want rank 0 root", run.Rank, run.Parent)
	}

	// Work from both slave ranks must appear in the one trace: the
	// dispatch span on the master and the shipped job/kernel spans.
	for _, rank := range []int32{1, 2} {
		if !ranks[rank] {
			t.Errorf("no spans from rank %d", rank)
		}
	}
	dispatchRanks := map[int32]int{}
	for _, sp := range byName["cluster.dispatch"] {
		dispatchRanks[sp.Rank]++
		if sp.Parent != run.ID {
			t.Errorf("cluster.dispatch not parented under cluster.run: %+v", sp)
		}
	}
	if dispatchRanks[1] == 0 || dispatchRanks[2] == 0 {
		t.Errorf("dispatch spans per rank = %v, want both ranks", dispatchRanks)
	}

	jobs := byName["slave.job"]
	if len(jobs) == 0 {
		t.Fatal("no slave.job spans shipped back")
	}
	for _, job := range jobs {
		parent, ok := byID[job.Parent]
		if !ok || parent.Name != "cluster.dispatch" {
			t.Fatalf("slave.job parent is %q, want cluster.dispatch", parent.Name)
		}
		if job.Rank != parent.Rank {
			t.Errorf("slave.job rank %d under dispatch to rank %d", job.Rank, parent.Rank)
		}
	}
	if len(byName["slave.kernel"]) == 0 {
		t.Fatal("no slave.kernel spans shipped back")
	}
	for _, k := range byName["slave.kernel"] {
		if p, ok := byID[k.Parent]; !ok || p.Name != "slave.job" {
			t.Errorf("slave.kernel not parented under slave.job: %+v", k)
		}
	}

	// Skew correction: re-based slave spans must land inside the run's
	// window (loopback one-way latency is the residual error; allow a
	// generous margin).
	const slack = int64(5 * time.Millisecond)
	for _, sp := range spans {
		if sp.Rank <= 0 {
			continue
		}
		if sp.Start < run.Start-slack || sp.End() > run.End()+slack {
			t.Errorf("slave span %q [%d, %d] outside run window [%d, %d]",
				sp.Name, sp.Start, sp.End(), run.Start, run.End())
		}
	}

	// The attribution must reconcile exactly against the root and see
	// both communication and kernel time.
	rpt, err := trace.AnalyzeCriticalPath(spans)
	if err != nil {
		t.Fatal(err)
	}
	if rpt.RootName != "cluster.run" {
		t.Fatalf("critical-path root = %q", rpt.RootName)
	}
	if rpt.SumNS != rpt.RootNS {
		t.Errorf("attribution sum %d != root %d", rpt.SumNS, rpt.RootNS)
	}
	cats := map[string]int64{}
	for _, e := range rpt.Entries {
		cats[e.Category] = e.NS
	}
	if cats[trace.CatComm] == 0 {
		t.Error("no time attributed to comm despite TCP dispatches")
	}
	if cats[trace.CatKernel] == 0 {
		t.Error("no time attributed to kernels")
	}
}

// TestLocalClusterTraced runs the in-process cluster (the serving
// layer's backend) with tracing on: the local transport has no
// heartbeat RTT, so re-basing uses offset = master now - slave now, and
// every slave span must still land inside the run window.
func TestLocalClusterTraced(t *testing.T) {
	q := seq.SyntheticTitin(150, 3)
	col := trace.NewCollector(0, 0)
	rec := col.Rec(trace.NewTraceID())
	res, err := RunLocal(q.Codes, Config{Top: topCfg(6), Spans: rec},
		LocalSpec{Slaves: 2, ThreadsPerSlave: 2})
	if err != nil {
		t.Fatal(err)
	}
	want, err := topalign.Find(q.Codes, topCfg(6))
	if err != nil {
		t.Fatal(err)
	}
	assertSameTops(t, res.Tops, want.Tops)

	spans, _, ok := col.Get(rec.TraceID())
	if !ok {
		t.Fatal("trace missing")
	}
	var run *trace.Span
	ranks := map[int32]bool{}
	for i, sp := range spans {
		ranks[sp.Rank] = true
		if sp.Name == "cluster.run" {
			run = &spans[i]
		}
	}
	if run == nil {
		t.Fatal("no cluster.run span")
	}
	if !ranks[1] || !ranks[2] {
		t.Fatalf("ranks seen = %v, want slave ranks 1 and 2", ranks)
	}
	const slack = int64(time.Millisecond)
	for _, sp := range spans {
		if sp.Rank <= 0 {
			continue
		}
		if sp.Start < run.Start-slack || sp.End() > run.End()+slack {
			t.Errorf("slave span %q [%d, %d] outside run window [%d, %d]",
				sp.Name, sp.Start, sp.End(), run.Start, run.End())
		}
	}
	rpt, err := trace.AnalyzeCriticalPath(spans)
	if err != nil {
		t.Fatal(err)
	}
	if rpt.SumNS != rpt.RootNS {
		t.Errorf("attribution sum %d != root %d", rpt.SumNS, rpt.RootNS)
	}
}
