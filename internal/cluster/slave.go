package cluster

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/align"
	"repro/internal/mpi"
	"repro/internal/multialign"
	"repro/internal/obs"
	"repro/internal/obs/attrib"
	"repro/internal/obs/trace"
	"repro/internal/scoring"
	"repro/internal/triangle"
)

// ErrMasterDown reports that a slave lost its master connection mid-run
// (as opposed to a clean stop). Workers may react by reconnecting and
// rejoining a still-running master under a fresh rank.
var ErrMasterDown = errors.New("cluster: master connection lost")

// rowRetryInterval is how long a slave waits for a requested original
// row before asking again (the reply may have been lost; duplicate
// replies are discarded by deliverRow).
const rowRetryInterval = 200 * time.Millisecond

// SlaveOptions configures a slave rank beyond its thread count.
type SlaveOptions struct {
	// Threads is the number of worker goroutines (minimum 1).
	Threads int
	// Metrics, when non-nil, receives slave telemetry: jobs served,
	// row-request counts and fetch latencies (cluster/row_fetch_ns).
	Metrics *obs.Registry
}

// RunSlave runs a slave rank: it waits for the master's setup, then
// serves alignment jobs with `threads` worker goroutines (>= 1) sharing
// one triangle replica and one original-row cache — one slave process
// per SMP node, several threads per process, as in the paper.
// It returns when the master sends stop or the connection drops.
func RunSlave(comm mpi.Comm, threads int) error {
	return RunSlaveOpts(comm, SlaveOptions{Threads: threads})
}

// RunSlaveOpts is RunSlave with explicit options.
func RunSlaveOpts(comm mpi.Comm, opts SlaveOptions) error {
	threads := opts.Threads
	if comm.Rank() == 0 {
		return fmt.Errorf("cluster: RunSlave called on rank 0")
	}
	if threads < 1 {
		threads = 1
	}
	msg, err := comm.Recv()
	if err != nil {
		return fmt.Errorf("cluster: waiting for setup: %w", err)
	}
	if msg.Tag == tagStop {
		return nil
	}
	if msg.Tag != tagSetup {
		return fmt.Errorf("cluster: expected setup, got tag %d", msg.Tag)
	}
	setup, err := decodeSetup(msg.Data)
	if err != nil {
		comm.Send(0, tagRefused, []byte(err.Error()))
		return err
	}
	sl, err := newSlave(comm, setup)
	if err != nil {
		comm.Send(0, tagRefused, []byte(err.Error()))
		return err
	}
	sl.reg = opts.Metrics
	return sl.run(threads)
}

// replicaState is the atomically-published triangle replica.
type replicaState struct {
	tri     *triangle.Triangle
	version int
}

type slave struct {
	comm    mpi.Comm
	s       []byte
	params  align.Params
	lanes   int
	striped bool
	reg     *obs.Registry

	// Tracing: when the setup carries a non-zero trace ID, each job
	// records slave.job/slave.kernel/slave.row_fetch spans with Start
	// times on the slave's own monotonic timeline (ns since epoch) and
	// ships them back inside the result for the master to re-base.
	trace trace.TraceID
	epoch time.Time

	replica atomic.Pointer[replicaState]
	rows    *triangle.RowStore // cache of original rows

	jobs chan msgJob
	quit chan struct{} // closed when the receive loop exits

	mu         sync.Mutex
	rowWaiters map[int]chan []int32
}

func newSlave(comm mpi.Comm, setup msgSetup) (*slave, error) {
	exch, ok := scoring.ByName(setup.Matrix)
	if !ok {
		return nil, fmt.Errorf("cluster: unknown exchange matrix %q", setup.Matrix)
	}
	if len(setup.Seq) < 2 {
		return nil, fmt.Errorf("cluster: sequence too short (%d)", len(setup.Seq))
	}
	for i, c := range setup.Seq {
		if int(c) >= exch.Alphabet().Len() {
			return nil, fmt.Errorf("cluster: residue code %d at %d out of range", c, i)
		}
	}
	p := align.Params{Exch: exch, Gap: scoring.Gap{Open: setup.GapOpen, Ext: setup.GapExt}}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	lanes := int(setup.Lanes)
	if lanes == 0 {
		lanes = 1
	}
	if lanes != 1 && lanes != 4 && lanes != 8 && lanes != 16 {
		return nil, fmt.Errorf("cluster: invalid lane count %d", lanes)
	}
	sl := &slave{
		comm:       comm,
		s:          setup.Seq,
		params:     p,
		lanes:      lanes,
		striped:    setup.Striped,
		trace:      setup.Trace,
		epoch:      time.Now(),
		rows:       triangle.NewRowStore(len(setup.Seq)),
		quit:       make(chan struct{}),
		rowWaiters: make(map[int]chan []int32),
	}
	sl.replica.Store(&replicaState{tri: triangle.New(len(setup.Seq)), version: 0})
	return sl, nil
}

// run is the slave's receive loop plus worker pool.
func (sl *slave) run(threads int) error {
	// The master assigns at most one job per advertised worker slot, so a
	// buffer of `threads` guarantees the receive loop never blocks on the
	// job channel while workers wait for row replies it must deliver.
	sl.jobs = make(chan msgJob, threads)
	var wg sync.WaitGroup
	errCh := make(chan error, threads)
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker thread owns its kernel scratch, so a warm
			// slave aligns without per-job allocation.
			sc := &workScratch{}
			for job := range sl.jobs {
				if err := sl.work(job, sc); err != nil {
					errCh <- err
					return
				}
			}
		}()
		if err := sl.comm.Send(0, tagReady, nil); err != nil {
			close(sl.jobs)
			wg.Wait()
			return err
		}
	}

	var loopErr error
recv:
	for {
		select {
		case loopErr = <-errCh:
			break recv
		default:
		}
		msg, err := sl.comm.Recv()
		if err != nil {
			loopErr = err
			break
		}
		switch msg.Tag {
		case tagJob:
			job, err := decodeJob(msg.Data)
			if err != nil {
				loopErr = err
				break recv
			}
			sl.jobs <- job
		case tagTop:
			upd, err := decodeTop(msg.Data)
			if err != nil {
				loopErr = err
				break recv
			}
			sl.applyTop(upd)
		case tagRow:
			row, err := decodeRow(msg.Data)
			if err != nil {
				loopErr = err
				break recv
			}
			sl.deliverRow(int(row.R), row.Row)
		case tagStop:
			break recv
		case mpi.TagDown:
			// Only the master's death ends the run; with the local
			// transport a sibling slave's death is also broadcast here
			// and must be ignored.
			if msg.From == 0 {
				loopErr = ErrMasterDown
				break recv
			}
		default:
			loopErr = fmt.Errorf("cluster: slave got unexpected tag %d", msg.Tag)
			break recv
		}
	}
	close(sl.jobs)
	close(sl.quit)
	// unblock any worker waiting for a row
	sl.mu.Lock()
	for r, ch := range sl.rowWaiters {
		close(ch)
		delete(sl.rowWaiters, r)
	}
	sl.mu.Unlock()
	wg.Wait()
	if loopErr == mpi.ErrClosed {
		loopErr = nil
	}
	return loopErr
}

// applyTop folds a broadcast top alignment into a fresh replica and
// publishes it. Workers mid-alignment keep the snapshot they started
// with; their results carry the old version, which the master treats as
// the stale upper bound it is.
func (sl *slave) applyTop(upd msgTop) {
	cur := sl.replica.Load()
	tri := cur.tri.Clone()
	for i := range upd.PairsI {
		tri.Set(int(upd.PairsI[i]), int(upd.PairsJ[i]))
	}
	sl.replica.Store(&replicaState{tri: tri, version: int(upd.Version)})
}

// deliverRow routes a fetched original row to the waiting worker.
func (sl *slave) deliverRow(r int, row []int32) {
	sl.mu.Lock()
	ch := sl.rowWaiters[r]
	delete(sl.rowWaiters, r)
	sl.mu.Unlock()
	if ch != nil {
		ch <- row
	}
}

// origRow returns the original bottom row for split r, fetching it from
// the master on a cache miss. Fetch latency (request to delivery,
// including any re-requests) lands in the cluster/row_fetch_ns
// histogram, and in a slave.row_fetch span when the job is traced — a
// cache hit records neither, so the span count stays proportional to
// actual communication.
func (sl *slave) origRow(r int, sc *workScratch) ([]int32, error) {
	if row, ok := sl.rows.Get(r); ok {
		return row, nil
	}
	sl.reg.Counter("cluster/row_requests").Inc()
	fetchStart := time.Now()
	spanStart := sl.now()
	ch := make(chan []int32, 1)
	sl.mu.Lock()
	sl.rowWaiters[r] = ch
	sl.mu.Unlock()
	if err := sl.comm.Send(0, tagRowReq, msgRow{R: int32(r)}.encode()); err != nil {
		return nil, err
	}
	var row []int32
	timer := time.NewTimer(rowRetryInterval)
	defer timer.Stop()
wait:
	for {
		select {
		case got, ok := <-ch:
			if !ok {
				return nil, mpi.ErrClosed
			}
			row = got
			break wait
		case <-timer.C:
			// The reply may have been dropped; ask again.
			if err := sl.comm.Send(0, tagRowReq, msgRow{R: int32(r)}.encode()); err != nil {
				return nil, err
			}
			timer.Reset(rowRetryInterval)
		case <-sl.quit:
			// Receive loop is gone; no reply can ever arrive.
			return nil, mpi.ErrClosed
		}
	}
	if len(row) != len(sl.s)-r {
		return nil, fmt.Errorf("cluster: master sent row for split %d with %d entries, want %d",
			r, len(row), len(sl.s)-r)
	}
	sl.reg.Histogram("cluster/row_fetch_ns").Observe(time.Since(fetchStart))
	sc.span("slave.row_fetch", spanStart, sl.now()-spanStart)
	sl.rows.Put(r, row)
	return row, nil
}

// now returns the slave's local monotonic time in nanoseconds.
func (sl *slave) now() int64 { return time.Since(sl.epoch).Nanoseconds() }

// workScratch bundles the kernel arenas one slave worker thread owns,
// plus the thread's span buffer for the job in progress. traced and job
// are set per job by work; the kernel and row-fetch paths append child
// spans without further coordination because one thread owns them.
type workScratch struct {
	a align.Scratch
	g multialign.Scratch

	traced bool
	job    trace.SpanID // current slave.job span, parent for children
	spans  []trace.Span
}

// span appends a completed child span of the current job (no-op when
// the job is untraced). start is slave-local time from sl.now().
func (sc *workScratch) span(name string, start, dur int64) {
	if !sc.traced {
		return
	}
	sc.spans = append(sc.spans, trace.Span{
		ID:     trace.NewSpanID(),
		Parent: sc.job,
		Name:   name,
		Start:  start,
		Dur:    dur,
	})
}

// work executes one job and reports the result. Job latency (kernel
// plus any row fetch) lands in the per-rank cluster/job_ns histogram;
// the pure kernel time additionally travels back in the result's
// AlignNS so the master can fold it into the engine's per-alignment
// align_ns histogram.
func (sl *slave) work(job msgJob, sc *workScratch) error {
	rank := sl.comm.Rank()
	sl.reg.Counter(fmt.Sprintf("cluster/jobs_done/rank%d", rank)).Inc()
	if sl.reg != nil {
		defer func(t0 time.Time) {
			sl.reg.Histogram(fmt.Sprintf("cluster/job_ns/rank%d", rank)).Observe(time.Since(t0))
		}(time.Now())
	}
	// Attribution: pin the thread for the job and meter its CPU. The
	// thread clock stands still during row-fetch waits, so CPUNanos is
	// pure compute — the master folds it into the request's Usage.
	var cpu attrib.Stopwatch
	cpu.Start()
	sc.traced = !sl.trace.IsZero() && !job.Span.IsZero()
	sc.spans = sc.spans[:0]
	var jobStart int64
	if sc.traced {
		sc.job = trace.NewSpanID()
		jobStart = sl.now()
	}
	m := len(sl.s)
	r0 := int(job.R)
	members := 1
	if sl.lanes > 1 {
		members = min(sl.lanes, m-r0)
	}
	res := msgResult{R: job.R, First: job.First, Scores: make([]int32, members)}

	var tri *triangle.Triangle
	if job.First {
		res.Version = 0
		res.Rows = make([][]int32, members)
	} else {
		rep := sl.replica.Load()
		tri, res.Version = rep.tri, int32(rep.version)
	}

	if sl.lanes > 1 {
		if err := sl.workGroup(r0, members, tri, &res, sc); err != nil {
			return err
		}
	} else {
		if err := sl.workScalar(r0, tri, &res, sc); err != nil {
			return err
		}
	}
	if sc.traced {
		// Close the job span, stamp identity onto the batch, and ship it
		// with the result. SlaveNow is sampled as late as possible so the
		// master's half-RTT re-basing starts from the freshest timestamp.
		sc.spans = append(sc.spans, trace.Span{
			ID:     sc.job,
			Parent: job.Span,
			Name:   "slave.job",
			Start:  jobStart,
			Dur:    sl.now() - jobStart,
			Arg:    int64(job.R),
		})
		for i := range sc.spans {
			sc.spans[i].Trace = sl.trace
			sc.spans[i].Rank = int32(rank)
		}
		res.SlaveNow = sl.now()
		res.Spans = trace.EncodeSpans(sc.spans)
	}
	res.CPUNanos = cpu.Stop()
	return sl.comm.Send(0, tagResult, res.encode())
}

func (sl *slave) workScalar(r int, tri *triangle.Triangle, res *msgResult, sc *workScratch) error {
	s1, s2 := sl.s[:r], sl.s[r:]
	t0 := sl.now()
	row := sl.score(s1, s2, tri, r, sc)
	kns := sl.now() - t0
	res.AlignNS += kns
	res.Tier = uint8(multialign.TierScalar)
	sc.span("slave.kernel", t0, kns)
	if res.First {
		sl.rows.Put(r, row) // Put copies; row is scratch-owned
		res.Rows[0] = row   // encoded before the scratch is reused
		_, res.Scores[0], _ = align.BestValidEnd(row, nil)
		return nil
	}
	orig, err := sl.origRow(r, sc)
	if err != nil {
		return err
	}
	_, res.Scores[0], _ = align.BestValidEnd(row, orig)
	return nil
}

func (sl *slave) workGroup(r0, members int, tri *triangle.Triangle, res *msgResult, sc *workScratch) error {
	t0 := sl.now()
	g, err := sc.g.ScoreGroupAuto(sl.params, sl.s, r0, sl.lanes, tri)
	kns := sl.now() - t0
	res.AlignNS += kns
	if err == nil {
		sc.span("slave.kernel", t0, kns)
		res.Tier, res.Rerun = uint8(g.Tier), g.Rerun
	} else {
		res.Tier = uint8(multialign.TierScalar)
	}
	if err != nil {
		// scalar fallback per member
		for i := 0; i < members; i++ {
			r := r0 + i
			s1, s2 := sl.s[:r], sl.s[r:]
			t0 := sl.now()
			row := sl.score(s1, s2, tri, r, sc)
			kns := sl.now() - t0
			res.AlignNS += kns
			sc.span("slave.kernel", t0, kns)
			if res.First {
				sl.rows.Put(r, row)
				// copy: the next member's kernel call reuses the arena
				// this row points into
				res.Rows[i] = append([]int32(nil), row...)
				_, res.Scores[i], _ = align.BestValidEnd(row, nil)
				continue
			}
			orig, err := sl.origRow(r, sc)
			if err != nil {
				return err
			}
			_, res.Scores[i], _ = align.BestValidEnd(row, orig)
		}
		return nil
	}
	for i := 0; i < members; i++ {
		r := r0 + i
		row := g.Bottoms[i]
		if res.First {
			sl.rows.Put(r, row) // Put copies; row is scratch-owned
			res.Rows[i] = row   // encoded before the scratch is reused
			_, res.Scores[i], _ = align.BestValidEnd(row, nil)
			continue
		}
		orig, err := sl.origRow(r, sc)
		if err != nil {
			return err
		}
		_, res.Scores[i], _ = align.BestValidEnd(row, orig)
	}
	return nil
}

// score dispatches to the configured scalar kernel, using the worker's
// scratch. The returned row is scratch-owned.
func (sl *slave) score(s1, s2 []byte, tri *triangle.Triangle, r int, sc *workScratch) []int32 {
	if sl.striped {
		return sc.a.ScoreStriped(sl.params, s1, s2, tri, r, 0)
	}
	return sc.a.ScoreMasked(sl.params, s1, s2, tri, r)
}
