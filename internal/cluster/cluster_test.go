package cluster

import (
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/align"
	"repro/internal/mpi"
	"repro/internal/scoring"
	"repro/internal/seq"
	"repro/internal/topalign"
)

var proteinParams = align.Params{Exch: scoring.BLOSUM62, Gap: scoring.DefaultProteinGap}

func topCfg(tops int) topalign.Config {
	return topalign.Config{Params: proteinParams, NumTops: tops}
}

// Strict-mode cluster runs must be bit-identical to the sequential
// algorithm, for various cluster shapes.
func TestClusterStrictMatchesSequential(t *testing.T) {
	q := seq.SyntheticTitin(150, 3)
	want, err := topalign.Find(q.Codes, topCfg(6))
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []LocalSpec{
		{Slaves: 1, ThreadsPerSlave: 1},
		{Slaves: 1, ThreadsPerSlave: 2},
		{Slaves: 3, ThreadsPerSlave: 1},
		{Slaves: 4, ThreadsPerSlave: 2},
	} {
		got, err := RunLocal(q.Codes, Config{Top: topCfg(6)}, spec)
		if err != nil {
			t.Fatalf("%+v: %v", spec, err)
		}
		assertSameTops(t, got.Tops, want.Tops)
	}
}

func TestClusterGroupMode(t *testing.T) {
	q := seq.SyntheticTitin(120, 5)
	cfg := topalign.Config{Params: proteinParams, NumTops: 5, GroupLanes: 4}
	want, err := topalign.Find(q.Codes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunLocal(q.Codes, Config{Top: cfg}, LocalSpec{Slaves: 2, ThreadsPerSlave: 2})
	if err != nil {
		t.Fatal(err)
	}
	assertSameTops(t, got.Tops, want.Tops)
}

func TestClusterSpeculativeInvariants(t *testing.T) {
	q := seq.SyntheticTitin(160, 7)
	res, err := RunLocal(q.Codes, Config{Top: topCfg(8), Speculative: true},
		LocalSpec{Slaves: 3, ThreadsPerSlave: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tops) != 8 {
		t.Fatalf("got %d tops, want 8", len(res.Tops))
	}
	seen := map[topalign.Pair]bool{}
	for _, top := range res.Tops {
		if top.Score <= 0 {
			t.Errorf("top %d score %d", top.Index, top.Score)
		}
		for _, p := range top.Pairs {
			if seen[p] {
				t.Fatalf("pair %v reused", p)
			}
			seen[p] = true
		}
	}
}

func TestClusterMinScore(t *testing.T) {
	q := seq.Random(seq.Protein, 90, 2)
	cfg := topalign.Config{Params: proteinParams, NumTops: 10, MinScore: 10000}
	res, err := RunLocal(q.Codes, Config{Top: cfg}, LocalSpec{Slaves: 2, ThreadsPerSlave: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tops) != 0 {
		t.Errorf("got %d tops despite impossible MinScore", len(res.Tops))
	}
}

func TestClusterValidation(t *testing.T) {
	s := seq.DNA.MustEncode("ACGTACGT")
	if _, err := RunLocal(s, Config{Top: topCfg(1)}, LocalSpec{Slaves: 0}); err == nil {
		t.Error("zero slaves accepted")
	}
	if _, err := RunLocal(s, Config{Top: topalign.Config{}}, LocalSpec{Slaves: 1}); err == nil {
		t.Error("invalid topalign config accepted")
	}
}

// Failure injection: killing a slave mid-run must not lose tasks — the
// master requeues them and the run completes on the surviving slaves
// with correct results.
func TestClusterSlaveDeathRecovers(t *testing.T) {
	q := seq.SyntheticTitin(140, 9)
	want, err := topalign.Find(q.Codes, topCfg(5))
	if err != nil {
		t.Fatal(err)
	}

	world := mpi.NewLocal(4) // master + 3 slaves
	var wg sync.WaitGroup
	for i := 1; i <= 2; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer world[rank].Close()
			RunSlave(world[rank], 1)
		}(i)
	}
	// slave 3 dies after its first few jobs
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := world[3]
		msg, err := c.Recv() // setup
		if err != nil || msg.Tag != tagSetup {
			c.Close()
			return
		}
		c.Send(0, tagReady, nil)
		// take one job, never answer, then die
		for {
			msg, err = c.Recv()
			if err != nil {
				return
			}
			if msg.Tag == tagJob {
				c.Close()
				return
			}
			if msg.Tag == tagStop {
				c.Close()
				return
			}
		}
	}()

	got, err := RunMaster(world[0], q.Codes, Config{Top: topCfg(5)})
	world[0].Close()
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	assertSameTops(t, got.Tops, want.Tops)
}

// All slaves dying must not abort (or hang) the run: the master
// finishes the remaining queue with its own engine and the results
// still match the sequential algorithm exactly.
func TestClusterAllSlavesDie(t *testing.T) {
	q := seq.SyntheticTitin(60, 1)
	want, err := topalign.Find(q.Codes, topCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	world := mpi.NewLocal(2)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := world[1]
		if msg, err := c.Recv(); err != nil || msg.Tag != tagSetup {
			c.Close()
			return
		}
		c.Send(0, tagReady, nil)
		if msg, err := c.Recv(); err == nil && msg.Tag == tagJob {
			c.Close() // die holding the job
			return
		}
		c.Close()
	}()
	got, err := RunMaster(world[0], q.Codes, Config{Top: topCfg(3)})
	world[0].Close()
	wg.Wait()
	if err != nil {
		t.Fatalf("master did not fall back locally: %v", err)
	}
	assertSameTops(t, got.Tops, want.Tops)
}

// The same protocol over the TCP transport: a 3-rank world on loopback.
func TestClusterOverTCP(t *testing.T) {
	q := seq.SyntheticTitin(100, 4)
	want, err := topalign.Find(q.Codes, topCfg(4))
	if err != nil {
		t.Fatal(err)
	}

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	masterCh := make(chan mpi.Comm, 1)
	errCh := make(chan error, 1)
	go func() {
		m, err := mpi.ListenTCP(addr, 3, 5*time.Second)
		if err != nil {
			errCh <- err
			return
		}
		masterCh <- m
	}()
	time.Sleep(50 * time.Millisecond)

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w, err := mpi.DialTCP(addr, 5*time.Second)
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer w.Close()
			if err := RunSlave(w, 2); err != nil {
				t.Errorf("slave: %v", err)
			}
		}()
	}
	var master mpi.Comm
	select {
	case master = <-masterCh:
	case err := <-errCh:
		t.Fatal(err)
	case <-time.After(5 * time.Second):
		t.Fatal("master did not start")
	}
	got, err := RunMaster(master, q.Codes, Config{Top: topCfg(4)})
	master.Close()
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	assertSameTops(t, got.Tops, want.Tops)
}

func TestMessageRoundTrips(t *testing.T) {
	setup := msgSetup{Seq: []byte{1, 2, 3}, Matrix: "BLOSUM62", GapOpen: 10, GapExt: 1, MinScore: 1, Lanes: 4, Striped: true}
	s2, err := decodeSetup(setup.encode())
	if err != nil {
		t.Fatal(err)
	}
	if string(s2.Seq) != string(setup.Seq) || s2.Matrix != setup.Matrix ||
		s2.GapOpen != 10 || s2.GapExt != 1 || s2.Lanes != 4 || !s2.Striped {
		t.Errorf("setup round trip: %+v", s2)
	}

	job := msgJob{R: 42, First: true}
	j2, err := decodeJob(job.encode())
	if err != nil || j2 != job {
		t.Errorf("job round trip: %+v, %v", j2, err)
	}

	res := msgResult{R: 7, Version: 3, First: true,
		Scores: []int32{10, -2, 0}, Rows: [][]int32{{1, 2}, {3}, {}}}
	r2, err := decodeResult(res.encode())
	if err != nil {
		t.Fatal(err)
	}
	if r2.R != 7 || r2.Version != 3 || !r2.First || len(r2.Scores) != 3 || r2.Scores[1] != -2 ||
		len(r2.Rows) != 3 || len(r2.Rows[0]) != 2 || r2.Rows[0][1] != 2 {
		t.Errorf("result round trip: %+v", r2)
	}

	top := msgTop{Version: 2, PairsI: []int32{1, 2}, PairsJ: []int32{5, 6}}
	t2, err := decodeTop(top.encode())
	if err != nil || len(t2.PairsI) != 2 || t2.PairsJ[1] != 6 {
		t.Errorf("top round trip: %+v, %v", t2, err)
	}

	row := msgRow{R: 9, Row: []int32{4, 5, 6}}
	w2, err := decodeRow(row.encode())
	if err != nil || w2.R != 9 || len(w2.Row) != 3 {
		t.Errorf("row round trip: %+v, %v", w2, err)
	}
}

func TestMessageDecodeErrors(t *testing.T) {
	if _, err := decodeSetup([]byte{1, 2}); err == nil {
		t.Error("truncated setup accepted")
	}
	if _, err := decodeResult([]byte{0}); err == nil {
		t.Error("truncated result accepted")
	}
	bad := msgTop{Version: 1, PairsI: []int32{1}, PairsJ: []int32{2, 3}}
	if _, err := decodeTop(bad.encode()); err == nil {
		t.Error("mismatched pair lengths accepted")
	}
}

func assertSameTops(t *testing.T, got, want []topalign.TopAlignment) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d tops, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Score != want[i].Score || got[i].Split != want[i].Split {
			t.Fatalf("top %d = (split %d, score %d), want (split %d, score %d)",
				i+1, got[i].Split, got[i].Score, want[i].Split, want[i].Score)
		}
		for j := range want[i].Pairs {
			if got[i].Pairs[j] != want[i].Pairs[j] {
				t.Fatalf("top %d pair %d differs", i+1, j)
			}
		}
	}
}
