package cluster

import (
	"math/rand/v2"
	"testing"
)

// Decoders must reject or cleanly parse arbitrary bytes — never panic —
// since in the TCP deployment they face whatever arrives on the socket.
func TestDecodersNeverPanic(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 7))
	decoders := []func([]byte){
		func(b []byte) { _, _ = decodeSetup(b) },
		func(b []byte) { _, _ = decodeJob(b) },
		func(b []byte) { _, _ = decodeResult(b) },
		func(b []byte) { _, _ = decodeTop(b) },
		func(b []byte) { _, _ = decodeRow(b) },
	}
	for trial := 0; trial < 3000; trial++ {
		n := r.IntN(64)
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = byte(r.IntN(256))
		}
		for _, dec := range decoders {
			dec(buf)
		}
	}
	// adversarial: huge length prefixes
	huge := []byte{0xFF, 0xFF, 0xFF, 0x7F, 1, 2, 3}
	for _, dec := range decoders {
		dec(huge)
	}
}

// Truncations of valid messages must error rather than mis-parse into
// something that passes validation downstream.
func TestTruncatedMessagesError(t *testing.T) {
	full := msgResult{R: 3, Version: 1, First: true,
		Scores: []int32{5, 6}, Rows: [][]int32{{1, 2, 3}, {4}}}.encode()
	for cut := 0; cut < len(full); cut++ {
		if _, err := decodeResult(full[:cut]); err == nil {
			t.Errorf("truncation at %d bytes decoded without error", cut)
		}
	}
}
