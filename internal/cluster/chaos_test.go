package cluster

import (
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/mpi"
	"repro/internal/mpi/faultcomm"
	"repro/internal/seq"
	"repro/internal/topalign"
)

// The flagship chaos run: four slaves where one crashes mid-run
// (KillAfterSends), one straggles — its results are delayed past the
// master's TaskTimeout, forcing speculative re-dispatch and duplicate
// deduplication — and two lose 1% of the original-row replies they
// asked for (recovered by the slave's row re-request timer). Strict
// mode must still produce top alignments bit-identical to the
// sequential algorithm.
func TestClusterChaosStrictBitIdentical(t *testing.T) {
	q := seq.SyntheticTitin(120, 3)
	want, err := topalign.Find(q.Codes, topCfg(5))
	if err != nil {
		t.Fatal(err)
	}

	world := mpi.NewLocal(5)
	faults := []faultcomm.Config{
		{Seed: 11, KillAfterSends: 25},
		{Seed: 22, DelaySend: []faultcomm.Rule{{Tag: tagResult, Prob: 0.05, Delay: 250 * time.Millisecond}}},
		{Seed: 33, DropRecv: []faultcomm.Rule{{Tag: tagRow, Prob: 0.01}}},
		{Seed: 44, DropRecv: []faultcomm.Rule{{Tag: tagRow, Prob: 0.01}}},
	}
	var wg sync.WaitGroup
	for i, fc := range faults {
		comm := faultcomm.Wrap(world[i+1], fc)
		wg.Add(1)
		go func(rank int, c mpi.Comm) {
			defer wg.Done()
			defer c.Close()
			// The killed slave exits via ErrClosed (mapped to nil); the
			// others must run clean or merely lose the master at shutdown.
			if err := RunSlave(c, 1); err != nil && !errors.Is(err, ErrMasterDown) {
				t.Errorf("slave %d: %v", rank, err)
			}
		}(i+1, comm)
	}
	got, err := RunMaster(world[0], q.Codes,
		Config{Top: topCfg(5), TaskTimeout: 100 * time.Millisecond})
	world[0].Close()
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	assertSameTops(t, got.Tops, want.Tops)
}

// All slaves crash mid-run at different points: the master must notice
// each death, requeue the orphaned tasks, and finish the whole queue
// with its own engine — still bit-identical in strict mode.
func TestClusterChaosAllSlavesDieFallsBack(t *testing.T) {
	q := seq.SyntheticTitin(90, 2)
	want, err := topalign.Find(q.Codes, topCfg(4))
	if err != nil {
		t.Fatal(err)
	}

	world := mpi.NewLocal(4)
	var wg sync.WaitGroup
	for i, kill := range []int{5, 9, 13} {
		comm := faultcomm.Wrap(world[i+1], faultcomm.Config{Seed: uint64(i + 1), KillAfterSends: kill})
		wg.Add(1)
		go func(c mpi.Comm) {
			defer wg.Done()
			defer c.Close()
			RunSlave(c, 1) // dies by design
		}(comm)
	}
	got, err := RunMaster(world[0], q.Codes, Config{Top: topCfg(4)})
	world[0].Close()
	wg.Wait()
	if err != nil {
		t.Fatalf("master did not fall back locally: %v", err)
	}
	assertSameTops(t, got.Tops, want.Tops)
}

// Every result is transmitted twice: the master must drop the second
// copy without minting a phantom idle slot for it (which would
// over-dispatch past the slave's thread count), and strict-mode results
// must be unchanged.
func TestClusterDuplicateResultsDeduped(t *testing.T) {
	q := seq.SyntheticTitin(100, 2)
	want, err := topalign.Find(q.Codes, topCfg(4))
	if err != nil {
		t.Fatal(err)
	}

	world := mpi.NewLocal(3)
	var wg sync.WaitGroup
	for i := 1; i <= 2; i++ {
		comm := faultcomm.Wrap(world[i], faultcomm.Config{
			Seed:    uint64(i),
			DupSend: []faultcomm.Rule{{Tag: tagResult, Prob: 1}},
		})
		wg.Add(1)
		go func(rank int, c mpi.Comm) {
			defer wg.Done()
			defer c.Close()
			if err := RunSlave(c, 1); err != nil && !errors.Is(err, ErrMasterDown) {
				t.Errorf("slave %d: %v", rank, err)
			}
		}(i, comm)
	}
	got, err := RunMaster(world[0], q.Codes, Config{Top: topCfg(4)})
	world[0].Close()
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	assertSameTops(t, got.Tops, want.Tops)
}

// A slave that rejects the setup must fail the run with a diagnostic
// naming the refusal, and the master must release the slave with stop.
func TestClusterRefusedSetupFailsRun(t *testing.T) {
	q := seq.SyntheticTitin(60, 1)
	world := mpi.NewLocal(2)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := world[1]
		defer c.Close()
		msg, err := c.Recv()
		if err != nil || msg.Tag != tagSetup {
			t.Errorf("fake slave: expected setup, got %+v (%v)", msg, err)
			return
		}
		c.Send(0, tagRefused, []byte("no such matrix"))
		for {
			msg, err := c.Recv()
			if err != nil || msg.Tag == tagStop {
				return
			}
			_ = msg
		}
	}()
	_, err := RunMaster(world[0], q.Codes, Config{Top: topCfg(2)})
	world[0].Close()
	wg.Wait()
	if err == nil || !strings.Contains(err.Error(), "refused") {
		t.Fatalf("master error = %v, want setup refusal", err)
	}
}

// When the master aborts on a protocol error it must broadcast stop so
// healthy slaves exit cleanly instead of hanging on Recv.
func TestClusterMasterErrorBroadcastsStop(t *testing.T) {
	q := seq.SyntheticTitin(60, 1)
	world := mpi.NewLocal(3)
	slaveErr := make(chan error, 1)
	go func() { // healthy slave, rank 1
		defer world[1].Close()
		slaveErr <- RunSlave(world[1], 1)
	}()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // rogue slave, rank 2: speaks an unknown application tag
		defer wg.Done()
		c := world[2]
		defer c.Close()
		msg, err := c.Recv()
		if err != nil || msg.Tag != tagSetup {
			return
		}
		c.Send(0, tagReady, nil)
		c.Send(0, 200, nil)
		for {
			if msg, err := c.Recv(); err != nil || msg.Tag == tagStop {
				return
			} else {
				_ = msg
			}
		}
	}()
	_, err := RunMaster(world[0], q.Codes, Config{Top: topCfg(2)})
	if err == nil {
		t.Fatal("master accepted an unexpected tag")
	}
	select {
	case serr := <-slaveErr:
		if serr != nil && !errors.Is(serr, ErrMasterDown) {
			t.Errorf("healthy slave exited with %v, want clean stop", serr)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("healthy slave did not stop after master error")
	}
	world[0].Close()
	wg.Wait()
}

// recvErrComm delegates to an inner Comm but fails Recv after a fixed
// number of deliveries, while Send keeps working — modelling a master
// whose receive path breaks but can still reach its slaves.
type recvErrComm struct {
	mpi.Comm
	after int
	n     int
}

func (c *recvErrComm) Recv() (mpi.Message, error) {
	if c.n >= c.after {
		return mpi.Message{}, errors.New("injected recv failure")
	}
	c.n++
	return c.Comm.Recv()
}

// A master whose Recv fails mid-run must broadcast stop before
// returning the error, so slaves exit cleanly instead of hanging.
func TestClusterMasterRecvErrorBroadcastsStop(t *testing.T) {
	q := seq.SyntheticTitin(60, 1)
	world := mpi.NewLocal(2)
	slaveErr := make(chan error, 1)
	go func() {
		defer world[1].Close()
		slaveErr <- RunSlave(world[1], 1)
	}()
	_, err := RunMaster(&recvErrComm{Comm: world[0], after: 3}, q.Codes, Config{Top: topCfg(2)})
	if err == nil || !strings.Contains(err.Error(), "injected recv failure") {
		t.Fatalf("master error = %v, want injected recv failure", err)
	}
	select {
	case serr := <-slaveErr:
		if serr != nil && !errors.Is(serr, ErrMasterDown) {
			t.Errorf("slave exited with %v, want clean stop", serr)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("slave did not stop after master recv error")
	}
	world[0].Close()
}

// End-to-end rejoin over TCP: one worker crashes mid-run and a
// replacement process dials the still-listening master, which
// provisions it (setup + accepted-top replay) and puts it to work. The
// run completes with exact results.
func TestClusterTCPWorkerRejoin(t *testing.T) {
	q := seq.SyntheticTitin(120, 4)
	want, err := topalign.Find(q.Codes, topCfg(5))
	if err != nil {
		t.Fatal(err)
	}

	addr := freeAddr(t)
	opts := mpi.DefaultTCPOptions()
	opts.AcceptTimeout = 5 * time.Second
	masterCh := make(chan mpi.Comm, 1)
	errCh := make(chan error, 1)
	go func() {
		m, err := mpi.ListenTCPOpts(addr, 3, opts)
		if err != nil {
			errCh <- err
			return
		}
		masterCh <- m
	}()
	time.Sleep(50 * time.Millisecond)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // healthy worker
		defer wg.Done()
		w, err := mpi.DialTCP(addr, 5*time.Second)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		defer w.Close()
		if err := RunSlave(w, 1); err != nil && !errors.Is(err, ErrMasterDown) {
			t.Errorf("healthy worker: %v", err)
		}
	}()
	wg.Add(1)
	go func() { // crashing worker, then its replacement
		defer wg.Done()
		w, err := mpi.DialTCP(addr, 5*time.Second)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		fc := faultcomm.Wrap(w, faultcomm.Config{Seed: 7, KillAfterSends: 10})
		RunSlave(fc, 1) // dies by design after ~9 results
		w.Close()
		r, err := mpi.DialTCP(addr, 5*time.Second)
		if err != nil {
			// The run may already have completed on the healthy worker.
			t.Logf("replacement dial: %v", err)
			return
		}
		defer r.Close()
		if err := RunSlave(r, 1); err != nil && !errors.Is(err, ErrMasterDown) {
			t.Errorf("replacement worker: %v", err)
		}
	}()

	var master mpi.Comm
	select {
	case master = <-masterCh:
	case err := <-errCh:
		t.Fatal(err)
	case <-time.After(5 * time.Second):
		t.Fatal("master did not start")
	}
	got, err := RunMaster(master, q.Codes, Config{Top: topCfg(5)})
	master.Close()
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	assertSameTops(t, got.Tops, want.Tops)
}

// freeAddr returns a loopback address with an unused port.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}
