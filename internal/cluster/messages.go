// Package cluster implements the distributed-memory level of the
// paper's parallelisation (Section 4.3) on top of the mpi runtime:
// rank 0 is a sacrificed master that owns the task queue, the override
// triangle, and the original-bottom-row store; the other ranks are
// slaves that realign splits against a local triangle replica, caching
// original rows fetched from the master on demand. Each slave process
// may run several worker threads sharing its replica and row cache — the
// paper's "cluster of SMPs" configuration.
package cluster

import (
	"encoding/binary"
	"fmt"

	"repro/internal/mpi"
	"repro/internal/obs/trace"
)

// Protocol tags.
const (
	tagSetup   mpi.Tag = 1 // master -> slave: sequence + scoring config
	tagReady   mpi.Tag = 2 // slave -> master: one worker slot is idle
	tagJob     mpi.Tag = 3 // master -> slave: align a split (or group)
	tagResult  mpi.Tag = 4 // slave -> master: scores (+ rows when first)
	tagTop     mpi.Tag = 5 // master -> slaves: new top alignment's pairs
	tagRowReq  mpi.Tag = 6 // slave -> master: need original row for r
	tagRow     mpi.Tag = 7 // master -> slave: original row for r
	tagStop    mpi.Tag = 8 // master -> slaves: shut down
	tagRefused mpi.Tag = 9 // slave -> master: setup rejected (bad config)
)

// msgSetup carries everything a slave needs to start working. Trace,
// when non-zero, is the request's trace ID: the run is traced, and the
// slave records per-job spans and ships them back with each result.
type msgSetup struct {
	Seq      []byte
	Matrix   string // embedded exchange-matrix name (scoring.ByName)
	GapOpen  int32
	GapExt   int32
	MinScore int32
	Lanes    uint8 // 1, 4, 8, or 16
	Striped  bool
	Trace    trace.TraceID
}

// msgJob assigns one task. R is the split (scalar) or the group's first
// split (group mode). First marks a task that has never been aligned:
// the slave must align against the empty triangle and return the bottom
// row(s) for the master's row store. Span, when non-zero, is the
// master-side dispatch span: the slave parents its job span under it so
// the request's trace crosses the process boundary.
type msgJob struct {
	R     int32
	First bool
	Span  trace.SpanID
}

// msgResult reports a completed task. Version is the replica version the
// scores are exact for (0 for first alignments). Scores has one entry in
// scalar mode, Lanes entries in group mode. Rows is non-nil only for
// first alignments: the original bottom row per member. AlignNS is the
// slave-side kernel wall time (excluding row fetches) for the whole
// task; the master attributes it across the task's members so the
// engine's align_ns histogram stays per-alignment.
//
// Spans, when non-empty, is the OBT1-encoded batch of spans the slave
// recorded for this job, with Start times on the slave's local
// monotonic timeline; SlaveNow is that timeline's value at encode time,
// so the master can re-base the spans onto its own timeline using the
// link round-trip time (see master.reroot).
// CPUNanos is the worker thread's CPU time for the job (thread clock,
// so row-fetch waits cost nothing), and Tier/Rerun the kernel tier
// that served it — the attribution fields the master folds into the
// request's Usage record, crossing the process boundary like Spans.
type msgResult struct {
	R        int32
	Version  int32
	First    bool
	AlignNS  int64
	SlaveNow int64
	Scores   []int32
	Rows     [][]int32
	Spans    []byte
	CPUNanos int64
	Tier     uint8
	Rerun    bool
}

// msgTop broadcasts an accepted top alignment: the replica version it
// creates and the matched pairs to mark.
type msgTop struct {
	Version int32
	PairsI  []int32
	PairsJ  []int32
}

// msgRow answers a row request.
type msgRow struct {
	R   int32
	Row []int32
}

// --- encoding helpers (little-endian, length-prefixed slices) ---

func appendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

func appendI32s(b []byte, vs []int32) []byte {
	b = appendU32(b, uint32(len(vs)))
	for _, v := range vs {
		b = appendU32(b, uint32(v))
	}
	return b
}

type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	if r.off+4 > len(r.b) {
		r.err = fmt.Errorf("cluster: truncated message at offset %d", r.off)
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *reader) i32() int32 { return int32(r.u32()) }

func (r *reader) i32s() []int32 {
	n := int(r.u32())
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+4*n > len(r.b) {
		r.err = fmt.Errorf("cluster: slice length %d exceeds message", n)
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = r.i32()
	}
	return out
}

func (r *reader) bytes() []byte {
	n := int(r.u32())
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.b) {
		r.err = fmt.Errorf("cluster: byte slice length %d exceeds message", n)
		return nil
	}
	out := make([]byte, n)
	copy(out, r.b[r.off:r.off+n])
	r.off += n
	return out
}

func (r *reader) bool() bool { return r.u32() != 0 }

func appendBool(b []byte, v bool) []byte {
	if v {
		return appendU32(b, 1)
	}
	return appendU32(b, 0)
}

func appendBytes(b, data []byte) []byte {
	b = appendU32(b, uint32(len(data)))
	return append(b, data...)
}

// appendU64 and (r *reader).u64 carry 64-bit values as two u32 halves,
// matching the codec's 4-byte granularity.
func appendU64(b []byte, v uint64) []byte {
	b = appendU32(b, uint32(v))
	return appendU32(b, uint32(v>>32))
}

func (r *reader) u64() uint64 {
	lo, hi := r.u32(), r.u32()
	return uint64(lo) | uint64(hi)<<32
}

func (m msgSetup) encode() []byte {
	b := appendBytes(nil, m.Seq)
	b = appendBytes(b, []byte(m.Matrix))
	b = appendU32(b, uint32(m.GapOpen))
	b = appendU32(b, uint32(m.GapExt))
	b = appendU32(b, uint32(m.MinScore))
	b = appendU32(b, uint32(m.Lanes))
	b = appendBool(b, m.Striped)
	b = appendBytes(b, m.Trace[:])
	return b
}

func decodeSetup(b []byte) (msgSetup, error) {
	r := &reader{b: b}
	m := msgSetup{
		Seq:    r.bytes(),
		Matrix: string(r.bytes()),
	}
	m.GapOpen = r.i32()
	m.GapExt = r.i32()
	m.MinScore = r.i32()
	m.Lanes = uint8(r.u32())
	m.Striped = r.bool()
	if tr := r.bytes(); r.err == nil {
		if len(tr) != len(m.Trace) {
			return m, fmt.Errorf("cluster: setup trace ID has %d bytes, want %d", len(tr), len(m.Trace))
		}
		copy(m.Trace[:], tr)
	}
	return m, r.err
}

func (m msgJob) encode() []byte {
	b := appendU32(nil, uint32(m.R))
	b = appendBool(b, m.First)
	return appendBytes(b, m.Span[:])
}

func decodeJob(b []byte) (msgJob, error) {
	r := &reader{b: b}
	m := msgJob{R: r.i32(), First: r.bool()}
	if sp := r.bytes(); r.err == nil {
		if len(sp) != len(m.Span) {
			return m, fmt.Errorf("cluster: job span ID has %d bytes, want %d", len(sp), len(m.Span))
		}
		copy(m.Span[:], sp)
	}
	return m, r.err
}

func (m msgResult) encode() []byte {
	b := appendU32(nil, uint32(m.R))
	b = appendU32(b, uint32(m.Version))
	b = appendBool(b, m.First)
	b = appendU64(b, uint64(m.AlignNS))
	b = appendI32s(b, m.Scores)
	b = appendU32(b, uint32(len(m.Rows)))
	for _, row := range m.Rows {
		b = appendI32s(b, row)
	}
	b = appendU64(b, uint64(m.SlaveNow))
	b = appendBytes(b, m.Spans)
	b = appendU64(b, uint64(m.CPUNanos))
	b = appendU32(b, uint32(m.Tier))
	b = appendBool(b, m.Rerun)
	return b
}

func decodeResult(b []byte) (msgResult, error) {
	r := &reader{b: b}
	m := msgResult{R: r.i32(), Version: r.i32(), First: r.bool()}
	m.AlignNS = int64(r.u64())
	m.Scores = r.i32s()
	n := int(r.u32())
	if r.err == nil && n > 0 {
		if n > len(b) { // cheap sanity bound
			return m, fmt.Errorf("cluster: row count %d exceeds message", n)
		}
		m.Rows = make([][]int32, n)
		for i := range m.Rows {
			m.Rows[i] = r.i32s()
		}
	}
	m.SlaveNow = int64(r.u64())
	m.Spans = r.bytes()
	m.CPUNanos = int64(r.u64())
	m.Tier = uint8(r.u32())
	m.Rerun = r.bool()
	return m, r.err
}

func (m msgTop) encode() []byte {
	b := appendU32(nil, uint32(m.Version))
	b = appendI32s(b, m.PairsI)
	b = appendI32s(b, m.PairsJ)
	return b
}

func decodeTop(b []byte) (msgTop, error) {
	r := &reader{b: b}
	m := msgTop{Version: r.i32(), PairsI: r.i32s(), PairsJ: r.i32s()}
	if r.err == nil && len(m.PairsI) != len(m.PairsJ) {
		return m, fmt.Errorf("cluster: pair coordinate lengths differ (%d vs %d)", len(m.PairsI), len(m.PairsJ))
	}
	return m, r.err
}

func (m msgRow) encode() []byte {
	b := appendU32(nil, uint32(m.R))
	return appendI32s(b, m.Row)
}

func decodeRow(b []byte) (msgRow, error) {
	r := &reader{b: b}
	m := msgRow{R: r.i32(), Row: r.i32s()}
	return m, r.err
}
