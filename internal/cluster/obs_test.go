package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/seq"
	"repro/internal/stats"
	"repro/internal/topalign"
)

// TestClusterTelemetryEndToEnd is the observability smoke test: a
// master and two workers run over the real TCP transport with one
// shared registry and a live debug HTTP listener, exactly like the
// repromaster/reproworker binaries. The /metrics endpoint is scraped
// continuously while the run is in progress, and every scrape — mid-run
// or final — must reconcile: per-rank dispatch counters sum to at least
// the dispatch total (the master bumps the rank counter first), and at
// completion the totals balance exactly against the engine counters.
func TestClusterTelemetryEndToEnd(t *testing.T) {
	q := seq.SyntheticTitin(400, 2)
	want, err := topalign.Find(q.Codes, topCfg(10))
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	jnl := obs.NewJournal(0)
	dbg, err := obs.StartDebug("127.0.0.1:0", reg, jnl, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer dbg.Close()

	addr := freeAddr(t)
	opts := mpi.DefaultTCPOptions()
	opts.AcceptTimeout = 5 * time.Second
	opts.HeartbeatInterval = 20 * time.Millisecond // several beats within the short run
	opts.Metrics = reg
	masterCh := make(chan mpi.Comm, 1)
	listenErr := make(chan error, 1)
	go func() {
		m, err := mpi.ListenTCPOpts(addr, 3, opts)
		if err != nil {
			listenErr <- err
			return
		}
		masterCh <- m
	}()
	time.Sleep(20 * time.Millisecond)

	var workers sync.WaitGroup
	for i := 0; i < 2; i++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			w, err := mpi.DialTCP(addr, 5*time.Second)
			if err != nil {
				t.Errorf("worker dial: %v", err)
				return
			}
			defer w.Close()
			err = RunSlaveOpts(w, SlaveOptions{Threads: 2, Metrics: reg})
			if err != nil && !errors.Is(err, ErrMasterDown) {
				t.Errorf("worker: %v", err)
			}
		}()
	}

	var master mpi.Comm
	select {
	case master = <-masterCh:
	case err := <-listenErr:
		t.Fatal(err)
	case <-time.After(5 * time.Second):
		t.Fatal("master did not start")
	}

	cfg := Config{
		Top: topalign.Config{
			Params:   proteinParams,
			NumTops:  10,
			Counters: &stats.Counters{},
			Trace:    jnl,
		},
		Metrics: reg,
	}
	type runOut struct {
		res *topalign.Result
		err error
	}
	done := make(chan runOut, 1)
	go func() {
		res, err := RunMaster(master, q.Codes, cfg)
		done <- runOut{res, err}
	}()

	// Scrape /metrics over HTTP until the run completes. Each scrape must
	// be internally consistent; count how many catch the run mid-flight.
	scrapeURL := fmt.Sprintf("http://%s/metrics", dbg.Addr)
	midRun := 0
	var out runOut
scrape:
	for {
		select {
		case out = <-done:
			break scrape
		default:
		}
		snap := scrapeMetrics(t, scrapeURL)
		total := snap.Counters["cluster/dispatch/total"]
		if rankSum := sumRankCounters(snap, "cluster/dispatch/rank"); rankSum < total {
			t.Fatalf("mid-run scrape: rank dispatch sum %d < total %d", rankSum, total)
		}
		if total > 0 {
			midRun++
		}
		time.Sleep(time.Millisecond)
	}
	master.Close()
	workers.Wait()
	if out.err != nil {
		t.Fatal(out.err)
	}
	assertSameTops(t, out.res.Tops, want.Tops)
	if midRun == 0 {
		t.Error("no scrape observed a live run (dispatch total never nonzero before completion)")
	}

	// Quiescent: everything must balance exactly.
	snap := scrapeMetrics(t, scrapeURL)
	total := snap.Counters["cluster/dispatch/total"]
	if total == 0 {
		t.Fatal("final dispatch total is zero")
	}
	if rankSum := sumRankCounters(snap, "cluster/dispatch/rank"); rankSum != total {
		t.Errorf("final rank dispatch sum %d != total %d", rankSum, total)
	}
	for _, rank := range []int{1, 2} {
		if n := snap.Counters[fmt.Sprintf("cluster/dispatch/rank%d", rank)]; n == 0 {
			t.Errorf("rank %d dispatched no tasks", rank)
		}
	}
	// Strict scalar no-fault run: every dispatch produced exactly one
	// result, each accounted as one engine alignment on the master, and
	// the registry-bound engine counters must agree with the final
	// stats.Snapshot returned in the result.
	if got := snap.Counters["engine/alignments"]; got != total {
		t.Errorf("engine/alignments %d != dispatch total %d", got, total)
	}
	if got := snap.Counters["engine/alignments"]; got != out.res.Stats.Alignments {
		t.Errorf("registry alignments %d != result stats %d", got, out.res.Stats.Alignments)
	}
	if got := snap.Counters["engine/tracebacks"]; got != int64(len(out.res.Tops)) {
		t.Errorf("tracebacks %d != %d tops", got, len(out.res.Tops))
	}
	if rows := snap.Counters["cluster/rows_served"]; rows == 0 {
		t.Error("no original rows served despite realignments")
	}
	if jobs := sumRankCounters(snap, "cluster/jobs_done/rank"); jobs != total {
		t.Errorf("slave jobs_done sum %d != dispatch total %d", jobs, total)
	}
	if hb := snap.Counters["mpi/hb_sent"]; hb == 0 {
		t.Error("no heartbeats recorded despite shared transport registry")
	}

	// The journal must carry the cluster events alongside the engine's.
	var dispatches int
	ranksSeen := map[int32]bool{}
	for _, ev := range jnl.Events() {
		if ev.Kind == obs.EvDispatch {
			dispatches++
			ranksSeen[ev.Rank] = true
		}
	}
	if dispatches == 0 {
		t.Error("no dispatch events journalled")
	}
	if !ranksSeen[1] || !ranksSeen[2] {
		t.Errorf("dispatch events missing a rank: %v", ranksSeen)
	}
	if acc := jnl.Accepts(); len(acc) != len(out.res.Tops) {
		t.Errorf("%d accept events for %d tops", len(acc), len(out.res.Tops))
	}
}

func scrapeMetrics(t *testing.T, url string) obs.Snapshot {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer resp.Body.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("scrape decode: %v", err)
	}
	return snap
}

func sumRankCounters(snap obs.Snapshot, prefix string) int64 {
	var sum int64
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, prefix) {
			sum += v
		}
	}
	return sum
}
