package cluster

import (
	"fmt"
	"time"

	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/topalign"
)

// Config controls a cluster run.
type Config struct {
	// Top is the algorithm configuration. Params.Exch must be one of
	// the embedded matrices (scoring.ByName) so slaves can reconstruct
	// it from its name.
	Top topalign.Config
	// Speculative selects the paper's acceptance rule (accept the head
	// of the queue while results are still in flight). Off = strict
	// mode, bit-identical to the sequential algorithm.
	Speculative bool
	// TaskTimeout bounds how long the master waits for a dispatched
	// task before speculatively re-sending it to an idle slot on
	// another slave (the straggler defence). Whichever copy answers
	// first wins; the laggard's result is deduplicated, so strict-mode
	// determinism is unaffected. 0 disables re-dispatch.
	TaskTimeout time.Duration
	// Metrics, when non-nil, receives cluster telemetry (per-rank
	// dispatch/retry/duplicate counters, live-slave gauge, rows served)
	// and the engine counters of Top.Counters, bound under the names in
	// DESIGN.md section 8.
	Metrics *obs.Registry
	// Journal, when non-nil, receives cluster scheduling events
	// (dispatch, redispatch, duplicate, rank-down, rank-join). Defaults
	// to Top.Trace, so one journal can carry the whole run.
	Journal *obs.Journal
	// Spans, when non-nil, records the run's request-scoped trace: a
	// cluster.run span on the master, one cluster.dispatch span per
	// task sent, cluster.stall spans for straggler waits, and the
	// re-based slave.* spans shipped back inside results. The run's
	// trace ID travels to every slave in the setup message.
	Spans *trace.Recorder
	// SpanParent, when non-zero, parents the cluster.run span (the
	// serving layer passes its engine span here).
	SpanParent trace.SpanID
}

// RunMaster drives a cluster computation from rank 0: it ships the
// sequence and configuration to every slave, farms out alignment tasks,
// accepts top alignments (including the sequential traceback, which
// runs on the master as in the paper), and broadcasts triangle updates.
// It returns when the requested top alignments are found or no further
// alignment reaches MinScore.
//
// The run tolerates partial failure: a dead slave's tasks are requeued,
// overdue tasks are speculatively re-dispatched (TaskTimeout),
// replacement workers that join mid-run (mpi.TagJoin) are provisioned
// with the setup and the accepted-top history, and if every slave dies
// the master finishes the remaining queue with its own engine instead
// of failing the run.
func RunMaster(comm mpi.Comm, s []byte, cfg Config) (*topalign.Result, error) {
	if comm.Rank() != 0 {
		return nil, fmt.Errorf("cluster: RunMaster called on rank %d", comm.Rank())
	}
	// The cluster.run span wraps the whole distributed computation; it is
	// opened before engine creation so the engine's accept spans (which
	// run on the master, rank 0) nest under it.
	runSpan := cfg.Spans.Start(cfg.SpanParent, "cluster.run")
	runSpan.SetRank(0)
	defer runSpan.End()
	cfg.Top.Spans = cfg.Spans
	cfg.Top.SpanParent = runSpan.ID()
	cfg.Top.SpanRank = 0
	e, err := topalign.NewEngine(s, cfg.Top)
	if err != nil {
		return nil, err
	}
	if cfg.Journal == nil {
		cfg.Journal = cfg.Top.Trace
	}
	cfg.Top.Counters.Bind(cfg.Metrics)
	m := &master{
		comm:    comm,
		e:       e,
		cfg:     cfg,
		queue:   topalign.InitialQueue(e),
		flights: make(map[int]*flight),
		owed:    make(map[int]map[int]bool),
		live:    make(map[int]bool),
		runSpan: runSpan.ID(),
	}
	return m.run(s)
}

// flight is one task currently dispatched to at least one slave.
type flight struct {
	t        *topalign.Task
	owners   map[int]bool    // slave ranks working on the task
	deadline time.Time       // when the task becomes a straggler
	spans    []*trace.Active // open cluster.dispatch spans, one per copy
	sentAt   int64           // recorder time of the latest dispatch
}

type master struct {
	comm    mpi.Comm
	e       *topalign.Engine
	cfg     Config
	queue   *topalign.TaskQueue
	flights map[int]*flight      // task R -> outstanding dispatch
	slots   []int                // idle worker slots (slave ranks, FIFO)
	owed    map[int]map[int]bool // slave rank -> task Rs dispatched to it, not yet credited back
	live    map[int]bool
	done    bool
	setup   []byte       // encoded msgSetup, re-shipped to late joiners
	topHist [][]byte     // encoded msgTop per accepted top, for rejoin replay
	runSpan trace.SpanID // the cluster.run span, parent of all dispatches
}

// Registry names used by the master (DESIGN.md section 8). Per-rank
// counters append "/rank<N>".
const (
	metricDispatchTotal   = "cluster/dispatch/total"
	metricDispatchRank    = "cluster/dispatch/rank%d"
	metricRedispatchTotal = "cluster/redispatch/total"
	metricRedispatchRank  = "cluster/redispatch/rank%d"
	metricDuplicateTotal  = "cluster/duplicate/total"
	metricDuplicateRank   = "cluster/duplicate/rank%d"
	metricRowsServed      = "cluster/rows_served"
	metricDeaths          = "cluster/deaths"
	metricRejoins         = "cluster/rejoins"
	metricLiveSlaves      = "cluster/live_slaves"
)

// jot records a scheduling event in the run journal (nil-safe).
func (m *master) jot(kind obs.EventKind, rank int, r int32, arg int64) {
	m.cfg.Journal.Record(kind, int32(rank), int64(r), arg)
}

// bump increments a named counter in the registry (nil-safe).
func (m *master) bump(name string) {
	m.cfg.Metrics.Counter(name).Inc()
}

// markLive refreshes the live-slave gauge.
func (m *master) markLive() {
	m.cfg.Metrics.Gauge(metricLiveSlaves).Set(int64(len(m.live)))
}

func (m *master) run(s []byte) (*topalign.Result, error) {
	cfg := m.e.Config()
	m.setup = msgSetup{
		Seq:      s,
		Matrix:   cfg.Params.Exch.Name(),
		GapOpen:  cfg.Params.Gap.Open,
		GapExt:   cfg.Params.Gap.Ext,
		MinScore: cfg.MinScore,
		Lanes:    uint8(cfg.GroupLanes),
		Striped:  cfg.Striped,
		Trace:    m.cfg.Spans.TraceID(),
	}.encode()
	size := m.comm.Size() // snapshot: later joiners arrive via TagJoin
	for rank := 1; rank < size; rank++ {
		if err := m.comm.Send(rank, tagSetup, m.setup); err != nil {
			return nil, fmt.Errorf("cluster: setup to rank %d: %w", rank, err)
		}
		m.live[rank] = true
	}
	m.markLive()

	// Pump Recv into a channel so the scheduler can also react to the
	// straggler ticker. The quit channel stops the pump when the run
	// ends; a Recv blocked at that point unblocks once the caller
	// closes the Comm.
	type recvItem struct {
		msg mpi.Message
		err error
	}
	msgs := make(chan recvItem)
	quit := make(chan struct{})
	defer close(quit)
	go func() {
		for {
			msg, err := m.comm.Recv()
			select {
			case msgs <- recvItem{msg, err}:
			case <-quit:
				return
			}
			if err != nil {
				return
			}
		}
	}()
	var tickC <-chan time.Time
	if m.cfg.TaskTimeout > 0 {
		tick := time.NewTicker(max(m.cfg.TaskTimeout/4, time.Millisecond))
		defer tick.Stop()
		tickC = tick.C
	}

	for !m.done {
		select {
		case it := <-msgs:
			if it.err != nil {
				m.broadcast(tagStop, nil) // best effort: release any live slave
				return nil, fmt.Errorf("cluster: master recv: %w", it.err)
			}
			if err := m.handle(it.msg); err != nil {
				m.broadcast(tagStop, nil)
				return nil, err
			}
		case <-tickC:
			m.redispatchStale()
		}
	}
	m.broadcast(tagStop, nil)
	return &topalign.Result{
		SeqLen: m.e.Len(),
		Tops:   m.e.Tops(),
		Stats:  m.e.Config().Counters.Snapshot(),
	}, nil
}

func (m *master) handle(msg mpi.Message) error {
	switch msg.Tag {
	case tagReady:
		m.slots = append(m.slots, msg.From)
	case tagResult:
		res, err := decodeResult(msg.Data)
		if err != nil {
			return err
		}
		if err := m.handleResult(msg.From, res); err != nil {
			return err
		}
		// Credit an idle slot only for a dispatch actually made to this
		// rank and not yet credited back: a wire-duplicated result must
		// not mint a phantom slot (the master would over-dispatch past
		// the slave's thread count and wedge its receive loop), while
		// the losing copy of a speculative re-dispatch still frees its
		// sender.
		if o := m.owed[msg.From]; o[int(res.R)] {
			delete(o, int(res.R))
			m.slots = append(m.slots, msg.From)
		}
	case tagRowReq:
		req, err := decodeRow(msg.Data) // msgRow with empty Row doubles as request
		if err != nil {
			return err
		}
		row, ok := m.e.OrigRows().Get(int(req.R))
		if !ok {
			return fmt.Errorf("cluster: slave %d requested unknown row %d", msg.From, req.R)
		}
		m.bump(metricRowsServed)
		return m.comm.Send(msg.From, tagRow, msgRow{R: req.R, Row: row}.encode())
	case tagRefused:
		return fmt.Errorf("cluster: slave %d refused setup: %s", msg.From, msg.Data)
	case mpi.TagJoin:
		if !m.live[msg.From] {
			m.admitSlave(msg.From)
		}
	case mpi.TagDown:
		m.handleDown(msg.From)
	default:
		return fmt.Errorf("cluster: master got unexpected tag %d from %d", msg.Tag, msg.From)
	}
	if err := m.tryAccept(); err != nil {
		return err
	}
	m.pump()
	if len(m.live) == 0 && !m.done {
		// Graceful degradation: no slaves left (whether we noticed via
		// TagDown or via a failed send), so finish the remaining queue
		// with the master's own engine rather than abandoning the run.
		if err := m.finishLocally(); err != nil {
			return err
		}
	}
	m.checkTermination()
	return nil
}

// admitSlave provisions a worker that joined after the initial world:
// the setup plus a replay of every accepted top alignment, bringing its
// triangle replica to the current version. Send failures demote the
// newcomer to dead; they never abort the run.
func (m *master) admitSlave(rank int) {
	m.live[rank] = true
	m.bump(metricRejoins)
	m.jot(obs.EvRankJoin, rank, -1, 0)
	m.markLive()
	if err := m.comm.Send(rank, tagSetup, m.setup); err != nil {
		m.handleDown(rank)
		return
	}
	for _, upd := range m.topHist {
		if err := m.comm.Send(rank, tagTop, upd); err != nil {
			m.handleDown(rank)
			return
		}
	}
}

// handleResult folds a slave's result back into the queue.
func (m *master) handleResult(from int, res msgResult) error {
	R := int(res.R)
	if R < 1 || R >= m.e.Len() {
		return fmt.Errorf("cluster: result for out-of-range split %d from slave %d", res.R, from)
	}
	fl := m.flights[R]
	if fl == nil {
		// Duplicate: a speculative re-dispatch (or a task requeued after
		// its slave was presumed dead) already delivered this result.
		m.bump(metricDuplicateTotal)
		m.bump(fmt.Sprintf(metricDuplicateRank, from))
		m.jot(obs.EvDuplicate, from, res.R, int64(res.Version))
		return nil
	}
	delete(m.flights, R)
	for _, sp := range fl.spans {
		sp.End()
	}
	t := fl.t
	stale := !res.First && int(res.Version) < m.e.NumTopsFound()
	if stale {
		// Computed against a replica that has since advanced: the
		// paper's speculation overhead — the score re-enters the queue
		// as a stale upper bound rather than being discarded.
		m.jot(obs.EvSpecWaste, from, res.R, int64(res.Version))
	}
	m.absorbSpans(from, res, stale)

	if res.First {
		// Store the original rows (one per member in group mode).
		mlen := m.e.Len()
		for i, row := range res.Rows {
			r := R + i
			if r > mlen-1 {
				return fmt.Errorf("cluster: first-result row for invalid split %d", r)
			}
			if len(row) != mlen-r {
				return fmt.Errorf("cluster: first-result row for split %d has %d entries, want %d",
					r, len(row), mlen-r)
			}
			m.e.OrigRows().Put(r, row)
		}
		res.Version = 0
	}
	if len(res.Scores) == 0 {
		return fmt.Errorf("cluster: result for task %d has no scores", res.R)
	}
	// The alignments ran on the slave; account for them here so cluster
	// runs report the same statistics as the local engines.
	mlen := m.e.Len()
	members := 0
	for i := range res.Scores {
		r := R + i
		if r > mlen-1 {
			break
		}
		members++
		m.e.Config().Counters.AddAlignment(int64(r)*int64(mlen-r), !res.First)
	}
	// Fold the slave-side kernel time into the align_ns histogram,
	// attributed per member, so cluster runs report a per-alignment
	// latency instead of the zero it used to show. CPU and kernel-tier
	// attribution cross the boundary the same way: the slave measured,
	// the master accounts.
	m.e.Config().Counters.ObserveAlignLatencyPer(time.Duration(res.AlignNS), members)
	m.e.Config().Counters.AddCPU(res.CPUNanos)
	m.e.Config().Counters.AddTierAlignments(int(res.Tier), int64(members), res.Rerun)
	if m.e.Config().GroupLanes > 1 {
		t.MemberScores = res.Scores
	}
	t.Score = maxI32(res.Scores)
	t.AlignedWith = int(res.Version)
	m.queue.Push(t)
	return nil
}

// absorbSpans folds a slave's shipped spans into the run's trace. The
// spans arrive with Start times on the slave's local monotonic timeline;
// they are re-based onto the master's collector timeline by assuming the
// slave encoded them (stamping SlaveNow) half a heartbeat round trip
// before the master received them. The residual error — scheduling
// noise, RTT asymmetry — is nanoseconds-to-microseconds against
// millisecond spans, and the critical-path analyzer clamps children
// into parents, so it cannot produce negative attributions. Span loss
// or corruption never fails a run.
func (m *master) absorbSpans(from int, res msgResult, stale bool) {
	rec := m.cfg.Spans
	if rec == nil || len(res.Spans) == 0 {
		return
	}
	spans, err := trace.DecodeSpans(res.Spans)
	if err != nil {
		return
	}
	offset := rec.Now() - mpi.HeartbeatRTT(m.cfg.Metrics, from)/2 - res.SlaveNow
	for _, sp := range spans {
		sp.Start += offset
		if stale && sp.Name == "slave.kernel" {
			// The kernel ran against a replica that has since advanced:
			// this is the paper's speculation overhead, and the trace
			// should attribute it as waste rather than useful work.
			sp.Name = "slave.kernel.wasted"
		}
		rec.Add(sp)
	}
}

// handleDown removes a dead slave and requeues every task it alone was
// working on; tasks also owned by a surviving slave stay in flight.
func (m *master) handleDown(rank int) {
	if !m.live[rank] {
		return
	}
	delete(m.live, rank)
	delete(m.owed, rank)
	requeued := int64(0)
	for R, fl := range m.flights {
		if !fl.owners[rank] {
			continue
		}
		delete(fl.owners, rank)
		if len(fl.owners) == 0 {
			m.queue.Push(fl.t) // unchanged: still a valid (stale) upper bound
			delete(m.flights, R)
			for _, sp := range fl.spans {
				sp.End()
			}
			requeued++
		}
	}
	m.bump(metricDeaths)
	m.jot(obs.EvRankDown, rank, -1, requeued)
	m.markLive()
	// drop the dead slave's idle slots
	keep := m.slots[:0]
	for _, s := range m.slots {
		if s != rank {
			keep = append(keep, s)
		}
	}
	m.slots = keep
}

// tryAccept accepts top alignments while the queue head is current (and,
// in strict mode, nothing is in flight).
func (m *master) tryAccept() error {
	for !m.done {
		head := m.queue.Peek()
		if head == nil {
			return nil
		}
		if head.Score != topalign.Infinity && head.Score < m.e.Config().MinScore {
			return nil
		}
		if head.AlignedWith != m.e.NumTopsFound() {
			return nil
		}
		if !m.cfg.Speculative && len(m.flights) > 0 {
			return nil
		}
		t := m.queue.Pop()
		top, err := topalign.Accept(m.e, t)
		if err != nil {
			return err
		}
		m.queue.Push(t)
		upd := msgTop{Version: int32(m.e.NumTopsFound())}
		upd.PairsI = make([]int32, len(top.Pairs))
		upd.PairsJ = make([]int32, len(top.Pairs))
		for i, p := range top.Pairs {
			upd.PairsI[i] = int32(p.I)
			upd.PairsJ[i] = int32(p.J)
		}
		enc := upd.encode()
		m.topHist = append(m.topHist, enc)
		m.broadcast(tagTop, enc)
		if m.e.NumTopsFound() >= m.e.Config().NumTops {
			m.done = true
		}
	}
	return nil
}

// pump hands stale tasks to idle worker slots in priority order.
func (m *master) pump() {
	for !m.done && len(m.slots) > 0 {
		head := m.queue.Peek()
		if head == nil {
			return
		}
		if head.AlignedWith == m.e.NumTopsFound() {
			return // acceptance candidate, not work
		}
		if head.Score != topalign.Infinity && head.Score < m.e.Config().MinScore {
			return
		}
		slave := m.slots[0]
		if !m.live[slave] {
			m.slots = m.slots[1:]
			continue
		}
		t := m.queue.Pop()
		if !m.dispatch(slave, t, nil) {
			m.queue.Push(t)
			continue
		}
		m.slots = m.slots[1:]
	}
}

// dispatch sends task t to slave and records the ownership. When fl is
// nil a new flight is created (first dispatch); otherwise the slave is
// added to the existing flight (speculative re-dispatch). Returns false
// if the send failed, in which case the slave is demoted to dead and
// the flight state is unchanged.
func (m *master) dispatch(slave int, t *topalign.Task, fl *flight) bool {
	job := msgJob{R: int32(t.R), First: t.AlignedWith < 0}
	// The dispatch span covers send-to-result on the master's timeline;
	// its ID travels in the job so the slave's spans parent under it.
	dspan := m.cfg.Spans.Start(m.runSpan, "cluster.dispatch")
	dspan.SetRank(int32(slave))
	dspan.SetArg(int64(t.R))
	job.Span = dspan.ID()
	if err := m.comm.Send(slave, tagJob, job.encode()); err != nil {
		// treat as dead; the TagDown will follow, but clean up now
		dspan.End()
		m.handleDown(slave)
		return false
	}
	// Per-rank counter first, total second: a concurrent /metrics scrape
	// then always sees sum(ranks) >= total, never a phantom deficit.
	m.bump(fmt.Sprintf(metricDispatchRank, slave))
	m.bump(metricDispatchTotal)
	if fl == nil {
		m.jot(obs.EvDispatch, slave, int32(t.R), 0)
		fl = &flight{t: t, owners: make(map[int]bool)}
		m.flights[t.R] = fl
	} else {
		// Speculative re-dispatch of a straggler's task: tally the retry
		// globally and against the rank that received the extra copy.
		m.bump(metricRedispatchTotal)
		m.bump(fmt.Sprintf(metricRedispatchRank, slave))
		m.jot(obs.EvRedispatch, slave, int32(t.R), int64(len(fl.owners)))
	}
	if dspan != nil {
		fl.spans = append(fl.spans, dspan)
	}
	fl.sentAt = m.cfg.Spans.Now()
	fl.owners[slave] = true
	if m.owed[slave] == nil {
		m.owed[slave] = make(map[int]bool)
	}
	m.owed[slave][t.R] = true
	if m.cfg.TaskTimeout > 0 {
		fl.deadline = time.Now().Add(m.cfg.TaskTimeout)
	}
	return true
}

// redispatchStale speculatively re-sends every overdue task to an idle
// slot on a slave not already working on it. The original owner keeps
// computing; handleResult deduplicates whichever copy loses the race.
func (m *master) redispatchStale() {
	if m.cfg.TaskTimeout <= 0 || m.done {
		return
	}
	now := time.Now()
	for R, fl := range m.flights {
		if now.Before(fl.deadline) {
			continue
		}
		slot := -1
		for i, s := range m.slots {
			if m.live[s] && !fl.owners[s] {
				slot = i
				break
			}
		}
		if slot < 0 {
			// No eligible slot right now; check again next tick. The
			// deadline push keeps one slow scan from re-triggering.
			fl.deadline = now.Add(m.cfg.TaskTimeout)
			continue
		}
		// Record the straggler stall as a completed span: from the moment
		// the task went overdue to this re-dispatch. (sentAt advances on
		// re-dispatch, so repeated stalls of one task never overlap.)
		if rec := m.cfg.Spans; rec != nil {
			stallStart := fl.sentAt + m.cfg.TaskTimeout.Nanoseconds()
			if recNow := rec.Now(); stallStart < recNow {
				rec.Add(trace.Span{
					ID:     trace.NewSpanID(),
					Parent: m.runSpan,
					Name:   "cluster.stall",
					Rank:   0,
					Start:  stallStart,
					Dur:    recNow - stallStart,
					Arg:    int64(R),
				})
			}
		}
		slave := m.slots[slot]
		m.slots = append(m.slots[:slot], m.slots[slot+1:]...)
		m.dispatch(slave, fl.t, fl)
	}
}

// finishLocally drains the remaining queue with the master's own engine
// — the sequential algorithm of topalign.Run — so a run whose every
// slave died still completes, degraded to single-node speed. Requeued
// tasks keep their stale scores as upper bounds, exactly as a slave
// result would, so strict-mode results remain bit-identical.
func (m *master) finishLocally() error {
	cfg := m.e.Config()
	for m.e.NumTopsFound() < cfg.NumTops && m.queue.Len() > 0 {
		t := m.queue.Pop()
		if t.Score != topalign.Infinity && t.Score < cfg.MinScore {
			m.queue.Push(t)
			break
		}
		if t.AlignedWith == m.e.NumTopsFound() {
			top, err := topalign.Accept(m.e, t)
			if err != nil {
				return err
			}
			upd := msgTop{Version: int32(m.e.NumTopsFound())}
			upd.PairsI = make([]int32, len(top.Pairs))
			upd.PairsJ = make([]int32, len(top.Pairs))
			for i, p := range top.Pairs {
				upd.PairsI[i] = int32(p.I)
				upd.PairsJ[i] = int32(p.J)
			}
			// Keep the history current so a worker that joins during the
			// next (unlikely) scheduling window could still be provisioned.
			m.topHist = append(m.topHist, upd.encode())
		} else {
			topalign.Realign(m.e, t, m.e.Triangle(), m.e.NumTopsFound())
		}
		m.queue.Push(t)
	}
	m.done = true
	return nil
}

// checkTermination stops the run when no further top alignment can be
// produced: the queue is drained or capped below MinScore with nothing
// in flight.
func (m *master) checkTermination() {
	if m.done || len(m.flights) > 0 {
		return
	}
	head := m.queue.Peek()
	if head == nil {
		m.done = true
		return
	}
	if head.Score != topalign.Infinity && head.Score < m.e.Config().MinScore {
		// The best possible remaining alignment is below threshold —
		// even a current head cannot be accepted, so the run is over.
		m.done = true
		return
	}
	// A current head above threshold is tryAccept's job (it ran just
	// before this check and accepted everything acceptable).
	// A stale head with nothing in flight and no free slots cannot
	// happen: results free slots before this check runs.
}

func (m *master) broadcast(tag mpi.Tag, data []byte) {
	for rank := range m.live {
		// best effort; a failed send surfaces as TagDown later
		_ = m.comm.Send(rank, tag, data)
	}
}

func maxI32(vs []int32) int32 {
	if len(vs) == 0 {
		return 0
	}
	best := vs[0]
	for _, v := range vs[1:] {
		if v > best {
			best = v
		}
	}
	return best
}
