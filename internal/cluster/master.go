package cluster

import (
	"fmt"

	"repro/internal/mpi"
	"repro/internal/topalign"
)

// Config controls a cluster run.
type Config struct {
	// Top is the algorithm configuration. Params.Exch must be one of
	// the embedded matrices (scoring.ByName) so slaves can reconstruct
	// it from its name.
	Top topalign.Config
	// Speculative selects the paper's acceptance rule (accept the head
	// of the queue while results are still in flight). Off = strict
	// mode, bit-identical to the sequential algorithm.
	Speculative bool
}

// RunMaster drives a cluster computation from rank 0: it ships the
// sequence and configuration to every slave, farms out alignment tasks,
// accepts top alignments (including the sequential traceback, which
// runs on the master as in the paper), and broadcasts triangle updates.
// It returns when the requested top alignments are found or no further
// alignment reaches MinScore.
func RunMaster(comm mpi.Comm, s []byte, cfg Config) (*topalign.Result, error) {
	if comm.Rank() != 0 {
		return nil, fmt.Errorf("cluster: RunMaster called on rank %d", comm.Rank())
	}
	e, err := topalign.NewEngine(s, cfg.Top)
	if err != nil {
		return nil, err
	}
	m := &master{
		comm:     comm,
		e:        e,
		cfg:      cfg,
		queue:    topalign.InitialQueue(e),
		assigned: make(map[int]map[int]*topalign.Task),
		live:     make(map[int]bool),
	}
	return m.run(s)
}

type master struct {
	comm     mpi.Comm
	e        *topalign.Engine
	cfg      Config
	queue    *topalign.TaskQueue
	assigned map[int]map[int]*topalign.Task // slave rank -> task R -> task
	slots    []int                          // idle worker slots (slave ranks, FIFO)
	inflight int
	live     map[int]bool
	done     bool
}

func (m *master) run(s []byte) (*topalign.Result, error) {
	cfg := m.e.Config()
	setup := msgSetup{
		Seq:      s,
		Matrix:   cfg.Params.Exch.Name(),
		GapOpen:  cfg.Params.Gap.Open,
		GapExt:   cfg.Params.Gap.Ext,
		MinScore: cfg.MinScore,
		Lanes:    uint8(cfg.GroupLanes),
		Striped:  cfg.Striped,
	}.encode()
	for rank := 1; rank < m.comm.Size(); rank++ {
		if err := m.comm.Send(rank, tagSetup, setup); err != nil {
			return nil, fmt.Errorf("cluster: setup to rank %d: %w", rank, err)
		}
		m.live[rank] = true
		m.assigned[rank] = make(map[int]*topalign.Task)
	}

	for !m.done {
		msg, err := m.comm.Recv()
		if err != nil {
			return nil, fmt.Errorf("cluster: master recv: %w", err)
		}
		if err := m.handle(msg); err != nil {
			m.broadcast(tagStop, nil)
			return nil, err
		}
	}
	m.broadcast(tagStop, nil)
	return &topalign.Result{
		SeqLen: m.e.Len(),
		Tops:   m.e.Tops(),
		Stats:  m.e.Config().Counters.Snapshot(),
	}, nil
}

func (m *master) handle(msg mpi.Message) error {
	switch msg.Tag {
	case tagReady:
		m.slots = append(m.slots, msg.From)
	case tagResult:
		res, err := decodeResult(msg.Data)
		if err != nil {
			return err
		}
		if err := m.handleResult(msg.From, res); err != nil {
			return err
		}
		m.slots = append(m.slots, msg.From)
	case tagRowReq:
		req, err := decodeRow(msg.Data) // msgRow with empty Row doubles as request
		if err != nil {
			return err
		}
		row, ok := m.e.OrigRows().Get(int(req.R))
		if !ok {
			return fmt.Errorf("cluster: slave %d requested unknown row %d", msg.From, req.R)
		}
		return m.comm.Send(msg.From, tagRow, msgRow{R: req.R, Row: row}.encode())
	case tagRefused:
		return fmt.Errorf("cluster: slave %d refused setup: %s", msg.From, msg.Data)
	case mpi.TagDown:
		m.handleDown(msg.From)
		if len(m.live) == 0 && !m.done {
			return fmt.Errorf("cluster: all slaves died with %d of %d top alignments found",
				m.e.NumTopsFound(), m.e.Config().NumTops)
		}
	default:
		return fmt.Errorf("cluster: master got unexpected tag %d from %d", msg.Tag, msg.From)
	}
	if err := m.tryAccept(); err != nil {
		return err
	}
	m.pump()
	m.checkTermination()
	return nil
}

// handleResult folds a slave's result back into the queue.
func (m *master) handleResult(from int, res msgResult) error {
	t := m.assigned[from][int(res.R)]
	if t == nil {
		// A task requeued after this slave was presumed dead, or a
		// duplicate: ignore.
		return nil
	}
	delete(m.assigned[from], int(res.R))
	m.inflight--

	if res.First {
		// Store the original rows (one per member in group mode).
		mlen := m.e.Len()
		for i, row := range res.Rows {
			r := int(res.R) + i
			if r > mlen-1 {
				return fmt.Errorf("cluster: first-result row for invalid split %d", r)
			}
			if len(row) != mlen-r {
				return fmt.Errorf("cluster: first-result row for split %d has %d entries, want %d",
					r, len(row), mlen-r)
			}
			m.e.OrigRows().Put(r, row)
		}
		res.Version = 0
	}
	if len(res.Scores) == 0 {
		return fmt.Errorf("cluster: result for task %d has no scores", res.R)
	}
	// The alignments ran on the slave; account for them here so cluster
	// runs report the same statistics as the local engines.
	mlen := m.e.Len()
	for i := range res.Scores {
		r := int(res.R) + i
		if r > mlen-1 {
			break
		}
		m.e.Config().Counters.AddAlignment(int64(r)*int64(mlen-r), !res.First)
	}
	if m.e.Config().GroupLanes > 1 {
		t.MemberScores = res.Scores
	}
	t.Score = maxI32(res.Scores)
	t.AlignedWith = int(res.Version)
	m.queue.Push(t)
	return nil
}

// handleDown requeues everything a dead slave was working on.
func (m *master) handleDown(rank int) {
	if !m.live[rank] {
		return
	}
	delete(m.live, rank)
	for _, t := range m.assigned[rank] {
		m.queue.Push(t) // unchanged: still a valid (stale) upper bound
		m.inflight--
	}
	m.assigned[rank] = make(map[int]*topalign.Task)
	// drop the dead slave's idle slots
	keep := m.slots[:0]
	for _, s := range m.slots {
		if s != rank {
			keep = append(keep, s)
		}
	}
	m.slots = keep
}

// tryAccept accepts top alignments while the queue head is current (and,
// in strict mode, nothing is in flight).
func (m *master) tryAccept() error {
	for !m.done {
		head := m.queue.Peek()
		if head == nil {
			return nil
		}
		if head.Score != topalign.Infinity && head.Score < m.e.Config().MinScore {
			return nil
		}
		if head.AlignedWith != m.e.NumTopsFound() {
			return nil
		}
		if !m.cfg.Speculative && m.inflight > 0 {
			return nil
		}
		t := m.queue.Pop()
		top, err := topalign.Accept(m.e, t)
		if err != nil {
			return err
		}
		m.queue.Push(t)
		upd := msgTop{Version: int32(m.e.NumTopsFound())}
		upd.PairsI = make([]int32, len(top.Pairs))
		upd.PairsJ = make([]int32, len(top.Pairs))
		for i, p := range top.Pairs {
			upd.PairsI[i] = int32(p.I)
			upd.PairsJ[i] = int32(p.J)
		}
		m.broadcast(tagTop, upd.encode())
		if m.e.NumTopsFound() >= m.e.Config().NumTops {
			m.done = true
		}
	}
	return nil
}

// pump hands stale tasks to idle worker slots in priority order.
func (m *master) pump() {
	for !m.done && len(m.slots) > 0 {
		head := m.queue.Peek()
		if head == nil {
			return
		}
		if head.AlignedWith == m.e.NumTopsFound() {
			return // acceptance candidate, not work
		}
		if head.Score != topalign.Infinity && head.Score < m.e.Config().MinScore {
			return
		}
		slave := m.slots[0]
		if !m.live[slave] {
			m.slots = m.slots[1:]
			continue
		}
		t := m.queue.Pop()
		job := msgJob{R: int32(t.R), First: t.AlignedWith < 0}
		if err := m.comm.Send(slave, tagJob, job.encode()); err != nil {
			// treat as dead; the TagDown will follow, but requeue now
			m.queue.Push(t)
			m.handleDown(slave)
			continue
		}
		m.slots = m.slots[1:]
		m.assigned[slave][t.R] = t
		m.inflight++
	}
}

// checkTermination stops the run when no further top alignment can be
// produced: the queue is drained or capped below MinScore with nothing
// in flight.
func (m *master) checkTermination() {
	if m.done || m.inflight > 0 {
		return
	}
	head := m.queue.Peek()
	if head == nil {
		m.done = true
		return
	}
	if head.Score != topalign.Infinity && head.Score < m.e.Config().MinScore {
		// The best possible remaining alignment is below threshold —
		// even a current head cannot be accepted, so the run is over.
		m.done = true
		return
	}
	// A current head above threshold is tryAccept's job (it ran just
	// before this check and accepted everything acceptable).
	// A stale head with nothing in flight and no free slots cannot
	// happen: results free slots before this check runs.
}

func (m *master) broadcast(tag mpi.Tag, data []byte) {
	for rank := range m.live {
		// best effort; a failed send surfaces as TagDown later
		_ = m.comm.Send(rank, tag, data)
	}
}

func maxI32(vs []int32) int32 {
	best := int32(0)
	for _, v := range vs {
		if v > best {
			best = v
		}
	}
	return best
}
