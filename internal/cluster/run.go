package cluster

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/mpi"
	"repro/internal/topalign"
)

// LocalSpec describes an in-process cluster: Slaves slave "processes"
// with ThreadsPerSlave worker goroutines each (the paper's cluster of
// dual-CPU SMPs corresponds to ThreadsPerSlave=2).
type LocalSpec struct {
	Slaves          int
	ThreadsPerSlave int
}

// RunLocal executes a full cluster computation inside one process using
// the channel transport: one master rank plus spec.Slaves slave ranks.
// It exercises exactly the same protocol code as the TCP binaries.
// When cfg.Metrics is set, master and slaves share the registry, so one
// snapshot holds the whole cluster's telemetry.
func RunLocal(s []byte, cfg Config, spec LocalSpec) (*topalign.Result, error) {
	if spec.Slaves < 1 {
		return nil, fmt.Errorf("cluster: need at least one slave, got %d", spec.Slaves)
	}
	if spec.ThreadsPerSlave < 1 {
		spec.ThreadsPerSlave = 1
	}
	world := mpi.NewLocal(spec.Slaves + 1)

	var wg sync.WaitGroup
	slaveErrs := make([]error, spec.Slaves)
	for i := 0; i < spec.Slaves; i++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			defer world[idx+1].Close()
			slaveErrs[idx] = RunSlaveOpts(world[idx+1],
				SlaveOptions{Threads: spec.ThreadsPerSlave, Metrics: cfg.Metrics})
		}(i)
	}

	res, err := RunMaster(world[0], s, cfg)
	world[0].Close()
	wg.Wait()
	if err != nil {
		return nil, err
	}
	for i, serr := range slaveErrs {
		// A slave that merely lost the master connection is not a run
		// failure: the master completed (we checked its error first),
		// so the loss was a shutdown race.
		if serr != nil && !errors.Is(serr, ErrMasterDown) {
			return nil, fmt.Errorf("cluster: slave %d: %w", i+1, serr)
		}
	}
	return res, nil
}
