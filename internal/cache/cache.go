// Package cache is a content-addressed LRU result cache with
// singleflight deduplication, the memory behind the serving layer
// (internal/serve): identical analysis requests hit a stored result
// instead of re-running the engine, and concurrent identical requests
// share one computation.
//
// The cache stores opaque values under string keys; the serving layer
// derives keys from SHA-256(sequence) plus the canonicalised analysis
// parameters (see serve.CacheKey), so two requests collide exactly when
// the engine would produce bit-identical reports for both. Errors are
// never cached: a failed computation is retried by the next request
// for the same key.
package cache

import (
	"container/list"
	"sync"

	"repro/internal/obs"
)

// Cache is a fixed-capacity LRU with integrated singleflight. All
// methods are safe for concurrent use.
type Cache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	inflight map[string]*call

	hits      obs.Counter
	misses    obs.Counter
	evictions obs.Counter
	entries   obs.Gauge
}

type entry struct {
	key string
	val any
}

// call is one in-flight computation other requests can wait on.
type call struct {
	done chan struct{}
	val  any
	err  error
}

// DefaultCapacity is the entry capacity New(0) selects.
const DefaultCapacity = 256

// New returns a cache holding up to capacity entries
// (DefaultCapacity when capacity <= 0).
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Cache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		inflight: make(map[string]*call),
	}
}

// Bind registers the cache's counters in reg under the cache/
// namespace. No-op when reg is nil.
func (c *Cache) Bind(reg *obs.Registry) {
	if c == nil || reg == nil {
		return
	}
	reg.BindCounter("cache/hits", &c.hits)
	reg.BindCounter("cache/misses", &c.misses)
	reg.BindCounter("cache/evictions", &c.evictions)
	reg.BindGauge("cache/entries", &c.entries)
}

// Outcome reports how GetOrCompute satisfied a request.
type Outcome uint8

const (
	// Hit: the value was already cached.
	Hit Outcome = iota
	// Miss: this call ran the compute function.
	Miss
	// Shared: an identical computation was already in flight; this
	// call waited for it instead of recomputing.
	Shared
)

// String names the outcome for response metadata and journal events.
func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Miss:
		return "miss"
	case Shared:
		return "shared"
	}
	return "unknown"
}

// Get returns the cached value for key, if any, marking it recently
// used. It does not join in-flight computations.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits.Inc()
		return el.Value.(*entry).val, true
	}
	return nil, false
}

// GetOrCompute returns the value for key, computing it with fn on a
// miss. Concurrent calls for the same key share one fn invocation: the
// first caller runs it, the rest block until it finishes (Outcome
// Shared). A successful value is inserted into the LRU; an error is
// returned to every waiter and nothing is cached.
func (c *Cache) GetOrCompute(key string, fn func() (any, error)) (any, Outcome, error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits.Inc()
		val := el.Value.(*entry).val
		c.mu.Unlock()
		return val, Hit, nil
	}
	if cl, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		<-cl.done
		return cl.val, Shared, cl.err
	}
	cl := &call{done: make(chan struct{})}
	c.inflight[key] = cl
	c.misses.Inc()
	c.mu.Unlock()

	cl.val, cl.err = fn()

	c.mu.Lock()
	delete(c.inflight, key)
	if cl.err == nil {
		c.insertLocked(key, cl.val)
	}
	c.mu.Unlock()
	close(cl.done)
	return cl.val, Miss, cl.err
}

// Add inserts a value directly (replacing any existing entry for key).
func (c *Cache) Add(key string, val any) {
	c.mu.Lock()
	c.insertLocked(key, val)
	c.mu.Unlock()
}

// insertLocked adds key -> val, evicting from the LRU tail when over
// capacity. Caller holds c.mu.
func (c *Cache) insertLocked(key string, val any) {
	if el, ok := c.items[key]; ok {
		el.Value.(*entry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&entry{key: key, val: val})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*entry).key)
		c.evictions.Inc()
	}
	c.entries.Set(int64(c.ll.Len()))
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns the cumulative hit/miss/eviction counts.
func (c *Cache) Stats() (hits, misses, evictions int64) {
	return c.hits.Load(), c.misses.Load(), c.evictions.Load()
}
