// Package cache is a content-addressed result cache with singleflight
// deduplication, the memory behind the serving layer (internal/serve):
// identical analysis requests hit a stored result instead of re-running
// the engine, and concurrent identical requests share one computation.
//
// It is two tiers. The in-memory LRU is bounded both by entry count
// and by bytes (entries are pre-encoded report JSON, whose sizes vary
// by orders of magnitude, so a count bound alone would leave memory
// unbounded). The optional disk tier (Disk) persists entries as
// checksummed content-addressed files, so warm state survives
// restarts: a memory miss falls through to disk before the engine
// runs, and Prewarm reloads the LRU on startup.
//
// The cache stores opaque values under string keys; the serving layer
// derives keys from SHA-256(sequence) plus the canonicalised analysis
// parameters (see serve.CacheKey), so two requests collide exactly when
// the engine would produce bit-identical reports for both. Errors are
// never cached: a failed computation is retried by the next request
// for the same key.
package cache

import (
	"container/list"
	"sync"

	"repro/internal/obs"
)

// Cache is a fixed-capacity LRU with integrated singleflight and an
// optional persistent tier. All methods are safe for concurrent use.
type Cache struct {
	mu       sync.Mutex
	capacity int
	maxBytes int64
	bytes    int64
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	inflight map[string]*call
	disk     *Disk

	hits      obs.Counter
	misses    obs.Counter
	evictions obs.Counter
	oversize  obs.Counter
	entries   obs.Gauge
	bytesG    obs.Gauge
}

type entry struct {
	key  string
	val  any
	size int64
}

// call is one in-flight computation (or disk read) other requests can
// wait on.
type call struct {
	done    chan struct{}
	val     any
	outcome Outcome
	err     error
	// absent marks a call that resolved without producing a value: a
	// disk-only probe (Get) whose key was on neither tier. Waiters from
	// GetOrCompute re-enter the lookup and run the computation
	// themselves; waiters from Get report a miss.
	absent bool
}

// DefaultCapacity is the entry capacity New(0) selects.
const DefaultCapacity = 256

// DefaultMaxBytes is the byte bound selected when none is given:
// 256 MiB, comfortably under the serving host's memory envelope while
// holding thousands of typical pre-encoded reports.
const DefaultMaxBytes = 256 << 20

// unknownEntrySize is charged for values whose size the cache cannot
// see ([]byte and string are measured exactly). Deliberately
// conservative: opaque values are rare (tests), and overcharging only
// evicts earlier.
const unknownEntrySize = 512

// New returns a cache holding up to capacity entries
// (DefaultCapacity when capacity <= 0) and DefaultMaxBytes bytes.
func New(capacity int) *Cache {
	return NewSized(capacity, 0)
}

// NewSized returns a cache bounded by capacity entries AND maxBytes
// bytes of stored values, whichever bites first (defaults for values
// <= 0). A value larger than maxBytes on its own is served but never
// cached (counted under cache/oversize).
func NewSized(capacity int, maxBytes int64) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	return &Cache{
		capacity: capacity,
		maxBytes: maxBytes,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		inflight: make(map[string]*call),
	}
}

// AttachDisk backs the LRU with a persistent tier: memory misses fall
// through to disk, and computed values are written through. Call
// before serving traffic.
func (c *Cache) AttachDisk(d *Disk) {
	c.mu.Lock()
	c.disk = d
	c.mu.Unlock()
}

// Disk returns the attached persistent tier (nil when none).
func (c *Cache) Disk() *Disk {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.disk
}

// Prewarm loads up to max entries (0 = capacity) from the disk tier
// into the LRU, verifying checksums as it goes, and returns how many
// were loaded. Corrupt files are quarantined, never loaded.
func (c *Cache) Prewarm(max int) int {
	d := c.Disk()
	if d == nil {
		return 0
	}
	if max <= 0 {
		max = c.capacity
	}
	loaded := 0
	d.Scan(func(key string, val []byte) bool { //nolint:errcheck // dir unreadable = nothing to warm
		c.mu.Lock()
		if _, ok := c.items[key]; !ok && c.bytes+int64(len(val)) <= c.maxBytes {
			c.insertLocked(key, val)
			loaded++
		}
		c.mu.Unlock()
		return loaded < max
	})
	return loaded
}

// sizeOf measures a stored value's memory charge.
func sizeOf(val any) int64 {
	switch v := val.(type) {
	case []byte:
		return int64(len(v))
	case string:
		return int64(len(v))
	default:
		return unknownEntrySize
	}
}

// Bind registers the cache's counters in reg under the cache/
// namespace (including the disk tier's, when attached). No-op when
// reg is nil.
func (c *Cache) Bind(reg *obs.Registry) {
	if c == nil || reg == nil {
		return
	}
	reg.BindCounter("cache/hits", &c.hits)
	reg.BindCounter("cache/misses", &c.misses)
	reg.BindCounter("cache/evictions", &c.evictions)
	reg.BindCounter("cache/oversize", &c.oversize)
	reg.BindGauge("cache/entries", &c.entries)
	reg.BindGauge("cache/bytes", &c.bytesG)
	c.Disk().Bind(reg)
}

// Outcome reports how GetOrCompute satisfied a request.
type Outcome uint8

const (
	// Hit: the value was already in memory.
	Hit Outcome = iota
	// Miss: this call ran the compute function.
	Miss
	// Shared: an identical computation was already in flight; this
	// call waited for it instead of recomputing.
	Shared
	// DiskHit: the value was read (and checksum-verified) from the
	// persistent tier instead of recomputed.
	DiskHit
)

// String names the outcome for response metadata and journal events.
func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Miss:
		return "miss"
	case Shared:
		return "shared"
	case DiskHit:
		return "disk"
	}
	return "unknown"
}

// Get returns the cached value for key, if any, marking it recently
// used. A memory miss falls through to the disk tier (the value is
// promoted into the LRU). The fall-through goes through the in-flight
// table: concurrent Gets for the same cold key share one checksummed
// disk read, and a Get racing an in-flight computation waits for it
// instead of reporting a spurious miss.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits.Inc()
		val := el.Value.(*entry).val
		c.mu.Unlock()
		return val, true
	}
	if cl, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		<-cl.done
		if cl.absent || cl.err != nil {
			return nil, false
		}
		return cl.val, true
	}
	cl := &call{done: make(chan struct{})}
	c.inflight[key] = cl
	disk := c.disk
	c.mu.Unlock()

	if val, ok := disk.Get(key); ok {
		cl.val, cl.outcome = val, DiskHit
	} else {
		cl.absent = true
		c.misses.Inc()
	}

	c.mu.Lock()
	delete(c.inflight, key)
	if !cl.absent {
		c.insertLocked(key, cl.val)
	}
	c.mu.Unlock()
	close(cl.done)
	if cl.absent {
		return nil, false
	}
	return cl.val, true
}

// GetOrCompute returns the value for key, computing it with fn on a
// full miss. Lookup order is memory, then the in-flight table, then
// the disk tier, then fn. Concurrent calls for the same key share one
// disk read or fn invocation: the first caller runs it, the rest block
// until it finishes (Outcome Shared). A successful value is inserted
// into the LRU (and, for computed []byte values, written through to
// disk); an error is returned to every waiter and nothing is cached.
func (c *Cache) GetOrCompute(key string, fn func() (any, error)) (any, Outcome, error) {
	var cl *call
	for cl == nil {
		c.mu.Lock()
		if el, ok := c.items[key]; ok {
			c.ll.MoveToFront(el)
			c.hits.Inc()
			val := el.Value.(*entry).val
			c.mu.Unlock()
			return val, Hit, nil
		}
		if waiting, ok := c.inflight[key]; ok {
			c.mu.Unlock()
			<-waiting.done
			if waiting.absent {
				// The in-flight call was a disk-only probe (Get) that
				// found nothing; it cannot satisfy a compute request.
				// Re-enter the lookup and run the computation.
				continue
			}
			return waiting.val, Shared, waiting.err
		}
		cl = &call{done: make(chan struct{}), outcome: Miss}
		c.inflight[key] = cl
		c.mu.Unlock()
	}
	disk := c.Disk()

	if val, ok := disk.Get(key); ok {
		cl.val, cl.outcome = val, DiskHit
	} else {
		cl.val, cl.err = fn()
		c.misses.Inc()
	}

	c.mu.Lock()
	delete(c.inflight, key)
	if cl.err == nil {
		c.insertLocked(key, cl.val)
	}
	c.mu.Unlock()
	close(cl.done)
	if cl.err == nil && cl.outcome == Miss {
		// Write-through: persist freshly computed values so they
		// survive a restart. Failures (e.g. ENOSPC) degrade the disk
		// tier, not the response.
		if b, ok := cl.val.([]byte); ok {
			disk.Put(key, b) //nolint:errcheck // counted in cache/disk_write_errors
		}
	}
	return cl.val, cl.outcome, cl.err
}

// Add inserts a value directly (replacing any existing entry for key).
func (c *Cache) Add(key string, val any) {
	c.mu.Lock()
	c.insertLocked(key, val)
	c.mu.Unlock()
}

// insertLocked adds key -> val, evicting from the LRU tail while over
// the entry or byte bound. Caller holds c.mu.
func (c *Cache) insertLocked(key string, val any) {
	size := sizeOf(val)
	if size > c.maxBytes {
		// Caching it would evict everything else for one entry the
		// next insert throws away; serve it uncached instead.
		c.oversize.Inc()
		return
	}
	if el, ok := c.items[key]; ok {
		e := el.Value.(*entry)
		c.bytes += size - e.size
		e.val, e.size = val, size
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&entry{key: key, val: val, size: size})
		c.bytes += size
	}
	for c.ll.Len() > 1 && (c.ll.Len() > c.capacity || c.bytes > c.maxBytes) {
		oldest := c.ll.Back()
		e := oldest.Value.(*entry)
		c.ll.Remove(oldest)
		delete(c.items, e.key)
		c.bytes -= e.size
		c.evictions.Inc()
	}
	c.entries.Set(int64(c.ll.Len()))
	c.bytesG.Set(c.bytes)
}

// Len returns the number of cached entries in memory.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes returns the summed size of the values cached in memory.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Stats returns the cumulative hit/miss/eviction counts.
func (c *Cache) Stats() (hits, misses, evictions int64) {
	return c.hits.Load(), c.misses.Load(), c.evictions.Load()
}
