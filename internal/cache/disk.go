package cache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"path/filepath"
	"strings"

	"repro/internal/atomicfile"
	"repro/internal/obs"
)

// Disk is the persistent tier under the in-memory LRU: one
// content-addressed file per entry, written atomically, with a
// SHA-256 footer verified on every read. Corruption is never served —
// a file whose checksum does not match is quarantined under a ".bad"
// suffix, counted, and treated as a miss, so the worst a flipped bit
// can cost is a recompute. Warm state therefore survives restarts
// (and SIGKILL: atomic writes mean a crash mid-Put leaves either the
// old file or no file, never a torn one).
//
// File layout: [4B big-endian key length][key][value][32B SHA-256 over
// everything before the footer]. Embedding the key makes the directory
// self-describing, which is what lets Scan pre-warm the LRU after a
// restart without an index file.
type Disk struct {
	dir  string
	fsys atomicfile.FS

	hits     obs.Counter
	misses   obs.Counter
	corrupt  obs.Counter
	writes   obs.Counter
	writeErr obs.Counter
}

const diskSuffix = ".res"

// OpenDisk opens (creating if needed) a disk tier rooted at dir.
// fsys nil selects the real filesystem; tests inject faultfs.
func OpenDisk(dir string, fsys atomicfile.FS) (*Disk, error) {
	if fsys == nil {
		fsys = atomicfile.OS()
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: disk tier: %w", err)
	}
	return &Disk{dir: dir, fsys: fsys}, nil
}

// Bind registers the tier's counters in reg under the cache/disk_*
// names. No-op when either side is nil.
func (d *Disk) Bind(reg *obs.Registry) {
	if d == nil || reg == nil {
		return
	}
	reg.BindCounter("cache/disk_hits", &d.hits)
	reg.BindCounter("cache/disk_misses", &d.misses)
	reg.BindCounter("cache/disk_corrupt", &d.corrupt)
	reg.BindCounter("cache/disk_writes", &d.writes)
	reg.BindCounter("cache/disk_write_errors", &d.writeErr)
}

// path maps a cache key to its file. Keys from the serving layer are
// already lowercase hex; anything else is re-addressed through SHA-256
// so arbitrary keys cannot escape the directory.
func (d *Disk) path(key string) string {
	safe := len(key) > 0 && len(key) <= 128
	for i := 0; safe && i < len(key); i++ {
		c := key[i]
		safe = c == '-' || c == '_' ||
			('0' <= c && c <= '9') || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
	}
	if !safe {
		sum := sha256.Sum256([]byte(key))
		key = hex.EncodeToString(sum[:])
	}
	return filepath.Join(d.dir, key+diskSuffix)
}

// encode frames key+val with the checksum footer.
func encode(key string, val []byte) []byte {
	buf := make([]byte, 0, 4+len(key)+len(val)+sha256.Size)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(key)))
	buf = append(buf, key...)
	buf = append(buf, val...)
	sum := sha256.Sum256(buf)
	return append(buf, sum[:]...)
}

// decode verifies the footer and recovers (key, val). ok is false for
// any framing or checksum failure.
func decode(data []byte) (key string, val []byte, ok bool) {
	if len(data) < 4+sha256.Size {
		return "", nil, false
	}
	body, foot := data[:len(data)-sha256.Size], data[len(data)-sha256.Size:]
	if sha256.Sum256(body) != [sha256.Size]byte(foot) {
		return "", nil, false
	}
	klen := binary.BigEndian.Uint32(body)
	if int64(4)+int64(klen) > int64(len(body)) {
		return "", nil, false
	}
	return string(body[4 : 4+klen]), body[4+klen:], true
}

// Get returns the stored value for key. A missing file is a plain
// miss; a present-but-corrupt file is quarantined (renamed to
// <name>.bad), counted under cache/disk_corrupt, and reported as a
// miss — corrupt bytes are never returned.
func (d *Disk) Get(key string) ([]byte, bool) {
	if d == nil {
		return nil, false
	}
	path := d.path(key)
	data, err := d.fsys.ReadFile(path)
	if err != nil {
		d.misses.Inc()
		return nil, false
	}
	storedKey, val, ok := decode(data)
	if !ok || storedKey != key {
		d.quarantine(path)
		d.misses.Inc()
		return nil, false
	}
	d.hits.Inc()
	return val, true
}

// Put stores val under key, atomically. Errors (e.g. ENOSPC) are
// counted and returned; the tier degrades to a smaller working set
// rather than poisoning the directory.
func (d *Disk) Put(key string, val []byte) error {
	if d == nil {
		return nil
	}
	if err := d.fsys.WriteFile(d.path(key), encode(key, val), 0o644); err != nil {
		d.writeErr.Inc()
		return err
	}
	d.writes.Inc()
	return nil
}

// quarantine moves a corrupt file aside so it is kept for post-mortems
// but can never be served; if even the rename fails, the file is
// removed outright.
func (d *Disk) quarantine(path string) {
	d.corrupt.Inc()
	if err := d.fsys.Rename(path, path+".bad"); err != nil {
		d.fsys.Remove(path) //nolint:errcheck // already corrupt; best effort
	}
}

// Scan verifies every entry in the tier and calls fn(key, val) for
// each good one, quarantining corrupt files as it goes. fn returning
// false stops the scan. Used to pre-warm the in-memory LRU on restart.
func (d *Disk) Scan(fn func(key string, val []byte) bool) error {
	if d == nil {
		return nil
	}
	ents, err := d.fsys.ReadDir(d.dir)
	if err != nil {
		return fmt.Errorf("cache: disk scan: %w", err)
	}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), diskSuffix) {
			continue
		}
		path := filepath.Join(d.dir, e.Name())
		data, err := d.fsys.ReadFile(path)
		if err != nil {
			continue
		}
		key, val, ok := decode(data)
		if !ok {
			d.quarantine(path)
			continue
		}
		if !fn(key, val) {
			break
		}
	}
	return nil
}

// Len counts the (unverified) entries on disk, excluding quarantined
// files. Used by tests and the stats endpoint.
func (d *Disk) Len() int {
	if d == nil {
		return 0
	}
	ents, err := d.fsys.ReadDir(d.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), diskSuffix) {
			n++
		}
	}
	return n
}

// Dir returns the tier's root directory.
func (d *Disk) Dir() string {
	if d == nil {
		return ""
	}
	return d.dir
}

// CorruptCount returns how many corrupt files have been quarantined.
func (d *Disk) CorruptCount() int64 { return d.corrupt.Load() }
