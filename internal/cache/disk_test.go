package cache

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/atomicfile"
	"repro/internal/atomicfile/faultfs"
	"repro/internal/obs"
)

func TestDiskRoundTrip(t *testing.T) {
	d, err := OpenDisk(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	val := bytes.Repeat([]byte(`{"x":1}`), 100)
	if err := d.Put("k1", val); err != nil {
		t.Fatal(err)
	}
	got, ok := d.Get("k1")
	if !ok || !bytes.Equal(got, val) {
		t.Fatalf("Get = %v, %v", ok, got)
	}
	if _, ok := d.Get("absent"); ok {
		t.Fatal("Get(absent) hit")
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d", d.Len())
	}
}

// A flipped bit anywhere in the file must be detected, quarantined to
// a .bad file, counted, and treated as a miss — never served.
func TestDiskCorruptionQuarantined(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put("deadbeef", []byte("precious result bytes")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "deadbeef.res")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, ok := d.Get("deadbeef"); ok {
		t.Fatal("corrupt entry was served")
	}
	if d.CorruptCount() != 1 {
		t.Fatalf("CorruptCount = %d, want 1", d.CorruptCount())
	}
	if _, err := os.Stat(path + ".bad"); err != nil {
		t.Fatalf("no quarantine file: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt file still in place")
	}
	if d.Len() != 0 {
		t.Fatalf("Len after quarantine = %d", d.Len())
	}
}

// Read-side bit flips injected by faultfs are caught the same way.
func TestDiskBitFlipInjected(t *testing.T) {
	fsys := faultfs.Wrap(atomicfile.OS(), faultfs.Config{Seed: 11, BitFlipProb: 1})
	d, err := OpenDisk(t.TempDir(), fsys)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put("k", bytes.Repeat([]byte{0xAA}, 256)); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Get("k"); ok {
		t.Fatal("bit-flipped entry was served")
	}
	if d.CorruptCount() == 0 {
		t.Fatal("corruption not counted")
	}
}

func TestDiskENOSPCDegradesNotPoisons(t *testing.T) {
	fsys := faultfs.Wrap(atomicfile.OS(), faultfs.Config{WriteBudget: 400})
	d, err := OpenDisk(t.TempDir(), fsys)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put("small", make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if err := d.Put("big", make([]byte, 1024)); err == nil {
		t.Fatal("Put over budget succeeded")
	}
	// The failed write must not have damaged the stored entry or left
	// a torn file behind.
	if _, ok := d.Get("small"); !ok {
		t.Fatal("earlier entry lost")
	}
	if _, ok := d.Get("big"); ok {
		t.Fatal("partial entry served")
	}
	if d.CorruptCount() != 0 {
		t.Fatal("atomic write failure produced a corrupt file")
	}
}

func TestCacheDiskFallthroughAndPrewarm(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := New(8)
	c.AttachDisk(d)

	computes := 0
	compute := func() (any, error) { computes++; return []byte("v1"), nil }

	// Miss everywhere: computed, cached in memory AND written through.
	if _, out, err := c.GetOrCompute("k1", compute); err != nil || out != Miss {
		t.Fatalf("first: %v %v", out, err)
	}
	if d.Len() != 1 {
		t.Fatalf("write-through missing: disk Len = %d", d.Len())
	}

	// A fresh cache over the same directory: memory is cold, disk is
	// warm — the engine must not run.
	c2 := New(8)
	c2.AttachDisk(d)
	v, out, err := c2.GetOrCompute("k1", compute)
	if err != nil || out != DiskHit || string(v.([]byte)) != "v1" {
		t.Fatalf("disk fallthrough: %v %v %v", v, out, err)
	}
	// Promoted: next lookup is a memory hit.
	if _, out, _ := c2.GetOrCompute("k1", compute); out != Hit {
		t.Fatalf("promotion: outcome %v", out)
	}
	if computes != 1 {
		t.Fatalf("compute ran %d times, want 1", computes)
	}

	// Prewarm loads disk state into a cold LRU up front.
	c3 := New(8)
	c3.AttachDisk(d)
	if n := c3.Prewarm(0); n != 1 {
		t.Fatalf("Prewarm = %d, want 1", n)
	}
	if _, out, _ := c3.GetOrCompute("k1", compute); out != Hit {
		t.Fatalf("prewarmed lookup: outcome %v", out)
	}

	// Plain Get falls through to disk too.
	c4 := New(8)
	c4.AttachDisk(d)
	if _, ok := c4.Get("k1"); !ok {
		t.Fatal("Get did not consult the disk tier")
	}
}

func TestByteBoundEviction(t *testing.T) {
	// 10 entries allowed by count, but only ~3 by bytes.
	c := NewSized(10, 3*100)
	for i := 0; i < 6; i++ {
		c.Add(fmt.Sprintf("k%d", i), make([]byte, 100))
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (byte bound)", c.Len())
	}
	if c.Bytes() != 300 {
		t.Fatalf("Bytes = %d, want 300", c.Bytes())
	}
	// Newest survive, oldest evicted.
	if _, ok := c.Get("k5"); !ok {
		t.Fatal("newest entry evicted")
	}
	if _, ok := c.Get("k0"); ok {
		t.Fatal("oldest entry survived the byte bound")
	}
	_, _, ev := c.Stats()
	if ev != 3 {
		t.Fatalf("evictions = %d, want 3", ev)
	}
}

func TestOversizeValueNeverCached(t *testing.T) {
	c := NewSized(10, 100)
	got, out, err := c.GetOrCompute("big", func() (any, error) {
		return make([]byte, 1000), nil
	})
	if err != nil || out != Miss || len(got.([]byte)) != 1000 {
		t.Fatalf("oversize serve: %v %v", out, err)
	}
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatalf("oversize value cached: len %d bytes %d", c.Len(), c.Bytes())
	}
	// Normal entries still cache fine afterwards.
	c.Add("small", make([]byte, 10))
	if c.Len() != 1 {
		t.Fatal("small entry not cached")
	}
}

// Replacing an entry adjusts the byte account instead of leaking it.
func TestReplaceAdjustsBytes(t *testing.T) {
	c := NewSized(4, 1000)
	c.Add("k", make([]byte, 100))
	c.Add("k", make([]byte, 300))
	if c.Bytes() != 300 {
		t.Fatalf("Bytes = %d, want 300", c.Bytes())
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

// Keys that are not filesystem-safe are re-addressed, not written
// verbatim.
func TestDiskUnsafeKey(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	key := "../escape/" + strings.Repeat("x", 200)
	if err := d.Put(key, []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Get(key); !ok {
		t.Fatal("unsafe key roundtrip failed")
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 1 || strings.Contains(ents[0].Name(), "..") {
		t.Fatalf("unexpected dir contents: %v", ents)
	}
}

func TestDiskBindAndDir(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.Dir() != dir {
		t.Errorf("Dir() = %q, want %q", d.Dir(), dir)
	}
	reg := obs.NewRegistry()
	d.Bind(reg)
	if err := d.Put("aa", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Get("aa"); !ok {
		t.Fatal("get after put missed")
	}
	d.Get("bb")
	snap := reg.Snapshot()
	for name, want := range map[string]int64{
		"cache/disk_hits": 1, "cache/disk_misses": 1, "cache/disk_writes": 1,
	} {
		if got := snap.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	// Nil receivers and nil registries must be no-ops.
	var nilDisk *Disk
	nilDisk.Bind(reg)
	d.Bind(nil)
}

func TestOutcomeStrings(t *testing.T) {
	for o, want := range map[Outcome]string{
		Hit: "hit", Miss: "miss", Shared: "shared", DiskHit: "disk", Outcome(99): "unknown",
	} {
		if got := o.String(); got != want {
			t.Errorf("Outcome(%d).String() = %q, want %q", o, got, want)
		}
	}
}
