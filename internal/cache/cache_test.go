package cache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
)

func TestLRUEviction(t *testing.T) {
	c := New(3)
	for i := 0; i < 3; i++ {
		c.Add(fmt.Sprintf("k%d", i), i)
	}
	// Touch k0 so k1 becomes the eviction victim.
	if _, ok := c.Get("k0"); !ok {
		t.Fatal("k0 missing")
	}
	c.Add("k3", 3)
	if _, ok := c.Get("k1"); ok {
		t.Error("k1 should have been evicted (LRU)")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s should have survived", k)
		}
	}
	if _, _, ev := c.Stats(); ev != 1 {
		t.Errorf("evictions = %d, want 1", ev)
	}
	if c.Len() != 3 {
		t.Errorf("len = %d, want 3", c.Len())
	}
}

func TestGetOrComputeCachesValues(t *testing.T) {
	c := New(8)
	calls := 0
	fn := func() (any, error) { calls++; return "v", nil }

	v, out, err := c.GetOrCompute("k", fn)
	if err != nil || v != "v" || out != Miss {
		t.Fatalf("first call: v=%v outcome=%v err=%v", v, out, err)
	}
	v, out, err = c.GetOrCompute("k", fn)
	if err != nil || v != "v" || out != Hit {
		t.Fatalf("second call: v=%v outcome=%v err=%v", v, out, err)
	}
	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1", calls)
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	c := New(8)
	boom := errors.New("boom")
	_, _, err := c.GetOrCompute("k", func() (any, error) { return nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if c.Len() != 0 {
		t.Fatal("error result was cached")
	}
	v, out, err := c.GetOrCompute("k", func() (any, error) { return 42, nil })
	if err != nil || v != 42 || out != Miss {
		t.Fatalf("retry after error: v=%v outcome=%v err=%v", v, out, err)
	}
}

// TestSingleflightDedup asserts that concurrent identical requests
// share exactly one computation.
func TestSingleflightDedup(t *testing.T) {
	c := New(8)
	var runs atomic.Int64
	gate := make(chan struct{})

	const waiters = 32
	var wg sync.WaitGroup
	outcomes := make([]Outcome, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, out, err := c.GetOrCompute("k", func() (any, error) {
				runs.Add(1)
				<-gate // hold the computation open so others pile up
				return "shared", nil
			})
			if err != nil || v != "shared" {
				t.Errorf("waiter %d: v=%v err=%v", i, v, err)
			}
			outcomes[i] = out
		}(i)
	}
	// Let every goroutine reach the cache before releasing the leader.
	for c.inflightLen() == 0 {
	}
	close(gate)
	wg.Wait()

	if got := runs.Load(); got != 1 {
		t.Fatalf("computation ran %d times, want 1", got)
	}
	var miss, shared int
	for _, o := range outcomes {
		switch o {
		case Miss:
			miss++
		case Shared:
			shared++
		}
	}
	if miss != 1 {
		t.Errorf("%d Miss outcomes, want exactly 1 (got %d Shared)", miss, shared)
	}
}

// TestConcurrentGetSharesDiskRead is the regression test for the disk
// fall-through bypassing the singleflight table: concurrent Gets for
// the same cold key must share exactly one checksummed disk read, every
// caller must see the value, and the outcome must be counted as a disk
// hit (not silently unrecorded).
func TestConcurrentGetSharesDiskRead(t *testing.T) {
	d, err := OpenDisk(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put("k", []byte("persisted")); err != nil {
		t.Fatal(err)
	}
	c := New(8)
	c.AttachDisk(d)
	reg := obs.NewRegistry()
	c.Bind(reg)

	const waiters = 32
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			v, ok := c.Get("k")
			if !ok {
				t.Errorf("waiter %d: miss on disk-resident key", i)
				return
			}
			if string(v.([]byte)) != "persisted" {
				t.Errorf("waiter %d: got %q", i, v)
			}
		}(i)
	}
	close(start)
	wg.Wait()

	snap := reg.Snapshot()
	if got := snap.Counters["cache/disk_hits"]; got != 1 {
		t.Errorf("disk_hits = %d, want 1 (singleflight should share one read)", got)
	}
	if got := snap.Counters["cache/misses"]; got != 0 {
		t.Errorf("misses = %d, want 0 (key was on disk)", got)
	}
	// The disk hit promotes the value: a later Get is a memory hit.
	if _, ok := c.Get("k"); !ok {
		t.Fatal("promoted key missing from memory tier")
	}
	if snap := reg.Snapshot(); snap.Counters["cache/hits"] == 0 {
		t.Error("promotion did not register a memory hit")
	}
}

// TestGetMissCounted pins that a full miss through Get (neither tier)
// increments the miss counter exactly once per probe.
func TestGetMissCounted(t *testing.T) {
	c := New(8)
	reg := obs.NewRegistry()
	c.Bind(reg)
	if _, ok := c.Get("absent"); ok {
		t.Fatal("unexpected hit")
	}
	if got := reg.Snapshot().Counters["cache/misses"]; got != 1 {
		t.Errorf("misses = %d, want 1", got)
	}
}

// TestGetAbsentThenCompute exercises the absent-call handoff: a Get
// probe that finds nothing must not poison a concurrent GetOrCompute,
// which re-enters the lookup and runs the computation itself.
func TestGetAbsentThenCompute(t *testing.T) {
	c := New(8)
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("k%d", i)
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); c.Get(key) }()
		var v any
		var err error
		go func() {
			defer wg.Done()
			v, _, err = c.GetOrCompute(key, func() (any, error) { return "computed", nil })
		}()
		wg.Wait()
		if err != nil || v != "computed" {
			t.Fatalf("iter %d: v=%v err=%v", i, v, err)
		}
	}
}

// inflightLen is a test helper reading the in-flight map size.
func (c *Cache) inflightLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.inflight)
}

// TestEvictionSingleflightRace hammers a small cache from many
// goroutines with overlapping keys so insertions, evictions, hits, and
// singleflight joins interleave; run with -race. Every call must get
// the value its key maps to, regardless of cache churn.
func TestEvictionSingleflightRace(t *testing.T) {
	c := New(4) // far smaller than the key space, so evictions are constant
	reg := obs.NewRegistry()
	c.Bind(reg)

	const goroutines = 16
	const iters = 400
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				key := fmt.Sprintf("k%d", (g+i)%12)
				want := "v-" + key
				v, _, err := c.GetOrCompute(key, func() (any, error) {
					return "v-" + key, nil
				})
				if err != nil {
					t.Errorf("GetOrCompute(%s): %v", key, err)
					return
				}
				if v != want {
					t.Errorf("GetOrCompute(%s) = %v, want %v", key, v, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	if c.Len() > 4 {
		t.Errorf("cache grew past capacity: %d", c.Len())
	}
	snap := reg.Snapshot()
	hits, misses := snap.Counters["cache/hits"], snap.Counters["cache/misses"]
	if hits+misses == 0 {
		t.Error("no cache traffic recorded")
	}
	if snap.Counters["cache/evictions"] == 0 {
		t.Error("expected evictions with 12 keys in a 4-entry cache")
	}
}
