package topalign

import (
	"testing"
	"testing/quick"

	"repro/internal/seq"
)

// Property: on random repeat-bearing sequences the core invariants hold:
// nonoverlapping pairs, non-increasing scores, positive scores, pairs
// strictly increasing along each path, and the first top equal to the
// best split score.
func TestFindInvariantsProperty(t *testing.T) {
	f := func(seed uint64, lenPick, topsPick uint8) bool {
		n := 60 + int(lenPick)%120
		tops := 2 + int(topsPick)%6
		s := seq.SyntheticTitin(n, seed).Codes
		res, err := Find(s, Config{Params: proteinParams, NumTops: tops})
		if err != nil {
			return false
		}
		seen := map[Pair]bool{}
		prevScore := int32(1 << 30)
		for _, top := range res.Tops {
			if top.Score <= 0 || top.Score > prevScore {
				return false
			}
			prevScore = top.Score
			if top.Split < 1 || top.Split > n-1 {
				return false
			}
			for i, p := range top.Pairs {
				if p.I < 1 || p.J <= p.I || p.J > n {
					return false
				}
				if p.I > top.Split || p.J <= top.Split {
					return false // pairs must respect the split
				}
				if i > 0 && (p.I <= top.Pairs[i-1].I || p.J <= top.Pairs[i-1].J) {
					return false
				}
				if seen[p] {
					return false
				}
				seen[p] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: group-scheduling mode is equivalent to scalar mode on random
// inputs (fuzz version of the fixed-seed equivalence test).
func TestGroupEquivalenceProperty(t *testing.T) {
	f := func(seed uint64, lanePick bool) bool {
		lanes := 4
		if lanePick {
			lanes = 8
		}
		n := 70 + int(seed%80)
		s := seq.SyntheticTitin(n, seed).Codes
		a, err := Find(s, Config{Params: proteinParams, NumTops: 5})
		if err != nil {
			return false
		}
		b, err := Find(s, Config{Params: proteinParams, NumTops: 5, GroupLanes: lanes})
		if err != nil {
			return false
		}
		if len(a.Tops) != len(b.Tops) {
			return false
		}
		for i := range a.Tops {
			if a.Tops[i].Score != b.Tops[i].Score || a.Tops[i].Split != b.Tops[i].Split {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: results are a deterministic function of the input — two runs
// agree pair for pair.
func TestDeterminismProperty(t *testing.T) {
	f := func(seed uint64) bool {
		s := seq.SyntheticTitin(100, seed).Codes
		a, err := Find(s, Config{Params: proteinParams, NumTops: 6})
		if err != nil {
			return false
		}
		b, err := Find(s, Config{Params: proteinParams, NumTops: 6})
		if err != nil {
			return false
		}
		for i := range a.Tops {
			if len(a.Tops[i].Pairs) != len(b.Tops[i].Pairs) {
				return false
			}
			for j := range a.Tops[i].Pairs {
				if a.Tops[i].Pairs[j] != b.Tops[i].Pairs[j] {
					return false
				}
			}
		}
		return len(a.Tops) == len(b.Tops)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Engine misuse must error, not panic.
func TestEngineAcceptErrors(t *testing.T) {
	e, err := NewEngine(seq.PaperATGC().Codes, Config{Params: dnaParams, NumTops: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.AcceptTop(4); err == nil {
		t.Error("accepting a never-aligned split did not error")
	}
	// align a hopeless split, then try to accept it with no valid ending
	hopeless, err := NewEngine(seq.DNA.MustEncode("ACGT"), Config{Params: dnaParams, NumTops: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := hopeless.AlignScore(1, nil); got != 0 {
		t.Fatalf("split 1 of ACGT scored %d, want 0", got)
	}
	if _, err := hopeless.AcceptTop(1); err == nil {
		t.Error("accepting a zero-score split did not error")
	}
}

func TestEngineAccessors(t *testing.T) {
	s := seq.PaperATGC().Codes
	e, err := NewEngine(s, Config{Params: dnaParams, NumTops: 2})
	if err != nil {
		t.Fatal(err)
	}
	if e.Len() != 12 || e.NumSplits() != 11 {
		t.Errorf("Len/NumSplits = %d/%d", e.Len(), e.NumSplits())
	}
	if e.NumTopsFound() != 0 || len(e.Tops()) != 0 {
		t.Error("fresh engine has tops")
	}
	snap := e.TriangleSnapshot()
	if snap.Count() != 0 || snap == e.Triangle() {
		t.Error("snapshot not an independent empty clone")
	}
	if e.Config().MinScore != 1 {
		t.Errorf("default MinScore = %d", e.Config().MinScore)
	}
	if e.OrigRows().Len() != 0 {
		t.Error("fresh engine has stored rows")
	}
}
