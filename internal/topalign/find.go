package topalign

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/triangle"
)

// Find computes cfg.NumTops nonoverlapping top alignments of s using the
// paper's sequential algorithm (Figure 5). It returns fewer alignments
// if no remaining candidate reaches cfg.MinScore.
func Find(s []byte, cfg Config) (*Result, error) {
	e, err := NewEngine(s, cfg)
	if err != nil {
		return nil, err
	}
	if err := Run(e); err != nil {
		return nil, err
	}
	return &Result{
		SeqLen: e.Len(),
		Tops:   e.Tops(),
		Stats:  e.cfg.Counters.Snapshot(),
	}, nil
}

// Run drives an engine to completion sequentially. It is separated from
// Find so that callers (and tests) can inspect engine state afterwards.
func Run(e *Engine) error {
	q := InitialQueue(e)
	cfg := e.Config()
	for e.NumTopsFound() < cfg.NumTops && q.Len() > 0 {
		t := q.Pop()
		if t.Score != Infinity && t.Score < cfg.MinScore {
			// The best possible remaining score is below threshold:
			// no further top alignment is worth accepting.
			return nil
		}
		if t.AlignedWith == e.NumTopsFound() {
			// The task's score is exact under the current triangle and
			// it is the queue's maximum: accept it (lines 12-14 of
			// Figure 5).
			if _, err := Accept(e, t); err != nil {
				return err
			}
		} else {
			// Stale: realign against the current triangle (lines 16-17).
			Realign(e, t, e.Triangle(), e.NumTopsFound())
		}
		q.Push(t)
	}
	return nil
}

// InitialQueue builds the initial task queue for an engine: one task per
// split in scalar mode, one per fixed neighbour group in group mode, all
// with infinite score and never aligned (lines 2-7 of Figure 5).
func InitialQueue(e *Engine) *TaskQueue {
	q := NewTaskQueue()
	lanes := e.Config().GroupLanes
	for r := 1; r <= e.NumSplits(); r += lanes {
		q.Push(&Task{R: r, Score: Infinity, AlignedWith: -1})
		e.Config().Trace.Record(obs.EvEnqueue, -1, int64(r), 0)
	}
	return q
}

// Realign (re)aligns a task against the triangle snapshot tri, which
// corresponds to topNum accepted top alignments, and updates the task's
// score and AlignedWith stamp. The new score is exact for that triangle
// and remains a valid upper bound for any later (larger) triangle.
// Sequential callers use this engine-scratch variant; concurrent
// schedulers pass an immutable snapshot and a per-worker Scratch to
// RealignS.
func Realign(e *Engine, t *Task, tri *triangle.Triangle, topNum int) {
	RealignS(e, t, tri, topNum, &e.own)
}

// RealignS is Realign with an explicit Scratch. The task's member-score
// slice is reused across realignments, so a warm task realigns without
// allocation.
func RealignS(e *Engine, t *Task, tri *triangle.Triangle, topNum int, sc *Scratch) {
	if e.Config().GroupLanes > 1 {
		t.MemberScores = e.AlignGroupScoreS(t.R, tri, sc, t.MemberScores)
		t.Score = maxScore(t.MemberScores)
	} else {
		t.Score = e.AlignScoreS(t.R, tri, sc)
	}
	t.AlignedWith = topNum
	e.Config().Trace.Record(obs.EvRealign, -1, int64(t.R), int64(t.Score))
}

// Accept accepts the task's best member as the next top alignment and
// refreshes the task's member bookkeeping.
func Accept(e *Engine, t *Task) (TopAlignment, error) {
	return AcceptS(e, t, &e.own)
}

// AcceptS is Accept with an explicit Scratch for the traceback matrix.
func AcceptS(e *Engine, t *Task, sc *Scratch) (TopAlignment, error) {
	r := t.R
	if e.Config().GroupLanes > 1 {
		if len(t.MemberScores) == 0 {
			return TopAlignment{}, fmt.Errorf("topalign: accepting group %d with no member scores", t.R)
		}
		best := 0
		for i, s := range t.MemberScores {
			if s > t.MemberScores[best] {
				best = i
			}
		}
		r = t.R + best
	}
	return e.AcceptTopS(r, sc)
}

func maxScore(scores []int32) int32 {
	best := int32(0)
	for _, s := range scores {
		if s > best {
			best = s
		}
	}
	return best
}
