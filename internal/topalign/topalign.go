// Package topalign implements the paper's primary contribution: the
// O(n^3) sequential algorithm for computing nonoverlapping top
// alignments (Section 3 and Appendix A), around three ideas:
//
//   - overriding zeros: residue pairs already part of a top alignment are
//     recorded in an override triangle and force matrix entries to zero
//     during realignment, so new alignments cannot reuse them;
//   - a best-first task queue: a split's score from an older triangle is
//     an upper bound under the current one, so realignments are ordered
//     by stale score and most never happen (typically 90-97% avoided);
//   - shadow rejection: each split's bottom row from its first (unmasked)
//     alignment is stored; a realignment ending whose value differs was
//     artificially rerouted around an existing alignment and is invalid.
//
// The package provides the sequential driver (Find) and an Engine with
// the single-task operations the shared-memory and distributed
// schedulers in packages parallel and cluster are built from.
package topalign

import (
	"fmt"
	"math"

	"repro/internal/align"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/stats"
)

// Infinity is the initial task score: every split must be aligned once
// before it can possibly be accepted (Figure 5 initialises all scores to
// infinity).
const Infinity = int32(math.MaxInt32)

// Pair is a matched residue pair of a top alignment, in global sequence
// positions (1-based, I < J).
type Pair struct {
	I, J int
}

// TopAlignment is one accepted nonoverlapping top alignment.
type TopAlignment struct {
	Index int    // 1-based acceptance order
	Split int    // the split r whose matrix produced the alignment
	Score int32  // alignment score
	Pairs []Pair // matched global position pairs, path order
}

// Overlaps reports whether two top alignments share a matched pair.
func (t TopAlignment) Overlaps(o TopAlignment) bool {
	set := make(map[Pair]bool, len(t.Pairs))
	for _, p := range t.Pairs {
		set[p] = true
	}
	for _, p := range o.Pairs {
		if set[p] {
			return true
		}
	}
	return false
}

// Config controls a top-alignment computation.
type Config struct {
	// Params is the scoring model (exchange matrix + affine gaps).
	Params align.Params
	// NumTops is the number of top alignments requested (the paper
	// typically uses 10-50). Fewer may be returned if scores dry up.
	NumTops int
	// MinScore stops the search once no remaining alignment can reach
	// it. Zero means 1 (any positive-scoring alignment qualifies).
	MinScore int32
	// GroupLanes selects the SIMD-style neighbour-group scheduling of
	// Section 4.1: 0 or 1 aligns one matrix per task; 4, 8, or 16 align
	// a fixed group of neighbouring matrices per task using the group
	// kernels (16 enables the int16x16 AVX2 tier where supported).
	GroupLanes int
	// Striped selects the cache-aware vertical-stripe kernel for
	// scalar score-only alignments.
	Striped bool
	// StripeWidth overrides the stripe width (0 = default).
	StripeWidth int
	// Counters receives instrumentation; may be nil.
	Counters *stats.Counters
	// Trace receives task-queue events (enqueue, realign, accept,
	// shadow-reject, speculation-waste) so a run can be traced and
	// replayed; may be nil.
	Trace *obs.Journal
	// Spans, when non-nil, records request-scoped trace spans: one
	// engine.accept span per accepted top alignment, parented under
	// SpanParent and stamped with SpanRank. Bounded by NumTops, so a
	// traced run adds no per-task recording cost. Whoever sets Spans
	// sets SpanRank too (-1 local/server, 0 cluster master).
	Spans      *trace.Recorder
	SpanParent trace.SpanID
	SpanRank   int32
}

// withDefaults validates and normalises a Config.
func (c Config) withDefaults() (Config, error) {
	if err := c.Params.Validate(); err != nil {
		return c, err
	}
	if c.NumTops < 1 {
		return c, fmt.Errorf("topalign: NumTops %d must be at least 1", c.NumTops)
	}
	if c.MinScore <= 0 {
		c.MinScore = 1
	}
	switch c.GroupLanes {
	case 0, 1:
		c.GroupLanes = 1
	case 4, 8, 16:
	default:
		return c, fmt.Errorf("topalign: GroupLanes %d must be 0, 1, 4, 8, or 16", c.GroupLanes)
	}
	return c, nil
}

// Result is the outcome of a Find run.
type Result struct {
	SeqLen int
	Tops   []TopAlignment
	Stats  stats.Snapshot
}
