package topalign

import (
	"testing"

	"repro/internal/align"
	"repro/internal/scoring"
	"repro/internal/seq"
	"repro/internal/stats"
)

var (
	dnaParams     = align.Params{Exch: scoring.PaperDNA, Gap: scoring.PaperGap}
	proteinParams = align.Params{Exch: scoring.BLOSUM62, Gap: scoring.DefaultProteinGap}
)

// TestFigure4 reproduces the three nonoverlapping top alignments of
// Figure 4: for ATGCATGCATGC the first two (equivalent) top alignments
// match the prefix ATGC against the two ATGC occurrences of the suffix,
// and the third matches ATGC(5-8) against ATGC(9-12).
func TestFigure4(t *testing.T) {
	s := seq.PaperATGC()
	res, err := Find(s.Codes, Config{Params: dnaParams, NumTops: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tops) != 3 {
		t.Fatalf("got %d tops, want 3", len(res.Tops))
	}
	want := [][]Pair{
		{{1, 5}, {2, 6}, {3, 7}, {4, 8}},
		{{1, 9}, {2, 10}, {3, 11}, {4, 12}},
		{{5, 9}, {6, 10}, {7, 11}, {8, 12}},
	}
	for i, top := range res.Tops {
		if top.Score != 8 {
			t.Errorf("top %d score = %d, want 8 (four +2 matches)", i+1, top.Score)
		}
		if top.Index != i+1 {
			t.Errorf("top %d index = %d", i+1, top.Index)
		}
		if !pairsEqual(top.Pairs, want[i]) {
			t.Errorf("top %d pairs = %v, want %v", i+1, top.Pairs, want[i])
		}
	}
	// Figure 4's discussion: alignments 1 and 3 are separate top
	// alignments; all three must be mutually nonoverlapping.
	for i := range res.Tops {
		for j := i + 1; j < len(res.Tops); j++ {
			if res.Tops[i].Overlaps(res.Tops[j]) {
				t.Errorf("tops %d and %d overlap", i+1, j+1)
			}
		}
	}
}

func TestNonoverlapInvariant(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		q := seq.SyntheticTitin(200, seed)
		res, err := Find(q.Codes, Config{Params: proteinParams, NumTops: 12})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Tops) < 2 {
			t.Fatalf("seed %d: only %d tops found", seed, len(res.Tops))
		}
		seen := map[Pair]int{}
		for _, top := range res.Tops {
			for _, p := range top.Pairs {
				if p.I < 1 || p.J <= p.I || p.J > 200 {
					t.Fatalf("invalid pair %v", p)
				}
				if prev, dup := seen[p]; dup {
					t.Fatalf("pair %v in tops %d and %d", p, prev, top.Index)
				}
				seen[p] = top.Index
			}
		}
	}
}

// Top alignment scores must be non-increasing in acceptance order: each
// new top is the best alignment not overlapping its predecessors.
func TestScoresNonIncreasing(t *testing.T) {
	q := seq.SyntheticTitin(250, 7)
	res, err := Find(q.Codes, Config{Params: proteinParams, NumTops: 15})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Tops); i++ {
		if res.Tops[i].Score > res.Tops[i-1].Score {
			t.Errorf("top %d score %d exceeds top %d score %d",
				i+1, res.Tops[i].Score, i, res.Tops[i-1].Score)
		}
	}
}

// The first top alignment must be the globally best split alignment:
// brute-force over all splits with the plain kernel.
func TestFirstTopIsGlobalBest(t *testing.T) {
	for seed := uint64(1); seed < 5; seed++ {
		q := seq.Tandem(seq.TandemSpec{
			Alpha: seq.Protein, UnitLen: 30, Copies: 4, FlankLen: 10,
			Profile: seq.DefaultDivergence, Seed: seed,
		})
		s := q.Codes
		var best int32
		for r := 1; r < len(s); r++ {
			if sc := align.MaxRowScore(align.Score(proteinParams, s[:r], s[r:])); sc > best {
				best = sc
			}
		}
		res, err := Find(s, Config{Params: proteinParams, NumTops: 1})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Tops) != 1 || res.Tops[0].Score != best {
			t.Errorf("seed %d: first top score = %d, want %d", seed, res.Tops[0].Score, best)
		}
	}
}

// Group-scheduling mode (the SIMD-style static scheme) must produce
// exactly the same top alignments as scalar mode.
func TestGroupModeEquivalence(t *testing.T) {
	for _, lanes := range []int{4, 8} {
		for seed := uint64(0); seed < 3; seed++ {
			q := seq.SyntheticTitin(150, seed)
			want, err := Find(q.Codes, Config{Params: proteinParams, NumTops: 10})
			if err != nil {
				t.Fatal(err)
			}
			got, err := Find(q.Codes, Config{Params: proteinParams, NumTops: 10, GroupLanes: lanes})
			if err != nil {
				t.Fatal(err)
			}
			assertSameTops(t, got.Tops, want.Tops)
		}
	}
}

// Striped-kernel mode must also be bit-identical.
func TestStripedModeEquivalence(t *testing.T) {
	q := seq.SyntheticTitin(180, 4)
	want, err := Find(q.Codes, Config{Params: proteinParams, NumTops: 8})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Find(q.Codes, Config{Params: proteinParams, NumTops: 8, Striped: true, StripeWidth: 32})
	if err != nil {
		t.Fatal(err)
	}
	assertSameTops(t, got.Tops, want.Tops)
}

// Stale scores are upper bounds: whenever a task is realigned, its new
// score must not exceed the score it was queued with. We verify by
// running the engine manually and checking every realignment.
func TestStaleScoreIsUpperBound(t *testing.T) {
	q := seq.SyntheticTitin(160, 11)
	e, err := NewEngine(q.Codes, Config{Params: proteinParams, NumTops: 10})
	if err != nil {
		t.Fatal(err)
	}
	queue := InitialQueue(e)
	for e.NumTopsFound() < 10 && queue.Len() > 0 {
		task := queue.Pop()
		if task.Score != Infinity && task.Score < 1 {
			break
		}
		if task.AlignedWith == e.NumTopsFound() {
			if _, err := Accept(e, task); err != nil {
				t.Fatal(err)
			}
		} else {
			before := task.Score
			Realign(e, task, e.Triangle(), e.NumTopsFound())
			if before != Infinity && task.Score > before {
				t.Fatalf("split %d: realigned score %d exceeds stale bound %d",
					task.R, task.Score, before)
			}
		}
		queue.Push(task)
	}
	if e.NumTopsFound() != 10 {
		t.Fatalf("found %d tops, want 10", e.NumTopsFound())
	}
}

// The paper: the ordering heuristic "typically reduces the number of
// realignments by 90-97%". On repeat-rich input the reduction must be
// substantial; we check > 50% to stay robust across seeds while still
// catching a broken heuristic (which would realign everything).
func TestRealignmentReduction(t *testing.T) {
	c := &stats.Counters{}
	q := seq.SyntheticTitin(300, 2)
	res, err := Find(q.Codes, Config{Params: proteinParams, NumTops: 20, Counters: c})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tops) != 20 {
		t.Fatalf("found %d tops", len(res.Tops))
	}
	red := res.Stats.RealignmentReduction(len(q.Codes)-1, len(res.Tops))
	if red < 0.5 {
		t.Errorf("realignment reduction = %.1f%%, expected > 50%%", 100*red)
	}
	t.Logf("realignment reduction: %.1f%% (paper reports 90-97%%)", 100*red)
}

// Section 5.1: the group-of-4 static speculation "hardly computes more
// alignments than the sequential version (less than 0.70%)" on titin.
// At our scaled lengths neighbouring splits are slightly less correlated
// than at n=34350, so we assert a looser 15% band and report the value.
func TestSpeculationOverheadGroupMode(t *testing.T) {
	q := seq.SyntheticTitin(400, 3)
	scalarC, groupC := &stats.Counters{}, &stats.Counters{}
	if _, err := Find(q.Codes, Config{Params: proteinParams, NumTops: 15, Counters: scalarC}); err != nil {
		t.Fatal(err)
	}
	if _, err := Find(q.Codes, Config{Params: proteinParams, NumTops: 15, GroupLanes: 4, Counters: groupC}); err != nil {
		t.Fatal(err)
	}
	s, g := scalarC.Snapshot().Alignments, groupC.Snapshot().Alignments
	overhead := float64(g-s) / float64(s)
	if overhead > 0.15 {
		t.Errorf("group-mode speculation overhead %.2f%% (scalar %d, group %d alignments)",
			100*overhead, s, g)
	}
	t.Logf("group-mode speculation overhead: %.2f%% (paper: <0.70%% at n=34350)", 100*overhead)
}

func TestMinScoreStopsEarly(t *testing.T) {
	// A random sequence has only weak internal repeats; a high MinScore
	// must stop the search before NumTops alignments are found.
	q := seq.Random(seq.Protein, 120, 5)
	res, err := Find(q.Codes, Config{Params: proteinParams, NumTops: 50, MinScore: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tops) != 0 {
		t.Errorf("got %d tops despite impossible MinScore", len(res.Tops))
	}
}

func TestFindMoreTopsThanExist(t *testing.T) {
	// Tiny sequence: the queue dries up before NumTops are found, and
	// Find must return what it has without error.
	s := seq.DNA.MustEncode("ATAT")
	res, err := Find(s, Config{Params: dnaParams, NumTops: 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tops) == 0 || len(res.Tops) >= 30 {
		t.Errorf("got %d tops", len(res.Tops))
	}
}

func TestConfigValidation(t *testing.T) {
	s := seq.DNA.MustEncode("ACGTACGT")
	if _, err := Find(s, Config{Params: dnaParams}); err == nil {
		t.Error("NumTops 0 accepted")
	}
	if _, err := Find(s, Config{Params: dnaParams, NumTops: 1, GroupLanes: 3}); err == nil {
		t.Error("GroupLanes 3 accepted")
	}
	if _, err := Find(s[:1], Config{Params: dnaParams, NumTops: 1}); err == nil {
		t.Error("length-1 sequence accepted")
	}
	if _, err := Find(s, Config{NumTops: 1}); err == nil {
		t.Error("missing params accepted")
	}
}

func TestOverlapsHelper(t *testing.T) {
	a := TopAlignment{Pairs: []Pair{{1, 5}, {2, 6}}}
	b := TopAlignment{Pairs: []Pair{{2, 6}, {3, 7}}}
	c := TopAlignment{Pairs: []Pair{{3, 7}, {4, 8}}}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("overlapping alignments not detected")
	}
	if a.Overlaps(c) {
		t.Error("disjoint alignments reported overlapping")
	}
}

func assertSameTops(t *testing.T, got, want []TopAlignment) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d tops, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Score != want[i].Score {
			t.Fatalf("top %d score = %d, want %d", i+1, got[i].Score, want[i].Score)
		}
		if got[i].Split != want[i].Split {
			t.Fatalf("top %d split = %d, want %d", i+1, got[i].Split, want[i].Split)
		}
		if !pairsEqual(got[i].Pairs, want[i].Pairs) {
			t.Fatalf("top %d pairs = %v, want %v", i+1, got[i].Pairs, want[i].Pairs)
		}
	}
}

func pairsEqual(a, b []Pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
