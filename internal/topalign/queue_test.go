package topalign

import (
	"math/rand/v2"
	"sort"
	"testing"
)

func TestQueueOrdering(t *testing.T) {
	q := NewTaskQueue()
	q.Push(&Task{R: 3, Score: 10})
	q.Push(&Task{R: 1, Score: 30})
	q.Push(&Task{R: 2, Score: 20})
	var got []int
	for q.Len() > 0 {
		got = append(got, q.Pop().R)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
}

func TestQueueTieBreaksByLowerSplit(t *testing.T) {
	q := NewTaskQueue()
	q.Push(&Task{R: 9, Score: 5})
	q.Push(&Task{R: 2, Score: 5})
	q.Push(&Task{R: 5, Score: 5})
	if r := q.Pop().R; r != 2 {
		t.Errorf("first pop R = %d, want 2", r)
	}
	if r := q.Pop().R; r != 5 {
		t.Errorf("second pop R = %d, want 5", r)
	}
}

func TestQueueInfinityFirst(t *testing.T) {
	q := NewTaskQueue()
	q.Push(&Task{R: 1, Score: 1000000})
	q.Push(&Task{R: 2, Score: Infinity})
	if got := q.Pop(); got.R != 2 {
		t.Errorf("popped R=%d, want the infinite-score task", got.R)
	}
}

func TestQueuePeek(t *testing.T) {
	q := NewTaskQueue()
	if q.Peek() != nil {
		t.Error("Peek on empty queue not nil")
	}
	q.Push(&Task{R: 1, Score: 5})
	q.Push(&Task{R: 2, Score: 7})
	if p := q.Peek(); p == nil || p.R != 2 {
		t.Errorf("Peek = %v", p)
	}
	if q.Len() != 2 {
		t.Error("Peek removed an element")
	}
}

// Property: popping a randomly filled queue yields tasks sorted by
// (score desc, r asc).
func TestQueueSortProperty(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.IntN(200)
		q := NewTaskQueue()
		tasks := make([]*Task, n)
		for i := range tasks {
			tasks[i] = &Task{R: i + 1, Score: int32(r.IntN(20))}
			q.Push(tasks[i])
		}
		sort.Slice(tasks, func(i, j int) bool {
			if tasks[i].Score != tasks[j].Score {
				return tasks[i].Score > tasks[j].Score
			}
			return tasks[i].R < tasks[j].R
		})
		for i := 0; i < n; i++ {
			got := q.Pop()
			if got.Score != tasks[i].Score || got.R != tasks[i].R {
				t.Fatalf("trial %d pos %d: got (r=%d,s=%d), want (r=%d,s=%d)",
					trial, i, got.R, got.Score, tasks[i].R, tasks[i].Score)
			}
		}
	}
}

func TestQueueReinsertion(t *testing.T) {
	// simulates the Figure 5 loop: pop, lower the score, reinsert
	q := NewTaskQueue()
	for r := 1; r <= 5; r++ {
		q.Push(&Task{R: r, Score: int32(10 * r)})
	}
	top := q.Pop() // r=5, score 50
	top.Score = 15
	q.Push(top)
	if got := q.Pop(); got.R != 4 || got.Score != 40 {
		t.Errorf("after reinsertion got (r=%d,s=%d), want (4,40)", got.R, got.Score)
	}
}
