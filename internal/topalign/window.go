package topalign

import (
	"fmt"
	"time"

	"repro/internal/align"
	"repro/internal/obs"
	"repro/internal/triangle"
)

// Window is a candidate region produced by the seed-filter-extend
// prefilter (internal/seedindex). Alignment is confined to Rect; Bound
// is an admissible upper bound on any alignment score inside the window
// (see DESIGN.md section 13), used as the task's initial queue score so
// that the best-first driver prunes soundly: a task is only accepted
// after an exact (re)alignment, and its score never increases.
type Window struct {
	// Rect is the window in global pair coordinates (Rect.Y1 < Rect.X0).
	Rect align.Rect
	// Bound is an admissible upper bound on the best alignment score in
	// the window: Bound >= true score, always.
	Bound int32

	// orig is the window's original (unmasked) bottom row, recorded on
	// first alignment and used for shadow rejection on realignments —
	// the windowed analogue of the engine's RowStore.
	orig []int32
}

// Aligned reports whether the window has had its first (unmasked)
// alignment, i.e. whether its original bottom row has been recorded.
func (w *Window) Aligned() bool { return w.orig != nil }

// AlignWindowScoreS aligns window w score-only against the given
// triangle and returns the window's score: the maximum over valid
// bottom-row endings after shadow rejection. On the window's first
// alignment the triangle is ignored (first alignments always see the
// empty triangle, exactly like AlignScoreS) and the bottom row is
// recorded as the window's original row.
func (e *Engine) AlignWindowScoreS(w *Window, tri *triangle.Triangle, sc *Scratch) int32 {
	if w.orig == nil {
		t0 := time.Now()
		row := sc.A.ScoreWindow(e.cfg.Params, e.s, w.Rect, nil)
		e.cfg.Counters.ObserveAlignLatency(time.Since(t0))
		w.orig = make([]int32, len(row))
		copy(w.orig, row)
		e.cfg.Counters.AddAlignment(w.Rect.Cells(), false)
		_, score, _ := align.BestValidEnd(row, nil)
		return score
	}
	t0 := time.Now()
	row := sc.A.ScoreWindow(e.cfg.Params, e.s, w.Rect, tri)
	e.cfg.Counters.ObserveAlignLatency(time.Since(t0))
	e.cfg.Counters.AddAlignment(w.Rect.Cells(), true)
	_, score, rejected := align.BestValidEnd(row, w.orig)
	e.cfg.Counters.AddShadowEnds(rejected)
	if rejected > 0 {
		e.cfg.Trace.Record(obs.EvShadowReject, -1, int64(w.Rect.Y1), rejected)
	}
	return score
}

// RealignWindow (re)aligns a windowed task against the triangle snapshot
// tri (corresponding to topNum accepted tops) and updates its score and
// stamp. A window's first alignment is unmasked — exact only for the
// empty triangle — so it is stamped AlignedWith = 0 regardless of
// topNum, forcing a masked realignment before acceptance whenever tops
// already exist. Later realignments are exact for tri and stamp topNum.
func RealignWindow(e *Engine, t *Task, tri *triangle.Triangle, topNum int, sc *Scratch) {
	first := !t.Win.Aligned()
	t.Score = e.AlignWindowScoreS(t.Win, tri, sc)
	if first {
		t.AlignedWith = 0
	} else {
		t.AlignedWith = topNum
	}
	e.Config().Trace.Record(obs.EvRealign, -1, int64(t.R), int64(t.Score))
}

// AcceptWindowS accepts a windowed task's current alignment as the next
// top alignment: it recomputes the full windowed matrix against the
// current triangle, tracebacks from the best valid ending, marks the
// path's residue pairs in the triangle, and records the result. Pairs
// are mapped from window-local to global coordinates; Split is the
// window's bottom row Y1, the global prefix position the alignment ends
// at — the same split the full engine would have found it under.
func AcceptWindowS(e *Engine, t *Task, sc *Scratch) (TopAlignment, error) {
	w := t.Win
	sp := e.cfg.Spans.Start(e.cfg.SpanParent, "engine.accept")
	sp.SetRank(e.cfg.SpanRank)
	sp.SetArg(int64(w.Rect.Y1))
	defer sp.End()
	if w.orig == nil {
		return TopAlignment{}, fmt.Errorf("topalign: accepting window %+v that was never aligned", w.Rect)
	}
	mtx := sc.A.MatrixWindow(e.cfg.Params, e.s, w.Rect, e.tri)
	e.cfg.Counters.AddTraceback(w.Rect.Cells())
	endX, score, _ := align.BestValidEnd(mtx[w.Rect.H()][1:], w.orig)
	if endX == 0 || score <= 0 {
		return TopAlignment{}, fmt.Errorf("topalign: window %+v has no valid alignment to accept", w.Rect)
	}
	a, err := sc.A.TracebackWindow(e.cfg.Params, mtx, e.s, w.Rect, e.tri, endX)
	if err != nil {
		return TopAlignment{}, fmt.Errorf("topalign: window %+v: %w", w.Rect, err)
	}
	top := TopAlignment{
		Index: len(e.tops) + 1,
		Split: w.Rect.Y1,
		Score: a.Score,
		Pairs: make([]Pair, len(a.Pairs)),
	}
	for i, p := range a.Pairs {
		gp := Pair{I: w.Rect.Y0 - 1 + p.Y, J: w.Rect.X0 - 1 + p.X}
		top.Pairs[i] = gp
		e.tri.Set(gp.I, gp.J)
	}
	e.tops = append(e.tops, top)
	e.cfg.Trace.Record(obs.EvAccept, -1, int64(w.Rect.Y1), int64(a.Score))
	return top, nil
}

// RunWindows drives an engine over a set of windowed candidate tasks to
// completion: the windowed analogue of Run. Tasks enter the queue at
// their admissible bound; the loop terminates when NumTops alignments
// are accepted or the best remaining upper bound drops below MinScore.
func RunWindows(e *Engine, tasks []*Task) error {
	q := NewTaskQueue()
	cfg := e.Config()
	for _, t := range tasks {
		if t.Win == nil {
			return fmt.Errorf("topalign: RunWindows given non-windowed task r=%d", t.R)
		}
		q.Push(t)
		cfg.Trace.Record(obs.EvEnqueue, -1, int64(t.R), int64(t.Score))
	}
	for e.NumTopsFound() < cfg.NumTops && q.Len() > 0 {
		t := q.Pop()
		if t.Score != Infinity && t.Score < cfg.MinScore {
			// Best remaining upper bound is below threshold: done.
			return nil
		}
		if t.Win.Aligned() && t.AlignedWith == e.NumTopsFound() {
			if _, err := AcceptWindowS(e, t, &e.own); err != nil {
				return err
			}
		} else {
			RealignWindow(e, t, e.Triangle(), e.NumTopsFound(), &e.own)
		}
		q.Push(t)
	}
	return nil
}
