package topalign

import (
	"fmt"
	"time"

	"repro/internal/align"
	"repro/internal/multialign"
	"repro/internal/obs"
	"repro/internal/triangle"
)

// Scratch bundles the kernel arenas one worker needs for the full task
// cycle: scalar and striped score kernels, group kernels, and the
// traceback matrix. Schedulers own one Scratch per worker goroutine; the
// sequential driver uses the engine's own instance. See align.Scratch
// for the ownership rules.
type Scratch struct {
	A align.Scratch
	G multialign.Scratch
}

// NewScratch returns an empty Scratch.
func NewScratch() *Scratch { return &Scratch{} }

// Engine holds the shared state of a top-alignment computation — the
// sequence, the override triangle, the original-bottom-row store, and
// the accepted top alignments — and provides the single-task operations
// the sequential and parallel drivers are built from.
//
// Engine methods are not self-synchronising. The scratch-taking variants
// (AlignScoreS, AlignGroupScoreS) are pure with respect to the triangle
// snapshot passed in (the row store is internally locked), so schedulers
// may run them concurrently as long as each concurrent caller brings its
// own Scratch. The convenience wrappers without a Scratch argument use
// the engine-owned arena and must therefore be serialised, as must
// AcceptTop, which mutates the engine.
type Engine struct {
	s    []byte
	cfg  Config
	tri  *triangle.Triangle
	orig *triangle.RowStore
	tops []TopAlignment
	own  Scratch // arena for the serialised convenience methods
}

// NewEngine validates the configuration and prepares the state for
// sequence s (length >= 2).
func NewEngine(s []byte, cfg Config) (*Engine, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if len(s) < 2 {
		return nil, fmt.Errorf("topalign: sequence length %d too short", len(s))
	}
	return &Engine{
		s:    s,
		cfg:  cfg,
		tri:  triangle.New(len(s)),
		orig: triangle.NewRowStore(len(s)),
	}, nil
}

// Len returns the sequence length m.
func (e *Engine) Len() int { return len(e.s) }

// NumSplits returns the number of split tasks, m-1.
func (e *Engine) NumSplits() int { return len(e.s) - 1 }

// Config returns the normalised configuration.
func (e *Engine) Config() Config { return e.cfg }

// NumTopsFound returns the number of accepted top alignments so far.
func (e *Engine) NumTopsFound() int { return len(e.tops) }

// Tops returns the accepted top alignments in acceptance order. The
// caller must not modify the returned slice.
func (e *Engine) Tops() []TopAlignment { return e.tops }

// Triangle returns the current override triangle. It is mutated by
// AcceptTop; concurrent readers must use TriangleSnapshot instead.
func (e *Engine) Triangle() *triangle.Triangle { return e.tri }

// TriangleSnapshot returns an immutable copy of the current triangle for
// concurrent realignment.
func (e *Engine) TriangleSnapshot() *triangle.Triangle { return e.tri.Clone() }

// OrigRows exposes the original-bottom-row store (the distributed master
// serves replicas from it).
func (e *Engine) OrigRows() *triangle.RowStore { return e.orig }

// AlignScore aligns split r score-only against the given triangle using
// the engine-owned scratch. Serialised callers only; see AlignScoreS.
func (e *Engine) AlignScore(r int, tri *triangle.Triangle) int32 {
	return e.AlignScoreS(r, tri, &e.own)
}

// AlignScoreS aligns split r score-only against the given triangle and
// returns the split's score: the maximum over valid bottom-row endings
// after shadow rejection. On a task's first alignment the triangle is
// ignored (first alignments always see the empty triangle — every task
// is aligned once before the first acceptance, see Find) and the bottom
// row is recorded as the split's original row. All working memory comes
// from sc; the hot path performs no allocation.
func (e *Engine) AlignScoreS(r int, tri *triangle.Triangle, sc *Scratch) int32 {
	s1, s2 := e.s[:r], e.s[r:]
	orig, have := e.orig.Get(r)
	if !have {
		t0 := time.Now()
		row := e.scoreScalar(sc, s1, s2, nil, r)
		e.cfg.Counters.ObserveAlignLatency(time.Since(t0))
		e.orig.Put(r, row) // Put copies; row is scratch-owned
		e.cfg.Counters.AddAlignment(align.Cells(len(s1), len(s2)), false)
		e.cfg.Counters.AddTierAlignments(int(multialign.TierScalar), 1, false)
		_, score, _ := align.BestValidEnd(row, nil)
		return score
	}
	t0 := time.Now()
	row := e.scoreScalar(sc, s1, s2, tri, r)
	e.cfg.Counters.ObserveAlignLatency(time.Since(t0))
	e.cfg.Counters.AddAlignment(align.Cells(len(s1), len(s2)), true)
	e.cfg.Counters.AddTierAlignments(int(multialign.TierScalar), 1, false)
	_, score, rejected := align.BestValidEnd(row, orig)
	e.cfg.Counters.AddShadowEnds(rejected)
	if rejected > 0 {
		e.cfg.Trace.Record(obs.EvShadowReject, -1, int64(r), rejected)
	}
	return score
}

// scoreScalar dispatches to the plain or striped scalar kernel.
func (e *Engine) scoreScalar(sc *Scratch, s1, s2 []byte, tri *triangle.Triangle, r int) []int32 {
	if e.cfg.Striped {
		return sc.A.ScoreStriped(e.cfg.Params, s1, s2, tri, r, e.cfg.StripeWidth)
	}
	return sc.A.ScoreMasked(e.cfg.Params, s1, s2, tri, r)
}

// AlignGroupScore is AlignGroupScoreS with the engine-owned scratch and
// a fresh scores slice. Serialised callers only.
func (e *Engine) AlignGroupScore(r0 int, tri *triangle.Triangle) []int32 {
	return e.AlignGroupScoreS(r0, tri, &e.own, nil)
}

// AlignGroupScoreS aligns the fixed group of GroupLanes neighbouring
// splits starting at r0 against the given triangle and returns one score
// per member (member i is split r0+i; members beyond the last split get
// score 0). First-time members have their original rows recorded.
// Groups are computed with the fastest exact group kernel (multialign),
// falling back to the scalar kernel only on an internal error.
//
// The result is written into scores when it has capacity (callers reuse
// a task's member-score slice); otherwise a fresh slice is returned. The
// group's wall time is attributed to its live members so the latency
// histogram stays per-alignment.
func (e *Engine) AlignGroupScoreS(r0 int, tri *triangle.Triangle, sc *Scratch, scores []int32) []int32 {
	lanes := e.cfg.GroupLanes
	m := len(e.s)
	if cap(scores) < lanes {
		scores = make([]int32, lanes)
	}
	scores = scores[:lanes]
	for i := range scores {
		scores[i] = 0
	}

	// First alignments must see the empty triangle. Within a group all
	// members share alignment history (they are always aligned
	// together), so checking the first member suffices.
	first := false
	if _, have := e.orig.Get(r0); !have {
		first = true
		tri = nil
	}
	members := m - r0 // live lanes: splits r0..min(r0+lanes-1, m-1)
	if members > lanes {
		members = lanes
	}

	t0 := time.Now()
	g, err := sc.G.ScoreGroupAuto(e.cfg.Params, e.s, r0, lanes, tri)
	if err != nil {
		// scalar fallback, member by member (observes its own latency)
		for i := 0; i < lanes; i++ {
			r := r0 + i
			if r > m-1 {
				break
			}
			scores[i] = e.AlignScoreS(r, tri, sc)
		}
		return scores
	}
	e.cfg.Counters.ObserveAlignLatencyPer(time.Since(t0), members)
	e.cfg.Counters.AddTierAlignments(int(g.Tier), int64(members), g.Rerun)
	for i := 0; i < lanes; i++ {
		r := r0 + i
		if r > m-1 {
			break
		}
		row := g.Bottoms[i]
		if first {
			e.orig.Put(r, row) // Put copies; row is scratch-owned
			e.cfg.Counters.AddAlignment(align.Cells(r, m-r), false)
			_, scores[i], _ = align.BestValidEnd(row, nil)
			continue
		}
		orig, _ := e.orig.Get(r)
		e.cfg.Counters.AddAlignment(align.Cells(r, m-r), true)
		var rejected int64
		_, scores[i], rejected = align.BestValidEnd(row, orig)
		e.cfg.Counters.AddShadowEnds(rejected)
		if rejected > 0 {
			e.cfg.Trace.Record(obs.EvShadowReject, -1, int64(r), rejected)
		}
	}
	return scores
}

// AcceptTop is AcceptTopS with the engine-owned scratch. AcceptTop
// mutates the engine and is always serialised by callers, so using the
// engine arena here is safe as long as no concurrent caller uses the
// engine-owned scratch for scoring (schedulers use per-worker scratches).
func (e *Engine) AcceptTop(r int) (TopAlignment, error) {
	return e.AcceptTopS(r, &e.own)
}

// AcceptTopS accepts split r's current alignment as the next top
// alignment: it recomputes the full matrix against the current triangle,
// tracebacks from the best valid ending, marks the path's residue pairs
// in the triangle, and records the result. The returned alignment's
// pairs are in global coordinates.
func (e *Engine) AcceptTopS(r int, sc *Scratch) (TopAlignment, error) {
	sp := e.cfg.Spans.Start(e.cfg.SpanParent, "engine.accept")
	sp.SetRank(e.cfg.SpanRank)
	sp.SetArg(int64(r))
	defer sp.End()
	s1, s2 := e.s[:r], e.s[r:]
	orig, have := e.orig.Get(r)
	if !have {
		return TopAlignment{}, fmt.Errorf("topalign: accepting split %d that was never aligned", r)
	}
	mtx := sc.A.Matrix(e.cfg.Params, s1, s2, e.tri, r)
	e.cfg.Counters.AddTraceback(align.Cells(len(s1), len(s2)))
	endX, score, _ := align.BestValidEnd(mtx[r][1:], orig)
	if endX == 0 || score <= 0 {
		return TopAlignment{}, fmt.Errorf("topalign: split %d has no valid alignment to accept", r)
	}
	a, err := sc.A.Traceback(e.cfg.Params, mtx, s1, s2, e.tri, r, endX)
	if err != nil {
		return TopAlignment{}, fmt.Errorf("topalign: split %d: %w", r, err)
	}
	top := TopAlignment{
		Index: len(e.tops) + 1,
		Split: r,
		Score: a.Score,
		Pairs: make([]Pair, len(a.Pairs)),
	}
	for i, p := range a.Pairs {
		gp := Pair{I: p.Y, J: r + p.X}
		top.Pairs[i] = gp
		e.tri.Set(gp.I, gp.J)
	}
	e.tops = append(e.tops, top)
	e.cfg.Trace.Record(obs.EvAccept, -1, int64(r), int64(a.Score))
	return top, nil
}
