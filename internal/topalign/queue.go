package topalign

import "container/heap"

// Task is one entry of the best-first queue of Figure 5. In scalar mode a
// task is one split; in group mode it is a fixed group of neighbouring
// splits and R is the group's first split.
type Task struct {
	// R identifies the split (scalar mode) or the group's first split
	// (group mode).
	R int
	// Score is an upper bound on the task's next (re)alignment score:
	// the exact score of its most recent alignment, or Infinity if it
	// has never been aligned.
	Score int32
	// AlignedWith is the number of top alignments that had been found
	// when the task was last aligned — i.e. which override triangle the
	// score is exact for. -1 means never aligned.
	AlignedWith int
	// MemberScores holds per-member scores in group mode (Score is
	// their maximum); nil in scalar mode.
	MemberScores []int32
	// Win, when non-nil, makes this a windowed candidate task from the
	// seed-filter-extend prefilter: alignments are confined to Win.Rect
	// and R is the window's bottom row (the alignment's split position).
	// The initial Score of a windowed task is Win.Bound, an admissible
	// upper bound, so best-first pruning stays sound.
	Win *Window

	index int // heap bookkeeping
}

// TaskQueue is a max-heap of tasks ordered by (Score desc, R asc). The
// secondary key makes runs deterministic: equal-scoring candidates are
// accepted lowest split first.
type TaskQueue struct {
	h taskHeap
}

// NewTaskQueue returns an empty queue.
func NewTaskQueue() *TaskQueue {
	return &TaskQueue{}
}

// Len returns the number of queued tasks.
func (q *TaskQueue) Len() int { return len(q.h) }

// Push inserts a task.
func (q *TaskQueue) Push(t *Task) { heap.Push(&q.h, t) }

// Pop removes and returns the highest-priority task. It panics on an
// empty queue.
func (q *TaskQueue) Pop() *Task { return heap.Pop(&q.h).(*Task) }

// Peek returns the highest-priority task without removing it, or nil if
// the queue is empty.
func (q *TaskQueue) Peek() *Task {
	if len(q.h) == 0 {
		return nil
	}
	return q.h[0]
}

type taskHeap []*Task

func (h taskHeap) Len() int { return len(h) }

func (h taskHeap) Less(i, j int) bool {
	if h[i].Score != h[j].Score {
		return h[i].Score > h[j].Score
	}
	return h[i].R < h[j].R
}

func (h taskHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *taskHeap) Push(x any) {
	t := x.(*Task)
	t.index = len(*h)
	*h = append(*h, t)
}

func (h *taskHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*h = old[:n-1]
	return t
}
