package topalign

import (
	"testing"

	"repro/internal/align"
	"repro/internal/seq"
	"repro/internal/stats"
)

// TestBottomRowSufficiency verifies Appendix A's key observation
// empirically: the best alignment over ALL cells of ALL split matrices
// always equals the best score found in the bottom rows alone ("the top
// alignment will end in one of the matrices' bottom rows").
func TestBottomRowSufficiency(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		s := seq.SyntheticTitin(80, seed).Codes
		m := len(s)
		var bestBottom, bestAnywhere int32
		for r := 1; r <= m-1; r++ {
			mtx := align.Matrix(proteinParams, s[:r], s[r:], nil, r)
			for y := 1; y <= r; y++ {
				for x := 1; x <= m-r; x++ {
					if mtx[y][x] > bestAnywhere {
						bestAnywhere = mtx[y][x]
					}
				}
			}
			if rowMax := align.MaxRowScore(mtx[r][1:]); rowMax > bestBottom {
				bestBottom = rowMax
			}
		}
		if bestBottom != bestAnywhere {
			t.Errorf("seed %d: bottom-row max %d != whole-matrix max %d (Appendix A violated)",
				seed, bestBottom, bestAnywhere)
		}
	}
}

// TestShadowRejectionFires confirms the Appendix A shadow mechanism is
// active on repeat-rich input: realignments reject at least some
// bottom-row endings whose values changed, and the engine still produces
// valid nonoverlapping alignments.
func TestShadowRejectionFires(t *testing.T) {
	c := &stats.Counters{}
	s := seq.SyntheticTitin(250, 3).Codes
	res, err := Find(s, Config{Params: proteinParams, NumTops: 15, Counters: c})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tops) != 15 {
		t.Fatalf("found %d tops", len(res.Tops))
	}
	if c.Snapshot().ShadowEnds == 0 {
		t.Error("no shadow endings rejected on repeat-rich input; the mechanism never fired")
	}
}

// TestShadowRejectedScoresAreSuboptimal: every accepted top alignment's
// score must equal the score that alignment would get in the ORIGINAL
// (unmasked) matrix of its split — the definition of a non-shadow
// alignment. We recompute path scores in the unmasked matrix to check.
func TestAcceptedAlignmentsAreOriginal(t *testing.T) {
	s := seq.SyntheticTitin(150, 6).Codes
	res, err := Find(s, Config{Params: proteinParams, NumTops: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, top := range res.Tops {
		// recompute the path's score directly from the scoring model
		var got int32
		for i, p := range top.Pairs {
			got += proteinParams.Exch.Score(s[p.I-1], s[p.J-1])
			if i > 0 {
				di := p.I - top.Pairs[i-1].I - 1
				dj := p.J - top.Pairs[i-1].J - 1
				got -= proteinParams.Gap.Cost(di)
				got -= proteinParams.Gap.Cost(dj)
			}
		}
		if got != top.Score {
			t.Errorf("top %d: path recomputes to %d, reported %d", top.Index, got, top.Score)
		}
		// and the unmasked matrix of its split must contain that score
		// at the path's ending cell
		r := top.Split
		mtx := align.Matrix(proteinParams, s[:r], s[r:], nil, r)
		end := top.Pairs[len(top.Pairs)-1]
		if mtx[end.I][end.J-r] < top.Score {
			t.Errorf("top %d: unmasked matrix value %d at ending < accepted score %d (shadow accepted?)",
				top.Index, mtx[end.I][end.J-r], top.Score)
		}
	}
}
