// Package oldalgo models the pre-1993-style sequential top-alignment
// computation the paper uses as its baseline ("the old algorithm", with
// O(n^4) run time versus the new algorithm's O(n^3)).
//
// The original Repro implementation is not publicly available; the paper
// reports only its complexity. This package therefore reconstructs the
// natural unoptimised method, omitting each of the paper's contributions
// (see DESIGN.md's substitution table):
//
//   - no best-first task queue: after every accepted top alignment, all
//     m-1 splits are realigned from scratch;
//   - no cached original bottom rows: shadow rejection is done by the
//     expensive "double alignment" the paper describes (align each pair
//     both with and without the override triangle and compare);
//   - in the Naive variant, no Gotoh running maxima: every cell scans
//     its row and column for gap candidates (Equation 1 verbatim), an
//     extra factor of n.
//
// Both variants produce exactly the same top alignments as the new
// algorithm (package topalign) — the tests assert it — only slower,
// which is what Table 1 measures.
package oldalgo

import (
	"fmt"

	"repro/internal/align"
	"repro/internal/stats"
	"repro/internal/topalign"
	"repro/internal/triangle"
)

// Kernel selects the per-cell recurrence of the baseline.
type Kernel int

const (
	// KernelNaive uses Equation-1 gap scans: O(n) per cell, O(n^4) per
	// realignment round. This is the paper's old-algorithm cost model.
	KernelNaive Kernel = iota
	// KernelGotoh uses the Figure-3 running maxima: O(1) per cell. The
	// round structure is still exhaustive, so the total is O(tops*n^3);
	// this variant isolates the contribution of the new algorithm's
	// queue heuristic and row caching from the kernel improvement.
	KernelGotoh
)

func (k Kernel) String() string {
	switch k {
	case KernelNaive:
		return "naive"
	case KernelGotoh:
		return "gotoh"
	default:
		return fmt.Sprintf("Kernel(%d)", int(k))
	}
}

// Config controls a baseline run.
type Config struct {
	Params   align.Params
	NumTops  int
	MinScore int32
	Kernel   Kernel
	Counters *stats.Counters
}

// Find computes top alignments with the old algorithm. The results are
// identical to topalign.Find; only the amount of work differs.
func Find(s []byte, cfg Config) (*topalign.Result, error) {
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	if cfg.NumTops < 1 {
		return nil, fmt.Errorf("oldalgo: NumTops %d must be at least 1", cfg.NumTops)
	}
	if cfg.MinScore <= 0 {
		cfg.MinScore = 1
	}
	m := len(s)
	if m < 2 {
		return nil, fmt.Errorf("oldalgo: sequence length %d too short", m)
	}

	tri := triangle.New(m)
	var tops []topalign.TopAlignment

	for len(tops) < cfg.NumTops {
		bestScore := int32(0)
		bestR := 0
		for r := 1; r <= m-1; r++ {
			s1, s2 := s[:r], s[r:]
			// double alignment: the unmasked row is recomputed every
			// round (the old algorithm caches nothing)
			orig := score(cfg, s1, s2, nil, r)
			cfg.Counters.AddAlignment(align.Cells(r, m-r), len(tops) > 0)
			var row []int32
			if tri.Count() == 0 {
				row = orig
			} else {
				row = score(cfg, s1, s2, tri, r)
				cfg.Counters.AddAlignment(align.Cells(r, m-r), true)
			}
			_, sc, rejected := align.BestValidEnd(row, orig)
			cfg.Counters.AddShadowEnds(rejected)
			if sc > bestScore {
				bestScore, bestR = sc, r
			}
		}
		if bestScore < cfg.MinScore {
			break
		}
		top, err := traceback(cfg, s, bestR, tri, len(tops)+1)
		if err != nil {
			return nil, err
		}
		tops = append(tops, top)
	}
	return &topalign.Result{
		SeqLen: m,
		Tops:   tops,
		Stats:  cfg.Counters.Snapshot(),
	}, nil
}

// score dispatches to the configured kernel.
func score(cfg Config, s1, s2 []byte, tri *triangle.Triangle, r int) []int32 {
	if cfg.Kernel == KernelNaive {
		return align.ScoreNaive(cfg.Params, s1, s2, tri, r)
	}
	return align.ScoreMasked(cfg.Params, s1, s2, tri, r)
}

// traceback accepts split r's best valid alignment as top number index
// and marks its pairs in the triangle.
func traceback(cfg Config, s []byte, r int, tri *triangle.Triangle, index int) (topalign.TopAlignment, error) {
	s1, s2 := s[:r], s[r:]
	orig := score(cfg, s1, s2, nil, r)
	var mtx [][]int32
	if cfg.Kernel == KernelNaive {
		mtx = align.NaiveMatrix(cfg.Params, s1, s2, tri, r)
	} else {
		mtx = align.Matrix(cfg.Params, s1, s2, tri, r)
	}
	cfg.Counters.AddTraceback(align.Cells(len(s1), len(s2)))
	endX, sc, _ := align.BestValidEnd(mtx[r][1:], orig)
	if endX == 0 || sc <= 0 {
		return topalign.TopAlignment{}, fmt.Errorf("oldalgo: split %d has no valid alignment", r)
	}
	a, err := align.Traceback(cfg.Params, mtx, s1, s2, tri, r, endX)
	if err != nil {
		return topalign.TopAlignment{}, fmt.Errorf("oldalgo: split %d: %w", r, err)
	}
	top := topalign.TopAlignment{Index: index, Split: r, Score: a.Score,
		Pairs: make([]topalign.Pair, len(a.Pairs))}
	for i, p := range a.Pairs {
		gp := topalign.Pair{I: p.Y, J: r + p.X}
		top.Pairs[i] = gp
		tri.Set(gp.I, gp.J)
	}
	return top, nil
}
