package oldalgo

import (
	"testing"

	"repro/internal/align"
	"repro/internal/scoring"
	"repro/internal/seq"
	"repro/internal/stats"
	"repro/internal/topalign"
)

var (
	dnaParams     = align.Params{Exch: scoring.PaperDNA, Gap: scoring.PaperGap}
	proteinParams = align.Params{Exch: scoring.BLOSUM62, Gap: scoring.DefaultProteinGap}
)

// Both baseline kernels must produce exactly the same top alignments as
// the new algorithm — the paper's speedups compare equal-output runs.
func TestOldMatchesNew(t *testing.T) {
	cases := []struct {
		name string
		s    []byte
		tops int
	}{
		{"figure4", seq.PaperATGC().Codes, 3},
		{"titin-like", seq.SyntheticTitin(90, 1).Codes, 5},
		{"tandem", seq.Tandem(seq.TandemSpec{
			Alpha: seq.Protein, UnitLen: 20, Copies: 3, FlankLen: 5,
			Profile: seq.DefaultDivergence, Seed: 3}).Codes, 4},
	}
	for _, c := range cases {
		params := proteinParams
		if c.name == "figure4" {
			params = dnaParams
		}
		want, err := topalign.Find(c.s, topalign.Config{Params: params, NumTops: c.tops})
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []Kernel{KernelNaive, KernelGotoh} {
			got, err := Find(c.s, Config{Params: params, NumTops: c.tops, Kernel: k})
			if err != nil {
				t.Fatalf("%s/%s: %v", c.name, k, err)
			}
			if len(got.Tops) != len(want.Tops) {
				t.Fatalf("%s/%s: got %d tops, want %d", c.name, k, len(got.Tops), len(want.Tops))
			}
			for i := range want.Tops {
				if got.Tops[i].Score != want.Tops[i].Score ||
					got.Tops[i].Split != want.Tops[i].Split ||
					len(got.Tops[i].Pairs) != len(want.Tops[i].Pairs) {
					t.Fatalf("%s/%s: top %d = %+v, want %+v", c.name, k, i+1, got.Tops[i], want.Tops[i])
				}
				for j := range want.Tops[i].Pairs {
					if got.Tops[i].Pairs[j] != want.Tops[i].Pairs[j] {
						t.Fatalf("%s/%s: top %d pair %d differs", c.name, k, i+1, j)
					}
				}
			}
		}
	}
}

// The old algorithm must do far more alignment work than the new one for
// the same output — that gap is Table 1's speedup.
func TestOldDoesMoreWork(t *testing.T) {
	s := seq.SyntheticTitin(120, 2).Codes
	oldC, newC := &stats.Counters{}, &stats.Counters{}
	if _, err := Find(s, Config{Params: proteinParams, NumTops: 8, Kernel: KernelGotoh, Counters: oldC}); err != nil {
		t.Fatal(err)
	}
	if _, err := topalign.Find(s, topalign.Config{Params: proteinParams, NumTops: 8, Counters: newC}); err != nil {
		t.Fatal(err)
	}
	oldCells := oldC.Snapshot().Cells
	newCells := newC.Snapshot().Cells
	if oldCells < 3*newCells {
		t.Errorf("old computed %d cells, new %d: expected at least 3x more work", oldCells, newCells)
	}
	t.Logf("cells: old %d, new %d (ratio %.1fx)", oldCells, newCells, float64(oldCells)/float64(newCells))
}

func TestKernelString(t *testing.T) {
	if KernelNaive.String() != "naive" || KernelGotoh.String() != "gotoh" {
		t.Error("kernel names wrong")
	}
	if Kernel(9).String() != "Kernel(9)" {
		t.Error("unknown kernel name wrong")
	}
}

func TestConfigValidation(t *testing.T) {
	s := seq.DNA.MustEncode("ACGTACGT")
	if _, err := Find(s, Config{Params: dnaParams}); err == nil {
		t.Error("NumTops 0 accepted")
	}
	if _, err := Find(s[:1], Config{Params: dnaParams, NumTops: 1}); err == nil {
		t.Error("length-1 sequence accepted")
	}
	if _, err := Find(s, Config{NumTops: 1}); err == nil {
		t.Error("missing params accepted")
	}
}

func TestMinScoreStopsEarly(t *testing.T) {
	s := seq.Random(seq.Protein, 60, 9).Codes
	res, err := Find(s, Config{Params: proteinParams, NumTops: 10, MinScore: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tops) != 0 {
		t.Errorf("got %d tops despite impossible MinScore", len(res.Tops))
	}
}
