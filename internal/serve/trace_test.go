package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/obs/trace"
	"repro/internal/seq"
)

// postTraced POSTs an analyze request with an optional traceparent
// header and returns the response plus the X-Trace-Id header.
func postTraced(t *testing.T, url string, req Request, traceparent string) (*http.Response, []byte, string) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.NewRequest(http.MethodPost, url+"/v1/analyze", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Content-Type", "application/json")
	if traceparent != "" {
		hr.Header.Set("traceparent", traceparent)
	}
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body) //nolint:errcheck
	return resp, buf.Bytes(), resp.Header.Get("X-Trace-Id")
}

// getTrace fetches GET /trace/{id} and returns the span batch.
func getTrace(t *testing.T, url, id string) (spans []trace.Span, dropped uint64) {
	t.Helper()
	resp, err := http.Get(url + "/trace/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /trace/%s: status %d", id, resp.StatusCode)
	}
	var doc struct {
		TraceID string           `json:"trace_id"`
		Dropped uint64           `json:"dropped"`
		Spans   []trace.SpanJSON `json:"spans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.TraceID != id {
		t.Fatalf("trace_id %q != requested %q", doc.TraceID, id)
	}
	return trace.FromJSON(doc.Spans), doc.Dropped
}

func spansByName(spans []trace.Span) map[string][]trace.Span {
	m := map[string][]trace.Span{}
	for _, sp := range spans {
		m[sp.Name] = append(m[sp.Name], sp)
	}
	return m
}

// TestAnalyzeTraceLifecycle covers the request-scoped tracing happy
// path: a fresh trace per request, X-Trace-Id on the response, a span
// tree rooted at "request" covering queue, cache and engine, and a
// critical-path attribution that reconciles with the root span.
func TestAnalyzeTraceLifecycle(t *testing.T) {
	col := trace.NewCollector(0, 0)
	_, ts := newTestServer(t, Config{Workers: 2, Traces: col})

	req := Request{Sequence: "ATGCATGCATGCATGC", Params: Params{Matrix: "paper-dna", Tops: 3}}
	resp, raw, tid := postTraced(t, ts.URL, req, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	if _, ok := trace.ParseTraceID(tid); !ok {
		t.Fatalf("X-Trace-Id %q is not a trace id", tid)
	}

	spans, dropped := getTrace(t, ts.URL, tid)
	if dropped != 0 {
		t.Errorf("%d spans dropped", dropped)
	}
	by := spansByName(spans)
	for _, name := range []string{"request", "queue.wait", "cache.lookup", "engine"} {
		if len(by[name]) != 1 {
			t.Errorf("%d %q spans, want 1 (have %v)", len(by[name]), name, names(spans))
		}
	}
	root := by["request"][0]
	if !root.Parent.IsZero() || root.Rank != -1 {
		t.Errorf("request span = parent %s rank %d, want root at rank -1", root.Parent, root.Rank)
	}
	if root.Arg != int64(len(req.Sequence)) {
		t.Errorf("request arg = %d, want sequence length %d", root.Arg, len(req.Sequence))
	}
	if q := by["queue.wait"][0]; q.Parent != root.ID {
		t.Error("queue.wait not parented under request")
	}
	if c := by["cache.lookup"][0]; c.Parent != root.ID {
		t.Error("cache.lookup not parented under request")
	}
	if e := by["engine"][0]; e.Parent != by["cache.lookup"][0].ID {
		t.Error("engine not nested inside cache.lookup")
	}

	rpt, err := trace.AnalyzeCriticalPath(spans)
	if err != nil {
		t.Fatal(err)
	}
	if rpt.RootName != "request" {
		t.Fatalf("critical-path root = %q", rpt.RootName)
	}
	if rpt.SumNS != rpt.RootNS {
		t.Errorf("attribution sum %d != root %d", rpt.SumNS, rpt.RootNS)
	}

	// The response envelope's elapsed_ms is measured outside the trace;
	// the root span must agree with it within a generous margin (the
	// ISSUE's acceptance bound is 10%; the two clocks differ only by
	// header-write overhead, but allow slow CI some room).
	env := decode(t, raw)
	e2eNS := env.ElapsedMS * 1e6
	if diff := float64(rpt.RootNS) - e2eNS; diff > 0.5*e2eNS+float64(5e6) {
		t.Errorf("root span %.2fms vs elapsed_ms %.2fms", float64(rpt.RootNS)/1e6, env.ElapsedMS)
	}
}

// TestAnalyzeAdoptsTraceparent: a request carrying a W3C traceparent
// joins the caller's trace, parented under the caller's span.
func TestAnalyzeAdoptsTraceparent(t *testing.T) {
	col := trace.NewCollector(0, 0)
	_, ts := newTestServer(t, Config{Workers: 1, Traces: col})

	caller := trace.SpanContext{Trace: trace.NewTraceID(), Span: trace.NewSpanID()}
	resp, raw, tid := postTraced(t, ts.URL,
		Request{Sequence: "ATGCATGCATGC", Params: Params{Matrix: "paper-dna", Tops: 2}},
		caller.TraceParent())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	if tid != caller.Trace.String() {
		t.Fatalf("X-Trace-Id %q, want the caller's trace %s", tid, caller.Trace)
	}
	spans, _ := getTrace(t, ts.URL, tid)
	req := spansByName(spans)["request"]
	if len(req) != 1 || req[0].Parent != caller.Span {
		t.Fatalf("request span not parented under the caller's span: %+v", req)
	}

	// A malformed traceparent must fall back to a fresh trace.
	_, _, tid2 := postTraced(t, ts.URL,
		Request{Sequence: "ATGCATGCATGC", Params: Params{Matrix: "paper-dna", Tops: 4}},
		"00-garbage-garbage-01")
	if _, ok := trace.ParseTraceID(tid2); !ok || tid2 == tid {
		t.Errorf("malformed traceparent produced trace %q", tid2)
	}
}

// TestCacheHitTraceHasNoEngine: a cache hit must not record an engine
// span — the time was a lookup, not a computation.
func TestCacheHitTraceHasNoEngine(t *testing.T) {
	col := trace.NewCollector(0, 0)
	_, ts := newTestServer(t, Config{Workers: 1, Traces: col})

	req := Request{Sequence: "ATGCATGCATGCATGC", Params: Params{Matrix: "paper-dna", Tops: 3}}
	if resp, raw, _ := postTraced(t, ts.URL, req, ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("warm-up failed: %s", raw)
	}
	resp, raw, tid := postTraced(t, ts.URL, req, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	if got := decode(t, raw).Cache; got != "hit" {
		t.Fatalf("second request cache = %q, want hit", got)
	}
	spans, _ := getTrace(t, ts.URL, tid)
	by := spansByName(spans)
	if len(by["engine"]) != 0 {
		t.Errorf("cache hit recorded an engine span")
	}
	if len(by["cache.lookup"]) != 1 {
		t.Errorf("cache hit has %d cache.lookup spans, want 1", len(by["cache.lookup"]))
	}
}

// TestClusterBackendTraceSpansThreeProcesses is the ISSUE's acceptance
// scenario: one POST /v1/analyze against the cluster backend produces a
// single trace whose spans cover the server (rank -1), the cluster
// master (rank 0), and at least one slave (rank >= 1), retrievable at
// /trace/{id}, with the critical-path sum reconciling against the root.
func TestClusterBackendTraceSpansThreeProcesses(t *testing.T) {
	col := trace.NewCollector(0, 0)
	_, ts := newTestServer(t, Config{Workers: 2, Traces: col})

	q := seq.SyntheticTitin(200, 2)
	resp, raw, tid := postTraced(t, ts.URL, Request{
		Sequence: q.String(),
		Params:   Params{Tops: 4},
		Backend:  BackendCluster,
		Slaves:   2,
	}, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}

	spans, dropped := getTrace(t, ts.URL, tid)
	if dropped != 0 {
		t.Errorf("%d spans dropped", dropped)
	}
	ranks := map[int32]bool{}
	for _, sp := range spans {
		ranks[sp.Rank] = true
	}
	if !ranks[-1] || !ranks[0] || (!ranks[1] && !ranks[2]) {
		t.Fatalf("ranks in trace = %v, want server (-1), master (0), and a slave (>=1)", ranks)
	}
	by := spansByName(spans)
	for _, name := range []string{"request", "engine", "cluster.run", "cluster.dispatch", "slave.job", "slave.kernel"} {
		if len(by[name]) == 0 {
			t.Errorf("no %q span in the cluster-backend trace (have %v)", name, names(spans))
		}
	}
	if len(by["cluster.run"]) == 1 && len(by["engine"]) == 1 {
		if by["cluster.run"][0].Parent != by["engine"][0].ID {
			t.Error("cluster.run not parented under the engine span")
		}
	}

	rpt, err := trace.AnalyzeCriticalPath(spans)
	if err != nil {
		t.Fatal(err)
	}
	if rpt.RootName != "request" {
		t.Fatalf("critical-path root = %q", rpt.RootName)
	}
	if rpt.SumNS != rpt.RootNS {
		t.Errorf("attribution sum %d != root %d", rpt.SumNS, rpt.RootNS)
	}
	cats := map[string]int64{}
	for _, e := range rpt.Entries {
		cats[e.Category] = e.NS
	}
	if cats[trace.CatKernel] == 0 {
		t.Error("no kernel time attributed for a cluster run")
	}
}

// TestUntracedServerOmitsTraceEndpoint: with Traces nil the server
// neither sets X-Trace-Id nor serves /trace/{id}.
func TestUntracedServerOmitsTraceEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, raw, tid := postTraced(t, ts.URL,
		Request{Sequence: "ATGCATGCATGC", Params: Params{Matrix: "paper-dna", Tops: 2}}, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	if tid != "" {
		t.Errorf("untraced server set X-Trace-Id %q", tid)
	}
	r2, err := http.Get(ts.URL + "/trace/" + trace.NewTraceID().String())
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusNotFound {
		t.Errorf("/trace/{id} status = %d, want 404 (route absent)", r2.StatusCode)
	}
}

func names(spans []trace.Span) []string {
	out := make([]string, len(spans))
	for i, sp := range spans {
		out[i] = sp.Name
	}
	return out
}
