// Package serve is the analysis serving layer: the front door that
// turns the one-shot engines (sequential, shared-memory parallel,
// in-process cluster) into a daemon fit for sustained traffic.
//
// The pipeline is admission -> queue -> worker pool -> cache -> engine:
//
//   - a bounded admission queue gives the server a hard memory and
//     latency envelope; when it is full, requests are shed immediately
//     with 429 + Retry-After rather than queued without bound;
//   - every request carries a deadline; a request whose deadline
//     expires while queued is dropped by the worker without running the
//     engine (the work would be wasted — the client is gone);
//   - a content-addressed LRU cache (internal/cache) keyed by
//     SHA-256(sequence) + canonicalised parameters serves repeated
//     analyses without touching the engine, and its singleflight
//     collapses concurrent identical requests into one engine run;
//   - graceful drain: on SIGTERM the daemon stops admitting, finishes
//     every queued request, and only then exits.
//
// Everything is wired into internal/obs: queue-depth gauge, cache
// hit/miss/evict counters, admission-wait and end-to-end latency
// histograms, and journal events (admit/batch/serve/shed) so a
// production incident can be traced request by request. DESIGN.md
// section 9 describes the architecture.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/cache"
	"repro/internal/jobstore"
	"repro/internal/multialign"
	"repro/internal/obs"
	"repro/internal/obs/attrib"
	"repro/internal/obs/profile"
	"repro/internal/obs/slo"
	"repro/internal/obs/trace"
	"repro/internal/stats"
)

// Config sizes a Server. The zero value is usable: it serves with
// GOMAXPROCS workers, a queue of 4x that, a 30-second default
// deadline, and a 256-entry cache.
type Config struct {
	// Workers is the worker-pool size (0 = GOMAXPROCS).
	Workers int
	// QueueDepth bounds the admission queue (0 = 4*Workers).
	QueueDepth int
	// DefaultTimeout is the per-request deadline when the request does
	// not carry one (0 = 30s).
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested deadlines (0 = 2m).
	MaxTimeout time.Duration
	// MaxSequenceLen rejects oversized sequences at admission
	// (0 = 100000 residues; the engine is O(n^3)).
	MaxSequenceLen int
	// CacheEntries sizes the result LRU (0 = cache.DefaultCapacity,
	// negative disables caching).
	CacheEntries int
	// CacheBytes bounds the result LRU by stored bytes
	// (0 = cache.DefaultMaxBytes). Entries are pre-encoded report JSON
	// whose sizes span orders of magnitude, so the entry-count bound
	// alone does not bound memory.
	CacheBytes int64
	// Disk, when non-nil, is the persistent tier under the LRU:
	// checksummed content-addressed files that survive restarts.
	// Memory misses fall through to it, computed results are written
	// through, and Start pre-warms the LRU from it.
	Disk *cache.Disk
	// Jobs, when non-nil, enables the durable async job API
	// (POST /v1/jobs, GET /v1/jobs/{id}, SSE /v1/jobs/{id}/events) and
	// is its write-ahead store. On Start, interrupted jobs found in the
	// store are recovered and re-enqueued. Job results live in the
	// result cache, so setting Jobs overrides CacheEntries < 0 back to
	// the default capacity.
	Jobs *jobstore.Store
	// JobWorkers sizes the async job worker pool (0 = 2). Async jobs
	// run beside the synchronous pool, so slow chromosome-scale jobs
	// cannot starve interactive /v1/analyze traffic.
	JobWorkers int
	// JobRetryBase is the base of the jittered exponential backoff
	// between retry-chain attempts (0 = 500ms; tests shrink it).
	JobRetryBase time.Duration
	// RateLimit caps admitted /v1/analyze requests per second with a
	// token bucket (0 = unlimited). Unlike QueueDepth, which bounds
	// memory, the rate limit bounds sustained engine load — it gives a
	// shard a declared capacity a router tier can balance against.
	// Requests over the limit are shed with 429 + Retry-After.
	RateLimit float64
	// RateBurst is the token-bucket burst size (0 = ceil(RateLimit),
	// minimum 1). Ignored when RateLimit is 0.
	RateBurst int
	// Metrics receives serving telemetry under the serve/ and cache/
	// namespaces; may be nil.
	Metrics *obs.Registry
	// Journal receives admit/batch/serve/shed events; may be nil.
	Journal *obs.Journal
	// Traces, when non-nil, stores per-request span traces. POST
	// /v1/analyze then honours an incoming W3C traceparent header (or
	// starts a fresh trace), answers with X-Trace-Id, and GET
	// /trace/{id} serves the finished trace as a span tree or Chrome
	// trace_event JSON.
	Traces *trace.Collector
	// SLO configures the burn-rate tracker (zero value = 99.9%
	// availability, 99% of requests under 2s). The tracker is always
	// on — it costs a few atomic adds per request — and is served on
	// GET /slo and as slo/ gauges on /metrics.
	SLO slo.Config
	// Profiles, when non-nil, is the continuous profiler whose capture
	// ring is served on GET /debug/profiles. The server does not start
	// or stop it — lifecycle belongs to the daemon (cmd/reproserve).
	Profiles *profile.Profiler
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.MaxSequenceLen == 0 {
		c.MaxSequenceLen = 100000
	}
	if c.JobWorkers <= 0 {
		c.JobWorkers = 2
	}
	if c.JobRetryBase <= 0 {
		c.JobRetryBase = 500 * time.Millisecond
	}
	if c.RateLimit > 0 && c.RateBurst <= 0 {
		c.RateBurst = int(math.Ceil(c.RateLimit))
	}
	return c
}

// Server is the serving layer. Create with New, start the worker pool
// with Start, expose Handler over HTTP, stop with Drain.
type Server struct {
	cfg    Config
	cache  *cache.Cache
	queue  chan *job
	jnl    *obs.Journal
	bucket *tokenBucket // nil = no rate limit

	// draining is read lock-free on hot and health paths. The write
	// side still serialises with admitMu: Drain sets the flag, then
	// takes admitMu exclusively so every in-flight admit (which holds
	// the read lock across its queue send) finishes before the queue
	// is closed — the flag alone cannot order "send on queue" against
	// "close(queue)".
	admitMu  sync.RWMutex
	draining atomic.Bool

	wg     sync.WaitGroup
	reqSeq atomic.Int64

	// async job runtime (zero unless cfg.Jobs is set)
	jobs    *jobstore.Store
	jobStop chan struct{}
	jobKick chan struct{}
	jobWG   sync.WaitGroup
	// failBackend, when non-nil, makes job attempts on the named
	// backends fail — the retry-chain test hook.
	failBackend func(backend string) error

	// metrics (all nil-safe when cfg.Metrics is nil)
	requests      *obs.Counter
	admitted      *obs.Counter
	completed     *obs.Counter
	errored       *obs.Counter
	shedQueueFull *obs.Counter
	shedDeadline  *obs.Counter
	shedDraining  *obs.Counter
	shedRateLimit *obs.Counter
	queueDepth    *obs.Gauge
	admissionNS   *obs.Histogram
	e2eNS         *obs.Histogram
	engineNS      *obs.Histogram
	engineCells   *obs.Counter
	engineAligns  *obs.Counter

	// Resource attribution (DESIGN.md §16): per-request usage
	// histograms, the attributed-CPU total reprostat reconciles against
	// proc/cpu_ns, and the SLO burn tracker.
	usageCPUNS    *obs.Histogram
	usageCells    *obs.Histogram
	usageAllocB   *obs.Histogram
	usageQueueNS  *obs.Histogram
	attribCPU     *obs.Counter
	cacheBytesIn  *obs.Counter    // report bytes served from cache (reads)
	cacheBytesOut *obs.Counter    // report bytes written through to cache
	engineCtrs    *stats.Counters // lifetime engine/ counters, folded per run
	slo           *slo.Tracker

	jobsSubmitted *obs.Counter
	jobsDeduped   *obs.Counter
	jobsCompleted *obs.Counter
	jobsFailed    *obs.Counter
	jobsRetries   *obs.Counter
	jobsRecovered *obs.Counter
}

// New builds a server; call Start before serving requests.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		queue: make(chan *job, cfg.QueueDepth),
		jnl:   cfg.Journal,

		requests:      cfg.Metrics.Counter("serve/requests"),
		admitted:      cfg.Metrics.Counter("serve/admitted"),
		completed:     cfg.Metrics.Counter("serve/completed"),
		errored:       cfg.Metrics.Counter("serve/errors"),
		shedQueueFull: cfg.Metrics.Counter("serve/shed_queue_full"),
		shedDeadline:  cfg.Metrics.Counter("serve/shed_deadline"),
		shedDraining:  cfg.Metrics.Counter("serve/shed_draining"),
		shedRateLimit: cfg.Metrics.Counter("serve/shed_rate_limit"),
		queueDepth:    cfg.Metrics.Gauge("serve/queue_depth"),
		admissionNS:   cfg.Metrics.Histogram("serve/admission_wait_ns"),
		e2eNS:         cfg.Metrics.Histogram("serve/e2e_ns"),
		engineNS:      cfg.Metrics.Histogram("serve/engine_ns"),
		engineCells:   cfg.Metrics.Counter("serve/engine_cells"),
		engineAligns:  cfg.Metrics.Counter("serve/engine_alignments"),

		jobsSubmitted: cfg.Metrics.Counter("serve/jobs_submitted"),
		jobsDeduped:   cfg.Metrics.Counter("serve/jobs_deduped"),
		jobsCompleted: cfg.Metrics.Counter("serve/jobs_completed"),
		jobsFailed:    cfg.Metrics.Counter("serve/jobs_failed"),
		jobsRetries:   cfg.Metrics.Counter("serve/jobs_retries"),
		jobsRecovered: cfg.Metrics.Counter("serve/jobs_recovered"),

		usageCPUNS:    cfg.Metrics.Histogram("serve/usage_cpu_ns"),
		usageCells:    cfg.Metrics.Histogram("serve/usage_cells"),
		usageAllocB:   cfg.Metrics.Histogram("serve/usage_alloc_bytes"),
		usageQueueNS:  cfg.Metrics.Histogram("serve/usage_queue_wait_ns"),
		attribCPU:     cfg.Metrics.Counter("serve/attrib_cpu_ns"),
		cacheBytesIn:  cfg.Metrics.Counter("serve/cache_bytes_read"),
		cacheBytesOut: cfg.Metrics.Counter("serve/cache_bytes_written"),
		engineCtrs:    &stats.Counters{},
		slo:           slo.New(cfg.SLO),
	}
	// One lifetime engine counter set, bound once: every engine run
	// folds its per-run snapshot in (repro.Options.Counters), so the
	// exported engine/ series are cumulative — the denominators
	// reprostat reconciles attributed CPU against.
	s.engineCtrs.Bind(cfg.Metrics)
	// SIMD diagnostics, stamped once at construction: the group-kernel
	// tier ladder ordinal (0 scalar, 1 int32x8, 2 int16x16) plus a
	// one-hot gauge per tier name, so /metrics consumers can match on
	// names without decoding ordinals.
	cfg.Metrics.Gauge("engine/kernel_tier").Set(int64(multialign.DetectedTier()))
	cfg.Metrics.Gauge("engine/kernel_tier/" + multialign.DetectedTier().String()).Set(1)
	if cfg.RateLimit > 0 {
		s.bucket = newTokenBucket(cfg.RateLimit, cfg.RateBurst, time.Now())
	}
	if cfg.CacheEntries >= 0 || cfg.Jobs != nil {
		entries := cfg.CacheEntries
		if entries < 0 {
			entries = 0 // jobs need somewhere to put results
		}
		s.cache = cache.NewSized(entries, cfg.CacheBytes)
		if cfg.Disk != nil {
			s.cache.AttachDisk(cfg.Disk)
		}
		s.cache.Bind(cfg.Metrics)
	}
	if cfg.Jobs != nil {
		s.jobs = cfg.Jobs
		s.jobs.Bind(cfg.Metrics)
		s.jobStop = make(chan struct{})
		s.jobKick = make(chan struct{}, 1)
	}
	return s
}

// Start launches the worker pool, pre-warms the cache from the disk
// tier, and — when a job store is configured — recovers interrupted
// jobs and launches the async job workers.
func (s *Server) Start() {
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	if s.cache != nil {
		s.cache.Prewarm(0)
	}
	if s.jobs != nil {
		s.recoverJobs()
		for i := 0; i < s.cfg.JobWorkers; i++ {
			s.jobWG.Add(1)
			go s.jobWorker()
		}
	}
}

// Drain stops admission (new requests are shed with 503), lets the
// workers finish every queued request, and returns when the pool has
// wound down or ctx expires. It is the SIGTERM path: nothing admitted
// is abandoned.
func (s *Server) Drain(ctx context.Context) error {
	if !s.draining.CompareAndSwap(false, true) {
		return fmt.Errorf("serve: already draining")
	}
	// Flush in-flight admits: each one holds the read lock across its
	// queue send, so acquiring the write lock here guarantees nobody
	// is mid-send when the queue closes.
	s.admitMu.Lock()
	s.admitMu.Unlock() //nolint:staticcheck // empty critical section is the barrier
	close(s.queue)
	if s.jobStop != nil {
		close(s.jobStop)
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		s.jobWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain: %w", ctx.Err())
	}
}

// job is one admitted request travelling through the queue.
type job struct {
	req      *Request
	ctx      context.Context
	seq      int64
	enqueued time.Time
	done     chan jobResult // buffered: the worker never blocks on delivery

	// Tracing (all nil/zero when the request is untraced). qspan is the
	// queue.wait span: started at admission, ended by whichever side
	// takes the job off the queue — the channel handoff orders the two.
	rec   *trace.Recorder
	root  trace.SpanID
	qspan *trace.Active
}

type jobResult struct {
	report  []byte // pre-encoded repro.Report JSON
	outcome cache.Outcome
	usage   *attrib.Usage // per-request attribution (nil on error)
	err     error
}

// shed cause -> counter + journal arg.
func (s *Server) recordShed(seq int64, cause int64) {
	switch cause {
	case obs.ShedQueueFull:
		s.shedQueueFull.Inc()
	case obs.ShedDeadline:
		s.shedDeadline.Inc()
	case obs.ShedDraining:
		s.shedDraining.Inc()
	case obs.ShedRateLimit:
		s.shedRateLimit.Inc()
	}
	s.jnl.Record(obs.EvShed, -1, int64(seq), cause)
	// A shed request is an availability failure the client saw; score
	// it against every objective so burn tracks what users experience,
	// not just what the engine ran.
	s.slo.Record(false, 0)
}

// admit places a job on the queue, or reports the shed cause. For
// rate-limit sheds, wait is the time until the next token accrues —
// the Retry-After hint (zero for other causes; the queue-full hint is
// latency-derived instead, see retryAfter).
func (s *Server) admit(j *job) (ok bool, cause int64, wait time.Duration) {
	s.admitMu.RLock()
	defer s.admitMu.RUnlock()
	if s.draining.Load() {
		return false, obs.ShedDraining, 0
	}
	// The bucket is checked before the queue send so a shed request
	// never consumes queue capacity; conversely a queue-full shed does
	// not refund its token — both are deliberate admission spend.
	if ok, wait := s.bucket.allow(time.Now()); !ok {
		return false, obs.ShedRateLimit, wait
	}
	select {
	case s.queue <- j:
		s.admitted.Inc()
		s.queueDepth.Add(1)
		s.jnl.Record(obs.EvAdmit, -1, int64(j.seq), int64(len(s.queue)))
		return true, 0, 0
	default:
		return false, obs.ShedQueueFull, 0
	}
}

func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.queueDepth.Add(-1)
		s.admissionNS.Observe(time.Since(j.enqueued))
		j.qspan.End()
		if j.ctx.Err() != nil {
			// The deadline expired while queued; the client has given
			// up, so running the engine would be pure waste.
			s.recordShed(j.seq, obs.ShedDeadline)
			j.done <- jobResult{err: j.ctx.Err()}
			continue
		}
		qwait := time.Since(j.enqueued)
		rep, outcome, usage, err := s.compute(j)
		e2e := time.Since(j.enqueued)
		if err != nil {
			s.errored.Inc()
		} else {
			s.completed.Inc()
			// The e2e histogram carries OpenMetrics exemplars: a scrape of
			// a slow bucket links straight to the trace that filled it.
			var tid string
			if j.rec != nil {
				tid = j.rec.TraceID().String()
			}
			s.e2eNS.ObserveExemplar(e2e, tid)
			s.jnl.Record(obs.EvServe, -1, int64(j.seq), e2e.Nanoseconds())
		}
		s.slo.Record(err == nil, e2e)
		if usage != nil {
			usage.QueueWaitNanos = qwait.Nanoseconds()
			s.observeUsage(usage)
		}
		j.done <- jobResult{report: rep, outcome: outcome, usage: usage, err: err}
	}
}

// observeUsage folds one request's attribution record into the
// per-dimension histograms and the attributed-CPU total that reprostat
// reconciles against process CPU.
func (s *Server) observeUsage(u *attrib.Usage) {
	s.usageQueueNS.Observe(time.Duration(u.QueueWaitNanos))
	s.usageCPUNS.Observe(time.Duration(u.CPUNanos))
	s.usageCells.Observe(time.Duration(u.Cells))
	s.usageAllocB.Observe(time.Duration(u.AllocBytes))
	s.attribCPU.Add(u.CPUNanos)
	s.cacheBytesIn.Add(u.CacheBytesRead)
	s.cacheBytesOut.Add(u.CacheBytesWritten)
}

// SLO exposes the burn-rate tracker (for the HTTP layer and tests).
func (s *Server) SLO() *slo.Tracker { return s.slo }

// compute satisfies a job from the cache or the engine. Results are
// cached pre-encoded: a hit serves stored bytes, so the hot path never
// re-marshals a large report.
//
// The cache.lookup span wraps the whole GetOrCompute; on a miss the
// engine span nests inside it, and the critical-path analyzer's
// exclusive-time attribution charges only the non-engine remainder to
// the cache. A singleflight ride-along is renamed cache.wait — the
// time was spent waiting on another request's engine run.
func (s *Server) compute(j *job) ([]byte, cache.Outcome, *attrib.Usage, error) {
	// engineUsage escapes the run closure: when this goroutine is the
	// one that computes (Miss), it carries the engine's attribution out
	// of the cache layer. Ride-alongs and hits leave it nil — their
	// cost is the cached bytes they read, not the leader's CPU.
	var engineUsage *attrib.Usage
	if s.cache == nil {
		run := func() (any, error) {
			rep, err := s.runEngine(j.req, j.rec, j.root)
			if err != nil {
				return nil, err
			}
			engineUsage = rep.Usage
			return json.Marshal(rep)
		}
		v, err := run()
		if err != nil {
			return nil, cache.Miss, nil, err
		}
		usage := &attrib.Usage{}
		usage.Add(engineUsage)
		return v.([]byte), cache.Miss, usage, nil
	}
	csp := j.rec.Start(j.root, "cache.lookup")
	defer csp.End()
	run := func() (any, error) {
		rep, err := s.runEngine(j.req, j.rec, csp.ID())
		if err != nil {
			return nil, err
		}
		engineUsage = rep.Usage
		return json.Marshal(rep)
	}
	v, outcome, err := s.cache.GetOrCompute(CacheKey(j.req), run)
	switch outcome {
	case cache.Shared:
		csp.SetName("cache.wait")
		s.jnl.Record(obs.EvBatch, -1, int64(j.seq), 0)
	case cache.DiskHit:
		csp.SetName("cache.disk")
	}
	if err != nil {
		return nil, outcome, nil, err
	}
	rep := v.([]byte)
	usage := &attrib.Usage{}
	usage.Add(engineUsage)
	if outcome == cache.Miss {
		// We computed and wrote the entry through the cache tiers.
		usage.CacheBytesWritten = int64(len(rep))
	} else {
		usage.CacheBytesRead = int64(len(rep))
	}
	return rep, outcome, usage, nil
}

// runEngine dispatches a canonicalised request to its backend. rec and
// parent thread the request's trace into the engine (both may be
// nil/zero).
func (s *Server) runEngine(req *Request, rec *trace.Recorder, parent trace.SpanID) (*repro.Report, error) {
	opt := repro.Options{
		Matrix:  req.Matrix,
		GapOpen: req.GapOpen, GapExt: req.GapExt,
		NumTops: req.Tops, MinScore: req.MinScore, MinPairs: req.MinPairs,
		Lanes: req.Lanes, Striped: req.Striped,
		Speculative: req.Speculative,
		Preset:      req.Preset,
		SeedK:       req.SeedK, SeedMask: req.SeedMask, SeedMaxOcc: req.SeedMaxOcc,
		SeedBand: req.SeedBand, SeedPad: req.SeedPad,
		Spans:      rec,
		SpanParent: parent,
		Counters:   s.engineCtrs,
	}
	switch req.Backend {
	case BackendParallel:
		opt.Workers = req.Workers
		if opt.Workers <= 1 {
			opt.Workers = max(2, runtime.GOMAXPROCS(0))
		}
	case BackendCluster:
		opt.Slaves = req.Slaves
		opt.ThreadsPerSlave = req.ThreadsPerSlave
	}
	t0 := time.Now()
	// Label the engine run so continuous-profiler captures slice by
	// request dimension (a flame graph filtered on kernel_tier=int16x16
	// shows exactly the int16 ladder's CPU). Labels follow every
	// goroutine the engine spawns.
	backend := req.Backend
	if backend == "" {
		backend = BackendSequential
	}
	preset := req.Preset
	if preset == "" {
		preset = "exact"
	}
	labels := pprof.Labels(
		"trace_id", rec.TraceID().String(),
		"backend", backend,
		"kernel_tier", repro.KernelTierFor(req.Matrix, req.GapOpen, req.GapExt, len(req.Sequence), req.Lanes),
		"preset", preset,
	)
	var rep *repro.Report
	var err error
	pprof.Do(context.Background(), labels, func(context.Context) {
		rep, err = repro.Analyze(req.ID, req.Sequence, opt)
	})
	if err != nil {
		return nil, err
	}
	s.engineNS.Observe(time.Since(t0))
	s.engineCells.Add(rep.Stats.Cells)
	s.engineAligns.Add(rep.Stats.Alignments)
	return rep, nil
}

// Cache exposes the result cache (nil when disabled); used by tests
// and the stats endpoint.
func (s *Server) Cache() *cache.Cache { return s.cache }
