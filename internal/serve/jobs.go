package serve

import (
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"net/http"
	"time"

	"repro/internal/cache"
	"repro/internal/jobstore"
	"repro/internal/obs/trace"
)

// This file is the durable async job subsystem: POST /v1/jobs accepts
// an analysis, journals it in the write-ahead job store, and answers
// 202 with a job id — from that moment the work survives SIGKILL. A
// dedicated worker pool claims pending jobs, runs them through the
// shared result cache (so jobs, /v1/analyze, and restarts all
// deduplicate through the same content-addressed key), and degrades
// the backend cluster -> parallel -> sequential with jittered backoff
// before reporting failure. Progress streams over SSE, backed by the
// same span collector the tracing layer uses.

// JobStatus is the body of GET /v1/jobs/{id} and of SSE status events.
type JobStatus struct {
	JobID    string `json:"job_id"`
	State    string `json:"state"`
	Attempts int    `json:"attempts,omitempty"`
	// Backend is the backend of the most recent attempt; the retry
	// chain may have degraded it below the requested one.
	Backend string `json:"backend,omitempty"`
	Error   string `json:"error,omitempty"`
	TraceID string `json:"trace_id,omitempty"`
	// Deduped marks a submission that joined an existing active job
	// with the same content-addressed key.
	Deduped   bool   `json:"deduped,omitempty"`
	Note      string `json:"note,omitempty"`
	CreatedNS int64  `json:"created_ns,omitempty"`
	UpdatedNS int64  `json:"updated_ns,omitempty"`
	// Cache and Report are set on a Done job: how the result was last
	// obtained and the pre-encoded report JSON.
	Cache  string          `json:"cache,omitempty"`
	Report json.RawMessage `json:"report,omitempty"`
}

func jobStatusOf(j jobstore.Job) JobStatus {
	return JobStatus{
		JobID:    j.ID,
		State:    string(j.State),
		Attempts: j.Attempts,
		Backend:  j.Backend,
		Error:    j.Error,
		TraceID:  j.TraceID,

		CreatedNS: j.CreatedNS,
		UpdatedNS: j.UpdatedNS,
	}
}

// handleJobSubmit is POST /v1/jobs: same body as /v1/analyze, but the
// work is journaled and executed asynchronously. 202 is a durability
// promise: once the id is returned, the job is recovered and re-run
// across any number of crashes until it reaches a terminal state.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if err := req.canonicalise(s.cfg.MaxSequenceLen); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if s.draining.Load() {
		w.Header().Set("Retry-After", s.retryAfter(true))
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}

	key := CacheKey(&req)
	// Submission-time dedup: an active job for the same canonicalised
	// analysis absorbs this submission (the content-addressed key is
	// exactly "would produce a bit-identical report").
	if existing, ok := s.jobs.ActiveByKey(key); ok {
		s.jobsDeduped.Inc()
		st := jobStatusOf(existing)
		st.Deduped = true
		writeJSON(w, http.StatusAccepted, st)
		return
	}

	var traceID string
	if s.cfg.Traces != nil {
		traceID = trace.NewTraceID().String()
	}
	canon, err := json.Marshal(&req)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	j := jobstore.Job{
		ID:      trace.NewSpanID().String(),
		Key:     key,
		Request: canon,
		TraceID: traceID,
	}
	if err := s.jobs.Submit(j); err != nil {
		// The journal append failed (e.g. disk full): accepting would
		// break the 202 promise, so refuse loudly.
		writeError(w, http.StatusServiceUnavailable, "job journal unavailable: "+err.Error())
		return
	}
	s.jobsSubmitted.Inc()
	s.kickJobs()
	st, _ := s.jobs.Get(j.ID)
	writeJSON(w, http.StatusAccepted, jobStatusOf(st))
}

// handleJobGet is GET /v1/jobs/{id}: status, and for Done jobs the
// result itself, re-fetched from the cache tiers. If the result has
// been lost since completion (evicted from memory AND corrupted or
// missing on disk), the job is transparently re-enqueued — corrupt
// bytes are never served, recomputation is.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	st := jobStatusOf(j)
	if j.State == jobstore.Done {
		if v, ok := s.cache.Get(j.Key); ok {
			st.Report = v.([]byte)
			st.Cache = "hit"
		} else {
			j2, err := s.jobs.Update(j.ID, func(x *jobstore.Job) { x.State = jobstore.Pending })
			if err == nil {
				s.kickJobs()
				st = jobStatusOf(j2)
				st.Note = "result no longer durable; recomputing"
			}
		}
	}
	writeJSON(w, http.StatusOK, st)
}

// handleJobList is GET /v1/jobs: every known job, oldest first.
func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	jobs := s.jobs.List()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = jobStatusOf(j)
	}
	writeJSON(w, http.StatusOK, struct {
		Jobs []JobStatus `json:"jobs"`
	}{out})
}

// handleJobEvents is GET /v1/jobs/{id}/events: a Server-Sent-Events
// stream of the job's progress. Status events fire on every state
// change; span events replay the job's trace from the span collector
// as the engine emits it (queue waits, attempts, engine phases,
// cluster dispatch...), so a client watching a minutes-long
// chromosome-scale job sees it move. The stream ends with a "done"
// event once the job is terminal.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	var tid trace.TraceID
	if j.TraceID != "" {
		tid, _ = trace.ParseTraceID(j.TraceID)
	}
	emit := func(event string, v any) {
		data, _ := json.Marshal(v)
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
		fl.Flush()
	}

	lastState, lastAttempts := "", -1
	sentSpans := 0
	tick := time.NewTicker(150 * time.Millisecond)
	defer tick.Stop()
	for {
		j, ok = s.jobs.Get(j.ID)
		if !ok {
			return
		}
		if string(j.State) != lastState || j.Attempts != lastAttempts {
			lastState, lastAttempts = string(j.State), j.Attempts
			emit("status", jobStatusOf(j))
		}
		if spans, _, ok := s.cfg.Traces.Get(tid); ok {
			for ; sentSpans < len(spans); sentSpans++ {
				sp := spans[sentSpans]
				emit("span", struct {
					Name    string `json:"name"`
					Rank    int32  `json:"rank"`
					StartNS int64  `json:"start_ns"`
					DurNS   int64  `json:"dur_ns"`
					Arg     int64  `json:"arg,omitempty"`
				}{sp.Name, sp.Rank, sp.Start, sp.Dur, sp.Arg})
			}
		}
		if j.State.Terminal() {
			emit("done", jobStatusOf(j))
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-s.jobStop:
			return
		case <-tick.C:
		}
	}
}

// kickJobs wakes a job worker without blocking.
func (s *Server) kickJobs() {
	select {
	case s.jobKick <- struct{}{}:
	default:
	}
}

// recoverJobs is the restart path: every job that was Running when the
// process died goes back to Pending, and pending jobs whose result is
// already durable (computed before the crash, or by a twin request)
// complete immediately through the content-addressed cache — work is
// deduplicated across crashes exactly as it is across requests.
func (s *Server) recoverJobs() {
	if n := s.jobs.RequeueRunning(); n > 0 {
		s.jobsRecovered.Add(int64(n))
	}
	for _, j := range s.jobs.List() {
		if j.State != jobstore.Pending {
			continue
		}
		if _, ok := s.cache.Get(j.Key); ok {
			s.jobs.Update(j.ID, func(x *jobstore.Job) { x.State = jobstore.Done }) //nolint:errcheck
			s.jobsCompleted.Inc()
		}
	}
	s.kickJobs()
}

// jobWorker drains pending jobs. Claims go through the store so a
// claim is atomic across workers; the kick channel gives submissions
// instant pickup and the ticker catches anything left behind (e.g.
// jobs requeued by a result-loss GET).
func (s *Server) jobWorker() {
	defer s.jobWG.Done()
	tick := time.NewTicker(500 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-s.jobStop:
			return
		case <-s.jobKick:
		case <-tick.C:
		}
		for {
			select {
			case <-s.jobStop:
				return
			default:
			}
			j, ok := s.jobs.Claim()
			if !ok {
				break
			}
			s.runJob(j)
		}
	}
}

// backendChain is the graceful-degradation order: a failed
// cluster-backend attempt falls back to the shared-memory engine,
// then to sequential — strict mode keeps all three bit-identical, so
// degradation changes latency, never the answer.
func backendChain(requested string) []string {
	switch requested {
	case BackendCluster:
		return []string{BackendCluster, BackendParallel, BackendSequential}
	case BackendParallel:
		return []string{BackendParallel, BackendSequential}
	default:
		return []string{BackendSequential}
	}
}

// retryDelay is the jittered exponential backoff before attempt i
// (1-based within the chain): base<<(i-1), uniformly jittered in
// [50%, 150%], so a thundering herd of recovered jobs spreads out.
func (s *Server) retryDelay(i int) time.Duration {
	d := s.cfg.JobRetryBase << (i - 1)
	return d/2 + rand.N(d)
}

// runJob executes one claimed job through the retry chain. Every
// attempt (and the backoff before it) is recorded as a span in the
// job's trace, so reprotrace attributes exactly what retries cost.
func (s *Server) runJob(j jobstore.Job) {
	var req Request
	if err := json.Unmarshal(j.Request, &req); err == nil {
		err = req.canonicalise(s.cfg.MaxSequenceLen)
		if err == nil {
			s.executeJob(j, &req)
			return
		}
		s.failJob(j.ID, fmt.Errorf("replayed request invalid: %w", err))
		return
	}
	s.failJob(j.ID, fmt.Errorf("replayed request unreadable"))
}

func (s *Server) failJob(id string, cause error) {
	s.jobsFailed.Inc()
	s.jobs.Update(id, func(x *jobstore.Job) { //nolint:errcheck
		x.State = jobstore.Failed
		x.Error = cause.Error()
	})
}

func (s *Server) executeJob(j jobstore.Job, req *Request) {
	var rec *trace.Recorder
	if tid, ok := trace.ParseTraceID(j.TraceID); ok {
		rec = s.cfg.Traces.Rec(tid)
	}
	root := rec.Start(trace.SpanID{}, "job")
	root.SetArg(int64(len(req.Sequence)))
	defer root.End()

	chain := backendChain(req.Backend)
	var lastErr error
	for i, backend := range chain {
		if i > 0 {
			s.jobsRetries.Inc()
			bsp := rec.Start(root.ID(), "job.backoff")
			select {
			case <-time.After(s.retryDelay(i)):
			case <-s.jobStop:
				// Draining mid-chain: leave the job Running in the
				// journal; the next Open requeues and re-runs it.
				bsp.End()
				return
			}
			bsp.End()
		}
		s.jobs.Update(j.ID, func(x *jobstore.Job) { //nolint:errcheck
			if i > 0 {
				x.Attempts++
			}
			x.Backend = backend
		})
		asp := rec.Start(root.ID(), "job.attempt."+backend)
		asp.SetArg(int64(i + 1))
		_, err := s.computeJob(req, backend, rec, asp.ID())
		asp.End()
		if err == nil {
			s.jobsCompleted.Inc()
			s.jobs.Update(j.ID, func(x *jobstore.Job) { x.State = jobstore.Done }) //nolint:errcheck
			return
		}
		lastErr = err
	}
	s.failJob(j.ID, fmt.Errorf("all backends failed (%s): %w",
		joinChain(chain), lastErr))
}

func joinChain(chain []string) string {
	out := ""
	for i, b := range chain {
		if i > 0 {
			out += "->"
		}
		out += b
	}
	return out
}

// computeJob runs one attempt on one backend through the shared
// cache: the key excludes the backend (strict mode is bit-identical
// across engines), so a degraded retry, a concurrent /v1/analyze, or
// a pre-crash run all satisfy the same entry.
func (s *Server) computeJob(req *Request, backend string, rec *trace.Recorder, parent trace.SpanID) (cache.Outcome, error) {
	attempt := *req
	attempt.Backend = backend
	run := func() (any, error) {
		if s.failBackend != nil {
			if err := s.failBackend(backend); err != nil {
				return nil, err
			}
		}
		rep, err := s.runEngine(&attempt, rec, parent)
		if err != nil {
			return nil, err
		}
		return json.Marshal(rep)
	}
	_, outcome, err := s.cache.GetOrCompute(CacheKey(req), run)
	return outcome, err
}
