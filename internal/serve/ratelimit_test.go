package serve

import (
	"net/http"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestTokenBucket(t *testing.T) {
	t0 := time.Now()
	tb := newTokenBucket(10, 2, t0) // 10/s, burst 2

	for i := 0; i < 2; i++ {
		if ok, _ := tb.allow(t0); !ok {
			t.Fatalf("burst token %d refused", i)
		}
	}
	ok, wait := tb.allow(t0)
	if ok {
		t.Fatal("third immediate request admitted past burst")
	}
	if wait <= 0 || wait > 100*time.Millisecond {
		t.Fatalf("wait hint = %v, want (0, 100ms]", wait)
	}
	// One token accrues every 100ms at rate 10.
	if ok, _ := tb.allow(t0.Add(100 * time.Millisecond)); !ok {
		t.Fatal("token not refilled after 1/rate")
	}
	if ok, _ := tb.allow(t0.Add(100 * time.Millisecond)); ok {
		t.Fatal("double-spend of one refilled token")
	}
	// Refill caps at burst: after a long idle only 2 tokens exist.
	late := t0.Add(time.Hour)
	for i := 0; i < 2; i++ {
		if ok, _ := tb.allow(late); !ok {
			t.Fatalf("post-idle token %d refused", i)
		}
	}
	if ok, _ := tb.allow(late); ok {
		t.Fatal("refill exceeded burst")
	}
	// Nil bucket admits everything.
	var nb *tokenBucket
	if ok, _ := nb.allow(t0); !ok {
		t.Fatal("nil bucket refused")
	}
}

// TestRateLimitSheds drives a server whose bucket admits exactly one
// request: the second request in the same instant must shed with 429,
// a Retry-After hint, and the rate-limit shed counter.
func TestRateLimitSheds(t *testing.T) {
	reg := obs.NewRegistry()
	_, ts := newTestServer(t, Config{
		Workers: 1, MaxSequenceLen: 4096,
		RateLimit: 0.5, RateBurst: 1,
		Metrics: reg,
	})
	req := Request{Sequence: "ATGCATGCATGCATGCATGC", Params: Params{Matrix: "paper-dna"}}
	resp, _ := post(t, ts.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first request = %d, want 200", resp.StatusCode)
	}
	// Cached or not, the second request must be refused at admission...
	resp2, _ := post(t, ts.URL, req)
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request = %d, want 429", resp2.StatusCode)
	}
	if resp2.Header.Get("Retry-After") == "" {
		t.Error("rate-limit shed without Retry-After")
	}
	if got := reg.Snapshot().Counters["serve/shed_rate_limit"]; got != 1 {
		t.Errorf("shed_rate_limit = %d, want 1", got)
	}
}
