package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/attrib"
	"repro/internal/obs/slo"
	"repro/internal/obs/trace"
)

// TestAnalyzeResourceAttribution drives a miss then a hit and checks
// the full attribution surface: Report.Usage in the body, X-Resource-*
// headers, and the serve-side usage metrics.
func TestAnalyzeResourceAttribution(t *testing.T) {
	reg := obs.NewRegistry()
	_, ts := newTestServer(t, Config{Workers: 1, Metrics: reg, Journal: obs.NewJournal(0)})

	req := Request{Sequence: "ATGCATGCATGCATGCATGC", Params: Params{Matrix: "paper-dna", Tops: 3}}
	resp, raw := post(t, ts.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	env := decode(t, raw)
	rep, err := env.DecodeReport()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Usage == nil {
		t.Fatal("miss response report has no Usage")
	}
	if rep.Usage.Cells <= 0 || rep.Usage.Alignments <= 0 {
		t.Errorf("usage lacks work: %+v", rep.Usage)
	}
	if attrib.ThreadCPUSupported() && rep.Usage.CPUNanos <= 0 {
		t.Errorf("usage CPU not attributed: %+v", rep.Usage)
	}
	if len(rep.Usage.KernelTiers) == 0 {
		t.Errorf("usage lacks kernel tier mix: %+v", rep.Usage)
	}
	hdr := func(r *http.Response, name string) int64 {
		v := r.Header.Get(name)
		if v == "" {
			return 0
		}
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("header %s = %q not an integer", name, v)
		}
		return n
	}
	if got := hdr(resp, "X-Resource-Cells"); got != rep.Usage.Cells {
		t.Errorf("X-Resource-Cells = %d, want %d", got, rep.Usage.Cells)
	}
	if hdr(resp, "X-Resource-Cache-Written-Bytes") <= 0 {
		t.Error("miss did not report cache write bytes")
	}

	// Hit: no engine work, cache read bytes only.
	resp2, raw2 := post(t, ts.URL, req)
	if got := decode(t, raw2).Cache; got != "hit" {
		t.Fatalf("second = %q, want hit", got)
	}
	if hdr(resp2, "X-Resource-Cache-Read-Bytes") <= 0 {
		t.Error("hit did not report cache read bytes")
	}
	if hdr(resp2, "X-Resource-Cpu-Ns") != 0 {
		t.Error("hit attributed engine CPU")
	}

	snap := reg.Snapshot()
	if snap.Histograms["serve/usage_cpu_ns"].Count != 2 {
		t.Errorf("usage_cpu_ns count = %d, want 2", snap.Histograms["serve/usage_cpu_ns"].Count)
	}
	if attrib.ThreadCPUSupported() && snap.Counters["serve/attrib_cpu_ns"] <= 0 {
		t.Error("attrib_cpu_ns total not accumulated")
	}
	if snap.Counters["serve/cache_bytes_written"] <= 0 || snap.Counters["serve/cache_bytes_read"] <= 0 {
		t.Errorf("cache byte counters: written=%d read=%d",
			snap.Counters["serve/cache_bytes_written"], snap.Counters["serve/cache_bytes_read"])
	}
}

// TestSLOEndpointAndGauges checks GET /slo carries burn fields and that
// a /metrics scrape publishes slo gauges plus the proc CPU gauge.
func TestSLOEndpointAndGauges(t *testing.T) {
	reg := obs.NewRegistry()
	_, ts := newTestServer(t, Config{Workers: 1, Metrics: reg})

	post(t, ts.URL, Request{Sequence: "ATGCATGCATGC", Params: Params{Matrix: "paper-dna", Tops: 2}})

	resp, err := http.Get(ts.URL + "/slo")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Objectives []slo.Status `json:"objectives"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Objectives) != 2 {
		t.Fatalf("objectives = %d, want 2", len(doc.Objectives))
	}
	av := doc.Objectives[0]
	if av.Name != "availability" || av.Target <= 0 {
		t.Fatalf("bad objective: %+v", av)
	}
	if av.Fast.Good < 1 {
		t.Errorf("served request not scored: %+v", av.Fast)
	}
	if av.Fast.Burn != 0 {
		t.Errorf("healthy server burning: %+v", av.Fast)
	}

	// Scrape /metrics to trigger gauge publication.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	snap := reg.Snapshot()
	if _, ok := snap.Gauges["slo/availability/fast_burn_milli"]; !ok {
		t.Error("slo gauges not published on scrape")
	}
	if attrib.ThreadCPUSupported() && snap.Gauges["proc/cpu_ns"] <= 0 {
		t.Error("proc/cpu_ns gauge not set on scrape")
	}
}

// omSampleLine matches one OpenMetrics sample line: name, optional
// label clause, value, then optionally an exemplar clause.
var omSampleLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?[0-9]+(\.[0-9]+)?( # \{[^{}]*\} -?[0-9]+(\.[0-9]+)?( [0-9]+\.[0-9]{3})?)?$`)

// TestOpenMetricsExemplarScrape is the golden scrape test: drive real
// requests through a traced server, scrape /metrics?format=openmetrics,
// validate the exposition line by line, and resolve every sampled
// exemplar's trace ID through GET /trace/{id}.
func TestOpenMetricsExemplarScrape(t *testing.T) {
	reg := obs.NewRegistry()
	col := trace.NewCollector(0, 0)
	_, ts := newTestServer(t, Config{Workers: 1, Metrics: reg, Traces: col})

	for _, seq := range []string{"ATGCATGCATGCATGC", "GGCCTTAAGGCCTTAA"} {
		resp, _ := post(t, ts.URL, Request{Sequence: seq, Params: Params{Matrix: "paper-dna", Tops: 2}})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("analyze status %d", resp.StatusCode)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics?format=openmetrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != obs.OpenMetricsContentType {
		t.Fatalf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Fatal("scrape does not end with # EOF")
	}

	exemplarRE := regexp.MustCompile(`# \{trace_id="([0-9a-f]{32})"\}`)
	var traceIDs []string
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !omSampleLine.MatchString(line) {
			t.Errorf("invalid OpenMetrics sample line %q", line)
		}
		if m := exemplarRE.FindStringSubmatch(line); m != nil {
			if !strings.HasPrefix(line, "serve_e2e_ns_bucket{") {
				t.Errorf("exemplar on unexpected series: %q", line)
			}
			traceIDs = append(traceIDs, m[1])
		}
	}
	if len(traceIDs) == 0 {
		t.Fatal("no exemplars in scrape")
	}
	// Every exemplar's trace must resolve to a stored span tree.
	for _, tid := range traceIDs {
		tr, err := http.Get(ts.URL + "/trace/" + tid)
		if err != nil {
			t.Fatal(err)
		}
		var doc struct {
			TraceID  string `json:"trace_id"`
			Complete bool   `json:"complete"`
		}
		err = json.NewDecoder(tr.Body).Decode(&doc)
		tr.Body.Close()
		if tr.StatusCode != http.StatusOK || err != nil || doc.TraceID != tid {
			t.Errorf("exemplar trace %s did not resolve: status=%d err=%v doc=%+v",
				tid, tr.StatusCode, err, doc)
		}
		if !doc.Complete {
			t.Errorf("trace %s marked incomplete", tid)
		}
	}
	// The counters must carry the _total suffix in this format.
	if !strings.Contains(out, "serve_requests_total ") {
		t.Error("counters lack _total suffix")
	}
}

// TestShedScoresSLO checks a shed request burns availability.
func TestShedScoresSLO(t *testing.T) {
	s := New(Config{Workers: 1})
	s.recordShed(1, obs.ShedQueueFull)
	snap := s.SLO().Snapshot()
	if snap[0].Fast.Bad != 1 {
		t.Fatalf("shed not scored bad: %+v", snap[0].Fast)
	}
}
