package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"repro"
	"repro/internal/scoring"
	"repro/internal/seedindex"
	"repro/internal/seq"
)

// Params are the analysis parameters of one serving request. The JSON
// zero value of every field selects the same default the reprocli
// binary uses, so a request carrying only a sequence is valid.
type Params struct {
	// Matrix names the exchange matrix (default BLOSUM62).
	Matrix string `json:"matrix,omitempty"`
	// GapOpen and GapExt define the affine gap cost; both zero selects
	// the matrix's conventional default.
	GapOpen int `json:"gap_open,omitempty"`
	GapExt  int `json:"gap_ext,omitempty"`
	// Tops is the number of top alignments (default repro.DefaultNumTops).
	Tops int `json:"tops,omitempty"`
	// MinScore stops the search when no alignment reaches it.
	MinScore int `json:"min_score,omitempty"`
	// MinPairs filters top alignments during delineation.
	MinPairs int `json:"min_pairs,omitempty"`
	// Lanes selects SIMD-style group alignment (0, 4, or 8).
	Lanes int `json:"lanes,omitempty"`
	// Striped selects the cache-aware striped kernel.
	Striped bool `json:"striped,omitempty"`
	// Speculative selects the paper's speculative acceptance rule for
	// the parallel backends. Off = strict: every backend returns a
	// result bit-identical to the sequential engine, which is what lets
	// the cache be shared across backends.
	Speculative bool `json:"speculative,omitempty"`
	// Preset selects the seed-filter-extend prefilter for long inputs:
	// "" (exact engine), "fast", "balanced", or "sensitive" (exact
	// engine + prefilter telemetry). Fast and balanced run the
	// sequential windowed driver regardless of backend, so cache
	// entries stay backend-shareable.
	Preset string `json:"preset,omitempty"`
	// SeedK, SeedMask, SeedMaxOcc, SeedBand and SeedPad override
	// individual prefilter knobs (0/"" = preset default). Valid only
	// with a preset.
	SeedK      int    `json:"seed_k,omitempty"`
	SeedMask   string `json:"seed_mask,omitempty"`
	SeedMaxOcc int    `json:"seed_max_occ,omitempty"`
	SeedBand   int    `json:"seed_band,omitempty"`
	SeedPad    int    `json:"seed_pad,omitempty"`
}

// Request is the body of POST /v1/analyze.
type Request struct {
	// ID labels the sequence in the report (default "serve").
	ID string `json:"id,omitempty"`
	// Sequence is the residue string to analyse.
	Sequence string `json:"sequence"`
	Params
	// Backend selects the execution engine: "sequential" (default),
	// "parallel" (shared-memory workers), or "cluster" (in-process
	// master/slave cluster).
	Backend string `json:"backend,omitempty"`
	// Workers sizes the parallel backend (0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// Slaves and ThreadsPerSlave size the cluster backend (0 = 2 each).
	Slaves          int `json:"slaves,omitempty"`
	TimeoutMS       int `json:"timeout_ms,omitempty"`
	ThreadsPerSlave int `json:"threads_per_slave,omitempty"`
}

// Response is the body of a successful POST /v1/analyze. Report is the
// repro.Report JSON; it is kept raw because the server caches results
// pre-encoded (a cache hit ships stored bytes instead of re-marshalling
// tens of KB of pairs) and a client that only wants the envelope never
// pays for decoding it.
type Response struct {
	ID string `json:"id,omitempty"`
	// Cache reports how the request was satisfied: "hit" (stored
	// result), "miss" (computed by this request), or "shared" (joined
	// an identical in-flight computation).
	Cache string `json:"cache"`
	// ElapsedMS is the server-side end-to-end latency, admission
	// included.
	ElapsedMS float64         `json:"elapsed_ms"`
	Report    json.RawMessage `json:"report"`
}

// DecodeReport unmarshals the raw report payload.
func (r *Response) DecodeReport() (*repro.Report, error) {
	var rep repro.Report
	if err := json.Unmarshal(r.Report, &rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// Backend names.
const (
	BackendSequential = "sequential"
	BackendParallel   = "parallel"
	BackendCluster    = "cluster"
)

// canonicalise validates the request and resolves every defaulted
// field to its explicit value, so that two requests asking for the
// same analysis in different spellings produce the same cache key.
// The sequence is trimmed and upper-cased (the engine's alphabets are
// case-insensitive).
func (r *Request) canonicalise(maxSeqLen int) error {
	r.Sequence = strings.ToUpper(strings.TrimSpace(r.Sequence))
	if r.Sequence == "" {
		return fmt.Errorf("sequence is required")
	}
	if maxSeqLen > 0 && len(r.Sequence) > maxSeqLen {
		return fmt.Errorf("sequence length %d exceeds the server limit %d", len(r.Sequence), maxSeqLen)
	}
	if r.ID == "" {
		r.ID = "serve"
	}
	if r.Matrix == "" {
		r.Matrix = "BLOSUM62"
	}
	m, ok := scoring.ByName(r.Matrix)
	if !ok {
		return fmt.Errorf("unknown exchange matrix %q (have BLOSUM62, PAM250, dna-unit, paper-dna)", r.Matrix)
	}
	if r.GapOpen == 0 && r.GapExt == 0 {
		g := defaultGap(m)
		r.GapOpen, r.GapExt = int(g.Open), int(g.Ext)
	}
	if r.GapOpen < 0 || r.GapExt < 0 {
		return fmt.Errorf("gap penalties must be non-negative")
	}
	if r.Tops <= 0 {
		r.Tops = repro.DefaultNumTops
	}
	if r.MinScore <= 0 {
		r.MinScore = 1
	}
	switch r.Lanes {
	case 0, 1:
		r.Lanes = 1
	case 4, 8, 16:
	default:
		return fmt.Errorf("lanes %d must be 0, 1, 4, 8, or 16", r.Lanes)
	}
	if r.Preset != "" && !seedindex.ValidPreset(r.Preset) {
		return fmt.Errorf("unknown preset %q (have fast, balanced, sensitive)", r.Preset)
	}
	if r.Preset == "" && (r.SeedK != 0 || r.SeedMask != "" || r.SeedMaxOcc != 0 ||
		r.SeedBand != 0 || r.SeedPad != 0) {
		return fmt.Errorf("seed_* parameters require a preset")
	}
	if r.Preset != "" {
		// Resolve the preset to explicit knob values so two requests
		// spelling the same prefilter differently share a cache key,
		// and reject invalid overrides before they reach the engine.
		alpha := m.Alphabet()
		pcfg, err := seedindex.PresetConfig(r.Preset, seq.PrimaryLetters(alpha))
		if err != nil {
			return err
		}
		if r.SeedK > 0 {
			pcfg.K = r.SeedK
		}
		if r.SeedMask != "" {
			pcfg.Mask = r.SeedMask
		}
		if r.SeedMaxOcc > 0 {
			pcfg.MaxOcc = r.SeedMaxOcc
		}
		if r.SeedBand > 0 {
			pcfg.BandWidth = r.SeedBand
		}
		if r.SeedPad > 0 {
			pcfg.Pad = r.SeedPad
		}
		if err := pcfg.Validate(); err != nil {
			return err
		}
		r.SeedK, r.SeedMask, r.SeedMaxOcc = pcfg.K, pcfg.Mask, pcfg.MaxOcc
		r.SeedBand, r.SeedPad = pcfg.BandWidth, pcfg.Pad
	}
	switch r.Backend {
	case "":
		r.Backend = BackendSequential
	case BackendSequential, BackendParallel, BackendCluster:
	default:
		return fmt.Errorf("unknown backend %q (have sequential, parallel, cluster)", r.Backend)
	}
	if r.Backend == BackendCluster {
		if r.Slaves <= 0 {
			r.Slaves = 2
		}
		if r.ThreadsPerSlave <= 0 {
			r.ThreadsPerSlave = 2
		}
	}
	return nil
}

// Canonicalise validates the request and resolves defaults in place,
// exactly as the analyze handler does before keying the cache. The
// router tier calls it so router and shard derive identical cache keys
// from identical requests; maxSeqLen <= 0 skips the length check (the
// shard still enforces its own limit).
func (r *Request) Canonicalise(maxSeqLen int) error {
	return r.canonicalise(maxSeqLen)
}

// defaultGap mirrors the per-matrix gap defaults of package repro.
func defaultGap(m *scoring.Matrix) scoring.Gap {
	switch m.Name() {
	case "paper-dna":
		return scoring.PaperGap
	case "dna-unit":
		return scoring.Gap{Open: 8, Ext: 2}
	default:
		return scoring.DefaultProteinGap
	}
}

// CacheKey derives the content-addressed cache key of a canonicalised
// request: SHA-256 over the sequence digest plus every parameter that
// can change the report. The backend is deliberately excluded — in
// strict mode all three backends are bit-identical, so they share
// cache entries; speculative runs key separately because their
// acceptance order among equal-scoring alignments may differ.
func CacheKey(r *Request) string {
	seqSum := sha256.Sum256([]byte(r.Sequence))
	h := sha256.New()
	fmt.Fprintf(h, "v1|%x|%s|%d|%d|%d|%d|%d|%d|%t|%t",
		seqSum, r.Matrix, r.GapOpen, r.GapExt, r.Tops,
		r.MinScore, r.MinPairs, r.Lanes, r.Striped, r.Speculative)
	if r.Preset != "" {
		// Prefilter requests key on the resolved knobs (canonicalise
		// filled them from the preset), so an explicit spelling of a
		// preset's defaults shares its cache entry. Requests without a
		// preset keep the original key shape, preserving pre-existing
		// persisted cache entries.
		fmt.Fprintf(h, "|pf|%s|%d|%s|%d|%d|%d",
			r.Preset, r.SeedK, r.SeedMask, r.SeedMaxOcc, r.SeedBand, r.SeedPad)
	}
	return hex.EncodeToString(h.Sum(nil))
}
