package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"sync"
	"testing"

	"repro"
	"repro/internal/obs"
	"repro/internal/seq"
)

// TestCacheDifferential is the cache correctness contract: for every
// seed and backend, the served result — fresh, cached, and
// cross-backend cached — must be bit-identical (tops, scores, pairs,
// families) to a direct engine run of the same input. Strict mode
// makes sequential and parallel backends bit-identical, which is what
// licenses one cache entry to serve both.
func TestCacheDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the engine 4x2 times")
	}
	const (
		seqLen = 180
		tops   = 6
	)
	reg := obs.NewRegistry()
	_, ts := newTestServer(t, Config{Workers: 4, Metrics: reg})

	for _, seedv := range []uint64{1, 2, 3, 4} {
		q := seq.SyntheticTitin(seqLen, seedv)

		// Ground truth: the library API, no serving layer involved.
		want, err := repro.Analyze(q.ID, q.String(), repro.Options{NumTops: tops})
		if err != nil {
			t.Fatal(err)
		}

		for _, backend := range []string{BackendSequential, BackendParallel} {
			t.Run(fmt.Sprintf("seed%d-%s", seedv, backend), func(t *testing.T) {
				req := Request{
					ID: q.ID, Sequence: q.String(),
					Params: Params{Tops: tops}, Backend: backend,
				}
				// Twice: once possibly fresh, once necessarily cached.
				var reports [2]*repro.Report
				var outcomes [2]string
				for i := range reports {
					resp, raw := post(t, ts.URL, req)
					if resp.StatusCode != http.StatusOK {
						t.Fatalf("status %d: %s", resp.StatusCode, raw)
					}
					sr := decode(t, raw)
					rep, err := sr.DecodeReport()
					if err != nil {
						t.Fatalf("report payload: %v", err)
					}
					reports[i], outcomes[i] = rep, sr.Cache
				}
				if outcomes[1] != "hit" {
					t.Errorf("second request outcome = %q, want hit", outcomes[1])
				}
				for i, got := range reports {
					if got.SeqLen != want.SeqLen {
						t.Fatalf("run %d: seqlen %d != %d", i, got.SeqLen, want.SeqLen)
					}
					if !reflect.DeepEqual(got.Tops, want.Tops) {
						t.Errorf("run %d (%s): tops diverge from direct engine run\n got %+v\nwant %+v",
							i, outcomes[i], got.Tops, want.Tops)
					}
					if !reflect.DeepEqual(got.Families, want.Families) {
						t.Errorf("run %d (%s): families diverge", i, outcomes[i])
					}
				}
			})
		}
		// The parallel request after the sequential one must have been
		// a cache hit: the key deliberately ignores the backend.
	}
	snap := reg.Snapshot()
	// 4 seeds, 2 backends, 2 requests each = 16 requests, but only 4
	// engine runs: one miss per seed, everything else hits.
	if snap.Counters["cache/misses"] != 4 {
		t.Errorf("cache misses = %d, want 4 (one per seed)", snap.Counters["cache/misses"])
	}
	if snap.Counters["cache/hits"] != 12 {
		t.Errorf("cache hits = %d, want 12", snap.Counters["cache/hits"])
	}
}

// TestSingleflightSharesOneRun fires identical concurrent requests at
// an empty cache and asserts exactly one engine run happened.
func TestSingleflightSharesOneRun(t *testing.T) {
	reg := obs.NewRegistry()
	_, ts := newTestServer(t, Config{Workers: 8, QueueDepth: 64, Metrics: reg, Journal: obs.NewJournal(0)})

	q := seq.SyntheticTitin(160, 9)
	req := Request{Sequence: q.String(), Params: Params{Tops: 5}}

	const n = 8
	var wg sync.WaitGroup
	reports := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(req)
			resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(body))
			if err != nil {
				return
			}
			defer resp.Body.Close()
			var sr Response
			if json.NewDecoder(resp.Body).Decode(&sr) == nil && len(sr.Report) > 0 {
				reports[i] = string(sr.Report)
			}
		}(i)
	}
	wg.Wait()

	snap := reg.Snapshot()
	if snap.Counters["cache/misses"] != 1 {
		t.Errorf("cache misses = %d, want 1 (singleflight should share the run)",
			snap.Counters["cache/misses"])
	}
	for i := 1; i < n; i++ {
		if reports[i] == "" {
			t.Fatalf("request %d got no report", i)
		}
		if reports[i] != reports[0] {
			t.Errorf("request %d result differs from request 0", i)
		}
	}
}
