package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/attrib"
	"repro/internal/obs/slo"
	"repro/internal/obs/trace"
)

// maxBodyBytes bounds a request body; a 100k-residue sequence plus
// JSON framing fits comfortably.
const maxBodyBytes = 8 << 20

// Handler returns the daemon's HTTP mux:
//
//	POST /v1/analyze   run (or cache-serve) one analysis
//	POST /v1/jobs      durable async analysis (when Config.Jobs set);
//	                   see the route comments below for the job routes
//	GET  /healthz      liveness + drain state
//	GET  /metrics      metrics snapshot, JSON or Prometheus text
//	                   (when Config.Metrics set)
//	GET  /trace?n=200  journal tail (when Config.Journal set)
//	GET  /trace/{id}   one request trace (when Config.Traces set);
//	                   ?format=chrome for Perfetto-loadable JSON
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/analyze", s.handleAnalyze)
	mux.HandleFunc("/healthz", s.handleHealth)
	if s.jobs != nil {
		// Durable async jobs (when Config.Jobs set):
		//	POST /v1/jobs              journal an analysis, 202 {job_id}
		//	GET  /v1/jobs              list all known jobs
		//	GET  /v1/jobs/{id}         status; Done jobs carry the report
		//	GET  /v1/jobs/{id}/events  SSE progress stream
		mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
		mux.HandleFunc("GET /v1/jobs", s.handleJobList)
		mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
		mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	}
	if s.cfg.Metrics != nil {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			// Scrape-time gauges: burn rates are computed on read, and
			// proc/cpu_ns gives reprostat the denominator for CPU
			// reconciliation without a second endpoint.
			s.slo.Publish(s.cfg.Metrics)
			s.cfg.Metrics.Gauge("proc/cpu_ns").Set(attrib.ProcessCPU())
			if s.cfg.Traces != nil {
				// Sync the collector's lifetime drop total into a counter
				// (monotone by construction: the total never decreases).
				c := s.cfg.Metrics.Counter("trace/spans_dropped")
				if d := int64(s.cfg.Traces.DroppedTotal()); d > c.Load() {
					c.Add(d - c.Load())
				}
			}
			obs.HandleMetrics(w, r, s.cfg.Metrics)
		})
	}
	mux.HandleFunc("GET /slo", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, struct {
			Objectives []slo.Status `json:"objectives"`
		}{s.slo.Snapshot()})
	})
	// Continuous-profiler ring (404 when no profiler is configured —
	// the handlers are nil-safe, so the routes always exist).
	mux.HandleFunc("GET /debug/profiles", s.cfg.Profiles.HandleList)
	mux.HandleFunc("GET /debug/profiles/{name}", func(w http.ResponseWriter, r *http.Request) {
		s.cfg.Profiles.HandleGet(w, r, r.PathValue("name"))
	})
	if s.cfg.Traces != nil {
		mux.HandleFunc("/trace/{id}", func(w http.ResponseWriter, r *http.Request) {
			obs.HandleTraceByID(w, r, s.cfg.Traces, r.PathValue("id"))
		})
	}
	if s.jnl != nil {
		mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
			n := 200
			if q := r.URL.Query().Get("n"); q != "" {
				v, err := strconv.Atoi(q)
				if err != nil || v < -1 {
					writeError(w, http.StatusBadRequest, "bad n")
					return
				}
				n = v
			}
			writeJSON(w, http.StatusOK, struct {
				Dropped uint64      `json:"dropped"`
				Events  []obs.Event `json:"events"`
			}{s.jnl.Dropped(), s.jnl.Tail(n)})
		})
	}
	return mux
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	draining := s.draining.Load()
	status := http.StatusOK
	state := "ok"
	if draining {
		// Draining is how load balancers learn to stop routing here. The
		// Retry-After hint matches the one the analyze shed path computes,
		// so pollers and shed clients back off consistently.
		status = http.StatusServiceUnavailable
		state = "draining"
		w.Header().Set("Retry-After", s.retryAfter(true))
	}
	writeJSON(w, status, struct {
		Status string `json:"status"`
		Queue  int    `json:"queue"`
	}{state, len(s.queue)})
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	s.requests.Inc()

	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if err := req.canonicalise(s.cfg.MaxSequenceLen); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	// Tracing: adopt the caller's W3C traceparent when one is present
	// (the request joins the caller's trace, parented under its span),
	// else start a fresh trace. The recorder is nil when tracing is off;
	// every span call below then degrades to a nil check.
	var rec *trace.Recorder
	var parent trace.SpanID
	if s.cfg.Traces != nil {
		var tid trace.TraceID
		if sc, ok := trace.ParseTraceParent(r.Header.Get("traceparent")); ok {
			tid, parent = sc.Trace, sc.Span
		} else {
			tid = trace.NewTraceID()
		}
		rec = s.cfg.Traces.Rec(tid)
		w.Header().Set("X-Trace-Id", tid.String())
	}
	root := rec.Start(parent, "request")
	root.SetArg(int64(len(req.Sequence)))

	start := time.Now()
	j := &job{
		req:      &req,
		ctx:      ctx,
		seq:      s.reqSeq.Add(1),
		enqueued: start,
		done:     make(chan jobResult, 1),
		rec:      rec,
		root:     root.ID(),
		qspan:    rec.Start(root.ID(), "queue.wait"),
	}
	if ok, cause, wait := s.admit(j); !ok {
		j.qspan.End()
		root.End()
		s.recordShed(j.seq, cause)
		switch cause {
		case obs.ShedDraining:
			w.Header().Set("Retry-After", s.retryAfter(true))
			writeError(w, http.StatusServiceUnavailable, "server is draining")
		case obs.ShedRateLimit:
			// The bucket knows exactly when the next token accrues; round
			// up to whole seconds as Retry-After requires.
			secs := int((wait + time.Second - 1) / time.Second)
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			writeError(w, http.StatusTooManyRequests, "rate limit exceeded")
		default:
			w.Header().Set("Retry-After", s.retryAfter(false))
			writeError(w, http.StatusTooManyRequests, "admission queue full")
		}
		return
	}

	select {
	case res := <-j.done:
		// Close the request span before measuring elapsed time, so the
		// trace's root duration and the response's elapsed_ms agree (the
		// CI smoke test reconciles the critical path against elapsed_ms).
		root.End()
		if res.err != nil {
			if errors.Is(res.err, context.DeadlineExceeded) {
				writeError(w, http.StatusGatewayTimeout, "deadline expired in queue")
				return
			}
			writeError(w, http.StatusUnprocessableEntity, res.err.Error())
			return
		}
		setResourceHeaders(w.Header(), res.usage)
		writeAnalyzeResponse(w, req.ID, res.outcome.String(),
			float64(time.Since(start).Microseconds())/1e3, res.report)
	case <-ctx.Done():
		// The job may still be picked up by a worker; its result (if
		// any) lands in the cache for the retry.
		root.End()
		writeError(w, http.StatusGatewayTimeout, "deadline exceeded")
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone mid-body is not actionable
}

// writeAnalyzeResponse assembles a Response by hand: the envelope is
// tiny and the report is already-encoded JSON straight from the cache,
// so the hot path is two small writes and one bulk copy — no
// reflection over tens of thousands of pairs per hit.
func writeAnalyzeResponse(w http.ResponseWriter, id, outcome string, elapsedMS float64, report []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	var env bytes.Buffer
	env.WriteByte('{')
	if id != "" {
		fmt.Fprintf(&env, `"id":%s,`, mustJSONString(id))
	}
	fmt.Fprintf(&env, `"cache":%q,"elapsed_ms":%g,"report":`, outcome, elapsedMS)
	w.Write(env.Bytes())   //nolint:errcheck
	w.Write(report)        //nolint:errcheck
	w.Write([]byte("}\n")) //nolint:errcheck
}

// setResourceHeaders surfaces the request's attribution record as
// X-Resource-* response headers, so clients and the router see cost
// without parsing the report body. Zero-valued dimensions are omitted
// (a cache hit carries no CPU header, only cache bytes).
func setResourceHeaders(h http.Header, u *attrib.Usage) {
	if u == nil {
		return
	}
	set := func(name string, v int64) {
		if v != 0 {
			h.Set(name, strconv.FormatInt(v, 10))
		}
	}
	set("X-Resource-Cpu-Ns", u.CPUNanos)
	set("X-Resource-Cells", u.Cells)
	set("X-Resource-Alloc-Bytes", u.AllocBytes)
	set("X-Resource-Queue-Ns", u.QueueWaitNanos)
	set("X-Resource-Cache-Read-Bytes", u.CacheBytesRead)
	set("X-Resource-Cache-Written-Bytes", u.CacheBytesWritten)
}

// mustJSONString encodes an arbitrary string as a JSON string literal.
func mustJSONString(s string) []byte {
	b, err := json.Marshal(s)
	if err != nil { // cannot happen for a string
		return []byte(`""`)
	}
	return b
}

// retryAfter computes the Retry-After value (whole seconds) for a
// shed request from the observed mean engine latency and the queue's
// drain state, instead of a hardcoded constant. A full queue should
// clear one slot in roughly mean/workers; a draining server needs the
// whole backlog plus the in-flight work to finish before a restart
// can accept traffic. Clamped to [1, 60]: the caller always gets a
// positive hint, and an early cold-start outlier can't tell clients
// to go away for minutes.
func (s *Server) retryAfter(draining bool) string {
	mean := s.engineNS.Snapshot().Mean()
	if mean <= 0 {
		// No engine samples yet (cold daemon): assume a second per job.
		mean = time.Second
	}
	workers := s.cfg.Workers
	if workers < 1 {
		workers = 1
	}
	var wait time.Duration
	if draining {
		wait = time.Duration(len(s.queue)+workers) * mean / time.Duration(workers)
	} else {
		wait = mean / time.Duration(workers)
	}
	secs := int((wait + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return strconv.Itoa(secs)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, ErrorResponse{Error: msg})
}
