package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/seq"
)

func post(t *testing.T, url string, req Request) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body) //nolint:errcheck
	return resp, buf.Bytes()
}

func decode(t *testing.T, raw []byte) Response {
	t.Helper()
	var r Response
	if err := json.Unmarshal(raw, &r); err != nil {
		t.Fatalf("bad response %s: %v", raw, err)
	}
	return r
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx) //nolint:errcheck
	})
	return s, ts
}

func TestAnalyzeMissThenHit(t *testing.T) {
	reg := obs.NewRegistry()
	_, ts := newTestServer(t, Config{Workers: 2, Metrics: reg, Journal: obs.NewJournal(0)})

	req := Request{Sequence: "ATGCATGCATGC", Params: Params{Matrix: "paper-dna", Tops: 3}}
	resp, raw := post(t, ts.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	first := decode(t, raw)
	if first.Cache != "miss" {
		t.Errorf("first request cache = %q, want miss", first.Cache)
	}
	firstRep, err := first.DecodeReport()
	if err != nil {
		t.Fatalf("report payload: %v", err)
	}
	if n := len(firstRep.Tops); n != 3 {
		t.Errorf("tops = %d, want 3", n)
	}

	resp, raw = post(t, ts.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	second := decode(t, raw)
	if second.Cache != "hit" {
		t.Errorf("second request cache = %q, want hit", second.Cache)
	}
	if !bytes.Equal(first.Report, second.Report) {
		t.Error("cached report bytes differ from fresh report bytes")
	}

	snap := reg.Snapshot()
	if snap.Counters["cache/hits"] != 1 || snap.Counters["cache/misses"] != 1 {
		t.Errorf("cache counters = hits %d misses %d, want 1/1",
			snap.Counters["cache/hits"], snap.Counters["cache/misses"])
	}
	if snap.Counters["serve/completed"] != 2 {
		t.Errorf("serve/completed = %d, want 2", snap.Counters["serve/completed"])
	}
	if snap.Histograms["serve/e2e_ns"].Count != 2 {
		t.Errorf("e2e histogram count = %d, want 2", snap.Histograms["serve/e2e_ns"].Count)
	}
}

func TestCacheKeyCanonicalisation(t *testing.T) {
	// Different spellings of the same analysis must share a cache
	// entry: default vs explicit matrix, whitespace, lower case.
	_, ts := newTestServer(t, Config{Workers: 1})
	_, raw := post(t, ts.URL, Request{Sequence: "ATGCATGCATGC", Params: Params{Matrix: "paper-dna", Tops: 3}})
	if got := decode(t, raw).Cache; got != "miss" {
		t.Fatalf("first = %q, want miss", got)
	}
	_, raw = post(t, ts.URL, Request{Sequence: "  atgcatgcatgc\n", Params: Params{Matrix: "paper-dna", Tops: 3, GapOpen: 2, GapExt: 1}})
	if got := decode(t, raw).Cache; got != "hit" {
		t.Errorf("equivalent spelling = %q, want hit (key not canonical)", got)
	}
	// A different parameter must not collide.
	_, raw = post(t, ts.URL, Request{Sequence: "ATGCATGCATGC", Params: Params{Matrix: "paper-dna", Tops: 2}})
	if got := decode(t, raw).Cache; got != "miss" {
		t.Errorf("different tops = %q, want miss", got)
	}
}

func TestBackpressure429(t *testing.T) {
	// No workers started: admitted jobs sit in the queue, so the
	// second request must be shed with 429 + Retry-After.
	reg := obs.NewRegistry()
	s := New(Config{Workers: 1, QueueDepth: 1, Metrics: reg})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	seqStr := strings.Repeat("ATGC", 10)
	first := postAsync(ts.URL, Request{Sequence: seqStr, Params: Params{Matrix: "paper-dna"}, TimeoutMS: 500})
	// Wait for the first request to occupy the queue slot.
	deadline := time.Now().Add(2 * time.Second)
	for reg.Snapshot().Gauges["serve/queue_depth"] == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	resp, raw := post(t, ts.URL, Request{Sequence: seqStr, Params: Params{Matrix: "paper-dna"}})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429: %s", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	// The queued request's deadline expires with no worker to serve
	// it; the handler reports gateway timeout.
	if got := <-first; got != http.StatusGatewayTimeout {
		t.Errorf("queued request status = %d, want 504", got)
	}
	snap := reg.Snapshot()
	if snap.Counters["serve/shed_queue_full"] != 1 {
		t.Errorf("shed_queue_full = %d, want 1", snap.Counters["serve/shed_queue_full"])
	}
}

func TestDeadlineExpiredInQueue(t *testing.T) {
	// A worker that picks up an already-expired job must drop it
	// without running the engine.
	reg := obs.NewRegistry()
	s := New(Config{Workers: 1, QueueDepth: 4, Metrics: reg})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := postAsync(ts.URL, Request{Sequence: "ATGCATGCATGC", Params: Params{Matrix: "paper-dna"}, TimeoutMS: 50})
	// Start workers only after the deadline has passed.
	time.Sleep(80 * time.Millisecond)
	s.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Drain(ctx) //nolint:errcheck
	}()
	if got := <-resp; got != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", got)
	}
	waitFor(t, func() bool { return reg.Snapshot().Counters["serve/shed_deadline"] == 1 },
		"shed_deadline counter")
	if cells := reg.Snapshot().Counters["serve/engine_cells"]; cells != 0 {
		t.Errorf("engine ran %d cells for an expired job", cells)
	}
}

// postAsync fires a request from a goroutine and delivers its status
// code (0 on transport error). It avoids t.Fatal off the test
// goroutine.
func postAsync(url string, req Request) <-chan int {
	ch := make(chan int, 1)
	go func() {
		body, err := json.Marshal(req)
		if err != nil {
			ch <- 0
			return
		}
		resp, err := http.Post(url+"/v1/analyze", "application/json", bytes.NewReader(body))
		if err != nil {
			ch <- 0
			return
		}
		resp.Body.Close()
		ch <- resp.StatusCode
	}()
	return ch
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestGracefulDrain(t *testing.T) {
	reg := obs.NewRegistry()
	s, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8, Metrics: reg})

	// Launch a batch of slow-ish requests, then drain mid-flight:
	// every admitted request must complete, new ones must be shed.
	q := seq.SyntheticTitin(150, 7)
	var wg sync.WaitGroup
	codes := make([]int, 4)
	for i := range codes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i] = <-postAsync(ts.URL, Request{Sequence: q.String(), Params: Params{Tops: 4 + i}})
		}(i)
	}
	waitFor(t, func() bool { return reg.Snapshot().Counters["serve/admitted"] > 0 }, "first admission")

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	wg.Wait()
	var served int
	for _, code := range codes {
		switch code {
		case http.StatusOK:
			served++
		case http.StatusServiceUnavailable: // admitted after drain began
		default:
			t.Errorf("unexpected status %d", code)
		}
	}
	if served == 0 {
		t.Error("no request completed across the drain")
	}

	// After the drain: health reports draining, analyze sheds 503.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz after drain = %d, want 503", hresp.StatusCode)
	}
	if hresp.Header.Get("Retry-After") == "" {
		t.Error("draining healthz without Retry-After")
	}
	resp, _ := post(t, ts.URL, Request{Sequence: "ATGCATGCATGC", Params: Params{Matrix: "paper-dna"}})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("analyze after drain = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("draining shed without Retry-After")
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxSequenceLen: 64})
	cases := []struct {
		name string
		req  Request
		want int
	}{
		{"empty sequence", Request{}, http.StatusBadRequest},
		{"bad matrix", Request{Sequence: "ATGC", Params: Params{Matrix: "nope"}}, http.StatusBadRequest},
		{"bad backend", Request{Sequence: "ATGC", Backend: "gpu"}, http.StatusBadRequest},
		{"bad lanes", Request{Sequence: "ATGC", Params: Params{Lanes: 3}}, http.StatusBadRequest},
		{"oversized", Request{Sequence: strings.Repeat("A", 65)}, http.StatusBadRequest},
		{"bad residues", Request{Sequence: "ATGC123", Params: Params{Matrix: "paper-dna"}}, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		resp, raw := post(t, ts.URL, tc.req)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.want, raw)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/analyze")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET = %d, want 405", resp.StatusCode)
	}
}

func TestMetricsAndTraceEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	_, ts := newTestServer(t, Config{Workers: 1, Metrics: reg, Journal: obs.NewJournal(0)})
	post(t, ts.URL, Request{Sequence: "ATGCATGCATGC", Params: Params{Matrix: "paper-dna", Tops: 2}})

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	err = json.NewDecoder(resp.Body).Decode(&snap)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Counters["serve/admitted"] != 1 {
		t.Errorf("serve/admitted = %d, want 1", snap.Counters["serve/admitted"])
	}

	resp, err = http.Get(ts.URL + "/trace?n=50")
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		Events []obs.Event `json:"events"`
	}
	err = json.NewDecoder(resp.Body).Decode(&trace)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var kinds []string
	for _, ev := range trace.Events {
		kinds = append(kinds, ev.Kind.String())
	}
	joined := fmt.Sprint(kinds)
	for _, want := range []string{"admit", "serve"} {
		if !strings.Contains(joined, want) {
			t.Errorf("trace missing %q event: %v", want, kinds)
		}
	}
}
