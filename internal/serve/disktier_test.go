package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/obs"
)

// TestDiskTierSurvivesRestart exercises the serving layer's persistent
// cache tier: results computed by one incarnation are served from disk
// by the next, with the "disk" outcome surfaced when the entry is not
// already prewarmed into memory.
func TestDiskTierSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	reqA := Request{Sequence: "ATGCATGCATGCATGC", Params: Params{Matrix: "paper-dna", Tops: 2}}
	reqB := Request{Sequence: "TTTTAAAATTTTAAAA", Params: Params{Matrix: "paper-dna", Tops: 2}}

	run := func(disk *cache.Disk) (*Server, *httptest.Server, func()) {
		s := New(Config{Workers: 1, CacheEntries: 1, Disk: disk, Metrics: obs.NewRegistry()})
		s.Start()
		ts := httptest.NewServer(s.Handler())
		stop := func() {
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			s.Drain(ctx) //nolint:errcheck
		}
		return s, ts, stop
	}

	disk1, err := cache.OpenDisk(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	s1, ts1, stop1 := run(disk1)
	if s1.Cache() == nil || s1.Cache().Disk() != disk1 {
		t.Fatal("disk tier not attached")
	}
	var reports [2]json.RawMessage
	for i, req := range []Request{reqA, reqB} {
		resp, raw := post(t, ts1.URL, req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("analyze %d: status %d: %s", i, resp.StatusCode, raw)
		}
		reports[i] = decode(t, raw).Report
	}
	stop1()
	if disk1.Len() != 2 {
		t.Fatalf("disk entries = %d, want 2", disk1.Len())
	}

	// Second incarnation, fresh memory: capacity 1, so prewarm loads
	// only one of the two persisted results; the other must come back
	// via the disk-hit path — and both must be byte-identical to the
	// first incarnation's responses.
	disk2, err := cache.OpenDisk(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, ts2, stop2 := run(disk2)
	defer stop2()
	outcomes := map[string]int{}
	for i, req := range []Request{reqA, reqB} {
		resp, raw := post(t, ts2.URL, req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("warm analyze %d: status %d: %s", i, resp.StatusCode, raw)
		}
		got := decode(t, raw)
		outcomes[got.Cache]++
		if string(got.Report) != string(reports[i]) {
			t.Errorf("restarted response %d differs from original", i)
		}
	}
	if outcomes["miss"] != 0 {
		t.Errorf("outcomes = %v: nothing should recompute with a warm disk tier", outcomes)
	}
	if outcomes["disk"] == 0 {
		t.Errorf("outcomes = %v: want at least one disk hit", outcomes)
	}
}
