package serve

import (
	"sync"
	"time"
)

// tokenBucket is a classic token-bucket admission limiter: tokens
// accrue at rate per second up to burst, and each admitted request
// spends one. It models a shard's configured capacity independently of
// the queue bound — the queue protects memory, the bucket protects the
// engine from sustained overload and gives a multi-shard deployment a
// well-defined per-node throughput to balance against.
//
// The clock is injected (now parameters) so tests are deterministic.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

// newTokenBucket returns a bucket admitting rate requests per second
// with the given burst (burst < 1 is raised to 1 so a fresh bucket
// admits at least one request). A nil bucket admits everything.
func newTokenBucket(rate float64, burst int, now time.Time) *tokenBucket {
	b := float64(burst)
	if b < 1 {
		b = 1
	}
	return &tokenBucket{rate: rate, burst: b, tokens: b, last: now}
}

// allow spends one token if available. On refusal it also reports how
// long until the next token accrues, for the Retry-After hint.
func (tb *tokenBucket) allow(now time.Time) (ok bool, wait time.Duration) {
	if tb == nil {
		return true, 0
	}
	tb.mu.Lock()
	defer tb.mu.Unlock()
	if dt := now.Sub(tb.last).Seconds(); dt > 0 {
		tb.tokens += dt * tb.rate
		if tb.tokens > tb.burst {
			tb.tokens = tb.burst
		}
	}
	// Monotonic-clock now never runs backwards; equal timestamps (coarse
	// clocks) simply refill nothing.
	tb.last = now
	if tb.tokens >= 1 {
		tb.tokens--
		return true, 0
	}
	deficit := 1 - tb.tokens
	return false, time.Duration(deficit / tb.rate * float64(time.Second))
}
