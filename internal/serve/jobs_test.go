package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/jobstore"
	"repro/internal/obs"
	"repro/internal/obs/trace"
)

func openStore(t *testing.T, dir string) *jobstore.Store {
	t.Helper()
	st, err := jobstore.Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func postJob(t *testing.T, url string, req Request) (*http.Response, JobStatus) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body) //nolint:errcheck
	if resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(buf.Bytes(), &st); err != nil {
			t.Fatalf("bad job response %s: %v", buf.Bytes(), err)
		}
	}
	return resp, st
}

func getJob(t *testing.T, url, id string) JobStatus {
	t.Helper()
	resp, err := http.Get(url + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitJob polls until the job reaches a terminal state.
func waitJob(t *testing.T, url, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		st := getJob(t, url, id)
		if st.State == string(jobstore.Done) || st.State == string(jobstore.Failed) {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return JobStatus{}
}

func TestJobSubmitPollDoneMatchesSync(t *testing.T) {
	store := openStore(t, t.TempDir())
	_, ts := newTestServer(t, Config{
		Workers: 2, Metrics: obs.NewRegistry(), Jobs: store,
		Traces: trace.NewCollector(16, 256),
	})

	req := Request{Sequence: "ATGCATGCATGCATGCTTTT", Params: Params{Matrix: "paper-dna", Tops: 3}}
	resp, st := postJob(t, ts.URL, req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	if st.JobID == "" || st.State != string(jobstore.Pending) {
		t.Fatalf("submit response = %+v", st)
	}
	if st.TraceID == "" {
		t.Error("submit response missing trace id")
	}

	done := waitJob(t, ts.URL, st.JobID)
	if done.State != string(jobstore.Done) {
		t.Fatalf("job state = %s (%s)", done.State, done.Error)
	}
	if len(done.Report) == 0 || done.Cache != "hit" {
		t.Fatalf("done job report missing: cache=%q len=%d", done.Cache, len(done.Report))
	}

	// The async result must be identical to a synchronous analyze of
	// the same request: same canonical key, same cached entry. Compare
	// compacted (writeJSON re-indents the embedded report).
	_, raw := post(t, ts.URL, req)
	sync := decode(t, raw)
	var a, b bytes.Buffer
	if err := json.Compact(&a, sync.Report); err != nil {
		t.Fatal(err)
	}
	if err := json.Compact(&b, done.Report); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("async job report differs from sync analyze report")
	}
	if sync.Cache != "hit" {
		t.Errorf("sync analyze after job = %q, want hit via shared cache", sync.Cache)
	}

	// The listing must include the job.
	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list struct {
		Jobs []JobStatus `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].JobID != st.JobID {
		t.Errorf("job list = %+v", list.Jobs)
	}
}

func TestJobDedupWhileActive(t *testing.T) {
	store := openStore(t, t.TempDir())
	gate := make(chan struct{})
	s := New(Config{Workers: 1, JobWorkers: 1, Metrics: obs.NewRegistry(), Jobs: store})
	s.failBackend = func(string) error { <-gate; return nil }
	s.Start()
	ts := newHTTPServer(t, s)

	req := Request{Sequence: "ATGCATGCATGC", Params: Params{Matrix: "paper-dna", Tops: 2}}
	_, first := postJob(t, ts, req)
	_, second := postJob(t, ts, req)
	if !second.Deduped {
		t.Fatalf("second submission not deduped: %+v", second)
	}
	if second.JobID != first.JobID {
		t.Errorf("deduped job id = %s, want %s", second.JobID, first.JobID)
	}
	close(gate)
	if st := waitJob(t, ts, first.JobID); st.State != string(jobstore.Done) {
		t.Fatalf("job state = %s (%s)", st.State, st.Error)
	}
	// The job is terminal now, so an identical submission is a fresh
	// job — which completes instantly off the shared cache.
	_, third := postJob(t, ts, req)
	if third.Deduped {
		t.Error("terminal job should not absorb new submissions")
	}
}

func TestJobRetryChainDegrades(t *testing.T) {
	store := openStore(t, t.TempDir())
	col := trace.NewCollector(16, 256)
	s := New(Config{
		Workers: 1, JobWorkers: 1, Metrics: obs.NewRegistry(), Jobs: store,
		Traces: col, JobRetryBase: time.Millisecond,
	})
	s.failBackend = func(backend string) error {
		if backend != BackendSequential {
			return errors.New(backend + " backend down")
		}
		return nil
	}
	s.Start()
	ts := newHTTPServer(t, s)

	req := Request{Sequence: "ATGCATGCATGC", Params: Params{Matrix: "paper-dna", Tops: 2}, Backend: BackendCluster}
	_, st := postJob(t, ts, req)
	done := waitJob(t, ts, st.JobID)
	if done.State != string(jobstore.Done) {
		t.Fatalf("job state = %s (%s)", done.State, done.Error)
	}
	if done.Backend != BackendSequential {
		t.Errorf("final backend = %q, want sequential after degradation", done.Backend)
	}
	if done.Attempts != 3 {
		t.Errorf("attempts = %d, want 3 (cluster, parallel, sequential)", done.Attempts)
	}
	if got := s.jobsRetries.Load(); got != 2 {
		t.Errorf("jobs_retries = %d, want 2", got)
	}

	// Every attempt and backoff must be visible in the job's trace.
	tid, _ := trace.ParseTraceID(done.TraceID)
	spans, _, ok := col.Get(tid)
	if !ok {
		t.Fatal("job trace missing")
	}
	names := map[string]int{}
	for _, sp := range spans {
		names[sp.Name]++
	}
	for _, want := range []string{"job", "job.attempt.cluster", "job.attempt.parallel", "job.attempt.sequential", "job.backoff"} {
		if names[want] == 0 {
			t.Errorf("trace missing span %q (have %v)", want, names)
		}
	}
}

func TestJobAllBackendsFail(t *testing.T) {
	store := openStore(t, t.TempDir())
	s := New(Config{
		Workers: 1, JobWorkers: 1, Metrics: obs.NewRegistry(), Jobs: store,
		JobRetryBase: time.Millisecond,
	})
	s.failBackend = func(backend string) error { return errors.New("injected: " + backend) }
	s.Start()
	ts := newHTTPServer(t, s)

	_, st := postJob(t, ts, Request{Sequence: "ATGCATGC", Params: Params{Matrix: "paper-dna", Tops: 1}, Backend: BackendParallel})
	done := waitJob(t, ts, st.JobID)
	if done.State != string(jobstore.Failed) {
		t.Fatalf("job state = %s, want failed", done.State)
	}
	if !strings.Contains(done.Error, "parallel->sequential") || !strings.Contains(done.Error, "injected") {
		t.Errorf("error = %q, want chain + cause", done.Error)
	}
}

func TestJobEventsSSE(t *testing.T) {
	store := openStore(t, t.TempDir())
	_, ts := newTestServer(t, Config{
		Workers: 1, Metrics: obs.NewRegistry(), Jobs: store,
		Traces: trace.NewCollector(16, 256),
	})

	_, st := postJob(t, ts.URL, Request{Sequence: "ATGCATGCATGCATGC", Params: Params{Matrix: "paper-dna", Tops: 2}})
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.JobID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}

	events := map[string]int{}
	sc := bufio.NewScanner(resp.Body)
	var lastEvent string
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "event: ") {
			lastEvent = strings.TrimPrefix(line, "event: ")
			events[lastEvent]++
		}
		if lastEvent == "done" && line == "" {
			break
		}
	}
	if events["status"] == 0 {
		t.Error("no status events streamed")
	}
	if events["span"] == 0 {
		t.Error("no span events streamed")
	}
	if events["done"] != 1 {
		t.Errorf("done events = %d, want 1", events["done"])
	}

	// Unknown job: 404, not a stream.
	resp2, err := http.Get(ts.URL + "/v1/jobs/nope/events")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job events status = %d", resp2.StatusCode)
	}
}

func TestJobRecoveryAfterRestart(t *testing.T) {
	dir := t.TempDir()
	req := Request{Sequence: "ATGCATGCATGCATGC", Params: Params{Matrix: "paper-dna", Tops: 2}}
	if err := req.canonicalise(0); err != nil {
		t.Fatal(err)
	}
	raw, _ := json.Marshal(&req)

	// "Crashed" incarnation: one job journaled as Running (claimed but
	// never finished), one still Pending. No Close — the reopen below
	// sees exactly what a SIGKILL would leave.
	st1 := openStore(t, dir)
	for i := 0; i < 2; i++ {
		if err := st1.Submit(jobstore.Job{ID: fmt.Sprintf("job-%d", i), Key: CacheKey(&req), Request: raw}); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := st1.Claim(); !ok {
		t.Fatal("claim failed")
	}

	st2 := openStore(t, dir)
	reg := obs.NewRegistry()
	_, ts := newTestServer(t, Config{Workers: 1, Metrics: reg, Jobs: st2})

	// Both jobs share one cache key, so recovery runs the engine once
	// and both finish.
	for _, id := range []string{"job-0", "job-1"} {
		if got := waitJob(t, ts.URL, id); got.State != string(jobstore.Done) {
			t.Fatalf("job %s state = %s (%s)", id, got.State, got.Error)
		}
	}
	if got := reg.Counter("serve/jobs_recovered").Load(); got != 1 {
		t.Errorf("jobs_recovered = %d, want 1 (the Running job)", got)
	}
}

func TestJobResultLossRequeues(t *testing.T) {
	store := openStore(t, t.TempDir())
	// Capacity-1 memory cache, no disk tier: completing a second
	// analysis evicts the job's result entirely.
	_, ts := newTestServer(t, Config{
		Workers: 1, CacheEntries: 1, Metrics: obs.NewRegistry(), Jobs: store,
	})

	req := Request{Sequence: "ATGCATGCATGCATGC", Params: Params{Matrix: "paper-dna", Tops: 2}}
	_, st := postJob(t, ts.URL, req)
	if got := waitJob(t, ts.URL, st.JobID); got.State != string(jobstore.Done) {
		t.Fatalf("job state = %s", got.State)
	}

	// Evict the result, then ask for it: the job must go back to
	// pending and recompute rather than serve nothing.
	post(t, ts.URL, Request{Sequence: "TTTTAAAATTTTAAAA", Params: Params{Matrix: "paper-dna", Tops: 2}})
	got := getJob(t, ts.URL, st.JobID)
	if got.State != string(jobstore.Pending) && got.State != string(jobstore.Running) && got.State != string(jobstore.Done) {
		t.Fatalf("job state after result loss = %s", got.State)
	}
	if got.State == string(jobstore.Pending) && !strings.Contains(got.Note, "recomputing") {
		t.Errorf("requeue note = %q", got.Note)
	}
	final := waitJob(t, ts.URL, st.JobID)
	if final.State != string(jobstore.Done) || len(final.Report) == 0 {
		t.Fatalf("recomputed job = %+v", final)
	}
}

func TestJobSubmitWhileDraining(t *testing.T) {
	store := openStore(t, t.TempDir())
	s, ts := newTestServer(t, Config{Workers: 1, Metrics: obs.NewRegistry(), Jobs: store})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	drained := make(chan error, 1)
	go func() { drained <- s.Drain(ctx) }()
	for !s.draining.Load() {
		time.Sleep(time.Millisecond)
	}
	resp, _ := postJob(t, ts.URL, Request{Sequence: "ATGC", Params: Params{Matrix: "paper-dna", Tops: 1}})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("draining 503 missing Retry-After")
	}
	if err := <-drained; err != nil {
		t.Fatal(err)
	}
}

// newHTTPServer wraps an already-started Server (needed when a test
// must install the failBackend hook between New and Start).
func newHTTPServer(t *testing.T, s *Server) string {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx) //nolint:errcheck
	})
	return ts.URL
}
