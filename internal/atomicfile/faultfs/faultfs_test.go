package faultfs

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"repro/internal/atomicfile"
)

func TestTransparentWhenZero(t *testing.T) {
	dir := t.TempDir()
	fsys := Wrap(atomicfile.OS(), Config{})
	path := filepath.Join(dir, "a")
	if err := fsys.WriteFile(path, []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := fsys.ReadFile(path)
	if err != nil || string(got) != "hello" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	af, err := fsys.OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := af.Write([]byte(" world")); err != nil {
		t.Fatal(err)
	}
	if err := af.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := af.Close(); err != nil {
		t.Fatal(err)
	}
	got, _ = fsys.ReadFile(path)
	if string(got) != "hello world" {
		t.Fatalf("after append: %q", got)
	}
	if s := fsys.Stats(); s != (Stats{}) {
		t.Fatalf("zero config injected faults: %+v", s)
	}
}

func TestTornWriteLeavesStrictPrefix(t *testing.T) {
	dir := t.TempDir()
	fsys := Wrap(atomicfile.OS(), Config{Seed: 7, TornWriteProb: 1})
	path := filepath.Join(dir, "wal")
	af, err := fsys.OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	record := bytes.Repeat([]byte{0xAB}, 100)
	n, err := af.Write(record)
	if err == nil {
		t.Fatal("torn write reported success")
	}
	if n >= len(record) {
		t.Fatalf("torn write persisted %d of %d bytes, want a strict prefix", n, len(record))
	}
	af.Close()
	onDisk, _ := os.ReadFile(path)
	if len(onDisk) != n || !bytes.Equal(onDisk, record[:n]) {
		t.Fatalf("on disk %d bytes, reported %d", len(onDisk), n)
	}
	if fsys.Stats().TornWrites != 1 {
		t.Fatalf("stats: %+v", fsys.Stats())
	}
}

func TestBitFlipCorruptsExactlyOneBit(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	orig := bytes.Repeat([]byte{0x55}, 64)
	if err := os.WriteFile(path, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	fsys := Wrap(atomicfile.OS(), Config{Seed: 3, BitFlipProb: 1})
	got, err := fsys.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range got {
		for b := 0; b < 8; b++ {
			if (got[i]^orig[i])&(1<<b) != 0 {
				diff++
			}
		}
	}
	if diff != 1 {
		t.Fatalf("flipped %d bits, want exactly 1", diff)
	}
	// The file itself is untouched: corruption is injected on read.
	onDisk, _ := os.ReadFile(path)
	if !bytes.Equal(onDisk, orig) {
		t.Fatal("bit flip mutated the underlying file")
	}
}

func TestWriteBudgetENOSPC(t *testing.T) {
	dir := t.TempDir()
	fsys := Wrap(atomicfile.OS(), Config{WriteBudget: 10})
	// First write fits.
	if err := fsys.WriteFile(filepath.Join(dir, "a"), []byte("12345"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Second exceeds the budget: ENOSPC, and the atomic contract means
	// the destination does not exist afterwards.
	err := fsys.WriteFile(filepath.Join(dir, "b"), []byte("1234567890"), 0o644)
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("err = %v, want ENOSPC", err)
	}
	if _, serr := os.Stat(filepath.Join(dir, "b")); !os.IsNotExist(serr) {
		t.Fatal("failed atomic write left a destination file")
	}
	if s := fsys.Stats(); s.NoSpace != 1 {
		t.Fatalf("stats: %+v", s)
	}

	// Appends hit the same budget: the bytes that still fit reach the
	// disk (a partial record — exactly what a full disk does to a WAL).
	fsys = Wrap(atomicfile.OS(), Config{WriteBudget: 10})
	af, err := fsys.OpenAppend(filepath.Join(dir, "wal"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := af.Write([]byte("12345678")); err != nil {
		t.Fatal(err)
	}
	n, werr := af.Write([]byte("abcdefgh"))
	if !errors.Is(werr, syscall.ENOSPC) {
		t.Fatalf("append err = %v, want ENOSPC", werr)
	}
	if n != 2 { // 10-byte budget minus the 8 already appended
		t.Fatalf("append persisted %d bytes, want 2", n)
	}
	af.Close()
	onDisk, _ := os.ReadFile(filepath.Join(dir, "wal"))
	if string(onDisk) != "12345678ab" {
		t.Fatalf("wal contents %q", onDisk)
	}
}

func TestSeedDeterminism(t *testing.T) {
	run := func() (torn []int) {
		dir := t.TempDir()
		fsys := Wrap(atomicfile.OS(), Config{Seed: 42, TornWriteProb: 0.5})
		af, _ := fsys.OpenAppend(filepath.Join(dir, "wal"))
		defer af.Close()
		for i := 0; i < 20; i++ {
			n, err := af.Write(bytes.Repeat([]byte{byte(i)}, 32))
			if err != nil {
				torn = append(torn, n)
			}
		}
		return torn
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no torn writes at prob 0.5 over 20 records")
	}
	if len(a) != len(b) {
		t.Fatalf("runs diverged: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at %d: %v vs %v", i, a, b)
		}
	}
}

func TestPassthroughOps(t *testing.T) {
	dir := t.TempDir()
	fs := Wrap(atomicfile.OS(), Config{})
	p := filepath.Join(dir, "f")
	if err := fs.WriteFile(p, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	ents, err := fs.ReadDir(dir)
	if err != nil || len(ents) != 1 || ents[0].Name() != "f" {
		t.Fatalf("ReadDir = %v, %v", ents, err)
	}
	if err := fs.Remove(p); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(p); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("file survived Remove: %v", err)
	}
	if _, err := fs.ReadFile(p); err == nil {
		t.Fatal("read of removed file succeeded")
	}
}
