// Package faultfs wraps an atomicfile.FS with seeded, deterministic
// disk-fault injection — torn writes, read-side bit flips, and a
// finite ENOSPC byte budget — so the durable subsystems (jobstore WAL,
// disk cache tier) can be tested against the failure modes they claim
// to survive, without real disk errors. It is the filesystem analogue
// of internal/mpi/faultcomm.
//
// The wrapper is transparent when Config is zero. Determinism: every
// probabilistic decision draws from one PCG stream seeded by
// Config.Seed, in call order, so a single-threaded test makes
// identical decisions across runs.
package faultfs

import (
	"math/rand/v2"
	"os"
	"sync"
	"syscall"

	"repro/internal/atomicfile"
)

// ErrNoSpace is the injected disk-full error; errors.Is(err,
// syscall.ENOSPC) holds, matching what callers would see from a real
// full disk.
var ErrNoSpace = &os.PathError{Op: "write", Path: "(faultfs)", Err: syscall.ENOSPC}

// Config selects the faults to inject. The zero value injects nothing.
type Config struct {
	// Seed initialises the decision stream.
	Seed uint64
	// TornWriteProb makes an append-file Write persist only a random
	// strict prefix of the buffer before reporting an I/O error — the
	// crash-mid-append fault that leaves a torn tail record in a WAL.
	TornWriteProb float64
	// BitFlipProb makes ReadFile flip one random bit of the returned
	// data — at-rest corruption, what checksummed readers must catch.
	BitFlipProb float64
	// WriteBudget is the total number of bytes (across WriteFile and
	// appends) that may be written before every further write fails
	// with ErrNoSpace. 0 = unlimited. Partial writes consume what
	// remains of the budget first, like a really full disk.
	WriteBudget int64
}

// Stats counts the faults actually injected.
type Stats struct {
	TornWrites int64
	BitFlips   int64
	NoSpace    int64
}

// FS is a fault-injecting atomicfile.FS.
type FS struct {
	inner atomicfile.FS
	cfg   Config

	mu      sync.Mutex
	rng     *rand.Rand
	written int64
	stats   Stats
}

// Wrap decorates inner with the configured faults.
func Wrap(inner atomicfile.FS, cfg Config) *FS {
	return &FS{inner: inner, cfg: cfg, rng: rand.New(rand.NewPCG(cfg.Seed, 0xd15cfa17))}
}

// Stats returns the counts of injected faults so far.
func (f *FS) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// charge consumes n bytes of the write budget, returning how many may
// actually be written and whether the budget ran out.
func (f *FS) charge(n int) (allowed int, full bool) {
	if f.cfg.WriteBudget <= 0 {
		return n, false
	}
	left := f.cfg.WriteBudget - f.written
	if left >= int64(n) {
		f.written += int64(n)
		return n, false
	}
	if left < 0 {
		left = 0
	}
	f.written += left
	f.stats.NoSpace++
	return int(left), true
}

func (f *FS) WriteFile(path string, data []byte, perm os.FileMode) error {
	f.mu.Lock()
	_, full := f.charge(len(data))
	f.mu.Unlock()
	if full {
		// The temp-file write fails before the rename: the destination
		// keeps its previous contents, as the atomic contract requires.
		return ErrNoSpace
	}
	return f.inner.WriteFile(path, data, perm)
}

func (f *FS) ReadFile(path string) ([]byte, error) {
	data, err := f.inner.ReadFile(path)
	if err != nil || len(data) == 0 {
		return data, err
	}
	f.mu.Lock()
	flip := f.rng.Float64() < f.cfg.BitFlipProb
	var pos int
	var bit byte
	if flip {
		pos = f.rng.IntN(len(data))
		bit = 1 << f.rng.IntN(8)
		f.stats.BitFlips++
	}
	f.mu.Unlock()
	if flip {
		data[pos] ^= bit
	}
	return data, err
}

func (f *FS) OpenAppend(path string) (atomicfile.AppendFile, error) {
	af, err := f.inner.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return &appendFile{f: f, inner: af}, nil
}

func (f *FS) Rename(oldpath, newpath string) error { return f.inner.Rename(oldpath, newpath) }
func (f *FS) Remove(path string) error             { return f.inner.Remove(path) }
func (f *FS) Truncate(path string, size int64) error {
	return f.inner.Truncate(path, size)
}
func (f *FS) MkdirAll(path string, perm os.FileMode) error { return f.inner.MkdirAll(path, perm) }
func (f *FS) ReadDir(path string) ([]os.DirEntry, error)   { return f.inner.ReadDir(path) }
func (f *FS) Stat(path string) (os.FileInfo, error)        { return f.inner.Stat(path) }

// appendFile injects torn writes and the ENOSPC budget on the append
// path — the one place a partial record can reach disk.
type appendFile struct {
	f     *FS
	inner atomicfile.AppendFile
}

func (a *appendFile) Write(p []byte) (int, error) {
	a.f.mu.Lock()
	n := len(p)
	torn := n > 0 && a.f.rng.Float64() < a.f.cfg.TornWriteProb
	if torn {
		n = a.f.rng.IntN(n) // strict prefix, possibly empty
		a.f.stats.TornWrites++
	}
	allowed, full := a.f.charge(n)
	a.f.mu.Unlock()

	wrote, err := a.inner.Write(p[:allowed])
	if err != nil {
		return wrote, err
	}
	if full {
		return wrote, ErrNoSpace
	}
	if torn {
		return wrote, &os.PathError{Op: "write", Path: "(faultfs)", Err: syscall.EIO}
	}
	return wrote, nil
}

func (a *appendFile) Sync() error  { return a.inner.Sync() }
func (a *appendFile) Close() error { return a.inner.Close() }
