package atomicfile

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileCreatesAndReplaces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	if err := WriteFile(path, []byte("first"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "first" {
		t.Fatalf("contents = %q", got)
	}
	if err := WriteFile(path, []byte("second"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "second" {
		t.Fatalf("contents after replace = %q", got)
	}
}

func TestWriteFileLeavesNoTempDroppings(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
	if len(entries) != 1 {
		t.Fatalf("dir has %d entries, want 1", len(entries))
	}
}

func TestWriteFileErrorPreservesOriginal(t *testing.T) {
	// Writing into a missing directory must fail without touching
	// anything else.
	err := WriteFile(filepath.Join(t.TempDir(), "no/such/dir/out.json"), []byte("x"), 0o644)
	if err == nil {
		t.Fatal("expected error for missing directory")
	}
}
