// Package atomicfile writes files atomically: data lands in a
// temporary file in the destination directory and is renamed into
// place, so readers never observe a truncated or half-written file and
// an interrupted writer can never corrupt an existing one. The
// benchmark trajectory files (BENCH_PR*.json) and metrics snapshots are
// written this way.
package atomicfile

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFile writes data to path atomically with the given permissions.
// The temporary file is created in path's directory so the final
// rename cannot cross filesystems. On any error the temporary file is
// removed and the previous contents of path (if any) are untouched.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return fmt.Errorf("atomicfile: %w", err)
	}
	tmpName := tmp.Name()
	defer func() {
		if tmpName != "" {
			os.Remove(tmpName)
		}
	}()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("atomicfile: write %s: %w", path, err)
	}
	if err := tmp.Chmod(perm); err != nil {
		tmp.Close()
		return fmt.Errorf("atomicfile: chmod %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("atomicfile: close %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("atomicfile: %w", err)
	}
	tmpName = "" // renamed away; nothing to clean up
	return nil
}
