package atomicfile

import (
	"io"
	"os"
)

// FS is the filesystem surface the durable subsystems (the jobstore
// write-ahead log, the disk cache tier) are written against. Production
// code uses OS(); crash and disk-chaos tests inject
// atomicfile/faultfs.FS, which decorates an inner FS with seeded torn
// writes, bit flips, and ENOSPC — the same wrap-the-transport pattern
// as internal/mpi/faultcomm.
type FS interface {
	// WriteFile writes data to path atomically (temp file + rename):
	// readers never observe a partial file, and on error the previous
	// contents are untouched.
	WriteFile(path string, data []byte, perm os.FileMode) error
	// ReadFile returns the contents of path.
	ReadFile(path string) ([]byte, error)
	// OpenAppend opens path for appending, creating it if absent.
	// Appends are NOT atomic — a crash can leave a torn tail record,
	// which is why every append-log record carries its own checksum.
	OpenAppend(path string) (AppendFile, error)
	// Rename moves a file (same-directory renames are atomic).
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(path string) error
	// Truncate resizes path (log compaction truncates the WAL to 0).
	Truncate(path string, size int64) error
	// MkdirAll creates a directory tree.
	MkdirAll(path string, perm os.FileMode) error
	// ReadDir lists a directory.
	ReadDir(path string) ([]os.DirEntry, error)
	// Stat describes a file.
	Stat(path string) (os.FileInfo, error)
}

// AppendFile is an open append-only file. Sync flushes to stable
// storage; a record is only considered durable after Sync returns.
type AppendFile interface {
	io.Writer
	Sync() error
	Close() error
}

// OS returns the real-filesystem FS.
func OS() FS { return osFS{} }

type osFS struct{}

func (osFS) WriteFile(path string, data []byte, perm os.FileMode) error {
	return WriteFile(path, data, perm)
}

func (osFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (osFS) OpenAppend(path string) (AppendFile, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(path string) error             { return os.Remove(path) }
func (osFS) Truncate(path string, size int64) error {
	return os.Truncate(path, size)
}
func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) ReadDir(path string) ([]os.DirEntry, error)   { return os.ReadDir(path) }
func (osFS) Stat(path string) (os.FileInfo, error)        { return os.Stat(path) }
