package multialign

import (
	"fmt"
	"testing"

	"repro/internal/seq"
)

// benchGroupCells is the lane-cell count the group kernels compute for a
// group starting at r0: lane k covers rows 1..r0+k over n columns.
func benchGroupCells(m, r0, lanes int) int64 {
	var cells int64
	for k := 0; k < lanes; k++ {
		r := r0 + k
		if r > m-1 {
			break
		}
		cells += int64(r) * int64(m-r)
	}
	return cells
}

func BenchmarkScoreGroupILP(b *testing.B) {
	for _, n := range []int{1200, 4096} {
		s := seq.SyntheticTitin(n, 1).Codes
		r0 := n / 2
		b.Run(fmt.Sprintf("flat/n=%d", n), func(b *testing.B) {
			b.SetBytes(benchGroupCells(n, r0, 4))
			for i := 0; i < b.N; i++ {
				ScoreGroupILP(protein, s, r0, nil)
			}
		})
		b.Run(fmt.Sprintf("striped/n=%d", n), func(b *testing.B) {
			b.SetBytes(benchGroupCells(n, r0, 4))
			for i := 0; i < b.N; i++ {
				ScoreGroupILPStriped(protein, s, r0, nil, 0)
			}
		})
	}
}

func BenchmarkScoreGroupAuto8(b *testing.B) {
	for _, n := range []int{1200, 4096} {
		s := seq.SyntheticTitin(n, 1).Codes
		r0 := n / 2
		sc := NewScratch()
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.SetBytes(benchGroupCells(n, r0, 8))
			for i := 0; i < b.N; i++ {
				if _, err := sc.ScoreGroupAuto(protein, s, r0, 8, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkScoreGroupAuto16(b *testing.B) {
	for _, n := range []int{1200, 4096} {
		s := seq.SyntheticTitin(n, 1).Codes
		r0 := n / 2
		sc := NewScratch()
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.SetBytes(benchGroupCells(n, r0, 16))
			for i := 0; i < b.N; i++ {
				g, err := sc.ScoreGroupAuto(protein, s, r0, 16, nil)
				if err != nil {
					b.Fatal(err)
				}
				if g.Rerun {
					b.Fatal("benchmark input saturated the int16 kernel")
				}
			}
		})
	}
}

func BenchmarkScoreGroupSWAR(b *testing.B) {
	for _, lanes := range []int{4, 8} {
		n := 1200
		s := seq.SyntheticTitin(n, 1).Codes
		r0 := n / 2
		b.Run(fmt.Sprintf("lanes=%d/n=%d", lanes, n), func(b *testing.B) {
			b.SetBytes(benchGroupCells(n, r0, lanes))
			for i := 0; i < b.N; i++ {
				if _, err := ScoreGroup(protein, s, r0, lanes, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
