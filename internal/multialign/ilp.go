package multialign

import (
	"repro/internal/align"
	"repro/internal/triangle"
)

// ScoreGroupILP computes the same four neighbouring matrices as the
// 4-lane SWAR kernel, but keeps each lane in its own int32 variable
// instead of packing lanes into one word.
//
// It keeps everything that makes the paper's coarse-grained SIMD scheme
// fast on a superscalar core — the Figure 7 interleaved memory layout,
// one exchange lookup and one override-triangle probe shared by all four
// matrices, one set of loop control — while exposing four independent
// dependency chains to the CPU's execution ports (the Gotoh recurrence
// is latency-bound on its running maxima, so independent chains overlap
// where a single matrix cannot). Unlike the SWAR lanes it has no
// saturation limit: scores are exact int32.
//
// Returns one bottom row per lane, nil for splits beyond len(s)-1.
// Hot paths should reuse a Scratch: the package-level function allocates
// fresh buffers on every call.
func ScoreGroupILP(p align.Params, s []byte, r0 int, tri *triangle.Triangle) *Group {
	return new(Scratch).ScoreGroupILP(p, s, r0, tri)
}

// ilp4 is the flat 4-lane kernel body. bots holds the destination bottom
// rows: bots[k] receives split r0+k's row (nil lanes are skipped). All
// working memory comes from the receiver.
func (sc *Scratch) ilp4(p align.Params, s []byte, r0 int, tri *triangle.Triangle, bots [][]int32) {
	m := len(s)
	n := m - r0 // column c is global position j = r0+c

	// Figure 7 layout: four interleaved lane entries per column.
	prev := growI32(&sc.prev, 4*(n+1))
	cur := growI32(&sc.cur, 4*(n+1))
	maxY := growI32(&sc.maxY, 4*(n+1))
	for i := range prev {
		prev[i] = 0 // zero boundary row (arena may hold stale values)
		maxY[i] = negInf
	}
	// cur[0..3] is never written but becomes prev[0..3] (the zero
	// boundary column block) after the first swap.
	cur[0], cur[1], cur[2], cur[3] = 0, 0, 0, 0
	open, ext := p.Gap.Open, p.Gap.Ext

	yMax := r0 + 3
	if yMax > m-1 {
		yMax = m - 1
	}
	for y := 1; y <= yMax; y++ {
		row := p.Exch.Row(s[y-1])
		mx0, mx1, mx2, mx3 := int32(negInf), int32(negInf), int32(negInf), int32(negInf)
		base := 0
		masked := false
		if tri != nil {
			base = tri.RowOffset(y) + r0 - y
			masked = !tri.RowEmpty(base, n)
		}

		// Left-border prologue: lane k's matrix starts at column k+1, so
		// at columns 1..3 the not-yet-started lanes are forced to zero
		// (their forced-zero diagonals reproduce the boundary column).
		// Lanes whose matrix already ended (rows above were captured)
		// need no correction: their values are never read again and
		// cannot influence other lanes.
		pro := 3
		if n < pro {
			pro = n
		}
		for c := 1; c <= pro; c++ {
			o := 4 * c
			d0, d1, d2, d3 := prev[o-4], prev[o-3], prev[o-2], prev[o-1]
			e := int32(row[s[r0+c-1]])
			over := masked && tri.GetAt(base+c-1)
			v0 := cellILP(d0, mx0, maxY[o], e, over)
			v1 := cellILP(d1, mx1, maxY[o+1], e, over)
			v2 := cellILP(d2, mx2, maxY[o+2], e, over)
			v3 := cellILP(d3, mx3, maxY[o+3], e, over)
			if c <= 1 {
				v1 = 0
			}
			if c <= 2 {
				v2 = 0
			}
			v3 = 0 // c <= 3 always in the prologue
			cur[o], cur[o+1], cur[o+2], cur[o+3] = v0, v1, v2, v3
			g0, g1, g2, g3 := d0-open, d1-open, d2-open, d3-open
			mx0 = maxG(g0, mx0) - ext
			mx1 = maxG(g1, mx1) - ext
			mx2 = maxG(g2, mx2) - ext
			mx3 = maxG(g3, mx3) - ext
			maxY[o] = maxG(g0, maxY[o]) - ext
			maxY[o+1] = maxG(g1, maxY[o+1]) - ext
			maxY[o+2] = maxG(g2, maxY[o+2]) - ext
			maxY[o+3] = maxG(g3, maxY[o+3]) - ext
		}

		// Main loop: all four lanes interior, no border branches. Slice
		// windows give the compiler one bounds check per column.
		for c := pro + 1; c <= n; c++ {
			o := 4 * c
			d := prev[o-4 : o : o]
			my := maxY[o : o+4 : o+4]
			cc := cur[o : o+4 : o+4]
			e := int32(row[s[r0+c-1]])
			if masked && tri.GetAt(base+c-1) {
				cc[0], cc[1], cc[2], cc[3] = 0, 0, 0, 0
			} else {
				cc[0] = cellFast(d[0], mx0, my[0], e)
				cc[1] = cellFast(d[1], mx1, my[1], e)
				cc[2] = cellFast(d[2], mx2, my[2], e)
				cc[3] = cellFast(d[3], mx3, my[3], e)
			}
			g0, g1, g2, g3 := d[0]-open, d[1]-open, d[2]-open, d[3]-open
			mx0 = maxG(g0, mx0) - ext
			mx1 = maxG(g1, mx1) - ext
			mx2 = maxG(g2, mx2) - ext
			mx3 = maxG(g3, mx3) - ext
			my[0] = maxG(g0, my[0]) - ext
			my[1] = maxG(g1, my[1]) - ext
			my[2] = maxG(g2, my[2]) - ext
			my[3] = maxG(g3, my[3]) - ext
		}
		if k := y - r0; k >= 0 && k < 4 && k < len(bots) && bots[k] != nil {
			bottom := bots[k]
			for c := k + 1; c <= n; c++ {
				bottom[c-k-1] = cur[4*c+k]
			}
		}
		prev, cur = cur, prev
	}
	sc.prev, sc.cur = prev, cur // keep the swap so reuse stays coherent
}

// cellILP is one lane's Figure-3 cell update (prologue variant with
// override handling).
func cellILP(d, mx, my, e int32, over bool) int32 {
	if over {
		return 0
	}
	return cellFast(d, mx, my, e)
}

// cellFast is the branch-light cell update of the main loop.
func cellFast(d, mx, my, e int32) int32 {
	best := d
	if mx > best {
		best = mx
	}
	if my > best {
		best = my
	}
	v := best + e
	if v < 0 {
		v = 0
	}
	return v
}

func maxG(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}

// negInf matches the scalar kernel's -infinity headroom.
const negInf = -(1 << 29)

// ScoreGroupAuto computes bottom rows for `lanes` (4 or 8) neighbouring
// splits starting at r0 using the fastest exact kernel available: the
// AVX2 8-lane row kernel on amd64, otherwise the ILP kernel in blocks of
// four. Identical grouping semantics to the SWAR kernels, int32
// exactness, no saturation fallback. The SWAR kernels remain available
// via ScoreGroup for the Table 2 comparison.
func ScoreGroupAuto(p align.Params, s []byte, r0, lanes int, tri *triangle.Triangle) (*Group, error) {
	return new(Scratch).ScoreGroupAuto(p, s, r0, lanes, tri)
}
