package multialign

import (
	"testing"

	"repro/internal/align"
	"repro/internal/scoring"
	"repro/internal/seq"
	"repro/internal/triangle"
)

// The ILP kernel must agree with the scalar kernel lane for lane, masked
// and unmasked, across all group positions of a small sequence.
func TestILPMatchesScalarExhaustive(t *testing.T) {
	dna := align.Params{Exch: scoring.PaperDNA, Gap: scoring.PaperGap}
	full := seq.Tandem(seq.TandemSpec{Alpha: seq.DNA, UnitLen: 5, Copies: 6, Seed: 4})
	s := full.Codes
	m := len(s)
	tri := triangle.New(m)
	tri.Set(2, 12)
	tri.Set(3, 13)
	tri.Set(10, 20)
	for _, mask := range []*triangle.Triangle{nil, tri} {
		for r0 := 1; r0 <= m-1; r0++ {
			g := ScoreGroupILP(dna, s, r0, mask)
			for i := 0; i < 4; i++ {
				r := r0 + i
				if r > m-1 {
					if g.Bottoms[i] != nil {
						t.Fatalf("r0=%d lane %d beyond last split not nil", r0, i)
					}
					continue
				}
				want := align.ScoreMasked(dna, s[:r], s[r:], mask, r)
				if !equalRows(g.Bottoms[i], want) {
					t.Fatalf("mask=%v r0=%d lane %d: rows differ\n got %v\nwant %v",
						mask != nil, r0, i, g.Bottoms[i], want)
				}
			}
		}
	}
}

func TestILPMatchesScalarProtein(t *testing.T) {
	full := seq.SyntheticTitin(170, 12)
	s := full.Codes
	m := len(s)
	tri := triangle.New(m)
	for _, p := range [][2]int{{20, 90}, {21, 91}, {50, 140}, {1, 169}} {
		tri.Set(p[0], p[1])
	}
	for _, r0 := range []int{1, 3, 41, 85, 120, m - 4, m - 2, m - 1} {
		g := ScoreGroupILP(protein, s, r0, tri)
		for i := 0; i < 4; i++ {
			r := r0 + i
			if r > m-1 {
				continue
			}
			want := align.ScoreMasked(protein, s[:r], s[r:], tri, r)
			if !equalRows(g.Bottoms[i], want) {
				t.Fatalf("r0=%d lane %d: rows differ", r0, i)
			}
		}
	}
}

func TestScoreGroupAuto(t *testing.T) {
	full := seq.SyntheticTitin(100, 3)
	s := full.Codes
	m := len(s)
	for _, lanes := range []int{4, 8} {
		g, err := ScoreGroupAuto(protein, s, m-10, lanes, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < lanes; i++ {
			r := m - 10 + i
			if r > m-1 {
				if g.Bottoms[i] != nil {
					t.Errorf("lanes=%d lane %d beyond end not nil", lanes, i)
				}
				continue
			}
			want := align.Score(protein, s[:r], s[r:])
			if !equalRows(g.Bottoms[i], want) {
				t.Fatalf("lanes=%d lane %d differs", lanes, i)
			}
		}
	}
	if _, err := ScoreGroupAuto(protein, s, 0, 4, nil); err == nil {
		t.Error("r0=0 accepted")
	}
	if _, err := ScoreGroupAuto(protein, s, 1, 3, nil); err == nil {
		t.Error("lanes=3 accepted")
	}
	if _, err := ScoreGroupAuto(align.Params{}, s, 1, 4, nil); err == nil {
		t.Error("invalid params accepted")
	}
}

// No saturation: the ILP kernel must handle scores far beyond the SWAR
// lane cap.
func TestILPNoSaturation(t *testing.T) {
	hot := scoring.Unit("hot", seq.DNA, 255, -1)
	p := align.Params{Exch: hot, Gap: scoring.PaperGap}
	n := 400
	s := make([]byte, n)
	r := n / 2
	g := ScoreGroupILP(p, s, r, nil)
	want := align.Score(p, s[:r], s[r:])
	if align.MaxRowScore(want) <= SatLimit {
		t.Fatal("workload does not exceed the SWAR cap; test is vacuous")
	}
	if !equalRows(g.Bottoms[0], want) {
		t.Error("ILP kernel wrong on high-score input")
	}
}
