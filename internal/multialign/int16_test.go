package multialign

import (
	"math/rand"
	"testing"

	"repro/internal/align"
	"repro/internal/scoring"
	"repro/internal/seq"
	"repro/internal/triangle"
)

// The 16-lane production kernel must agree with the scalar kernel lane
// for lane, masked and unmasked, across every group position of a small
// sequence — the same contract the 8-lane kernel is held to, including
// groups near the sequence end where most lanes are out of range.
func TestAuto16MatchesScalarExhaustive(t *testing.T) {
	dna := align.Params{Exch: scoring.PaperDNA, Gap: scoring.PaperGap}
	full := seq.Tandem(seq.TandemSpec{Alpha: seq.DNA, UnitLen: 7, Copies: 6, Seed: 9})
	s := full.Codes
	m := len(s)
	tri := triangle.New(m)
	tri.Set(2, 12)
	tri.Set(3, 13)
	tri.Set(10, 20)
	tri.Set(1, m)
	sc := NewScratch()
	for _, mask := range []*triangle.Triangle{nil, tri} {
		for r0 := 1; r0 <= m-1; r0++ {
			g, err := sc.ScoreGroupAuto(dna, s, r0, 16, mask)
			if err != nil {
				t.Fatal(err)
			}
			if g.Rerun {
				t.Fatalf("r0=%d: spurious saturation re-run on tiny scores", r0)
			}
			for i := 0; i < 16; i++ {
				r := r0 + i
				if r > m-1 {
					if g.Bottoms[i] != nil {
						t.Fatalf("r0=%d lane %d beyond last split not nil", r0, i)
					}
					continue
				}
				want := align.ScoreMasked(dna, s[:r], s[r:], mask, r)
				if !equalRows(g.Bottoms[i], want) {
					t.Fatalf("mask=%v r0=%d lane %d: rows differ\n got %v\nwant %v",
						mask != nil, r0, i, g.Bottoms[i], want)
				}
			}
		}
	}
}

// Dense random masks stress the segmented masked-row path of the 16-lane
// kernel (NextSet runs between overridden columns) against the scalar
// masked kernel.
func TestAuto16MatchesScalarDenseMask(t *testing.T) {
	full := seq.SyntheticTitin(150, 21)
	s := full.Codes
	m := len(s)
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 6; trial++ {
		tri := triangle.New(m)
		for k := 0; k < 40+trial*60; k++ {
			i := 1 + rng.Intn(m-1)
			j := i + 1 + rng.Intn(m-i)
			tri.Set(i, j)
		}
		sc := NewScratch()
		for _, r0 := range []int{1, 2, 7, 8, 9, 15, 16, 17, m / 2, m - 17, m - 2, m - 1} {
			g, err := sc.ScoreGroupAuto(protein, s, r0, 16, tri)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 16; i++ {
				r := r0 + i
				if r > m-1 {
					continue
				}
				want := align.ScoreMasked(protein, s[:r], s[r:], tri, r)
				if !equalRows(g.Bottoms[i], want) {
					t.Fatalf("trial=%d r0=%d lane %d: rows differ", trial, r0, i)
				}
			}
		}
	}
}

// Forcing each kernel tier in turn must leave the 16-lane group result
// bit-identical, and the Group must report the tier that served it.
func TestAuto16ForcedTiersIdentical(t *testing.T) {
	s := seq.SyntheticTitin(200, 3).Codes
	m := len(s)
	defer SetKernelTier("auto")
	for _, r0 := range []int{1, 9, m / 2, m - 5} {
		var ref [][]int32
		for _, tier := range []Tier{TierScalar, TierInt32x8, TierInt16x16} {
			if tier > DetectedTier() {
				continue
			}
			if err := SetKernelTier(tier.String()); err != nil {
				t.Fatal(err)
			}
			sc := NewScratch()
			g, err := sc.ScoreGroupAuto(protein, s, r0, 16, nil)
			if err != nil {
				t.Fatal(err)
			}
			if g.Tier != tier {
				t.Fatalf("r0=%d forced %s: group reports tier %s", r0, tier, g.Tier)
			}
			if ref == nil {
				ref = make([][]int32, 16)
				for i, b := range g.Bottoms {
					ref[i] = append([]int32(nil), b...)
				}
				continue
			}
			for i := 0; i < 16; i++ {
				if !equalRows(g.Bottoms[i], ref[i]) {
					t.Fatalf("r0=%d tier %s lane %d differs from scalar", r0, tier, i)
				}
			}
		}
	}
}

// A scoring model whose exchange values exceed the int16 lane bias must
// silently narrow to the exact int32 tier — never the saturating kernel.
func TestAuto16WideScoresNarrowToInt32(t *testing.T) {
	wide := scoring.Unit("wide", seq.DNA, 300, -1)
	p := align.Params{Exch: wide, Gap: scoring.PaperGap}
	s := make([]byte, 200)
	r0 := 90
	g, err := ScoreGroupAuto(p, s, r0, 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.Tier == TierInt16x16 {
		t.Fatal("int16 tier selected for scores beyond the lane bias")
	}
	for i := 0; i < 16; i++ {
		r := r0 + i
		want := align.Score(p, s[:r], s[r:])
		if !equalRows(g.Bottoms[i], want) {
			t.Fatalf("lane %d wrong on wide-score input", i)
		}
	}
}

// satBoundaryCase builds a homopolymer group whose largest computed cell
// value is exactly hi*dim: with a match-only diagonal, cell (y, x) of
// every lane's matrix is hi*min(y, x), and choosing r0 = dim-15 and
// m = r0+dim makes the kernel's computed region (rows to r0+15, n = dim
// columns) peak at exactly hi*dim in lane 0's top row corner.
func satBoundaryCase(hi int16, dim int) (p align.Params, s []byte, r0 int) {
	unit := scoring.Unit("sat", seq.DNA, hi, -1)
	p = align.Params{Exch: unit, Gap: scoring.PaperGap}
	r0 = dim - 15
	s = make([]byte, r0+dim)
	return p, s, r0
}

// Property: driving the peak cell value to either side of the int16
// saturation threshold must flip the sticky flag exactly at the
// boundary — hi*dim < satLimit16 runs clean in int16, hi*dim at or past
// it fires the flag and the transparent int32 re-run — and the bottom
// rows must be bit-identical to the scalar kernel on both sides.
func TestInt16SaturationBoundaryProperty(t *testing.T) {
	if DetectedTier() < TierInt16x16 {
		t.Skip("int16 kernel needs AVX2")
	}
	defer SetKernelTier("auto")
	sc := NewScratch()
	for _, hi := range []int16{11, 37, 101, 250} {
		below := (satLimit16 - 1) / int(hi) // largest dim with hi*dim < satLimit16
		at := (satLimit16 + int(hi) - 1) / int(hi)
		for _, tc := range []struct {
			dim       int
			wantRerun bool
		}{
			{below, false}, // peak = hi*below <= satLimit16-1: clean
			{at, true},     // peak >= satLimit16: flag + re-run
			{at + 1, true},
		} {
			p, s, r0 := satBoundaryCase(hi, tc.dim)
			m := len(s)
			if proven := Int16Proven(p, m, r0, 16); proven == tc.wantRerun {
				t.Fatalf("hi=%d dim=%d: Int16Proven=%v, want %v", hi, tc.dim, proven, !tc.wantRerun)
			}
			if err := SetKernelTier("auto"); err != nil {
				t.Fatal(err)
			}
			g, err := sc.ScoreGroupAuto(p, s, r0, 16, nil)
			if err != nil {
				t.Fatal(err)
			}
			if g.Rerun != tc.wantRerun {
				t.Fatalf("hi=%d dim=%d peak=%d: Rerun=%v, want %v",
					hi, tc.dim, int(hi)*tc.dim, g.Rerun, tc.wantRerun)
			}
			wantTier := TierInt16x16
			if tc.wantRerun {
				wantTier = TierInt32x8
			}
			if g.Tier != wantTier {
				t.Fatalf("hi=%d dim=%d: tier %s, want %s", hi, tc.dim, g.Tier, wantTier)
			}
			// All lanes bit-identical to the forced exact-int32 kernel
			// (itself pinned to scalar by the 8-lane differential suite),
			// and lane 0 additionally checked against the scalar kernel.
			if err := SetKernelTier("int32x8"); err != nil {
				t.Fatal(err)
			}
			g2, err := NewScratch().ScoreGroupAuto(p, s, r0, 16, nil)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 16; i++ {
				if !equalRows(g.Bottoms[i], g2.Bottoms[i]) {
					t.Fatalf("hi=%d dim=%d lane %d: int16 path differs from int32", hi, tc.dim, i)
				}
			}
			if want := align.Score(p, s[:r0], s[r0:]); !equalRows(g.Bottoms[0], want) {
				t.Fatalf("hi=%d dim=%d: lane 0 differs from scalar kernel", hi, tc.dim)
			}
		}
	}
}

// An unprovable group (score ceiling past the threshold) whose actual
// scores stay below it must run the flag-tracking int16 kernel without
// firing: a full overridden column halves every diagonal run, so the
// peak value stays near satLimit16/2 while Int16Proven still says no.
func TestInt16UnprovenCleanRun(t *testing.T) {
	if DetectedTier() < TierInt16x16 {
		t.Skip("int16 kernel needs AVX2")
	}
	hi, dim := int16(101), (satLimit16+100)/101 // hi*dim just past the limit
	p, s, r0 := satBoundaryCase(hi, dim)
	m := len(s)
	if Int16Proven(p, m, r0, 16) {
		t.Fatal("case not constructed correctly: group is provably clean")
	}
	cut := r0 + dim/2 // override global column cut in every row
	tri := triangle.New(m)
	for y := 1; y < cut; y++ {
		tri.Set(y, cut)
	}
	g, err := NewScratch().ScoreGroupAuto(p, s, r0, 16, tri)
	if err != nil {
		t.Fatal(err)
	}
	if g.Rerun || g.Tier != TierInt16x16 {
		t.Fatalf("masked clean run: Rerun=%v Tier=%s, want int16 with no re-run", g.Rerun, g.Tier)
	}
	for i := 0; i < 16; i++ {
		r := r0 + i
		if r > m-1 {
			continue
		}
		want := align.ScoreMasked(p, s[:r], s[r:], tri, r)
		if !equalRows(g.Bottoms[i], want) {
			t.Fatalf("lane %d differs from scalar masked kernel", i)
		}
	}
}

// The assembly flag must flip exactly at satLimit16: a cell value of
// satLimit16-1 is clean, satLimit16 sets the lane's sticky bits.
func TestRowAVX16FlagBoundary(t *testing.T) {
	if !hasAVX2 {
		t.Skip("needs AVX2")
	}
	for _, tc := range []struct {
		e        int16
		wantFlag bool
	}{
		{9, false}, // 31990 + 9 = satLimit16-1
		{10, true}, // 31990 + 10 = satLimit16
	} {
		prev := make([]int16, 16)
		cur := make([]int16, 16)
		maxY := make([]int16, 16)
		mx := make([]int16, 16)
		for i := range prev {
			prev[i] = satLimit16 - 10
			maxY[i] = negInf16
			mx[i] = negInf16
		}
		ex := []int16{tc.e}
		var sat uint32
		rowAVX16(&prev[0], &cur[0], &maxY[0], &ex[0], 1, 5, 1, &mx[0], &sat)
		if got := sat != 0; got != tc.wantFlag {
			t.Errorf("e=%d: sat=%#x, want flag %v", tc.e, sat, tc.wantFlag)
		}
		if want := int16(satLimit16 - 10 + int(tc.e)); cur[0] != want {
			t.Errorf("e=%d: cur[0]=%d, want %d", tc.e, cur[0], want)
		}
	}
}

// n=0 segments must be a no-op for all three row kernels: no stores, no
// flag, no crash. The masked drivers can produce empty segments when
// overridden columns are adjacent.
func TestRowKernelsZeroColumns(t *testing.T) {
	if !hasAVX2 {
		t.Skip("needs AVX2")
	}
	prev16 := make([]int16, 16)
	cur16 := make([]int16, 16)
	maxY16 := make([]int16, 16)
	mx16 := make([]int16, 16)
	ex16 := []int16{7}
	for i := range cur16 {
		cur16[i] = 42
		maxY16[i] = 43
	}
	var sat uint32
	rowAVX16(&prev16[0], &cur16[0], &maxY16[0], &ex16[0], 0, 5, 1, &mx16[0], &sat)
	rowAVX16Fast(&prev16[0], &cur16[0], &maxY16[0], &ex16[0], 0, 5, 1, &mx16[0])
	if sat != 0 {
		t.Errorf("n=0 set the saturation flag: %#x", sat)
	}
	for i := range cur16 {
		if cur16[i] != 42 || maxY16[i] != 43 {
			t.Fatalf("n=0 wrote to lane buffers at %d: cur=%d maxY=%d", i, cur16[i], maxY16[i])
		}
	}
	prev32 := make([]int32, 8)
	cur32 := make([]int32, 8)
	maxY32 := make([]int32, 8)
	mx32 := make([]int32, 8)
	ex32 := []int32{7}
	for i := range cur32 {
		cur32[i] = 42
	}
	rowAVX8(&prev32[0], &cur32[0], &maxY32[0], &ex32[0], 0, 5, 1, &mx32[0])
	for i := range cur32 {
		if cur32[i] != 42 {
			t.Fatalf("rowAVX8 n=0 wrote cur[%d]=%d", i, cur32[i])
		}
	}
}
