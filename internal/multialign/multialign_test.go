package multialign

import (
	"testing"

	"repro/internal/align"
	"repro/internal/scoring"
	"repro/internal/seq"
	"repro/internal/triangle"
)

var protein = align.Params{Exch: scoring.BLOSUM62, Gap: scoring.DefaultProteinGap}

// TestGroupMatchesScalar checks that every lane of the 4- and 8-lane
// kernels reproduces the scalar kernel's bottom row exactly, for group
// starts across the whole sequence including partial groups at the end.
func TestGroupMatchesScalar(t *testing.T) {
	full := seq.SyntheticTitin(160, 5)
	s := full.Codes
	m := len(s)
	for _, lanes := range []int{4, 8} {
		for _, r0 := range []int{1, 2, 7, 80, m - 2, m - 3, m - lanes, m - 1} {
			if r0 < 1 {
				continue
			}
			g, err := ScoreGroup(protein, s, r0, lanes, nil)
			if err != nil {
				t.Fatal(err)
			}
			if g.Saturated {
				t.Fatalf("unexpected saturation at r0=%d", r0)
			}
			for i := 0; i < lanes; i++ {
				r := r0 + i
				if r > m-1 {
					if g.Bottoms[i] != nil {
						t.Errorf("lanes=%d r0=%d: lane %d beyond last split is not nil", lanes, r0, i)
					}
					continue
				}
				want := align.Score(protein, s[:r], s[r:])
				if !equalRows(g.Bottoms[i], want) {
					t.Fatalf("lanes=%d r0=%d lane %d (split %d): rows differ\n got %v\nwant %v",
						lanes, r0, i, r, g.Bottoms[i], want)
				}
			}
		}
	}
}

func TestGroupMatchesScalarMasked(t *testing.T) {
	full := seq.SyntheticTitin(140, 8)
	s := full.Codes
	m := len(s)
	tri := triangle.New(m)
	for _, p := range [][2]int{{5, 60}, {6, 61}, {7, 62}, {30, 100}, {70, 139}, {1, 2}} {
		tri.Set(p[0], p[1])
	}
	for _, lanes := range []int{4, 8} {
		for _, r0 := range []int{1, 4, 28, 59, 100, m - lanes} {
			g, err := ScoreGroup(protein, s, r0, lanes, tri)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < lanes; i++ {
				r := r0 + i
				if r > m-1 {
					continue
				}
				want := align.ScoreMasked(protein, s[:r], s[r:], tri, r)
				if !equalRows(g.Bottoms[i], want) {
					t.Fatalf("masked lanes=%d r0=%d lane %d: rows differ", lanes, r0, i)
				}
			}
		}
	}
}

// TestGroupExhaustiveSmall sweeps every group start on a small sequence
// so all border-correction paths (left columns, bottom rows) are hit.
func TestGroupExhaustiveSmall(t *testing.T) {
	dna := align.Params{Exch: scoring.PaperDNA, Gap: scoring.PaperGap}
	full := seq.Tandem(seq.TandemSpec{Alpha: seq.DNA, UnitLen: 4, Copies: 6, Seed: 2})
	s := full.Codes
	m := len(s)
	for _, lanes := range []int{4, 8} {
		for r0 := 1; r0 <= m-1; r0++ {
			g, err := ScoreGroup(dna, s, r0, lanes, nil)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < lanes; i++ {
				r := r0 + i
				if r > m-1 {
					continue
				}
				want := align.Score(dna, s[:r], s[r:])
				if !equalRows(g.Bottoms[i], want) {
					t.Fatalf("lanes=%d r0=%d lane %d: rows differ\n got %v\nwant %v",
						lanes, r0, i, g.Bottoms[i], want)
				}
			}
		}
	}
}

func TestSaturationDetected(t *testing.T) {
	// 255-point matches over a long identical repeat push lane scores
	// past SatLimit; the kernel must flag it rather than return wrong rows.
	hot := scoring.Unit("hot", seq.DNA, 255, -1)
	p := align.Params{Exch: hot, Gap: scoring.PaperGap}
	n := 400
	s := make([]byte, n) // all 'A': maximal self-similarity
	g, err := ScoreGroup(p, s, n/2, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Saturated {
		t.Fatal("expected saturation flag")
	}
	// sanity: scalar kernel exceeds the lane cap, confirming saturation
	// was real
	want := align.Score(p, s[:n/2], s[n/2:])
	if align.MaxRowScore(want) <= SatLimit {
		t.Fatalf("test workload too small: scalar max %d", align.MaxRowScore(want))
	}
}

func TestCheckParams(t *testing.T) {
	if err := CheckParams(protein); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	big := scoring.Unit("big", seq.DNA, 300, -300)
	if err := CheckParams(align.Params{Exch: big, Gap: scoring.PaperGap}); err == nil {
		t.Error("oversized exchange scores accepted")
	}
	if err := CheckParams(align.Params{Exch: scoring.PaperDNA, Gap: scoring.Gap{Open: 20000, Ext: 1}}); err == nil {
		t.Error("oversized gap penalties accepted")
	}
	if err := CheckParams(align.Params{Gap: scoring.PaperGap}); err == nil {
		t.Error("nil matrix accepted")
	}
}

func TestScoreGroupErrors(t *testing.T) {
	s := seq.DNA.MustEncode("ACGTACGT")
	if _, err := ScoreGroup(protein, s, 0, 4, nil); err == nil {
		t.Error("r0=0 accepted")
	}
	if _, err := ScoreGroup(protein, s, 8, 4, nil); err == nil {
		t.Error("r0=len(s) accepted")
	}
	if _, err := ScoreGroup(protein, s, 1, 5, nil); err == nil {
		t.Error("lane count 5 accepted")
	}
}

func TestKeepLanes(t *testing.T) {
	cases := []struct {
		k    int
		want uint64
	}{
		{-1, 0}, {0, 0},
		{1, 0x0000_0000_0000_FFFF},
		{2, 0x0000_0000_FFFF_FFFF},
		{3, 0x0000_FFFF_FFFF_FFFF},
		{4, ^uint64(0)}, {7, ^uint64(0)},
	}
	for _, c := range cases {
		if got := keepLanes(c.k); got != c.want {
			t.Errorf("keepLanes(%d) = %#x, want %#x", c.k, got, c.want)
		}
	}
}

func equalRows(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
