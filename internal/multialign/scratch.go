package multialign

import (
	"fmt"

	"repro/internal/align"
	"repro/internal/triangle"
)

// Scratch is the group-kernel analogue of align.Scratch: a reusable
// buffer arena that makes every group score kernel allocation-free once
// warm. Buffers grow monotonically to the largest group seen and are
// reset, never reallocated, on reuse.
//
// Ownership rules match align.Scratch (DESIGN.md section 10): a Scratch
// belongs to one goroutine at a time, and the *Group returned by its
// methods — including every bottom row — points into the arena and is
// valid only until the next call on the same Scratch. Callers that
// retain a row must copy it first.
//
// The zero value is ready to use.
type Scratch struct {
	prev, cur, maxY []int32 // interleaved int32 lane rows (ILP and AVX2 kernels)

	wPrev, wCur, wMaxY []uint64 // packed uint16 lane words (SWAR kernels)

	edgeM, edgeMx [][4]int32 // striped ILP kernel's inter-stripe carries

	prof      []int32 // query profile: per-character exchange rows (AVX2 kernel)
	profBuilt []bool

	prev16, cur16, maxY16 []int16 // interleaved int16 lane rows (16-lane AVX2 kernel)
	prof16                []int16 // query profile at int16 width

	arena []int32   // bottom-row storage
	heads [][]int32 // lane headers over arena
	g     Group     // reusable result
}

// NewScratch returns an empty Scratch.
func NewScratch() *Scratch { return &Scratch{} }

// growI32 resizes *buf to n entries, reusing capacity when possible.
// Contents are unspecified; callers reset what they read.
func growI32(buf *[]int32, n int) []int32 {
	if cap(*buf) < n {
		*buf = make([]int32, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

func growI16(buf *[]int16, n int) []int16 {
	if cap(*buf) < n {
		*buf = make([]int16, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

func growU64(buf *[]uint64, n int) []uint64 {
	if cap(*buf) < n {
		*buf = make([]uint64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

func growEdge(buf *[][4]int32, n int) [][4]int32 {
	if cap(*buf) < n {
		*buf = make([][4]int32, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

func growBool(buf *[]bool, n int) []bool {
	if cap(*buf) < n {
		*buf = make([]bool, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// newGroup prepares the reusable Group result: one arena-backed bottom
// row per in-range lane (split r0+k <= len-1), nil beyond the sequence
// end. Lane k's row has length m-r0-k, matching what the kernels fill.
func (sc *Scratch) newGroup(m, r0, lanes int) *Group {
	total := 0
	for k := 0; k < lanes; k++ {
		if r := r0 + k; r <= m-1 {
			total += m - r
		}
	}
	arena := growI32(&sc.arena, total)
	if cap(sc.heads) < lanes {
		sc.heads = make([][]int32, lanes)
	}
	heads := sc.heads[:lanes]
	off := 0
	for k := 0; k < lanes; k++ {
		if r := r0 + k; r <= m-1 {
			heads[k] = arena[off : off+(m-r) : off+(m-r)]
			off += m - r
		} else {
			heads[k] = nil
		}
	}
	sc.g = Group{R0: r0, Bottoms: heads}
	return &sc.g
}

// ScoreGroup is the scratch-based variant of the package-level
// ScoreGroup (the SWAR uint16-lane kernels).
func (sc *Scratch) ScoreGroup(p align.Params, s []byte, r0, lanes int, tri *triangle.Triangle) (*Group, error) {
	if err := CheckParams(p); err != nil {
		return nil, err
	}
	m := len(s)
	if r0 < 1 || r0 > m-1 {
		return nil, fmt.Errorf("multialign: group start split %d out of range for length %d", r0, m)
	}
	g := sc.newGroup(m, r0, lanes)
	switch lanes {
	case 4:
		g.Saturated = sc.swar4(p, s, r0, tri, g.Bottoms)
	case 8:
		g.Saturated = sc.swar8(p, s, r0, tri, g.Bottoms)
	default:
		return nil, fmt.Errorf("multialign: unsupported lane count %d (want 4 or 8)", lanes)
	}
	return g, nil
}

// ScoreGroupILP is the scratch-based variant of the package-level
// ScoreGroupILP (4 exact int32 lanes, flat rows).
func (sc *Scratch) ScoreGroupILP(p align.Params, s []byte, r0 int, tri *triangle.Triangle) *Group {
	g := sc.newGroup(len(s), r0, 4)
	sc.ilp4(p, s, r0, tri, g.Bottoms)
	return g
}

// ScoreGroupILPStriped is the scratch-based variant of the package-level
// ScoreGroupILPStriped.
func (sc *Scratch) ScoreGroupILPStriped(p align.Params, s []byte, r0 int, tri *triangle.Triangle, width int) *Group {
	g := sc.newGroup(len(s), r0, 4)
	sc.ilp4Striped(p, s, r0, tri, width, g.Bottoms)
	return g
}

// ScoreGroupAuto is the scratch-based variant of the package-level
// ScoreGroupAuto and the production group kernel. It dispatches on the
// effective kernel tier (TierFor): full 16-lane groups whose scoring
// model fits 16-bit arithmetic run the saturating int16 kernel — with an
// exact int32 re-run if the sticky saturation flag fires — 8-lane blocks
// run the exact int32 AVX2 kernel, and everything else falls back to
// exact ILP lanes in blocks of four. All paths produce bit-identical
// bottom rows; the chosen path is reported in Group.Tier.
func (sc *Scratch) ScoreGroupAuto(p align.Params, s []byte, r0, lanes int, tri *triangle.Triangle) (*Group, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m := len(s)
	if r0 < 1 || r0 > m-1 {
		return nil, fmt.Errorf("multialign: group start split %d out of range for length %d", r0, m)
	}
	if lanes != 4 && lanes != 8 && lanes != 16 {
		return nil, fmt.Errorf("multialign: unsupported lane count %d (want 4, 8, or 16)", lanes)
	}
	g := sc.newGroup(m, r0, lanes)
	tier := TierFor(p, m, lanes)
	if tier == TierInt16x16 {
		proven := Int16Proven(p, m, r0, lanes)
		if !sc.avx16(p, s, r0, tri, g.Bottoms, proven) {
			g.Tier = TierInt16x16
			return g, nil
		}
		// Saturation detected: the int16 rows are unreliable. Re-run the
		// whole group through the exact int32 kernel below — the int16
		// tier implies AVX2, so avx8 is always the rerun engine.
		g.Rerun = true
		tier = TierInt32x8
	}
	if tier == TierInt32x8 {
		for block := 0; block < lanes; block += 8 {
			b0 := r0 + block
			if b0 > m-1 {
				break
			}
			sc.avx8(p, s, b0, tri, g.Bottoms[block:])
		}
		g.Tier = TierInt32x8
		return g, nil
	}
	for block := 0; block < lanes; block += 4 {
		b0 := r0 + block
		if b0 > m-1 {
			break
		}
		sc.ilp4Striped(p, s, b0, tri, 0, g.Bottoms[block:])
	}
	g.Tier = TierScalar
	return g, nil
}
