package multialign

import (
	"testing"

	"repro/internal/align"
	"repro/internal/scoring"
	"repro/internal/seq"
)

func TestTierStringParseRoundTrip(t *testing.T) {
	for _, tier := range []Tier{TierScalar, TierInt32x8, TierInt16x16} {
		got, err := ParseTier(tier.String())
		if err != nil || got != tier {
			t.Errorf("round trip %s: got %v, %v", tier, got, err)
		}
	}
	if _, err := ParseTier("int8x32"); err == nil {
		t.Error("unknown tier name parsed without error")
	}
}

func TestSetKernelTierOverride(t *testing.T) {
	defer SetKernelTier("auto")
	if err := SetKernelTier("bogus"); err == nil {
		t.Fatal("bogus tier name accepted")
	}
	if err := SetKernelTier("scalar"); err != nil {
		t.Fatal(err)
	}
	if ActiveTier() != TierScalar {
		t.Fatalf("after forcing scalar: active tier %s", ActiveTier())
	}
	if err := SetKernelTier("auto"); err != nil {
		t.Fatal(err)
	}
	if ActiveTier() != DetectedTier() {
		t.Fatalf("after clearing override: active %s, detected %s", ActiveTier(), DetectedTier())
	}
	if DetectedTier() < TierInt16x16 {
		if err := SetKernelTier("int16x16"); err == nil {
			t.Fatal("unsupported tier accepted on this CPU")
		}
	} else if err := SetKernelTier("int16x16"); err != nil {
		t.Fatal(err)
	}
}

// TierFor must narrow the active tier by group shape and scoring model:
// the int16 tier serves only full 16-lane groups with in-range scores,
// the int32 vector tier needs at least 8 lanes.
func TestTierForNarrowing(t *testing.T) {
	if DetectedTier() < TierInt16x16 {
		t.Skip("narrowing ladder needs the full tier set")
	}
	defer SetKernelTier("auto")
	if err := SetKernelTier("auto"); err != nil {
		t.Fatal(err)
	}
	okP := align.Params{Exch: scoring.BLOSUM62, Gap: scoring.DefaultProteinGap}
	wide := align.Params{Exch: scoring.Unit("w", seq.DNA, 300, -1), Gap: scoring.PaperGap}
	bigGap := align.Params{Exch: scoring.PaperDNA, Gap: scoring.Gap{Open: maxGapInt16, Ext: 1}}
	cases := []struct {
		name  string
		p     align.Params
		lanes int
		want  Tier
	}{
		{"full-16", okP, 16, TierInt16x16},
		{"8-lanes", okP, 8, TierInt32x8},
		{"4-lanes", okP, 4, TierScalar},
		{"wide-scores", wide, 16, TierInt32x8},
		{"big-gap", bigGap, 16, TierInt32x8},
	}
	for _, c := range cases {
		if got := TierFor(c.p, 500, c.lanes); got != c.want {
			t.Errorf("%s: tier %s, want %s", c.name, got, c.want)
		}
	}
}

// Int16Proven must be exactly the hi*dim < satLimit16 predicate over the
// computed region, covering dead lanes that evolve past their last
// captured row.
func TestInt16ProvenBound(t *testing.T) {
	hi := int16(11)
	p := align.Params{Exch: scoring.Unit("p", seq.DNA, hi, -1), Gap: scoring.PaperGap}
	for _, tc := range []struct {
		m, r0 int
		want  bool
	}{
		{5803, 2894, true},  // dim=2909, 11*2909 = 31999
		{5805, 2895, false}, // dim=2910, 11*2910 = 32010
		{100, 50, true},     // tiny
	} {
		if got := Int16Proven(p, tc.m, tc.r0, 16); got != tc.want {
			t.Errorf("m=%d r0=%d: proven=%v, want %v", tc.m, tc.r0, got, tc.want)
		}
	}
	neg := align.Params{Exch: scoring.Unit("n", seq.DNA, -1, -2), Gap: scoring.PaperGap}
	if !Int16Proven(neg, 1<<20, 1<<19, 16) {
		t.Error("non-positive max score must always be proven")
	}
}
