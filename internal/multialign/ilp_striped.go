package multialign

import (
	"repro/internal/align"
	"repro/internal/triangle"
)

// DefaultGroupStripe is the column width of the striped group kernel:
// three interleaved arrays of 4 int32 lanes per column must fit in a
// third of a 32 KiB L1 data cache each, per Section 4.1 of the paper.
const DefaultGroupStripe = 512

// ScoreGroupILPStriped is ScoreGroupILP with the paper's cache-aware
// vertical striping: the four interleaved matrices are computed in
// column stripes sized to first-level cache, with per-row edge state
// (the previous stripe's last column and horizontal-gap running maxima)
// carried between stripes. For the large matrices of long sequences this
// is the production configuration — the paper reports the SIMD kernel
// gains up to 6.5x from exactly this transformation.
//
// width <= 0 selects DefaultGroupStripe. Hot paths should reuse a
// Scratch: the package-level function allocates fresh buffers per call.
func ScoreGroupILPStriped(p align.Params, s []byte, r0 int, tri *triangle.Triangle, width int) *Group {
	return new(Scratch).ScoreGroupILPStriped(p, s, r0, tri, width)
}

// ilp4Striped is the striped 4-lane kernel body; bots as in ilp4.
func (sc *Scratch) ilp4Striped(p align.Params, s []byte, r0 int, tri *triangle.Triangle, width int, bots [][]int32) {
	if width <= 0 {
		width = DefaultGroupStripe
	}
	m := len(s)
	n := m - r0
	if n <= width {
		sc.ilp4(p, s, r0, tri, bots)
		return
	}

	yMax := r0 + 3
	if yMax > m-1 {
		yMax = m - 1
	}

	open, ext := p.Gap.Open, p.Gap.Ext

	// Per-row carries between stripes, one entry per lane:
	// edgeM[y] is M[y][c0-1], edgeMx[y] the horizontal running maxima
	// after column c0-1 of row y.
	edgeM := growEdge(&sc.edgeM, yMax+1)
	edgeMx := growEdge(&sc.edgeMx, yMax+1)
	for y := range edgeM {
		edgeM[y] = [4]int32{}
		edgeMx[y] = [4]int32{negInf, negInf, negInf, negInf}
	}

	prev := growI32(&sc.prev, 4*(width+1))
	cur := growI32(&sc.cur, 4*(width+1))
	maxY := growI32(&sc.maxY, 4*(width+1))

	for c0 := 1; c0 <= n; c0 += width {
		c1 := c0 + width - 1
		if c1 > n {
			c1 = n
		}
		w := c1 - c0 + 1
		for i := 0; i <= 4*w+3; i++ {
			prev[i] = 0
			maxY[i] = negInf
		}
		for y := 1; y <= yMax; y++ {
			row := p.Exch.Row(s[y-1])
			mx := edgeMx[y]
			mx0, mx1, mx2, mx3 := mx[0], mx[1], mx[2], mx[3]
			em := edgeM[y-1]
			prev[0], prev[1], prev[2], prev[3] = em[0], em[1], em[2], em[3]
			base := 0
			masked := false
			if tri != nil {
				base = tri.RowOffset(y) + r0 - y + (c0 - 1)
				masked = !tri.RowEmpty(base, w)
			}
			for i := 1; i <= w; i++ {
				c := c0 + i - 1
				o := 4 * i
				d := prev[o-4 : o : o]
				my := maxY[o : o+4 : o+4]
				cc := cur[o : o+4 : o+4]
				e := int32(row[s[r0+c-1]])
				if masked && tri.GetAt(base+i-1) {
					cc[0], cc[1], cc[2], cc[3] = 0, 0, 0, 0
				} else {
					cc[0] = cellFast(d[0], mx0, my[0], e)
					cc[1] = cellFast(d[1], mx1, my[1], e)
					cc[2] = cellFast(d[2], mx2, my[2], e)
					cc[3] = cellFast(d[3], mx3, my[3], e)
					// left-border correction (first stripe only reaches
					// columns <= 3)
					if c <= 3 {
						if c <= 1 {
							cc[1] = 0
						}
						if c <= 2 {
							cc[2] = 0
						}
						cc[3] = 0
					}
				}
				g0, g1, g2, g3 := d[0]-open, d[1]-open, d[2]-open, d[3]-open
				mx0 = maxG(g0, mx0) - ext
				mx1 = maxG(g1, mx1) - ext
				mx2 = maxG(g2, mx2) - ext
				mx3 = maxG(g3, mx3) - ext
				my[0] = maxG(g0, my[0]) - ext
				my[1] = maxG(g1, my[1]) - ext
				my[2] = maxG(g2, my[2]) - ext
				my[3] = maxG(g3, my[3]) - ext
			}
			// carry the stripe's right edge to the next stripe
			ow := 4 * w
			edgeM[y-1] = [4]int32{prev[ow], prev[ow+1], prev[ow+2], prev[ow+3]}
			if y == yMax {
				edgeM[y] = [4]int32{cur[ow], cur[ow+1], cur[ow+2], cur[ow+3]}
			}
			edgeMx[y] = [4]int32{mx0, mx1, mx2, mx3}
			// capture this stripe's slice of lane k's bottom row
			if k := y - r0; k >= 0 && k < 4 && k < len(bots) && bots[k] != nil {
				for c := maxI(c0, k+1); c <= c1; c++ {
					bots[k][c-k-1] = cur[4*(c-c0+1)+k]
				}
			}
			prev, cur = cur, prev
		}
	}
	sc.prev, sc.cur = prev, cur
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
