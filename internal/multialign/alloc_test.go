package multialign

import (
	"testing"

	"repro/internal/align"
	"repro/internal/scoring"
	"repro/internal/seq"
	"repro/internal/triangle"
)

// Every group kernel must be allocation-free on a warm Scratch: lane
// buffers, the query profile, and the Group's bottom rows all live in
// the arena. This pins the PR's zero-allocation hot-path contract for
// the SIMD-style level (DESIGN.md section 10).
func TestGroupKernelsZeroAllocsWarm(t *testing.T) {
	p := align.Params{Exch: scoring.BLOSUM62, Gap: scoring.DefaultProteinGap}
	full := seq.SyntheticTitin(300, 9)
	s := full.Codes
	m := len(s)
	r0 := m / 2
	tri := triangle.New(m)
	for _, pr := range [][2]int{{20, 200}, {20, 201}, {r0, r0 + 40}, {r0 + 3, m - 1}} {
		tri.Set(pr[0], pr[1])
	}

	sc := NewScratch()
	cases := []struct {
		name string
		f    func() error
	}{
		{"ScoreGroup-swar4", func() error { _, err := sc.ScoreGroup(p, s, r0, 4, tri); return err }},
		{"ScoreGroup-swar8", func() error { _, err := sc.ScoreGroup(p, s, r0, 8, tri); return err }},
		{"ScoreGroupILP", func() error { sc.ScoreGroupILP(p, s, r0, tri); return nil }},
		{"ScoreGroupILPStriped", func() error { sc.ScoreGroupILPStriped(p, s, r0, tri, 64); return nil }},
		{"ScoreGroupAuto-4", func() error { _, err := sc.ScoreGroupAuto(p, s, r0, 4, tri); return err }},
		{"ScoreGroupAuto-8", func() error { _, err := sc.ScoreGroupAuto(p, s, r0, 8, tri); return err }},
		{"ScoreGroupAuto-16", func() error { _, err := sc.ScoreGroupAuto(p, s, r0, 16, tri); return err }},
	}
	for _, c := range cases {
		if err := c.f(); err != nil { // warm the arena
			t.Fatalf("%s: %v", c.name, err)
		}
		if allocs := testing.AllocsPerRun(50, func() {
			if err := c.f(); err != nil {
				t.Fatalf("%s: %v", c.name, err)
			}
		}); allocs != 0 {
			t.Errorf("%s: %.1f allocs/op on warm scratch, want 0", c.name, allocs)
		}
	}
}

// A cold Scratch grows to the largest operand seen and never shrinks:
// after serving a long sequence, shorter and equal-length calls must
// stay allocation-free even as the group's base split moves.
func TestScratchMonotonicGrowth(t *testing.T) {
	p := align.Params{Exch: scoring.BLOSUM62, Gap: scoring.DefaultProteinGap}
	long := seq.SyntheticTitin(400, 1).Codes
	short := seq.SyntheticTitin(120, 1).Codes

	sc := NewScratch()
	if _, err := sc.ScoreGroupAuto(p, long, len(long)/2, 8, nil); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(30, func() {
		for _, r0 := range []int{1, len(short) / 3, len(short) - 9} {
			if _, err := sc.ScoreGroupAuto(p, short, r0, 8, nil); err != nil {
				t.Fatal(err)
			}
		}
	})
	if allocs != 0 {
		t.Errorf("shorter operands on grown scratch: %.1f allocs/op, want 0", allocs)
	}
}
