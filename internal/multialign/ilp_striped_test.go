package multialign

import (
	"testing"

	"repro/internal/align"
	"repro/internal/scoring"
	"repro/internal/seq"
	"repro/internal/triangle"
)

// The striped ILP kernel must be bit-identical to the unstriped one for
// all stripe widths, group starts, and masks.
func TestStripedILPMatchesUnstriped(t *testing.T) {
	full := seq.SyntheticTitin(160, 14)
	s := full.Codes
	m := len(s)
	tri := triangle.New(m)
	for _, p := range [][2]int{{8, 70}, {9, 71}, {40, 120}, {100, 159}} {
		tri.Set(p[0], p[1])
	}
	for _, mask := range []*triangle.Triangle{nil, tri} {
		for _, r0 := range []int{1, 2, 5, 60, 100, m - 4, m - 1} {
			want := ScoreGroupILP(protein, s, r0, mask)
			for _, w := range []int{1, 3, 7, 16, 50, 99, 160, 0} {
				got := ScoreGroupILPStriped(protein, s, r0, mask, w)
				for k := 0; k < 4; k++ {
					if (want.Bottoms[k] == nil) != (got.Bottoms[k] == nil) {
						t.Fatalf("r0=%d w=%d lane %d nil-ness differs", r0, w, k)
					}
					if !equalRows(got.Bottoms[k], want.Bottoms[k]) {
						t.Fatalf("mask=%v r0=%d w=%d lane %d: rows differ",
							mask != nil, r0, w, k)
					}
				}
			}
		}
	}
}

// Exhaustive sweep on a small DNA sequence against the scalar kernel.
func TestStripedILPMatchesScalarExhaustive(t *testing.T) {
	dna := align.Params{Exch: scoring.PaperDNA, Gap: scoring.PaperGap}
	full := seq.Tandem(seq.TandemSpec{Alpha: seq.DNA, UnitLen: 6, Copies: 5, Seed: 9})
	s := full.Codes
	m := len(s)
	for r0 := 1; r0 <= m-1; r0++ {
		g := ScoreGroupILPStriped(dna, s, r0, nil, 5)
		for i := 0; i < 4; i++ {
			r := r0 + i
			if r > m-1 {
				continue
			}
			want := align.Score(dna, s[:r], s[r:])
			if !equalRows(g.Bottoms[i], want) {
				t.Fatalf("r0=%d lane %d: rows differ\n got %v\nwant %v",
					r0, i, g.Bottoms[i], want)
			}
		}
	}
}
