package multialign

import (
	"math/rand"
	"testing"

	"repro/internal/align"
	"repro/internal/scoring"
	"repro/internal/seq"
	"repro/internal/triangle"
)

// The production 8-lane kernel (AVX2 where available, ILP blocks
// otherwise) must agree with the scalar kernel lane for lane, masked and
// unmasked, across every group position of a small sequence — the same
// contract the ILP kernel is held to. A single Scratch is reused across
// all calls so the test also exercises arena reset on reuse.
func TestAuto8MatchesScalarExhaustive(t *testing.T) {
	dna := align.Params{Exch: scoring.PaperDNA, Gap: scoring.PaperGap}
	full := seq.Tandem(seq.TandemSpec{Alpha: seq.DNA, UnitLen: 7, Copies: 6, Seed: 9})
	s := full.Codes
	m := len(s)
	tri := triangle.New(m)
	tri.Set(2, 12)
	tri.Set(3, 13)
	tri.Set(10, 20)
	tri.Set(1, m)
	sc := NewScratch()
	for _, mask := range []*triangle.Triangle{nil, tri} {
		for r0 := 1; r0 <= m-1; r0++ {
			g, err := sc.ScoreGroupAuto(dna, s, r0, 8, mask)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 8; i++ {
				r := r0 + i
				if r > m-1 {
					if g.Bottoms[i] != nil {
						t.Fatalf("r0=%d lane %d beyond last split not nil", r0, i)
					}
					continue
				}
				want := align.ScoreMasked(dna, s[:r], s[r:], mask, r)
				if !equalRows(g.Bottoms[i], want) {
					t.Fatalf("mask=%v r0=%d lane %d: rows differ\n got %v\nwant %v",
						mask != nil, r0, i, g.Bottoms[i], want)
				}
			}
		}
	}
}

// Dense random masks stress the segmented masked-row path (NextSet runs
// between overridden columns) against the scalar masked kernel.
func TestAuto8MatchesScalarDenseMask(t *testing.T) {
	full := seq.SyntheticTitin(150, 21)
	s := full.Codes
	m := len(s)
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 6; trial++ {
		tri := triangle.New(m)
		for k := 0; k < 40+trial*60; k++ {
			i := 1 + rng.Intn(m-1)
			j := i + 1 + rng.Intn(m-i)
			tri.Set(i, j)
		}
		sc := NewScratch()
		for _, r0 := range []int{1, 2, 7, 8, 9, m / 2, m - 9, m - 2, m - 1} {
			g, err := sc.ScoreGroupAuto(protein, s, r0, 8, tri)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 8; i++ {
				r := r0 + i
				if r > m-1 {
					continue
				}
				want := align.ScoreMasked(protein, s[:r], s[r:], tri, r)
				if !equalRows(g.Bottoms[i], want) {
					t.Fatalf("trial=%d r0=%d lane %d: rows differ", trial, r0, i)
				}
			}
		}
	}
}

// High scores must stay exact: the production kernel has int32 lanes and
// no saturation cap.
func TestAuto8NoSaturation(t *testing.T) {
	hot := scoring.Unit("hot", seq.DNA, 255, -1)
	p := align.Params{Exch: hot, Gap: scoring.PaperGap}
	n := 400
	s := make([]byte, n)
	r0 := n / 2
	g, err := ScoreGroupAuto(p, s, r0, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := align.Score(p, s[:r0], s[r0:])
	if align.MaxRowScore(want) <= SatLimit {
		t.Fatal("workload does not exceed the SWAR cap; test is vacuous")
	}
	if !equalRows(g.Bottoms[0], want) {
		t.Error("8-lane kernel wrong on high-score input")
	}
}

func TestTriangleNextSetSegments(t *testing.T) {
	tri := triangle.New(40)
	tri.Set(3, 10)
	tri.Set(3, 30)
	tri.Set(5, 6)
	a := tri.Index(3, 10)
	b := tri.Index(3, 30)
	c := tri.Index(5, 6)
	if got := tri.NextSet(0, tri.Pairs()); got != a {
		t.Errorf("first set: got %d want %d", got, a)
	}
	if got := tri.NextSet(a+1, tri.Pairs()); got != b {
		t.Errorf("after first: got %d want %d", got, b)
	}
	if got := tri.NextSet(a+1, b); got != -1 {
		t.Errorf("exclusive end: got %d want -1", got)
	}
	if got := tri.NextSet(b+1, tri.Pairs()); got != c {
		t.Errorf("third: got %d want %d", got, c)
	}
	if got := tri.NextSet(c+1, tri.Pairs()); got != -1 {
		t.Errorf("past last: got %d want -1", got)
	}
	if got := tri.NextSet(-5, a+1); got != a {
		t.Errorf("clamped from: got %d want %d", got, a)
	}
}
