package multialign_test

import (
	"testing"

	"repro/internal/multialign"
	"repro/internal/stats"
)

// stats.TierNames must mirror the multialign tier ladder — stats can't
// import multialign (it sits below it in the dependency order), so the
// correspondence is pinned here.
func TestStatsTierNamesMatchLadder(t *testing.T) {
	if int(multialign.TierInt16x16)+1 != stats.NumTiers {
		t.Fatalf("stats.NumTiers = %d, ladder has %d tiers", stats.NumTiers, int(multialign.TierInt16x16)+1)
	}
	for i := 0; i < stats.NumTiers; i++ {
		if got, want := stats.TierNames[i], multialign.Tier(i).String(); got != want {
			t.Errorf("TierNames[%d] = %q, want %q", i, got, want)
		}
	}
}
