// Package multialign implements the coarse-grained SIMD-style alignment
// scheme of Section 4.1 of the paper: instead of vectorising one matrix,
// it computes four (or eight) *neighbouring* alignment matrices
// concurrently — the matrices of splits r0, r0+1, ..., which differ only
// by a few rows at the bottom and columns at the left and share the
// top-right corner of Figure 4's rectangle diagram.
//
// Corresponding entries of the group's matrices align the same residue
// pair, so one exchange-matrix lookup serves all lanes, and the entries
// are interleaved in memory exactly as in Figure 7 (lane i of word c is
// matrix i's entry in column c). The lane arithmetic comes from package
// swar, this reproduction's substitute for SSE/SSE2 (see DESIGN.md);
// on amd64 an AVX2 assembly row kernel computes eight exact int32 lanes
// per vector register.
//
// SWAR lane scores saturate at SatLimit; those kernels report saturation
// so the caller can fall back to the scalar int32 kernel for that group.
package multialign

import (
	"fmt"

	"repro/internal/align"
	"repro/internal/swar"
	"repro/internal/triangle"
)

const (
	// Bias shifts exchange values into unsigned lane range. Exchange
	// matrices must have |score| < Bias (all embedded matrices do).
	Bias = 256
	// SatLimit is the lane saturation cap. AddBiasClamp0's precondition
	// (lane + exchange + bias < 2^15) holds: 16000 + 511 < 32768.
	SatLimit = 16000
)

// CheckParams reports whether the scoring model fits the lane arithmetic
// preconditions of the group kernels.
func CheckParams(p align.Params) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if hi, lo := p.Exch.MaxScore(), p.Exch.MinScore(); hi >= Bias || lo <= -Bias {
		return fmt.Errorf("multialign: exchange scores [%d,%d] exceed lane bias %d", lo, hi, Bias)
	}
	if p.Gap.Open+p.Gap.Ext >= SatLimit {
		return fmt.Errorf("multialign: gap penalties %d+%d too large for lane arithmetic",
			p.Gap.Open, p.Gap.Ext)
	}
	return nil
}

// Group is the result of a group alignment: one bottom row per lane.
// Bottoms[i] is the bottom row of split r0+i, or nil when that split is
// out of range (r0+i > len(s)-1). Saturated reports that at least one
// lane hit SatLimit somewhere, in which case the rows are unreliable and
// the caller must recompute with the scalar kernel.
//
// Tier and Rerun are observability fields set by ScoreGroupAuto: Tier is
// the kernel tier that produced the rows (after any saturation
// fallback), and Rerun reports that the int16 kernel saturated and the
// group was transparently recomputed in exact int32 — the rows are
// correct either way.
type Group struct {
	R0        int
	Bottoms   [][]int32
	Saturated bool
	Tier      Tier
	Rerun     bool
}

// ScoreGroup computes the bottom rows of `lanes` neighbouring splits
// (4 or 8) starting at split r0, against override triangle tri (which
// may be nil). s is the full sequence; split r aligns s[:r] with s[r:].
// Hot paths should reuse a Scratch ((*Scratch).ScoreGroup): the
// package-level function allocates fresh buffers on every call.
func ScoreGroup(p align.Params, s []byte, r0, lanes int, tri *triangle.Triangle) (*Group, error) {
	return new(Scratch).ScoreGroup(p, s, r0, lanes, tri)
}

// keepLanes returns a word keeping lanes 0..k-1 (0xFFFF) and zeroing the
// rest. k below 0 keeps nothing; k of 4 or more keeps everything.
func keepLanes(k int) uint64 {
	if k <= 0 {
		return 0
	}
	if k >= 4 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(16*k)) - 1
}

// swar4 is the 4-lane kernel body (one uint64 word per column). bots
// holds the destination bottom rows; reports saturation.
func (sc *Scratch) swar4(p align.Params, s []byte, r0 int, tri *triangle.Triangle, bots [][]int32) bool {
	m := len(s)
	n := m - r0 // shared column count; column c is global position j = r0+c

	prev := growU64(&sc.wPrev, n+1)
	cur := growU64(&sc.wCur, n+1)
	maxY := growU64(&sc.wMaxY, n+1)
	for i := range prev {
		prev[i] = 0 // zero boundary row; biased-zero lane start for maxY
		maxY[i] = 0
	}
	cur[0] = 0 // becomes prev[0] (the boundary column word) after swap

	openW := swar.Splat(uint16(p.Gap.Open))
	extW := swar.Splat(uint16(p.Gap.Ext))
	biasW := swar.Splat(Bias)
	satW := swar.Splat(SatLimit)
	var satAcc uint64

	yMax := r0 + 3
	if yMax > m-1 {
		yMax = m - 1
	}
	for y := 1; y <= yMax; y++ {
		row := p.Exch.Row(s[y-1])
		// lanes whose matrix has no row y (split r0+i < y) are done;
		// keep lanes i with r0+i >= y, i.e. i >= y-r0.
		rowKeep := ^uint64(0)
		if y > r0 {
			rowKeep = ^keepLanes(y - r0) // zero lanes 0..y-r0-1
		}
		var maxX uint64
		base := 0
		masked := false
		if tri != nil {
			// global pair (y, r0+c) has triangle index base+c-1
			base = tri.RowOffset(y) + r0 - y
			masked = !tri.RowEmpty(base, n)
		}
		for c := 1; c <= n; c++ {
			d := prev[c-1]
			e := uint16(int32(row[s[r0+c-1]]) + Bias)
			best := swar.Max(swar.Max(maxX, maxY[c]), d)
			v := swar.AddBiasClamp0(best, swar.Splat(e), biasW)
			if masked && tri.GetAt(base+c-1) {
				v = 0
			}
			// left-border correction: lane i's matrix starts at column
			// c = i+1, so at column c only lanes 0..c-1 exist.
			keep := rowKeep
			if c < 4 {
				keep &= keepLanes(c)
			}
			v &= keep
			satAcc |= swar.GEMask(v, satW)
			v = swar.Min(v, satW)
			cur[c] = v
			u := swar.SubSat(d, openW)
			maxX = swar.SubSat(swar.Max(u, maxX), extW)
			maxY[c] = swar.SubSat(swar.Max(u, maxY[c]), extW)
		}
		// capture the bottom row of the lane whose matrix ends here
		if k := y - r0; k >= 0 && k < 4 && k < len(bots) && bots[k] != nil {
			bottom := bots[k]
			for c := k + 1; c <= n; c++ {
				bottom[c-k-1] = int32(swar.Lane(cur[c], k))
			}
		}
		prev, cur = cur, prev
	}
	sc.wPrev, sc.wCur = prev, cur
	return satAcc != 0
}

// swar8 is the 8-lane kernel body: two words per column, covering
// splits r0..r0+7 (the SSE2 analogue).
func (sc *Scratch) swar8(p align.Params, s []byte, r0 int, tri *triangle.Triangle, bots [][]int32) bool {
	m := len(s)
	n := m - r0

	prev := growU64(&sc.wPrev, 2*(n+1))
	cur := growU64(&sc.wCur, 2*(n+1))
	maxY := growU64(&sc.wMaxY, 2*(n+1))
	for i := range prev {
		prev[i] = 0
		maxY[i] = 0
	}
	cur[0], cur[1] = 0, 0

	openW := swar.Splat(uint16(p.Gap.Open))
	extW := swar.Splat(uint16(p.Gap.Ext))
	biasW := swar.Splat(Bias)
	satW := swar.Splat(SatLimit)
	var satAcc uint64

	yMax := r0 + 7
	if yMax > m-1 {
		yMax = m - 1
	}
	for y := 1; y <= yMax; y++ {
		row := p.Exch.Row(s[y-1])
		// word 0 holds lanes 0..3 (splits r0..r0+3), word 1 lanes 4..7
		rowKeep0, rowKeep1 := ^uint64(0), ^uint64(0)
		if y > r0 {
			done := y - r0 // lanes 0..done-1 are done
			rowKeep0 = ^keepLanes(done)
			rowKeep1 = ^keepLanes(done - 4)
		}
		var maxX0, maxX1 uint64
		base := 0
		masked := false
		if tri != nil {
			base = tri.RowOffset(y) + r0 - y
			masked = !tri.RowEmpty(base, n)
		}
		for c := 1; c <= n; c++ {
			d0, d1 := prev[2*(c-1)], prev[2*(c-1)+1]
			eW := swar.Splat(uint16(int32(row[s[r0+c-1]]) + Bias))
			best0 := swar.Max(swar.Max(maxX0, maxY[2*c]), d0)
			best1 := swar.Max(swar.Max(maxX1, maxY[2*c+1]), d1)
			v0 := swar.AddBiasClamp0(best0, eW, biasW)
			v1 := swar.AddBiasClamp0(best1, eW, biasW)
			if masked && tri.GetAt(base+c-1) {
				v0, v1 = 0, 0
			}
			keep0, keep1 := rowKeep0, rowKeep1
			if c < 8 {
				keep0 &= keepLanes(c)
				keep1 &= keepLanes(c - 4)
			}
			v0 &= keep0
			v1 &= keep1
			satAcc |= swar.GEMask(v0, satW) | swar.GEMask(v1, satW)
			v0 = swar.Min(v0, satW)
			v1 = swar.Min(v1, satW)
			cur[2*c], cur[2*c+1] = v0, v1
			u0 := swar.SubSat(d0, openW)
			u1 := swar.SubSat(d1, openW)
			maxX0 = swar.SubSat(swar.Max(u0, maxX0), extW)
			maxX1 = swar.SubSat(swar.Max(u1, maxX1), extW)
			maxY[2*c] = swar.SubSat(swar.Max(u0, maxY[2*c]), extW)
			maxY[2*c+1] = swar.SubSat(swar.Max(u1, maxY[2*c+1]), extW)
		}
		if k := y - r0; k >= 0 && k < 8 && k < len(bots) && bots[k] != nil {
			bottom := bots[k]
			word, lane := k/4, k%4
			for c := k + 1; c <= n; c++ {
				bottom[c-k-1] = int32(swar.Lane(cur[2*c+word], lane))
			}
		}
		prev, cur = cur, prev
	}
	sc.wPrev, sc.wCur = prev, cur
	return satAcc != 0
}
