#include "textflag.h"

// func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxArg+0(FP), AX
	MOVL ecxArg+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func rowAVX8(prev, cur, maxY, ex *int32, n int, open, ext int32, mx *int32)
//
// One matrix row over n columns of the 8-lane interleaved Gotoh
// recurrence, 8 exact int32 lanes per ymm register (Figure 7 layout,
// 32-byte column stride). Per column c:
//
//	d    = prev block of column c-1        (diagonal predecessors)
//	v    = max(0, max(d, mx, maxY[c]) + e) (Figure 3 cell)
//	cur[c]  = v
//	g    = d - open
//	mx      = max(g, mx) - ext             (horizontal gap chain)
//	maxY[c] = max(g, maxY[c]) - ext        (vertical gap chains)
//
// The caller guarantees the segment contains no overridden or
// left-border columns, so the loop is branch-free.
TEXT ·rowAVX8(SB), NOSPLIT, $0-56
	MOVQ prev+0(FP), SI
	MOVQ cur+8(FP), DI
	MOVQ maxY+16(FP), BX
	MOVQ ex+24(FP), DX
	MOVQ n+32(FP), CX
	MOVQ mx+48(FP), AX

	MOVL         open+40(FP), R8
	MOVQ         R8, X5
	VPBROADCASTD X5, Y5 // gap-open penalty in all lanes
	MOVL         ext+44(FP), R9
	MOVQ         R9, X6
	VPBROADCASTD X6, Y6 // gap-extension penalty in all lanes
	VPXOR        Y7, Y7, Y7     // zero, for the clamp
	VMOVDQU      (AX), Y4       // mx carry-in

loop:
	VMOVDQU      (SI), Y0 // d = prev column block
	VMOVDQU      (BX), Y1 // maxY[c]
	VPMAXSD      Y1, Y4, Y2
	VPMAXSD      Y0, Y2, Y2 // max(d, mx, maxY)
	VPBROADCASTD (DX), Y3   // exchange value e
	VPADDD       Y3, Y2, Y2
	VPMAXSD      Y7, Y2, Y2 // clamp at zero
	VMOVDQU      Y2, (DI)   // cur[c] = v
	VPSUBD       Y5, Y0, Y0 // g = d - open
	VPMAXSD      Y0, Y4, Y4
	VPSUBD       Y6, Y4, Y4 // mx = max(g, mx) - ext
	VPMAXSD      Y0, Y1, Y1
	VPSUBD       Y6, Y1, Y1
	VMOVDQU      Y1, (BX)   // maxY[c] = max(g, maxY) - ext
	ADDQ         $32, SI
	ADDQ         $32, DI
	ADDQ         $32, BX
	ADDQ         $4, DX
	DECQ         CX
	JNZ          loop

	VMOVDQU Y4, (AX) // mx carry-out
	VZEROUPPER
	RET
