#include "textflag.h"

// func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxArg+0(FP), AX
	MOVL ecxArg+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func rowAVX8(prev, cur, maxY, ex *int32, n int, open, ext int32, mx *int32)
//
// One matrix row over n columns of the 8-lane interleaved Gotoh
// recurrence, 8 exact int32 lanes per ymm register (Figure 7 layout,
// 32-byte column stride). Per column c:
//
//	d    = prev block of column c-1        (diagonal predecessors)
//	v    = max(0, max(d, mx, maxY[c]) + e) (Figure 3 cell)
//	cur[c]  = v
//	g    = d - open
//	mx      = max(g, mx) - ext             (horizontal gap chain)
//	maxY[c] = max(g, maxY[c]) - ext        (vertical gap chains)
//
// The caller guarantees the segment contains no overridden or
// left-border columns, so the loop is branch-free.
TEXT ·rowAVX8(SB), NOSPLIT, $0-56
	MOVQ prev+0(FP), SI
	MOVQ cur+8(FP), DI
	MOVQ maxY+16(FP), BX
	MOVQ ex+24(FP), DX
	MOVQ n+32(FP), CX
	MOVQ mx+48(FP), AX
	TESTQ CX, CX
	JZ   done

	MOVL         open+40(FP), R8
	MOVQ         R8, X5
	VPBROADCASTD X5, Y5 // gap-open penalty in all lanes
	MOVL         ext+44(FP), R9
	MOVQ         R9, X6
	VPBROADCASTD X6, Y6 // gap-extension penalty in all lanes
	VPXOR        Y7, Y7, Y7     // zero, for the clamp
	VMOVDQU      (AX), Y4       // mx carry-in

loop:
	VMOVDQU      (SI), Y0 // d = prev column block
	VMOVDQU      (BX), Y1 // maxY[c]
	VPMAXSD      Y1, Y4, Y2
	VPMAXSD      Y0, Y2, Y2 // max(d, mx, maxY)
	VPBROADCASTD (DX), Y3   // exchange value e
	VPADDD       Y3, Y2, Y2
	VPMAXSD      Y7, Y2, Y2 // clamp at zero
	VMOVDQU      Y2, (DI)   // cur[c] = v
	VPSUBD       Y5, Y0, Y0 // g = d - open
	VPMAXSD      Y0, Y4, Y4
	VPSUBD       Y6, Y4, Y4 // mx = max(g, mx) - ext
	VPMAXSD      Y0, Y1, Y1
	VPSUBD       Y6, Y1, Y1
	VMOVDQU      Y1, (BX)   // maxY[c] = max(g, maxY) - ext
	ADDQ         $32, SI
	ADDQ         $32, DI
	ADDQ         $32, BX
	ADDQ         $4, DX
	DECQ         CX
	JNZ          loop

	VMOVDQU Y4, (AX) // mx carry-out

done:
	VZEROUPPER
	RET

// func rowAVX16(prev, cur, maxY, ex *int16, n int, open, ext int16, mx *int16, sat *uint32)
//
// One matrix row over n columns of the 16-lane interleaved Gotoh
// recurrence, 16 saturating int16 lanes per ymm register (same 32-byte
// column stride as rowAVX8, twice the matrices). The recurrence is the
// one rowAVX8 computes, in saturating int16 arithmetic:
//
//	d    = prev block of column c-1
//	v    = max(0, adds(max(d, mx, maxY[c]), e))
//	cur[c]  = v
//	g    = subs(d, open)
//	mx      = subs(max(g, mx), ext)
//	maxY[c] = subs(max(g, maxY[c]), ext)
//
// Any v reaching satLimit16 ORs lane bits into the sticky accumulator;
// its byte mask is OR-merged into *sat on exit, and a nonzero *sat
// obliges the caller to discard the rows and re-run the group in int32.
// Unflagged rows are exact: values stay below satLimit16, one exchange
// add (|e| < Bias) cannot reach 32767, so the saturating ops never clip
// (the only exception, the negInf16 initials decaying toward -32768,
// always lose the maxima to real values and cannot surface).
//
// The caller guarantees the segment contains no overridden columns.
// Left-border columns may be included: their gap chains depend only on
// prev, so the Go driver just re-zeroes the affected lane cells after
// the row.
// The column body is macro-expanded at four fixed offsets per iteration
// (indexed addressing, one pointer bump per quad) because the loop is
// issue-bound: per-column pointer/counter overhead is a third of the
// straight-line instruction count.
#define COL16SAT(off, eoff) \
	VMOVDQU      off(SI), Y0     \ // d = prev column block
	VMOVDQU      off(BX), Y1     \ // maxY[c]
	VPMAXSW      Y1, Y4, Y2      \
	VPMAXSW      Y0, Y2, Y2      \ // max(d, mx, maxY)
	VPBROADCASTW eoff(DX), Y3    \ // exchange value e
	VPADDSW      Y3, Y2, Y2      \ // saturating add
	VPMAXSW      Y7, Y2, Y2      \ // clamp at zero
	VMOVDQU      Y2, off(DI)     \ // cur[c] = v
	VPCMPGTW     Y8, Y2, Y9      \ // v >= satLimit16 per lane
	VPOR         Y9, Y10, Y10    \
	VPSUBSW      Y5, Y0, Y0      \ // g = d - open
	VPMAXSW      Y0, Y4, Y4      \
	VPSUBSW      Y6, Y4, Y4      \ // mx = max(g, mx) - ext
	VPMAXSW      Y0, Y1, Y1      \
	VPSUBSW      Y6, Y1, Y1      \
	VMOVDQU      Y1, off(BX)     // maxY[c] = max(g, maxY) - ext

TEXT ·rowAVX16(SB), NOSPLIT, $0-64
	MOVQ prev+0(FP), SI
	MOVQ cur+8(FP), DI
	MOVQ maxY+16(FP), BX
	MOVQ ex+24(FP), DX
	MOVQ n+32(FP), CX
	MOVQ mx+48(FP), AX
	MOVQ sat+56(FP), R11
	TESTQ CX, CX
	JZ   done16

	MOVWLZX      open+40(FP), R8
	MOVQ         R8, X5
	VPBROADCASTW X5, Y5 // gap-open penalty in all lanes
	MOVWLZX      ext+42(FP), R9
	MOVQ         R9, X6
	VPBROADCASTW X6, Y6             // gap-extension penalty in all lanes
	VPXOR        Y7, Y7, Y7         // zero, for the clamp
	MOVL         $0x7CFF7CFF, R10   // satLimit16-1 = 31999 word pair
	MOVQ         R10, X8
	VPBROADCASTD X8, Y8             // saturation threshold in all lanes
	VPXOR        Y10, Y10, Y10      // sticky saturation accumulator
	VMOVDQU      (AX), Y4           // mx carry-in

	MOVQ CX, R8
	SHRQ $2, R8 // quad count
	ANDQ $3, CX // tail columns
	TESTQ R8, R8
	JZ   tail16

quad16:
	COL16SAT(0, 0)
	COL16SAT(32, 2)
	COL16SAT(64, 4)
	COL16SAT(96, 6)
	ADDQ $128, SI
	ADDQ $128, DI
	ADDQ $128, BX
	ADDQ $8, DX
	DECQ R8
	JNZ  quad16

	TESTQ CX, CX
	JZ   exit16

tail16:
	COL16SAT(0, 0)
	ADDQ $32, SI
	ADDQ $32, DI
	ADDQ $32, BX
	ADDQ $2, DX
	DECQ CX
	JNZ  tail16

exit16:
	VMOVDQU   Y4, (AX)  // mx carry-out
	VPMOVMSKB Y10, R8   // byte mask of saturated lanes
	MOVL      (R11), R9
	ORL       R8, R9
	MOVL      R9, (R11) // *sat |= mask

done16:
	VZEROUPPER
	RET

// func rowAVX16Fast(prev, cur, maxY, ex *int16, n int, open, ext int16, mx *int16)
//
// rowAVX16 without saturation tracking, for groups where Int16Proven
// established that no cell can reach satLimit16: the compare+accumulate
// pair per column is dropped, which is the common case for realistic
// scoring models (BLOSUM62 proves clean up to ~2900-residue matrices).
// func rowAVX16Pair(a, maxY, exY, exY1 *int16, n int, open, ext int16, mxY, mxY1, d, v *int16, sat *uint32)
//
// Two matrix rows (y, y+1) in one column sweep, 16 saturating int16
// lanes. This is the throughput kernel: the single-row kernels are
// memory-bound on the prev/cur row traffic once the interleaved rows
// spill out of L1, and pairing halves it — row y's cells live only in
// registers (Y13 carries v_y(c-1), the diagonal input of row y+1) and
// are never stored, while row y+1 is written in place over row y-1 in
// the same buffer `a` (each column loads the old value before storing,
// so the y-1 row keeps serving as row y's diagonal input).
//
// Per column c:
//
//	vY      = max(0, adds(max(dY, mxY, maxY[c]), eY[c]))    // in-register only
//	gY      = subs(dY, open); mxY = subs(max(gY, mxY), ext)
//	maxY'   = subs(max(gY, maxY[c]), ext)                   // after row y
//	dY      = a[c]                                          // old row y-1 value
//	vY1     = max(0, adds(max(vYprev, mxY1, maxY'), eY1[c]))
//	a[c]    = vY1                                           // row y+1 in place
//	gY1     = subs(vYprev, open); mxY1 = subs(max(gY1, mxY1), ext)
//	maxY[c] = subs(max(gY1, maxY'), ext)                    // after row y+1
//	vYprev  = vY
//
// d and v point at 16-lane carry blocks: the row y-1 value and row y
// value of the column preceding the span (the caller computes the first
// columns with the single-row kernel — the left-border lanes need
// fixups the pair sweep cannot apply, because row y's cells feed row
// y+1 in-register). Saturation of either row's cells accumulates into
// *sat exactly as in rowAVX16. The caller guarantees the span contains
// no overridden or left-border columns.
#define COLPAIRSAT(off, eoff) \
	VMOVDQU      off(BX), Y1      \ // maxY[c]
	VPMAXSW      Y1, Y4, Y2       \
	VPMAXSW      Y11, Y2, Y2      \ // max(dY, mxY, maxY)
	VPBROADCASTW eoff(DX), Y3     \ // eY
	VPADDSW      Y3, Y2, Y2       \
	VPMAXSW      Y7, Y2, Y2       \ // vY (in-register only)
	VPCMPGTW     Y8, Y2, Y9       \
	VPOR         Y9, Y10, Y10     \
	VPSUBSW      Y5, Y11, Y0      \ // gY = dY - open
	VPMAXSW      Y0, Y4, Y4       \
	VPSUBSW      Y6, Y4, Y4       \ // mxY
	VPMAXSW      Y0, Y1, Y1       \
	VPSUBSW      Y6, Y1, Y1       \ // maxY after row y
	VMOVDQU      off(SI), Y11     \ // next dY = row y-1 at c, before overwrite
	VPMAXSW      Y1, Y12, Y0      \
	VPMAXSW      Y13, Y0, Y0      \ // max(vYprev, mxY1, maxY')
	VPBROADCASTW eoff(R12), Y3    \ // eY1
	VPADDSW      Y3, Y0, Y0       \
	VPMAXSW      Y7, Y0, Y0       \ // vY1
	VMOVDQU      Y0, off(SI)      \ // row y+1 over row y-1
	VPCMPGTW     Y8, Y0, Y9       \
	VPOR         Y9, Y10, Y10     \
	VPSUBSW      Y5, Y13, Y3      \ // gY1 = vYprev - open
	VPMAXSW      Y3, Y12, Y12     \
	VPSUBSW      Y6, Y12, Y12     \ // mxY1
	VPMAXSW      Y3, Y1, Y1       \
	VPSUBSW      Y6, Y1, Y1       \ // maxY after row y+1
	VMOVDQU      Y1, off(BX)      \
	VMOVDQA      Y2, Y13          // vY becomes row y+1's next diagonal

TEXT ·rowAVX16Pair(SB), NOSPLIT, $0-88
	MOVQ a+0(FP), SI
	MOVQ maxY+8(FP), BX
	MOVQ exY+16(FP), DX
	MOVQ exY1+24(FP), R12
	MOVQ n+32(FP), CX
	MOVQ sat+80(FP), R11
	TESTQ CX, CX
	JZ   donep

	MOVWLZX      open+40(FP), R8
	MOVQ         R8, X5
	VPBROADCASTW X5, Y5
	MOVWLZX      ext+42(FP), R9
	MOVQ         R9, X6
	VPBROADCASTW X6, Y6
	VPXOR        Y7, Y7, Y7
	MOVL         $0x7CFF7CFF, R10 // satLimit16-1 word pair
	MOVQ         R10, X8
	VPBROADCASTD X8, Y8
	VPXOR        Y10, Y10, Y10
	MOVQ         mxY+48(FP), AX
	VMOVDQU      (AX), Y4  // mxY carry-in
	MOVQ         mxY1+56(FP), R8
	VMOVDQU      (R8), Y12 // mxY1 carry-in
	MOVQ         d+64(FP), R8
	VMOVDQU      (R8), Y11 // dY carry-in (row y-1 at span start - 1)
	MOVQ         v+72(FP), R8
	VMOVDQU      (R8), Y13 // vY carry-in (row y at span start - 1)

	MOVQ CX, R8
	SHRQ $1, R8 // column pairs
	ANDQ $1, CX
	TESTQ R8, R8
	JZ   tailp

loopp:
	COLPAIRSAT(0, 0)
	COLPAIRSAT(32, 2)
	ADDQ $64, SI
	ADDQ $64, BX
	ADDQ $4, DX
	ADDQ $4, R12
	DECQ R8
	JNZ  loopp

	TESTQ CX, CX
	JZ   exitp

tailp:
	COLPAIRSAT(0, 0)
	ADDQ $32, SI
	ADDQ $32, BX
	ADDQ $2, DX
	ADDQ $2, R12
	DECQ CX
	JNZ  tailp

exitp:
	VMOVDQU   Y4, (AX) // mxY carry-out
	MOVQ      mxY1+56(FP), R8
	VMOVDQU   Y12, (R8) // mxY1 carry-out
	VPMOVMSKB Y10, R8
	MOVL      (R11), R9
	ORL       R8, R9
	MOVL      R9, (R11) // *sat |= mask

donep:
	VZEROUPPER
	RET

// COLPAIRSAT without the saturation compare+accumulate pairs, for
// provably clean groups.
#define COLPAIR(off, eoff) \
	VMOVDQU      off(BX), Y1      \
	VPMAXSW      Y1, Y4, Y2       \
	VPMAXSW      Y11, Y2, Y2      \
	VPBROADCASTW eoff(DX), Y3     \
	VPADDSW      Y3, Y2, Y2       \
	VPMAXSW      Y7, Y2, Y2       \
	VPSUBSW      Y5, Y11, Y0      \
	VPMAXSW      Y0, Y4, Y4       \
	VPSUBSW      Y6, Y4, Y4       \
	VPMAXSW      Y0, Y1, Y1       \
	VPSUBSW      Y6, Y1, Y1       \
	VMOVDQU      off(SI), Y11     \
	VPMAXSW      Y1, Y12, Y0      \
	VPMAXSW      Y13, Y0, Y0      \
	VPBROADCASTW eoff(R12), Y3    \
	VPADDSW      Y3, Y0, Y0       \
	VPMAXSW      Y7, Y0, Y0       \
	VMOVDQU      Y0, off(SI)      \
	VPSUBSW      Y5, Y13, Y3      \
	VPMAXSW      Y3, Y12, Y12     \
	VPSUBSW      Y6, Y12, Y12     \
	VPMAXSW      Y3, Y1, Y1       \
	VPSUBSW      Y6, Y1, Y1       \
	VMOVDQU      Y1, off(BX)      \
	VMOVDQA      Y2, Y13

// func rowAVX16PairFast(a, maxY, exY, exY1 *int16, n int, open, ext int16, mxY, mxY1, d, v *int16)
TEXT ·rowAVX16PairFast(SB), NOSPLIT, $0-80
	MOVQ a+0(FP), SI
	MOVQ maxY+8(FP), BX
	MOVQ exY+16(FP), DX
	MOVQ exY1+24(FP), R12
	MOVQ n+32(FP), CX
	TESTQ CX, CX
	JZ   donepf

	MOVWLZX      open+40(FP), R8
	MOVQ         R8, X5
	VPBROADCASTW X5, Y5
	MOVWLZX      ext+42(FP), R9
	MOVQ         R9, X6
	VPBROADCASTW X6, Y6
	VPXOR        Y7, Y7, Y7
	MOVQ         mxY+48(FP), AX
	VMOVDQU      (AX), Y4
	MOVQ         mxY1+56(FP), R8
	VMOVDQU      (R8), Y12
	MOVQ         d+64(FP), R8
	VMOVDQU      (R8), Y11
	MOVQ         v+72(FP), R8
	VMOVDQU      (R8), Y13

	MOVQ CX, R8
	SHRQ $1, R8
	ANDQ $1, CX
	TESTQ R8, R8
	JZ   tailpf

looppf:
	COLPAIR(0, 0)
	COLPAIR(32, 2)
	ADDQ $64, SI
	ADDQ $64, BX
	ADDQ $4, DX
	ADDQ $4, R12
	DECQ R8
	JNZ  looppf

	TESTQ CX, CX
	JZ   exitpf

tailpf:
	COLPAIR(0, 0)
	ADDQ $32, SI
	ADDQ $32, BX
	ADDQ $2, DX
	ADDQ $2, R12
	DECQ CX
	JNZ  tailpf

exitpf:
	VMOVDQU Y4, (AX)
	MOVQ    mxY1+56(FP), R8
	VMOVDQU Y12, (R8)

donepf:
	VZEROUPPER
	RET

// COL16SAT without the saturation compare+accumulate pair.
#define COL16(off, eoff) \
	VMOVDQU      off(SI), Y0     \
	VMOVDQU      off(BX), Y1     \
	VPMAXSW      Y1, Y4, Y2      \
	VPMAXSW      Y0, Y2, Y2      \
	VPBROADCASTW eoff(DX), Y3    \
	VPADDSW      Y3, Y2, Y2      \
	VPMAXSW      Y7, Y2, Y2      \
	VMOVDQU      Y2, off(DI)     \
	VPSUBSW      Y5, Y0, Y0      \
	VPMAXSW      Y0, Y4, Y4      \
	VPSUBSW      Y6, Y4, Y4      \
	VPMAXSW      Y0, Y1, Y1      \
	VPSUBSW      Y6, Y1, Y1      \
	VMOVDQU      Y1, off(BX)

TEXT ·rowAVX16Fast(SB), NOSPLIT, $0-56
	MOVQ prev+0(FP), SI
	MOVQ cur+8(FP), DI
	MOVQ maxY+16(FP), BX
	MOVQ ex+24(FP), DX
	MOVQ n+32(FP), CX
	MOVQ mx+48(FP), AX
	TESTQ CX, CX
	JZ   donef

	MOVWLZX      open+40(FP), R8
	MOVQ         R8, X5
	VPBROADCASTW X5, Y5 // gap-open penalty in all lanes
	MOVWLZX      ext+42(FP), R9
	MOVQ         R9, X6
	VPBROADCASTW X6, Y6     // gap-extension penalty in all lanes
	VPXOR        Y7, Y7, Y7 // zero, for the clamp
	VMOVDQU      (AX), Y4   // mx carry-in

	MOVQ CX, R8
	SHRQ $2, R8 // quad count
	ANDQ $3, CX // tail columns
	TESTQ R8, R8
	JZ   tailf

quadf:
	COL16(0, 0)
	COL16(32, 2)
	COL16(64, 4)
	COL16(96, 6)
	ADDQ $128, SI
	ADDQ $128, DI
	ADDQ $128, BX
	ADDQ $8, DX
	DECQ R8
	JNZ  quadf

	TESTQ CX, CX
	JZ   exitf

tailf:
	COL16(0, 0)
	ADDQ $32, SI
	ADDQ $32, DI
	ADDQ $32, BX
	ADDQ $2, DX
	DECQ CX
	JNZ  tailf

exitf:
	VMOVDQU Y4, (AX) // mx carry-out

donef:
	VZEROUPPER
	RET
