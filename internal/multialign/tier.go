package multialign

import (
	"fmt"
	"os"
	"sync/atomic"

	"repro/internal/align"
)

// Tier identifies one rung of the group-kernel ladder, ordered from the
// universal scalar fallback to the widest vector kernel. Wider tiers are
// strictly faster per core but carry preconditions: the int32 tier needs
// AVX2, and the int16 tier additionally needs the scoring model to fit
// 16-bit lane arithmetic (see int16ParamsOK). Every tier produces
// bit-identical bottom rows — the int16 tier guarantees it by detecting
// saturation and transparently re-running the group in int32.
type Tier uint8

const (
	// TierScalar is the pure-Go path: exact int32 lanes in ILP blocks of
	// four. Always available.
	TierScalar Tier = iota
	// TierInt32x8 is the AVX2 row kernel with 8 exact int32 lanes per
	// vector register (rowAVX8).
	TierInt32x8
	// TierInt16x16 is the AVX2 row kernel with 16 saturating int16 lanes
	// per vector register (rowAVX16): twice the cells per instruction,
	// guarded by a sticky saturation flag and an int32 re-run.
	TierInt16x16
)

// String names the tier as it appears in benchjson documents, metrics
// and the REPRO_KERNEL_TIER override.
func (t Tier) String() string {
	switch t {
	case TierInt16x16:
		return "int16x16"
	case TierInt32x8:
		return "int32x8"
	default:
		return "scalar"
	}
}

// ParseTier is the inverse of Tier.String.
func ParseTier(name string) (Tier, error) {
	switch name {
	case "scalar":
		return TierScalar, nil
	case "int32x8":
		return TierInt32x8, nil
	case "int16x16":
		return TierInt16x16, nil
	}
	return TierScalar, fmt.Errorf("multialign: unknown kernel tier %q (have scalar, int32x8, int16x16)", name)
}

// detectedTier is the widest tier the CPU supports. Both vector tiers
// need only AVX2; AVX-512 is detected (DetectedAVX512) but not yet used
// for kernel selection — the 32-lane widening is a future tier.
var detectedTier = func() Tier {
	if hasAVX2 {
		return TierInt16x16
	}
	return TierScalar
}()

// DetectedTier reports the widest kernel tier the CPU supports,
// independent of any override.
func DetectedTier() Tier { return detectedTier }

// DetectedAVX512 reports whether the CPU and OS support the AVX-512
// foundation + BW instructions the future 32-lane tier would need. It is
// diagnostic only: no kernel uses AVX-512 yet.
func DetectedAVX512() bool { return hasAVX512 }

// tierOverride holds a runtime-settable tier cap: -1 means "no override,
// use the detected tier". It replaces the old init-time REPRO_NO_AVX2
// gate so tests and benchmarks can flip tiers in-process; both
// REPRO_NO_AVX2 (compat: forces scalar) and REPRO_KERNEL_TIER (named
// tier) are still honored at init.
var tierOverride atomic.Int32

func init() {
	tierOverride.Store(-1)
	if v := os.Getenv("REPRO_KERNEL_TIER"); v != "" {
		if t, err := ParseTier(v); err == nil && t <= detectedTier {
			tierOverride.Store(int32(t))
		}
	}
	if os.Getenv("REPRO_NO_AVX2") != "" {
		tierOverride.Store(int32(TierScalar))
	}
}

// SetKernelTier overrides the active kernel tier at runtime. The empty
// string or "auto" clears the override; otherwise the name must parse
// (scalar, int32x8, int16x16) and the tier must be supported by this
// CPU. Safe for concurrent use with running kernels: each group call
// reads the override once.
func SetKernelTier(name string) error {
	if name == "" || name == "auto" {
		tierOverride.Store(-1)
		return nil
	}
	t, err := ParseTier(name)
	if err != nil {
		return err
	}
	if t > detectedTier {
		return fmt.Errorf("multialign: kernel tier %s not supported on this CPU (detected %s)", t, detectedTier)
	}
	tierOverride.Store(int32(t))
	return nil
}

// ActiveTier returns the tier group kernels currently select from: the
// runtime override when set, the detected tier otherwise. The effective
// tier of a particular call can be narrower (see TierFor).
func ActiveTier() Tier {
	if o := tierOverride.Load(); o >= 0 {
		return Tier(o)
	}
	return detectedTier
}

// int16 lane-arithmetic bounds. satLimit16 is the sticky-saturation
// threshold: any cell value reaching it sets the overflow flag and
// triggers the exact int32 re-run. It leaves headroom so that, by
// induction, unflagged lanes are always exact: inputs below the limit
// plus an exchange value (|score| < Bias) stay below the int16
// saturation point 32767, so VPADDSW never actually clips an unflagged
// value. negInf16 is the 16-bit analogue of the scalar kernel's
// -infinity; maxGapInt16 bounds open+ext so real gap-chain values
// (>= -(open+ext)) stay strictly above it.
const (
	satLimit16  = 32000
	negInf16    = -(1 << 14)
	maxGapInt16 = 1 << 13
)

// int16ParamsOK reports whether the scoring model fits 16-bit lane
// arithmetic: exchange values within the lane bias (so one saturating
// add cannot jump from below satLimit16 past 32767) and gap penalties
// small enough that negInf16 stays below every reachable gap-chain
// value.
func int16ParamsOK(p align.Params) bool {
	if p.Exch == nil {
		return false
	}
	if hi, lo := p.Exch.MaxScore(), p.Exch.MinScore(); hi >= Bias || lo <= -Bias {
		return false
	}
	return p.Gap.Open >= 0 && p.Gap.Ext >= 0 && p.Gap.Open+p.Gap.Ext < maxGapInt16
}

// TierFor resolves the effective kernel tier for one group call: the
// active tier, narrowed by what the group shape and scoring model
// support. The int16 tier serves only full 16-lane groups whose
// parameters fit 16-bit arithmetic; the int32 vector kernel needs groups
// of at least 8 lanes.
func TierFor(p align.Params, m, lanes int) Tier {
	t := ActiveTier()
	if t >= TierInt16x16 && (lanes < 16 || !int16ParamsOK(p)) {
		t = TierInt32x8
	}
	if t >= TierInt32x8 && lanes < 8 {
		t = TierScalar
	}
	return t
}

// Int16Proven reports whether the int16 kernel provably cannot saturate
// on this group, so the driver can skip saturation tracking entirely
// (the proven row kernel drops the compare+accumulate per column). A
// local-alignment cell at (y, x) is at most MaxScore*min(y, x): every
// path to it makes at most min(y, x) diagonal steps, each worth at most
// MaxScore, and gaps only subtract. The kernel computes rows up to
// yMax = min(r0+lanes-1, m-1) over n = m-r0 columns — dead lanes keep
// evolving past their last captured row, so the bound must cover the
// full computed region, not just live cells.
func Int16Proven(p align.Params, m, r0, lanes int) bool {
	if !int16ParamsOK(p) {
		return false
	}
	hi := int64(p.Exch.MaxScore())
	if hi <= 0 {
		return true // cells are clamped at 0 and nothing scores above it
	}
	rows := r0 + lanes - 1
	if rows > m-1 {
		rows = m - 1
	}
	dim := m - r0
	if rows < dim {
		dim = rows
	}
	return hi*int64(dim) < satLimit16
}
