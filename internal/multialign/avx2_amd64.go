//go:build amd64

package multialign

import (
	"os"

	"repro/internal/align"
	"repro/internal/triangle"
)

// cpuid and xgetbv are implemented in avx2_amd64.s.
func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)
func xgetbv() (eax, edx uint32)

// rowAVX8 (avx2_amd64.s) advances one matrix row over n clean columns of
// the 8-lane interleaved Gotoh recurrence: for each column it computes
// v = clamp0(max(d, mx, maxY) + e), stores it, and updates the running
// gap maxima mx and maxY. prev points at the lane block of the column
// before the segment's first, cur and maxY at the segment's first
// column, ex at its exchange value. mx is the 8-lane horizontal-gap
// running maximum, carried in and out.
//
//go:noescape
func rowAVX8(prev, cur, maxY, ex *int32, n int, open, ext int32, mx *int32)

// hasAVX2 gates the vector kernel. REPRO_NO_AVX2 forces the pure-Go ILP
// path, for differential testing and for benchmarking the fallback.
var hasAVX2 = detectAVX2() && os.Getenv("REPRO_NO_AVX2") == ""

// detectAVX2 performs the standard three-step check: AVX + OSXSAVE in
// CPUID.1:ECX, XMM+YMM state enabled in XCR0, AVX2 in CPUID.7.0:EBX.
func detectAVX2() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c, _ := cpuid(1, 0)
	const osxsaveAndAVX = 1<<27 | 1<<28
	if c&osxsaveAndAVX != osxsaveAndAVX {
		return false
	}
	if lo, _ := xgetbv(); lo&6 != 6 {
		return false
	}
	_, b, _, _ := cpuid(7, 0)
	return b&(1<<5) != 0
}

// avx8 is the 8-lane AVX2 kernel body: exact int32 lanes, 8 per ymm
// register, interleaved per column as in Figure 7. The assembly row
// kernel handles clean column runs; Go handles the left-border prologue
// (columns 1..7, where not-yet-started lanes are forced to zero) and
// overridden columns, which are found with triangle.NextSet so masked
// rows still run mostly in assembly. bots as in ilp4.
func (sc *Scratch) avx8(p align.Params, s []byte, r0 int, tri *triangle.Triangle, bots [][]int32) {
	m := len(s)
	n := m - r0 // column c is global position j = r0+c

	prev := growI32(&sc.prev, 8*(n+1))
	cur := growI32(&sc.cur, 8*(n+1))
	maxY := growI32(&sc.maxY, 8*(n+1))
	for i := range prev {
		prev[i] = 0 // zero boundary row (arena may hold stale values)
		maxY[i] = negInf
	}
	for i := 0; i < 8; i++ {
		cur[i] = 0 // becomes the boundary column block after the swap
	}

	// Query profile (Farrar-style): prof[a][c] = Score(a, s[r0+c-1]),
	// built lazily for the distinct residues of s[:yMax] so each row is
	// one slice lookup instead of n exchange lookups.
	maxCode := 0
	for _, b := range s {
		if int(b) > maxCode {
			maxCode = int(b)
		}
	}
	alpha := maxCode + 1
	prof := growI32(&sc.prof, alpha*(n+1))
	built := growBool(&sc.profBuilt, alpha)
	for i := range built {
		built[i] = false
	}
	suf := s[r0:]

	open, ext := p.Gap.Open, p.Gap.Ext
	yMax := r0 + 7
	if yMax > m-1 {
		yMax = m - 1
	}
	var mx [8]int32
	for y := 1; y <= yMax; y++ {
		ch := s[y-1]
		ex := prof[int(ch)*(n+1) : (int(ch)+1)*(n+1)]
		if !built[ch] {
			built[ch] = true
			row := p.Exch.Row(ch)
			for c := 1; c <= n; c++ {
				ex[c] = int32(row[suf[c-1]])
			}
		}
		for i := range mx {
			mx[i] = negInf
		}
		base := 0
		masked := false
		if tri != nil {
			base = tri.RowOffset(y) + r0 - y
			masked = !tri.RowEmpty(base, n)
		}
		// Left-border prologue: lane k's matrix starts at column k+1, so
		// at columns 1..7 lanes k >= c are forced to zero.
		pro := 7
		if n < pro {
			pro = n
		}
		for c := 1; c <= pro; c++ {
			over := masked && tri.GetAt(base+c-1)
			col8(prev, cur, maxY, &mx, c, ex[c], open, ext, over, c)
		}
		// Main loop: clean runs in assembly, overridden columns in Go.
		c := pro + 1
		for c <= n {
			stop := n + 1 // first overridden column at or after c
			if masked {
				if idx := tri.NextSet(base+c-1, base+n); idx >= 0 {
					stop = idx - base + 1
				}
			}
			if seg := stop - c; seg > 0 {
				rowAVX8(&prev[8*(c-1)], &cur[8*c], &maxY[8*c], &ex[c], seg, open, ext, &mx[0])
				c = stop
			}
			if c <= n {
				col8(prev, cur, maxY, &mx, c, ex[c], open, ext, true, 8)
				c++
			}
		}
		// capture the bottom row of the lane whose matrix ends here
		if k := y - r0; k >= 0 && k < 8 && k < len(bots) && bots[k] != nil {
			bottom := bots[k]
			for c := k + 1; c <= n; c++ {
				bottom[c-k-1] = cur[8*c+k]
			}
		}
		prev, cur = cur, prev
	}
	sc.prev, sc.cur = prev, cur
}

// col8 is the Go fallback for one column of the 8-lane recurrence:
// left-border prologue columns (zeroFrom < 8 zeroes lanes k >= zeroFrom)
// and overridden columns (over forces all lane values to zero while the
// gap maxima still advance, matching the scalar masked kernel).
func col8(prev, cur, maxY []int32, mx *[8]int32, c int, e, open, ext int32, over bool, zeroFrom int) {
	o := 8 * c
	d := prev[o-8 : o : o]
	my := maxY[o : o+8 : o+8]
	cc := cur[o : o+8 : o+8]
	for k := 0; k < 8; k++ {
		var v int32
		if !over && k < zeroFrom {
			v = cellFast(d[k], mx[k], my[k], e)
		}
		cc[k] = v
		g := d[k] - open
		mx[k] = maxG(g, mx[k]) - ext
		my[k] = maxG(g, my[k]) - ext
	}
}
