//go:build amd64

package multialign

import (
	"repro/internal/align"
	"repro/internal/triangle"
)

// cpuid and xgetbv are implemented in avx2_amd64.s.
func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)
func xgetbv() (eax, edx uint32)

// rowAVX8 (avx2_amd64.s) advances one matrix row over n clean columns of
// the 8-lane interleaved Gotoh recurrence: for each column it computes
// v = clamp0(max(d, mx, maxY) + e), stores it, and updates the running
// gap maxima mx and maxY. prev points at the lane block of the column
// before the segment's first, cur and maxY at the segment's first
// column, ex at its exchange value. mx is the 8-lane horizontal-gap
// running maximum, carried in and out.
//
//go:noescape
func rowAVX8(prev, cur, maxY, ex *int32, n int, open, ext int32, mx *int32)

// rowAVX16 is the 16-lane saturating int16 analogue of rowAVX8; lanes
// reaching satLimit16 OR their byte mask into *sat. rowAVX16Fast is the
// same loop without saturation tracking, for groups Int16Proven cleared.
//
//go:noescape
func rowAVX16(prev, cur, maxY, ex *int16, n int, open, ext int16, mx *int16, sat *uint32)

//go:noescape
func rowAVX16Fast(prev, cur, maxY, ex *int16, n int, open, ext int16, mx *int16)

// rowAVX16Pair advances TWO matrix rows (y, y+1) in one column sweep:
// row y's cells stay in registers and feed row y+1's diagonal, and row
// y+1 is written in place over row y-1 in buffer a, halving the row
// traffic that bounds the single-row kernel. d and v are 16-lane carry
// blocks holding the row y-1 and row y values of the column before the
// span. rowAVX16PairFast drops saturation tracking.
//
//go:noescape
func rowAVX16Pair(a, maxY, exY, exY1 *int16, n int, open, ext int16, mxY, mxY1, d, v *int16, sat *uint32)

//go:noescape
func rowAVX16PairFast(a, maxY, exY, exY1 *int16, n int, open, ext int16, mxY, mxY1, d, v *int16)

// hasAVX2 gates the vector tiers. Detection is pure: runtime tier
// selection (tier.go) decides what actually runs, and honors the
// REPRO_NO_AVX2 / REPRO_KERNEL_TIER environment overrides at init.
var hasAVX2 = detectAVX2()

// hasAVX512 reports AVX-512 F+BW support for the stubbed future tier.
var hasAVX512 = detectAVX512()

// detectAVX2 performs the standard three-step check: AVX + OSXSAVE in
// CPUID.1:ECX, XMM+YMM state enabled in XCR0, AVX2 in CPUID.7.0:EBX.
func detectAVX2() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c, _ := cpuid(1, 0)
	const osxsaveAndAVX = 1<<27 | 1<<28
	if c&osxsaveAndAVX != osxsaveAndAVX {
		return false
	}
	if lo, _ := xgetbv(); lo&6 != 6 {
		return false
	}
	_, b, _, _ := cpuid(7, 0)
	return b&(1<<5) != 0
}

// detectAVX512 checks for the AVX-512 Foundation + BW extensions a
// 32-lane int16 kernel would need: opmask/zmm state enabled in XCR0
// (bits 5-7) and AVX512F (bit 16) + AVX512BW (bit 30) in CPUID.7.0:EBX.
// Diagnostic only until that tier exists.
func detectAVX512() bool {
	if !detectAVX2() {
		return false
	}
	if lo, _ := xgetbv(); lo&0xe6 != 0xe6 {
		return false
	}
	_, b, _, _ := cpuid(7, 0)
	const fAndBW = 1<<16 | 1<<30
	return b&fAndBW == fAndBW
}

// avx8 is the 8-lane AVX2 kernel body: exact int32 lanes, 8 per ymm
// register, interleaved per column as in Figure 7. The assembly row
// kernel handles clean column runs; Go handles the left-border prologue
// (columns 1..7, where not-yet-started lanes are forced to zero) and
// overridden columns, which are found with triangle.NextSet so masked
// rows still run mostly in assembly. bots as in ilp4.
func (sc *Scratch) avx8(p align.Params, s []byte, r0 int, tri *triangle.Triangle, bots [][]int32) {
	m := len(s)
	n := m - r0 // column c is global position j = r0+c

	prev := growI32(&sc.prev, 8*(n+1))
	cur := growI32(&sc.cur, 8*(n+1))
	maxY := growI32(&sc.maxY, 8*(n+1))
	for i := range prev {
		prev[i] = 0 // zero boundary row (arena may hold stale values)
		maxY[i] = negInf
	}
	for i := 0; i < 8; i++ {
		cur[i] = 0 // becomes the boundary column block after the swap
	}

	// Query profile (Farrar-style): prof[a][c] = Score(a, s[r0+c-1]),
	// built lazily for the distinct residues of s[:yMax] so each row is
	// one slice lookup instead of n exchange lookups.
	maxCode := 0
	for _, b := range s {
		if int(b) > maxCode {
			maxCode = int(b)
		}
	}
	alpha := maxCode + 1
	prof := growI32(&sc.prof, alpha*(n+1))
	built := growBool(&sc.profBuilt, alpha)
	for i := range built {
		built[i] = false
	}
	suf := s[r0:]

	open, ext := p.Gap.Open, p.Gap.Ext
	yMax := r0 + 7
	if yMax > m-1 {
		yMax = m - 1
	}
	var mx [8]int32
	for y := 1; y <= yMax; y++ {
		ch := s[y-1]
		ex := prof[int(ch)*(n+1) : (int(ch)+1)*(n+1)]
		if !built[ch] {
			built[ch] = true
			row := p.Exch.Row(ch)
			for c := 1; c <= n; c++ {
				ex[c] = int32(row[suf[c-1]])
			}
		}
		for i := range mx {
			mx[i] = negInf
		}
		base := 0
		masked := false
		if tri != nil {
			base = tri.RowOffset(y) + r0 - y
			masked = !tri.RowEmpty(base, n)
		}
		// Left-border prologue: lane k's matrix starts at column k+1, so
		// at columns 1..7 lanes k >= c are forced to zero.
		pro := 7
		if n < pro {
			pro = n
		}
		for c := 1; c <= pro; c++ {
			over := masked && tri.GetAt(base+c-1)
			col8(prev, cur, maxY, &mx, c, ex[c], open, ext, over, c)
		}
		// Main loop: clean runs in assembly, overridden columns in Go.
		c := pro + 1
		for c <= n {
			stop := n + 1 // first overridden column at or after c
			if masked {
				if idx := tri.NextSet(base+c-1, base+n); idx >= 0 {
					stop = idx - base + 1
				}
			}
			if seg := stop - c; seg > 0 {
				rowAVX8(&prev[8*(c-1)], &cur[8*c], &maxY[8*c], &ex[c], seg, open, ext, &mx[0])
				c = stop
			}
			if c <= n {
				col8(prev, cur, maxY, &mx, c, ex[c], open, ext, true, 8)
				c++
			}
		}
		// capture the bottom row of the lane whose matrix ends here
		if k := y - r0; k >= 0 && k < 8 && k < len(bots) && bots[k] != nil {
			bottom := bots[k]
			for c := k + 1; c <= n; c++ {
				bottom[c-k-1] = cur[8*c+k]
			}
		}
		prev, cur = cur, prev
	}
	sc.prev, sc.cur = prev, cur
}

// avx16 is the 16-lane int16 kernel body: 16 saturating int16 lanes per
// ymm register, interleaved per column exactly as avx8 (same 32-byte
// column stride, twice the matrices). Structure mirrors avx8: assembly
// for clean column runs, Go (col16) for the left-border prologue and
// overridden columns. It reports whether any lane's cell value reached
// satLimit16, in which case the bottom rows are unreliable and the
// caller must re-run the group through the exact int32 kernel. When
// proven is true (Int16Proven), the no-tracking row kernel runs and the
// return value is always false.
//
// Unflagged results are bit-identical to the int32 kernels: all values
// stay below satLimit16, so the saturating adds and subtracts behave
// exactly (the negInf16 initials decay toward -32768 under saturating
// subtraction, but like the scalar kernel's -2^29 they always lose the
// maxima to real values — see tier.go for the bounds).
func (sc *Scratch) avx16(p align.Params, s []byte, r0 int, tri *triangle.Triangle, bots [][]int32, proven bool) bool {
	m := len(s)
	n := m - r0 // column c is global position j = r0+c

	prev := growI16(&sc.prev16, 16*(n+1))
	cur := growI16(&sc.cur16, 16*(n+1))
	maxY := growI16(&sc.maxY16, 16*(n+1))
	for i := range prev {
		prev[i] = 0 // zero boundary row (arena may hold stale values)
		maxY[i] = negInf16
	}
	for i := 0; i < 16; i++ {
		cur[i] = 0 // becomes the boundary column block after the swap
	}

	// Query profile as in avx8, at int16 width (exchange rows already
	// are []int16, so building a row is a copy loop without widening).
	maxCode := 0
	for _, b := range s {
		if int(b) > maxCode {
			maxCode = int(b)
		}
	}
	alpha := maxCode + 1
	prof := growI16(&sc.prof16, alpha*(n+1))
	built := growBool(&sc.profBuilt, alpha)
	for i := range built {
		built[i] = false
	}
	suf := s[r0:]

	open, ext := int16(p.Gap.Open), int16(p.Gap.Ext)
	yMax := r0 + 15
	if yMax > m-1 {
		yMax = m - 1
	}
	profRow := func(ch byte) []int16 {
		ex := prof[int(ch)*(n+1) : (int(ch)+1)*(n+1)]
		if !built[ch] {
			built[ch] = true
			row := p.Exch.Row(ch)
			for c := 1; c <= n; c++ {
				ex[c] = row[suf[c-1]]
			}
		}
		return ex
	}
	rowBase := func(y int) (int, bool) {
		if tri == nil {
			return 0, false
		}
		base := tri.RowOffset(y) + r0 - y
		return base, !tri.RowEmpty(base, n)
	}
	// Left-border fixup: lane k's matrix starts at column k+1, so at
	// columns 1..15 lanes k >= c are boundary cells, forced to zero.
	// The row kernels compute junk there (their gap chains stay exact,
	// reading only the already-fixed previous row), so each row's buffer
	// is repaired before anything reads it.
	pro := 15
	if n < pro {
		pro = n
	}
	fixupBorder := func(buf []int16) {
		for c := 1; c <= pro; c++ {
			b := buf[16*c : 16*c+16 : 16*c+16]
			for k := c; k < 16; k++ {
				b[k] = 0
			}
		}
	}
	var mx, mx1, dc, vc [16]int16
	var sat uint32
	y := 1
	for y <= yMax {
		ex := profRow(s[y-1])
		base, masked := rowBase(y)
		// Pair rows whenever neither row is masked or captured (capture
		// rows are r0..r0+15, so everything below r0 qualifies): row y's
		// prefix and row y+1's prefix run in the single-row kernel so the
		// left border can be repaired before it feeds forward, then the
		// pair kernel sweeps both rows over the remaining columns.
		if y+1 <= yMax && y+1 < r0 && n >= 17 && !masked {
			if _, masked1 := rowBase(y + 1); !masked1 {
				ex1 := profRow(s[y])
				for i := range mx {
					mx[i] = negInf16
					mx1[i] = negInf16
				}
				const pre = 16
				if proven {
					rowAVX16Fast(&prev[0], &cur[16], &maxY[16], &ex[1], pre, open, ext, &mx[0])
				} else {
					rowAVX16(&prev[0], &cur[16], &maxY[16], &ex[1], pre, open, ext, &mx[0], &sat)
				}
				fixupBorder(cur)
				copy(dc[:], prev[16*pre:16*pre+16]) // row y-1 at column pre, before overwrite
				copy(vc[:], cur[16*pre:16*pre+16])  // row y at column pre
				if proven {
					rowAVX16Fast(&cur[0], &prev[16], &maxY[16], &ex1[1], pre, open, ext, &mx1[0])
				} else {
					rowAVX16(&cur[0], &prev[16], &maxY[16], &ex1[1], pre, open, ext, &mx1[0], &sat)
				}
				fixupBorder(prev)
				if proven {
					rowAVX16PairFast(&prev[16*(pre+1)], &maxY[16*(pre+1)], &ex[pre+1], &ex1[pre+1],
						n-pre, open, ext, &mx[0], &mx1[0], &dc[0], &vc[0])
				} else {
					rowAVX16Pair(&prev[16*(pre+1)], &maxY[16*(pre+1)], &ex[pre+1], &ex1[pre+1],
						n-pre, open, ext, &mx[0], &mx1[0], &dc[0], &vc[0], &sat)
				}
				if sat != 0 {
					return true
				}
				// prev now holds row y+1; cur is scratch again — no swap.
				y += 2
				continue
			}
		}
		for i := range mx {
			mx[i] = negInf16
		}
		// Clean runs in assembly, overridden columns in Go. Unlike avx8
		// there is no Go prologue: the assembly covers the left-border
		// columns too, because the gap chains read only prev (already
		// border-corrected last row) — only the stored cell values of
		// lanes k >= c at columns c <= 15 come out wrong, and they are
		// re-zeroed below before anything reads them. (They cannot trip
		// the saturation flag either: max(d=0, gaps<0) + e < Bias.)
		c := 1
		for c <= n {
			stop := n + 1 // first overridden column at or after c
			if masked {
				if idx := tri.NextSet(base+c-1, base+n); idx >= 0 {
					stop = idx - base + 1
				}
			}
			if seg := stop - c; seg > 0 {
				if proven {
					rowAVX16Fast(&prev[16*(c-1)], &cur[16*c], &maxY[16*c], &ex[c], seg, open, ext, &mx[0])
				} else {
					rowAVX16(&prev[16*(c-1)], &cur[16*c], &maxY[16*c], &ex[c], seg, open, ext, &mx[0], &sat)
				}
				c = stop
			}
			if c <= n {
				col16over(prev, cur, maxY, &mx, c, open, ext)
				c++
			}
		}
		fixupBorder(cur)
		if sat != 0 {
			// Saturated rows will be discarded wholesale; stop early so
			// the int32 re-run pays for the group only once.
			return true
		}
		// capture the bottom row of the lane whose matrix ends here
		if k := y - r0; k >= 0 && k < 16 && k < len(bots) && bots[k] != nil {
			bottom := bots[k]
			for c := k + 1; c <= n; c++ {
				bottom[c-k-1] = int32(cur[16*c+k])
			}
		}
		prev, cur = cur, prev
		y++
	}
	sc.prev16, sc.cur16 = prev, cur
	return false
}

// col16over advances one overridden column of the 16-lane recurrence:
// every lane's cell value is forced to zero while the gap chains advance
// exactly as in the assembly. Arithmetic is int32 with a saturating
// narrowing store, so it matches the VPSUBSW lanes bit for bit even once
// a chain has clipped toward -32768.
func col16over(prev, cur, maxY []int16, mx *[16]int16, c int, open, ext int16) {
	o := 16 * c
	d := prev[o-16 : o : o]
	my := maxY[o : o+16 : o+16]
	cc := cur[o : o+16 : o+16]
	for k := 0; k < 16; k++ {
		cc[k] = 0
		g := int32(d[k]) - int32(open)
		mv := int32(mx[k])
		if g > mv {
			mv = g
		}
		mx[k] = sat16(mv - int32(ext))
		yv := int32(my[k])
		if g > yv {
			yv = g
		}
		my[k] = sat16(yv - int32(ext))
	}
}

// sat16 narrows with saturation, matching the vector lanes.
func sat16(v int32) int16 {
	if v > 32767 {
		return 32767
	}
	if v < -32768 {
		return -32768
	}
	return int16(v)
}

// col8 is the Go fallback for one column of the 8-lane recurrence:
// left-border prologue columns (zeroFrom < 8 zeroes lanes k >= zeroFrom)
// and overridden columns (over forces all lane values to zero while the
// gap maxima still advance, matching the scalar masked kernel).
func col8(prev, cur, maxY []int32, mx *[8]int32, c int, e, open, ext int32, over bool, zeroFrom int) {
	o := 8 * c
	d := prev[o-8 : o : o]
	my := maxY[o : o+8 : o+8]
	cc := cur[o : o+8 : o+8]
	for k := 0; k < 8; k++ {
		var v int32
		if !over && k < zeroFrom {
			v = cellFast(d[k], mx[k], my[k], e)
		}
		cc[k] = v
		g := d[k] - open
		mx[k] = maxG(g, mx[k]) - ext
		my[k] = maxG(g, my[k]) - ext
	}
}
