//go:build !amd64

package multialign

import (
	"repro/internal/align"
	"repro/internal/triangle"
)

// hasAVX2 is always false off amd64; ScoreGroupAuto uses the ILP blocks.
const hasAVX2 = false

// hasAVX512 is always false off amd64.
const hasAVX512 = false

// avx8 is unreachable when hasAVX2 is false; fall back defensively so
// the symbol exists on every platform.
func (sc *Scratch) avx8(p align.Params, s []byte, r0 int, tri *triangle.Triangle, bots [][]int32) {
	for block := 0; block < 8; block += 4 {
		if r0+block > len(s)-1 {
			break
		}
		sc.ilp4Striped(p, s, r0+block, tri, 0, bots[block:])
	}
}

// avx16 is likewise unreachable off amd64 (TierFor never resolves to the
// int16 tier when hasAVX2 is false); fall back defensively and report no
// saturation since the ILP lanes are exact.
func (sc *Scratch) avx16(p align.Params, s []byte, r0 int, tri *triangle.Triangle, bots [][]int32, proven bool) bool {
	for block := 0; block < 16; block += 4 {
		if r0+block > len(s)-1 {
			break
		}
		sc.ilp4Striped(p, s, r0+block, tri, 0, bots[block:])
	}
	return false
}
