//go:build !amd64

package multialign

import (
	"repro/internal/align"
	"repro/internal/triangle"
)

// hasAVX2 is always false off amd64; ScoreGroupAuto uses the ILP blocks.
const hasAVX2 = false

// avx8 is unreachable when hasAVX2 is false; fall back defensively so
// the symbol exists on every platform.
func (sc *Scratch) avx8(p align.Params, s []byte, r0 int, tri *triangle.Triangle, bots [][]int32) {
	for block := 0; block < 8; block += 4 {
		if r0+block > len(s)-1 {
			break
		}
		sc.ilp4Striped(p, s, r0+block, tri, 0, bots[block:])
	}
}
