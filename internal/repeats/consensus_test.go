package repeats

import (
	"testing"

	"repro/internal/seq"
)

func TestConsensusExactTandem(t *testing.T) {
	// three exact copies: consensus is the unit, conservation 1.0
	q := seq.PaperATGC() // ATGCATGCATGC
	fam := Family{Copies: []Segment{{1, 4}, {5, 8}, {9, 12}}}
	cons, err := DeriveConsensus(q.Codes, fam)
	if err != nil {
		t.Fatal(err)
	}
	if got := seq.DNA.Decode(cons.Codes); got != "ATGC" {
		t.Errorf("consensus = %q, want ATGC", got)
	}
	for col, v := range cons.Conservation {
		if v != 1.0 {
			t.Errorf("column %d conservation = %f, want 1.0", col, v)
		}
	}
	if cons.MeanConservation() != 1.0 {
		t.Errorf("mean conservation = %f", cons.MeanConservation())
	}
}

func TestConsensusMajorityVote(t *testing.T) {
	// copies: ACG, ACG, ATG -> consensus ACG; column 2 conservation 2/3
	s, err := seq.DNA.Encode("ACGACGATG")
	if err != nil {
		t.Fatal(err)
	}
	fam := Family{Copies: []Segment{{1, 3}, {4, 6}, {7, 9}}}
	cons, err := DeriveConsensus(s, fam)
	if err != nil {
		t.Fatal(err)
	}
	if got := seq.DNA.Decode(cons.Codes); got != "ACG" {
		t.Errorf("consensus = %q, want ACG", got)
	}
	if cons.Conservation[1] < 0.66 || cons.Conservation[1] > 0.67 {
		t.Errorf("column 2 conservation = %f, want 2/3", cons.Conservation[1])
	}
}

func TestConsensusShortCopy(t *testing.T) {
	// a truncated final copy must not break column counting
	s, _ := seq.DNA.Encode("ACGTACGTAC")
	fam := Family{Copies: []Segment{{1, 4}, {5, 8}, {9, 10}}}
	cons, err := DeriveConsensus(s, fam)
	if err != nil {
		t.Fatal(err)
	}
	if got := seq.DNA.Decode(cons.Codes); got != "ACGT" {
		t.Errorf("consensus = %q, want ACGT", got)
	}
	// columns 3 and 4 only have two contributing copies, still conserved
	if cons.Conservation[2] != 1.0 || cons.Conservation[3] != 1.0 {
		t.Errorf("truncated-copy conservation = %v", cons.Conservation)
	}
}

func TestConsensusDivergedTitinDomains(t *testing.T) {
	// end-to-end: delineate a diverged tandem and check the consensus is
	// closer to the copies than the copies are to each other on average
	spec := seq.TandemSpec{
		Alpha: seq.Protein, UnitLen: 30, Copies: 6, FlankLen: 10,
		Profile: seq.MutationProfile{SubstRate: 0.2}, Seed: 5,
	}
	q := seq.Tandem(spec)
	fam := Family{}
	for c := 0; c < spec.Copies; c++ {
		start := spec.FlankLen + c*spec.UnitLen + 1
		fam.Copies = append(fam.Copies, Segment{start, start + spec.UnitLen - 1})
	}
	cons, err := DeriveConsensus(q.Codes, fam)
	if err != nil {
		t.Fatal(err)
	}
	if len(cons.Codes) != spec.UnitLen {
		t.Fatalf("consensus length %d, want %d", len(cons.Codes), spec.UnitLen)
	}
	// with 20% substitution the majority column should usually recover
	// the ancestral residue: expect high mean conservation
	if mc := cons.MeanConservation(); mc < 0.7 {
		t.Errorf("mean conservation = %f, expected > 0.7", mc)
	}
}

func TestConsensusErrors(t *testing.T) {
	s, _ := seq.DNA.Encode("ACGT")
	if _, err := DeriveConsensus(s, Family{Copies: []Segment{{1, 2}}}); err == nil {
		t.Error("single copy accepted")
	}
	if _, err := DeriveConsensus(s, Family{Copies: []Segment{{1, 2}, {3, 9}}}); err == nil {
		t.Error("out-of-range copy accepted")
	}
}
