// Package repeats implements the delineation stage of the Repro method:
// turning the nonoverlapping top alignments of package topalign into
// repeat families with explicit copy boundaries. (The paper computes the
// top alignments — its Section 6 names delineation improvements as
// future work; this package provides the baseline interval-graph
// delineation the method's output feeds.)
//
// Each top alignment locally aligns two segments of the sequence — two
// copies of some repeat. Segments from different top alignments that
// overlap substantially on the sequence describe the same copy; segments
// connected by an alignment belong to the same family. Families are the
// connected components of that graph, and a family's copies are the
// merged overlap-components of its segments.
package repeats

import (
	"fmt"
	"sort"

	"repro/internal/topalign"
)

// Segment is an inclusive positional interval [Start, End], 1-based.
type Segment struct {
	Start, End int
}

// Len returns the number of positions covered.
func (s Segment) Len() int { return s.End - s.Start + 1 }

// overlap returns the number of shared positions of two segments.
func (s Segment) overlap(o Segment) int {
	lo, hi := max(s.Start, o.Start), min(s.End, o.End)
	if hi < lo {
		return 0
	}
	return hi - lo + 1
}

// Family is one repeat family: its copies in sequence order and the
// top alignments supporting it.
type Family struct {
	Copies  []Segment
	Support int   // number of contributing top alignments
	Score   int64 // summed alignment scores
}

// UnitLen estimates the family's repeat unit length (median copy
// length).
func (f Family) UnitLen() int {
	if len(f.Copies) == 0 {
		return 0
	}
	lens := make([]int, len(f.Copies))
	for i, c := range f.Copies {
		lens[i] = c.Len()
	}
	sort.Ints(lens)
	return lens[len(lens)/2]
}

// Options tunes delineation.
type Options struct {
	// MinPairs drops top alignments with fewer matched pairs (too weak
	// to delineate anything). Default 3.
	MinPairs int
	// MinOverlapFrac is the fraction of the shorter segment two
	// segments must share to be the same copy. Default 0.5.
	MinOverlapFrac float64
	// KeepRawCopies disables tandem re-segmentation (see Delineate).
	KeepRawCopies bool
	// MinPeriod is the smallest repeat period re-segmentation will
	// accept. Default 3.
	MinPeriod int
}

func (o Options) withDefaults() Options {
	if o.MinPairs <= 0 {
		o.MinPairs = 3
	}
	if o.MinOverlapFrac <= 0 || o.MinOverlapFrac > 1 {
		o.MinOverlapFrac = 0.5
	}
	if o.MinPeriod <= 0 {
		o.MinPeriod = 3
	}
	return o
}

// Delineate derives repeat families from top alignments over a sequence
// of length m. Families are returned sorted by descending score; copies
// within a family by start position.
func Delineate(m int, tops []topalign.TopAlignment, opt Options) ([]Family, error) {
	opt = opt.withDefaults()
	type seg struct {
		Segment
		top int // index into kept tops
	}
	var segs []seg
	var kept []topalign.TopAlignment
	for _, top := range tops {
		if len(top.Pairs) < opt.MinPairs {
			continue
		}
		si := Segment{Start: top.Pairs[0].I, End: top.Pairs[len(top.Pairs)-1].I}
		sj := Segment{Start: top.Pairs[0].J, End: top.Pairs[len(top.Pairs)-1].J}
		if si.Start < 1 || sj.End > m {
			return nil, fmt.Errorf("repeats: top alignment %d has pairs outside sequence length %d", top.Index, m)
		}
		idx := len(kept)
		kept = append(kept, top)
		segs = append(segs, seg{Segment: si, top: idx}, seg{Segment: sj, top: idx})
	}
	if len(segs) == 0 {
		return nil, nil
	}

	// Union-find with two edge kinds: overlap (same copy) and alignment
	// (same family). Family components use both; copy components only
	// overlap edges.
	n := len(segs)
	family := newUF(n)
	copyUF := newUF(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			ov := segs[i].overlap(segs[j].Segment)
			if ov == 0 {
				continue
			}
			shorter := min(segs[i].Len(), segs[j].Len())
			if float64(ov) >= opt.MinOverlapFrac*float64(shorter) {
				family.union(i, j)
				copyUF.union(i, j)
			}
		}
	}
	// the two segments of one alignment are the same family
	for i := 0; i < n; i += 2 {
		family.union(i, i+1)
	}

	// assemble: family root -> copy root -> merged segment
	type copyAcc struct{ s Segment }
	famCopies := map[int]map[int]*copyAcc{}
	famTops := map[int]map[int]bool{}
	for i, sg := range segs {
		f := family.find(i)
		c := copyUF.find(i)
		if famCopies[f] == nil {
			famCopies[f] = map[int]*copyAcc{}
			famTops[f] = map[int]bool{}
		}
		famTops[f][sg.top] = true
		if acc := famCopies[f][c]; acc == nil {
			famCopies[f][c] = &copyAcc{s: sg.Segment}
		} else {
			acc.s.Start = min(acc.s.Start, sg.Start)
			acc.s.End = max(acc.s.End, sg.End)
		}
	}

	var out []Family
	for f, copies := range famCopies {
		fam := Family{Support: len(famTops[f])}
		for _, acc := range copies {
			fam.Copies = append(fam.Copies, acc.s)
		}
		sort.Slice(fam.Copies, func(a, b int) bool {
			if fam.Copies[a].Start != fam.Copies[b].Start {
				return fam.Copies[a].Start < fam.Copies[b].Start
			}
			return fam.Copies[a].End < fam.Copies[b].End
		})
		for t := range famTops[f] {
			fam.Score += int64(kept[t].Score)
		}
		if !opt.KeepRawCopies {
			resegmentTandem(&fam, famTops[f], kept, opt)
		}
		out = append(out, fam)
	}
	// Full tie-break chain: out was assembled from a map range, so any
	// comparator tie would surface that random order to callers.
	sort.Slice(out, func(a, b int) bool {
		if out[a].Score != out[b].Score {
			return out[a].Score > out[b].Score
		}
		if out[a].Copies[0].Start != out[b].Copies[0].Start {
			return out[a].Copies[0].Start < out[b].Copies[0].Start
		}
		if out[a].Copies[0].End != out[b].Copies[0].End {
			return out[a].Copies[0].End < out[b].Copies[0].End
		}
		return len(out[a].Copies) < len(out[b].Copies)
	})
	return out, nil
}

// resegmentTandem splits a collapsed tandem family back into unit-sized
// copies. Top alignments of a tandem repeat exist at every multiple of
// the base period, so overlap clustering can merge several true copies
// into one long segment; the family's base period is recoverable as the
// smallest alignment lag (median J-I over a top's pairs). If the family
// tiles a contiguous region in fewer copies than the period implies, the
// region is cut at period boundaries — the "extra filtering to select
// the best repeat" the paper's Section 6 proposes for sequences like
// AACAACAACAAC.
func resegmentTandem(fam *Family, tops map[int]bool, kept []topalign.TopAlignment, opt Options) {
	if len(fam.Copies) == 0 {
		return
	}
	// Iterate supporting alignments in index order: map range order is
	// random per execution, and both the period min and the anchor
	// argmax below break ties by encounter order. A tie decided by map
	// order made Analyze return different family boundaries run to run
	// — fatal for the serving layer, whose shared cache and distributed
	// singleflight assume bit-identical recomputation.
	idxs := make([]int, 0, len(tops))
	for t := range tops {
		idxs = append(idxs, t)
	}
	sort.Ints(idxs)

	period := 0
	for _, t := range idxs {
		if lag := medianLag(kept[t].Pairs); period == 0 || lag < period {
			period = lag
		}
	}
	if period < opt.MinPeriod {
		return
	}
	region := Segment{Start: fam.Copies[0].Start, End: fam.Copies[len(fam.Copies)-1].End}
	want := region.Len() / period
	if want < 2 || len(fam.Copies) >= want {
		return // already segmented at (or finer than) the base period
	}
	// only a *contiguous* tandem region may be re-cut: interspersed
	// families span gaps that must not be fabricated into copies
	covered := 0
	for _, c := range fam.Copies {
		covered += c.Len()
	}
	if covered*10 < region.Len()*8 {
		return
	}
	// anchor the period grid at the strongest alignment's start, so
	// unit boundaries phase-align with the actual repeat rather than
	// with flank noise the weakest alignments dragged into the hull
	best := -1
	for _, t := range idxs {
		if best < 0 || kept[t].Score > kept[best].Score {
			best = t // ties keep the lowest index (strongest-first order of kept)
		}
	}
	anchor := kept[best].Pairs[0].I
	if anchor < region.Start || anchor > region.End {
		anchor = region.Start
	}
	gridStart := region.Start + (anchor-region.Start)%period

	var units []Segment
	for start := gridStart; start+period-1 <= region.End; start += period {
		units = append(units, Segment{Start: start, End: start + period - 1})
	}
	if len(units) == 0 {
		return
	}
	// fold the off-grid leading and trailing remainders into partial
	// units (>= half a period) or into their neighbours
	if lead := gridStart - region.Start; lead > 0 {
		if lead*2 >= period {
			units = append([]Segment{{Start: region.Start, End: gridStart - 1}}, units...)
		} else {
			units[0].Start = region.Start
		}
	}
	if rem := region.End - units[len(units)-1].End; rem > 0 {
		if rem*2 >= period {
			units = append(units, Segment{Start: units[len(units)-1].End + 1, End: region.End})
		} else {
			units[len(units)-1].End = region.End
		}
	}
	fam.Copies = units
}

// medianLag returns the median J-I offset of an alignment's pairs.
func medianLag(pairs []topalign.Pair) int {
	if len(pairs) == 0 {
		return 0
	}
	lags := make([]int, len(pairs))
	for i, p := range pairs {
		lags[i] = p.J - p.I
	}
	sort.Ints(lags)
	return lags[len(lags)/2]
}

// uf is a plain union-find.
type uf struct {
	parent []int
}

func newUF(n int) *uf {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return &uf{parent: p}
}

func (u *uf) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *uf) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		u.parent[ra] = rb
	}
}
