package repeats

import (
	"testing"

	"repro/internal/align"
	"repro/internal/scoring"
	"repro/internal/seq"
	"repro/internal/topalign"
)

var (
	dnaParams     = align.Params{Exch: scoring.PaperDNA, Gap: scoring.PaperGap}
	proteinParams = align.Params{Exch: scoring.BLOSUM62, Gap: scoring.DefaultProteinGap}
)

// The Figure 4 sequence ATGCATGCATGC must delineate into a single family
// of three ATGC copies.
func TestDelineateFigure4(t *testing.T) {
	s := seq.PaperATGC()
	res, err := topalign.Find(s.Codes, topalign.Config{Params: dnaParams, NumTops: 3})
	if err != nil {
		t.Fatal(err)
	}
	fams, err := Delineate(s.Len(), res.Tops, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 1 {
		t.Fatalf("got %d families, want 1", len(fams))
	}
	f := fams[0]
	want := []Segment{{1, 4}, {5, 8}, {9, 12}}
	if len(f.Copies) != 3 {
		t.Fatalf("got copies %v, want %v", f.Copies, want)
	}
	for i, c := range want {
		if f.Copies[i] != c {
			t.Errorf("copy %d = %v, want %v", i, f.Copies[i], c)
		}
	}
	if f.UnitLen() != 4 {
		t.Errorf("unit length = %d, want 4", f.UnitLen())
	}
	if f.Support != 3 {
		t.Errorf("support = %d, want 3", f.Support)
	}
}

// A clean protein tandem: copies must align with the generator's unit
// boundaries (allowing a couple of residues of slack at the edges, since
// local alignments trim non-matching ends).
func TestDelineateTandemProtein(t *testing.T) {
	spec := seq.TandemSpec{Alpha: seq.Protein, UnitLen: 40, Copies: 4, FlankLen: 15, Seed: 6}
	q := seq.Tandem(spec) // zero divergence: exact copies
	res, err := topalign.Find(q.Codes, topalign.Config{Params: proteinParams, NumTops: 8})
	if err != nil {
		t.Fatal(err)
	}
	// MinPairs 15 drops the weak trailing alignments that smear copy
	// boundaries into the flanks — the boundary vagueness the paper's
	// future-work section discusses.
	fams, err := Delineate(q.Len(), res.Tops, Options{MinPairs: 15})
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) == 0 {
		t.Fatal("no families found")
	}
	f := fams[0]
	// For an *exact* tandem the strongest alignment pairs the doubled
	// unit (the paper's future-work example: AACAACAACAAC delineates as
	// two AACAAC just as validly as four AAC), so expect copies whose
	// boundaries sit on unit-boundary multiples and that tile the
	// repeat region without overlap.
	if len(f.Copies) < 2 {
		t.Fatalf("found %d copies, want >= 2 (copies: %v)", len(f.Copies), f.Copies)
	}
	regionStart, regionEnd := spec.FlankLen+1, spec.FlankLen+spec.Copies*spec.UnitLen
	covered := 0
	for i, c := range f.Copies {
		if c.Start < regionStart-2 || c.End > regionEnd+2 {
			t.Errorf("copy %v outside repeat region [%d,%d]", c, regionStart, regionEnd)
		}
		if !nearUnitBoundary(c.Start-1, regionStart-1, spec.UnitLen, 2) ||
			!nearUnitBoundary(c.End, regionStart-1, spec.UnitLen, 2) {
			t.Errorf("copy %v boundaries not on unit multiples", c)
		}
		if i > 0 && c.Start <= f.Copies[i-1].End {
			t.Errorf("copies %v and %v overlap", f.Copies[i-1], c)
		}
		covered += c.Len()
	}
	if region := regionEnd - regionStart + 1; covered < region*8/10 {
		t.Errorf("copies cover %d of %d region positions", covered, regionEnd-regionStart+1)
	}
}

// nearUnitBoundary reports whether pos is within slack of base+k*unit
// for some integer k.
func nearUnitBoundary(pos, base, unit, slack int) bool {
	d := (pos - base) % unit
	if d < 0 {
		d += unit
	}
	return d <= slack || unit-d <= slack
}

// Two distinct repeat families in one sequence must not be merged.
func TestDelineateTwoFamilies(t *testing.T) {
	// Hand-built top alignments: family A at 1-10/11-20, family B at
	// 50-60/70-80 — disjoint, never overlapping.
	tops := []topalign.TopAlignment{
		{Index: 1, Score: 50, Pairs: pairRange(1, 11, 10)},
		{Index: 2, Score: 40, Pairs: pairRange(50, 70, 11)},
	}
	fams, err := Delineate(100, tops, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 2 {
		t.Fatalf("got %d families, want 2: %+v", len(fams), fams)
	}
	if fams[0].Score < fams[1].Score {
		t.Error("families not sorted by score")
	}
}

// Copies seen by several top alignments must merge, connecting their
// families transitively.
func TestDelineateTransitiveFamily(t *testing.T) {
	tops := []topalign.TopAlignment{
		{Index: 1, Score: 50, Pairs: pairRange(1, 21, 10)},  // copy A ~ copy B
		{Index: 2, Score: 45, Pairs: pairRange(22, 41, 10)}, // copy B ~ copy C
	}
	fams, err := Delineate(60, tops, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 1 {
		t.Fatalf("got %d families, want 1 (copy B overlaps both alignments)", len(fams))
	}
	if len(fams[0].Copies) != 3 {
		t.Errorf("got %d copies, want 3: %v", len(fams[0].Copies), fams[0].Copies)
	}
	if fams[0].Support != 2 {
		t.Errorf("support = %d, want 2", fams[0].Support)
	}
}

// Tandem re-segmentation: a diverged minisatellite must delineate into
// unit-sized copies whose boundaries phase-align with the generator's
// ground truth (the strongest alignment anchors the period grid).
func TestResegmentTandemMinisatellite(t *testing.T) {
	spec := seq.TandemSpec{
		Alpha:    seq.DNA,
		UnitLen:  11,
		Copies:   8,
		FlankLen: 60,
		Profile:  seq.MutationProfile{SubstRate: 0.08, IndelRate: 0.01, IndelExt: 0.3},
		Seed:     42,
	}
	q := seq.Tandem(spec)
	res, err := topalign.Find(q.Codes, topalign.Config{
		Params:  align.Params{Exch: scoring.DNAUnit, Gap: scoring.Gap{Open: 8, Ext: 2}},
		NumTops: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	fams, err := Delineate(q.Len(), res.Tops, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) == 0 {
		t.Fatal("no families")
	}
	f := fams[0]
	if got := f.UnitLen(); got < spec.UnitLen-2 || got > spec.UnitLen+2 {
		t.Errorf("unit length = %d, want ~%d", got, spec.UnitLen)
	}
	// count copies whose boundaries phase-align with ground truth
	// (61 + 11k), allowing the indel drift the generator introduces
	aligned := 0
	for _, c := range f.Copies {
		if nearUnitBoundary(c.Start-1, spec.FlankLen, spec.UnitLen, 2) {
			aligned++
		}
	}
	if aligned < 5 {
		t.Errorf("only %d of %d copies phase-align with the true unit grid: %v",
			aligned, len(f.Copies), f.Copies)
	}
}

// Re-segmentation must not fabricate copies across the gap of an
// interspersed (non-tandem) family.
func TestResegmentSkipsInterspersed(t *testing.T) {
	tops := []topalign.TopAlignment{
		{Index: 1, Score: 80, Pairs: pairRange(1, 81, 10)}, // copies [1-10] and [81-90]
	}
	fams, err := Delineate(100, tops, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 1 || len(fams[0].Copies) != 2 {
		t.Fatalf("families = %+v", fams)
	}
	if fams[0].Copies[0] != (Segment{1, 10}) || fams[0].Copies[1] != (Segment{81, 90}) {
		t.Errorf("interspersed copies modified: %v", fams[0].Copies)
	}
}

// KeepRawCopies must suppress re-segmentation.
func TestKeepRawCopies(t *testing.T) {
	// tandem at lag 10 spanning 1..40: collapsed raw copies
	tops := []topalign.TopAlignment{
		{Index: 1, Score: 60, Pairs: pairRange(1, 11, 30)}, // [1-30] ~ [11-40]
	}
	raw, err := Delineate(50, tops, Options{KeepRawCopies: true})
	if err != nil {
		t.Fatal(err)
	}
	cut, err := Delineate(50, tops, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(raw[0].Copies) >= len(cut[0].Copies) {
		t.Errorf("raw %d copies, resegmented %d: expected resegmentation to add copies",
			len(raw[0].Copies), len(cut[0].Copies))
	}
	if got := cut[0].UnitLen(); got != 10 {
		t.Errorf("resegmented unit = %d, want 10 (the alignment lag)", got)
	}
}

func TestDelineateFiltersWeakAlignments(t *testing.T) {
	tops := []topalign.TopAlignment{
		{Index: 1, Score: 4, Pairs: []topalign.Pair{{I: 1, J: 5}, {I: 2, J: 6}}}, // 2 pairs < MinPairs
	}
	fams, err := Delineate(10, tops, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 0 {
		t.Errorf("weak alignment produced %d families", len(fams))
	}
}

func TestDelineateValidation(t *testing.T) {
	tops := []topalign.TopAlignment{
		{Index: 1, Score: 9, Pairs: pairRange(1, 50, 5)}, // J reaches 54 > m
	}
	if _, err := Delineate(40, tops, Options{}); err == nil {
		t.Error("out-of-range pairs accepted")
	}
	fams, err := Delineate(40, nil, Options{})
	if err != nil || fams != nil {
		t.Errorf("empty input: %v, %v", fams, err)
	}
}

func TestSegmentHelpers(t *testing.T) {
	a := Segment{5, 10}
	if a.Len() != 6 {
		t.Errorf("Len = %d", a.Len())
	}
	if got := a.overlap(Segment{8, 20}); got != 3 {
		t.Errorf("overlap = %d, want 3", got)
	}
	if got := a.overlap(Segment{11, 20}); got != 0 {
		t.Errorf("disjoint overlap = %d, want 0", got)
	}
}

func TestUnionFind(t *testing.T) {
	u := newUF(5)
	u.union(0, 1)
	u.union(3, 4)
	if u.find(0) != u.find(1) || u.find(3) != u.find(4) {
		t.Error("union failed")
	}
	if u.find(0) == u.find(3) {
		t.Error("separate sets merged")
	}
	u.union(1, 3)
	if u.find(0) != u.find(4) {
		t.Error("transitive union failed")
	}
}

// pairRange builds n diagonal pairs (i0+k, j0+k).
func pairRange(i0, j0, n int) []topalign.Pair {
	out := make([]topalign.Pair, n)
	for k := 0; k < n; k++ {
		out[k] = topalign.Pair{I: i0 + k, J: j0 + k}
	}
	return out
}

// Delineation must be bit-identical across repeated runs. The
// resegmentation anchor used to be chosen by a strict-greater scan over
// a map range, so equal-score alignments tied and the winner — hence
// every unit boundary — followed Go's per-execution random map order.
// Two equal-score tops over one tandem region reproduce that tie.
func TestDelineateDeterministic(t *testing.T) {
	tops := []topalign.TopAlignment{
		// Same tandem region, two different lags, identical scores. The
		// anchor (strongest alignment's start) is ambiguous on purpose.
		{Index: 1, Score: 90, Pairs: pairRange(3, 13, 30)},
		{Index: 2, Score: 90, Pairs: pairRange(7, 27, 26)},
	}
	first, err := Delineate(60, tops, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 50; run++ {
		fams, err := Delineate(60, tops, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(fams) != len(first) {
			t.Fatalf("run %d: %d families, first run had %d", run, len(fams), len(first))
		}
		for i := range fams {
			if fams[i].Score != first[i].Score || fams[i].Support != first[i].Support {
				t.Fatalf("run %d family %d: %+v != %+v", run, i, fams[i], first[i])
			}
			if len(fams[i].Copies) != len(first[i].Copies) {
				t.Fatalf("run %d family %d: %d copies != %d", run, i, len(fams[i].Copies), len(first[i].Copies))
			}
			for c := range fams[i].Copies {
				if fams[i].Copies[c] != first[i].Copies[c] {
					t.Fatalf("run %d family %d copy %d: %v != %v (anchor tie broken by map order)",
						run, i, c, fams[i].Copies[c], first[i].Copies[c])
				}
			}
		}
	}
}
