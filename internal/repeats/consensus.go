package repeats

import (
	"fmt"
	"sort"
)

// Consensus is a repeat family's per-column majority profile.
type Consensus struct {
	// Codes is the majority residue code per column of the unit.
	Codes []byte
	// Conservation is, per column, the fraction of copies agreeing with
	// the majority residue (1.0 = perfectly conserved).
	Conservation []float64
}

// MeanConservation averages the per-column conservation.
func (c Consensus) MeanConservation() float64 {
	if len(c.Conservation) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range c.Conservation {
		sum += v
	}
	return sum / float64(len(c.Conservation))
}

// DeriveConsensus builds a column-wise majority consensus for a family
// from the analysed sequence (residue codes, 1-based positions in the
// family's copies). Copies are stacked left-aligned; the consensus is as
// long as the family's median unit so stragglers from boundary slop do
// not distort it. The original Repro method builds a full profile from
// its top alignments; this majority profile is the same idea without
// per-column scoring, and is what the examples report as the repeat's
// "unit sequence".
//
// At least two copies are required.
func DeriveConsensus(s []byte, fam Family) (Consensus, error) {
	if len(fam.Copies) < 2 {
		return Consensus{}, fmt.Errorf("repeats: consensus needs >= 2 copies, have %d", len(fam.Copies))
	}
	unit := fam.UnitLen()
	if unit < 1 {
		return Consensus{}, fmt.Errorf("repeats: family has empty copies")
	}
	for _, c := range fam.Copies {
		if c.Start < 1 || c.End > len(s) {
			return Consensus{}, fmt.Errorf("repeats: copy %v outside sequence of length %d", c, len(s))
		}
	}
	cons := Consensus{
		Codes:        make([]byte, unit),
		Conservation: make([]float64, unit),
	}
	counts := make(map[byte]int)
	for col := 0; col < unit; col++ {
		clear(counts)
		total := 0
		for _, c := range fam.Copies {
			pos := c.Start + col
			if pos > c.End {
				continue // shorter copy: no residue in this column
			}
			counts[s[pos-1]]++
			total++
		}
		if total == 0 {
			cons.Codes[col] = 0
			continue
		}
		// deterministic majority: highest count, lowest code on ties
		type cc struct {
			code  byte
			count int
		}
		ordered := make([]cc, 0, len(counts))
		for code, n := range counts {
			ordered = append(ordered, cc{code, n})
		}
		sort.Slice(ordered, func(i, j int) bool {
			if ordered[i].count != ordered[j].count {
				return ordered[i].count > ordered[j].count
			}
			return ordered[i].code < ordered[j].code
		})
		cons.Codes[col] = ordered[0].code
		cons.Conservation[col] = float64(ordered[0].count) / float64(total)
	}
	return cons, nil
}
