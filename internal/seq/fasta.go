package seq

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strings"
)

// ReadFASTA parses all records from r, encoding each under alpha.
// Blank lines are ignored; '*' terminators and whitespace inside sequence
// lines are stripped. An error names the record and line that failed.
func ReadFASTA(r io.Reader, alpha *Alphabet) ([]*Sequence, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)

	var (
		out     []*Sequence
		id      string
		desc    string
		body    strings.Builder
		started bool
		lineNo  int
	)
	flush := func() error {
		if !started {
			return nil
		}
		q, err := New(id, alpha, body.String())
		if err != nil {
			return err
		}
		q.Desc = desc
		out = append(out, q)
		body.Reset()
		return nil
	}
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if line[0] == '>' {
			if err := flush(); err != nil {
				return nil, err
			}
			started = true
			header := string(line[1:])
			if sp := strings.IndexAny(header, " \t"); sp >= 0 {
				id, desc = header[:sp], strings.TrimSpace(header[sp+1:])
			} else {
				id, desc = header, ""
			}
			if id == "" {
				return nil, fmt.Errorf("seq: fasta line %d: empty record identifier", lineNo)
			}
			continue
		}
		if !started {
			return nil, fmt.Errorf("seq: fasta line %d: sequence data before first '>' header", lineNo)
		}
		for _, c := range line {
			switch {
			case c == '*' || c == ' ' || c == '\t':
				// terminator or stray whitespace: skip
			default:
				body.WriteByte(c)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("seq: reading fasta: %w", err)
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("seq: fasta input contains no records")
	}
	return out, nil
}

// WriteFASTA writes records to w with lines wrapped at width columns
// (60 if width <= 0).
func WriteFASTA(w io.Writer, width int, records ...*Sequence) error {
	if width <= 0 {
		width = 60
	}
	bw := bufio.NewWriter(w)
	for _, q := range records {
		if q.Desc != "" {
			fmt.Fprintf(bw, ">%s %s\n", q.ID, q.Desc)
		} else {
			fmt.Fprintf(bw, ">%s\n", q.ID)
		}
		s := q.String()
		for len(s) > width {
			bw.WriteString(s[:width])
			bw.WriteByte('\n')
			s = s[width:]
		}
		if len(s) > 0 {
			bw.WriteString(s)
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}
