package seq

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadFASTASingle(t *testing.T) {
	in := ">titin human titin fragment\nMGEKALVPYR\nLQHCERST\n"
	recs, err := ReadFASTA(strings.NewReader(in), Protein)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	q := recs[0]
	if q.ID != "titin" || q.Desc != "human titin fragment" {
		t.Errorf("header parsed as id=%q desc=%q", q.ID, q.Desc)
	}
	if q.String() != "MGEKALVPYRLQHCERST" {
		t.Errorf("body = %q", q.String())
	}
}

func TestReadFASTAMultipleAndBlankLines(t *testing.T) {
	in := "\n>a\nACGT\n\n>b second\nTT\nGG\n\n>c\nA\n"
	recs, err := ReadFASTA(strings.NewReader(in), DNA)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	if recs[1].String() != "TTGG" {
		t.Errorf("record b = %q, want TTGG", recs[1].String())
	}
}

func TestReadFASTAStripsTerminator(t *testing.T) {
	recs, err := ReadFASTA(strings.NewReader(">x\nACG T*\n"), DNA)
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].String() != "ACGT" {
		t.Errorf("got %q, want ACGT", recs[0].String())
	}
}

func TestReadFASTAErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"data before header", "ACGT\n>x\nACGT\n"},
		{"empty id", "> desc only\nACGT\n"},
		{"bad letter", ">x\nACGU\n"},
		{"empty input", ""},
		{"headers only", ">x\n"}, // empty body encodes fine; expect no error? see below
	}
	for _, c := range cases[:4] {
		if _, err := ReadFASTA(strings.NewReader(c.in), DNA); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	// A header with an empty body is a zero-length record, not an error.
	recs, err := ReadFASTA(strings.NewReader(">x\n"), DNA)
	if err != nil || len(recs) != 1 || recs[0].Len() != 0 {
		t.Errorf("empty body: recs=%v err=%v", recs, err)
	}
}

func TestWriteFASTARoundTrip(t *testing.T) {
	q := Random(Protein, 257, 7)
	q.ID, q.Desc = "rt", "round trip"
	var buf bytes.Buffer
	if err := WriteFASTA(&buf, 60, q); err != nil {
		t.Fatal(err)
	}
	// check wrapping actually happened (before the reader drains the buffer)
	if lines := bytes.Count(buf.Bytes(), []byte{'\n'}); lines < 5 {
		t.Errorf("expected wrapped output, got %d lines", lines)
	}
	recs, err := ReadFASTA(&buf, Protein)
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].ID != "rt" || recs[0].Desc != "round trip" {
		t.Errorf("header lost: %q %q", recs[0].ID, recs[0].Desc)
	}
	if recs[0].String() != q.String() {
		t.Error("body not preserved through write/read")
	}
}
