package seq

import (
	"fmt"
	"math/rand/v2"
	"strings"
)

// rng returns a deterministic generator for the given seed. All synthetic
// sequences in this package are reproducible from their seed.
func rng(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

// Random returns a uniformly random sequence of length n over alpha's
// primary letters. For the protein alphabet only the 20 standard amino
// acids are used (B/Z/X excluded); for DNA only ACGT.
func Random(alpha *Alphabet, n int, seed uint64) *Sequence {
	r := rng(seed)
	k := primaryLetters(alpha)
	codes := make([]byte, n)
	for i := range codes {
		codes[i] = byte(r.IntN(k))
	}
	return &Sequence{
		ID:    fmt.Sprintf("random-%s-%d-%d", alpha.Name(), n, seed),
		Alpha: alpha,
		Codes: codes,
	}
}

// PrimaryLetters returns the number of leading alphabet codes that denote
// concrete residues (excluding ambiguity codes like X or N). The k-mer
// index in internal/seedindex packs seeds in this base and skips windows
// containing ambiguity codes.
func PrimaryLetters(alpha *Alphabet) int { return primaryLetters(alpha) }

// primaryLetters returns the number of leading alphabet codes that denote
// concrete residues (excluding ambiguity codes like X or N).
func primaryLetters(alpha *Alphabet) int {
	switch alpha {
	case Protein:
		return 20
	case DNA:
		return 4
	default:
		return alpha.Len()
	}
}

// MutationProfile controls how a repeat unit diverges from its consensus
// when replicated by Tandem and SyntheticTitin.
type MutationProfile struct {
	// SubstRate is the per-residue probability of a point substitution.
	SubstRate float64
	// IndelRate is the per-residue probability of starting an insertion
	// or deletion (equally likely) of geometric length.
	IndelRate float64
	// IndelExt is the probability of extending an open indel by one more
	// residue (geometric length model).
	IndelExt float64
}

// DefaultDivergence models repeats where roughly 25% of residues are
// conserved between copies, mirroring the divergent protein repeats the
// paper targets ("frequently, only 10-25% of the amino acids in a
// repeated protein subsequence are conserved").
var DefaultDivergence = MutationProfile{SubstRate: 0.45, IndelRate: 0.03, IndelExt: 0.5}

// mutate returns a diverged copy of unit.
func mutate(r *rand.Rand, unit []byte, k int, p MutationProfile) []byte {
	out := make([]byte, 0, len(unit)+4)
	for i := 0; i < len(unit); i++ {
		if p.IndelRate > 0 && r.Float64() < p.IndelRate {
			if r.IntN(2) == 0 {
				// deletion: skip this and possibly following residues
				for i+1 < len(unit) && r.Float64() < p.IndelExt {
					i++
				}
				continue
			}
			// insertion: emit random residues, then the original
			out = append(out, byte(r.IntN(k)))
			for r.Float64() < p.IndelExt {
				out = append(out, byte(r.IntN(k)))
			}
		}
		c := unit[i]
		if p.SubstRate > 0 && r.Float64() < p.SubstRate {
			c = byte(r.IntN(k))
		}
		out = append(out, c)
	}
	return out
}

// TandemSpec describes a synthetic tandem-repeat sequence.
type TandemSpec struct {
	Alpha    *Alphabet
	UnitLen  int // length of the repeat unit consensus
	Copies   int // number of (diverged) copies
	FlankLen int // random flanking residues on each side
	Profile  MutationProfile
	Seed     uint64
}

// Tandem generates a sequence consisting of Copies diverged repetitions of
// a random UnitLen-residue unit, with random flanks. The returned sequence
// is deterministic in the spec.
func Tandem(spec TandemSpec) *Sequence {
	if spec.Alpha == nil {
		spec.Alpha = Protein
	}
	r := rng(spec.Seed)
	k := primaryLetters(spec.Alpha)
	unit := make([]byte, spec.UnitLen)
	for i := range unit {
		unit[i] = byte(r.IntN(k))
	}
	var codes []byte
	for i := 0; i < spec.FlankLen; i++ {
		codes = append(codes, byte(r.IntN(k)))
	}
	for c := 0; c < spec.Copies; c++ {
		codes = append(codes, mutate(r, unit, k, spec.Profile)...)
	}
	for i := 0; i < spec.FlankLen; i++ {
		codes = append(codes, byte(r.IntN(k)))
	}
	return &Sequence{
		ID:    fmt.Sprintf("tandem-u%d-c%d-s%d", spec.UnitLen, spec.Copies, spec.Seed),
		Desc:  fmt.Sprintf("synthetic tandem repeat, unit %d, %d copies", spec.UnitLen, spec.Copies),
		Alpha: spec.Alpha,
		Codes: codes,
	}
}

// SyntheticTitin generates a titin-like protein of (approximately) length n.
//
// Human titin (34350 aa, the paper's headline input) is built from on the
// order of 300 immunoglobulin and fibronectin-III domains of roughly
// 90-100 residues, strongly diverged from each other. Real titin is not
// available offline, so we reproduce its statistical structure: two domain
// consensus sequences (lengths 96 and 89) alternate in blocks, each copy
// diverged with DefaultDivergence, separated by short random linkers.
// The result is deterministic in (n, seed).
func SyntheticTitin(n int, seed uint64) *Sequence {
	r := rng(seed ^ 0x7461746974696e00) // "titin"
	const k = 20
	ig := make([]byte, 96)
	fn3 := make([]byte, 89)
	for i := range ig {
		ig[i] = byte(r.IntN(k))
	}
	for i := range fn3 {
		fn3[i] = byte(r.IntN(k))
	}
	codes := make([]byte, 0, n+128)
	for len(codes) < n {
		unit := ig
		if r.IntN(2) == 1 {
			unit = fn3
		}
		codes = append(codes, mutate(r, unit, k, DefaultDivergence)...)
		// short random linker between domains
		for l := r.IntN(6); l > 0 && len(codes) < n; l-- {
			codes = append(codes, byte(r.IntN(k)))
		}
	}
	codes = codes[:n]
	return &Sequence{
		ID:    fmt.Sprintf("titin-like-%d", n),
		Desc:  fmt.Sprintf("synthetic titin-like protein, %d aa, seed %d", n, seed),
		Alpha: Protein,
		Codes: codes,
	}
}

// PaperATGC returns the ATGCATGCATGC example sequence from Figure 4 of
// the paper.
func PaperATGC() *Sequence {
	return MustNew("fig4", DNA, strings.Repeat("ATGC", 3))
}
