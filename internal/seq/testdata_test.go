package seq

import (
	"os"
	"testing"
)

func TestReadFASTAFromFile(t *testing.T) {
	f, err := os.Open("testdata/examples.fasta")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := ReadFASTA(f, DNA)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	if recs[0].ID != "fig4" || recs[0].String() != "ATGCATGCATGC" {
		t.Errorf("record 0 = %s %q", recs[0].ID, recs[0].String())
	}
	if recs[1].String() != "AACAACAACAAC" {
		t.Errorf("record 1 = %q", recs[1].String())
	}
	if recs[2].Len() != 33 {
		t.Errorf("record 2 length = %d", recs[2].Len())
	}
}
