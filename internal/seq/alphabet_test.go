package seq

import (
	"testing"
	"testing/quick"
)

func TestNewAlphabetRejectsDuplicates(t *testing.T) {
	if _, err := NewAlphabet("bad", "ABCA"); err == nil {
		t.Fatal("expected error for duplicate letter")
	}
}

func TestNewAlphabetRejectsEmpty(t *testing.T) {
	if _, err := NewAlphabet("bad", ""); err == nil {
		t.Fatal("expected error for empty alphabet")
	}
}

func TestNewAlphabetRejectsOversize(t *testing.T) {
	letters := make([]byte, 128)
	for i := range letters {
		letters[i] = byte(i + 1)
	}
	if _, err := NewAlphabet("bad", string(letters)); err == nil {
		t.Fatal("expected error for >127 letters")
	}
}

func TestProteinAlphabetBasics(t *testing.T) {
	if got := Protein.Len(); got != 23 {
		t.Fatalf("Protein.Len() = %d, want 23", got)
	}
	if Protein.Code('A') != 0 {
		t.Errorf("Code('A') = %d, want 0", Protein.Code('A'))
	}
	if Protein.Code('a') != Protein.Code('A') {
		t.Errorf("lower-case code %d != upper-case code %d", Protein.Code('a'), Protein.Code('A'))
	}
	if Protein.Code('1') != -1 {
		t.Errorf("Code('1') = %d, want -1", Protein.Code('1'))
	}
	if Protein.Letter(byte(Protein.Code('W'))) != 'W' {
		t.Error("Letter(Code('W')) != 'W'")
	}
}

func TestDNAAlphabetBasics(t *testing.T) {
	if got := DNA.Len(); got != 5 {
		t.Fatalf("DNA.Len() = %d, want 5", got)
	}
	for i, c := range []byte("ACGTN") {
		if int(DNA.Code(c)) != i {
			t.Errorf("DNA.Code(%q) = %d, want %d", c, DNA.Code(c), i)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, s := range []string{"", "A", "ACDEFGHIKLMNPQRSTVWY", "BZX", "MGEKALVPYR"} {
		codes, err := Protein.Encode(s)
		if err != nil {
			t.Fatalf("Encode(%q): %v", s, err)
		}
		if got := Protein.Decode(codes); got != s {
			t.Errorf("round trip of %q = %q", s, got)
		}
	}
}

func TestEncodeRejectsUnknownLetters(t *testing.T) {
	if _, err := Protein.Encode("ACD1EF"); err == nil {
		t.Fatal("expected error for digit in protein sequence")
	}
	if _, err := DNA.Encode("ACGU"); err == nil {
		t.Fatal("expected error for U in DNA sequence")
	}
}

func TestDecodeOutOfRangeCode(t *testing.T) {
	if got := DNA.Decode([]byte{0, 99, 1}); got != "A?C" {
		t.Errorf("Decode with bad code = %q, want A?C", got)
	}
}

// Property: Decode(Encode(s)) == upper(s) for strings drawn from the
// alphabet's letters.
func TestEncodeDecodeProperty(t *testing.T) {
	letters := Protein.Letters()
	f := func(picks []uint8) bool {
		raw := make([]byte, len(picks))
		for i, p := range picks {
			raw[i] = letters[int(p)%len(letters)]
		}
		codes, err := Protein.Encode(string(raw))
		if err != nil {
			return false
		}
		return Protein.Decode(codes) == string(raw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSequencePrefix(t *testing.T) {
	q := MustNew("x", DNA, "ACGTACGT")
	p := q.Prefix(3)
	if p.String() != "ACG" {
		t.Errorf("Prefix(3) = %q, want ACG", p.String())
	}
	if p.Len() != 3 {
		t.Errorf("Prefix(3).Len() = %d, want 3", p.Len())
	}
	defer func() {
		if recover() == nil {
			t.Error("Prefix beyond length did not panic")
		}
	}()
	q.Prefix(9)
}

func TestSequenceValidate(t *testing.T) {
	q := MustNew("ok", DNA, "ACGT")
	if err := q.Validate(); err != nil {
		t.Errorf("valid sequence: %v", err)
	}
	q.Codes[2] = 200
	if err := q.Validate(); err == nil {
		t.Error("expected error for out-of-range code")
	}
	bad := &Sequence{ID: "nil-alpha"}
	if err := bad.Validate(); err == nil {
		t.Error("expected error for nil alphabet")
	}
}
