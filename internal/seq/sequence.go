package seq

import "fmt"

// Sequence is an encoded biological sequence together with its alphabet
// and FASTA-style identity.
type Sequence struct {
	ID    string
	Desc  string
	Alpha *Alphabet
	Codes []byte // residue codes, indices into Alpha
}

// New encodes s under alpha and returns the resulting Sequence.
func New(id string, alpha *Alphabet, s string) (*Sequence, error) {
	codes, err := alpha.Encode(s)
	if err != nil {
		return nil, fmt.Errorf("seq %q: %w", id, err)
	}
	return &Sequence{ID: id, Alpha: alpha, Codes: codes}, nil
}

// MustNew is New but panics on encoding errors; for literals in tests and
// examples.
func MustNew(id string, alpha *Alphabet, s string) *Sequence {
	q, err := New(id, alpha, s)
	if err != nil {
		panic(err)
	}
	return q
}

// Len returns the number of residues.
func (q *Sequence) Len() int { return len(q.Codes) }

// String decodes the sequence back into residue letters.
func (q *Sequence) String() string { return q.Alpha.Decode(q.Codes) }

// Prefix returns a view of the first n residues as a new Sequence sharing
// the underlying code slice. It panics if n exceeds the length.
func (q *Sequence) Prefix(n int) *Sequence {
	if n > len(q.Codes) {
		panic(fmt.Sprintf("seq: prefix %d of sequence of length %d", n, len(q.Codes)))
	}
	return &Sequence{
		ID:    fmt.Sprintf("%s/1-%d", q.ID, n),
		Desc:  q.Desc,
		Alpha: q.Alpha,
		Codes: q.Codes[:n:n],
	}
}

// Validate checks that every code is within the alphabet's range.
func (q *Sequence) Validate() error {
	if q.Alpha == nil {
		return fmt.Errorf("seq %q: nil alphabet", q.ID)
	}
	n := q.Alpha.Len()
	for i, k := range q.Codes {
		if int(k) >= n {
			return fmt.Errorf("seq %q: code %d at position %d out of range for alphabet %s (%d letters)",
				q.ID, k, i+1, q.Alpha.Name(), n)
		}
	}
	return nil
}
