package seq

import "testing"

func TestRandomDeterministic(t *testing.T) {
	a := Random(Protein, 100, 42)
	b := Random(Protein, 100, 42)
	if a.String() != b.String() {
		t.Error("same seed produced different sequences")
	}
	c := Random(Protein, 100, 43)
	if a.String() == c.String() {
		t.Error("different seeds produced identical sequences")
	}
	if err := a.Validate(); err != nil {
		t.Error(err)
	}
}

func TestRandomUsesOnlyPrimaryLetters(t *testing.T) {
	q := Random(Protein, 2000, 1)
	for _, c := range q.Codes {
		if c >= 20 {
			t.Fatalf("random protein contains ambiguity code %d", c)
		}
	}
	d := Random(DNA, 2000, 1)
	for _, c := range d.Codes {
		if c >= 4 {
			t.Fatalf("random DNA contains N (code %d)", c)
		}
	}
}

func TestTandemStructure(t *testing.T) {
	spec := TandemSpec{
		Alpha:    DNA,
		UnitLen:  10,
		Copies:   5,
		FlankLen: 7,
		Seed:     3,
		// no mutations: copies must be exact
	}
	q := Tandem(spec)
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	want := 2*spec.FlankLen + spec.Copies*spec.UnitLen
	if q.Len() != want {
		t.Fatalf("len = %d, want %d", q.Len(), want)
	}
	body := q.String()[spec.FlankLen : spec.FlankLen+spec.Copies*spec.UnitLen]
	unit := body[:spec.UnitLen]
	for c := 1; c < spec.Copies; c++ {
		if body[c*spec.UnitLen:(c+1)*spec.UnitLen] != unit {
			t.Fatalf("copy %d differs from unit with zero mutation rate", c)
		}
	}
}

func TestTandemDivergedCopiesDiffer(t *testing.T) {
	q := Tandem(TandemSpec{
		Alpha: Protein, UnitLen: 50, Copies: 4,
		Profile: DefaultDivergence, Seed: 11,
	})
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	// with indels the length is only approximately Copies*UnitLen
	if q.Len() < 150 || q.Len() > 260 {
		t.Errorf("diverged tandem length %d outside plausible range", q.Len())
	}
}

func TestSyntheticTitinProperties(t *testing.T) {
	q := SyntheticTitin(3000, 1)
	if q.Len() != 3000 {
		t.Fatalf("len = %d, want 3000", q.Len())
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	// determinism
	if q.String() != SyntheticTitin(3000, 1).String() {
		t.Error("SyntheticTitin not deterministic")
	}
	// prefix property: a shorter sequence with the same seed is a prefix
	// of a longer one, mirroring "the first n amino acids in titin"
	p := SyntheticTitin(1000, 1)
	if q.String()[:1000] != p.String() {
		t.Error("SyntheticTitin(1000) is not a prefix of SyntheticTitin(3000)")
	}
}

func TestPaperATGC(t *testing.T) {
	q := PaperATGC()
	if q.String() != "ATGCATGCATGC" {
		t.Errorf("PaperATGC = %q", q.String())
	}
}
