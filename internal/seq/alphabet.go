// Package seq provides biological sequence types, alphabets, FASTA I/O,
// and seeded synthetic sequence generators used throughout the repository.
//
// Sequences are stored in encoded form: each residue is a small integer
// code (an index into the alphabet) so that exchange-matrix lookups in the
// alignment kernels are direct array accesses.
package seq

import "fmt"

// Alphabet maps residue letters to small integer codes and back.
// The zero value is not usable; construct with NewAlphabet or use one of
// the package-level alphabets (Protein, DNA).
type Alphabet struct {
	name    string
	letters []byte
	index   [256]int8 // -1 for letters not in the alphabet
}

// NewAlphabet builds an alphabet from a name and the ordered set of
// residue letters. Lower-case input letters are mapped to the same code as
// their upper-case counterparts. Duplicate letters are an error.
func NewAlphabet(name string, letters string) (*Alphabet, error) {
	if len(letters) == 0 {
		return nil, fmt.Errorf("seq: alphabet %q has no letters", name)
	}
	if len(letters) > 127 {
		return nil, fmt.Errorf("seq: alphabet %q has %d letters; max 127", name, len(letters))
	}
	a := &Alphabet{name: name, letters: []byte(letters)}
	for i := range a.index {
		a.index[i] = -1
	}
	for i, c := range []byte(letters) {
		if a.index[c] != -1 {
			return nil, fmt.Errorf("seq: alphabet %q: duplicate letter %q", name, c)
		}
		a.index[c] = int8(i)
		if c >= 'A' && c <= 'Z' {
			lower := c + 'a' - 'A'
			if a.index[lower] == -1 {
				a.index[lower] = int8(i)
			}
		}
	}
	return a, nil
}

// mustAlphabet is NewAlphabet for package-level constants.
func mustAlphabet(name, letters string) *Alphabet {
	a, err := NewAlphabet(name, letters)
	if err != nil {
		panic(err)
	}
	return a
}

// Name returns the alphabet's name.
func (a *Alphabet) Name() string { return a.name }

// Len returns the number of distinct residue codes.
func (a *Alphabet) Len() int { return len(a.letters) }

// Code returns the code for letter c, or -1 if c is not in the alphabet.
func (a *Alphabet) Code(c byte) int8 { return a.index[c] }

// Letter returns the letter for code k. It panics if k is out of range.
func (a *Alphabet) Letter(k byte) byte { return a.letters[k] }

// Letters returns the ordered residue letters. The caller must not modify
// the returned slice.
func (a *Alphabet) Letters() []byte { return a.letters }

// Encode converts a residue string into codes. Unknown letters yield an
// error naming the first offending byte and its position.
func (a *Alphabet) Encode(s string) ([]byte, error) {
	out := make([]byte, len(s))
	for i := 0; i < len(s); i++ {
		k := a.index[s[i]]
		if k < 0 {
			return nil, fmt.Errorf("seq: letter %q at position %d is not in alphabet %s", s[i], i+1, a.name)
		}
		out[i] = byte(k)
	}
	return out, nil
}

// MustEncode is Encode but panics on unknown letters. Intended for
// literals in tests and examples.
func (a *Alphabet) MustEncode(s string) []byte {
	out, err := a.Encode(s)
	if err != nil {
		panic(err)
	}
	return out
}

// Decode converts codes back into a residue string. Codes out of range
// decode to '?'.
func (a *Alphabet) Decode(codes []byte) string {
	out := make([]byte, len(codes))
	for i, k := range codes {
		if int(k) < len(a.letters) {
			out[i] = a.letters[k]
		} else {
			out[i] = '?'
		}
	}
	return string(out)
}

// Standard alphabets.
//
// Protein uses the 20 standard amino acids plus B (Asx), Z (Glx) and
// X (unknown), in the residue order used by the embedded exchange
// matrices in package scoring.
var (
	Protein = mustAlphabet("protein", "ARNDCQEGHILKMFPSTWYVBZX")
	DNA     = mustAlphabet("dna", "ACGTN")
)
