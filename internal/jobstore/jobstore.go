// Package jobstore is the crash-safe persistence behind the async job
// API (internal/serve): a write-ahead journal of job submissions and
// state transitions, so that work accepted with `202 {job_id}` is
// never silently lost — not by SIGKILL, not by a torn append, not by
// a full disk.
//
// # Durability model
//
// The store is a snapshot plus an append-only log:
//
//   - jobs.snap: the compacted state, a JSON document written
//     atomically (internal/atomicfile) with a CRC32 footer;
//   - jobs.wal: one framed record per mutation, appended and fsynced
//     before the mutation is acknowledged. Record layout:
//     [4B big-endian length][1B kind][JSON payload][4B CRC32(kind+payload)].
//
// Replay loads the snapshot, then applies WAL records in order. The
// log's tail is where crashes land, so replay is tail-tolerant: a
// truncated frame, a short body, or a CRC mismatch stops replay at the
// last good record, the damage is counted, and the store immediately
// compacts — the prefix survives, the torn tail is discarded. Records
// are full job states, so replaying a duplicate is idempotent
// (last-wins); a duplicate submit for an existing id is counted and
// treated as an update.
//
// What is NOT guaranteed: an update record that fails to append (e.g.
// ENOSPC) is applied in memory but may be lost in a crash — the job
// then replays at its previous state and is simply re-run, which is
// safe because results are deduplicated through the content-addressed
// cache key. Submissions are stricter: Submit fails loudly if the
// record cannot be made durable, so a 202 is only ever returned for
// journaled work.
package jobstore

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/atomicfile"
	"repro/internal/obs"
)

// State is a job's lifecycle position.
type State string

const (
	// Pending: journaled, waiting for a worker (also the state every
	// interrupted Running job is returned to on recovery).
	Pending State = "pending"
	// Running: claimed by a worker.
	Running State = "running"
	// Done: completed; the result lives in the result cache under Key.
	Done State = "done"
	// Failed: every backend in the retry chain failed; Error explains.
	Failed State = "failed"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s == Done || s == Failed }

// Job is one durable unit of accepted work.
type Job struct {
	// ID is the client-facing job identifier.
	ID string `json:"id"`
	// Key is the content-addressed result cache key of the request;
	// recovery and retries deduplicate through it.
	Key string `json:"key"`
	// Request is the canonicalised request body, replayed on recovery.
	Request json.RawMessage `json:"request"`
	// TraceID links the job to its span trace (SSE progress).
	TraceID string `json:"trace_id,omitempty"`

	State State `json:"state"`
	// Attempts counts started execution attempts across restarts.
	Attempts int `json:"attempts"`
	// Backend is the backend of the most recent attempt (the retry
	// chain may have degraded it below the requested one).
	Backend string `json:"backend,omitempty"`
	// Error holds the final failure cause for State == Failed.
	Error string `json:"error,omitempty"`

	CreatedNS int64 `json:"created_ns"`
	UpdatedNS int64 `json:"updated_ns"`
}

// record kinds.
const (
	recSubmit byte = 1
	recUpdate byte = 2
)

// maxRecordLen bounds a WAL record frame; anything larger is treated
// as framing garbage (the serving layer caps request bodies at 8 MiB).
const maxRecordLen = 16 << 20

// compactThreshold is the WAL size that triggers an inline compaction.
const compactThreshold = 4 << 20

const (
	walName  = "jobs.wal"
	snapName = "jobs.snap"
)

// ReplayStats describes what Open found in the journal.
type ReplayStats struct {
	// Records replayed cleanly from the WAL.
	Records int64
	// DroppedTailBytes discarded at the first torn or corrupt frame.
	DroppedTailBytes int64
	// DupSubmits: submit records for an already-known id (last-wins).
	DupSubmits int64
	// OrphanUpdates: update records for an unknown id (ignored).
	OrphanUpdates int64
	// SnapshotCorrupt: the snapshot failed its CRC and was discarded.
	SnapshotCorrupt bool
}

// Store is the durable job table. All methods are safe for concurrent
// use.
type Store struct {
	mu     sync.Mutex
	dir    string
	fsys   atomicfile.FS
	wal    atomicfile.AppendFile
	walLen int64
	jobs   map[string]*Job
	replay ReplayStats
	closed bool

	appends     obs.Counter
	appendErrs  obs.Counter
	compactions obs.Counter
	jobsGauge   obs.Gauge
	walGauge    obs.Gauge
}

// Open loads (or creates) the store rooted at dir. fsys nil selects
// the real filesystem; crash tests inject atomicfile/faultfs. Any
// torn tail found during replay is healed by an immediate compaction.
func Open(dir string, fsys atomicfile.FS) (*Store, error) {
	if fsys == nil {
		fsys = atomicfile.OS()
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobstore: %w", err)
	}
	s := &Store{dir: dir, fsys: fsys, jobs: make(map[string]*Job)}
	s.loadSnapshot()
	damaged := s.replayWAL()
	if damaged {
		if err := s.compactLocked(); err != nil {
			return nil, err
		}
	}
	wal, err := fsys.OpenAppend(filepath.Join(dir, walName))
	if err != nil {
		return nil, fmt.Errorf("jobstore: open wal: %w", err)
	}
	s.wal = wal
	if fi, err := fsys.Stat(filepath.Join(dir, walName)); err == nil {
		s.walLen = fi.Size()
	}
	s.jobsGauge.Set(int64(len(s.jobs)))
	s.walGauge.Set(s.walLen)
	return s, nil
}

// Bind registers the store's metrics in reg under jobstore/*.
func (s *Store) Bind(reg *obs.Registry) {
	if s == nil || reg == nil {
		return
	}
	reg.BindCounter("jobstore/appends", &s.appends)
	reg.BindCounter("jobstore/append_errors", &s.appendErrs)
	reg.BindCounter("jobstore/compactions", &s.compactions)
	reg.BindGauge("jobstore/jobs", &s.jobsGauge)
	reg.BindGauge("jobstore/wal_bytes", &s.walGauge)
}

// Replay returns what Open found in the journal.
func (s *Store) Replay() ReplayStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.replay
}

// loadSnapshot reads jobs.snap (JSON + 4-byte CRC32 footer). A
// missing snapshot is normal; a corrupt one is discarded and counted
// (the WAL since the last good compaction still replays).
func (s *Store) loadSnapshot() {
	data, err := s.fsys.ReadFile(filepath.Join(s.dir, snapName))
	if err != nil {
		return
	}
	if len(data) < 4 {
		s.replay.SnapshotCorrupt = true
		return
	}
	body, foot := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(foot) {
		s.replay.SnapshotCorrupt = true
		return
	}
	var jobs []*Job
	if err := json.Unmarshal(body, &jobs); err != nil {
		s.replay.SnapshotCorrupt = true
		return
	}
	for _, j := range jobs {
		s.jobs[j.ID] = j
	}
}

// replayWAL applies the log on top of the snapshot. Returns true when
// the log had a torn or corrupt tail (or the snapshot was corrupt)
// and the store should compact to heal.
func (s *Store) replayWAL() bool {
	data, err := s.fsys.ReadFile(filepath.Join(s.dir, walName))
	if err != nil {
		return s.replay.SnapshotCorrupt
	}
	off := 0
	for {
		rest := data[off:]
		if len(rest) == 0 {
			break
		}
		if len(rest) < 4 {
			s.replay.DroppedTailBytes = int64(len(rest))
			break
		}
		n := int(binary.BigEndian.Uint32(rest))
		if n < 1 || n > maxRecordLen || len(rest) < 4+n+4 {
			s.replay.DroppedTailBytes = int64(len(rest))
			break
		}
		body, foot := rest[4:4+n], rest[4+n:4+n+4]
		if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(foot) {
			// A bad CRC mid-log means nothing after this offset can be
			// trusted either — frame boundaries derive from lengths
			// inside the damaged region. Conservative: stop here.
			s.replay.DroppedTailBytes = int64(len(rest))
			break
		}
		s.applyRecord(body[0], body[1:])
		s.replay.Records++
		off += 4 + n + 4
	}
	return s.replay.DroppedTailBytes > 0 || s.replay.SnapshotCorrupt
}

// applyRecord folds one good record into the table.
func (s *Store) applyRecord(kind byte, payload []byte) {
	var j Job
	if err := json.Unmarshal(payload, &j); err != nil || j.ID == "" {
		s.replay.OrphanUpdates++
		return
	}
	switch kind {
	case recSubmit:
		if prev, ok := s.jobs[j.ID]; ok {
			s.replay.DupSubmits++
			j.CreatedNS = prev.CreatedNS // the first submission wins the birth time
		}
		s.jobs[j.ID] = &j
	case recUpdate:
		if _, ok := s.jobs[j.ID]; !ok {
			s.replay.OrphanUpdates++
			return
		}
		s.jobs[j.ID] = &j
	default:
		s.replay.OrphanUpdates++
	}
}

// encodeRecord frames kind+payload for the WAL.
func encodeRecord(kind byte, payload []byte) []byte {
	body := make([]byte, 0, 1+len(payload))
	body = append(body, kind)
	body = append(body, payload...)
	rec := make([]byte, 0, 4+len(body)+4)
	rec = binary.BigEndian.AppendUint32(rec, uint32(len(body)))
	rec = append(rec, body...)
	rec = binary.BigEndian.AppendUint32(rec, crc32.ChecksumIEEE(body))
	return rec
}

// appendLocked journals one record and fsyncs. Caller holds s.mu.
func (s *Store) appendLocked(kind byte, j *Job) error {
	payload, err := json.Marshal(j)
	if err != nil {
		return fmt.Errorf("jobstore: marshal: %w", err)
	}
	rec := encodeRecord(kind, payload)
	if _, err := s.wal.Write(rec); err != nil {
		s.appendErrs.Inc()
		// The tail may now be torn. Replay tolerates that, but heal
		// eagerly when the disk lets us: compaction rewrites state
		// atomically and truncates the log.
		if cerr := s.compactLocked(); cerr == nil {
			if wal, oerr := s.fsys.OpenAppend(filepath.Join(s.dir, walName)); oerr == nil {
				s.wal.Close()
				s.wal = wal
				s.walLen = 0
				s.walGauge.Set(0)
			}
		}
		return fmt.Errorf("jobstore: append: %w", err)
	}
	if err := s.wal.Sync(); err != nil {
		s.appendErrs.Inc()
		return fmt.Errorf("jobstore: sync: %w", err)
	}
	s.appends.Inc()
	s.walLen += int64(len(rec))
	s.walGauge.Set(s.walLen)
	if s.walLen > compactThreshold {
		if err := s.compactLocked(); err == nil {
			if wal, oerr := s.fsys.OpenAppend(filepath.Join(s.dir, walName)); oerr == nil {
				s.wal.Close()
				s.wal = wal
				s.walLen = 0
				s.walGauge.Set(0)
			}
		}
	}
	return nil
}

// compactLocked writes the snapshot atomically and truncates the WAL.
// Crash-ordering: the snapshot lands first (atomic rename), so a crash
// before the truncate merely replays WAL records the snapshot already
// contains — records carry full job state, so that is idempotent.
func (s *Store) compactLocked() error {
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].CreatedNS < jobs[b].CreatedNS })
	body, err := json.Marshal(jobs)
	if err != nil {
		return fmt.Errorf("jobstore: snapshot: %w", err)
	}
	data := make([]byte, 0, len(body)+4)
	data = append(data, body...)
	data = binary.BigEndian.AppendUint32(data, crc32.ChecksumIEEE(body))
	if err := s.fsys.WriteFile(filepath.Join(s.dir, snapName), data, 0o644); err != nil {
		return fmt.Errorf("jobstore: snapshot: %w", err)
	}
	if err := s.fsys.Truncate(filepath.Join(s.dir, walName), 0); err != nil {
		// Harmless if it stays: replay is idempotent over the snapshot.
		return nil
	}
	s.compactions.Inc()
	return nil
}

// Compact forces a snapshot + WAL truncation (tests, clean shutdown).
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.compactLocked(); err != nil {
		return err
	}
	if s.wal != nil {
		if wal, err := s.fsys.OpenAppend(filepath.Join(s.dir, walName)); err == nil {
			s.wal.Close()
			s.wal = wal
		}
	}
	s.walLen = 0
	s.walGauge.Set(0)
	return nil
}

// Submit journals a new job. The job must carry ID, Key, and Request;
// zero State defaults to Pending and timestamps are stamped here. The
// record is durable (fsynced) before Submit returns nil — this is
// what makes a 202 a promise.
func (s *Store) Submit(j Job) error {
	if j.ID == "" || j.Key == "" {
		return fmt.Errorf("jobstore: submit needs id and key")
	}
	if j.State == "" {
		j.State = Pending
	}
	now := time.Now().UnixNano()
	j.CreatedNS, j.UpdatedNS = now, now
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("jobstore: closed")
	}
	if _, ok := s.jobs[j.ID]; ok {
		return fmt.Errorf("jobstore: duplicate job id %q", j.ID)
	}
	if err := s.appendLocked(recSubmit, &j); err != nil {
		return err
	}
	s.jobs[j.ID] = &j
	s.jobsGauge.Set(int64(len(s.jobs)))
	return nil
}

// Update applies mut to the job and journals the new state. The
// in-memory mutation sticks even when the append fails (see the
// package durability model); the append error is returned for the
// caller to surface.
func (s *Store) Update(id string, mut func(*Job)) (Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, fmt.Errorf("jobstore: unknown job %q", id)
	}
	mut(j)
	j.UpdatedNS = time.Now().UnixNano()
	err := error(nil)
	if !s.closed {
		err = s.appendLocked(recUpdate, j)
	}
	return *j, err
}

// Claim atomically selects the oldest pending job, marks it Running,
// journals the transition, and returns it. ok is false when nothing
// is pending.
func (s *Store) Claim() (Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var oldest *Job
	for _, j := range s.jobs {
		if j.State != Pending {
			continue
		}
		if oldest == nil || j.CreatedNS < oldest.CreatedNS ||
			(j.CreatedNS == oldest.CreatedNS && j.ID < oldest.ID) {
			oldest = j
		}
	}
	if oldest == nil {
		return Job{}, false
	}
	oldest.State = Running
	oldest.Attempts++
	oldest.UpdatedNS = time.Now().UnixNano()
	if !s.closed {
		s.appendLocked(recUpdate, oldest) //nolint:errcheck // in-memory claim holds; see durability model
	}
	return *oldest, true
}

// RequeueRunning returns every Running job to Pending — the restart
// recovery step: a job that was mid-flight when the process died is
// re-run from scratch. Returns how many were requeued.
func (s *Store) RequeueRunning() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, j := range s.jobs {
		if j.State == Running {
			j.State = Pending
			j.UpdatedNS = time.Now().UnixNano()
			if !s.closed {
				s.appendLocked(recUpdate, j) //nolint:errcheck
			}
			n++
		}
	}
	return n
}

// Get returns a copy of the job.
func (s *Store) Get(id string) (Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *j, true
}

// List returns copies of every job, oldest first.
func (s *Store) List() []Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, *j)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].CreatedNS != out[b].CreatedNS {
			return out[a].CreatedNS < out[b].CreatedNS
		}
		return out[a].ID < out[b].ID
	})
	return out
}

// ActiveByKey returns a pending or running job with the given cache
// key, if any — submission-time deduplication.
func (s *Store) ActiveByKey(key string) (Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range s.jobs {
		if j.Key == key && !j.State.Terminal() {
			return *j, true
		}
	}
	return Job{}, false
}

// PendingCount returns the number of pending jobs.
func (s *Store) PendingCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, j := range s.jobs {
		if j.State == Pending {
			n++
		}
	}
	return n
}

// Len returns the number of known jobs (all states).
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.jobs)
}

// Close compacts and releases the WAL handle.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	s.compactLocked() //nolint:errcheck // best effort; the WAL already holds everything
	if s.wal != nil {
		return s.wal.Close()
	}
	return nil
}
