package jobstore

import (
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/atomicfile"
	"repro/internal/atomicfile/faultfs"
)

func mustSubmit(t *testing.T, s *Store, id, key string) {
	t.Helper()
	if err := s.Submit(Job{ID: id, Key: key, Request: json.RawMessage(`{"sequence":"ATGC"}`)}); err != nil {
		t.Fatal(err)
	}
}

func TestSubmitGetRestart(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	mustSubmit(t, s, "j1", "k1")
	mustSubmit(t, s, "j2", "k2")
	if _, err := s.Update("j2", func(j *Job) { j.State = Done; j.Backend = "cluster" }); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(Job{ID: "j1", Key: "k1"}); err == nil {
		t.Fatal("duplicate submit accepted")
	}
	// Reopen WITHOUT Close: simulates SIGKILL. Everything journaled
	// must come back.
	s2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	j1, ok := s2.Get("j1")
	if !ok || j1.State != Pending || j1.Key != "k1" {
		t.Fatalf("j1 after replay: %+v ok=%v", j1, ok)
	}
	j2, ok := s2.Get("j2")
	if !ok || j2.State != Done || j2.Backend != "cluster" {
		t.Fatalf("j2 after replay: %+v ok=%v", j2, ok)
	}
	if len(s2.List()) != 2 {
		t.Fatalf("List = %d jobs", len(s2.List()))
	}
}

func TestClaimOrderAndRequeue(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	mustSubmit(t, s, "a", "ka")
	mustSubmit(t, s, "b", "kb")
	j, ok := s.Claim()
	if !ok || j.ID != "a" || j.State != Running || j.Attempts != 1 {
		t.Fatalf("first claim: %+v ok=%v", j, ok)
	}
	j, ok = s.Claim()
	if !ok || j.ID != "b" {
		t.Fatalf("second claim: %+v", j)
	}
	if _, ok := s.Claim(); ok {
		t.Fatal("claim on empty pending set")
	}
	if n := s.RequeueRunning(); n != 2 {
		t.Fatalf("RequeueRunning = %d, want 2", n)
	}
	if s.PendingCount() != 2 {
		t.Fatalf("PendingCount = %d", s.PendingCount())
	}
	// Attempts survive the requeue: recovery does not reset history.
	j, _ = s.Claim()
	if j.Attempts != 2 {
		t.Fatalf("attempts after requeue+claim = %d, want 2", j.Attempts)
	}
}

func TestActiveByKeyDedup(t *testing.T) {
	s, err := Open(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	mustSubmit(t, s, "j1", "shared-key")
	if j, ok := s.ActiveByKey("shared-key"); !ok || j.ID != "j1" {
		t.Fatalf("ActiveByKey: %+v %v", j, ok)
	}
	s.Update("j1", func(j *Job) { j.State = Done }) //nolint:errcheck
	if _, ok := s.ActiveByKey("shared-key"); ok {
		t.Fatal("terminal job still reported active")
	}
}

// wal builds a raw WAL from parts for the replay table tests.
func walRecord(kind byte, j Job) []byte {
	payload, _ := json.Marshal(j)
	body := append([]byte{kind}, payload...)
	rec := binary.BigEndian.AppendUint32(nil, uint32(len(body)))
	rec = append(rec, body...)
	return binary.BigEndian.AppendUint32(rec, crc32.ChecksumIEEE(body))
}

func TestReplayTable(t *testing.T) {
	good1 := walRecord(recSubmit, Job{ID: "j1", Key: "k1", State: Pending, CreatedNS: 1})
	good2 := walRecord(recUpdate, Job{ID: "j1", Key: "k1", State: Done, CreatedNS: 1})
	dupJ1 := walRecord(recSubmit, Job{ID: "j1", Key: "k1b", State: Running, CreatedNS: 9})
	orphan := walRecord(recUpdate, Job{ID: "ghost", Key: "k", State: Done, CreatedNS: 2})

	corrupt := append([]byte{}, good2...)
	corrupt[len(corrupt)-1] ^= 0xFF // break the CRC footer

	flipBody := append([]byte{}, good2...)
	flipBody[10] ^= 0x01 // corrupt the payload, CRC now mismatches

	cases := []struct {
		name        string
		wal         []byte
		wantState   State
		wantJobs    int
		wantRecords int64
		wantDropped bool
		wantDups    int64
		wantOrphans int64
	}{
		{
			name:        "clean",
			wal:         append(append([]byte{}, good1...), good2...),
			wantState:   Done,
			wantJobs:    1,
			wantRecords: 2,
		},
		{
			name:        "truncated tail frame",
			wal:         append(append([]byte{}, good1...), good2[:len(good2)-3]...),
			wantState:   Pending, // the torn update is discarded
			wantJobs:    1,
			wantRecords: 1,
			wantDropped: true,
		},
		{
			name:        "truncated header",
			wal:         append(append([]byte{}, good1...), 0x00, 0x00),
			wantState:   Pending,
			wantJobs:    1,
			wantRecords: 1,
			wantDropped: true,
		},
		{
			name:        "corrupt crc footer stops replay",
			wal:         append(append(append([]byte{}, good1...), corrupt...), good2...),
			wantState:   Pending, // nothing after the bad frame is trusted
			wantJobs:    1,
			wantRecords: 1,
			wantDropped: true,
		},
		{
			name:        "corrupt payload stops replay",
			wal:         append(append([]byte{}, good1...), flipBody...),
			wantState:   Pending,
			wantJobs:    1,
			wantRecords: 1,
			wantDropped: true,
		},
		{
			name:        "duplicate job id is last-wins and counted",
			wal:         append(append([]byte{}, good1...), dupJ1...),
			wantState:   Running,
			wantJobs:    1,
			wantRecords: 2,
			wantDups:    1,
		},
		{
			name:        "orphan update ignored and counted",
			wal:         append(append([]byte{}, orphan...), good1...),
			wantState:   Pending,
			wantJobs:    1,
			wantRecords: 2,
			wantOrphans: 1,
		},
		{
			name:        "garbage length field",
			wal:         append([]byte{0xFF, 0xFF, 0xFF, 0xFF}, good1...),
			wantJobs:    0,
			wantRecords: 0,
			wantDropped: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, walName), tc.wal, 0o644); err != nil {
				t.Fatal(err)
			}
			s, err := Open(dir, nil)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			st := s.Replay()
			if st.Records != tc.wantRecords {
				t.Errorf("Records = %d, want %d", st.Records, tc.wantRecords)
			}
			if (st.DroppedTailBytes > 0) != tc.wantDropped {
				t.Errorf("DroppedTailBytes = %d, dropped want %v", st.DroppedTailBytes, tc.wantDropped)
			}
			if st.DupSubmits != tc.wantDups {
				t.Errorf("DupSubmits = %d, want %d", st.DupSubmits, tc.wantDups)
			}
			if st.OrphanUpdates != tc.wantOrphans {
				t.Errorf("OrphanUpdates = %d, want %d", st.OrphanUpdates, tc.wantOrphans)
			}
			if s.Len() != tc.wantJobs {
				t.Fatalf("Len = %d, want %d", s.Len(), tc.wantJobs)
			}
			if tc.wantJobs == 1 {
				j, ok := s.Get("j1")
				if !ok || j.State != tc.wantState {
					t.Errorf("j1 = %+v ok=%v, want state %s", j, ok, tc.wantState)
				}
				if tc.wantDups > 0 && j.CreatedNS != 1 {
					t.Errorf("dup submit clobbered CreatedNS: %d", j.CreatedNS)
				}
			}
			// A damaged log must have been healed: reopening finds a
			// clean WAL and the same state.
			s.Close()
			s2, err := Open(dir, nil)
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()
			if st2 := s2.Replay(); st2.DroppedTailBytes > 0 {
				t.Errorf("damage not healed: second open dropped %d bytes", st2.DroppedTailBytes)
			}
			if s2.Len() != tc.wantJobs {
				t.Errorf("after heal: Len = %d, want %d", s2.Len(), tc.wantJobs)
			}
		})
	}
}

func TestCompactionPreservesState(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		mustSubmit(t, s, string(rune('a'+i)), "k")
	}
	s.Update("a", func(j *Job) { j.State = Failed; j.Error = "boom" }) //nolint:errcheck
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(filepath.Join(dir, walName)); err != nil || fi.Size() != 0 {
		t.Fatalf("wal after compact: %v size=%d", err, fi.Size())
	}
	// Post-compaction appends land in the fresh WAL and replay fine.
	mustSubmit(t, s, "post", "k2")
	s.Close()
	s2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 11 {
		t.Fatalf("Len = %d, want 11", s2.Len())
	}
	a, _ := s2.Get("a")
	if a.State != Failed || a.Error != "boom" {
		t.Fatalf("a = %+v", a)
	}
	if _, ok := s2.Get("post"); !ok {
		t.Fatal("post-compaction record lost")
	}
}

// A torn append (injected) must cost at most the record being written:
// everything already acknowledged survives the reopen.
func TestTornAppendLosesOnlyTheTail(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	mustSubmit(t, s, "ok1", "k1")
	mustSubmit(t, s, "ok2", "k2")
	s.Close()

	// Reopen with fault injection: the next append tears.
	fsys := faultfs.Wrap(atomicfile.OS(), faultfs.Config{Seed: 5, TornWriteProb: 1})
	s2, err := Open(dir, fsys)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Submit(Job{ID: "torn", Key: "k3"}); err == nil {
		t.Fatal("submit over a torn append reported success")
	}
	// No Close (crash). Replay on clean storage: the acknowledged jobs
	// are intact; the torn submission is gone or pending — never a
	// corrupted table.
	s3, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	for _, id := range []string{"ok1", "ok2"} {
		if _, ok := s3.Get(id); !ok {
			t.Fatalf("acknowledged job %s lost", id)
		}
	}
}

func TestENOSPCSubmitFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	mustSubmit(t, s, "pre", "k")
	s.Close()

	fsys := faultfs.Wrap(atomicfile.OS(), faultfs.Config{WriteBudget: 1})
	s2, err := Open(dir, fsys)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Submit(Job{ID: "nospace", Key: "k2"}); err == nil {
		t.Fatal("submit on a full disk reported success")
	}
	s3, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if _, ok := s3.Get("pre"); !ok {
		t.Fatal("pre-existing job lost to ENOSPC")
	}
}

func TestCorruptSnapshotDiscarded(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	mustSubmit(t, s, "a", "k1")
	mustSubmit(t, s, "b", "k2")
	if err := s.Close(); err != nil { // compacts: state now lives in jobs.snap
		t.Fatal(err)
	}

	snap := filepath.Join(dir, "jobs.snap")
	data, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/3] ^= 0x08
	if err := os.WriteFile(snap, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// The CRC catches the flip: the snapshot is discarded (never
	// half-trusted) and flagged, and reopening heals by writing a
	// fresh consistent (empty) snapshot.
	s2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !s2.Replay().SnapshotCorrupt {
		t.Error("corrupt snapshot not flagged")
	}
	if n := s2.Len(); n != 0 {
		t.Errorf("jobs after corrupt snapshot = %d, want 0", n)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s3.Replay().SnapshotCorrupt {
		t.Error("healed store still reports snapshot corruption")
	}
	s3.Close() //nolint:errcheck

	// A short (truncated-footer) snapshot is equally discarded.
	dir2 := t.TempDir()
	s4, _ := Open(dir2, nil)
	mustSubmit(t, s4, "c", "k3")
	s4.Close() //nolint:errcheck
	if err := os.WriteFile(filepath.Join(dir2, "jobs.snap"), []byte{1, 2}, 0o644); err != nil {
		t.Fatal(err)
	}
	s5, err := Open(dir2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !s5.Replay().SnapshotCorrupt {
		t.Error("truncated snapshot not flagged")
	}
	s5.Close() //nolint:errcheck
}
