package stats

import (
	"strings"
	"sync"
	"testing"
)

func TestNilCountersAreSafe(t *testing.T) {
	var c *Counters
	c.AddAlignment(100, true)
	c.AddTraceback(50)
	c.AddShadowEnds(3)
	c.AddQueueSkip()
	if s := c.Snapshot(); s != (Snapshot{}) {
		t.Errorf("nil counters snapshot = %+v", s)
	}
}

func TestCountersAccumulate(t *testing.T) {
	c := &Counters{}
	c.AddAlignment(100, false)
	c.AddAlignment(200, true)
	c.AddTraceback(50)
	c.AddShadowEnds(2)
	c.AddShadowEnds(0) // no-op
	c.AddQueueSkip()
	s := c.Snapshot()
	if s.Alignments != 2 || s.Realignments != 1 || s.Cells != 350 ||
		s.Tracebacks != 1 || s.ShadowEnds != 2 || s.QueueSkips != 1 {
		t.Errorf("snapshot = %+v", s)
	}
}

func TestCountersConcurrent(t *testing.T) {
	c := &Counters{}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.AddAlignment(1, j%2 == 0)
			}
		}()
	}
	wg.Wait()
	s := c.Snapshot()
	if s.Alignments != 8000 || s.Cells != 8000 || s.Realignments != 4000 {
		t.Errorf("concurrent snapshot = %+v", s)
	}
}

func TestRealignmentReduction(t *testing.T) {
	s := Snapshot{Realignments: 50}
	// 10 tops over 100 splits: potential = 9*100 = 900; 50 done -> 94.4%
	got := s.RealignmentReduction(100, 10)
	if got < 0.944 || got > 0.945 {
		t.Errorf("reduction = %f", got)
	}
	if s.RealignmentReduction(100, 1) != 0 {
		t.Error("single top should report 0 reduction")
	}
	if s.RealignmentReduction(0, 5) != 0 {
		t.Error("zero splits should report 0")
	}
}

func TestSnapshotString(t *testing.T) {
	s := Snapshot{Alignments: 5, Cells: 10}
	out := s.String()
	if !strings.Contains(out, "alignments=5") || !strings.Contains(out, "cells=10") {
		t.Errorf("String() = %q", out)
	}
}
