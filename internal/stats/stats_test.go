package stats

import (
	"strings"
	"sync"
	"testing"
)

func TestNilCountersAreSafe(t *testing.T) {
	var c *Counters
	c.AddAlignment(100, true)
	c.AddTraceback(50)
	c.AddShadowEnds(3)
	c.AddQueueSkip()
	if s := c.Snapshot(); s.Alignments != 0 || s.Cells != 0 || s.AlignLatency.Count != 0 {
		t.Errorf("nil counters snapshot = %+v", s)
	}
	c.AddSnapshot(Snapshot{Alignments: 1}) // nil-safe too
}

func TestCountersAccumulate(t *testing.T) {
	c := &Counters{}
	c.AddAlignment(100, false)
	c.AddAlignment(200, true)
	c.AddTraceback(50)
	c.AddShadowEnds(2)
	c.AddShadowEnds(0) // no-op
	c.AddQueueSkip()
	s := c.Snapshot()
	if s.Alignments != 2 || s.Realignments != 1 || s.Cells != 350 ||
		s.Tracebacks != 1 || s.ShadowEnds != 2 || s.QueueSkips != 1 {
		t.Errorf("snapshot = %+v", s)
	}
}

// TestAddSnapshotFolds checks the serve-layer accumulation path: two
// per-run snapshots folded into a lifetime set read back as their sum,
// including the latency histogram and per-tier counters.
func TestAddSnapshotFolds(t *testing.T) {
	run := &Counters{}
	run.AddAlignment(100, false)
	run.AddTierAlignments(1, 1, false)
	run.AddCPU(5000)
	run.ObserveAlignLatency(1000)
	life := &Counters{}
	life.AddSnapshot(run.Snapshot())
	life.AddSnapshot(run.Snapshot())
	s := life.Snapshot()
	if s.Alignments != 2 || s.Cells != 200 || s.CPUNanos != 10000 {
		t.Errorf("folded snapshot = %+v", s)
	}
	if s.TierAlignments[1] != 2 {
		t.Errorf("tier counters not folded: %v", s.TierAlignments)
	}
	if s.AlignLatency.Count != 2 || s.AlignLatency.Sum != 2000 {
		t.Errorf("latency histogram not folded: %+v", s.AlignLatency)
	}
}

func TestCountersConcurrent(t *testing.T) {
	c := &Counters{}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.AddAlignment(1, j%2 == 0)
			}
		}()
	}
	wg.Wait()
	s := c.Snapshot()
	if s.Alignments != 8000 || s.Cells != 8000 || s.Realignments != 4000 {
		t.Errorf("concurrent snapshot = %+v", s)
	}
}

func TestRealignmentReduction(t *testing.T) {
	s := Snapshot{Realignments: 50}
	// 10 tops over 100 splits: potential = 9*100 = 900; 50 done -> 94.4%
	got := s.RealignmentReduction(100, 10)
	if got < 0.944 || got > 0.945 {
		t.Errorf("reduction = %f", got)
	}
	if s.RealignmentReduction(100, 1) != 0 {
		t.Error("single top should report 0 reduction")
	}
	if s.RealignmentReduction(0, 5) != 0 {
		t.Error("zero splits should report 0")
	}
}

func TestSnapshotString(t *testing.T) {
	s := Snapshot{Alignments: 5, Cells: 10}
	out := s.String()
	if !strings.Contains(out, "alignments=5") || !strings.Contains(out, "cells=10") {
		t.Errorf("String() = %q", out)
	}
}
