// Package stats provides instrumentation counters for the alignment
// engine. The counters back the paper's percentage claims: realignments
// avoided by the queue heuristic (Section 3, 90-97%), speculation
// overhead of SIMD-style group scheduling (Section 5.1, <0.70%) and of
// the parallel schedulers (Section 5.2, up to 8.4%).
//
// All methods are safe on a nil receiver, so hot paths can thread an
// optional *Counters without branching at call sites.
package stats

import (
	"fmt"
	"sync/atomic"
)

// Counters accumulates engine activity. Safe for concurrent use.
type Counters struct {
	alignments   atomic.Int64 // score-only matrix computations
	cells        atomic.Int64 // matrix entries computed
	realignments atomic.Int64 // alignments beyond each task's first
	tracebacks   atomic.Int64 // full-matrix traceback computations
	shadowEnds   atomic.Int64 // bottom-row cells rejected as shadows
	queueSkips   atomic.Int64 // acceptances straight from the queue (no realign needed)
}

// AddAlignment records one score-only alignment over the given number of
// matrix cells; realigned marks alignments beyond the task's first.
func (c *Counters) AddAlignment(cells int64, realigned bool) {
	if c == nil {
		return
	}
	c.alignments.Add(1)
	c.cells.Add(cells)
	if realigned {
		c.realignments.Add(1)
	}
}

// AddTraceback records one full-matrix traceback over cells entries.
func (c *Counters) AddTraceback(cells int64) {
	if c == nil {
		return
	}
	c.tracebacks.Add(1)
	c.cells.Add(cells)
}

// AddShadowEnds records bottom-row cells rejected by shadow detection.
func (c *Counters) AddShadowEnds(n int64) {
	if c == nil || n == 0 {
		return
	}
	c.shadowEnds.Add(n)
}

// AddQueueSkip records a top alignment accepted without realignment.
func (c *Counters) AddQueueSkip() {
	if c == nil {
		return
	}
	c.queueSkips.Add(1)
}

// Snapshot is a point-in-time copy of the counters.
type Snapshot struct {
	Alignments   int64
	Cells        int64
	Realignments int64
	Tracebacks   int64
	ShadowEnds   int64
	QueueSkips   int64
}

// Snapshot returns the current counter values (zero Snapshot for nil).
func (c *Counters) Snapshot() Snapshot {
	if c == nil {
		return Snapshot{}
	}
	return Snapshot{
		Alignments:   c.alignments.Load(),
		Cells:        c.cells.Load(),
		Realignments: c.realignments.Load(),
		Tracebacks:   c.tracebacks.Load(),
		ShadowEnds:   c.shadowEnds.Load(),
		QueueSkips:   c.queueSkips.Load(),
	}
}

// RealignmentReduction returns the fraction of potential realignments the
// best-first queue avoided, given the number of splits and top alignments
// found. Without the heuristic, every accepted top alignment would force
// all splits-1 other tasks to realign; the paper reports 90-97% of those
// are avoided.
func (s Snapshot) RealignmentReduction(splits, tops int) float64 {
	if tops <= 1 {
		return 0
	}
	potential := int64(tops-1) * int64(splits)
	if potential == 0 {
		return 0
	}
	return 1 - float64(s.Realignments)/float64(potential)
}

// String formats the snapshot for -stats output.
func (s Snapshot) String() string {
	return fmt.Sprintf("alignments=%d realignments=%d tracebacks=%d cells=%d shadow-ends=%d queue-skips=%d",
		s.Alignments, s.Realignments, s.Tracebacks, s.Cells, s.ShadowEnds, s.QueueSkips)
}
