// Package stats provides instrumentation counters for the alignment
// engine. The counters back the paper's percentage claims: realignments
// avoided by the queue heuristic (Section 3, 90-97%), speculation
// overhead of SIMD-style group scheduling (Section 5.1, <0.70%) and of
// the parallel schedulers (Section 5.2, up to 8.4%).
//
// The counters are built on the primitives of package obs, so a
// Counters can be bound into an obs.Registry (Bind) and served live
// from the /metrics debug endpoint alongside cluster telemetry.
//
// All methods are safe on a nil receiver, so hot paths can thread an
// optional *Counters without branching at call sites.
package stats

import (
	"fmt"
	"time"

	"repro/internal/obs"
)

// Counters accumulates engine activity. Safe for concurrent use; the
// zero value is ready.
type Counters struct {
	alignments   obs.Counter // score-only matrix computations
	cells        obs.Counter // matrix entries computed
	realignments obs.Counter // alignments beyond each task's first
	tracebacks   obs.Counter // full-matrix traceback computations
	shadowEnds   obs.Counter // bottom-row cells rejected as shadows
	queueSkips   obs.Counter // acceptances straight from the queue (no realign needed)
	alignNanos   obs.Histogram
}

// Bind registers every counter in reg under the engine/ namespace, so
// a registry snapshot reads the live values. No-op when either side is
// nil.
func (c *Counters) Bind(reg *obs.Registry) {
	if c == nil || reg == nil {
		return
	}
	reg.BindCounter("engine/alignments", &c.alignments)
	reg.BindCounter("engine/cells", &c.cells)
	reg.BindCounter("engine/realignments", &c.realignments)
	reg.BindCounter("engine/tracebacks", &c.tracebacks)
	reg.BindCounter("engine/shadow_ends", &c.shadowEnds)
	reg.BindCounter("engine/queue_skips", &c.queueSkips)
	reg.BindHistogram("engine/align_ns", &c.alignNanos)
}

// AddAlignment records one score-only alignment over the given number of
// matrix cells; realigned marks alignments beyond the task's first.
func (c *Counters) AddAlignment(cells int64, realigned bool) {
	if c == nil {
		return
	}
	c.alignments.Inc()
	c.cells.Add(cells)
	if realigned {
		c.realignments.Inc()
	}
}

// ObserveAlignLatency records one alignment's wall time in the latency
// histogram (the SSW paper's cells-per-second throughput metric is this
// histogram's Sum against the cells counter).
func (c *Counters) ObserveAlignLatency(d time.Duration) {
	if c == nil {
		return
	}
	c.alignNanos.Observe(d)
}

// ObserveAlignLatencyPer attributes a group computation's wall time d to
// its members alignments: each member is recorded as one observation of
// d/members, so the histogram's count matches the alignment count and
// the reported mean stays a per-alignment figure. members <= 0 records
// nothing.
func (c *Counters) ObserveAlignLatencyPer(d time.Duration, members int) {
	if c == nil || members <= 0 {
		return
	}
	c.alignNanos.ObserveN(d/time.Duration(members), members)
}

// AddTraceback records one full-matrix traceback over cells entries.
func (c *Counters) AddTraceback(cells int64) {
	if c == nil {
		return
	}
	c.tracebacks.Inc()
	c.cells.Add(cells)
}

// AddShadowEnds records bottom-row cells rejected by shadow detection.
func (c *Counters) AddShadowEnds(n int64) {
	if c == nil || n == 0 {
		return
	}
	c.shadowEnds.Add(n)
}

// AddQueueSkip records a top alignment accepted without realignment.
func (c *Counters) AddQueueSkip() {
	if c == nil {
		return
	}
	c.queueSkips.Inc()
}

// Snapshot is a point-in-time copy of the counters.
type Snapshot struct {
	Alignments   int64
	Cells        int64
	Realignments int64
	Tracebacks   int64
	ShadowEnds   int64
	QueueSkips   int64
	// AlignLatency is the per-alignment wall-time histogram.
	AlignLatency obs.HistogramSnapshot
}

// Snapshot returns the current counter values (zero Snapshot for nil).
func (c *Counters) Snapshot() Snapshot {
	if c == nil {
		return Snapshot{}
	}
	return Snapshot{
		Alignments:   c.alignments.Load(),
		Cells:        c.cells.Load(),
		Realignments: c.realignments.Load(),
		Tracebacks:   c.tracebacks.Load(),
		ShadowEnds:   c.shadowEnds.Load(),
		QueueSkips:   c.queueSkips.Load(),
		AlignLatency: c.alignNanos.Snapshot(),
	}
}

// RealignmentReduction returns the fraction of potential realignments the
// best-first queue avoided, given the number of splits and top alignments
// found. Without the heuristic, every accepted top alignment would force
// all splits-1 other tasks to realign; the paper reports 90-97% of those
// are avoided.
func (s Snapshot) RealignmentReduction(splits, tops int) float64 {
	if tops <= 1 {
		return 0
	}
	potential := int64(tops-1) * int64(splits)
	if potential == 0 {
		return 0
	}
	return 1 - float64(s.Realignments)/float64(potential)
}

// String formats the snapshot for -stats output.
func (s Snapshot) String() string {
	return fmt.Sprintf("alignments=%d realignments=%d tracebacks=%d cells=%d shadow-ends=%d queue-skips=%d",
		s.Alignments, s.Realignments, s.Tracebacks, s.Cells, s.ShadowEnds, s.QueueSkips)
}
