// Package stats provides instrumentation counters for the alignment
// engine. The counters back the paper's percentage claims: realignments
// avoided by the queue heuristic (Section 3, 90-97%), speculation
// overhead of SIMD-style group scheduling (Section 5.1, <0.70%) and of
// the parallel schedulers (Section 5.2, up to 8.4%).
//
// The counters are built on the primitives of package obs, so a
// Counters can be bound into an obs.Registry (Bind) and served live
// from the /metrics debug endpoint alongside cluster telemetry.
//
// All methods are safe on a nil receiver, so hot paths can thread an
// optional *Counters without branching at call sites.
package stats

import (
	"fmt"
	"time"

	"repro/internal/obs"
)

// NumTiers is the size of the per-tier alignment counter array. It
// must cover every multialign.Tier ordinal; stats cannot import
// multialign (multialign threads *Counters through its scratch), so
// the engine asserts the correspondence in a test.
const NumTiers = 3

// TierNames maps tier ordinals to the exposition names used in
// per-tier counters and Usage.KernelTiers. Index i is
// multialign.Tier(i).String().
var TierNames = [NumTiers]string{"scalar", "int32x8", "int16x16"}

// Counters accumulates engine activity. Safe for concurrent use; the
// zero value is ready.
type Counters struct {
	alignments   obs.Counter // score-only matrix computations
	cells        obs.Counter // matrix entries computed
	realignments obs.Counter // alignments beyond each task's first
	tracebacks   obs.Counter // full-matrix traceback computations
	shadowEnds   obs.Counter // bottom-row cells rejected as shadows
	queueSkips   obs.Counter // acceptances straight from the queue (no realign needed)
	alignNanos   obs.Histogram

	cpuNanos  obs.Counter           // thread CPU attributed to compute goroutines
	tierAlign [NumTiers]obs.Counter // alignments served per kernel tier
	tierRerun obs.Counter           // int16 saturation re-runs (extra int32 passes)
}

// Bind registers every counter in reg under the engine/ namespace, so
// a registry snapshot reads the live values. No-op when either side is
// nil.
func (c *Counters) Bind(reg *obs.Registry) {
	if c == nil || reg == nil {
		return
	}
	reg.BindCounter("engine/alignments", &c.alignments)
	reg.BindCounter("engine/cells", &c.cells)
	reg.BindCounter("engine/realignments", &c.realignments)
	reg.BindCounter("engine/tracebacks", &c.tracebacks)
	reg.BindCounter("engine/shadow_ends", &c.shadowEnds)
	reg.BindCounter("engine/queue_skips", &c.queueSkips)
	reg.BindHistogram("engine/align_ns", &c.alignNanos)
	reg.BindCounter("engine/cpu_ns", &c.cpuNanos)
	for i := range c.tierAlign {
		reg.BindCounter("engine/alignments_tier/"+TierNames[i], &c.tierAlign[i])
	}
	reg.BindCounter("engine/tier_reruns", &c.tierRerun)
}

// AddAlignment records one score-only alignment over the given number of
// matrix cells; realigned marks alignments beyond the task's first.
func (c *Counters) AddAlignment(cells int64, realigned bool) {
	if c == nil {
		return
	}
	c.alignments.Inc()
	c.cells.Add(cells)
	if realigned {
		c.realignments.Inc()
	}
}

// ObserveAlignLatency records one alignment's wall time in the latency
// histogram (the SSW paper's cells-per-second throughput metric is this
// histogram's Sum against the cells counter).
func (c *Counters) ObserveAlignLatency(d time.Duration) {
	if c == nil {
		return
	}
	c.alignNanos.Observe(d)
}

// ObserveAlignLatencyPer attributes a group computation's wall time d to
// its members alignments: each member is recorded as one observation of
// d/members, so the histogram's count matches the alignment count and
// the reported mean stays a per-alignment figure. members <= 0 records
// nothing.
func (c *Counters) ObserveAlignLatencyPer(d time.Duration, members int) {
	if c == nil || members <= 0 {
		return
	}
	c.alignNanos.ObserveN(d/time.Duration(members), members)
}

// AddCPU attributes measured thread-CPU nanoseconds to the engine.
// Non-positive deltas are dropped.
func (c *Counters) AddCPU(ns int64) {
	if c == nil || ns <= 0 {
		return
	}
	c.cpuNanos.Add(ns)
}

// AddTierAlignments attributes n alignments to kernel tier ordinal
// tier; rerun marks the batch as having needed an int32 re-run after
// int16 saturation (counted separately — the alignments still belong
// to the tier that finally served them).
func (c *Counters) AddTierAlignments(tier int, n int64, rerun bool) {
	if c == nil || tier < 0 || tier >= NumTiers || n <= 0 {
		return
	}
	c.tierAlign[tier].Add(n)
	if rerun {
		c.tierRerun.Add(n)
	}
}

// AddTraceback records one full-matrix traceback over cells entries.
func (c *Counters) AddTraceback(cells int64) {
	if c == nil {
		return
	}
	c.tracebacks.Inc()
	c.cells.Add(cells)
}

// AddShadowEnds records bottom-row cells rejected by shadow detection.
func (c *Counters) AddShadowEnds(n int64) {
	if c == nil || n == 0 {
		return
	}
	c.shadowEnds.Add(n)
}

// AddQueueSkip records a top alignment accepted without realignment.
func (c *Counters) AddQueueSkip() {
	if c == nil {
		return
	}
	c.queueSkips.Inc()
}

// Snapshot is a point-in-time copy of the counters.
type Snapshot struct {
	Alignments   int64
	Cells        int64
	Realignments int64
	Tracebacks   int64
	ShadowEnds   int64
	QueueSkips   int64
	// AlignLatency is the per-alignment wall-time histogram.
	AlignLatency obs.HistogramSnapshot
	// CPUNanos is attributed thread CPU; TierAlignments/TierReruns the
	// kernel-tier mix (see AddTierAlignments).
	CPUNanos       int64
	TierAlignments [NumTiers]int64
	TierReruns     int64
}

// KernelTiers renders the tier mix as the exposition map used by
// attrib.Usage: nonzero tiers by name, plus "rerun" for saturation
// re-runs. Returns nil when no tier was attributed.
func (s Snapshot) KernelTiers() map[string]int64 {
	var m map[string]int64
	for i, n := range s.TierAlignments {
		if n == 0 {
			continue
		}
		if m == nil {
			m = make(map[string]int64, NumTiers+1)
		}
		m[TierNames[i]] = n
	}
	if s.TierReruns != 0 {
		if m == nil {
			m = make(map[string]int64, 1)
		}
		m["rerun"] = s.TierReruns
	}
	return m
}

// AddSnapshot folds another set's snapshot into this one. The serving
// layer uses it to accumulate per-run engine work into one registry-
// bound lifetime set, keeping exported engine/ counters monotone across
// requests (see repro.Options.Counters). Nil-safe on the receiver.
func (c *Counters) AddSnapshot(s Snapshot) {
	if c == nil {
		return
	}
	c.alignments.Add(s.Alignments)
	c.cells.Add(s.Cells)
	c.realignments.Add(s.Realignments)
	c.tracebacks.Add(s.Tracebacks)
	c.shadowEnds.Add(s.ShadowEnds)
	c.queueSkips.Add(s.QueueSkips)
	c.alignNanos.AddSnapshot(s.AlignLatency)
	c.cpuNanos.Add(s.CPUNanos)
	for i, n := range s.TierAlignments {
		c.tierAlign[i].Add(n)
	}
	c.tierRerun.Add(s.TierReruns)
}

// Snapshot returns the current counter values (zero Snapshot for nil).
func (c *Counters) Snapshot() Snapshot {
	if c == nil {
		return Snapshot{}
	}
	s := Snapshot{
		Alignments:   c.alignments.Load(),
		Cells:        c.cells.Load(),
		Realignments: c.realignments.Load(),
		Tracebacks:   c.tracebacks.Load(),
		ShadowEnds:   c.shadowEnds.Load(),
		QueueSkips:   c.queueSkips.Load(),
		AlignLatency: c.alignNanos.Snapshot(),
		CPUNanos:     c.cpuNanos.Load(),
		TierReruns:   c.tierRerun.Load(),
	}
	for i := range c.tierAlign {
		s.TierAlignments[i] = c.tierAlign[i].Load()
	}
	return s
}

// RealignmentReduction returns the fraction of potential realignments the
// best-first queue avoided, given the number of splits and top alignments
// found. Without the heuristic, every accepted top alignment would force
// all splits-1 other tasks to realign; the paper reports 90-97% of those
// are avoided.
func (s Snapshot) RealignmentReduction(splits, tops int) float64 {
	if tops <= 1 {
		return 0
	}
	potential := int64(tops-1) * int64(splits)
	if potential == 0 {
		return 0
	}
	return 1 - float64(s.Realignments)/float64(potential)
}

// String formats the snapshot for -stats output.
func (s Snapshot) String() string {
	return fmt.Sprintf("alignments=%d realignments=%d tracebacks=%d cells=%d shadow-ends=%d queue-skips=%d",
		s.Alignments, s.Realignments, s.Tracebacks, s.Cells, s.ShadowEnds, s.QueueSkips)
}
