// Package parallel implements the shared-memory level of the paper's
// three-level parallelisation (Section 4.2): a dynamic task-scheduling
// system in which worker threads repeatedly take the highest-scoring
// unassigned task from the shared best-first queue, realign it, and
// reinsert it. A new top alignment is accepted when the task at the head
// of the queue has already been aligned with the current override
// triangle.
//
// The parallelism is speculative: while one task's acceptance is being
// traced back, other workers keep realigning against the previous
// triangle snapshot. Their results are stamped with the triangle they
// were computed against, so they re-enter the queue as valid upper
// bounds — the paper's "the work for the superfluous tasks is not
// wasted".
//
// Two acceptance modes are provided:
//
//   - Speculative (the paper's): the head task is accepted as soon as it
//     is current, even while other tasks are in flight. Up to a few
//     percent more alignments are performed (the paper measures 8.4%)
//     and equal-scoring tops may be accepted in a different order.
//   - Strict: acceptance additionally waits until no task is in flight.
//     This mode provably yields bit-identical results to the sequential
//     algorithm and is the default for correctness-sensitive callers.
//
// Workers are goroutines; on a multi-core machine they map to OS threads
// exactly like the paper's Pthreads implementation.
package parallel

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/obs"
	"repro/internal/topalign"
	"repro/internal/triangle"
)

// Config controls the shared-memory scheduler.
type Config struct {
	// Workers is the number of worker goroutines; 0 means GOMAXPROCS.
	Workers int
	// Speculative enables the paper's acceptance rule (see package
	// comment). Off = strict mode, bit-identical to sequential.
	Speculative bool
}

// Find computes top alignments with the shared-memory scheduler.
func Find(s []byte, cfg topalign.Config, pcfg Config) (*topalign.Result, error) {
	e, err := topalign.NewEngine(s, cfg)
	if err != nil {
		return nil, err
	}
	if err := Run(e, pcfg); err != nil {
		return nil, err
	}
	return &topalign.Result{
		SeqLen: e.Len(),
		Tops:   e.Tops(),
		Stats:  e.Config().Counters.Snapshot(),
	}, nil
}

// Run drives an engine to completion with pcfg.Workers goroutines.
func Run(e *topalign.Engine, pcfg Config) error {
	workers := pcfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	st := &sched{
		e:        e,
		queue:    topalign.InitialQueue(e),
		snapshot: e.TriangleSnapshot(),
		spec:     pcfg.Speculative,
		minScore: e.Config().MinScore,
		numTops:  e.Config().NumTops,
	}
	st.cond = sync.NewCond(&st.mu)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st.worker()
		}()
	}
	wg.Wait()
	return st.err
}

// sched is the shared scheduler state. All fields are protected by mu;
// snapshot is an immutable clone workers may read after copying the
// pointer under the lock.
type sched struct {
	mu   sync.Mutex
	cond *sync.Cond

	e        *topalign.Engine
	queue    *topalign.TaskQueue
	snapshot *triangle.Triangle // immutable clone of the current triangle
	snapTops int                // top count the snapshot corresponds to

	inflight  int
	accepting bool
	done      bool
	err       error

	spec     bool
	minScore int32
	numTops  int
}

// worker is the scheduling loop each goroutine runs.
func (st *sched) worker() {
	st.mu.Lock()
	defer st.mu.Unlock()
	for {
		if st.done {
			return
		}
		head := st.queue.Peek()
		if head == nil {
			if st.inflight == 0 && !st.accepting {
				st.finish(nil)
				return
			}
			st.cond.Wait()
			continue
		}
		if head.Score != topalign.Infinity && head.Score < st.minScore {
			// Best possible remaining score is below threshold.
			if st.inflight == 0 && !st.accepting {
				st.finish(nil)
				return
			}
			st.cond.Wait() // let in-flight results land; they may raise nothing
			continue
		}
		if head.AlignedWith == st.snapTops {
			// Candidate top alignment.
			if st.accepting || (!st.spec && st.inflight > 0) {
				st.cond.Wait()
				continue
			}
			st.accept(st.queue.Pop())
			continue
		}
		// Stale: realign against the current snapshot, outside the lock.
		t := st.queue.Pop()
		snap, snapTops := st.snapshot, st.snapTops
		st.inflight++
		st.mu.Unlock()

		topalign.Realign(st.e, t, snap, snapTops)

		st.mu.Lock()
		st.inflight--
		if snapTops != st.snapTops {
			// The triangle advanced while we computed: the result is a
			// stale upper bound, the paper's speculation overhead.
			st.e.Config().Trace.Record(obs.EvSpecWaste, -1, int32(t.R), int64(snapTops))
		}
		st.queue.Push(t)
		st.cond.Broadcast()
	}
}

// accept performs the acceptance (including the sequential traceback)
// for task t. Called with the lock held; the traceback runs unlocked so
// speculative workers can keep realigning against the old snapshot.
func (st *sched) accept(t *topalign.Task) {
	st.accepting = true
	st.mu.Unlock()

	// Only this goroutine touches the engine's mutable state while
	// st.accepting is set; realigning workers use the old snapshot.
	_, err := topalign.Accept(st.e, t)

	st.mu.Lock()
	st.accepting = false
	if err != nil {
		st.finish(fmt.Errorf("parallel: %w", err))
		return
	}
	st.snapshot = st.e.TriangleSnapshot()
	st.snapTops = st.e.NumTopsFound()
	st.queue.Push(t) // score unchanged: still a valid upper bound
	if st.e.NumTopsFound() >= st.numTops {
		st.finish(nil)
		return
	}
	st.cond.Broadcast()
}

// finish marks the run complete. Called with the lock held.
func (st *sched) finish(err error) {
	st.done = true
	if err != nil && st.err == nil {
		st.err = err
	}
	st.cond.Broadcast()
}
