// Package parallel implements the shared-memory level of the paper's
// three-level parallelisation (Section 4.2): a dynamic task-scheduling
// system in which worker threads repeatedly take the highest-scoring
// unassigned task from the shared best-first queue, realign it, and
// reinsert it. A new top alignment is accepted when the task at the head
// of the queue has already been aligned with the current override
// triangle.
//
// The parallelism is speculative: while one task's acceptance is being
// traced back, other workers keep realigning against the previous
// triangle snapshot. Their results are stamped with the triangle they
// were computed against, so they re-enter the queue as valid upper
// bounds — the paper's "the work for the superfluous tasks is not
// wasted".
//
// Two acceptance modes are provided:
//
//   - Speculative (the paper's): the head task is accepted as soon as it
//     is current, even while other tasks are in flight. Up to a few
//     percent more alignments are performed (the paper measures 8.4%)
//     and equal-scoring tops may be accepted in a different order.
//   - Strict: acceptance additionally waits until no task is in flight.
//     This mode provably yields bit-identical results to the sequential
//     algorithm and is the default for correctness-sensitive callers.
//
// Scheduling discipline (reworked for scalability):
//
//   - The queue is the only state guarded by the mutex; workers hold it
//     just long enough to pop or push a task.
//   - The triangle snapshot and its top count live together in one
//     immutable snapState behind an atomic pointer, so realigning
//     workers and external observers read it without the lock.
//   - Wakeups are targeted: each push or pop signals at most one waiting
//     worker, and a worker that pops while more runnable work remains
//     chains one further signal. Broadcast is reserved for termination.
//     This removes the wake-all convoy where every queue operation woke
//     every worker only for all but one to re-sleep.
//   - Every worker owns a topalign.Scratch, so realignments and
//     tracebacks run allocation-free once warm.
//
// Workers are goroutines; on a multi-core machine they map to OS threads
// exactly like the paper's Pthreads implementation. The composed
// configuration — group tasks (topalign.Config.GroupLanes > 1) under
// this scheduler — is the paper's level composition: each worker
// realigns a group of up to 8 neighbouring splits per grab with the
// SIMD-style group kernel.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/obs/attrib"
	"repro/internal/topalign"
	"repro/internal/triangle"
)

// Config controls the shared-memory scheduler.
type Config struct {
	// Workers is the number of worker goroutines; 0 means GOMAXPROCS.
	Workers int
	// Speculative enables the paper's acceptance rule (see package
	// comment). Off = strict mode, bit-identical to sequential.
	Speculative bool
}

// Find computes top alignments with the shared-memory scheduler.
func Find(s []byte, cfg topalign.Config, pcfg Config) (*topalign.Result, error) {
	e, err := topalign.NewEngine(s, cfg)
	if err != nil {
		return nil, err
	}
	if err := Run(e, pcfg); err != nil {
		return nil, err
	}
	return &topalign.Result{
		SeqLen: e.Len(),
		Tops:   e.Tops(),
		Stats:  e.Config().Counters.Snapshot(),
	}, nil
}

// Run drives an engine to completion with pcfg.Workers goroutines.
func Run(e *topalign.Engine, pcfg Config) error {
	workers := pcfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	st := &sched{
		e:        e,
		queue:    topalign.InitialQueue(e),
		spec:     pcfg.Speculative,
		minScore: e.Config().MinScore,
		numTops:  e.Config().NumTops,
	}
	st.snap.Store(&snapState{tri: e.TriangleSnapshot(), tops: e.NumTopsFound()})
	st.cond = sync.NewCond(&st.mu)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			// One span per worker goroutine, covering its whole scheduling
			// loop — constant overhead regardless of task count.
			cfg := e.Config()
			wsp := cfg.Spans.Start(cfg.SpanParent, "parallel.worker")
			wsp.SetRank(cfg.SpanRank)
			wsp.SetArg(int64(idx))
			defer wsp.End()
			// Pin the worker to its thread and attribute its CPU for
			// the whole loop — one clock read per worker, not per task.
			var sw attrib.Stopwatch
			sw.Start()
			defer func() { cfg.Counters.AddCPU(sw.Stop()) }()
			st.worker(topalign.NewScratch())
		}(w)
	}
	wg.Wait()
	return st.err
}

// snapState pairs an immutable triangle clone with the top count it
// corresponds to. Publishing both behind one atomic pointer keeps them
// consistent without holding the scheduler lock to read them.
type snapState struct {
	tri  *triangle.Triangle
	tops int
}

// sched is the shared scheduler state. The queue and the inflight /
// accepting / done bookkeeping are protected by mu; snap is read
// lock-free.
type sched struct {
	mu   sync.Mutex
	cond *sync.Cond

	e     *topalign.Engine
	queue *topalign.TaskQueue

	snap atomic.Pointer[snapState]

	inflight  int
	accepting bool
	done      bool
	err       error

	spec     bool
	minScore int32
	numTops  int
}

// worker is the scheduling loop each goroutine runs, with its own
// kernel scratch.
func (st *sched) worker(sc *topalign.Scratch) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for {
		if st.done {
			return
		}
		head := st.queue.Peek()
		if head == nil {
			if st.inflight == 0 && !st.accepting {
				st.finish(nil)
				return
			}
			st.cond.Wait()
			continue
		}
		if head.Score != topalign.Infinity && head.Score < st.minScore {
			// Best possible remaining score is below threshold.
			if st.inflight == 0 && !st.accepting {
				st.finish(nil)
				return
			}
			st.cond.Wait() // let in-flight results land; they may raise nothing
			continue
		}
		snap := st.snap.Load() // coherent: stores happen under mu
		if head.AlignedWith == snap.tops {
			// Candidate top alignment.
			if st.accepting || (!st.spec && st.inflight > 0) {
				st.cond.Wait()
				continue
			}
			st.accept(st.queue.Pop(), sc)
			continue
		}
		// Stale: pop under the lock, realign outside it. If more
		// runnable work remains, chain a wakeup so an idle peer can
		// start on it concurrently.
		t := st.queue.Pop()
		st.inflight++
		if st.queue.Len() > 0 {
			st.cond.Signal()
		}
		st.mu.Unlock()

		topalign.RealignS(st.e, t, snap.tri, snap.tops, sc)

		st.mu.Lock()
		st.inflight--
		if snap.tops != st.snap.Load().tops {
			// The triangle advanced while we computed: the result is a
			// stale upper bound, the paper's speculation overhead.
			st.e.Config().Trace.Record(obs.EvSpecWaste, -1, int64(t.R), int64(snap.tops))
		}
		st.queue.Push(t)
		st.cond.Signal()
	}
}

// accept performs the acceptance (including the sequential traceback)
// for task t. Called with the lock held; the traceback runs unlocked so
// speculative workers can keep realigning against the old snapshot.
func (st *sched) accept(t *topalign.Task, sc *topalign.Scratch) {
	st.accepting = true
	st.mu.Unlock()

	// Only this goroutine touches the engine's mutable state while
	// st.accepting is set; realigning workers use the old snapshot.
	_, err := topalign.AcceptS(st.e, t, sc)

	st.mu.Lock()
	st.accepting = false
	if err != nil {
		st.finish(fmt.Errorf("parallel: %w", err))
		return
	}
	st.snap.Store(&snapState{tri: st.e.TriangleSnapshot(), tops: st.e.NumTopsFound()})
	st.queue.Push(t) // score unchanged: still a valid upper bound
	if st.e.NumTopsFound() >= st.numTops {
		st.finish(nil)
		return
	}
	st.cond.Signal()
}

// finish marks the run complete. Called with the lock held.
func (st *sched) finish(err error) {
	st.done = true
	if err != nil && st.err == nil {
		st.err = err
	}
	st.cond.Broadcast()
}
