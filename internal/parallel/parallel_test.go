package parallel

import (
	"testing"

	"repro/internal/align"
	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/scoring"
	"repro/internal/seq"
	"repro/internal/stats"
	"repro/internal/topalign"
)

var proteinParams = align.Params{Exch: scoring.BLOSUM62, Gap: scoring.DefaultProteinGap}

// Strict mode must produce bit-identical results to the sequential
// algorithm for any worker count.
func TestStrictMatchesSequential(t *testing.T) {
	for seed := uint64(0); seed < 3; seed++ {
		q := seq.SyntheticTitin(160, seed)
		cfg := topalign.Config{Params: proteinParams, NumTops: 8}
		want, err := topalign.Find(q.Codes, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4, 7} {
			got, err := Find(q.Codes, cfg, Config{Workers: workers})
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			assertSameTops(t, got.Tops, want.Tops)
		}
	}
}

func TestStrictMatchesSequentialGroupMode(t *testing.T) {
	q := seq.SyntheticTitin(140, 1)
	cfg := topalign.Config{Params: proteinParams, NumTops: 6, GroupLanes: 4}
	want, err := topalign.Find(q.Codes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Find(q.Codes, cfg, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	assertSameTops(t, got.Tops, want.Tops)
}

// Speculative mode may reorder equal-scoring tops but must uphold the
// core invariants: requested count, nonoverlap, and non-increasing
// scores... the last only within what speculation guarantees — each
// accepted score is a genuine alignment score under the triangle at
// acceptance, so we verify nonoverlap and score-set plausibility.
func TestSpeculativeInvariants(t *testing.T) {
	q := seq.SyntheticTitin(200, 4)
	cfg := topalign.Config{Params: proteinParams, NumTops: 10}
	res, err := Find(q.Codes, cfg, Config{Workers: 6, Speculative: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tops) != 10 {
		t.Fatalf("got %d tops, want 10", len(res.Tops))
	}
	seen := map[topalign.Pair]bool{}
	for _, top := range res.Tops {
		if top.Score <= 0 {
			t.Errorf("top %d has non-positive score %d", top.Index, top.Score)
		}
		for _, p := range top.Pairs {
			if seen[p] {
				t.Fatalf("pair %v reused: tops overlap", p)
			}
			seen[p] = true
		}
	}
	// Speculative and sequential runs find the same total alignment
	// signal (sum of scores) even if acceptance order differs slightly.
	seqRes, err := topalign.Find(q.Codes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sumSpec, sumSeq int64
	for i := range res.Tops {
		sumSpec += int64(res.Tops[i].Score)
		sumSeq += int64(seqRes.Tops[i].Score)
	}
	if diff := float64(sumSpec-sumSeq) / float64(sumSeq); diff < -0.1 || diff > 0.1 {
		t.Errorf("speculative score sum %d deviates more than 10%% from sequential %d", sumSpec, sumSeq)
	}
}

// With a single worker, speculative mode degenerates to the sequential
// algorithm exactly.
func TestSpeculativeSingleWorkerMatchesSequential(t *testing.T) {
	q := seq.SyntheticTitin(130, 6)
	cfg := topalign.Config{Params: proteinParams, NumTops: 7}
	want, err := topalign.Find(q.Codes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Find(q.Codes, cfg, Config{Workers: 1, Speculative: true})
	if err != nil {
		t.Fatal(err)
	}
	assertSameTops(t, got.Tops, want.Tops)
}

// The paper measures up to 8.4% more alignments from speculation. Check
// the overhead stays within a loose multiple of that on our workloads.
func TestSpeculationOverheadBounded(t *testing.T) {
	q := seq.SyntheticTitin(200, 8)
	seqC, parC := &stats.Counters{}, &stats.Counters{}
	cfgSeq := topalign.Config{Params: proteinParams, NumTops: 10, Counters: seqC}
	cfgPar := topalign.Config{Params: proteinParams, NumTops: 10, Counters: parC}
	if _, err := topalign.Find(q.Codes, cfgSeq); err != nil {
		t.Fatal(err)
	}
	if _, err := Find(q.Codes, cfgPar, Config{Workers: 8, Speculative: true}); err != nil {
		t.Fatal(err)
	}
	seqA := seqC.Snapshot().Alignments
	parA := parC.Snapshot().Alignments
	overhead := float64(parA-seqA) / float64(seqA)
	if overhead > 0.5 {
		t.Errorf("speculation overhead %.1f%% (seq %d, spec %d alignments) exceeds 50%%",
			100*overhead, seqA, parA)
	}
	t.Logf("speculation overhead: %.2f%% (paper reports up to 8.4%%)", 100*overhead)
}

func TestMinScoreStopsEarly(t *testing.T) {
	q := seq.Random(seq.Protein, 100, 3)
	cfg := topalign.Config{Params: proteinParams, NumTops: 20, MinScore: 10000}
	res, err := Find(q.Codes, cfg, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tops) != 0 {
		t.Errorf("got %d tops despite impossible MinScore", len(res.Tops))
	}
}

func TestQueueExhaustion(t *testing.T) {
	s := seq.DNA.MustEncode("ATAT")
	cfg := topalign.Config{
		Params:  align.Params{Exch: scoring.PaperDNA, Gap: scoring.PaperGap},
		NumTops: 50,
	}
	res, err := Find(s, cfg, Config{Workers: 3, Speculative: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tops) == 0 || len(res.Tops) >= 50 {
		t.Errorf("got %d tops", len(res.Tops))
	}
}

func TestConfigErrors(t *testing.T) {
	s := seq.DNA.MustEncode("ACGT")
	if _, err := Find(s, topalign.Config{}, Config{}); err == nil {
		t.Error("invalid topalign config accepted")
	}
}

// TestStrictDifferentialWithJournal is the full differential battery:
// across several seeds, strict shared-memory runs and strict in-process
// cluster runs must be bit-identical to the sequential algorithm in
// BOTH senses — the top alignments themselves AND the journalled accept
// order (which split was accepted when, at what score). The accept
// sequence is the scheduler-visible trace of the run, so agreement here
// means the parallel engines made the same decisions in the same order,
// not just that they converged on the same answer.
func TestStrictDifferentialWithJournal(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		q := seq.SyntheticTitin(140, seed)
		cfg := topalign.Config{Params: proteinParams, NumTops: 6}

		seqJnl := obs.NewJournal(0)
		seqCfg := cfg
		seqCfg.Trace = seqJnl
		want, err := topalign.Find(q.Codes, seqCfg)
		if err != nil {
			t.Fatal(err)
		}
		wantAccepts := seqJnl.Accepts()
		if len(wantAccepts) != len(want.Tops) {
			t.Fatalf("seed %d: sequential journal has %d accepts for %d tops",
				seed, len(wantAccepts), len(want.Tops))
		}
		for i, ev := range wantAccepts {
			if int(ev.R) != want.Tops[i].Split || ev.Arg != int64(want.Tops[i].Score) {
				t.Fatalf("seed %d: accept %d journalled as (split %d, score %d), tops say (%d, %d)",
					seed, i, ev.R, ev.Arg, want.Tops[i].Split, want.Tops[i].Score)
			}
		}

		parJnl := obs.NewJournal(0)
		parCfg := cfg
		parCfg.Trace = parJnl
		got, err := Find(q.Codes, parCfg, Config{Workers: 4})
		if err != nil {
			t.Fatalf("seed %d parallel: %v", seed, err)
		}
		assertSameTops(t, got.Tops, want.Tops)
		assertSameAccepts(t, "parallel", seed, parJnl, wantAccepts)

		cluJnl := obs.NewJournal(0)
		cluCfg := cfg
		cluCfg.Trace = cluJnl
		cres, err := cluster.RunLocal(q.Codes,
			cluster.Config{Top: cluCfg},
			cluster.LocalSpec{Slaves: 2, ThreadsPerSlave: 2})
		if err != nil {
			t.Fatalf("seed %d cluster: %v", seed, err)
		}
		assertSameTops(t, cres.Tops, want.Tops)
		assertSameAccepts(t, "cluster", seed, cluJnl, wantAccepts)
	}
}

// TestStrictHammer stress-tests the reworked scheduler: many more
// workers than cores, scalar and 8-lane group tasks, across six seeds.
// Strict mode must stay bit-identical to the sequential algorithm under
// maximum contention on the queue, the targeted wakeups, and the atomic
// snapshot pointer. Run with -race this doubles as the data-race gate
// for the scratch-per-worker and snapState machinery.
func TestStrictHammer(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		q := seq.SyntheticTitin(180, seed)
		for _, lanes := range []int{1, 8} {
			cfg := topalign.Config{Params: proteinParams, NumTops: 8, GroupLanes: lanes}
			want, err := topalign.Find(q.Codes, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{3, 16} {
				got, err := Find(q.Codes, cfg, Config{Workers: workers})
				if err != nil {
					t.Fatalf("seed %d lanes %d workers %d: %v", seed, lanes, workers, err)
				}
				assertSameTops(t, got.Tops, want.Tops)
			}
		}
	}
}

// assertSameAccepts checks a run's journalled accept sequence against
// the sequential reference, and that the journal itself is well-formed
// (strictly increasing seq, monotone timestamps).
func assertSameAccepts(t *testing.T, mode string, seed uint64, jnl *obs.Journal, want []obs.Event) {
	t.Helper()
	evs := jnl.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("%s seed %d: journal seq not strictly increasing at %d", mode, seed, i)
		}
		if evs[i].At < evs[i-1].At {
			t.Fatalf("%s seed %d: journal timestamps not monotone at %d", mode, seed, i)
		}
	}
	if jnl.Dropped() != 0 {
		t.Fatalf("%s seed %d: journal dropped %d events", mode, seed, jnl.Dropped())
	}
	got := jnl.Accepts()
	if len(got) != len(want) {
		t.Fatalf("%s seed %d: %d accepts, want %d", mode, seed, len(got), len(want))
	}
	for i := range want {
		if got[i].R != want[i].R || got[i].Arg != want[i].Arg {
			t.Fatalf("%s seed %d: accept %d = (split %d, score %d), want (split %d, score %d)",
				mode, seed, i, got[i].R, got[i].Arg, want[i].R, want[i].Arg)
		}
	}
}

func assertSameTops(t *testing.T, got, want []topalign.TopAlignment) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d tops, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Score != want[i].Score || got[i].Split != want[i].Split {
			t.Fatalf("top %d = (split %d, score %d), want (split %d, score %d)",
				i+1, got[i].Split, got[i].Score, want[i].Split, want[i].Score)
		}
		if len(got[i].Pairs) != len(want[i].Pairs) {
			t.Fatalf("top %d has %d pairs, want %d", i+1, len(got[i].Pairs), len(want[i].Pairs))
		}
		for j := range want[i].Pairs {
			if got[i].Pairs[j] != want[i].Pairs[j] {
				t.Fatalf("top %d pair %d = %v, want %v", i+1, j, got[i].Pairs[j], want[i].Pairs[j])
			}
		}
	}
}
