// Package swar implements SIMD-within-a-register (SWAR) arithmetic on
// four 16-bit lanes packed into a uint64. It is this reproduction's
// substitute for the SSE/SSE2 multimedia extensions of Section 4.1 of
// the paper: the multi-matrix alignment kernel in package multialign
// executes the same lane-parallel dataflow — four (or eight, using two
// words) interleaved alignment matrices per operation — without hardware
// intrinsics, which Go does not expose.
//
// Unless stated otherwise, lane values must be in [0, 2^15): the lane's
// top bit is the guard bit the comparison trick needs. The alignment
// kernel guarantees this by capping scores at its saturation limit and
// clamping all intermediates at zero (local alignment scores are
// non-negative, and the Gotoh gap accumulators can be floor-clamped at
// zero without changing any result — see multialign).
package swar

// Lanes is the number of 16-bit lanes per word.
const Lanes = 4

// H masks the guard (top) bit of every lane.
const H uint64 = 0x8000_8000_8000_8000

// ones replicates a 16-bit value into every lane when multiplied.
const ones uint64 = 0x0001_0001_0001_0001

// Splat broadcasts v into all four lanes.
func Splat(v uint16) uint64 {
	return uint64(v) * ones
}

// Pack assembles a word from four lane values (lane 0 in the least
// significant bits).
func Pack(v [Lanes]uint16) uint64 {
	return uint64(v[0]) | uint64(v[1])<<16 | uint64(v[2])<<32 | uint64(v[3])<<48
}

// Unpack splits a word into its four lane values.
func Unpack(w uint64) [Lanes]uint16 {
	return [Lanes]uint16{
		uint16(w),
		uint16(w >> 16),
		uint16(w >> 32),
		uint16(w >> 48),
	}
}

// Lane extracts lane i (0-based).
func Lane(w uint64, i int) uint16 {
	return uint16(w >> (16 * uint(i)))
}

// AddMod adds per lane, modulo 2^16, with no carry between lanes.
// Operands may use all 16 bits.
func AddMod(a, b uint64) uint64 {
	return ((a &^ H) + (b &^ H)) ^ ((a ^ b) & H)
}

// SubMod subtracts per lane, modulo 2^16, with no borrow between lanes.
// Operands may use all 16 bits.
func SubMod(a, b uint64) uint64 {
	return ((a | H) - (b &^ H)) ^ ((a ^ ^b) & H)
}

// GEMask returns 0xFFFF in every lane where a >= b and 0x0000 elsewhere.
// Both operands must have the guard bit clear (values < 2^15).
func GEMask(a, b uint64) uint64 {
	m := ((a | H) - b) & H
	return (m - (m >> 15)) | m
}

// Select returns a where mask is 0xFFFF and b where mask is 0x0000.
// mask must be a per-lane all-or-nothing mask (as produced by GEMask).
func Select(mask, a, b uint64) uint64 {
	return (a & mask) | (b &^ mask)
}

// Max returns the per-lane maximum. Values must be < 2^15.
// This is the packed MAX operator the paper highlights as a key source
// of the SSE speedup (five MAX operations per matrix entry).
func Max(a, b uint64) uint64 {
	return Select(GEMask(a, b), a, b)
}

// Min returns the per-lane minimum. Values must be < 2^15.
func Min(a, b uint64) uint64 {
	return Select(GEMask(a, b), b, a)
}

// SubSat returns per-lane max(0, a-b) (saturating-at-zero subtraction).
// Values must be < 2^15.
func SubSat(a, b uint64) uint64 {
	return SubMod(a, b) & GEMask(a, b)
}

// AddBiasClamp0 computes per-lane max(0, a + e) where eBiased is
// Splat/Pack of (e + bias) and biasW is Splat(bias). The caller must
// guarantee a + e + bias < 2^15 per lane.
func AddBiasClamp0(a, eBiased, biasW uint64) uint64 {
	return SubSat(AddMod(a, eBiased), biasW)
}
