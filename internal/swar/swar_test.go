package swar

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestSplatPackUnpackLane(t *testing.T) {
	w := Splat(0x1234)
	for i := 0; i < Lanes; i++ {
		if Lane(w, i) != 0x1234 {
			t.Errorf("lane %d of splat = %#x", i, Lane(w, i))
		}
	}
	v := [Lanes]uint16{1, 2, 3, 0x7fff}
	w = Pack(v)
	if Unpack(w) != v {
		t.Errorf("Unpack(Pack(%v)) = %v", v, Unpack(w))
	}
	for i, want := range v {
		if Lane(w, i) != want {
			t.Errorf("Lane(%d) = %d, want %d", i, Lane(w, i), want)
		}
	}
}

// laneRand15 draws four random lane values with the guard bit clear.
func laneRand15(r *rand.Rand) [Lanes]uint16 {
	var v [Lanes]uint16
	for i := range v {
		v[i] = uint16(r.IntN(1 << 15))
	}
	return v
}

// laneRand16 draws four random full-width lane values.
func laneRand16(r *rand.Rand) [Lanes]uint16 {
	var v [Lanes]uint16
	for i := range v {
		v[i] = uint16(r.IntN(1 << 16))
	}
	return v
}

func TestAddSubModAgainstScalar(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 2))
	for n := 0; n < 10000; n++ {
		a, b := laneRand16(r), laneRand16(r)
		gotAdd := Unpack(AddMod(Pack(a), Pack(b)))
		gotSub := Unpack(SubMod(Pack(a), Pack(b)))
		for i := 0; i < Lanes; i++ {
			if gotAdd[i] != a[i]+b[i] {
				t.Fatalf("AddMod lane %d: %d+%d = %d, want %d", i, a[i], b[i], gotAdd[i], a[i]+b[i])
			}
			if gotSub[i] != a[i]-b[i] {
				t.Fatalf("SubMod lane %d: %d-%d = %d, want %d", i, a[i], b[i], gotSub[i], a[i]-b[i])
			}
		}
	}
}

func TestComparisonOpsAgainstScalar(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 4))
	for n := 0; n < 10000; n++ {
		a, b := laneRand15(r), laneRand15(r)
		wa, wb := Pack(a), Pack(b)
		ge := Unpack(GEMask(wa, wb))
		mx := Unpack(Max(wa, wb))
		mn := Unpack(Min(wa, wb))
		ss := Unpack(SubSat(wa, wb))
		for i := 0; i < Lanes; i++ {
			wantGE := uint16(0)
			if a[i] >= b[i] {
				wantGE = 0xFFFF
			}
			if ge[i] != wantGE {
				t.Fatalf("GEMask lane %d: %d>=%d -> %#x", i, a[i], b[i], ge[i])
			}
			if want := max(a[i], b[i]); mx[i] != want {
				t.Fatalf("Max lane %d: max(%d,%d) = %d", i, a[i], b[i], mx[i])
			}
			if want := min(a[i], b[i]); mn[i] != want {
				t.Fatalf("Min lane %d: min(%d,%d) = %d", i, a[i], b[i], mn[i])
			}
			want := uint16(0)
			if a[i] >= b[i] {
				want = a[i] - b[i]
			}
			if ss[i] != want {
				t.Fatalf("SubSat lane %d: %d-%d = %d, want %d", i, a[i], b[i], ss[i], want)
			}
		}
	}
}

func TestAddBiasClamp0(t *testing.T) {
	const bias = 256
	biasW := Splat(bias)
	r := rand.New(rand.NewPCG(5, 6))
	for n := 0; n < 10000; n++ {
		var a [Lanes]uint16
		var e [Lanes]int16
		for i := range a {
			a[i] = uint16(r.IntN(16000))
			e[i] = int16(r.IntN(2*bias) - bias)
		}
		var eb [Lanes]uint16
		for i := range eb {
			eb[i] = uint16(int(e[i]) + bias)
		}
		got := Unpack(AddBiasClamp0(Pack(a), Pack(eb), biasW))
		for i := 0; i < Lanes; i++ {
			want := int(a[i]) + int(e[i])
			if want < 0 {
				want = 0
			}
			if int(got[i]) != want {
				t.Fatalf("lane %d: %d + %d = %d, want %d", i, a[i], e[i], got[i], want)
			}
		}
	}
}

func TestSelect(t *testing.T) {
	a := Pack([Lanes]uint16{1, 2, 3, 4})
	b := Pack([Lanes]uint16{10, 20, 30, 40})
	mask := Pack([Lanes]uint16{0xFFFF, 0, 0xFFFF, 0})
	got := Unpack(Select(mask, a, b))
	want := [Lanes]uint16{1, 20, 3, 40}
	if got != want {
		t.Errorf("Select = %v, want %v", got, want)
	}
}

// Property: Max is commutative, associative, idempotent on guarded lanes.
func TestMaxProperties(t *testing.T) {
	mask15 := uint64(0x7FFF_7FFF_7FFF_7FFF)
	f := func(x, y, z uint64) bool {
		a, b, c := x&mask15, y&mask15, z&mask15
		if Max(a, b) != Max(b, a) {
			return false
		}
		if Max(Max(a, b), c) != Max(a, Max(b, c)) {
			return false
		}
		return Max(a, a) == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: AddMod/SubMod are inverses per lane.
func TestAddSubInverseProperty(t *testing.T) {
	f := func(a, b uint64) bool {
		return SubMod(AddMod(a, b), b) == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
