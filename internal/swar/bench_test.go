package swar

import "testing"

// Op microbenchmarks: the per-word cost of the packed operators explains
// why SWAR cannot match hardware SSE (a packed MAX is several ALU ops
// here versus one instruction there; see EXPERIMENTS.md).

var sinkU64 uint64

func BenchmarkMax(b *testing.B) {
	x := Pack([Lanes]uint16{100, 2000, 30, 16000})
	y := Pack([Lanes]uint16{200, 1000, 40, 15000})
	for i := 0; i < b.N; i++ {
		sinkU64 = Max(x, sinkU64^y)
	}
}

func BenchmarkAddBiasClamp0(b *testing.B) {
	a := Pack([Lanes]uint16{100, 2000, 30, 15000})
	e := Splat(256 - 4)
	bias := Splat(256)
	for i := 0; i < b.N; i++ {
		sinkU64 = AddBiasClamp0(a^(sinkU64&1), e, bias)
	}
}

func BenchmarkSubSat(b *testing.B) {
	a := Pack([Lanes]uint16{100, 2000, 30, 15000})
	c := Splat(11)
	for i := 0; i < b.N; i++ {
		sinkU64 = SubSat(a^(sinkU64&1), c)
	}
}
