package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/serve"
)

// maxBodyBytes mirrors the serve layer's request-body bound.
const maxBodyBytes = 8 << 20

// Config sizes a Router. Shards is the only required field.
type Config struct {
	// Shards are the reproserve base URLs ("http://127.0.0.1:8081").
	Shards []string
	// VirtualNodes per shard on the ring (0 = DefaultVirtualNodes).
	VirtualNodes int
	// ProbeInterval is the /healthz polling period (0 = 1s).
	ProbeInterval time.Duration
	// HotKeyThreshold is the per-key request rate (per second) beyond
	// which a key fans out to replicas (0 = 64; negative disables).
	HotKeyThreshold int
	// HotKeyReplicas is the replica-set size for hot keys (0 = 2).
	HotKeyReplicas int
	// MaxSequenceLen rejects oversized sequences at the gateway
	// (0 = the serve default).
	MaxSequenceLen int
	// Metrics receives router telemetry under the router/ namespace.
	Metrics *obs.Registry
	// Traces, when non-nil, records router.route/router.upstream spans
	// and enables the merged GET /trace/{id} endpoint.
	Traces *trace.Collector
	// Client is the upstream HTTP client (nil = a pooled default).
	Client *http.Client
}

// Router is the stateless gateway. Create with New, run the health
// loop with Start, expose Handler, stop with Close.
type Router struct {
	cfg     Config
	ring    *Ring
	flights *flightGroup
	mon     *monitor
	hot     *hotTracker
	client  *http.Client

	requests    *obs.Counter
	retries     *obs.Counter
	shared      *obs.Counter
	hotFanout   *obs.Counter
	failovers   *obs.Counter
	sloDemotion *obs.Counter
	ringSize    *obs.Gauge
	upstreamNS  *obs.Histogram

	shardMu     sync.Mutex
	shardReqs   map[string]*obs.Counter
	shardErrs   map[string]*obs.Counter
	jobOwnersMu sync.Mutex
	jobOwners   map[string]string // job id -> shard that accepted it
}

// New builds a router over the given shards.
func New(cfg Config) *Router {
	if cfg.HotKeyThreshold == 0 {
		cfg.HotKeyThreshold = 64
	}
	if cfg.HotKeyReplicas <= 0 {
		cfg.HotKeyReplicas = 2
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     30 * time.Second,
		}}
	}
	rt := &Router{
		cfg:     cfg,
		ring:    NewRing(cfg.VirtualNodes),
		flights: newFlightGroup(),
		hot:     newHotTracker(cfg.HotKeyThreshold, time.Second),
		client:  client,

		requests:    cfg.Metrics.Counter("router/requests"),
		retries:     cfg.Metrics.Counter("router/retries"),
		shared:      cfg.Metrics.Counter("router/flight_shared"),
		hotFanout:   cfg.Metrics.Counter("router/hot_fanout"),
		failovers:   cfg.Metrics.Counter("router/failovers"),
		sloDemotion: cfg.Metrics.Counter("router/slo_demotions"),
		ringSize:    cfg.Metrics.Gauge("router/ring_size"),
		upstreamNS:  cfg.Metrics.Histogram("router/upstream_ns"),

		shardReqs: make(map[string]*obs.Counter),
		shardErrs: make(map[string]*obs.Counter),
		jobOwners: make(map[string]string),
	}
	rt.mon = newMonitor(rt.ring, cfg.Shards, client, cfg.ProbeInterval, func(string, bool) {
		rt.ringSize.Set(int64(rt.ring.Len()))
	})
	rt.ringSize.Set(int64(rt.ring.Len()))
	return rt
}

// Start launches the health-probe loop.
func (rt *Router) Start() { rt.mon.start() }

// Close stops the health-probe loop.
func (rt *Router) Close() { rt.mon.close() }

// Ring exposes the hash ring (tests and the stats endpoint).
func (rt *Router) Ring() *Ring { return rt.ring }

func (rt *Router) shardCounters(shard string) (reqs, errs *obs.Counter) {
	rt.shardMu.Lock()
	defer rt.shardMu.Unlock()
	if rt.shardReqs[shard] == nil {
		// Per-shard counters carry the shard URL as a label rather than a
		// flattened name segment: the Prometheus/OpenMetrics writers
		// escape the value, so a hostile or merely odd URL cannot corrupt
		// the exposition.
		rt.shardReqs[shard] = rt.cfg.Metrics.Counter(obs.LabeledName("router/shard_requests", "shard", shard))
		rt.shardErrs[shard] = rt.cfg.Metrics.Counter(obs.LabeledName("router/shard_errors", "shard", shard))
	}
	return rt.shardReqs[shard], rt.shardErrs[shard]
}

// Handler returns the gateway's HTTP mux:
//
//	POST /v1/analyze           route on cache key, singleflight, retry
//	POST /v1/jobs              route on cache key
//	GET  /v1/jobs              fan out to all shards, merge
//	GET  /v1/jobs/{id}         route to the accepting shard (learned)
//	GET  /v1/jobs/{id}/events  SSE proxy to the accepting shard
//	GET  /healthz              router liveness + ring size
//	GET  /metrics              router metrics (when Config.Metrics set)
//	GET  /trace/{id}           merged router+shard trace (when Traces set)
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", rt.handleAnalyze)
	mux.HandleFunc("POST /v1/jobs", rt.handleJobSubmit)
	mux.HandleFunc("GET /v1/jobs", rt.handleJobList)
	mux.HandleFunc("GET /v1/jobs/{id}", rt.handleJobGet)
	mux.HandleFunc("GET /v1/jobs/{id}/events", rt.handleJobEvents)
	mux.HandleFunc("GET /healthz", rt.handleHealth)
	if rt.cfg.Metrics != nil {
		mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
			obs.HandleMetrics(w, r, rt.cfg.Metrics)
		})
	}
	if rt.cfg.Traces != nil {
		mux.HandleFunc("GET /trace/{id}", rt.handleTrace)
	}
	return mux
}

func (rt *Router) handleHealth(w http.ResponseWriter, r *http.Request) {
	n := rt.ring.Len()
	status := http.StatusOK
	state := "ok"
	if n == 0 {
		// No live shards: the router is up but cannot serve; 503 tells
		// an outer balancer to look elsewhere.
		status = http.StatusServiceUnavailable
		state = "no-shards"
	}
	writeJSON(w, status, struct {
		Status string   `json:"status"`
		Shards []string `json:"shards"`
	}{state, rt.ring.Nodes()})
}

// decodeRequest parses and canonicalises an analyze/job body so the
// router derives exactly the cache key the shard will.
func (rt *Router) decodeRequest(w http.ResponseWriter, r *http.Request) (*serve.Request, string, bool) {
	var req serve.Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return nil, "", false
	}
	if err := req.Canonicalise(rt.cfg.MaxSequenceLen); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return nil, "", false
	}
	return &req, serve.CacheKey(&req), true
}

// targets assembles the ordered upstream list for key: the replica set
// (rotated by the hot-key round-robin cursor) followed by the
// remaining ring successors as failover spares.
func (rt *Router) targets(key string, now time.Time) (list []string, hot bool) {
	replicas := 1
	var rr uint64
	if hot, rr = rt.hot.touch(key, now); hot {
		replicas = rt.cfg.HotKeyReplicas
		rt.hotFanout.Inc()
	}
	n := rt.ring.Len()
	if n == 0 {
		return nil, hot
	}
	all := rt.ring.LookupN(key, n) // every live shard, in ring order
	if replicas > len(all) {
		replicas = len(all)
	}
	if replicas > 1 {
		// Round-robin within the replica set; the rotation preserves the
		// failover spares after it.
		set := make([]string, 0, len(all))
		off := int(rr % uint64(replicas))
		for i := 0; i < replicas; i++ {
			set = append(set, all[(off+i)%replicas])
		}
		list = append(set, all[replicas:]...)
	} else {
		list = all
	}
	return rt.demoteBurning(list), hot
}

// demoteBurning applies the SLO admission hint: when the preferred
// shard is burning its error budget (any objective paging on /slo) and
// a non-burning alternative exists, stable-partition non-burning shards
// to the front. Burning shards stay in the list — they are alive, and
// if the whole fleet is burning the ordering is unchanged — but new
// work prefers shards with budget to spend.
func (rt *Router) demoteBurning(list []string) []string {
	if len(list) < 2 || !rt.mon.isBurning(list[0]) {
		return list
	}
	healthy := make([]string, 0, len(list))
	burning := make([]string, 0, 2)
	for _, s := range list {
		if rt.mon.isBurning(s) {
			burning = append(burning, s)
		} else {
			healthy = append(healthy, s)
		}
	}
	if len(healthy) == 0 {
		return list
	}
	rt.sloDemotion.Inc()
	return append(healthy, burning...)
}

func (rt *Router) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	rt.requests.Inc()
	req, key, ok := rt.decodeRequest(w, r)
	if !ok {
		return
	}

	// Trace: adopt the caller's traceparent or start a fresh trace, so
	// critical-path attribution spans router -> shard.
	var rec *trace.Recorder
	var parent trace.SpanID
	if rt.cfg.Traces != nil {
		var tid trace.TraceID
		if sc, ok := trace.ParseTraceParent(r.Header.Get("traceparent")); ok {
			tid, parent = sc.Trace, sc.Span
		} else {
			tid = trace.NewTraceID()
		}
		rec = rt.cfg.Traces.Rec(tid)
		w.Header().Set("X-Trace-Id", tid.String())
	}
	root := rec.Start(parent, "router.route")
	root.SetArg(int64(len(req.Sequence)))
	defer root.End()

	body, err := json.Marshal(req)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}

	res, sharedFlight := rt.flights.do(key, func() *upstreamResult {
		targets, _ := rt.targets(key, time.Now())
		return rt.forward(r.Context(), rec, root.ID(), http.MethodPost, "/v1/analyze", body, targets)
	})
	if sharedFlight {
		rt.shared.Inc()
		root.SetName("router.route.shared")
	}
	rt.writeUpstream(w, res, sharedFlight)
}

// forward tries targets in order until one answers. Transport errors
// mark the shard down (passive failure detection) and fail over to the
// next ring node; a draining shard's 503 fails over without marking —
// the probe loop handles its ring exit. Any other status is the
// answer.
func (rt *Router) forward(ctx context.Context, rec *trace.Recorder, parent trace.SpanID, method, path string, body []byte, targets []string) *upstreamResult {
	if len(targets) == 0 {
		return &upstreamResult{err: fmt.Errorf("no live shards")}
	}
	var lastErr error
	for i, shard := range targets {
		if i > 0 {
			rt.retries.Inc()
			rt.failovers.Inc()
		}
		reqs, errs := rt.shardCounters(shard)
		reqs.Inc()
		up := rec.Start(parent, "router.upstream")
		res, err := rt.roundTrip(ctx, shard, method, path, body, rec, up)
		up.End()
		if err != nil {
			errs.Inc()
			rt.mon.markDown(shard)
			lastErr = err
			continue
		}
		if res.status == http.StatusServiceUnavailable {
			// Draining (or otherwise refusing): fail over. The shard
			// stays in the ring until the probe loop confirms — a single
			// 503 may be a momentary queue spike, not an exit.
			errs.Inc()
			lastErr = fmt.Errorf("%s: 503", shard)
			continue
		}
		return res
	}
	return &upstreamResult{err: fmt.Errorf("all shards failed: %w", lastErr)}
}

// roundTrip performs one upstream HTTP call, propagating traceparent
// so the shard's spans join the router's trace under the upstream span.
func (rt *Router) roundTrip(ctx context.Context, shard, method, path string, body []byte, rec *trace.Recorder, up *trace.Active) (*upstreamResult, error) {
	hreq, err := http.NewRequestWithContext(ctx, method, shard+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	if rec != nil && !up.ID().IsZero() {
		sc := trace.SpanContext{Trace: rec.TraceID(), Span: up.ID()}
		hreq.Header.Set("traceparent", sc.TraceParent())
	}
	t0 := time.Now()
	resp, err := rt.client.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return nil, err
	}
	rt.upstreamNS.Observe(time.Since(t0))

	hdr := make(http.Header, 8)
	for _, k := range []string{"Content-Type", "Retry-After", "X-Trace-Id",
		"X-Resource-Cpu-Ns", "X-Resource-Cells", "X-Resource-Alloc-Bytes",
		"X-Resource-Queue-Ns", "X-Resource-Cache-Read-Bytes",
		"X-Resource-Cache-Written-Bytes"} {
		if v := resp.Header.Get(k); v != "" {
			hdr.Set(k, v)
		}
	}
	return &upstreamResult{status: resp.StatusCode, header: hdr, body: b, shard: shard}, nil
}

// writeUpstream relays an upstream result to the client, tagging which
// shard answered and whether this request led or shared the flight.
func (rt *Router) writeUpstream(w http.ResponseWriter, res *upstreamResult, shared bool) {
	if res.err != nil {
		writeError(w, http.StatusBadGateway, res.err.Error())
		return
	}
	for k, vs := range res.header {
		for _, v := range vs {
			if k == "X-Trace-Id" && w.Header().Get(k) != "" {
				continue // the router's own trace id wins
			}
			w.Header().Add(k, v)
		}
	}
	w.Header().Set("X-Router-Shard", res.shard)
	if shared {
		w.Header().Set("X-Router-Flight", "shared")
	} else {
		w.Header().Set("X-Router-Flight", "lead")
	}
	w.WriteHeader(res.status)
	w.Write(res.body) //nolint:errcheck // client gone mid-body
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, serve.ErrorResponse{Error: msg})
}
