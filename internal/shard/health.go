package shard

import (
	"context"
	"encoding/json"
	"io"
	"math/rand/v2"
	"net/http"
	"sync"
	"time"
)

// monitor keeps the ring in sync with shard health. Two signals feed
// it:
//
//   - Active probes: every Interval each shard's /healthz is polled.
//     200 joins (or keeps) the shard in the ring; 503 — the serve
//     layer's drain signal — or any failure removes it. A draining
//     shard therefore leaves the ring gracefully: the router stops
//     routing to it while the shard finishes its queued work, exactly
//     the semantics serve.Drain promises load balancers.
//   - Passive detection: the routing path reports transport errors via
//     markDown, which evicts the shard immediately instead of waiting
//     out the probe interval.
//
// Downed shards are re-probed on a jittered exponential backoff
// (base = Interval, doubled per consecutive failure, capped, and
// uniformly jittered in [50%, 150%]) so a dead shard costs a bounded
// probe rate and a restarted fleet does not probe in lockstep.
type monitor struct {
	ring     *Ring
	client   *http.Client
	interval time.Duration
	maxOff   time.Duration
	onChange func(node string, up bool) // optional, for metrics/logs

	mu    sync.Mutex
	state map[string]*probeState
	stop  chan struct{}
	done  chan struct{}
}

type probeState struct {
	up       bool
	fails    int       // consecutive probe failures
	nextAt   time.Time // earliest next probe while down
	draining bool
	burning  bool // any SLO objective paging on the shard's /slo
}

// probeTimeout bounds one /healthz round trip; a shard that cannot
// answer a trivial GET in this window is not fit to take traffic.
const probeTimeout = 2 * time.Second

func newMonitor(ring *Ring, shards []string, client *http.Client, interval time.Duration, onChange func(string, bool)) *monitor {
	if interval <= 0 {
		interval = time.Second
	}
	m := &monitor{
		ring:     ring,
		client:   client,
		interval: interval,
		maxOff:   16 * interval,
		onChange: onChange,
		state:    make(map[string]*probeState),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for _, s := range shards {
		// Shards start optimistically in the ring: the fleet is usually
		// up, and the first probe round (or first failed request) evicts
		// anything that is not.
		m.state[s] = &probeState{up: true}
		ring.Add(s)
	}
	return m
}

// start launches the probe loop; stop with close().
func (m *monitor) start() {
	go func() {
		defer close(m.done)
		t := time.NewTicker(m.interval)
		defer t.Stop()
		for {
			select {
			case <-m.stop:
				return
			case <-t.C:
				m.probeAll()
			}
		}
	}()
}

func (m *monitor) close() {
	select {
	case <-m.stop:
	default:
		close(m.stop)
	}
	<-m.done
}

// probeAll probes every shard due for a probe. Probes run sequentially
// — fleets are small and probeTimeout bounds each — keeping the loop
// trivially race-free with itself.
func (m *monitor) probeAll() {
	m.mu.Lock()
	var due []string
	now := time.Now()
	for s, st := range m.state {
		if st.up || !now.Before(st.nextAt) {
			due = append(due, s)
		}
	}
	m.mu.Unlock()
	for _, s := range due {
		m.probe(s)
	}
}

// probe performs one /healthz round trip and applies the verdict.
func (m *monitor) probe(shard string) {
	ctx, cancel := context.WithTimeout(context.Background(), probeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, shard+"/healthz", nil)
	if err != nil {
		m.setDown(shard, false)
		return
	}
	resp, err := m.client.Do(req)
	if err != nil {
		m.setDown(shard, false)
		return
	}
	resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		m.setUp(shard)
		m.probeSLO(ctx, shard)
	case resp.StatusCode == http.StatusServiceUnavailable:
		// Draining: a deliberate, graceful exit — not a failure, so the
		// backoff clock does not grow, but the shard must stop receiving
		// keys now.
		m.setDown(shard, true)
	default:
		m.setDown(shard, false)
	}
}

func (m *monitor) setUp(shard string) {
	m.mu.Lock()
	st := m.state[shard]
	if st == nil {
		m.mu.Unlock()
		return
	}
	changed := !st.up
	st.up, st.fails, st.draining = true, 0, false
	st.nextAt = time.Time{}
	m.mu.Unlock()
	if changed {
		m.ring.Add(shard)
		if m.onChange != nil {
			m.onChange(shard, true)
		}
	}
}

func (m *monitor) setDown(shard string, draining bool) {
	m.mu.Lock()
	st := m.state[shard]
	if st == nil {
		m.mu.Unlock()
		return
	}
	changed := st.up
	st.up = false
	st.draining = draining
	if !draining {
		st.fails++
	}
	// Jittered exponential re-probe backoff. Draining shards keep the
	// base interval: they come back (restarted) on their own schedule
	// and are cheap to probe meanwhile.
	off := m.interval
	for i := 1; i < st.fails && off < m.maxOff; i++ {
		off *= 2
	}
	if off > m.maxOff {
		off = m.maxOff
	}
	off = off/2 + rand.N(off)
	st.nextAt = time.Now().Add(off)
	m.mu.Unlock()
	if changed {
		m.ring.Remove(shard)
		if m.onChange != nil {
			m.onChange(shard, false)
		}
	}
}

// markDown is the passive path: the router observed a transport error
// talking to shard. Evict immediately; the probe loop re-admits it
// when it answers /healthz again.
func (m *monitor) markDown(shard string) {
	m.setDown(shard, false)
}

// probeSLO piggybacks on a successful health probe to read the shard's
// burn state (GET /slo). A shard with any objective paging stays in the
// ring — it is alive and must keep its keys' cache locality — but the
// router demotes it behind non-burning alternatives when picking among
// equivalent targets (the admission hint). Probe failures clear the
// flag: no fresh signal means no demotion.
func (m *monitor) probeSLO(ctx context.Context, shard string) {
	burning := false
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, shard+"/slo", nil)
	if err == nil {
		if resp, err := m.client.Do(req); err == nil {
			if resp.StatusCode == http.StatusOK {
				var doc struct {
					Objectives []struct {
						Burning bool `json:"burning"`
					} `json:"objectives"`
				}
				body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
				if json.Unmarshal(body, &doc) == nil {
					for _, o := range doc.Objectives {
						burning = burning || o.Burning
					}
				}
			}
			resp.Body.Close()
		}
	}
	m.mu.Lock()
	if st := m.state[shard]; st != nil {
		st.burning = burning
	}
	m.mu.Unlock()
}

// isBurning reports the shard's last-probed SLO burn state.
func (m *monitor) isBurning(shard string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.state[shard]
	return st != nil && st.burning
}
