package shard

import (
	"encoding/json"
	"net/http"

	"repro/internal/obs/trace"
)

// Merged tracing. The router records router.route/router.upstream
// spans in its own collector under the trace id it propagates to the
// shard via traceparent; the shard records its pipeline spans under
// the same id in ITS collector, on ITS monotonic timeline. GET
// /trace/{id} on the router joins the two: it pulls the shard half
// from each live shard's /trace/{id}, re-bases shard time onto the
// router timeline, and serves one combined span set — the exact shape
// cmd/reprotrace consumes, so critical-path attribution spans the
// whole router -> shard -> engine pipeline.
//
// Re-basing: a shard span tree hangs under the router.upstream span
// that carried its request (the shard's root has that span as its
// propagated parent). The shard root's duration is the upstream
// duration minus two wire flights, so centring it inside the upstream
// window — offset = up.Start + (up.Dur - root.Dur)/2 - root.Start —
// splits the observed RTT symmetrically, the same trick the cluster
// layer uses for slave span re-basing.
func (rt *Router) handleTrace(w http.ResponseWriter, r *http.Request) {
	tid, ok := trace.ParseTraceID(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusBadRequest, "bad trace id")
		return
	}
	spans, dropped, ok := rt.cfg.Traces.Get(tid)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown trace")
		return
	}

	// Index the router's upstream spans; shard roots parent onto them.
	upstream := make(map[trace.SpanID]trace.Span)
	for _, sp := range spans {
		if sp.Name == "router.upstream" {
			upstream[sp.ID] = sp
		}
	}

	for _, shard := range rt.ring.Nodes() {
		res, err := rt.roundTrip(r.Context(), shard, http.MethodGet, "/trace/"+tid.String(), nil, nil, nil)
		if err != nil || res.status != http.StatusOK {
			continue // shard never saw this trace (or is gone): nothing to merge
		}
		var remote struct {
			Dropped uint64           `json:"dropped"`
			Spans   []trace.SpanJSON `json:"spans"`
		}
		if json.Unmarshal(res.body, &remote) != nil {
			continue
		}
		rspans := trace.FromJSON(remote.Spans)
		dropped += remote.Dropped

		// Find the re-base offset from the first shard span whose parent
		// is one of our upstream spans.
		var offset int64
		found := false
		for _, sp := range rspans {
			if up, ok := upstream[sp.Parent]; ok {
				offset = up.Start + (up.Dur-sp.Dur)/2 - sp.Start
				found = true
				break
			}
		}
		if !found {
			continue // not a span set this router produced (stale trace id reuse)
		}
		for _, sp := range rspans {
			sp.Start += offset
			sp.Trace = tid
			spans = append(spans, sp)
		}
	}

	writeJSON(w, http.StatusOK, struct {
		TraceID string           `json:"trace_id"`
		Dropped uint64           `json:"dropped"`
		Spans   []trace.SpanJSON `json:"spans"`
		Tree    []*trace.Node    `json:"tree"`
	}{tid.String(), dropped, trace.ToJSON(spans), trace.BuildTree(spans)})
}
