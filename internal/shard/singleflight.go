package shard

import (
	"net/http"
	"sync"
)

// upstreamResult is one shard response, buffered so every singleflight
// waiter (and the retry loop) can replay it.
type upstreamResult struct {
	status int
	header http.Header // response headers worth forwarding
	body   []byte
	shard  string // which shard answered
	err    error  // transport-level failure after all retries
}

// flightGroup is the distributed-singleflight table: concurrent
// requests for the same content-addressed key share one upstream call.
// This is sound for exactly the reason the shards' own caches share
// entries — the key covers every report-affecting parameter, and
// strict mode makes backends bit-identical — so collapsing N identical
// in-flight requests into one upstream computation changes fleet load,
// never any response body.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

type flight struct {
	done chan struct{}
	res  *upstreamResult
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[string]*flight)}
}

// do runs fn once per key per flight: the first caller (the leader)
// executes it while later callers block on the same result. shared
// reports whether this call rode along instead of leading. Error
// results are delivered to every waiter but not cached — the next
// request for the key starts a fresh flight.
func (g *flightGroup) do(key string, fn func() *upstreamResult) (res *upstreamResult, shared bool) {
	g.mu.Lock()
	if fl, ok := g.m[key]; ok {
		g.mu.Unlock()
		<-fl.done
		return fl.res, true
	}
	fl := &flight{done: make(chan struct{})}
	g.m[key] = fl
	g.mu.Unlock()

	fl.res = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(fl.done)
	return fl.res, false
}
