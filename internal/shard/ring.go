// Package shard is the horizontal scale-out fabric: a stateless
// gateway (cmd/reprorouter) that consistent-hash routes analysis
// requests on their content-addressed cache key (serve.CacheKey) to a
// fleet of reproserve shards. Because the key covers every
// report-affecting parameter and strict mode makes all backends
// bit-identical, the same analysis always lands on the same shard —
// each shard's cache holds a disjoint slice of the keyspace, so fleet
// cache capacity scales with the number of shards instead of
// duplicating the hottest entries everywhere.
//
// The pieces:
//
//   - Ring: a consistent-hash ring with virtual nodes. Key->shard
//     mapping is deterministic, and adding or removing one shard moves
//     only ~1/N of the keyspace.
//   - flightGroup: distributed singleflight. Concurrent identical
//     requests through the router collapse into ONE upstream call per
//     key — the fleet runs one engine computation where N naive
//     proxies would run N.
//   - monitor: active /healthz polling with passive failure detection
//     and jittered re-probe backoff. Draining shards (503) leave the
//     ring gracefully, reusing the serve layer's drain semantics.
//   - hotTracker: keys whose request rate crosses a threshold fan out
//     to R ring successors, round-robin, trading the cache-capacity
//     win for hot-spot headroom on exactly the keys that need it.
//
// DESIGN.md section 14 describes the architecture and failure model.
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// DefaultVirtualNodes is the per-shard virtual-node count selected by
// zero configuration. 128 points per shard keeps the expected
// keyspace imbalance within a few percent for small fleets while the
// ring stays tiny (N*128 points, binary-searched).
const DefaultVirtualNodes = 128

// Ring is a consistent-hash ring with virtual nodes. All methods are
// safe for concurrent use; lookups are lock-cheap (RLock + binary
// search) because the serving path hits the ring on every request.
type Ring struct {
	mu     sync.RWMutex
	vnodes int
	nodes  map[string]bool
	points []point // sorted by hash
}

type point struct {
	hash uint64
	node string
}

// NewRing returns an empty ring with the given virtual-node count per
// shard (<= 0 selects DefaultVirtualNodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	return &Ring{vnodes: vnodes, nodes: make(map[string]bool)}
}

// hashOf is the ring's hash: FNV-1a 64 with a murmur-style finalizer.
// Keys are already SHA-256 hex from serve.CacheKey, so the hash only
// needs to spread, not resist adversaries — but the virtual-node
// labels ("shard#17") are short and near-identical, and raw FNV's weak
// high-bit avalanche on such inputs clusters ring points badly enough
// to skew shard shares 2x. The finalizer restores uniformity for a few
// shifts and multiplies.
func hashOf(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s)) //nolint:errcheck // hash.Hash never errors
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Add inserts a shard's virtual nodes (no-op if already present) and
// reports whether the ring changed.
func (r *Ring) Add(node string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.nodes[node] {
		return false
	}
	r.nodes[node] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, point{hash: hashOf(fmt.Sprintf("%s#%d", node, i)), node: node})
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return true
}

// Remove deletes a shard's virtual nodes and reports whether the ring
// changed. Keys owned by the removed shard redistribute to their next
// clockwise survivors; every other key keeps its shard.
func (r *Ring) Remove(node string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.nodes[node] {
		return false
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
	return true
}

// Lookup returns the shard owning key (ok false on an empty ring).
func (r *Ring) Lookup(key string) (string, bool) {
	nodes := r.LookupN(key, 1)
	if len(nodes) == 0 {
		return "", false
	}
	return nodes[0], true
}

// LookupN returns up to n distinct shards for key, in ring order: the
// owner first, then the successors a failed request retries (and the
// replica set hot keys fan out over). Deterministic in the ring state.
func (r *Ring) LookupN(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := hashOf(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// Nodes returns the member shards, sorted.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of member shards.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}
