package shard

import (
	"sync"
	"time"
)

// hotTracker detects hot keys — keys whose request rate crosses a
// threshold — so the router can fan them out over R replicas instead
// of hammering one shard. Consistent hashing concentrates each key on
// one shard by design (that is the cache-capacity win); a viral
// sequence would turn that shard into the fleet bottleneck. Replicating
// only the measured-hot keys caps the duplication cost at exactly the
// keys that need it.
//
// Rates use fixed one-second windows with a carry: a key is hot when
// count(current window) + count(previous window) reaches the
// threshold, which smooths the window boundary without per-request
// timestamps. The map self-prunes: entries idle for two full windows
// are dropped on the next sweep, bounding memory by the working set.
type hotTracker struct {
	threshold int // requests per window that makes a key hot; <= 0 disables
	window    time.Duration

	mu      sync.Mutex
	keys    map[string]*keyRate
	sweepAt time.Time
}

type keyRate struct {
	cur, prev int
	winStart  time.Time
	rr        uint64 // round-robin cursor over the replica set
}

func newHotTracker(threshold int, window time.Duration) *hotTracker {
	if window <= 0 {
		window = time.Second
	}
	return &hotTracker{
		threshold: threshold,
		window:    window,
		keys:      make(map[string]*keyRate),
	}
}

// touch counts one request for key and reports whether the key is hot
// plus the round-robin cursor the router uses to pick among replicas.
func (h *hotTracker) touch(key string, now time.Time) (hot bool, rr uint64) {
	if h == nil || h.threshold <= 0 {
		return false, 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	kr := h.keys[key]
	if kr == nil {
		kr = &keyRate{winStart: now}
		h.keys[key] = kr
	}
	for now.Sub(kr.winStart) >= h.window {
		kr.prev, kr.cur = kr.cur, 0
		kr.winStart = kr.winStart.Add(h.window)
		if now.Sub(kr.winStart) >= 2*h.window {
			// Long idle: fast-forward instead of looping per window.
			kr.prev = 0
			kr.winStart = now
		}
	}
	kr.cur++
	hot = kr.cur+kr.prev >= h.threshold
	if hot {
		kr.rr++
		rr = kr.rr
	}
	// The sweep clock derives from the callers' now (never the wall
	// clock directly) so tests can drive time.
	if h.sweepAt.IsZero() {
		h.sweepAt = now.Add(h.window)
	}
	if now.After(h.sweepAt) {
		for k, v := range h.keys {
			if now.Sub(v.winStart) >= 2*h.window {
				delete(h.keys, k)
			}
		}
		h.sweepAt = now.Add(h.window)
	}
	return hot, rr
}
