package shard

import (
	"testing"
	"time"
)

func TestHotTracker(t *testing.T) {
	base := time.Unix(1000, 0)
	h := newHotTracker(4, time.Second)

	// Below threshold: cold.
	for i := 0; i < 3; i++ {
		if hot, _ := h.touch("k", base); hot {
			t.Fatalf("hot after %d touches, threshold 4", i+1)
		}
	}
	// Fourth touch in the window crosses the threshold.
	if hot, _ := h.touch("k", base); !hot {
		t.Fatal("not hot at threshold")
	}
	// The round-robin cursor advances per hot touch.
	_, rr1 := h.touch("k", base)
	_, rr2 := h.touch("k", base)
	if rr2 != rr1+1 {
		t.Fatalf("rr cursor %d -> %d, want +1", rr1, rr2)
	}

	// The previous-window carry keeps a key hot across the boundary...
	if hot, _ := h.touch("k", base.Add(1100*time.Millisecond)); !hot {
		t.Fatal("carry lost at window boundary")
	}
	// ...but two idle windows reset it to cold.
	if hot, _ := h.touch("k", base.Add(4*time.Second)); hot {
		t.Fatal("still hot after long idle")
	}

	// Other keys are independent.
	if hot, _ := h.touch("other", base.Add(4*time.Second)); hot {
		t.Fatal("fresh key hot")
	}
}

func TestHotTrackerDisabled(t *testing.T) {
	var nilTracker *hotTracker
	if hot, _ := nilTracker.touch("k", time.Now()); hot {
		t.Fatal("nil tracker reported hot")
	}
	h := newHotTracker(-1, time.Second)
	for i := 0; i < 100; i++ {
		if hot, _ := h.touch("k", time.Now()); hot {
			t.Fatal("disabled tracker reported hot")
		}
	}
}

func TestHotTrackerSweep(t *testing.T) {
	base := time.Unix(1000, 0)
	h := newHotTracker(1000, time.Second)
	for i := 0; i < 50; i++ {
		h.touch("old", base)
	}
	// Two windows later a different key triggers the sweep; the idle
	// entry must be gone.
	h.touch("new", base.Add(3*time.Second))
	h.mu.Lock()
	_, oldAlive := h.keys["old"]
	h.mu.Unlock()
	if oldAlive {
		t.Fatal("idle key survived the sweep")
	}
}
