package shard

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		// Hex-ish strings shaped like serve.CacheKey output.
		keys[i] = fmt.Sprintf("%064x", i*2654435761)
	}
	return keys
}

// TestRingDeterminism: the same membership must map every key to the
// same shard, regardless of join order.
func TestRingDeterminism(t *testing.T) {
	keys := ringKeys(500)
	a := NewRing(64)
	b := NewRing(64)
	for _, n := range []string{"s1", "s2", "s3", "s4"} {
		a.Add(n)
	}
	for _, n := range []string{"s3", "s1", "s4", "s2"} { // different join order
		b.Add(n)
	}
	for _, k := range keys {
		na, _ := a.Lookup(k)
		nb, _ := b.Lookup(k)
		if na != nb {
			t.Fatalf("key %s: ring a -> %s, ring b -> %s", k[:8], na, nb)
		}
	}
	// And a lookup is stable against repetition.
	for _, k := range keys[:50] {
		n1, _ := a.Lookup(k)
		n2, _ := a.Lookup(k)
		if n1 != n2 {
			t.Fatalf("unstable lookup for %s", k[:8])
		}
	}
}

// TestRingMinimalMovement: adding or removing one shard may move only
// the keys that shard gains or loses — every other key keeps its
// owner. This is the consistent-hashing contract that protects the
// fleet's cache locality across membership changes.
func TestRingMinimalMovement(t *testing.T) {
	keys := ringKeys(2000)
	r := NewRing(64)
	for i := 0; i < 4; i++ {
		r.Add(fmt.Sprintf("s%d", i))
	}
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k], _ = r.Lookup(k)
	}

	// Join: only keys that moved TO the new shard may change owner.
	r.Add("s4")
	moved := 0
	for _, k := range keys {
		now, _ := r.Lookup(k)
		if now != before[k] {
			if now != "s4" {
				t.Fatalf("key %s moved %s -> %s on an unrelated join", k[:8], before[k], now)
			}
			moved++
		}
	}
	// Expect roughly 1/5 of the keyspace on the new shard; allow wide
	// slack but catch both "nothing moved" and "everything moved".
	if moved == 0 || moved > len(keys)/2 {
		t.Fatalf("join moved %d/%d keys, want ~%d", moved, len(keys), len(keys)/5)
	}

	// Leave: only the departed shard's keys may change owner.
	after := make(map[string]string, len(keys))
	for _, k := range keys {
		after[k], _ = r.Lookup(k)
	}
	r.Remove("s4")
	for _, k := range keys {
		now, _ := r.Lookup(k)
		if after[k] == "s4" {
			if now == "s4" {
				t.Fatalf("key %s still on removed shard", k[:8])
			}
			if now != before[k] {
				t.Fatalf("key %s settled on %s, want its pre-join owner %s", k[:8], now, before[k])
			}
		} else if now != after[k] {
			t.Fatalf("key %s moved %s -> %s on an unrelated leave", k[:8], after[k], now)
		}
	}
}

// TestRingBalance: with enough virtual nodes, no shard's share of the
// keyspace may stray too far from the mean.
func TestRingBalance(t *testing.T) {
	keys := ringKeys(20000)
	r := NewRing(128)
	const shards = 5
	for i := 0; i < shards; i++ {
		r.Add(fmt.Sprintf("s%d", i))
	}
	counts := map[string]int{}
	for _, k := range keys {
		n, ok := r.Lookup(k)
		if !ok {
			t.Fatal("lookup failed on populated ring")
		}
		counts[n]++
	}
	mean := len(keys) / shards
	for s, c := range counts {
		if c < mean/2 || c > mean*2 {
			t.Errorf("shard %s owns %d keys, mean %d — imbalance beyond 2x", s, c, mean)
		}
	}
}

// TestRingLookupN: the retry/replica list is deterministic, distinct,
// starts with the owner, and never exceeds membership.
func TestRingLookupN(t *testing.T) {
	r := NewRing(32)
	if got := r.LookupN("k", 2); got != nil {
		t.Fatalf("empty ring LookupN = %v, want nil", got)
	}
	for i := 0; i < 3; i++ {
		r.Add(fmt.Sprintf("s%d", i))
	}
	for _, k := range ringKeys(100) {
		owner, _ := r.Lookup(k)
		got := r.LookupN(k, 5) // more than membership
		if len(got) != 3 {
			t.Fatalf("LookupN(5) on 3 shards = %v", got)
		}
		if got[0] != owner {
			t.Fatalf("LookupN[0] = %s, want owner %s", got[0], owner)
		}
		seen := map[string]bool{}
		for _, n := range got {
			if seen[n] {
				t.Fatalf("duplicate shard %s in %v", n, got)
			}
			seen[n] = true
		}
	}
}
