package shard

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestFlightGroupCollapses: N concurrent callers for one key run fn
// exactly once; one leads, the rest share the leader's result. Run
// under -race this also exercises the table's locking.
func TestFlightGroupCollapses(t *testing.T) {
	g := newFlightGroup()
	var calls atomic.Int64
	gate := make(chan struct{})

	const n = 32
	var wg sync.WaitGroup
	results := make([]*upstreamResult, n)
	sharedFlags := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], sharedFlags[i] = g.do("key", func() *upstreamResult {
				<-gate // hold the flight open until every waiter has joined
				calls.Add(1)
				return &upstreamResult{status: 200, body: []byte("one"), shard: "s0"}
			})
		}(i)
	}
	// Wait for all non-leaders to be parked on the flight, then release.
	deadline := time.Now().Add(2 * time.Second)
	for {
		g.mu.Lock()
		fl := g.m["key"]
		g.mu.Unlock()
		if fl != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("flight never registered")
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1", got)
	}
	leaders := 0
	for i := 0; i < n; i++ {
		if !sharedFlags[i] {
			leaders++
		}
		if results[i] == nil || string(results[i].body) != "one" {
			t.Fatalf("caller %d got %+v", i, results[i])
		}
	}
	if leaders != 1 {
		t.Fatalf("%d leaders, want exactly 1", leaders)
	}
}

// TestFlightGroupErrorNotCached: an error result reaches the waiters of
// that flight but the next call starts fresh.
func TestFlightGroupErrorNotCached(t *testing.T) {
	g := newFlightGroup()
	res, shared := g.do("k", func() *upstreamResult {
		return &upstreamResult{err: fmt.Errorf("boom")}
	})
	if shared || res.err == nil {
		t.Fatalf("first call: res=%+v shared=%v", res, shared)
	}
	res, shared = g.do("k", func() *upstreamResult {
		return &upstreamResult{status: 200}
	})
	if shared || res.err != nil || res.status != 200 {
		t.Fatalf("second call did not start fresh: res=%+v shared=%v", res, shared)
	}
}

// TestFlightGroupDistinctKeys: different keys never share a flight.
func TestFlightGroupDistinctKeys(t *testing.T) {
	g := newFlightGroup()
	var calls atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g.do(fmt.Sprintf("k%d", i), func() *upstreamResult {
				calls.Add(1)
				return &upstreamResult{status: 200}
			})
		}(i)
	}
	wg.Wait()
	if got := calls.Load(); got != 8 {
		t.Fatalf("fn ran %d times, want 8", got)
	}
}
