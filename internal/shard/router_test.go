package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/jobstore"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/serve"
)

// startShard runs a real serve.Server behind an httptest listener.
func startShard(t *testing.T, cfg serve.Config) (*serve.Server, *httptest.Server) {
	t.Helper()
	s := serve.New(cfg)
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Drain(ctx) //nolint:errcheck // best-effort test cleanup
	})
	return s, ts
}

func newTestRouter(t *testing.T, cfg Config) (*Router, *httptest.Server) {
	t.Helper()
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	rt := New(cfg)
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)
	return rt, ts
}

func analyzeReq(seqStr string) serve.Request {
	return serve.Request{Sequence: seqStr, Params: serve.Params{Matrix: "paper-dna", Tops: 3}}
}

// keyOf computes the cache key the router will derive for req.
func keyOf(t *testing.T, req serve.Request) string {
	t.Helper()
	r := req
	if err := r.Canonicalise(0); err != nil {
		t.Fatalf("canonicalise: %v", err)
	}
	return serve.CacheKey(&r)
}

func postRouter(t *testing.T, url string, req serve.Request) *http.Response {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	return resp
}

func readJSON(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	if err := json.Unmarshal(b, v); err != nil {
		t.Fatalf("unmarshal %q: %v", b, err)
	}
}

// fakeShard is a stub upstream for router-behaviour tests that do not
// need a real engine: counts requests, optionally delays, and can be
// switched to draining (503 everywhere, like a draining serve.Server).
type fakeShard struct {
	reqs     atomic.Int64
	delay    time.Duration
	draining atomic.Bool
	burning  atomic.Bool
	ts       *httptest.Server
}

func newFakeShard(t *testing.T, delay time.Duration) *fakeShard {
	t.Helper()
	f := &fakeShard{delay: delay}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if f.draining.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("GET /slo", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `{"objectives":[{"name":"availability","burning":%v}]}`, f.burning.Load())
	})
	mux.HandleFunc("POST /v1/analyze", func(w http.ResponseWriter, r *http.Request) {
		if f.draining.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		f.reqs.Add(1)
		if f.delay > 0 {
			time.Sleep(f.delay)
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"cache":"miss","elapsed_ms":0,"report":{}}`)
	})
	f.ts = httptest.NewServer(mux)
	t.Cleanup(f.ts.Close)
	return f
}

// TestRouterRoutesDeterministically: the same request always lands on
// the same shard, and the repeat is served from that shard's cache.
func TestRouterRoutesDeterministically(t *testing.T) {
	_, s1 := startShard(t, serve.Config{Workers: 1})
	_, s2 := startShard(t, serve.Config{Workers: 1})
	_, rts := newTestRouter(t, Config{Shards: []string{s1.URL, s2.URL}})

	req := analyzeReq("ATGCATGCATGC")
	first := postRouter(t, rts.URL, req)
	shard1 := first.Header.Get("X-Router-Shard")
	var r1 serve.Response
	readJSON(t, first, &r1)
	if first.StatusCode != http.StatusOK || r1.Cache != "miss" {
		t.Fatalf("first: status %d cache %q", first.StatusCode, r1.Cache)
	}

	second := postRouter(t, rts.URL, req)
	var r2 serve.Response
	readJSON(t, second, &r2)
	if got := second.Header.Get("X-Router-Shard"); got != shard1 {
		t.Fatalf("repeat routed to %s, first went to %s", got, shard1)
	}
	if r2.Cache != "hit" {
		t.Fatalf("repeat cache = %q, want hit (same shard, same key)", r2.Cache)
	}
	if !bytes.Equal(r1.Report, r2.Report) {
		t.Fatal("hit report differs from miss report")
	}
}

// TestRouterSingleflight: concurrent identical requests collapse to
// one upstream call; everyone gets the same answer.
func TestRouterSingleflight(t *testing.T) {
	f := newFakeShard(t, 100*time.Millisecond)
	rt, rts := newTestRouter(t, Config{Shards: []string{f.ts.URL}, Metrics: obs.NewRegistry()})

	const n = 16
	var wg sync.WaitGroup
	statuses := make([]int, n)
	flights := make([]string, n)
	body, _ := json.Marshal(analyzeReq("ATGCATGCATGC"))
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(rts.URL+"/v1/analyze", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Errorf("post %d: %v", i, err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			statuses[i] = resp.StatusCode
			flights[i] = resp.Header.Get("X-Router-Flight")
		}(i)
	}
	wg.Wait()

	if got := f.reqs.Load(); got != 1 {
		t.Fatalf("upstream saw %d calls for %d identical concurrent requests, want 1", got, n)
	}
	leads, shared := 0, 0
	for i := 0; i < n; i++ {
		if statuses[i] != http.StatusOK {
			t.Fatalf("request %d: status %d", i, statuses[i])
		}
		switch flights[i] {
		case "lead":
			leads++
		case "shared":
			shared++
		}
	}
	if leads != 1 || shared != n-1 {
		t.Fatalf("leads=%d shared=%d, want 1/%d", leads, shared, n-1)
	}
	if v := rt.shared.Load(); v != int64(n-1) {
		t.Fatalf("router/flight_shared = %d, want %d", v, n-1)
	}
}

// TestRouterFailover: when the owning shard dies, the request retries
// the next ring node, succeeds, and the dead shard leaves the ring via
// passive detection.
func TestRouterFailover(t *testing.T) {
	victim := newFakeShard(t, 0)
	survivor := newFakeShard(t, 0)
	rt, rts := newTestRouter(t, Config{Shards: []string{victim.ts.URL, survivor.ts.URL}})

	// Find a request whose key the victim owns, so the kill forces a
	// real failover rather than a lucky miss.
	var req serve.Request
	found := false
	for i := 0; i < 64 && !found; i++ {
		req = analyzeReq("ATGCATGCATGC")
		req.Params.Tops = 1 + i // Tops is part of the cache key; ID is not
		owner, _ := rt.Ring().Lookup(keyOf(t, req))
		found = owner == victim.ts.URL
	}
	if !found {
		t.Fatal("no probe key landed on the victim shard")
	}

	victim.ts.CloseClientConnections()
	victim.ts.Close()

	resp := postRouter(t, rts.URL, req)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("failover request: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Router-Shard"); got != survivor.ts.URL {
		t.Fatalf("answered by %s, want survivor %s", got, survivor.ts.URL)
	}
	if v := rt.failovers.Load(); v < 1 {
		t.Fatalf("router/failovers = %d, want >= 1", v)
	}
	if n := rt.Ring().Len(); n != 1 {
		t.Fatalf("ring size %d after passive markDown, want 1", n)
	}
}

// TestRouterDrainingShardLeavesRing: a 503 /healthz (the serve drain
// signal) removes the shard from the ring via the probe loop, and
// requests during the drain fail over with zero client-visible errors.
func TestRouterDrainingShardLeavesRing(t *testing.T) {
	draining := newFakeShard(t, 0)
	healthy := newFakeShard(t, 0)
	rt, rts := newTestRouter(t, Config{
		Shards:        []string{draining.ts.URL, healthy.ts.URL},
		ProbeInterval: 10 * time.Millisecond,
	})
	rt.Start()
	defer rt.Close()

	draining.draining.Store(true)
	deadline := time.Now().Add(3 * time.Second)
	for rt.Ring().Len() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("draining shard never left the ring")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if nodes := rt.Ring().Nodes(); len(nodes) != 1 || nodes[0] != healthy.ts.URL {
		t.Fatalf("ring = %v, want only the healthy shard", nodes)
	}

	// Every request now lands on the healthy shard, regardless of key.
	for i := 0; i < 8; i++ {
		req := analyzeReq("ATGCATGCATGC")
		req.Params.Tops = 1 + i // distinct cache keys
		resp := postRouter(t, rts.URL, req)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d during drain: status %d", i, resp.StatusCode)
		}
	}

	// Un-drain: the probe loop re-admits the shard.
	draining.draining.Store(false)
	deadline = time.Now().Add(3 * time.Second)
	for rt.Ring().Len() != 2 {
		if time.Now().After(deadline) {
			t.Fatal("recovered shard never rejoined the ring")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRouterHotKeyFanout: a key hammered past the threshold spreads
// over the replica set instead of pinning one shard.
func TestRouterHotKeyFanout(t *testing.T) {
	a := newFakeShard(t, 0)
	b := newFakeShard(t, 0)
	rt, rts := newTestRouter(t, Config{
		Shards:          []string{a.ts.URL, b.ts.URL},
		HotKeyThreshold: 4,
		HotKeyReplicas:  2,
	})

	body, _ := json.Marshal(analyzeReq("ATGCATGCATGC"))
	for i := 0; i < 40; i++ {
		resp, err := http.Post(rts.URL+"/v1/analyze", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("post %d: %v", i, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if a.reqs.Load() == 0 || b.reqs.Load() == 0 {
		t.Fatalf("hot key did not fan out: shard a=%d b=%d", a.reqs.Load(), b.reqs.Load())
	}
	if v := rt.hotFanout.Load(); v == 0 {
		t.Fatal("router/hot_fanout never incremented")
	}
}

// TestRouterKillShardUnderLoad is the shard-kill end-to-end: concurrent
// load over real serve shards, one shard killed mid-run, and every
// single request must still succeed via retry.
func TestRouterKillShardUnderLoad(t *testing.T) {
	var shards []*httptest.Server
	for i := 0; i < 3; i++ {
		_, ts := startShard(t, serve.Config{Workers: 1, CacheEntries: 64})
		shards = append(shards, ts)
	}
	urls := []string{shards[0].URL, shards[1].URL, shards[2].URL}
	rt, rts := newTestRouter(t, Config{Shards: urls, ProbeInterval: 20 * time.Millisecond})
	rt.Start()
	defer rt.Close()

	const (
		clients   = 4
		perClient = 10
	)
	var failures atomic.Int64
	var wg sync.WaitGroup
	killed := make(chan struct{})
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				req := analyzeReq("ATGCATGCATGC")
				req.Params.Tops = 1 + c*perClient + i // distinct cache keys spread over the ring
				body, _ := json.Marshal(req)
				resp, err := http.Post(rts.URL+"/v1/analyze", "application/json", bytes.NewReader(body))
				if err != nil {
					failures.Add(1)
					t.Errorf("client %d req %d: %v", c, i, err)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					failures.Add(1)
					t.Errorf("client %d req %d: status %d", c, i, resp.StatusCode)
				}
				if c == 0 && i == 2 {
					close(killed) // signal the killer once load is flowing
				}
			}
		}(c)
	}

	// Kill shard 0 abruptly once requests are in flight.
	go func() {
		<-killed
		shards[0].CloseClientConnections()
		shards[0].Close()
	}()
	wg.Wait()

	if n := failures.Load(); n != 0 {
		t.Fatalf("%d client-visible failures after shard kill, want 0", n)
	}
}

// TestRouterJobs: job submission routes on the cache key, and status /
// list / events lookups find the accepting shard.
// TestRouterSLODemotion: a shard whose /slo reports a paging burn rate
// stays in the ring but loses new work to a non-burning alternative.
func TestRouterSLODemotion(t *testing.T) {
	f1, f2 := newFakeShard(t, 0), newFakeShard(t, 0)
	shards := map[string]*fakeShard{f1.ts.URL: f1, f2.ts.URL: f2}
	rt, rts := newTestRouter(t, Config{
		Shards:        []string{f1.ts.URL, f2.ts.URL},
		ProbeInterval: 20 * time.Millisecond,
	})
	rt.Start()
	t.Cleanup(rt.Close)

	req := analyzeReq("ATGCATGCATGCATGC")
	resp := postRouter(t, rts.URL, req)
	home := resp.Header.Get("X-Router-Shard")
	resp.Body.Close()
	if shards[home] == nil {
		t.Fatalf("unknown home shard %q", home)
	}

	// Light the home shard's burn signal and wait for a probe cycle to
	// pick it up.
	shards[home].burning.Store(true)
	deadline := time.Now().Add(2 * time.Second)
	for !rt.mon.isBurning(home) {
		if time.Now().After(deadline) {
			t.Fatal("probe loop never observed the burn state")
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp = postRouter(t, rts.URL, req)
	moved := resp.Header.Get("X-Router-Shard")
	resp.Body.Close()
	if moved == home {
		t.Fatalf("burning shard %s still preferred", home)
	}
	if rt.sloDemotion.Load() == 0 {
		t.Fatal("router/slo_demotions not incremented")
	}

	// Budget recovered: traffic returns home (cache locality restored).
	shards[home].burning.Store(false)
	for rt.mon.isBurning(home) {
		if time.Now().After(deadline) {
			t.Fatal("probe loop never cleared the burn state")
		}
		time.Sleep(10 * time.Millisecond)
	}
	resp = postRouter(t, rts.URL, req)
	back := resp.Header.Get("X-Router-Shard")
	resp.Body.Close()
	if back != home {
		t.Fatalf("recovered shard not restored: got %s, want %s", back, home)
	}
}

func TestRouterJobs(t *testing.T) {
	store, err := jobstore.Open(t.TempDir(), nil)
	if err != nil {
		t.Fatalf("jobstore: %v", err)
	}
	_, s1 := startShard(t, serve.Config{Workers: 1, Jobs: store, JobWorkers: 1})
	_, s2 := startShard(t, serve.Config{Workers: 1})
	_, rts := newTestRouter(t, Config{Shards: []string{s1.URL, s2.URL}})

	// Submit until a job lands on the shard that has a job store (the
	// other answers 501/400; the point is routing, so pick a key that
	// maps to s1).
	var st serve.JobStatus
	submitted := false
	for i := 0; i < 64 && !submitted; i++ {
		req := analyzeReq("ATGCATGCATGC")
		req.Params.Tops = 1 + i // walk the keyspace until a key maps to s1
		body, _ := json.Marshal(req)
		resp, err := http.Post(rts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		if resp.StatusCode == http.StatusAccepted {
			readJSON(t, resp, &st)
			submitted = true
		} else {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	if !submitted || st.JobID == "" {
		t.Fatal("no job submission reached the job-enabled shard")
	}

	// Status lookup routes to the accepting shard.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(rts.URL + "/v1/jobs/" + st.JobID)
		if err != nil {
			t.Fatalf("job get: %v", err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("job get: status %d", resp.StatusCode)
		}
		var cur serve.JobStatus
		readJSON(t, resp, &cur)
		if cur.State == "done" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %q", cur.State)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// The merged list contains the job.
	resp, err := http.Get(rts.URL + "/v1/jobs")
	if err != nil {
		t.Fatalf("job list: %v", err)
	}
	var list struct {
		Jobs []serve.JobStatus `json:"jobs"`
	}
	readJSON(t, resp, &list)
	found := false
	for _, j := range list.Jobs {
		found = found || j.JobID == st.JobID
	}
	if !found {
		t.Fatalf("job %s missing from merged list of %d", st.JobID, len(list.Jobs))
	}
}

// TestRouterTraceMerge: the merged /trace/{id} contains the router's
// route/upstream spans AND the shard's pipeline spans, re-based onto
// the router timeline inside the upstream window.
func TestRouterTraceMerge(t *testing.T) {
	col := trace.NewCollector(16, 256)
	_, s1 := startShard(t, serve.Config{Workers: 1, Traces: col})
	rcol := trace.NewCollector(16, 256)
	_, rts := newTestRouter(t, Config{Shards: []string{s1.URL}, Traces: rcol})

	resp := postRouter(t, rts.URL, analyzeReq("ATGCATGCATGC"))
	tid := resp.Header.Get("X-Trace-Id")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if tid == "" {
		t.Fatal("router did not answer with X-Trace-Id")
	}

	tresp, err := http.Get(rts.URL + "/trace/" + tid)
	if err != nil {
		t.Fatalf("trace get: %v", err)
	}
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("trace get: status %d", tresp.StatusCode)
	}
	var merged struct {
		Spans []trace.SpanJSON `json:"spans"`
	}
	readJSON(t, tresp, &merged)

	byName := map[string][]trace.SpanJSON{}
	for _, sp := range merged.Spans {
		byName[sp.Name] = append(byName[sp.Name], sp)
	}
	for _, want := range []string{"router.route", "router.upstream", "request"} {
		if len(byName[want]) == 0 {
			t.Fatalf("merged trace missing %q span; have %v", want, names(merged.Spans))
		}
	}
	// The shard's root span must sit inside its upstream window after
	// re-basing.
	up := byName["router.upstream"][0]
	req := byName["request"][0]
	if req.StartNS < up.StartNS || req.StartNS+req.DurNS > up.StartNS+up.DurNS {
		t.Fatalf("shard span [%d,+%d] outside upstream window [%d,+%d]",
			req.StartNS, req.DurNS, up.StartNS, up.DurNS)
	}
}

func names(spans []trace.SpanJSON) []string {
	var out []string
	for _, sp := range spans {
		out = append(out, sp.Name)
	}
	return out
}

// TestRouterHealthNoShards: a router with an empty ring reports 503 so
// an outer balancer stops sending it traffic.
func TestRouterHealthNoShards(t *testing.T) {
	_, rts := newTestRouter(t, Config{})
	resp, err := http.Get(rts.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz on empty ring: status %d, want 503", resp.StatusCode)
	}
}
