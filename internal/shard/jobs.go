package shard

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/obs/trace"
	"repro/internal/serve"
)

// Job routing. Submission routes on the content-addressed cache key,
// exactly like /v1/analyze, so a job and an interactive request for
// the same analysis land on the same shard and deduplicate through its
// cache and job store. Job IDs, however, are shard-local, so the
// router learns id -> shard from each 202 and routes status/SSE
// lookups there; an unknown id (router restarted, or the map aged it
// out) falls back to asking every live shard.

// maxJobOwners bounds the learned id->shard map. At the cap the map is
// reset rather than LRU-tracked: the fallback fan-out still finds any
// forgotten job, so the map is purely an optimisation.
const maxJobOwners = 8192

func (rt *Router) learnJobOwner(id, shard string) {
	if id == "" {
		return
	}
	rt.jobOwnersMu.Lock()
	if len(rt.jobOwners) >= maxJobOwners {
		rt.jobOwners = make(map[string]string)
	}
	rt.jobOwners[id] = shard
	rt.jobOwnersMu.Unlock()
}

func (rt *Router) jobOwner(id string) (string, bool) {
	rt.jobOwnersMu.Lock()
	defer rt.jobOwnersMu.Unlock()
	s, ok := rt.jobOwners[id]
	return s, ok
}

func (rt *Router) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	rt.requests.Inc()
	req, key, ok := rt.decodeRequest(w, r)
	if !ok {
		return
	}
	var rec *trace.Recorder
	if rt.cfg.Traces != nil {
		tid := trace.NewTraceID()
		rec = rt.cfg.Traces.Rec(tid)
	}
	root := rec.Start(trace.SpanID{}, "router.route")
	defer root.End()

	body, err := json.Marshal(req)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	targets, _ := rt.targets(key, time.Now())
	res := rt.forward(r.Context(), rec, root.ID(), http.MethodPost, "/v1/jobs", body, targets)
	if res.err == nil && res.status == http.StatusAccepted {
		var st serve.JobStatus
		if json.Unmarshal(res.body, &st) == nil {
			rt.learnJobOwner(st.JobID, res.shard)
		}
	}
	rt.writeUpstream(w, res, false)
}

// jobTargets returns where to look for job id: the learned owner, or
// every live shard when unknown.
func (rt *Router) jobTargets(id string) []string {
	if owner, ok := rt.jobOwner(id); ok {
		return []string{owner}
	}
	return rt.ring.Nodes()
}

func (rt *Router) handleJobGet(w http.ResponseWriter, r *http.Request) {
	rt.requests.Inc()
	id := r.PathValue("id")
	for _, shard := range rt.jobTargets(id) {
		res, err := rt.roundTrip(r.Context(), shard, http.MethodGet, "/v1/jobs/"+id, nil, nil, nil)
		if err != nil {
			rt.mon.markDown(shard)
			continue
		}
		if res.status == http.StatusNotFound {
			continue
		}
		rt.learnJobOwner(id, shard)
		rt.writeUpstream(w, res, false)
		return
	}
	writeError(w, http.StatusNotFound, "unknown job")
}

// handleJobList fans out to every live shard and merges the lists.
func (rt *Router) handleJobList(w http.ResponseWriter, r *http.Request) {
	rt.requests.Inc()
	var merged struct {
		Jobs []serve.JobStatus `json:"jobs"`
	}
	for _, shard := range rt.ring.Nodes() {
		res, err := rt.roundTrip(r.Context(), shard, http.MethodGet, "/v1/jobs", nil, nil, nil)
		if err != nil || res.status != http.StatusOK {
			continue // a dead shard's jobs are unreachable, not fatal to the list
		}
		var page struct {
			Jobs []serve.JobStatus `json:"jobs"`
		}
		if json.Unmarshal(res.body, &page) == nil {
			merged.Jobs = append(merged.Jobs, page.Jobs...)
		}
	}
	writeJSON(w, http.StatusOK, merged)
}

// handleJobEvents proxies the shard's SSE stream, flushing event by
// event so progress reaches the client as it happens.
func (rt *Router) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	rt.requests.Inc()
	id := r.PathValue("id")
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, "streaming unsupported")
		return
	}
	for _, shard := range rt.jobTargets(id) {
		hreq, err := http.NewRequestWithContext(r.Context(), http.MethodGet, shard+"/v1/jobs/"+id+"/events", nil)
		if err != nil {
			continue
		}
		resp, err := rt.client.Do(hreq)
		if err != nil {
			rt.mon.markDown(shard)
			continue
		}
		if resp.StatusCode == http.StatusNotFound {
			resp.Body.Close()
			continue
		}
		rt.learnJobOwner(id, shard)
		w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
		w.Header().Set("X-Router-Shard", shard)
		w.WriteHeader(resp.StatusCode)
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			if n > 0 {
				if _, werr := w.Write(buf[:n]); werr != nil {
					break
				}
				fl.Flush()
			}
			if err != nil {
				break
			}
		}
		resp.Body.Close()
		return
	}
	writeError(w, http.StatusNotFound, fmt.Sprintf("unknown job %q", id))
}
