// Package core is the canonical entry point to the paper's primary
// contribution — the O(n^3) nonoverlapping top-alignment algorithm of
// Section 3 and Appendix A.
//
// The implementation lives in package topalign (with the override
// triangle in package triangle and the kernels in packages align and
// multialign); core re-exports the sequential surface under the
// repository's conventional name so that the system inventory in
// DESIGN.md maps one-to-one onto the tree. New code should import
// repro/internal/topalign directly for the scheduler-facing Engine API.
package core

import (
	"repro/internal/topalign"
)

// Re-exported types of the sequential top-alignment API.
type (
	// Config configures a top-alignment computation.
	Config = topalign.Config
	// Result is the outcome of a Find run.
	Result = topalign.Result
	// TopAlignment is one accepted nonoverlapping top alignment.
	TopAlignment = topalign.TopAlignment
	// Pair is a matched residue pair in global sequence positions.
	Pair = topalign.Pair
)

// Find computes cfg.NumTops nonoverlapping top alignments of s with the
// paper's sequential algorithm (Figure 5).
func Find(s []byte, cfg Config) (*Result, error) {
	return topalign.Find(s, cfg)
}
