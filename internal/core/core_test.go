package core

import (
	"testing"

	"repro/internal/align"
	"repro/internal/scoring"
	"repro/internal/seq"
)

func TestFindForwardsToTopalign(t *testing.T) {
	res, err := Find(seq.PaperATGC().Codes, Config{
		Params:  align.Params{Exch: scoring.PaperDNA, Gap: scoring.PaperGap},
		NumTops: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tops) != 3 {
		t.Fatalf("got %d tops, want 3", len(res.Tops))
	}
	if res.Tops[0].Pairs[0] != (Pair{I: 1, J: 5}) {
		t.Errorf("first pair = %v", res.Tops[0].Pairs[0])
	}
}
