// Package scoring provides residue exchange (substitution) matrices and
// the affine gap model used by the alignment kernels.
//
// The gap model follows the paper: a gap of length k costs
// Open + k*Ext, charged when the gap is introduced between two matched
// residue pairs.
package scoring

import (
	"fmt"

	"repro/internal/seq"
)

// Matrix is an exchange matrix over an alphabet. Scores are stored as
// int16 (every standard matrix fits comfortably); alignment kernels widen
// to int32 where needed.
type Matrix struct {
	name   string
	alpha  *seq.Alphabet
	n      int
	scores []int16 // n*n, row-major
}

// NewMatrix builds a matrix from a full n×n score table in alphabet code
// order. The table must be square and match the alphabet size.
func NewMatrix(name string, alpha *seq.Alphabet, table [][]int16) (*Matrix, error) {
	n := alpha.Len()
	if len(table) != n {
		return nil, fmt.Errorf("scoring: matrix %q has %d rows, alphabet %s has %d letters",
			name, len(table), alpha.Name(), n)
	}
	m := &Matrix{name: name, alpha: alpha, n: n, scores: make([]int16, n*n)}
	for i, row := range table {
		if len(row) != n {
			return nil, fmt.Errorf("scoring: matrix %q row %d has %d entries, want %d", name, i, len(row), n)
		}
		copy(m.scores[i*n:(i+1)*n], row)
	}
	return m, nil
}

// Unit builds the simple match/mismatch matrix the paper uses in its
// examples (e.g. match +2, mismatch -1 in Figure 2).
func Unit(name string, alpha *seq.Alphabet, match, mismatch int16) *Matrix {
	n := alpha.Len()
	m := &Matrix{name: name, alpha: alpha, n: n, scores: make([]int16, n*n)}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				m.scores[i*n+j] = match
			} else {
				m.scores[i*n+j] = mismatch
			}
		}
	}
	return m
}

// Name returns the matrix name.
func (m *Matrix) Name() string { return m.name }

// Alphabet returns the alphabet the matrix is defined over.
func (m *Matrix) Alphabet() *seq.Alphabet { return m.alpha }

// Score returns the exchange value for residue codes a and b.
func (m *Matrix) Score(a, b byte) int32 {
	return int32(m.scores[int(a)*m.n+int(b)])
}

// Row returns the score row for residue code a: Row(a)[b] == Score(a, b).
// The caller must not modify the returned slice. This is the hot lookup
// used by the kernels — one Row call per matrix row amortises the lookup
// across all columns.
func (m *Matrix) Row(a byte) []int16 {
	return m.scores[int(a)*m.n : int(a+1)*m.n : int(a+1)*m.n]
}

// IsSymmetric reports whether Score(a,b) == Score(b,a) for all pairs.
func (m *Matrix) IsSymmetric() bool {
	for i := 0; i < m.n; i++ {
		for j := i + 1; j < m.n; j++ {
			if m.scores[i*m.n+j] != m.scores[j*m.n+i] {
				return false
			}
		}
	}
	return true
}

// MaxScore returns the largest entry in the matrix (the best achievable
// per-residue score, used for score-bound reasoning).
func (m *Matrix) MaxScore() int32 {
	best := int32(m.scores[0])
	for _, s := range m.scores {
		if int32(s) > best {
			best = int32(s)
		}
	}
	return best
}

// MinScore returns the smallest entry in the matrix.
func (m *Matrix) MinScore() int32 {
	worst := int32(m.scores[0])
	for _, s := range m.scores {
		if int32(s) < worst {
			worst = int32(s)
		}
	}
	return worst
}

// Gap is the affine gap model: a gap of length k >= 1 costs Open + k*Ext.
type Gap struct {
	Open int32
	Ext  int32
}

// Validate rejects non-positive penalties, which would make local
// alignment scores unbounded or gaps free.
func (g Gap) Validate() error {
	if g.Open < 0 {
		return fmt.Errorf("scoring: negative gap open penalty %d", g.Open)
	}
	if g.Ext <= 0 {
		return fmt.Errorf("scoring: gap extension penalty %d must be positive", g.Ext)
	}
	return nil
}

// Cost returns the penalty for a gap of length k.
func (g Gap) Cost(k int) int32 {
	if k <= 0 {
		return 0
	}
	return g.Open + int32(k)*g.Ext
}

// PaperGap is the gap model of the paper's running example: 2 points per
// gap opening plus 1 point per gapped position.
var PaperGap = Gap{Open: 2, Ext: 1}

// DefaultProteinGap is a conventional choice for BLOSUM62 under this
// cost model (open 10, extend 1 per residue).
var DefaultProteinGap = Gap{Open: 10, Ext: 1}

// PaperDNA is the match +2 / mismatch -1 matrix of the paper's examples.
var PaperDNA = Unit("paper-dna", seq.DNA, 2, -1)
