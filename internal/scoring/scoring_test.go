package scoring

import (
	"testing"
	"testing/quick"

	"repro/internal/seq"
)

func TestEmbeddedMatricesAreSymmetric(t *testing.T) {
	for _, m := range []*Matrix{BLOSUM62, PAM250, DNAUnit, PaperDNA} {
		if !m.IsSymmetric() {
			t.Errorf("matrix %s is not symmetric", m.Name())
		}
	}
}

func TestBLOSUM62KnownValues(t *testing.T) {
	code := func(c byte) byte { return byte(seq.Protein.Code(c)) }
	cases := []struct {
		a, b byte
		want int32
	}{
		{'A', 'A', 4}, {'W', 'W', 11}, {'C', 'C', 9},
		{'A', 'R', -1}, {'W', 'C', -2}, {'I', 'V', 3},
		{'L', 'I', 2}, {'D', 'E', 2}, {'P', 'F', -4},
		{'X', 'X', -1}, {'B', 'D', 4}, {'Z', 'E', 4},
	}
	for _, c := range cases {
		if got := BLOSUM62.Score(code(c.a), code(c.b)); got != c.want {
			t.Errorf("BLOSUM62(%c,%c) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestPAM250KnownValues(t *testing.T) {
	code := func(c byte) byte { return byte(seq.Protein.Code(c)) }
	cases := []struct {
		a, b byte
		want int32
	}{
		{'W', 'W', 17}, {'C', 'C', 12}, {'A', 'A', 2},
		{'F', 'Y', 7}, {'I', 'V', 4}, {'W', 'C', -8},
	}
	for _, c := range cases {
		if got := PAM250.Score(code(c.a), code(c.b)); got != c.want {
			t.Errorf("PAM250(%c,%c) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestDiagonalDominance(t *testing.T) {
	// A concrete residue must never score higher against a different
	// residue than against itself (required for the "identical repeats
	// score highest" intuition behind the top-alignment heuristics).
	// Ambiguity codes (X, N, B, Z) are excluded: X-X is -1 by convention.
	for _, m := range []*Matrix{BLOSUM62, PAM250, DNAUnit, PaperDNA} {
		n := m.Alphabet().Len()
		if m.Alphabet() == seq.Protein {
			n = 20
		} else if m.Alphabet() == seq.DNA {
			n = 4
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				if m.Score(byte(i), byte(j)) > m.Score(byte(i), byte(i)) {
					t.Errorf("%s: score(%d,%d)=%d exceeds diagonal score(%d,%d)=%d",
						m.Name(), i, j, m.Score(byte(i), byte(j)), i, i, m.Score(byte(i), byte(i)))
				}
			}
		}
	}
}

func TestPaperDNAValues(t *testing.T) {
	a, c := byte(seq.DNA.Code('A')), byte(seq.DNA.Code('C'))
	if PaperDNA.Score(a, a) != 2 {
		t.Errorf("match = %d, want 2", PaperDNA.Score(a, a))
	}
	if PaperDNA.Score(a, c) != -1 {
		t.Errorf("mismatch = %d, want -1", PaperDNA.Score(a, c))
	}
}

func TestRowMatchesScore(t *testing.T) {
	f := func(a, b uint8) bool {
		n := seq.Protein.Len()
		x, y := byte(int(a)%n), byte(int(b)%n)
		return int32(BLOSUM62.Row(x)[y]) == BLOSUM62.Score(x, y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewMatrixValidation(t *testing.T) {
	if _, err := NewMatrix("bad", seq.DNA, [][]int16{{1}}); err == nil {
		t.Error("expected row-count error")
	}
	if _, err := NewMatrix("bad", seq.DNA, [][]int16{
		{1, 2, 3, 4, 5}, {1, 2, 3, 4, 5}, {1, 2, 3, 4, 5}, {1, 2, 3}, {1, 2, 3, 4, 5},
	}); err == nil {
		t.Error("expected row-length error")
	}
}

func TestGapCost(t *testing.T) {
	g := PaperGap // open 2, ext 1
	if got := g.Cost(1); got != 3 {
		t.Errorf("Cost(1) = %d, want 3 (the paper's example charges 2+1 for a length-1 gap)", got)
	}
	if got := g.Cost(3); got != 5 {
		t.Errorf("Cost(3) = %d, want 5", got)
	}
	if got := g.Cost(0); got != 0 {
		t.Errorf("Cost(0) = %d, want 0", got)
	}
}

func TestGapValidate(t *testing.T) {
	if err := (Gap{Open: 2, Ext: 1}).Validate(); err != nil {
		t.Errorf("valid gap rejected: %v", err)
	}
	if err := (Gap{Open: -1, Ext: 1}).Validate(); err == nil {
		t.Error("negative open accepted")
	}
	if err := (Gap{Open: 1, Ext: 0}).Validate(); err == nil {
		t.Error("zero extension accepted")
	}
}

func TestMaxScore(t *testing.T) {
	if got := BLOSUM62.MaxScore(); got != 11 {
		t.Errorf("BLOSUM62 max = %d, want 11 (W-W)", got)
	}
	if got := PAM250.MaxScore(); got != 17 {
		t.Errorf("PAM250 max = %d, want 17 (W-W)", got)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"BLOSUM62", "PAM250", "dna-unit", "paper-dna"} {
		m, ok := ByName(name)
		if !ok || m.Name() != name {
			t.Errorf("ByName(%q) = %v, %v", name, m, ok)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName accepted unknown name")
	}
}
