package mpi

import "sync"

// NewLocal creates size in-process endpoints connected by channels.
// Full mesh: any rank may send to any other. Endpoint i is intended to
// be driven by its own goroutine.
func NewLocal(size int) []Comm {
	if size < 1 {
		panic("mpi: local world size must be >= 1")
	}
	world := make([]*localComm, size)
	for i := range world {
		world[i] = &localComm{
			rank:  i,
			size:  size,
			inbox: make(chan Message, 1024),
			done:  make(chan struct{}),
			world: world,
		}
	}
	comms := make([]Comm, size)
	for i, c := range world {
		comms[i] = c
	}
	return comms
}

type localComm struct {
	rank  int
	size  int
	inbox chan Message
	done  chan struct{} // closed by Close; inbox itself is never closed
	world []*localComm

	closeOnce sync.Once
}

func (c *localComm) Rank() int { return c.rank }
func (c *localComm) Size() int { return c.size }

func (c *localComm) Send(to int, tag Tag, data []byte) error {
	if to < 0 || to >= c.size {
		return errBadRank(to, c.size)
	}
	select {
	case <-c.done:
		return ErrClosed
	default:
	}
	peer := c.world[to]
	// Check the peer's liveness first: a select with both cases ready
	// picks randomly and could otherwise enqueue to a closed peer.
	select {
	case <-peer.done:
		return ErrClosed
	default:
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	select {
	case peer.inbox <- Message{From: c.rank, Tag: tag, Data: cp}:
		return nil
	case <-peer.done:
		return ErrClosed
	}
}

func (c *localComm) Recv() (Message, error) {
	select {
	case msg := <-c.inbox:
		return msg, nil
	case <-c.done:
		// Drain anything that raced with Close so no message is lost.
		select {
		case msg := <-c.inbox:
			return msg, nil
		default:
			return Message{}, ErrClosed
		}
	}
}

func (c *localComm) Close() error {
	c.closeOnce.Do(func() {
		close(c.done)
		// Tell every other rank this one is gone, so a blocked master
		// sees TagDown instead of waiting forever. Non-blocking: a peer
		// with a full inbox will notice via send errors instead.
		for _, peer := range c.world {
			if peer == c {
				continue
			}
			select {
			case peer.inbox <- Message{From: c.rank, Tag: TagDown}:
			case <-peer.done:
			default:
			}
		}
	})
	return nil
}
