package mpi

import (
	"testing"
	"time"

	"repro/internal/obs"
)

// TestHeartbeatRTTGaugeLifecycle checks the per-peer RTT gauges the
// cluster layer uses for span skew correction: the gauge appears once
// heartbeat acks flow, HeartbeatRTT reads it, and when the peer dies
// the gauge is removed rather than left frozen at its last value (a
// scrape must not report an RTT for a dead rank, and skew correction
// must fall back to 0 rather than a stale figure).
func TestHeartbeatRTTGaugeLifecycle(t *testing.T) {
	addr := mustFreeAddr(t)

	// Separate registries so the master's rank-1 gauge cannot be
	// confused with the worker's rank-0 gauge.
	regM, regW := obs.NewRegistry(), obs.NewRegistry()
	optsM := fastHB()
	optsM.Metrics = regM
	optsW := fastHB()
	optsW.Metrics = regW

	masterCh, errCh := startMasterAsync(t, addr, 2, optsM)
	w, err := DialTCPOpts(addr, 2*time.Second, optsW)
	if err != nil {
		t.Fatal(err)
	}
	m := awaitMaster(t, masterCh, errCh)
	defer m.Close()

	// Both ends must publish an RTT once acks flow.
	awaitGauge(t, func() int64 { return HeartbeatRTT(regM, 1) }, "master sees rank 1")
	awaitGauge(t, func() int64 { return HeartbeatRTT(regW, 0) }, "worker sees rank 0")

	// Kill the worker: the master must surface TagDown and drop the
	// gauge (removal happens before the TagDown delivery).
	w.Close()
	msg := recvWithin(t, m, 3*time.Second)
	if msg.Tag != TagDown || msg.From != 1 {
		t.Fatalf("expected TagDown from rank 1, got %+v", msg)
	}
	if rtt := HeartbeatRTT(regM, 1); rtt != 0 {
		t.Errorf("dead rank still has RTT gauge %d, want removed", rtt)
	}
	if _, ok := regM.Snapshot().Gauges["mpi/hb_rtt_ns/rank1"]; ok {
		t.Error("mpi/hb_rtt_ns/rank1 still present in the snapshot after TagDown")
	}

	// Unknown ranks and nil registries read as 0 (skew correction's
	// local-transport fallback).
	if HeartbeatRTT(regM, 99) != 0 {
		t.Error("unknown rank has an RTT")
	}
	if HeartbeatRTT(nil, 1) != 0 {
		t.Error("nil registry has an RTT")
	}
}

func awaitGauge(t *testing.T, read func() int64, what string) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for read() <= 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%s: RTT gauge never appeared", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
