// Package mpi is a small message-passing runtime standing in for the
// MPI layer of the paper's distributed implementation (Section 4.3).
// It provides ranked endpoints with tagged, blocking point-to-point
// messages over two transports:
//
//   - an in-process transport (goroutine ranks connected by channels),
//     used by tests and by the single-binary cluster examples;
//   - a TCP transport (length-prefixed frames, star topology around
//     rank 0), used by the repromaster/reproworker binaries to run a
//     real multi-process cluster over sockets.
//
// The paper's communication pattern is master/slave: rank 0 owns the
// task queue and the last-row store, other ranks request work. The TCP
// transport therefore implements a star: workers exchange messages with
// rank 0 only, which is exactly the pattern package cluster uses.
//
// Endpoint failure surfaces as a message with the reserved TagDown so
// the master can requeue a dead worker's task instead of hanging — the
// failure-injection tests exercise this. The TCP transport additionally
// runs a heartbeat protocol (reserved wire tag 254) so a peer that
// hangs without closing its socket is also reported as TagDown, keeps
// accepting connections after the initial world forms (new workers
// surface as TagJoin), and bounds handshakes and frame I/O with
// deadlines so one stalled client cannot wedge the endpoint. Heartbeat
// probes carry a monotonic timestamp echoed back on reserved tag 252,
// feeding per-peer round-trip gauges into TCPOptions.Metrics.
package mpi

import (
	"errors"
	"fmt"
)

// Tag labels a message's meaning. Values 0-239 are for applications;
// 240 and up are reserved for the runtime.
type Tag uint8

// TagDown is delivered locally (never sent on the wire) when a peer's
// connection breaks; From identifies the lost rank.
const TagDown Tag = 255

// TagJoin is delivered locally by the TCP master endpoint when a new
// worker completes its handshake after the initial world has formed;
// From identifies the freshly assigned rank. Applications that support
// rejoin treat it as "rank From is alive and unprovisioned".
const TagJoin Tag = 253

// MinReservedTag is the first runtime-reserved tag value; application
// tags must stay below it.
const MinReservedTag Tag = 240

// maxPayload bounds a frame to keep a corrupt length prefix from
// allocating unbounded memory.
const maxPayload = 1 << 28

// Message is one received message.
type Message struct {
	From int
	Tag  Tag
	Data []byte
}

// Comm is one rank's endpoint.
type Comm interface {
	// Rank returns this endpoint's rank (0 = master).
	Rank() int
	// Size returns the total number of ranks.
	Size() int
	// Send delivers data to rank `to` with the given tag. Data is not
	// aliased after Send returns.
	Send(to int, tag Tag, data []byte) error
	// Recv blocks until a message from any rank arrives. After a peer
	// dies, a TagDown message for it is delivered once; Recv returns
	// ErrClosed after Close.
	Recv() (Message, error)
	// Close shuts the endpoint down.
	Close() error
}

// ErrClosed is returned by operations on a closed endpoint.
var ErrClosed = errors.New("mpi: endpoint closed")

// errBadRank formats the common destination error.
func errBadRank(to, size int) error {
	return fmt.Errorf("mpi: destination rank %d out of range (size %d)", to, size)
}
