package mpi

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

func TestLocalBasicExchange(t *testing.T) {
	world := NewLocal(3)
	defer closeAll(world)

	if err := world[1].Send(0, 7, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	msg, err := world[0].Recv()
	if err != nil {
		t.Fatal(err)
	}
	if msg.From != 1 || msg.Tag != 7 || string(msg.Data) != "hello" {
		t.Errorf("got %+v", msg)
	}
	if world[2].Rank() != 2 || world[2].Size() != 3 {
		t.Error("rank/size wrong")
	}
}

func TestLocalSendCopiesData(t *testing.T) {
	world := NewLocal(2)
	defer closeAll(world)
	buf := []byte("abc")
	if err := world[0].Send(1, 1, buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'X'
	msg, _ := world[1].Recv()
	if string(msg.Data) != "abc" {
		t.Errorf("mutation leaked into message: %q", msg.Data)
	}
}

func TestLocalBadRank(t *testing.T) {
	world := NewLocal(2)
	defer closeAll(world)
	if err := world[0].Send(5, 0, nil); err == nil {
		t.Error("out-of-range rank accepted")
	}
	if err := world[0].Send(-1, 0, nil); err == nil {
		t.Error("negative rank accepted")
	}
}

func TestLocalCloseDeliversDown(t *testing.T) {
	world := NewLocal(2)
	world[1].Close()
	msg, err := world[0].Recv()
	if err != nil {
		t.Fatal(err)
	}
	if msg.Tag != TagDown || msg.From != 1 {
		t.Errorf("expected TagDown from 1, got %+v", msg)
	}
	if err := world[0].Send(1, 1, nil); err != ErrClosed {
		t.Errorf("send to closed peer = %v, want ErrClosed", err)
	}
	world[0].Close()
	if _, err := world[0].Recv(); err != ErrClosed {
		t.Errorf("recv after close = %v, want ErrClosed", err)
	}
}

func TestLocalManyToOne(t *testing.T) {
	const workers = 8
	const per = 100
	world := NewLocal(workers + 1)
	defer closeAll(world)

	var wg sync.WaitGroup
	for w := 1; w <= workers; w++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				payload := []byte(fmt.Sprintf("%d:%d", rank, i))
				if err := world[rank].Send(0, Tag(rank), payload); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(w)
	}
	counts := make(map[int]int)
	for i := 0; i < workers*per; i++ {
		msg, err := world[0].Recv()
		if err != nil {
			t.Fatal(err)
		}
		counts[msg.From]++
	}
	wg.Wait()
	for w := 1; w <= workers; w++ {
		if counts[w] != per {
			t.Errorf("rank %d delivered %d messages, want %d", w, counts[w], per)
		}
	}
}

func startTCPWorld(t *testing.T, size int) (Comm, []Comm) {
	t.Helper()
	addr := "127.0.0.1:0"
	// pick a free port by listening briefly
	masterCh := make(chan Comm, 1)
	errCh := make(chan error, 1)
	// We need the actual address before dialing: listen on a known port
	// by binding first.
	ln := mustFreeAddr(t)
	go func() {
		m, err := ListenTCP(ln, size, 5*time.Second)
		if err != nil {
			errCh <- err
			return
		}
		masterCh <- m
	}()
	time.Sleep(50 * time.Millisecond)
	workers := make([]Comm, 0, size-1)
	for i := 1; i < size; i++ {
		w, err := DialTCP(ln, 5*time.Second)
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		workers = append(workers, w)
	}
	select {
	case m := <-masterCh:
		return m, workers
	case err := <-errCh:
		t.Fatal(err)
	case <-time.After(5 * time.Second):
		t.Fatal("master did not come up")
	}
	_ = addr
	return nil, nil
}

// mustFreeAddr returns a loopback address with an unused port.
func mustFreeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func TestTCPExchange(t *testing.T) {
	m, workers := startTCPWorld(t, 3)
	defer m.Close()
	defer closeAll(workers)

	// ranks were assigned in connection order: 1, 2
	for i, w := range workers {
		if w.Rank() != i+1 || w.Size() != 3 {
			t.Fatalf("worker %d has rank %d size %d", i, w.Rank(), w.Size())
		}
	}
	// worker -> master
	if err := workers[0].Send(0, 9, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	msg, err := m.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if msg.From != 1 || msg.Tag != 9 || string(msg.Data) != "ping" {
		t.Errorf("master got %+v", msg)
	}
	// master -> worker 2 with a large payload
	big := bytes.Repeat([]byte{0xAB}, 1<<20)
	if err := m.Send(2, 3, big); err != nil {
		t.Fatal(err)
	}
	msg, err = workers[1].Recv()
	if err != nil {
		t.Fatal(err)
	}
	if msg.Tag != 3 || !bytes.Equal(msg.Data, big) {
		t.Error("large payload corrupted")
	}
}

func TestTCPStarTopologyEnforced(t *testing.T) {
	m, workers := startTCPWorld(t, 3)
	defer m.Close()
	defer closeAll(workers)
	if err := workers[0].Send(2, 0, nil); err == nil {
		t.Error("worker-to-worker send accepted")
	}
	if err := m.Send(0, 0, nil); err == nil {
		t.Error("master self-send accepted")
	}
}

func TestTCPWorkerDeathDeliversDown(t *testing.T) {
	m, workers := startTCPWorld(t, 3)
	defer m.Close()
	defer closeAll(workers)

	workers[0].Close() // rank 1 dies
	msg, err := m.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if msg.Tag != TagDown || msg.From != 1 {
		t.Errorf("expected TagDown from rank 1, got %+v", msg)
	}
	// the rest of the world still works
	if err := workers[1].Send(0, 4, []byte("alive")); err != nil {
		t.Fatal(err)
	}
	msg, err = m.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if msg.From != 2 || string(msg.Data) != "alive" {
		t.Errorf("got %+v", msg)
	}
}

func TestTCPWorldSizeValidation(t *testing.T) {
	if _, err := ListenTCP("127.0.0.1:0", 1, time.Second); err == nil {
		t.Error("world size 1 accepted")
	}
}

func closeAll(comms []Comm) {
	for _, c := range comms {
		c.Close()
	}
}
