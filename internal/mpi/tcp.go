package mpi

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Wire format, per frame:
//
//	magic   [4]byte "RPR1" (handshake only)
//	frame:  uint32 payload length | uint8 tag | int32 from | payload
//
// Handshake: worker connects and sends magic; master replies with
// magic, assigned rank (int32) and world size (int32).
//
// Liveness: both sides emit tagHeartbeat frames every
// HeartbeatInterval and arm a read deadline of HeartbeatTimeout on
// frame reads, so a peer that hangs without closing its socket (the
// kernel keeps the connection "established" indefinitely) surfaces as
// TagDown instead of blocking Recv forever. Heartbeat frames are
// consumed by the transport and never reach the application.

var tcpMagic = [4]byte{'R', 'P', 'R', '1'}

// tagHeartbeat is the wire-level liveness probe (never delivered). Its
// payload is the sender's monotonic send time (8 bytes, nanoseconds);
// the receiver echoes it back as tagHeartbeatAck so the original
// sender can gauge the link's round-trip time. Empty payloads (older
// peers, tests) are still valid probes — they simply are not echoed.
const tagHeartbeat Tag = 254

// tagHeartbeatAck carries a heartbeat payload back to its sender for
// RTT measurement (never delivered to the application).
const tagHeartbeatAck Tag = 252

// hbEpoch is the process-local monotonic base for heartbeat
// timestamps. Timestamps never cross process boundaries meaningfully —
// each side only interprets echoes of its own heartbeats.
var hbEpoch = time.Now()

// hbStamp returns the current monotonic heartbeat payload.
func hbStamp() []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(time.Since(hbEpoch).Nanoseconds()))
	return b[:]
}

// hbRTT converts an echoed payload to a round-trip time, or -1 when
// the payload is absent or implausible.
func hbRTT(payload []byte) int64 {
	if len(payload) != 8 {
		return -1
	}
	sent := int64(binary.LittleEndian.Uint64(payload))
	rtt := time.Since(hbEpoch).Nanoseconds() - sent
	if rtt < 0 {
		return -1
	}
	return rtt
}

// HeartbeatRTT returns the last measured heartbeat round-trip time to
// rank from reg's per-peer gauges, or 0 when unknown (no TCP transport,
// rank dead, or no echo seen yet). Package cluster uses it to
// skew-correct span timestamps shipped from slaves.
func HeartbeatRTT(reg *obs.Registry, rank int) int64 {
	return reg.LookupGauge(fmt.Sprintf("mpi/hb_rtt_ns/rank%d", rank)).Load()
}

// TCPOptions tunes the failure-detection behaviour of the TCP
// transport. A zero field selects its default; a negative
// HeartbeatInterval or WriteTimeout disables that mechanism.
type TCPOptions struct {
	// AcceptTimeout bounds ListenTCP's wait for the initial workers
	// (0 = wait forever).
	AcceptTimeout time.Duration
	// HandshakeTimeout bounds the magic/hello exchange on each new
	// connection so one stalled client cannot wedge admission.
	HandshakeTimeout time.Duration
	// HeartbeatInterval is how often each side pings the link.
	HeartbeatInterval time.Duration
	// HeartbeatTimeout is how long a link may stay completely silent
	// before its peer is declared dead (TagDown). It should be several
	// multiples of HeartbeatInterval; values below 2x the interval are
	// raised to 4x.
	HeartbeatTimeout time.Duration
	// WriteTimeout bounds one frame write so a peer that stopped
	// reading cannot block senders forever.
	WriteTimeout time.Duration
	// Metrics, when non-nil, receives transport telemetry: per-peer
	// heartbeat round-trip gauges (mpi/hb_rtt_ns/rank<N>) and heartbeat
	// send/receive counters.
	Metrics *obs.Registry
}

// DefaultTCPOptions returns the settings used by the plain ListenTCP
// and DialTCP wrappers.
func DefaultTCPOptions() TCPOptions {
	return TCPOptions{
		HandshakeTimeout:  10 * time.Second,
		HeartbeatInterval: 2 * time.Second,
		HeartbeatTimeout:  8 * time.Second,
		WriteTimeout:      30 * time.Second,
	}
}

func (o TCPOptions) normalized() TCPOptions {
	def := DefaultTCPOptions()
	if o.HandshakeTimeout == 0 {
		o.HandshakeTimeout = def.HandshakeTimeout
	}
	if o.HandshakeTimeout < 0 {
		o.HandshakeTimeout = 0
	}
	if o.HeartbeatInterval == 0 {
		o.HeartbeatInterval = def.HeartbeatInterval
	}
	if o.HeartbeatInterval < 0 {
		o.HeartbeatInterval, o.HeartbeatTimeout = 0, 0
	} else if o.HeartbeatTimeout < 2*o.HeartbeatInterval {
		o.HeartbeatTimeout = 4 * o.HeartbeatInterval
	}
	if o.WriteTimeout == 0 {
		o.WriteTimeout = def.WriteTimeout
	}
	if o.WriteTimeout < 0 {
		o.WriteTimeout = 0
	}
	return o
}

// ListenTCP starts the master endpoint (rank 0) on addr and blocks
// until size-1 workers have connected (or timeout elapses; 0 means no
// timeout), using default fault-tolerance options. The returned Comm
// receives from all workers; Send addresses workers by their assigned
// rank. The listener stays open after the initial world forms so
// replacement workers can join mid-run (they surface as TagJoin).
func ListenTCP(addr string, size int, timeout time.Duration) (Comm, error) {
	opts := DefaultTCPOptions()
	opts.AcceptTimeout = timeout
	return ListenTCPOpts(addr, size, opts)
}

// ListenTCPOpts is ListenTCP with explicit transport options.
func ListenTCPOpts(addr string, size int, opts TCPOptions) (Comm, error) {
	if size < 2 {
		return nil, fmt.Errorf("mpi: tcp world size %d must be >= 2", size)
	}
	opts = opts.normalized()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("mpi: listen %s: %w", addr, err)
	}
	m := &tcpMaster{
		opts:        opts,
		ln:          ln,
		initialSize: size,
		next:        1,
		conns:       make(map[int]*tcpConn),
		inbox:       make(chan Message, 1024),
		done:        make(chan struct{}),
	}
	if opts.AcceptTimeout > 0 {
		if tl, ok := ln.(*net.TCPListener); ok {
			tl.SetDeadline(time.Now().Add(opts.AcceptTimeout))
		}
	}
	admitted := make(chan int, size)
	errCh := make(chan error, 1)
	go m.acceptLoop(admitted, errCh)
	for got := 0; got < size-1; {
		select {
		case <-admitted:
			got++
		case err := <-errCh:
			m.Close()
			return nil, fmt.Errorf("mpi: accepting workers (%d of %d connected): %w", got, size-1, err)
		}
	}
	m.initialDone.Store(true)
	if opts.AcceptTimeout > 0 {
		if tl, ok := ln.(*net.TCPListener); ok {
			// Keep accepting forever: replacements may rejoin mid-run.
			tl.SetDeadline(time.Time{})
		}
	}
	return m, nil
}

// DialTCP connects a worker endpoint to the master at addr with default
// fault-tolerance options. The master assigns the rank.
func DialTCP(addr string, timeout time.Duration) (Comm, error) {
	return DialTCPOpts(addr, timeout, DefaultTCPOptions())
}

// DialTCPOpts is DialTCP with explicit transport options. The options
// must match the master's heartbeat configuration closely enough that
// each side pings more often than the other's timeout.
func DialTCPOpts(addr string, timeout time.Duration, opts TCPOptions) (Comm, error) {
	opts = opts.normalized()
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("mpi: dial %s: %w", addr, err)
	}
	if opts.HandshakeTimeout > 0 {
		conn.SetDeadline(time.Now().Add(opts.HandshakeTimeout))
	}
	if _, err := conn.Write(tcpMagic[:]); err != nil {
		conn.Close()
		return nil, fmt.Errorf("mpi: handshake: %w", err)
	}
	tc := newTCPConn(conn, opts)
	var hello [12]byte
	if _, err := io.ReadFull(tc.br, hello[:]); err != nil {
		conn.Close()
		return nil, fmt.Errorf("mpi: handshake reply: %w", err)
	}
	if [4]byte(hello[0:4]) != tcpMagic {
		conn.Close()
		return nil, fmt.Errorf("mpi: bad handshake magic from master")
	}
	conn.SetDeadline(time.Time{})
	w := &tcpWorker{
		rank:  int(binary.LittleEndian.Uint32(hello[4:8])),
		size:  int(binary.LittleEndian.Uint32(hello[8:12])),
		conn:  tc,
		inbox: make(chan Message, 1024),
		done:  make(chan struct{}),
	}
	go w.reader()
	if opts.HeartbeatInterval > 0 {
		go tc.pinger(w.rank, opts.HeartbeatInterval, w.done)
	}
	return w, nil
}

// tcpConn wraps a connection with buffered I/O, a write lock, and the
// transport's I/O deadlines.
type tcpConn struct {
	c            net.Conn
	br           *bufio.Reader
	readTimeout  time.Duration // max silence between reads (heartbeat timeout)
	writeTimeout time.Duration
	reg          *obs.Registry

	wmu sync.Mutex
	bw  *bufio.Writer
}

func newTCPConn(c net.Conn, opts TCPOptions) *tcpConn {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return &tcpConn{
		c:            c,
		br:           bufio.NewReaderSize(c, 64<<10),
		bw:           bufio.NewWriterSize(c, 64<<10),
		readTimeout:  opts.HeartbeatTimeout,
		writeTimeout: opts.WriteTimeout,
		reg:          opts.Metrics,
	}
}

// handleHeartbeat consumes a transport-level frame: a probe is echoed
// back (best effort) so the peer can measure round-trip time, an echo
// of our own probe updates the peer's RTT gauge. ourRank stamps the
// echo frame; peer names the gauge. Reports whether the frame was a
// transport frame the caller must not deliver.
func (t *tcpConn) handleHeartbeat(msg Message, ourRank, peer int) bool {
	switch msg.Tag {
	case tagHeartbeat:
		t.reg.Counter("mpi/hb_recv").Inc()
		if len(msg.Data) == 8 {
			go t.writeFrame(ourRank, tagHeartbeatAck, msg.Data)
		}
		return true
	case tagHeartbeatAck:
		if rtt := hbRTT(msg.Data); rtt >= 0 {
			t.reg.Gauge(fmt.Sprintf("mpi/hb_rtt_ns/rank%d", peer)).Set(rtt)
		}
		return true
	}
	return false
}

func (t *tcpConn) writeFrame(from int, tag Tag, data []byte) error {
	if len(data) > maxPayload {
		return fmt.Errorf("mpi: payload %d exceeds limit", len(data))
	}
	t.wmu.Lock()
	defer t.wmu.Unlock()
	if t.writeTimeout > 0 {
		t.c.SetWriteDeadline(time.Now().Add(t.writeTimeout))
	}
	var hdr [9]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(data)))
	hdr[4] = byte(tag)
	binary.LittleEndian.PutUint32(hdr[5:9], uint32(int32(from)))
	err := func() error {
		if _, err := t.bw.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := t.bw.Write(data); err != nil {
			return err
		}
		return t.bw.Flush()
	}()
	if err != nil {
		// A partial frame (e.g. a write timeout to a peer that stopped
		// reading) leaves the stream unframeable: close the connection
		// so the reader converges on TagDown.
		t.c.Close()
	}
	return err
}

// readFull reads exactly len(buf) bytes, re-arming the heartbeat read
// deadline whenever bytes arrive so that only full silence — not a
// slow large frame — trips the failure detector.
func (t *tcpConn) readFull(buf []byte) error {
	for len(buf) > 0 {
		if t.readTimeout > 0 {
			t.c.SetReadDeadline(time.Now().Add(t.readTimeout))
		}
		n, err := t.br.Read(buf)
		buf = buf[n:]
		if err != nil && len(buf) > 0 {
			return err
		}
	}
	return nil
}

func (t *tcpConn) readFrame() (Message, error) {
	var hdr [9]byte
	if err := t.readFull(hdr[:]); err != nil {
		return Message{}, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n > maxPayload {
		return Message{}, fmt.Errorf("mpi: frame length %d exceeds limit", n)
	}
	msg := Message{
		Tag:  Tag(hdr[4]),
		From: int(int32(binary.LittleEndian.Uint32(hdr[5:9]))),
	}
	if n > 0 {
		msg.Data = make([]byte, n)
		if err := t.readFull(msg.Data); err != nil {
			return Message{}, err
		}
	}
	return msg, nil
}

// pinger keeps the link alive from our side so the peer's failure
// detector only fires on genuine silence. It stops when the endpoint
// closes or the connection dies (write error).
func (t *tcpConn) pinger(from int, interval time.Duration, done <-chan struct{}) {
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-done:
			return
		case <-tick.C:
			if t.writeFrame(from, tagHeartbeat, hbStamp()) != nil {
				return
			}
			t.reg.Counter("mpi/hb_sent").Inc()
		}
	}
}

// tcpMaster is rank 0 of a TCP world. The rank space grows as
// replacement workers join; dead ranks are never reused.
type tcpMaster struct {
	opts        TCPOptions
	ln          net.Listener
	initialSize int
	inbox       chan Message
	done        chan struct{}
	initialDone atomic.Bool

	mu    sync.Mutex
	next  int              // next rank to assign
	conns map[int]*tcpConn // rank -> conn; nil entry = rank is down

	closeOnce sync.Once
}

func (m *tcpMaster) Rank() int { return 0 }

func (m *tcpMaster) Size() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return max(m.next, m.initialSize)
}

// acceptLoop admits connections for the life of the endpoint. Each
// handshake runs in its own goroutine so a stalled client cannot block
// later arrivals.
func (m *tcpMaster) acceptLoop(admitted chan<- int, errCh chan<- error) {
	for {
		conn, err := m.ln.Accept()
		if err != nil {
			select {
			case <-m.done:
				return
			default:
			}
			if ne, ok := err.(net.Error); ok && ne.Timeout() && m.initialDone.Load() {
				// A leftover initial-phase deadline fired after the
				// world formed; clear it and keep accepting.
				if tl, ok := m.ln.(*net.TCPListener); ok {
					tl.SetDeadline(time.Time{})
					continue
				}
			}
			select {
			case errCh <- err:
			default:
			}
			return
		}
		go m.admit(conn, admitted)
	}
}

// admit handshakes one new connection under its own deadline and
// registers it as the next rank.
func (m *tcpMaster) admit(conn net.Conn, admitted chan<- int) {
	if m.opts.HandshakeTimeout > 0 {
		conn.SetDeadline(time.Now().Add(m.opts.HandshakeTimeout))
	}
	tc := newTCPConn(conn, m.opts)
	var magic [4]byte
	if _, err := io.ReadFull(tc.br, magic[:]); err != nil || magic != tcpMagic {
		conn.Close()
		return
	}
	m.mu.Lock()
	select {
	case <-m.done:
		m.mu.Unlock()
		conn.Close()
		return
	default:
	}
	rank := m.next
	m.next++
	m.conns[rank] = tc
	m.mu.Unlock()

	var hello [12]byte
	copy(hello[0:4], tcpMagic[:])
	binary.LittleEndian.PutUint32(hello[4:8], uint32(rank))
	binary.LittleEndian.PutUint32(hello[8:12], uint32(max(rank+1, m.initialSize)))
	ok := true
	if _, err := conn.Write(hello[:]); err != nil {
		ok = false
	}
	if ok {
		conn.SetDeadline(time.Time{})
		go m.reader(rank, tc)
		if m.opts.HeartbeatInterval > 0 {
			go tc.pinger(0, m.opts.HeartbeatInterval, m.done)
		}
	} else {
		m.mu.Lock()
		m.conns[rank] = nil // rank burned; handshake never completed
		m.mu.Unlock()
		conn.Close()
	}

	if rank < m.initialSize {
		// Initial world member: count towards the ListenTCP barrier. A
		// failed hello still counts so the barrier cannot hang; the
		// dead rank surfaces as TagDown and Send errors instead.
		select {
		case admitted <- rank:
		default:
		}
		if !ok {
			m.deliver(Message{From: rank, Tag: TagDown})
		}
		return
	}
	if ok {
		m.deliver(Message{From: rank, Tag: TagJoin})
	}
}

func (m *tcpMaster) deliver(msg Message) {
	select {
	case m.inbox <- msg:
	case <-m.done:
	}
}

func (m *tcpMaster) Send(to int, tag Tag, data []byte) error {
	select {
	case <-m.done:
		return ErrClosed
	default:
	}
	m.mu.Lock()
	size := max(m.next, m.initialSize)
	tc := m.conns[to]
	m.mu.Unlock()
	if to <= 0 || to >= size {
		return errBadRank(to, size)
	}
	if tc == nil {
		return fmt.Errorf("mpi: rank %d is down", to)
	}
	return tc.writeFrame(0, tag, data)
}

func (m *tcpMaster) Recv() (Message, error) {
	select {
	case msg := <-m.inbox:
		return msg, nil
	case <-m.done:
		select {
		case msg := <-m.inbox:
			return msg, nil
		default:
			return Message{}, ErrClosed
		}
	}
}

// reader pumps one worker connection into the shared inbox and reports
// the worker's death exactly once. A read error — including a missed
// heartbeat deadline — closes the connection so the pinger stops too.
func (m *tcpMaster) reader(rank int, tc *tcpConn) {
	for {
		msg, err := tc.readFrame()
		if err != nil {
			tc.c.Close()
			m.mu.Lock()
			m.conns[rank] = nil
			m.mu.Unlock()
			// The peer is gone: drop its RTT gauge so scrapes stop
			// reporting a frozen last value for a dead rank.
			tc.reg.RemoveGauge(fmt.Sprintf("mpi/hb_rtt_ns/rank%d", rank))
			m.deliver(Message{From: rank, Tag: TagDown})
			return
		}
		if tc.handleHeartbeat(msg, 0, rank) {
			continue
		}
		msg.From = rank // trust the connection, not the frame header
		select {
		case m.inbox <- msg:
		case <-m.done:
			return
		}
	}
}

func (m *tcpMaster) Close() error {
	m.closeOnce.Do(func() {
		close(m.done)
		m.ln.Close()
		m.mu.Lock()
		for _, c := range m.conns {
			if c != nil {
				c.c.Close()
			}
		}
		m.mu.Unlock()
	})
	return nil
}

// tcpWorker is a non-zero rank connected to the master.
type tcpWorker struct {
	rank  int
	size  int
	conn  *tcpConn
	inbox chan Message
	done  chan struct{}

	closeOnce sync.Once
}

func (w *tcpWorker) Rank() int { return w.rank }
func (w *tcpWorker) Size() int { return w.size }

func (w *tcpWorker) Send(to int, tag Tag, data []byte) error {
	if to != 0 {
		return fmt.Errorf("mpi: tcp transport is a star: worker %d cannot send to rank %d", w.rank, to)
	}
	select {
	case <-w.done:
		return ErrClosed
	default:
	}
	return w.conn.writeFrame(w.rank, tag, data)
}

func (w *tcpWorker) Recv() (Message, error) {
	select {
	case msg := <-w.inbox:
		return msg, nil
	case <-w.done:
		select {
		case msg := <-w.inbox:
			return msg, nil
		default:
			return Message{}, ErrClosed
		}
	}
}

func (w *tcpWorker) reader() {
	for {
		msg, err := w.conn.readFrame()
		if err != nil {
			w.conn.c.Close()
			// Master link lost: its RTT gauge must not linger frozen.
			w.conn.reg.RemoveGauge("mpi/hb_rtt_ns/rank0")
			select {
			case w.inbox <- Message{From: 0, Tag: TagDown}:
			case <-w.done:
			}
			return
		}
		if w.conn.handleHeartbeat(msg, w.rank, 0) {
			continue
		}
		msg.From = 0
		select {
		case w.inbox <- msg:
		case <-w.done:
			return
		}
	}
}

func (w *tcpWorker) Close() error {
	w.closeOnce.Do(func() {
		close(w.done)
		w.conn.c.Close()
	})
	return nil
}
