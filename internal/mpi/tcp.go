package mpi

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Wire format, per frame:
//
//	magic   [4]byte "RPR1" (handshake only)
//	frame:  uint32 payload length | uint8 tag | int32 from | payload
//
// Handshake: worker connects and sends magic; master replies with
// magic, assigned rank (int32) and world size (int32).

var tcpMagic = [4]byte{'R', 'P', 'R', '1'}

// ListenTCP starts the master endpoint (rank 0) on addr and blocks
// until size-1 workers have connected (or timeout elapses; 0 means no
// timeout). The returned Comm receives from all workers; Send addresses
// workers by their assigned rank.
func ListenTCP(addr string, size int, timeout time.Duration) (Comm, error) {
	if size < 2 {
		return nil, fmt.Errorf("mpi: tcp world size %d must be >= 2", size)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("mpi: listen %s: %w", addr, err)
	}
	defer ln.Close()
	if timeout > 0 {
		if tl, ok := ln.(*net.TCPListener); ok {
			tl.SetDeadline(time.Now().Add(timeout))
		}
	}
	m := &tcpMaster{
		size:  size,
		conns: make([]*tcpConn, size),
		inbox: make(chan Message, 1024),
		done:  make(chan struct{}),
	}
	for rank := 1; rank < size; rank++ {
		conn, err := ln.Accept()
		if err != nil {
			m.Close()
			return nil, fmt.Errorf("mpi: accepting worker %d of %d: %w", rank, size-1, err)
		}
		tc, err := newTCPConn(conn)
		if err != nil {
			conn.Close()
			m.Close()
			return nil, err
		}
		var magic [4]byte
		if _, err := io.ReadFull(tc.br, magic[:]); err != nil || magic != tcpMagic {
			conn.Close()
			m.Close()
			return nil, fmt.Errorf("mpi: bad handshake from %s", conn.RemoteAddr())
		}
		var hello [12]byte
		copy(hello[0:4], tcpMagic[:])
		binary.LittleEndian.PutUint32(hello[4:8], uint32(rank))
		binary.LittleEndian.PutUint32(hello[8:12], uint32(size))
		if _, err := conn.Write(hello[:]); err != nil {
			conn.Close()
			m.Close()
			return nil, fmt.Errorf("mpi: handshake reply to worker %d: %w", rank, err)
		}
		m.conns[rank] = tc
		go m.reader(rank, tc)
	}
	return m, nil
}

// DialTCP connects a worker endpoint to the master at addr. The master
// assigns the rank.
func DialTCP(addr string, timeout time.Duration) (Comm, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("mpi: dial %s: %w", addr, err)
	}
	if _, err := conn.Write(tcpMagic[:]); err != nil {
		conn.Close()
		return nil, fmt.Errorf("mpi: handshake: %w", err)
	}
	tc, err := newTCPConn(conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	var hello [12]byte
	if _, err := io.ReadFull(tc.br, hello[:]); err != nil {
		conn.Close()
		return nil, fmt.Errorf("mpi: handshake reply: %w", err)
	}
	if [4]byte(hello[0:4]) != tcpMagic {
		conn.Close()
		return nil, fmt.Errorf("mpi: bad handshake magic from master")
	}
	w := &tcpWorker{
		rank:  int(binary.LittleEndian.Uint32(hello[4:8])),
		size:  int(binary.LittleEndian.Uint32(hello[8:12])),
		conn:  tc,
		inbox: make(chan Message, 1024),
		done:  make(chan struct{}),
	}
	go w.reader()
	return w, nil
}

// tcpConn wraps a connection with buffered I/O and a write lock.
type tcpConn struct {
	c  net.Conn
	br *bufio.Reader

	wmu sync.Mutex
	bw  *bufio.Writer
}

func newTCPConn(c net.Conn) (*tcpConn, error) {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return &tcpConn{c: c, br: bufio.NewReaderSize(c, 64<<10), bw: bufio.NewWriterSize(c, 64<<10)}, nil
}

func (t *tcpConn) writeFrame(from int, tag Tag, data []byte) error {
	if len(data) > maxPayload {
		return fmt.Errorf("mpi: payload %d exceeds limit", len(data))
	}
	t.wmu.Lock()
	defer t.wmu.Unlock()
	var hdr [9]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(data)))
	hdr[4] = byte(tag)
	binary.LittleEndian.PutUint32(hdr[5:9], uint32(int32(from)))
	if _, err := t.bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := t.bw.Write(data); err != nil {
		return err
	}
	return t.bw.Flush()
}

func (t *tcpConn) readFrame() (Message, error) {
	var hdr [9]byte
	if _, err := io.ReadFull(t.br, hdr[:]); err != nil {
		return Message{}, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n > maxPayload {
		return Message{}, fmt.Errorf("mpi: frame length %d exceeds limit", n)
	}
	msg := Message{
		Tag:  Tag(hdr[4]),
		From: int(int32(binary.LittleEndian.Uint32(hdr[5:9]))),
	}
	if n > 0 {
		msg.Data = make([]byte, n)
		if _, err := io.ReadFull(t.br, msg.Data); err != nil {
			return Message{}, err
		}
	}
	return msg, nil
}

// tcpMaster is rank 0 of a TCP world.
type tcpMaster struct {
	size  int
	conns []*tcpConn // index = rank, [0] nil
	inbox chan Message
	done  chan struct{}

	closeOnce sync.Once
}

func (m *tcpMaster) Rank() int { return 0 }
func (m *tcpMaster) Size() int { return m.size }

func (m *tcpMaster) Send(to int, tag Tag, data []byte) error {
	if to <= 0 || to >= m.size {
		return errBadRank(to, m.size)
	}
	select {
	case <-m.done:
		return ErrClosed
	default:
	}
	return m.conns[to].writeFrame(0, tag, data)
}

func (m *tcpMaster) Recv() (Message, error) {
	select {
	case msg := <-m.inbox:
		return msg, nil
	case <-m.done:
		select {
		case msg := <-m.inbox:
			return msg, nil
		default:
			return Message{}, ErrClosed
		}
	}
}

// reader pumps one worker connection into the shared inbox and reports
// the worker's death exactly once.
func (m *tcpMaster) reader(rank int, tc *tcpConn) {
	for {
		msg, err := tc.readFrame()
		if err != nil {
			select {
			case m.inbox <- Message{From: rank, Tag: TagDown}:
			case <-m.done:
			}
			return
		}
		msg.From = rank // trust the connection, not the frame header
		select {
		case m.inbox <- msg:
		case <-m.done:
			return
		}
	}
}

func (m *tcpMaster) Close() error {
	m.closeOnce.Do(func() {
		close(m.done)
		for _, c := range m.conns {
			if c != nil {
				c.c.Close()
			}
		}
	})
	return nil
}

// tcpWorker is a non-zero rank connected to the master.
type tcpWorker struct {
	rank  int
	size  int
	conn  *tcpConn
	inbox chan Message
	done  chan struct{}

	closeOnce sync.Once
}

func (w *tcpWorker) Rank() int { return w.rank }
func (w *tcpWorker) Size() int { return w.size }

func (w *tcpWorker) Send(to int, tag Tag, data []byte) error {
	if to != 0 {
		return fmt.Errorf("mpi: tcp transport is a star: worker %d cannot send to rank %d", w.rank, to)
	}
	select {
	case <-w.done:
		return ErrClosed
	default:
	}
	return w.conn.writeFrame(w.rank, tag, data)
}

func (w *tcpWorker) Recv() (Message, error) {
	select {
	case msg := <-w.inbox:
		return msg, nil
	case <-w.done:
		select {
		case msg := <-w.inbox:
			return msg, nil
		default:
			return Message{}, ErrClosed
		}
	}
}

func (w *tcpWorker) reader() {
	for {
		msg, err := w.conn.readFrame()
		if err != nil {
			select {
			case w.inbox <- Message{From: 0, Tag: TagDown}:
			case <-w.done:
			}
			return
		}
		msg.From = 0
		select {
		case w.inbox <- msg:
		case <-w.done:
			return
		}
	}
}

func (w *tcpWorker) Close() error {
	w.closeOnce.Do(func() {
		close(w.done)
		w.conn.c.Close()
	})
	return nil
}
