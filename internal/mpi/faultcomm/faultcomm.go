// Package faultcomm wraps an mpi.Comm with seeded, deterministic fault
// injection — message drops, delays, duplication, and endpoint kills —
// so cluster tests can exercise partial-failure recovery on any
// transport without touching real sockets or clocks.
//
// The wrapper is transparent when Config is zero. Faults apply only to
// application tags (below mpi.MinReservedTag); runtime messages such as
// TagDown always pass through, since they model local failure
// detection rather than wire traffic.
//
// Determinism: every probabilistic decision draws from one PCG stream
// seeded by Config.Seed, in call order. A single-threaded endpoint
// therefore makes identical decisions across runs; multi-threaded
// endpoints are deterministic per interleaving, which is enough for the
// chaos tests to be meaningfully reproducible by seed.
package faultcomm

import (
	"math/rand/v2"
	"sync"
	"time"

	"repro/internal/mpi"
)

// Rule matches messages of one application tag with probability Prob
// (0,1]. Delay is consulted by delay rules only.
type Rule struct {
	Tag   mpi.Tag
	Prob  float64
	Delay time.Duration
}

// Config selects the faults to inject. The zero value injects nothing.
type Config struct {
	// Seed initialises the decision stream.
	Seed uint64
	// DropSend discards matching outgoing messages (reported as sent).
	DropSend []Rule
	// DelaySend sleeps for the rule's Delay before sending a match —
	// the straggler fault: the message arrives late but intact.
	DelaySend []Rule
	// DupSend transmits matching messages twice.
	DupSend []Rule
	// DropRecv discards matching messages on the receive path.
	DropRecv []Rule
	// KillAfterSends closes the endpoint permanently once this many
	// application messages have been sent (0 = never); the peer
	// observes the death as TagDown. Models a rank crashing mid-run.
	KillAfterSends int
	// KillAfterRecvs likewise, counting delivered application messages.
	KillAfterRecvs int
}

// Comm is a fault-injecting mpi.Comm. Wrap the endpoint you hand to
// RunSlave/RunMaster; the peer side stays unmodified.
type Comm struct {
	inner mpi.Comm
	cfg   Config

	mu    sync.Mutex
	rng   *rand.Rand
	sends int
	recvs int
}

// Wrap decorates inner with the configured faults.
func Wrap(inner mpi.Comm, cfg Config) *Comm {
	return &Comm{inner: inner, cfg: cfg, rng: rand.New(rand.NewPCG(cfg.Seed, 0xfa17c0))}
}

func (c *Comm) Rank() int { return c.inner.Rank() }
func (c *Comm) Size() int { return c.inner.Size() }

// Close closes the wrapped endpoint.
func (c *Comm) Close() error { return c.inner.Close() }

// match reports whether any rule fires for tag, returning the first
// firing rule. Reserved tags never match.
func (c *Comm) match(rules []Rule, tag mpi.Tag) *Rule {
	if tag >= mpi.MinReservedTag {
		return nil
	}
	for i := range rules {
		if rules[i].Tag == tag && c.rng.Float64() < rules[i].Prob {
			return &rules[i]
		}
	}
	return nil
}

// Send applies kill/drop/delay/duplicate faults, in that order, around
// the wrapped Send.
func (c *Comm) Send(to int, tag mpi.Tag, data []byte) error {
	c.mu.Lock()
	if c.cfg.KillAfterSends > 0 && c.sends >= c.cfg.KillAfterSends {
		c.mu.Unlock()
		c.inner.Close()
		return mpi.ErrClosed
	}
	if tag < mpi.MinReservedTag {
		c.sends++
	}
	drop := c.match(c.cfg.DropSend, tag) != nil
	var delay time.Duration
	if r := c.match(c.cfg.DelaySend, tag); r != nil {
		delay = r.Delay
	}
	dup := c.match(c.cfg.DupSend, tag) != nil
	c.mu.Unlock()

	if drop {
		return nil // lost on the wire; the sender cannot tell
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	if err := c.inner.Send(to, tag, data); err != nil {
		return err
	}
	if dup {
		return c.inner.Send(to, tag, data)
	}
	return nil
}

// Recv applies receive-side drops and the receive kill budget.
func (c *Comm) Recv() (mpi.Message, error) {
	for {
		msg, err := c.inner.Recv()
		if err != nil {
			return msg, err
		}
		c.mu.Lock()
		kill := c.cfg.KillAfterRecvs > 0 && c.recvs >= c.cfg.KillAfterRecvs &&
			msg.Tag < mpi.MinReservedTag
		if !kill && msg.Tag < mpi.MinReservedTag {
			c.recvs++
		}
		drop := !kill && c.match(c.cfg.DropRecv, msg.Tag) != nil
		c.mu.Unlock()
		if kill {
			c.inner.Close()
			return mpi.Message{}, mpi.ErrClosed
		}
		if drop {
			continue
		}
		return msg, nil
	}
}
