package faultcomm

import (
	"testing"
	"time"

	"repro/internal/mpi"
)

// Drops must be deterministic under a fixed seed: two wrappers with the
// same config make identical decisions for the same call sequence.
func TestDropDeterministicBySeed(t *testing.T) {
	run := func() []bool {
		world := mpi.NewLocal(2)
		defer world[0].Close()
		defer world[1].Close()
		c := Wrap(world[1], Config{Seed: 42, DropSend: []Rule{{Tag: 3, Prob: 0.5}}})
		var kept []bool
		for i := 0; i < 64; i++ {
			if err := c.Send(0, 3, []byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
			select {
			case <-mustRecvCh(world[0]):
				kept = append(kept, true)
			case <-time.After(20 * time.Millisecond):
				kept = append(kept, false)
			}
		}
		return kept
	}
	a, b := run(), run()
	dropped := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs across identically-seeded runs", i)
		}
		if !a[i] {
			dropped++
		}
	}
	if dropped == 0 || dropped == len(a) {
		t.Fatalf("dropped %d of %d — rule had no probabilistic effect", dropped, len(a))
	}
}

func mustRecvCh(c mpi.Comm) <-chan mpi.Message {
	ch := make(chan mpi.Message, 1)
	go func() {
		if msg, err := c.Recv(); err == nil {
			ch <- msg
		}
	}()
	return ch
}

// A duplicate rule with Prob 1 must deliver every message twice.
func TestDupSend(t *testing.T) {
	world := mpi.NewLocal(2)
	defer world[0].Close()
	defer world[1].Close()
	c := Wrap(world[1], Config{Seed: 1, DupSend: []Rule{{Tag: 5, Prob: 1}}})
	if err := c.Send(0, 5, []byte("x")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		msg, err := world[0].Recv()
		if err != nil || msg.Tag != 5 {
			t.Fatalf("copy %d: %+v, %v", i, msg, err)
		}
	}
}

// The kill budget closes the endpoint and surfaces TagDown at the peer.
func TestKillAfterSends(t *testing.T) {
	world := mpi.NewLocal(2)
	defer world[0].Close()
	c := Wrap(world[1], Config{Seed: 1, KillAfterSends: 2})
	for i := 0; i < 2; i++ {
		if err := c.Send(0, 1, nil); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if err := c.Send(0, 1, nil); err != mpi.ErrClosed {
		t.Fatalf("send past budget = %v, want ErrClosed", err)
	}
	got := map[mpi.Tag]int{}
	for i := 0; i < 3; i++ {
		msg, err := world[0].Recv()
		if err != nil {
			t.Fatal(err)
		}
		got[msg.Tag]++
	}
	if got[1] != 2 || got[mpi.TagDown] != 1 {
		t.Fatalf("peer saw %v, want 2 app messages and one TagDown", got)
	}
}

// DropRecv discards matching deliveries but never runtime tags.
func TestDropRecvSparesRuntimeTags(t *testing.T) {
	world := mpi.NewLocal(2)
	defer world[0].Close()
	c := Wrap(world[0], Config{Seed: 9, DropRecv: []Rule{{Tag: 7, Prob: 1}}})
	if err := world[1].Send(0, 2, []byte("keep")); err != nil {
		t.Fatal(err)
	}
	world[1].Close() // enqueues TagDown at rank 0
	msg, err := c.Recv()
	if err != nil || msg.Tag != 2 {
		t.Fatalf("first recv: %+v, %v", msg, err)
	}
	msg, err = c.Recv()
	if err != nil || msg.Tag != mpi.TagDown {
		t.Fatalf("TagDown swallowed: %+v, %v", msg, err)
	}
}

// DelaySend must hold a matching message back by the configured amount.
func TestDelaySend(t *testing.T) {
	world := mpi.NewLocal(2)
	defer world[0].Close()
	defer world[1].Close()
	const d = 60 * time.Millisecond
	c := Wrap(world[1], Config{Seed: 3, DelaySend: []Rule{{Tag: 4, Prob: 1, Delay: d}}})
	t0 := time.Now()
	if err := c.Send(0, 4, nil); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(t0); elapsed < d {
		t.Fatalf("send returned after %v, want >= %v", elapsed, d)
	}
	if msg, err := world[0].Recv(); err != nil || msg.Tag != 4 {
		t.Fatalf("delayed message lost: %+v, %v", msg, err)
	}
}
