package mpi

import (
	"net"
	"testing"
	"time"
)

// BenchmarkLocalRoundTrip measures the in-process transport's
// request/reply latency (worker sends, master echoes).
func BenchmarkLocalRoundTrip(b *testing.B) {
	world := NewLocal(2)
	defer world[0].Close()
	defer world[1].Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			msg, err := world[0].Recv()
			if err != nil {
				return
			}
			if world[0].Send(msg.From, msg.Tag, msg.Data) != nil {
				return
			}
		}
	}()
	payload := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := world[1].Send(0, 1, payload); err != nil {
			b.Fatal(err)
		}
		if _, err := world[1].Recv(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	world[1].Close()
	<-done
}

// BenchmarkTCPRowTransfer measures shipping an original bottom row
// (the dominant cluster traffic) over loopback TCP.
func BenchmarkTCPRowTransfer(b *testing.B) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	masterCh := make(chan Comm, 1)
	go func() {
		m, err := ListenTCP(addr, 2, 5*time.Second)
		if err == nil {
			masterCh <- m
		}
	}()
	time.Sleep(30 * time.Millisecond)
	w, err := DialTCP(addr, 5*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	m := <-masterCh
	defer m.Close()

	row := make([]byte, 4*8192) // an 8192-entry int32 row
	b.SetBytes(int64(len(row)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Send(1, 7, row); err != nil {
			b.Fatal(err)
		}
		if _, err := w.Recv(); err != nil {
			b.Fatal(err)
		}
	}
}
