package mpi

import (
	"encoding/binary"
	"io"
	"net"
	"testing"
	"time"
)

// fastHB returns transport options with millisecond-scale failure
// detection so the fault tests finish quickly.
func fastHB() TCPOptions {
	return TCPOptions{
		AcceptTimeout:     5 * time.Second,
		HandshakeTimeout:  2 * time.Second,
		HeartbeatInterval: 25 * time.Millisecond,
		HeartbeatTimeout:  150 * time.Millisecond,
		WriteTimeout:      2 * time.Second,
	}
}

// recvWithin fails the test unless c delivers a message within d.
func recvWithin(t *testing.T, c Comm, d time.Duration) Message {
	t.Helper()
	type out struct {
		msg Message
		err error
	}
	ch := make(chan out, 1)
	go func() {
		m, err := c.Recv()
		ch <- out{m, err}
	}()
	select {
	case o := <-ch:
		if o.err != nil {
			t.Fatalf("recv: %v", o.err)
		}
		return o.msg
	case <-time.After(d):
		t.Fatalf("no message within %v", d)
	}
	return Message{}
}

// startMasterAsync begins forming a TCP world in the background.
func startMasterAsync(t *testing.T, addr string, size int, opts TCPOptions) (<-chan Comm, <-chan error) {
	t.Helper()
	masterCh := make(chan Comm, 1)
	errCh := make(chan error, 1)
	go func() {
		m, err := ListenTCPOpts(addr, size, opts)
		if err != nil {
			errCh <- err
			return
		}
		masterCh <- m
	}()
	time.Sleep(50 * time.Millisecond)
	return masterCh, errCh
}

func awaitMaster(t *testing.T, masterCh <-chan Comm, errCh <-chan error) Comm {
	t.Helper()
	select {
	case m := <-masterCh:
		return m
	case err := <-errCh:
		t.Fatal(err)
	case <-time.After(5 * time.Second):
		t.Fatal("master did not come up")
	}
	return nil
}

// rawHandshake performs the worker side of the handshake by hand and
// returns the open connection plus the assigned rank, without starting
// any of the transport's goroutines — the resulting peer is completely
// inert, like a process that wedged right after connecting.
func rawHandshake(t *testing.T, addr string) (net.Conn, int) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(tcpMagic[:]); err != nil {
		t.Fatal(err)
	}
	var hello [12]byte
	if _, err := io.ReadFull(conn, hello[:]); err != nil {
		t.Fatal(err)
	}
	if [4]byte(hello[0:4]) != tcpMagic {
		t.Fatal("bad hello magic")
	}
	return conn, int(binary.LittleEndian.Uint32(hello[4:8]))
}

// A worker that completes the handshake and then goes completely silent
// — without ever closing its socket — must be declared dead by the
// heartbeat timeout and surface as TagDown on the master.
func TestTCPHeartbeatDetectsHungWorker(t *testing.T) {
	addr := mustFreeAddr(t)
	masterCh, errCh := startMasterAsync(t, addr, 2, fastHB())

	conn, rank := rawHandshake(t, addr)
	defer conn.Close()
	if rank != 1 {
		t.Fatalf("hung client got rank %d, want 1", rank)
	}
	m := awaitMaster(t, masterCh, errCh)
	defer m.Close()

	msg := recvWithin(t, m, 3*time.Second)
	if msg.Tag != TagDown || msg.From != 1 {
		t.Fatalf("expected TagDown from rank 1, got %+v", msg)
	}
	if err := m.Send(1, 5, nil); err == nil {
		t.Error("send to a hung (declared-dead) rank succeeded")
	}
}

// The symmetric case: a master that stops emitting anything after the
// handshake must surface as TagDown on the worker.
func TestTCPHeartbeatDetectsHungMaster(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	connCh := make(chan net.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			connCh <- nil
			return
		}
		var magic [4]byte
		io.ReadFull(conn, magic[:])
		var hello [12]byte
		copy(hello[0:4], tcpMagic[:])
		binary.LittleEndian.PutUint32(hello[4:8], 1)
		binary.LittleEndian.PutUint32(hello[8:12], 2)
		conn.Write(hello[:])
		connCh <- conn // keep the socket open but never use it again
	}()

	w, err := DialTCPOpts(ln.Addr().String(), 2*time.Second, fastHB())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if w.Rank() != 1 || w.Size() != 2 {
		t.Fatalf("rank %d size %d, want 1/2", w.Rank(), w.Size())
	}
	msg := recvWithin(t, w, 3*time.Second)
	if msg.Tag != TagDown || msg.From != 0 {
		t.Fatalf("expected TagDown from master, got %+v", msg)
	}
	if c := <-connCh; c != nil {
		c.Close()
	}
}

// A client that connects but never sends its magic must not consume a
// rank or block the world from forming: its handshake runs under its
// own deadline while a real worker is admitted.
func TestTCPHandshakeStallDoesNotBlockAdmission(t *testing.T) {
	addr := mustFreeAddr(t)
	opts := fastHB()
	opts.HandshakeTimeout = 200 * time.Millisecond
	masterCh, errCh := startMasterAsync(t, addr, 2, opts)

	stall, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer stall.Close()
	time.Sleep(50 * time.Millisecond) // ensure the stalled conn is accepted first

	w, err := DialTCPOpts(addr, 2*time.Second, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	m := awaitMaster(t, masterCh, errCh)
	defer m.Close()

	if w.Rank() != 1 {
		t.Errorf("real worker got rank %d, want 1 (a stalled handshake must not consume a rank)", w.Rank())
	}
	if err := w.Send(0, 7, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	msg := recvWithin(t, m, 2*time.Second)
	if msg.From != 1 || msg.Tag != 7 || string(msg.Data) != "hi" {
		t.Errorf("got %+v", msg)
	}
}

// After a worker dies, a replacement can dial the still-listening
// master: it is assigned a fresh rank (dead ranks are never reused) and
// announced to the application as TagJoin.
func TestTCPWorkerRejoinDeliversJoin(t *testing.T) {
	addr := mustFreeAddr(t)
	opts := DefaultTCPOptions()
	opts.AcceptTimeout = 5 * time.Second
	masterCh, errCh := startMasterAsync(t, addr, 2, opts)

	w1, err := DialTCP(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	m := awaitMaster(t, masterCh, errCh)
	defer m.Close()

	w1.Close()
	msg := recvWithin(t, m, 3*time.Second)
	if msg.Tag != TagDown || msg.From != 1 {
		t.Fatalf("expected TagDown from rank 1, got %+v", msg)
	}

	w2, err := DialTCP(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	msg = recvWithin(t, m, 3*time.Second)
	if msg.Tag != TagJoin || msg.From != 2 {
		t.Fatalf("expected TagJoin from rank 2, got %+v", msg)
	}
	if w2.Rank() != 2 {
		t.Errorf("replacement got rank %d, want 2", w2.Rank())
	}
	if m.Size() != 3 {
		t.Errorf("master size %d after rejoin, want 3", m.Size())
	}

	// The new link works both ways; the dead rank stays dead.
	if err := w2.Send(0, 9, []byte("back")); err != nil {
		t.Fatal(err)
	}
	msg = recvWithin(t, m, 2*time.Second)
	if msg.From != 2 || string(msg.Data) != "back" {
		t.Errorf("got %+v", msg)
	}
	if err := m.Send(2, 4, []byte("job")); err != nil {
		t.Fatal(err)
	}
	msg = recvWithin(t, w2, 2*time.Second)
	if msg.Tag != 4 || string(msg.Data) != "job" {
		t.Errorf("got %+v", msg)
	}
	if err := m.Send(1, 1, nil); err == nil {
		t.Error("send to dead rank 1 succeeded")
	}
}
