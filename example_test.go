package repro_test

import (
	"fmt"
	"log"
	"os"
	"strings"

	"repro"
)

// The paper's Figure 4: the three nonoverlapping top alignments of
// ATGCATGCATGC under the example scoring of Section 2.
func ExampleAnalyze() {
	report, err := repro.Analyze("fig4", "ATGCATGCATGC", repro.Options{
		Matrix:  "paper-dna",
		GapOpen: 2, GapExt: 1,
		NumTops: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, top := range report.Tops {
		first := top.Pairs[0]
		last := top.Pairs[len(top.Pairs)-1]
		fmt.Printf("top %d: score %d, %d-%d ~ %d-%d\n",
			top.Index, top.Score, first.I, last.I, first.J, last.J)
	}
	fam := report.Families[0]
	fmt.Printf("family: %d copies of %s\n", len(fam.Copies), fam.Consensus)
	// Output:
	// top 1: score 8, 1-4 ~ 5-8
	// top 2: score 8, 1-4 ~ 9-12
	// top 3: score 8, 5-8 ~ 9-12
	// family: 3 copies of ATGC
}

// Analysing FASTA input end to end.
func ExampleAnalyzeFASTA() {
	fasta := ">unit tandem of GATTACA\nGATTACAGATTACAGATTACA\n"
	reports, err := repro.AnalyzeFASTA(strings.NewReader(fasta), repro.Options{
		Matrix:  "dna-unit",
		NumTops: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	rep := reports[0]
	fmt.Printf("%s: %d residues, %d top alignments\n", rep.SeqID, rep.SeqLen, len(rep.Tops))
	fmt.Printf("best family unit length: %d\n", rep.Families[0].UnitLen)
	// Output:
	// unit: 21 residues, 3 top alignments
	// best family unit length: 7
}

// Rendering an alignment residue by residue, as the paper prints its
// examples.
func ExampleFormatAlignment() {
	report, err := repro.Analyze("x", "ATGCATGCATGC", repro.Options{
		Matrix: "paper-dna", NumTops: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	block, err := repro.FormatAlignment(report.Residues, report.Tops[0], 0)
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.WriteString(block)
	// Output:
	// top 1 (score 8): 1-4 aligned to 5-8
	//   1 ATGC 4
	//     ||||
	//   5 ATGC 8
}
