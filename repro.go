// Package repro finds internal repeats in biological sequences.
//
// It is a from-scratch Go reproduction of the system described in
// "A Million-Fold Speed Improvement in Genomic Repeats Detection"
// (Romein, Heringa, Bal; SC 2003): the O(n^3) nonoverlapping
// top-alignment algorithm that replaced the original Repro method's
// O(n^4) computation, its three levels of parallelism, and the repeat
// delineation the top alignments feed.
//
// Basic use:
//
//	report, err := repro.Analyze("titin", sequence, repro.Options{NumTops: 25})
//	for _, top := range report.Tops { ... }
//	for _, fam := range report.Families { ... }
//
// Options select the execution engine: sequential (default),
// shared-memory workers (Workers > 1), or an in-process master/slave
// cluster (Slaves > 0) that exercises the same protocol as the
// repromaster/reproworker binaries.
package repro

import (
	"fmt"
	"io"

	"repro/internal/align"
	"repro/internal/cluster"
	"repro/internal/multialign"
	"repro/internal/obs"
	"repro/internal/obs/attrib"
	"repro/internal/obs/trace"
	"repro/internal/parallel"
	"repro/internal/repeats"
	"repro/internal/scoring"
	"repro/internal/seedindex"
	"repro/internal/seq"
	"repro/internal/stats"
	"repro/internal/topalign"
)

// DefaultNumTops is the number of top alignments computed when Options
// leaves NumTops zero. The paper: "typically 10-30, some more for large
// sequences".
const DefaultNumTops = 20

// Options configures an analysis. The zero value gives a sequential
// protein analysis with BLOSUM62, affine gaps 10+k, and DefaultNumTops
// top alignments.
type Options struct {
	// Matrix names the exchange matrix: "BLOSUM62" (default), "PAM250",
	// "dna-unit", or "paper-dna". The matrix determines the alphabet.
	Matrix string
	// GapOpen and GapExt define the affine gap cost Open + k*Ext.
	// Both zero selects the matrix's conventional defaults.
	GapOpen, GapExt int
	// NumTops is the number of top alignments to compute (0 = default).
	NumTops int
	// MinScore stops the search when no remaining alignment reaches it.
	MinScore int
	// Lanes enables SIMD-style neighbour-group alignment: 4, 8, or 16
	// (0 or 1 = scalar). 16 enables the int16x16 AVX2 kernel tier on
	// CPUs and scoring models that support it; see Stats.KernelTier for
	// what a run actually used.
	Lanes int
	// Striped selects the cache-aware striped kernel.
	Striped bool
	// Workers > 1 runs the shared-memory scheduler with that many
	// goroutines.
	Workers int
	// Slaves > 0 runs an in-process master/slave cluster instead, with
	// ThreadsPerSlave workers per slave.
	Slaves          int
	ThreadsPerSlave int
	// Speculative selects the paper's speculative acceptance rule for
	// the parallel engines (slightly more work, possibly different
	// acceptance order among equal-scoring alignments). Off = strict,
	// bit-identical to sequential.
	Speculative bool
	// MinPairs filters top alignments during delineation (0 = default).
	MinPairs int
	// Preset selects the seed-filter-extend prefilter for long inputs
	// (see internal/seedindex and DESIGN.md §13): "" runs the exact
	// engine; "sensitive" also runs the exact engine (bit-identical by
	// construction) but adds prefilter telemetry to the report; "fast"
	// and "balanced" restrict alignment to seed-supported candidate
	// windows, trading sensitivity for orders-of-magnitude less work.
	// Fast and balanced always use the sequential windowed driver, so
	// their results are deterministic regardless of Workers/Slaves;
	// those knobs select the backend only for the exact presets.
	Preset string
	// SeedK, SeedMask, SeedMaxOcc, SeedBand and SeedPad override
	// individual prefilter knobs (zero value = preset default): seed
	// length, spaced-seed mask over {0,1}, per-seed occurrence cap,
	// diagonal band width, and window padding.
	SeedK      int
	SeedMask   string
	SeedMaxOcc int
	SeedBand   int
	SeedPad    int
	// Metrics, when non-nil, receives live telemetry: the engine
	// counters (bound under engine/) and, for cluster runs, per-rank
	// dispatch counters and row-fetch latencies. See DESIGN.md §8.
	Metrics *obs.Registry
	// Counters, when non-nil, receives this run's engine work folded
	// into a caller-owned cumulative set after the run completes.
	// Long-lived callers (the serving layer) bind one set to their
	// registry once and pass it for every run, keeping the exported
	// engine/ counters cumulative — per-run Bind would rebind fresh
	// counters each time and reset the exported values to the latest
	// run only. Report.Stats and Report.Usage stay per-run regardless.
	Counters *stats.Counters
	// Trace, when non-nil, records task-queue events (enqueue, realign,
	// accept, shadow-reject, speculation-waste) so the run can be
	// traced and replayed.
	Trace *obs.Journal
	// Spans, when non-nil, records request-scoped trace spans: an
	// engine span wrapping the top-alignment computation, with
	// engine/cluster/worker child spans beneath it (see
	// internal/obs/trace). SpanParent, when non-zero, parents the
	// engine span — the serving layer passes its request span here.
	Spans      *trace.Recorder
	SpanParent trace.SpanID
}

// Pair is a matched residue pair (global 1-based positions, I < J).
type Pair struct {
	I, J int
}

// TopAlignment is one nonoverlapping top alignment.
type TopAlignment struct {
	Index int // acceptance order, 1-based
	Split int // the prefix/suffix split whose matrix produced it
	Score int
	Pairs []Pair
}

// RepeatCopy is one copy of a repeat, inclusive 1-based positions.
type RepeatCopy struct {
	Start, End int
}

// RepeatFamily groups the copies of one repeat.
type RepeatFamily struct {
	Copies  []RepeatCopy
	Support int   // top alignments supporting the family
	Score   int64 // summed alignment scores
	UnitLen int   // median copy length
	// Consensus is the per-column majority residue across copies
	// (empty for single-copy families); Conservation is the mean
	// fraction of copies agreeing with it.
	Consensus    string
	Conservation float64
}

// Stats summarises the engine work performed.
type Stats struct {
	Alignments   int64
	Realignments int64
	Tracebacks   int64
	Cells        int64
	ShadowEnds   int64
	// RealignmentReduction is the fraction of potential realignments the
	// best-first queue avoided (the paper reports 0.90-0.97).
	RealignmentReduction float64
	// KernelTier names the group-kernel tier the run's lane count and
	// scoring model resolved to ("scalar", "int32x8", or "int16x16").
	// Individual groups can still fall back narrower (int16 saturation
	// re-runs in int32); this is the widest tier the run was served by.
	KernelTier string `json:"KernelTier,omitempty"`
}

// PrefilterInfo reports the resolved seed-filter-extend configuration
// and what each stage did. It is present only when Options.Preset was
// set.
type PrefilterInfo struct {
	Preset    string `json:"preset"`
	K         int    `json:"k"`
	Mask      string `json:"mask,omitempty"`
	MaxOcc    int    `json:"max_occ"`
	BandWidth int    `json:"band_width"`
	Pad       int    `json:"pad"`
	// Stage counts: distinct seeds kept / dropped by the occurrence
	// cap, indexed occurrences, seed match pairs, merged diagonal
	// segments, chained clusters, and candidate windows extended.
	Kmers        int `json:"kmers"`
	DroppedKmers int `json:"dropped_kmers"`
	Positions    int `json:"positions"`
	Pairs        int `json:"pairs"`
	Segments     int `json:"segments"`
	Clusters     int `json:"clusters"`
	Candidates   int `json:"candidates"`
	// WindowCells is the total candidate window area; SequenceCells is
	// n(n-1)/2, the exact engine's pair space — their ratio is the
	// fraction of the problem the prefilter kept.
	WindowCells   int64 `json:"window_cells"`
	SequenceCells int64 `json:"sequence_cells"`
}

// Report is the result of one analysis.
type Report struct {
	SeqID string
	// Residues is the analysed sequence (normalised to the alphabet's
	// canonical letters), so reports are self-contained for rendering
	// with FormatAlignment.
	Residues string
	SeqLen   int
	Tops     []TopAlignment
	Families []RepeatFamily
	Stats    Stats
	// Prefilter is set when a seed-filter-extend preset was requested.
	Prefilter *PrefilterInfo `json:"Prefilter,omitempty"`
	// Usage is the resource-attribution record: thread CPU spent by the
	// compute goroutines (including cluster slaves, local or remote),
	// cells, kernel-tier mix, and the heap-allocation delta of the run.
	// The serving layer extends it with queue-wait and cache traffic.
	Usage *attrib.Usage `json:"Usage,omitempty"`
}

// Analyze encodes residues under the matrix's alphabet and runs the
// configured engine.
func Analyze(id, residues string, opt Options) (*Report, error) {
	exch, err := resolveMatrix(opt.Matrix)
	if err != nil {
		return nil, err
	}
	q, err := seq.New(id, exch.Alphabet(), residues)
	if err != nil {
		return nil, err
	}
	return analyze(q, exch, opt)
}

// AnalyzeFASTA runs one analysis per FASTA record in r.
func AnalyzeFASTA(r io.Reader, opt Options) ([]*Report, error) {
	exch, err := resolveMatrix(opt.Matrix)
	if err != nil {
		return nil, err
	}
	records, err := seq.ReadFASTA(r, exch.Alphabet())
	if err != nil {
		return nil, err
	}
	out := make([]*Report, 0, len(records))
	for _, rec := range records {
		rep, err := analyze(rec, exch, opt)
		if err != nil {
			return nil, fmt.Errorf("repro: record %q: %w", rec.ID, err)
		}
		out = append(out, rep)
	}
	return out, nil
}

func resolveMatrix(name string) (*scoring.Matrix, error) {
	if name == "" {
		name = "BLOSUM62"
	}
	exch, ok := scoring.ByName(name)
	if !ok {
		return nil, fmt.Errorf("repro: unknown exchange matrix %q (have BLOSUM62, PAM250, dna-unit, paper-dna)", name)
	}
	return exch, nil
}

// defaultGap returns the conventional gap model for a matrix.
func defaultGap(exch *scoring.Matrix) scoring.Gap {
	switch exch.Name() {
	case "paper-dna":
		return scoring.PaperGap
	case "dna-unit":
		return scoring.Gap{Open: 8, Ext: 2}
	default:
		return scoring.DefaultProteinGap
	}
}

func analyze(q *seq.Sequence, exch *scoring.Matrix, opt Options) (*Report, error) {
	gap := defaultGap(exch)
	if opt.GapOpen != 0 || opt.GapExt != 0 {
		gap = scoring.Gap{Open: int32(opt.GapOpen), Ext: int32(opt.GapExt)}
	}
	numTops := opt.NumTops
	if numTops == 0 {
		numTops = DefaultNumTops
	}
	counters := &stats.Counters{}
	if opt.Counters == nil {
		// Binding the per-run set is only safe when no caller-owned
		// cumulative set holds the registry names.
		counters.Bind(opt.Metrics)
	}
	// The engine span wraps the whole top-alignment computation; the
	// engine-specific children (cluster.run, parallel.worker,
	// engine.accept) nest under it. Nil-safe throughout: an untraced
	// request costs one nil check per instrumentation point.
	esp := opt.Spans.Start(opt.SpanParent, "engine")
	params := align.Params{Exch: exch, Gap: gap}
	// The effective kernel tier for this run's lane count and scoring
	// model: stamped on the engine span and reported in Stats so traces
	// and reports show which SIMD ladder rung served the request.
	tier := multialign.TierFor(params, q.Len(), opt.Lanes)
	esp.SetArg(int64(tier))
	cfg := topalign.Config{
		Params:     params,
		NumTops:    numTops,
		MinScore:   int32(opt.MinScore),
		GroupLanes: opt.Lanes,
		Striped:    opt.Striped,
		Counters:   counters,
		Trace:      opt.Trace,
		Spans:      opt.Spans,
		SpanParent: esp.ID(),
		SpanRank:   -1,
	}

	var (
		pcfg seedindex.Config
		err  error
	)
	if opt.Preset != "" {
		pcfg, err = seedindex.PresetConfig(opt.Preset, seq.PrimaryLetters(exch.Alphabet()))
		if err != nil {
			return nil, err
		}
		if opt.SeedK > 0 {
			pcfg.K = opt.SeedK
		}
		if opt.SeedMask != "" {
			pcfg.Mask = opt.SeedMask
		}
		if opt.SeedMaxOcc > 0 {
			pcfg.MaxOcc = opt.SeedMaxOcc
		}
		if opt.SeedBand > 0 {
			pcfg.BandWidth = opt.SeedBand
		}
		if opt.SeedPad > 0 {
			pcfg.Pad = opt.SeedPad
		}
		if err := pcfg.Validate(); err != nil {
			return nil, err
		}
	}

	var (
		res    *topalign.Result
		pstats *seedindex.Stats
	)
	// Resource attribution: the driver goroutine pins its thread and
	// meters its own CPU across the engine run (for the sequential and
	// windowed drivers that is all the compute; for parallel/cluster it
	// is the scheduling loop — the workers meter themselves into the
	// same counters). The heap-alloc delta is process-global, accurate
	// when requests run one at a time (the bench configuration).
	alloc0 := attrib.HeapAllocBytes()
	var sw attrib.Stopwatch
	sw.Start()
	switch {
	case opt.Preset == seedindex.PresetFast || opt.Preset == seedindex.PresetBalanced:
		// Windowed extension through the best-first queue; always the
		// sequential driver, so results are backend-independent.
		res, pstats, err = seedindex.Find(q.Codes, pcfg, cfg)
	case opt.Slaves > 0:
		res, err = cluster.RunLocal(q.Codes,
			cluster.Config{Top: cfg, Speculative: opt.Speculative, Metrics: opt.Metrics,
				Spans: opt.Spans, SpanParent: esp.ID()},
			cluster.LocalSpec{Slaves: opt.Slaves, ThreadsPerSlave: opt.ThreadsPerSlave})
	case opt.Workers > 1:
		res, err = parallel.Find(q.Codes, cfg,
			parallel.Config{Workers: opt.Workers, Speculative: opt.Speculative})
	default:
		res, err = topalign.Find(q.Codes, cfg)
	}
	counters.AddCPU(sw.Stop())
	if err == nil && opt.Preset == seedindex.PresetSensitive {
		// Sensitive routes results through the exact engine above;
		// the prefilter runs scan-only for telemetry, so its report is
		// bit-identical to an unprefiltered run by construction.
		ssp := opt.Spans.Start(esp.ID(), "prefilter.scan")
		pstats, err = seedindex.Scan(q.Codes, pcfg, exch.MaxScore())
		ssp.End()
	}
	esp.End()
	if err != nil {
		return nil, err
	}

	fams, err := repeats.Delineate(q.Len(), res.Tops, repeats.Options{MinPairs: opt.MinPairs})
	if err != nil {
		return nil, err
	}

	rep := &Report{SeqID: q.ID, Residues: q.String(), SeqLen: q.Len()}
	if pstats != nil {
		rep.Prefilter = &PrefilterInfo{
			Preset: opt.Preset, K: pcfg.K, Mask: pcfg.Mask, MaxOcc: pcfg.MaxOcc,
			BandWidth: pcfg.BandWidth, Pad: pcfg.Pad,
			Kmers: pstats.Kmers, DroppedKmers: pstats.DroppedKmers,
			Positions: pstats.Positions, Pairs: pstats.Pairs,
			Segments: pstats.Segments, Clusters: pstats.Clusters,
			Candidates: pstats.Candidates, WindowCells: pstats.WindowCells,
			SequenceCells: pstats.SequenceCells,
		}
	}
	for _, top := range res.Tops {
		t := TopAlignment{Index: top.Index, Split: top.Split, Score: int(top.Score),
			Pairs: make([]Pair, len(top.Pairs))}
		for i, p := range top.Pairs {
			t.Pairs[i] = Pair{I: p.I, J: p.J}
		}
		rep.Tops = append(rep.Tops, t)
	}
	for _, f := range fams {
		rf := RepeatFamily{Support: f.Support, Score: f.Score, UnitLen: f.UnitLen(),
			Copies: make([]RepeatCopy, len(f.Copies))}
		for i, c := range f.Copies {
			rf.Copies[i] = RepeatCopy{Start: c.Start, End: c.End}
		}
		if cons, err := repeats.DeriveConsensus(q.Codes, f); err == nil {
			rf.Consensus = exch.Alphabet().Decode(cons.Codes)
			rf.Conservation = cons.MeanConservation()
		}
		rep.Families = append(rep.Families, rf)
	}
	snap := counters.Snapshot()
	opt.Counters.AddSnapshot(snap)
	rep.Stats = Stats{
		Alignments:   snap.Alignments,
		Realignments: snap.Realignments,
		Tracebacks:   snap.Tracebacks,
		Cells:        snap.Cells,
		ShadowEnds:   snap.ShadowEnds,
		KernelTier:   tier.String(),
	}
	if len(rep.Tops) > 1 {
		rep.Stats.RealignmentReduction = snap.RealignmentReduction(q.Len()-1, len(rep.Tops))
	}
	allocDelta := attrib.HeapAllocBytes() - alloc0
	if allocDelta < 0 {
		allocDelta = 0
	}
	rep.Usage = &attrib.Usage{
		CPUNanos:    snap.CPUNanos,
		Cells:       snap.Cells,
		Alignments:  snap.Alignments,
		AllocBytes:  allocDelta,
		KernelTiers: snap.KernelTiers(),
	}
	return rep, nil
}

// KernelTierFor reports the kernel tier name Analyze would select for
// the given request shape ("" on an unknown matrix). The serving layer
// stamps it onto pprof labels before running the engine, so profiler
// captures slice by tier without re-deriving scoring internals.
func KernelTierFor(matrix string, gapOpen, gapExt, seqLen, lanes int) string {
	exch, err := resolveMatrix(matrix)
	if err != nil {
		return ""
	}
	gap := defaultGap(exch)
	if gapOpen != 0 || gapExt != 0 {
		gap = scoring.Gap{Open: int32(gapOpen), Ext: int32(gapExt)}
	}
	return multialign.TierFor(align.Params{Exch: exch, Gap: gap}, seqLen, lanes).String()
}

// WriteReport pretty-prints a report in the reprocli output format.
func WriteReport(w io.Writer, rep *Report) error {
	if _, err := fmt.Fprintf(w, "sequence %s (%d residues): %d top alignments, %d repeat families\n",
		rep.SeqID, rep.SeqLen, len(rep.Tops), len(rep.Families)); err != nil {
		return err
	}
	for _, top := range rep.Tops {
		first, last := top.Pairs[0], top.Pairs[len(top.Pairs)-1]
		fmt.Fprintf(w, "  top %2d: score %6d  split %5d  %d pairs  [%d-%d] ~ [%d-%d]\n",
			top.Index, top.Score, top.Split, len(top.Pairs),
			first.I, last.I, first.J, last.J)
	}
	for i, fam := range rep.Families {
		fmt.Fprintf(w, "  family %d: %d copies, unit ~%d, support %d, score %d\n",
			i+1, len(fam.Copies), fam.UnitLen, fam.Support, fam.Score)
		if fam.Consensus != "" {
			fmt.Fprintf(w, "    consensus %s (%.0f%% conserved)\n", fam.Consensus, 100*fam.Conservation)
		}
		for _, c := range fam.Copies {
			fmt.Fprintf(w, "    copy [%d-%d] (%d residues)\n", c.Start, c.End, c.End-c.Start+1)
		}
	}
	return nil
}
