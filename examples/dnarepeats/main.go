// DNA repeats: detect a diverged tandem repeat in a noisy DNA sequence —
// the genomic use case of the paper's title. A synthetic minisatellite
// (an 11-bp unit repeated 8 times with point mutations and indels,
// buried in random flanks) is generated, analysed, and the recovered
// copies are compared against the generator's ground truth. The example
// also shows the AACAAC ambiguity the paper's future-work section
// discusses: exact repeats delineate equally well at multiples of the
// true unit.
//
//	go run ./examples/dnarepeats
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/seq"
)

func main() {
	spec := seq.TandemSpec{
		Alpha:    seq.DNA,
		UnitLen:  11,
		Copies:   8,
		FlankLen: 60,
		Profile:  seq.MutationProfile{SubstRate: 0.08, IndelRate: 0.01, IndelExt: 0.3},
		Seed:     42,
	}
	q := seq.Tandem(spec)
	fmt.Printf("synthetic minisatellite: %d bp, unit %d x %d copies at ~positions %d-%d\n",
		q.Len(), spec.UnitLen, spec.Copies, spec.FlankLen+1, q.Len()-spec.FlankLen)

	report, err := repro.Analyze(q.ID, q.String(), repro.Options{
		Matrix:  "dna-unit",
		NumTops: 12,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%d top alignments; strongest:\n", len(report.Tops))
	for _, top := range report.Tops[:min(4, len(report.Tops))] {
		first, last := top.Pairs[0], top.Pairs[len(top.Pairs)-1]
		fmt.Printf("  top %d: score %d  [%d-%d] ~ [%d-%d]\n",
			top.Index, top.Score, first.I, last.I, first.J, last.J)
	}

	fmt.Println("\nrecovered repeat families:")
	for i, fam := range report.Families {
		fmt.Printf("  family %d: %d copies, unit ~%d bp\n", i+1, len(fam.Copies), fam.UnitLen)
		for _, c := range fam.Copies {
			fmt.Printf("    [%4d-%4d] %s\n", c.Start, c.End, q.String()[c.Start-1:c.End])
		}
		truth := spec.FlankLen + 1
		if i == 0 {
			fmt.Printf("  (ground truth: repeat region starts at %d; delineated units may span\n"+
				"   multiples of the true %d-bp unit — the paper's AACAAC ambiguity)\n",
				truth, spec.UnitLen)
		}
	}

	// the paper's own miniature example
	fmt.Println("\nthe paper's AACAACAACAAC example:")
	rep2, err := repro.Analyze("aac", "AACAACAACAAC", repro.Options{Matrix: "paper-dna", NumTops: 3})
	if err != nil {
		log.Fatal(err)
	}
	for _, fam := range rep2.Families {
		fmt.Printf("  delineated as %d copies of a %d-bp unit ", len(fam.Copies), fam.UnitLen)
		fmt.Println("(two AACAAC, four AAC, and eight A are all defensible — see paper Section 6)")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
