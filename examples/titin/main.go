// Titin: analyse a long, domain-repetitive protein — the workload the
// paper was built for. Human titin (34350 aa, ~300 diverged Ig/FN3
// domains) is modelled by the seeded synthetic generator; the example
// runs the full pipeline on a 2000-residue prefix with the shared-memory
// parallel engine and reports the domain families it recovers along with
// the engine statistics behind the paper's Section 3 claim (90-97% of
// realignments avoided).
//
//	go run ./examples/titin [length]
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"
	"time"

	"repro"
	"repro/internal/seq"
)

func main() {
	length := 2000
	if len(os.Args) > 1 {
		n, err := strconv.Atoi(os.Args[1])
		if err != nil || n < 100 {
			log.Fatalf("usage: titin [length>=100]; got %q", os.Args[1])
		}
		length = n
	}

	protein := seq.SyntheticTitin(length, 1)
	fmt.Printf("analysing %s: %d residues of titin-like Ig/FN3 domain repeats\n",
		protein.ID, protein.Len())

	t0 := time.Now()
	report, err := repro.Analyze(protein.ID, protein.String(), repro.Options{
		NumTops:  30, // "some more for large sequences"
		Workers:  4,  // shared-memory scheduler, strict (deterministic) mode
		MinPairs: 20, // delineation: keep well-supported alignments only
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("found %d top alignments in %.2fs\n\n", len(report.Tops), time.Since(t0).Seconds())

	fmt.Println("strongest top alignments (domain copies aligned to each other):")
	for _, top := range report.Tops {
		if top.Index > 8 {
			break
		}
		first, last := top.Pairs[0], top.Pairs[len(top.Pairs)-1]
		fmt.Printf("  top %2d: score %5d  [%5d-%5d] ~ [%5d-%5d]  (%d matched residues)\n",
			top.Index, top.Score, first.I, last.I, first.J, last.J, len(top.Pairs))
	}

	fmt.Println("\nrepeat families (putative domain arrays):")
	for i, fam := range report.Families {
		if i >= 5 {
			fmt.Printf("  ... and %d more families\n", len(report.Families)-5)
			break
		}
		fmt.Printf("  family %d: %d copies of a ~%d-residue unit (support %d)\n",
			i+1, len(fam.Copies), fam.UnitLen, fam.Support)
		for j, c := range fam.Copies {
			if j >= 4 {
				fmt.Printf("      ... and %d more copies\n", len(fam.Copies)-4)
				break
			}
			fmt.Printf("      copy [%d-%d]\n", c.Start, c.End)
		}
	}

	fmt.Printf("\nengine: %d alignments (%d realignments), %d cells computed\n",
		report.Stats.Alignments, report.Stats.Realignments, report.Stats.Cells)
	fmt.Printf("the best-first queue avoided %.1f%% of potential realignments (paper: 90-97%%)\n",
		100*report.Stats.RealignmentReduction)
}
