// Quickstart: find the internal repeats of the paper's Figure 4
// example sequence, ATGCATGCATGC, and print the top alignments and the
// delineated repeat family.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
)

func main() {
	report, err := repro.Analyze("fig4", "ATGCATGCATGC", repro.Options{
		Matrix:  "paper-dna", // match +2 / mismatch -1, the paper's toy matrix
		GapOpen: 2,
		GapExt:  1,
		NumTops: 3,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("The three nonoverlapping top alignments of Figure 4:")
	for _, top := range report.Tops {
		fmt.Printf("  top %d (score %d): positions", top.Index, top.Score)
		for _, p := range top.Pairs {
			fmt.Printf(" %d~%d", p.I, p.J)
		}
		fmt.Println()
	}

	fmt.Println("\nDelineated repeat structure:")
	if err := repro.WriteReport(os.Stdout, report); err != nil {
		log.Fatal(err)
	}
}
