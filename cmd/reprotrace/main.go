// Command reprotrace analyses one request trace: it fetches the JSON
// span batch served at GET /trace/{id} (reproserve or the repromaster
// debug listener), prints the critical-path breakdown — where the
// request's wall time actually went: queue wait, cache, dispatch,
// communication, kernels, speculation waste, straggler stall — and can
// reconcile the attributed total against an externally measured
// end-to-end latency.
//
//	reprotrace http://127.0.0.1:8080/trace/<id>
//	reprotrace -e2e-ms 123.4 -check 0.10 http://127.0.0.1:8080/trace/<id>
//	reprotrace -chrome out.json http://127.0.0.1:8080/trace/<id>
//
// The input may also be a file (or - for stdin) holding the same JSON,
// so traces can be archived and analysed offline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/obs/trace"
)

func main() {
	var (
		e2eMS  = flag.Float64("e2e-ms", 0, "externally measured end-to-end latency to reconcile against (0 = use the root span)")
		check  = flag.Float64("check", 0, "fail unless the attributed total is within this fraction of the end-to-end latency (0 disables)")
		chrome = flag.String("chrome", "", "also write the trace as Chrome trace_event JSON to this file (- for stdout)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: reprotrace [flags] <trace URL, file, or ->")
		os.Exit(2)
	}

	raw, err := fetch(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	var doc struct {
		TraceID string           `json:"trace_id"`
		Dropped uint64           `json:"dropped"`
		Spans   []trace.SpanJSON `json:"spans"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		fatal(fmt.Errorf("parsing trace: %w", err))
	}
	spans := trace.FromJSON(doc.Spans)

	if *chrome != "" {
		out := os.Stdout
		if *chrome != "-" {
			f, err := os.Create(*chrome)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			out = f
		}
		if err := trace.WriteChrome(out, spans); err != nil {
			fatal(err)
		}
	}

	rpt, err := trace.AnalyzeCriticalPath(spans)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("trace %s: %d spans, root %q %.3fms\n",
		doc.TraceID, len(doc.Spans), rpt.RootName, ms(rpt.RootNS))
	if doc.Dropped > 0 {
		fmt.Printf("  (%d spans dropped by the per-trace buffer bound)\n", doc.Dropped)
	}
	if rpt.Orphans > 0 {
		fmt.Printf("  (%d spans unreachable from the root, not attributed)\n", rpt.Orphans)
	}
	for _, e := range rpt.Entries {
		fmt.Printf("  %-11s %10.3fms %5.1f%%\n", e.Category, ms(e.NS), 100*e.Frac)
	}

	// Reconciliation: the attribution sums to the root span by
	// construction, so the interesting comparison is against a latency
	// measured outside the trace (the analyze response's elapsed_ms).
	e2e := int64(*e2eMS * float64(time.Millisecond))
	if e2e <= 0 {
		e2e = rpt.RootNS
	}
	delta := 1.0
	if e2e > 0 {
		delta = math.Abs(float64(rpt.SumNS)-float64(e2e)) / float64(e2e)
	}
	fmt.Printf("  sum %.3fms vs e2e %.3fms (delta %.1f%%)\n", ms(rpt.SumNS), ms(e2e), 100*delta)
	if *check > 0 {
		// An incomplete span set cannot support a reconciliation verdict:
		// the missing spans could hold exactly the deviation being checked
		// for, so -check refuses rather than passes silently.
		if doc.Dropped > 0 {
			fmt.Fprintf(os.Stderr, "reprotrace: trace is incomplete (%d spans dropped); -check cannot reconcile a partial tree\n",
				doc.Dropped)
			os.Exit(1)
		}
		if delta > *check {
			fmt.Fprintf(os.Stderr, "reprotrace: critical-path sum deviates %.1f%% from e2e latency (allowed %.1f%%)\n",
				100*delta, 100**check)
			os.Exit(1)
		}
	}
}

func ms(ns int64) float64 { return float64(ns) / 1e6 }

// fetch reads the trace document from a URL, a file, or stdin.
func fetch(src string) ([]byte, error) {
	if src == "-" {
		return io.ReadAll(os.Stdin)
	}
	if strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://") {
		c := &http.Client{Timeout: 30 * time.Second}
		resp, err := c.Get(src)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("GET %s: %s: %s", src, resp.Status, strings.TrimSpace(string(body)))
		}
		return body, nil
	}
	return os.ReadFile(src)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "reprotrace:", err)
	os.Exit(1)
}
