// Command reprorouter is the stateless scale-out gateway: it
// consistent-hash routes POST /v1/analyze and the /v1/jobs API on the
// content-addressed cache key to a fleet of reproserve shards, so each
// shard's cache holds a disjoint slice of the keyspace and fleet cache
// capacity grows with the number of shards (see DESIGN.md section 14).
//
// Concurrent identical requests collapse into one upstream call per
// key (distributed singleflight); failed shards are retried on the
// next ring node; draining shards (503 /healthz) leave the ring
// gracefully; hot keys fan out over replicas. GET /trace/{id} serves
// the merged router+shard trace for reprotrace.
//
//	reprorouter -addr :8090 -shards http://127.0.0.1:8081,http://127.0.0.1:8082
//	curl -s localhost:8090/v1/analyze -d '{"sequence":"ATGCATGCATGC","matrix":"paper-dna","tops":3}'
//	curl -s localhost:8090/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/shard"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:8090", "listen address (bare ports bind localhost)")
		shards  = flag.String("shards", "", "comma-separated reproserve base URLs (required)")
		vnodes  = flag.Int("vnodes", 0, "virtual nodes per shard on the hash ring (0 = default)")
		probe   = flag.Duration("probe-interval", time.Second, "shard /healthz polling period")
		hotThr  = flag.Int("hot-threshold", 0, "requests/sec that makes a key hot (0 = default, -1 = disable)")
		hotRep  = flag.Int("hot-replicas", 0, "replica-set size for hot keys (0 = default)")
		maxSeq  = flag.Int("max-seq", 0, "maximum sequence length admitted (0 = serve default)")
		tracesN = flag.Int("traces", trace.DefaultMaxTraces, "request traces retained for /trace/{id} (-1 = disable)")
	)
	flag.Parse()

	var urls []string
	for _, s := range strings.Split(*shards, ",") {
		if s = strings.TrimSpace(s); s != "" {
			urls = append(urls, strings.TrimSuffix(s, "/"))
		}
	}
	if len(urls) == 0 {
		fatal(fmt.Errorf("need -shards with at least one reproserve URL"))
	}

	var col *trace.Collector
	if *tracesN >= 0 {
		col = trace.NewCollector(*tracesN, 0)
	}
	rt := shard.New(shard.Config{
		Shards:          urls,
		VirtualNodes:    *vnodes,
		ProbeInterval:   *probe,
		HotKeyThreshold: *hotThr,
		HotKeyReplicas:  *hotRep,
		MaxSequenceLen:  *maxSeq,
		Metrics:         obs.NewRegistry(),
		Traces:          col,
	})
	rt.Start()
	defer rt.Close()

	host, port, err := net.SplitHostPort(*addr)
	if err != nil {
		fatal(fmt.Errorf("bad -addr %q: %w", *addr, err))
	}
	if host == "" {
		host = "127.0.0.1"
	}
	ln, err := net.Listen("tcp", net.JoinHostPort(host, port))
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "reprorouter: listening on %s, %d shards\n", ln.Addr(), len(urls))

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "reprorouter: %v, shutting down\n", sig)
	case err := <-errCh:
		fatal(err)
	}

	// The router holds no state worth draining — in-flight proxied
	// requests get a short grace period, then out.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		httpSrv.Close()
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr, "reprorouter: stopped")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "reprorouter:", err)
	os.Exit(1)
}
