// Command claims verifies the paper's quantitative side claims in one
// run and prints a pass/fail table: the Section 3 realignment-avoidance
// band (90-97%), the Section 5.2 speculation-overhead bound (<= 8.4%),
// the 3-10% per-round realignment fraction, and the equivalence of every
// engine (group, striped, parallel strict, cluster strict, old
// algorithm) with the sequential reference.
//
//	go run ./cmd/claims [-length 600] [-tops 20]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/align"
	"repro/internal/cluster"
	"repro/internal/dessim"
	"repro/internal/oldalgo"
	"repro/internal/parallel"
	"repro/internal/scoring"
	"repro/internal/seq"
	"repro/internal/stats"
	"repro/internal/topalign"
)

var failed bool

func main() {
	var (
		length = flag.Int("length", 600, "titin-like sequence length")
		tops   = flag.Int("tops", 20, "top alignments")
		seed   = flag.Uint64("seed", 1, "generator seed")
	)
	flag.Parse()

	s := seq.SyntheticTitin(*length, *seed).Codes
	params := align.Params{Exch: scoring.BLOSUM62, Gap: scoring.DefaultProteinGap}
	fmt.Printf("claims: titin-like n=%d, %d top alignments\n\n", *length, *tops)

	// sequential reference + its counters
	seqC := &stats.Counters{}
	ref, err := topalign.Find(s, topalign.Config{Params: params, NumTops: *tops, Counters: seqC})
	if err != nil {
		fatal(err)
	}
	if len(ref.Tops) != *tops {
		fatal(fmt.Errorf("only %d top alignments found; lower -tops", len(ref.Tops)))
	}

	// claim 1: Section 3, realignments avoided 90-97%
	red := 100 * seqC.Snapshot().RealignmentReduction(len(s)-1, len(ref.Tops))
	check("S3  realignments avoided by queue heuristic", fmt.Sprintf("%.1f%%", red),
		"90-97% (paper)", red >= 85)

	// claim 2: Section 5.2, 3-10% of matrices realign per round
	trace, err := dessim.Record(s, topalign.Config{Params: params, NumTops: *tops})
	if err != nil {
		fatal(err)
	}
	perRound := 0.0
	for _, rd := range trace.Rounds[1:] {
		perRound += float64(len(rd.Tasks))
	}
	perRound = 100 * perRound / float64(len(trace.Rounds)-1) / float64(len(s)-1)
	check("S5.2 matrices realigned per top alignment", fmt.Sprintf("%.1f%%", perRound),
		"3-10% (paper)", perRound <= 15)

	// claim 3: Section 5.2, speculation overhead <= 8.4%
	parC := &stats.Counters{}
	if _, err := parallel.Find(s, topalign.Config{Params: params, NumTops: *tops, Counters: parC},
		parallel.Config{Workers: 8, Speculative: true}); err != nil {
		fatal(err)
	}
	overhead := 100 * float64(parC.Snapshot().Alignments-seqC.Snapshot().Alignments) /
		float64(seqC.Snapshot().Alignments)
	check("S5.2 speculative scheduler extra alignments", fmt.Sprintf("%+.1f%%", overhead),
		"<= 8.4% (paper)", overhead <= 8.4)

	// claim 4: engine equivalence (bit-identical top alignments)
	same := func(r *topalign.Result, err error) bool {
		if err != nil || len(r.Tops) != len(ref.Tops) {
			return false
		}
		for i := range ref.Tops {
			if r.Tops[i].Score != ref.Tops[i].Score || r.Tops[i].Split != ref.Tops[i].Split {
				return false
			}
		}
		return true
	}
	group, gerr := topalign.Find(s, topalign.Config{Params: params, NumTops: *tops, GroupLanes: 4})
	check("S4.1 group mode (4 lanes) equivalence", verdict(same(group, gerr)), "identical", same(group, gerr))
	striped, serr := topalign.Find(s, topalign.Config{Params: params, NumTops: *tops, Striped: true})
	check("S4.1 striped kernel equivalence", verdict(same(striped, serr)), "identical", same(striped, serr))
	par, perr := parallel.Find(s, topalign.Config{Params: params, NumTops: *tops},
		parallel.Config{Workers: 4})
	check("S4.2 shared-memory strict equivalence", verdict(same(par, perr)), "identical", same(par, perr))
	clu, cerr := cluster.RunLocal(s, cluster.Config{Top: topalign.Config{Params: params, NumTops: *tops}},
		cluster.LocalSpec{Slaves: 2, ThreadsPerSlave: 2})
	check("S4.3 cluster strict equivalence", verdict(same(clu, cerr)), "identical", same(clu, cerr))
	old, oerr := oldalgo.Find(s, oldalgo.Config{Params: params, NumTops: *tops, Kernel: oldalgo.KernelGotoh})
	check("old algorithm produces identical output", verdict(same(old, oerr)), "identical", same(old, oerr))

	if failed {
		fmt.Println("\nsome claims FAILED")
		os.Exit(1)
	}
	fmt.Println("\nall claims hold")
}

func check(name, got, want string, ok bool) {
	mark := "ok  "
	if !ok {
		mark = "FAIL"
		failed = true
	}
	fmt.Printf("  [%s] %-45s %-10s (expect %s)\n", mark, name, got, want)
}

func verdict(ok bool) string {
	if ok {
		return "identical"
	}
	return "DIFFERS"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "claims:", err)
	os.Exit(1)
}
