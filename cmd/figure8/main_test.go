package main

import "testing"

func TestParseInts(t *testing.T) {
	got, err := parseInts("1,2, 5,100")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 || got[3] != 100 {
		t.Errorf("parseInts = %v", got)
	}
	for _, bad := range []string{"", "x", "5,3", "0", "2,2"} {
		if _, err := parseInts(bad); err == nil {
			t.Errorf("parseInts(%q) accepted", bad)
		}
	}
}
