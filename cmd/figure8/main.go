// Command figure8 regenerates Figure 8 of the paper: speed improvement
// versus number of processors (1-128) for computing 1, 2, 5, 10, 25,
// and 100 top alignments of titin.
//
// The measurement host has one CPU, so the 64-node cluster is replayed
// in the discrete-event simulator of internal/dessim: a real sequential
// run is recorded (which splits realign between acceptances, at what
// cost), then the recorded workload is scheduled under the paper's
// cluster cost model. See DESIGN.md's substitution table.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/align"
	"repro/internal/dessim"
	"repro/internal/scoring"
	"repro/internal/seq"
	"repro/internal/topalign"
)

func main() {
	var (
		length    = flag.Int("length", 1200, "titin-like sequence length (paper: 34350)")
		topsFlag  = flag.String("tops", "1,2,5,10,25,100", "top-alignment counts (Figure 8 series)")
		procsFlag = flag.String("procs", "1,2,4,8,16,32,64,96,128", "processor counts (Figure 8 x-axis)")
		seed      = flag.Uint64("seed", 1, "generator seed")
		csv       = flag.Bool("csv", false, "emit CSV instead of an aligned table")
	)
	flag.Parse()

	tops, err := parseInts(*topsFlag)
	if err != nil {
		fatal(err)
	}
	procs, err := parseInts(*procsFlag)
	if err != nil {
		fatal(err)
	}
	maxTops := tops[len(tops)-1]

	titin := seq.SyntheticTitin(*length, *seed)
	params := align.Params{Exch: scoring.BLOSUM62, Gap: scoring.DefaultProteinGap}
	fmt.Fprintf(os.Stderr, "figure8: recording a sequential run (%d residues, %d tops)...\n",
		*length, maxTops)
	trace, err := dessim.Record(titin.Codes, topalign.Config{Params: params, NumTops: maxTops})
	if err != nil {
		fatal(err)
	}
	if trace.Tops() < maxTops {
		fmt.Fprintf(os.Stderr, "figure8: only %d top alignments exist; trimming series\n", trace.Tops())
		trimmed := tops[:0]
		for _, t := range tops {
			if t <= trace.Tops() {
				trimmed = append(trimmed, t)
			}
		}
		tops = trimmed
	}

	model := dessim.PaperModel()
	if *csv {
		fmt.Println("procs,tops,speedup,wall_seconds,seq_seconds")
	} else {
		fmt.Printf("Figure 8: speed improvement vs processors (titin-like, %d residues)\n", *length)
		fmt.Printf("(cost model: %.0fM cells/s scalar, SIMD factor %.1f, %s master+Myrinet)\n\n",
			model.ScalarCellsPerSec/1e6, model.SimdFactor, "sacrificed")
		fmt.Printf("%6s", "procs")
		for _, t := range tops {
			fmt.Printf(" %9s", fmt.Sprintf("%d top", t))
		}
		fmt.Println()
	}
	for _, p := range procs {
		if !*csv {
			fmt.Printf("%6d", p)
		}
		for _, t := range tops {
			res, err := dessim.Simulate(trace, model, p, t)
			if err != nil {
				fatal(err)
			}
			if *csv {
				fmt.Printf("%d,%d,%.2f,%.4f,%.4f\n", p, t, res.Speedup, res.WallSeconds, res.SeqSeconds)
			} else {
				fmt.Printf(" %9.1f", res.Speedup)
			}
		}
		if !*csv {
			fmt.Println()
		}
	}
	if !*csv {
		fmt.Println("\n(paper, 128 procs on titin: 831x for 1 top alignment, 500x for 100)")
	}
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	prev := 0
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("figure8: bad integer %q", p)
		}
		if n <= prev {
			return nil, fmt.Errorf("figure8: values must be increasing")
		}
		prev = n
		out = append(out, n)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "figure8:", err)
	os.Exit(1)
}
